//! Paper §4.1: the merged mesher+solver communicates in memory; the legacy
//! path writes/reads dozens of files per rank. Both must produce identical
//! physics, and the legacy path's accounting feeds the Figure 5 model.

use specfem_core::io::{read_local_mesh, write_local_mesh};
use specfem_core::mesh::{GlobalMesh, MeshParams, Partition};
use specfem_core::model::Prem;
use specfem_core::solver::{RankSolver, SolverConfig};
use specfem_core::Station;

#[test]
fn legacy_file_handoff_reproduces_merged_results_exactly() {
    let params = MeshParams::new(4, 1);
    let mesh = GlobalMesh::build(&params, &Prem::isotropic_no_ocean());
    let local = Partition::serial(&mesh).extract(&mesh, 0);

    // Legacy path: mesher writes, solver reads.
    let dir = std::env::temp_dir().join("specfem_merged_vs_legacy");
    let _ = std::fs::remove_dir_all(&dir);
    let wrote = write_local_mesh(&dir, &local).unwrap();
    let (from_disk, read) = read_local_mesh(&dir, 0).unwrap();
    let _ = std::fs::remove_dir_all(&dir);

    // A serial rank has no interface files; still ~23 per-array files.
    assert!(
        wrote.files >= 20,
        "legacy writes many files: {}",
        wrote.files
    );
    assert!(wrote.bytes > 1_000_000, "real data volume: {}", wrote.bytes);
    assert_eq!(read.bytes, wrote.bytes);

    // Both paths drive the same solver; outputs must be identical because
    // the mesh roundtrips losslessly.
    let config = SolverConfig {
        nsteps: 40,
        ..SolverConfig::default()
    };
    let stations = vec![Station {
        name: "IOTEST".into(),
        lat_deg: -10.0,
        lon_deg: 100.0,
    }];
    let run = |m: specfem_core::mesh::LocalMesh| {
        let mut comm = specfem_core::comm::SerialComm::new();
        let solver = RankSolver::new(m, &config, &stations, &mut comm);
        solver.run(&mut comm)
    };
    let merged = run(local);
    let legacy = run(from_disk);
    assert_eq!(
        merged.seismograms[0].data.len(),
        legacy.seismograms[0].data.len()
    );
    for (a, b) in merged.seismograms[0]
        .data
        .iter()
        .zip(&legacy.seismograms[0].data)
    {
        assert_eq!(a, b, "legacy and merged paths must agree bitwise");
    }
}

#[test]
fn per_rank_file_count_implies_millions_at_62k_cores() {
    // The paper's arithmetic: ~51 files/core × 62K cores > 3.2 M files.
    // Measure our per-rank file count and scale it.
    let params = MeshParams::new(4, 2);
    let mesh = GlobalMesh::build(&params, &Prem::isotropic_no_ocean());
    let part = Partition::compute(&mesh);
    let local = part.extract(&mesh, 7);
    let dir = std::env::temp_dir().join("specfem_filecount");
    let _ = std::fs::remove_dir_all(&dir);
    let report = write_local_mesh(&dir, &local).unwrap();
    let _ = std::fs::remove_dir_all(&dir);
    let at_62k = report.files as u64 * 62_000;
    assert!(
        at_62k > 1_500_000,
        "{} files/rank × 62K = {at_62k} — the paper's file explosion",
        report.files
    );
}
