//! Paper §4.2: "the same mesh computed with different loop orders on the
//! elements give two sets of synthetic seismograms that are
//! indistinguishable when plotted superimposed" — element-loop order only
//! perturbs the last digits through floating-point reassociation.

use specfem_core::mesh::{ElementOrder, GlobalMesh, MeshParams};
use specfem_core::model::Prem;
use specfem_core::solver::{run_serial, SolverConfig};
use specfem_core::Station;

fn run_with_order(order: ElementOrder) -> Vec<[f32; 3]> {
    let mut params = MeshParams::new(4, 1);
    params.element_order = order;
    let mesh = GlobalMesh::build(&params, &Prem::isotropic_no_ocean());
    let config = SolverConfig {
        nsteps: 60,
        ..SolverConfig::default()
    };
    let stations = vec![Station {
        name: "PERM".into(),
        lat_deg: 35.0,
        lon_deg: 12.0,
    }];
    let result = run_serial(&mesh, &config, &stations);
    result.seismograms[0].data.clone()
}

#[test]
fn element_loop_order_changes_only_roundoff() {
    let natural = run_with_order(ElementOrder::Natural);
    let shuffled = run_with_order(ElementOrder::Random(42));
    let rcm = run_with_order(ElementOrder::CuthillMcKee);
    let multilevel = run_with_order(ElementOrder::MultilevelCuthillMcKee { block: 64 });

    let scale: f32 = natural
        .iter()
        .flat_map(|v| v.iter())
        .fold(0.0f32, |m, &x| m.max(x.abs()));
    assert!(scale > 0.0, "seismogram must be nonzero");

    for (name, other) in [
        ("random", &shuffled),
        ("rcm", &rcm),
        ("multilevel", &multilevel),
    ] {
        assert_eq!(natural.len(), other.len());
        let max_diff: f32 = natural
            .iter()
            .zip(other.iter())
            .flat_map(|(a, b)| a.iter().zip(b.iter()).map(|(x, y)| (x - y).abs()))
            .fold(0.0, f32::max);
        // "only the last one or two decimals are affected": a few ULP-scale
        // reassociation noise relative to the signal.
        assert!(
            max_diff < 1e-4 * scale,
            "{name} order deviates by {max_diff} (scale {scale})"
        );
        // ... but they are genuinely different summation orders, so exact
        // bitwise equality would indicate the permutation was not applied.
        if name == "random" {
            let identical = natural.iter().zip(other.iter()).all(|(a, b)| a == b);
            assert!(
                !identical,
                "random order produced bitwise-identical output — permutation not applied?"
            );
        }
    }
}
