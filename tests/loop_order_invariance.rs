//! Paper §4.2: "the same mesh computed with different loop orders on the
//! elements give two sets of synthetic seismograms that are
//! indistinguishable when plotted superimposed" — element-loop order only
//! perturbs the last digits through floating-point reassociation.

use specfem_core::mesh::{ElementOrder, GlobalMesh, MeshParams, Partition};
use specfem_core::model::{Prem, SourceTimeFunction, StfKind};
use specfem_core::solver::lts::LtsLevel;
use specfem_core::solver::{run_serial, RankSolver, SolverConfig, SourceSpec};
use specfem_core::Station;

#[path = "common/oracle.rs"]
mod oracle;

fn run_with_order(order: ElementOrder) -> Vec<[f32; 3]> {
    let mut params = MeshParams::new(4, 1);
    params.element_order = order;
    let mesh = GlobalMesh::build(&params, &Prem::isotropic_no_ocean());
    let config = SolverConfig {
        nsteps: 60,
        ..SolverConfig::default()
    };
    let stations = vec![Station {
        name: "PERM".into(),
        lat_deg: 35.0,
        lon_deg: 12.0,
    }];
    let result = run_serial(&mesh, &config, &stations);
    result.seismograms[0].data.clone()
}

#[test]
fn element_loop_order_changes_only_roundoff() {
    let natural = run_with_order(ElementOrder::Natural);
    let shuffled = run_with_order(ElementOrder::Random(42));
    let rcm = run_with_order(ElementOrder::CuthillMcKee);
    let multilevel = run_with_order(ElementOrder::MultilevelCuthillMcKee { block: 64 });

    let scale: f32 = natural
        .iter()
        .flat_map(|v| v.iter())
        .fold(0.0f32, |m, &x| m.max(x.abs()));
    assert!(scale > 0.0, "seismogram must be nonzero");

    for (name, other) in [
        ("random", &shuffled),
        ("rcm", &rcm),
        ("multilevel", &multilevel),
    ] {
        assert_eq!(natural.len(), other.len());
        let max_diff: f32 = natural
            .iter()
            .zip(other.iter())
            .flat_map(|(a, b)| a.iter().zip(b.iter()).map(|(x, y)| (x - y).abs()))
            .fold(0.0, f32::max);
        // "only the last one or two decimals are affected": a few ULP-scale
        // reassociation noise relative to the signal.
        assert!(
            max_diff < 1e-4 * scale,
            "{name} order deviates by {max_diff} (scale {scale})"
        );
        // ... but they are genuinely different summation orders, so exact
        // bitwise equality would indicate the permutation was not applied.
        if name == "random" {
            let identical = natural.iter().zip(other.iter()).all(|(a, b)| a == b);
            assert!(
                !identical,
                "random order produced bitwise-identical output — permutation not applied?"
            );
        }
    }
}

/// Run the rate-1 LTS path after splitting its single level into `n`
/// artificial rate-1 clusters (round-robin element assignment) swept in
/// *rotated* order, and capture the final state + records.
fn run_lts_with_cluster_split(
    mesh: &GlobalMesh,
    config: &SolverConfig,
    n: usize,
    rotate: usize,
) -> specfem_core::solver::CheckpointState {
    let local = Partition::serial(mesh).extract(mesh, 0);
    let mut comm = specfem_core::comm::SerialComm::new();
    let stations = vec![Station {
        name: "PERM".into(),
        lat_deg: 35.0,
        lon_deg: 12.0,
    }];
    let mut solver = RankSolver::new(local, config, &stations, &mut comm);
    if n > 1 {
        let lts = solver.lts_state_mut_for_tests().expect("LTS engaged");
        let base = lts.levels[0].clone();
        let mut split: Vec<LtsLevel> = (0..n)
            .map(|_| LtsLevel {
                rate: base.rate,
                outer: Vec::new(),
                inner: Vec::new(),
                atten: base.atten,
            })
            .collect();
        for (i, &e) in base.outer.iter().enumerate() {
            split[i % n].outer.push(e);
        }
        for (i, &e) in base.inner.iter().enumerate() {
            split[i % n].inner.push(e);
        }
        split.rotate_left(rotate % n);
        lts.levels = split;
    }
    for istep in 0..config.nsteps {
        solver.step(istep, &mut comm).expect("step");
    }
    solver.capture_checkpoint(0, 1, config.nsteps)
}

#[test]
fn lts_rate1_cluster_sweep_order_is_bit_identical_to_one_cluster() {
    // The LTS compute phase may visit clusters in any order: contributions
    // land in disjoint per-element buffer slices, and the scatter adds them
    // in canonical ascending element order regardless. Splitting the rate-1
    // level into several interleaved clusters — swept in rotated order —
    // must therefore be bit-identical to the unsplit sweep.
    let mesh = GlobalMesh::build(&MeshParams::new(4, 1), &Prem::isotropic_no_ocean());
    let config = SolverConfig {
        nsteps: 16,
        lts_all_rate_one: true,
        source: SourceSpec::PointForce {
            position: [0.0, 0.0, 5.8e6],
            force: [0.0, 0.0, 1.0e18],
            stf: SourceTimeFunction::new(StfKind::Ricker, 200.0),
        },
        ..SolverConfig::default()
    };
    let reference = run_lts_with_cluster_split(&mesh, &config, 1, 0);
    for (n, rotate) in [(2, 1), (5, 3), (7, 6)] {
        let permuted = run_lts_with_cluster_split(&mesh, &config, n, rotate);
        oracle::assert_state_matches(&format!("split n={n} rot={rotate}"), &permuted, &reference);
    }
}
