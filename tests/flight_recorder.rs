//! Flight-recorder acceptance suite (DESIGN.md §3l).
//!
//! Two contracts:
//!
//! 1. **Bit transparency** — arming the flight recorder (and tracing)
//!    must leave the physics 0-ULP bit-identical to a disabled run:
//!    seismograms and final checkpointed fields, both kernel families,
//!    serial and partitioned. The recorder only ever reads metadata,
//!    and the differential oracle here is what enforces that claim.
//! 2. **Crash dossiers** — each injected failure class (NaN health
//!    trip, watchdog stall, rank kill, torn checkpoint artifact)
//!    yields exactly one merged SFCN dossier container naming the
//!    failing rank/step, written atomically next to the checkpoints.

use std::path::PathBuf;
use std::time::Duration;

use specfem_core::comm::FaultPlan;
use specfem_core::io::{read_crash_dossier, DOSSIER_KIND};
use specfem_core::{KernelVariant, NetworkProfile, RunOptions, Simulation};

#[path = "common/oracle.rs"]
mod oracle;

fn tmp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("specfem_flight_{tag}"));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn base_sim(variant: KernelVariant, armed: bool) -> Simulation {
    Simulation::builder()
        .resolution(4)
        .steps(12)
        .stations(3)
        .catalogue_event("argentina_deep")
        .kernel(variant)
        .flight_recorder(armed)
        .flight_buffer_events(256)
        .configure(|c| {
            c.checkpoint_every = 12; // exactly one final capture
            if armed {
                // Worst case for transparency: journal *and* tracer on.
                c.trace = true;
            }
        })
        .build()
        .unwrap()
}

/// Contract 1: armed vs disabled is 0-ULP on seismograms and final
/// checkpointed fields, per kernel family, serial and partitioned.
#[test]
fn armed_recorder_is_bit_transparent_to_the_physics() {
    for variant in [KernelVariant::Reference, KernelVariant::Simd] {
        // Serial path.
        let off = base_sim(variant, false);
        let on = base_sim(variant, true);
        let (mesh, _) = off.build_mesh();

        let dir_off = tmp_dir(&format!("{variant:?}_serial_off"));
        let dir_on = tmp_dir(&format!("{variant:?}_serial_on"));
        let serial_off = off
            .try_run_with_mesh(
                &mesh,
                RunOptions {
                    profile: None,
                    checkpoint_dir: Some(&dir_off),
                    resume: false,
                    world: None,
                    dossier_dir: None,
                },
            )
            .unwrap();
        let serial_on = on
            .try_run_with_mesh(
                &mesh,
                RunOptions {
                    profile: None,
                    checkpoint_dir: Some(&dir_on),
                    resume: false,
                    world: None,
                    dossier_dir: None,
                },
            )
            .unwrap();
        oracle::assert_dt_bits_eq(&format!("{variant:?} serial"), serial_off.dt, serial_on.dt);
        oracle::assert_seismograms_bits_eq(
            &format!("{variant:?} serial seismograms"),
            &serial_off.seismograms,
            &serial_on.seismograms,
        );
        assert_checkpoints_match(
            &dir_off,
            &dir_on,
            &mesh,
            &format!("{variant:?} serial fields"),
        );

        // Partitioned path (4 balanced ranks).
        let dir_off = tmp_dir(&format!("{variant:?}_par_off"));
        let dir_on = tmp_dir(&format!("{variant:?}_par_on"));
        let par_off = off
            .try_run_with_mesh(
                &mesh,
                RunOptions {
                    profile: Some(NetworkProfile::loopback()),
                    checkpoint_dir: Some(&dir_off),
                    resume: false,
                    world: Some(4),
                    dossier_dir: None,
                },
            )
            .unwrap();
        let par_on = on
            .try_run_with_mesh(
                &mesh,
                RunOptions {
                    profile: Some(NetworkProfile::loopback()),
                    checkpoint_dir: Some(&dir_on),
                    resume: false,
                    world: Some(4),
                    dossier_dir: None,
                },
            )
            .unwrap();
        oracle::assert_dt_bits_eq(&format!("{variant:?} partitioned"), par_off.dt, par_on.dt);
        oracle::assert_seismograms_bits_eq(
            &format!("{variant:?} partitioned seismograms"),
            &par_off.seismograms,
            &par_on.seismograms,
        );
        assert_checkpoints_match(
            &dir_off,
            &dir_on,
            &mesh,
            &format!("{variant:?} partitioned fields"),
        );
    }
}

/// Baseline for the differential above: two *identical* partitioned runs
/// must produce bit-identical merged checkpoint containers. Guards the
/// rank-ordered merge in `write_merged` — an arrival-order merge lets
/// thread scheduling pick which rank's ULP-variant halo copy wins.
#[test]
fn identical_partitioned_runs_checkpoint_bit_identically() {
    let off1 = base_sim(KernelVariant::Reference, false);
    let off2 = base_sim(KernelVariant::Reference, false);
    let (mesh, _) = off1.build_mesh();
    let d1 = tmp_dir("probe1");
    let d2 = tmp_dir("probe2");
    for (sim, dir) in [(&off1, &d1), (&off2, &d2)] {
        sim.try_run_with_mesh(
            &mesh,
            RunOptions {
                profile: Some(NetworkProfile::loopback()),
                checkpoint_dir: Some(dir),
                resume: false,
                world: Some(4),
                dossier_dir: None,
            },
        )
        .unwrap();
    }
    assert_checkpoints_match(&d1, &d2, &mesh, "probe identical-config partitioned");
}

/// Compare the newest merged checkpoint generation of two runs bit for
/// bit: scatter each onto the full-domain serial decomposition and
/// demand identical fields, dt, and station records.
fn assert_checkpoints_match(
    a: &std::path::Path,
    b: &std::path::Path,
    mesh: &specfem_core::GlobalMesh,
    label: &str,
) {
    use specfem_core::io::checkpoint::CheckpointStore;
    let local = specfem_core::Partition::serial(mesh).extract(mesh, 0);
    let ga = CheckpointStore::new(a)
        .unwrap()
        .restore_latest_for(0, &local)
        .unwrap()
        .expect("a run checkpointed");
    let gb = CheckpointStore::new(b)
        .unwrap()
        .restore_latest_for(0, &local)
        .unwrap()
        .expect("b run checkpointed");
    oracle::assert_state_matches(label, &ga, &gb);
}

/// One dossier file in `dir`, opened and sanity-checked.
fn the_dossier(dir: &std::path::Path) -> specfem_core::io::CrashDossier {
    let files: Vec<PathBuf> = std::fs::read_dir(dir)
        .unwrap()
        .map(|e| e.unwrap().path())
        .filter(|p| {
            let name = p.file_name().unwrap().to_string_lossy();
            name.starts_with("dossier_") && name.ends_with(".sfcn")
        })
        .collect();
    assert_eq!(
        files.len(),
        1,
        "exactly one dossier per incident, found {files:?}"
    );
    read_crash_dossier(&files[0]).expect("dossier container parses back")
}

/// Contract 2a: a NaN blow-up (enormous dt, armed health monitor) writes
/// one dossier whose incident names the rank, step, and health class.
#[test]
fn health_trip_writes_one_dossier_naming_rank_and_step() {
    let dir = tmp_dir("health");
    let mut sim = base_sim(KernelVariant::Reference, true);
    // A dt far past the Courant bound: the source still injects energy
    // (the Ricker has support at t ~ 1000 s) and the explicit scheme
    // amplifies it to a NaN/Inf/growth trip within a few samples.
    sim.config.dt = Some(1000.0);
    sim.config.health_every = 5;
    sim.config.nsteps = 500;
    sim.config.checkpoint_every = 0;
    let (mesh, _) = sim.build_mesh();
    let err = sim
        .try_run_with_mesh(
            &mesh,
            RunOptions {
                profile: None,
                checkpoint_dir: None,
                resume: false,
                world: None,
                dossier_dir: Some(&dir),
            },
        )
        .expect_err("an unstable dt must trip the health monitor");
    let report = format!("{err}");
    let dossier = the_dossier(&dir);
    assert_eq!(dossier.incident.class, "health");
    assert_eq!(dossier.incident.rank, Some(0));
    assert!(
        dossier.incident.step.is_some(),
        "health incident carries the tripping step"
    );
    assert_eq!(dossier.incident.world, 1);
    assert_eq!(dossier.incident.detail, report);
    // The journal survived the crash: the serial rank's ring is there
    // and its last events include the health trip itself.
    assert_eq!(dossier.journals.len(), 1);
    let j = &dossier.journals[0];
    assert_eq!(j.rank, 0);
    assert!(
        j.events
            .iter()
            .any(|e| e.kind() == Some(specfem_core::obs::FlightEventKind::HealthTrip)),
        "journal records the trip"
    );
}

/// Contract 2b: a killed rank on a partitioned world writes one dossier
/// classified `rank_dead`, naming the victim, with the *surviving*
/// ranks' journals merged in.
#[test]
fn rank_kill_writes_one_merged_dossier() {
    let dir = tmp_dir("kill");
    let mut sim = base_sim(KernelVariant::Reference, true);
    sim.config.checkpoint_every = 0;
    sim.config.fault_plan = Some(FaultPlan::new(7).kill(1, 6));
    sim.config.recv_timeout = Some(Duration::from_secs(5));
    let (mesh, _) = sim.build_mesh();
    let err = sim
        .try_run_with_mesh(
            &mesh,
            RunOptions {
                profile: Some(NetworkProfile::loopback()),
                checkpoint_dir: None,
                resume: false,
                world: Some(4),
                dossier_dir: Some(&dir),
            },
        )
        .expect_err("the injected kill must abort the run");
    drop(err);
    let dossier = the_dossier(&dir);
    assert_eq!(dossier.incident.class, "rank_dead");
    assert_eq!(dossier.incident.rank, Some(1), "the victim is named");
    assert_eq!(dossier.incident.world, 4);
    // Survivors deposited their journals; the merged container holds
    // more than one rank's history, sorted by rank.
    assert!(
        dossier.journals.len() >= 2,
        "merged journals from surviving ranks, got {}",
        dossier.journals.len()
    );
    let ranks: Vec<u64> = dossier.journals.iter().map(|j| j.rank).collect();
    let mut sorted = ranks.clone();
    sorted.sort_unstable();
    assert_eq!(ranks, sorted, "journals are ordered by rank");
    // Comm edges made it into at least one journal — the recorder was
    // genuinely wired into the halo exchange.
    assert!(dossier.journals.iter().any(|j| j
        .events
        .iter()
        .any(|e| e.kind() == Some(specfem_core::obs::FlightEventKind::CommSend))));
}

/// Contract 2c: a stalled rank under an armed watchdog writes one
/// dossier classified `stall` naming the straggler.
#[test]
fn watchdog_stall_writes_one_dossier() {
    let dir = tmp_dir("stall");
    let mut sim = base_sim(KernelVariant::Reference, true);
    sim.config.checkpoint_every = 0;
    sim.config.nsteps = 400; // far more steps than can finish
    sim.config.watchdog_timeout = Some(Duration::from_millis(150));
    sim.config.recv_timeout = Some(Duration::from_secs(10));
    // From step 2 on, every message rank 1 sends sleeps 60 ms — its
    // heartbeat age blows past the 150 ms deadline.
    sim.config.fault_plan = Some(FaultPlan::new(11).delay(1, 2, 395, 60_000));
    let (mesh, _) = sim.build_mesh();
    let err = sim
        .try_run_with_mesh(
            &mesh,
            RunOptions {
                profile: Some(NetworkProfile::loopback()),
                checkpoint_dir: None,
                resume: false,
                world: None,
                dossier_dir: Some(&dir),
            },
        )
        .expect_err("the stalled rank must trip the watchdog");
    drop(err);
    let dossier = the_dossier(&dir);
    assert_eq!(dossier.incident.class, "stall");
    // The stall cascades (every rank blocks on the straggler's halo), so
    // the watchdog's stalest-heartbeat pick may be any blocked rank —
    // what the contract guarantees is that *a* rank is named.
    let named = dossier.incident.rank.expect("the stall names a rank");
    assert!(named < 6, "named rank {named} is in the world");
}

/// Contract 2d: a torn checkpoint artifact on resume writes one dossier
/// classified `artifact` (no rank — the store, not a rank, failed).
#[test]
fn torn_artifact_on_resume_writes_one_dossier() {
    let ckpt = tmp_dir("torn_ckpt");
    let dir = tmp_dir("torn_dossier");
    let mut sim = base_sim(KernelVariant::Reference, true);
    sim.config.checkpoint_every = 6;
    let (mesh, _) = sim.build_mesh();
    sim.try_run_with_mesh(
        &mesh,
        RunOptions {
            profile: None,
            checkpoint_dir: Some(&ckpt),
            resume: false,
            world: None,
            dossier_dir: None,
        },
    )
    .expect("the seeding run succeeds");
    // Tear every generation: truncate each container to half, so resume
    // has no complete fallback and must fail with a typed error.
    let mut tore = 0;
    for entry in std::fs::read_dir(&ckpt).unwrap() {
        let path = entry.unwrap().path();
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() / 2]).unwrap();
        tore += 1;
    }
    assert!(tore >= 1, "the seeding run checkpointed");
    let err = sim
        .try_run_with_mesh(
            &mesh,
            RunOptions {
                profile: None,
                checkpoint_dir: Some(&ckpt),
                resume: true,
                world: None,
                dossier_dir: Some(&dir),
            },
        )
        .expect_err("resume from torn containers must fail typed");
    drop(err);
    let dossier = the_dossier(&dir);
    assert_eq!(dossier.incident.class, "artifact");
    assert!(dossier
        .incident
        .detail
        .to_lowercase()
        .contains("checkpoint"));
}

/// The dossier container itself is atomic and well-formed: correct SFCN
/// kind, parseable incident JSON chunk, no stray tmp files left behind.
#[test]
fn dossier_containers_are_atomic_and_typed() {
    let dir = tmp_dir("atomic");
    let mut sim = base_sim(KernelVariant::Reference, true);
    sim.config.dt = Some(1000.0); // far past Courant: guaranteed blow-up
    sim.config.health_every = 5;
    sim.config.nsteps = 500;
    sim.config.checkpoint_every = 0;
    let (mesh, _) = sim.build_mesh();
    let _ = sim
        .try_run_with_mesh(
            &mesh,
            RunOptions {
                profile: None,
                checkpoint_dir: None,
                resume: false,
                world: None,
                dossier_dir: Some(&dir),
            },
        )
        .expect_err("the unstable run fails");
    let mut dossiers = 0;
    for entry in std::fs::read_dir(&dir).unwrap() {
        let path = entry.unwrap().path();
        let name = path.file_name().unwrap().to_string_lossy().into_owned();
        assert!(
            !name.contains(".tmp"),
            "atomic write leaves no torn temporaries: {name}"
        );
        if name.ends_with(".sfcn") {
            dossiers += 1;
            let mut reader = specfem_core::io::ContainerReader::open(&path).unwrap();
            assert_eq!(reader.kind(), DOSSIER_KIND);
            let incident = reader.chunk("incident.json").unwrap();
            let text = String::from_utf8(incident).unwrap();
            let v = serde_json::from_str(&text).expect("incident.json parses");
            assert_eq!(v["class"].as_str(), Some("health"));
            assert_eq!(v["world"].as_u64(), Some(1));
            assert_eq!(v["rank"].as_u64(), Some(0));
            assert!(!v["step"].is_null());
        }
    }
    assert_eq!(dossiers, 1);
}
