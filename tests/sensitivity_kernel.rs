//! Adjoint sensitivity kernels (paper §1, ref [13]): forward run with
//! wavefield snapshots, adjoint run driven by the time-reversed seismogram
//! at the receiver, shear kernel from the strain interaction.

use specfem_core::mesh::{GlobalMesh, MeshParams, Partition};
use specfem_core::model::{HomogeneousModel, SourceTimeFunction, StfKind};
use specfem_core::solver::assemble::PrecomputedGeometry;
use specfem_core::solver::{run_serial, shear_kernel, SolverConfig, SourceSpec};
use specfem_core::Station;

#[test]
fn banana_doughnut_kernel_concentrates_between_source_and_receiver() {
    let params = MeshParams::new(4, 1);
    let model = HomogeneousModel::default();
    let mesh = GlobalMesh::build(&params, &model);

    let src_pos = [0.0, 0.0, 5.5e6]; // under the north pole
    let station = Station {
        name: "RX".into(),
        lat_deg: 55.0,
        lon_deg: 0.0,
    };
    let rx_pos = station.position();

    // Forward run with snapshots.
    let nsteps = 160;
    let forward_cfg = SolverConfig {
        nsteps,
        snapshot_every: 4,
        source: SourceSpec::PointForce {
            position: src_pos,
            force: [0.0, 0.0, 1.0e18],
            stf: SourceTimeFunction::new(StfKind::Ricker, 120.0),
        },
        exact_station_location: true,
        ..SolverConfig::default()
    };
    let fwd = run_serial(&mesh, &forward_cfg, &[station]);
    let fwd_snaps = fwd.snapshots.clone().expect("forward snapshots");
    assert_eq!(fwd_snaps.frames.len(), nsteps / 4);

    // Adjoint source: the time-reversed velocity seismogram at the
    // receiver (scaled to force units).
    let seis = &fwd.seismograms[0];
    let mut trace: Vec<[f32; 3]> = seis
        .data
        .iter()
        .rev()
        .map(|v| [v[0] * 1.0e18, v[1] * 1.0e18, v[2] * 1.0e18])
        .collect();
    // Pad so the adjoint run never runs out of samples.
    trace.push([0.0; 3]);
    let adjoint_cfg = SolverConfig {
        nsteps,
        snapshot_every: 4,
        source: SourceSpec::Trace {
            position: rx_pos,
            trace,
            trace_dt: seis.dt,
        },
        ..SolverConfig::default()
    };
    let adj = run_serial(&mesh, &adjoint_cfg, &[]);
    let adj_snaps = adj.snapshots.clone().expect("adjoint snapshots");

    // Assemble the kernel.
    let local = Partition::serial(&mesh).extract(&mesh, 0);
    let geom = PrecomputedGeometry::compute(&local, None);
    let kernel = shear_kernel(&local, &geom, &fwd_snaps, &adj_snaps);
    assert!(kernel.iter().all(|v| v.is_finite()));
    let total: f64 = kernel.iter().map(|&v| v.abs() as f64).sum();
    assert!(total > 0.0, "kernel must be nonzero");

    // Spatial concentration: mean |K| among GLL points in the
    // source–receiver hemisphere (z > 0) must exceed the antipodal
    // hemisphere within the run's short duration.
    let n3 = local.points_per_element();
    let (mut near, mut far) = ((0.0f64, 0usize), (0.0f64, 0usize));
    for e in 0..local.nspec {
        for l in 0..n3 {
            let p = local.coords[local.ibool[e * n3 + l] as usize];
            let v = kernel[e * n3 + l].abs() as f64;
            if p[2] > 0.0 {
                near.0 += v;
                near.1 += 1;
            } else {
                far.0 += v;
                far.1 += 1;
            }
        }
    }
    let mean_near = near.0 / near.1 as f64;
    let mean_far = far.0 / far.1 as f64;
    assert!(
        mean_near > 2.0 * mean_far,
        "kernel not concentrated: near {mean_near:.3e} vs far {mean_far:.3e}"
    );
}
