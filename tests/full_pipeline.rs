//! End-to-end facade tests: every catalogue event, every physics flag,
//! serial-vs-parallel equivalence through the public API.

use specfem_core::{ModelChoice, NetworkProfile, Simulation};

#[test]
fn every_catalogue_event_runs() {
    for event in specfem_core::builtin_events() {
        let sim = Simulation::builder()
            .resolution(4)
            .steps(15)
            .catalogue_event(&event.name)
            .stations(2)
            .build()
            .unwrap();
        let result = sim.run_serial();
        assert_eq!(result.seismograms.len(), 2, "{}", event.name);
        assert!(
            result
                .seismograms
                .iter()
                .flat_map(|s| s.data.iter())
                .flat_map(|v| v.iter())
                .all(|x| x.is_finite()),
            "{} produced non-finite output",
            event.name
        );
    }
}

#[test]
fn all_physics_flags_together() {
    let sim = Simulation::builder()
        .resolution(4)
        .steps(25)
        .attenuation(true)
        .rotation(true)
        .gravity(true)
        .catalogue_event("denali_strike_slip")
        .stations(3)
        .build()
        .unwrap();
    let result = sim.run_serial();
    assert!(result
        .seismograms
        .iter()
        .flat_map(|s| s.data.iter())
        .flat_map(|v| v.iter())
        .all(|x| x.is_finite()));
    assert!(result.total_flops() > 0);
}

#[test]
fn parallel_facade_run_matches_serial() {
    let build = |nproc: usize| {
        Simulation::builder()
            .resolution(4)
            .processors(nproc)
            .steps(30)
            .catalogue_event("sumatra_thrust")
            .stations(2)
            .build()
            .unwrap()
    };
    let serial = build(1).run_serial();
    let parallel = build(2).run_parallel(NetworkProfile::loopback());
    assert_eq!(parallel.ranks.len(), 24);
    assert_eq!(serial.seismograms.len(), parallel.seismograms.len());
    for (a, b) in serial.seismograms.iter().zip(&parallel.seismograms) {
        assert_eq!(a.station, b.station);
        let scale: f32 = a
            .data
            .iter()
            .flat_map(|v| v.iter())
            .fold(0.0f32, |m, &x| m.max(x.abs()))
            .max(1e-20);
        for (va, vb) in a.data.iter().zip(&b.data) {
            for c in 0..3 {
                assert!(
                    (va[c] - vb[c]).abs() <= 3e-3 * scale,
                    "station {}: {} vs {}",
                    a.station,
                    va[c],
                    vb[c]
                );
            }
        }
    }
}

#[test]
fn homogeneous_model_choice_works_and_has_no_fluid() {
    let sim = Simulation::builder()
        .resolution(4)
        .model(ModelChoice::Homogeneous)
        .steps(10)
        .build()
        .unwrap();
    let result = sim.run_serial();
    assert!(result.total_flops() > 0);
}

#[test]
fn kernel_variants_run_through_the_facade() {
    use specfem_core::KernelVariant;
    let mut outputs = Vec::new();
    for variant in [
        KernelVariant::Reference,
        KernelVariant::Simd,
        KernelVariant::BlasStyle,
    ] {
        let sim = Simulation::builder()
            .resolution(4)
            .steps(20)
            .kernel(variant)
            .catalogue_event("argentina_deep")
            .stations(1)
            .build()
            .unwrap();
        outputs.push(sim.run_serial().seismograms[0].data.clone());
    }
    let scale: f32 = outputs[0]
        .iter()
        .flat_map(|v| v.iter())
        .fold(0.0f32, |m, &x| m.max(x.abs()));
    for other in &outputs[1..] {
        for (a, b) in outputs[0].iter().zip(other) {
            for c in 0..3 {
                assert!((a[c] - b[c]).abs() < 1e-3 * scale);
            }
        }
    }
}
