//! The differential harness for the non-blocking halo exchange: the same
//! simulation run with `overlap` on and off must produce bit-identical
//! seismograms *and* bit-identical final wave fields on every rank — on a
//! fluid-coupled PREM mesh and a purely solid homogeneous mesh, at two
//! decompositions (6 and 24 ranks).
//!
//! Why this can be exact (not just "close"): float addition is not
//! associative, so the solver keeps the per-point accumulation order —
//! boundary/source terms, then outer elements, then inner elements, then
//! received halo partials in ascending neighbor order — identical in both
//! paths. Any reordering regression shows up here as a ULP-level diff.

use std::collections::HashMap;

use specfem_core::comm::NetworkProfile;
use specfem_core::mesh::stations::Station;
use specfem_core::mesh::{GlobalMesh, MeshParams};
use specfem_core::model::{HomogeneousModel, Prem, SourceTimeFunction, StfKind};
use specfem_core::solver::checkpoint::{CheckpointSink, CheckpointState};
use specfem_core::solver::{
    merge_seismograms, try_run_distributed, FtOptions, Seismogram, SolverConfig, SourceSpec,
};

#[path = "common/oracle.rs"]
mod oracle;
use oracle::FinalStates;

fn stations() -> Vec<Station> {
    vec![
        Station {
            name: "NEAR".into(),
            lat_deg: 55.0,
            lon_deg: 15.0,
        },
        Station {
            name: "FAR".into(),
            lat_deg: -40.0,
            lon_deg: 130.0,
        },
    ]
}

/// Run distributed with the given overlap setting; return merged
/// seismograms and every rank's full final field state.
fn run(
    mesh: &GlobalMesh,
    config: &SolverConfig,
    overlap: bool,
) -> (Vec<Seismogram>, HashMap<usize, CheckpointState>) {
    let mut config = config.clone();
    config.overlap = overlap;
    config.checkpoint_every = config.nsteps; // exactly one final capture
    let store = FinalStates::default();
    let sink_store = store.clone();
    let sink_factory = move |rank: usize| -> Box<dyn CheckpointSink> { sink_store.sink(rank) };
    let results = try_run_distributed(
        mesh,
        &config,
        &stations(),
        NetworkProfile::loopback(),
        FtOptions {
            sink_factory: Some(&sink_factory),
            restore: None,
            flight: None,
        },
    );
    let ranks: Vec<_> = results
        .into_iter()
        .map(|r| r.expect("every rank must finish"))
        .collect();
    (merge_seismograms(&ranks), store.collected())
}

/// The harness: run both paths, demand bit-identity everywhere.
fn assert_overlap_equivalent(mesh: &GlobalMesh, config: &SolverConfig) {
    let (seis_block, fields_block) = run(mesh, config, false);
    let (seis_over, fields_over) = run(mesh, config, true);

    // Seismograms: every sample bit-identical.
    oracle::assert_seismograms_bits_eq("blocking vs overlapped", &seis_block, &seis_over);

    // Final fields: every component of every rank's state bit-identical.
    assert_eq!(fields_block.len(), fields_over.len());
    for (rank, a) in &fields_block {
        let b = &fields_over[rank];
        oracle::assert_fields_bits_eq(&format!("rank {rank}"), a, b);
    }
}

fn point_force(period_s: f64) -> SourceSpec {
    SourceSpec::PointForce {
        position: [0.0, 0.0, 5.8e6],
        force: [0.0, 0.0, 1.0e18],
        stf: SourceTimeFunction::new(StfKind::Ricker, period_s),
    }
}

#[test]
fn prem_fluid_coupled_6_ranks_bit_identical() {
    let mesh = GlobalMesh::build(&MeshParams::new(4, 1), &Prem::isotropic_no_ocean());
    let config = SolverConfig {
        nsteps: 30,
        attenuation: true, // memory-variable updates must split cleanly too
        source: point_force(200.0),
        ..SolverConfig::default()
    };
    assert_overlap_equivalent(&mesh, &config);
}

#[test]
fn prem_fluid_coupled_24_ranks_bit_identical() {
    let mesh = GlobalMesh::build(&MeshParams::new(4, 2), &Prem::isotropic_no_ocean());
    let config = SolverConfig {
        nsteps: 12,
        source: point_force(200.0),
        ..SolverConfig::default()
    };
    assert_overlap_equivalent(&mesh, &config);
}

#[test]
fn homogeneous_solid_6_ranks_bit_identical() {
    let mesh = GlobalMesh::build(&MeshParams::new(4, 1), &HomogeneousModel::default());
    let config = SolverConfig {
        nsteps: 30,
        source: point_force(200.0),
        ..SolverConfig::default()
    };
    assert_overlap_equivalent(&mesh, &config);
}

#[test]
fn homogeneous_solid_24_ranks_bit_identical() {
    let mesh = GlobalMesh::build(&MeshParams::new(4, 2), &HomogeneousModel::default());
    let config = SolverConfig {
        nsteps: 12,
        source: point_force(200.0),
        ..SolverConfig::default()
    };
    assert_overlap_equivalent(&mesh, &config);
}
