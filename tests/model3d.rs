//! 3-D heterogeneous model runs: PREM + lateral mantle perturbations
//! change arrival amplitudes/times laterally while keeping the run stable.

use specfem_core::mesh::{GlobalMesh, MeshParams};
use specfem_core::model::{Prem, Prem3D};
use specfem_core::solver::{run_serial, SolverConfig};
use specfem_core::Station;

#[test]
fn mesh_materials_vary_laterally_with_prem3d() {
    let params = MeshParams::new(4, 1);
    let m3d = Prem3D::default_mantle();
    let mesh = GlobalMesh::build(&params, &m3d);
    let ref_mesh = GlobalMesh::build(&params, &Prem::isotropic_no_ocean());
    assert_eq!(mesh.nspec, ref_mesh.nspec);
    // Some mantle GLL points must differ from the radial reference.
    let n3 = mesh.points_per_element();
    let mut differing = 0usize;
    for e in 0..mesh.nspec {
        if mesh.region[e] != specfem_core::mesh::MeshRegion::CrustMantle {
            continue;
        }
        for l in 0..n3 {
            if (mesh.mu[e * n3 + l] - ref_mesh.mu[e * n3 + l]).abs()
                > 1e-4 * ref_mesh.mu[e * n3 + l]
            {
                differing += 1;
            }
        }
    }
    assert!(differing > 100, "only {differing} points differ");
    // Fluid untouched.
    for e in 0..mesh.nspec {
        if mesh.region[e].is_fluid() {
            for l in 0..n3 {
                assert_eq!(mesh.rho[e * n3 + l], ref_mesh.rho[e * n3 + l]);
            }
        }
    }
}

#[test]
fn prem3d_run_is_stable_and_breaks_lateral_symmetry() {
    let params = MeshParams::new(4, 1);
    let mesh = GlobalMesh::build(&params, &Prem3D::default_mantle());
    let stations = vec![
        Station {
            name: "E".into(),
            lat_deg: 0.0,
            lon_deg: 30.0,
        },
        Station {
            name: "W".into(),
            lat_deg: 0.0,
            lon_deg: 75.0,
        },
    ];
    let config = SolverConfig {
        nsteps: 150,
        ..SolverConfig::default()
    };
    let result = run_serial(&mesh, &config, &stations);
    let peak = |name: &str| {
        result
            .seismograms
            .iter()
            .find(|s| s.station == name)
            .unwrap()
            .data
            .iter()
            .flat_map(|v| v.iter())
            .fold(0.0f32, |m, &x| m.max(x.abs()))
    };
    let (pe, pw) = (peak("E"), peak("W"));
    assert!(pe.is_finite() && pw.is_finite());
    assert!(pe > 0.0 && pw > 0.0);
    // The default source sits on the z-axis, so in radial PREM the two
    // equatorial stations would see identical (mirror-symmetric) wavefields;
    // the 3-D perturbation must break that symmetry measurably.
    let asym = (pe - pw).abs() / pe.max(pw);
    assert!(asym > 1e-4, "lateral symmetry not broken: {pe} vs {pw}");
}
