//! Elastic recovery differential oracle: a run checkpointed at W=4 ranks
//! and killed mid-flight must resume at R=2 *and* R=8 from the same merged
//! (rank-count-independent) checkpoint container, reproducing the
//! uninterrupted W=4 run — the restored seismogram prefix bit-identical,
//! the recomputed tail inside the cross-decomposition f32-roundoff
//! envelope, and `dt` bit-equal (see DESIGN.md §3h).

use specfem_core::comm::FaultPlan;
use specfem_core::{NetworkProfile, RunOptions, Simulation, SimulationResult};

#[path = "common/oracle.rs"]
mod oracle;

const NSTEPS: usize = 20;
const CHECKPOINT_EVERY: usize = 5;
/// The kill lands here, so the newest complete generation precedes it.
const KILL_STEP: usize = 12;

fn base_sim() -> Simulation {
    Simulation::builder()
        .resolution(4)
        .steps(NSTEPS)
        .stations(3)
        .catalogue_event("argentina_deep")
        .configure(|c| c.checkpoint_every = CHECKPOINT_EVERY)
        .build()
        .unwrap()
}

fn tmp_dir(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(name);
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn copy_dir(src: &std::path::Path, dst: &std::path::Path) {
    std::fs::create_dir_all(dst).unwrap();
    for entry in std::fs::read_dir(src).unwrap() {
        let entry = entry.unwrap();
        std::fs::copy(entry.path(), dst.join(entry.file_name())).unwrap();
    }
}

fn assert_matches_oracle(reference: &SimulationResult, got: &SimulationResult, label: &str) {
    oracle::assert_dt_bits_eq(label, reference.dt, got.dt);
    assert_eq!(reference.seismograms.len(), got.seismograms.len());
    // Samples recorded before the restore point were carried inside the
    // container verbatim — they must be bit-identical to the oracle's.
    let restored = oracle::bit_identical_prefix(&reference.seismograms, &got.seismograms);
    assert!(
        restored >= CHECKPOINT_EVERY,
        "{label}: restored prefix must be bit-identical \
         (got only {restored} matching samples)"
    );
    // The recomputed tail runs on a different decomposition, so halo
    // assembly order differs: f32 roundoff, not bit identity (same
    // envelope as distributed_run_matches_serial_seismograms).
    oracle::assert_seismograms_close(label, &reference.seismograms, &got.seismograms, 2e-3);
}

#[test]
fn checkpoint_at_w4_resumes_at_r2_and_r8() {
    let sim = base_sim();
    let (mesh, _) = sim.build_mesh();
    let profile = NetworkProfile::loopback();

    // Uninterrupted W=4 oracle.
    let oracle_dir = tmp_dir("specfem_elastic_oracle");
    let oracle = sim
        .try_run_with_mesh(
            &mesh,
            RunOptions {
                profile: Some(profile),
                checkpoint_dir: Some(&oracle_dir),
                resume: false,
                world: Some(4),
                dossier_dir: None,
            },
        )
        .unwrap();
    assert_eq!(oracle.ranks.len(), 4);

    // The same W=4 run, killed mid-flight after at least one complete
    // merged generation landed.
    let ckpt = tmp_dir("specfem_elastic_ckpt");
    let mut faulty = sim.clone();
    faulty.config.fault_plan = Some(FaultPlan::new(5).kill(1, KILL_STEP));
    let err = faulty.try_run_with_mesh(
        &mesh,
        RunOptions {
            profile: Some(profile),
            checkpoint_dir: Some(&ckpt),
            resume: false,
            world: Some(4),
            dossier_dir: None,
        },
    );
    assert!(err.is_err(), "the injected kill must abort the run");

    // One merged container per generation — O(1) files, not O(ranks).
    let files: Vec<String> = std::fs::read_dir(&ckpt)
        .unwrap()
        .map(|e| e.unwrap().file_name().to_string_lossy().into_owned())
        .collect();
    assert!(!files.is_empty());
    assert!(
        files.len() <= specfem_core::io::checkpoint::DEFAULT_KEEP,
        "kept generations bound the file count: {files:?}"
    );
    assert!(
        files
            .iter()
            .all(|f| f.starts_with("step") && f.ends_with(".sfcc")),
        "{files:?}"
    );

    // Resume the survivors on a SMALLER world (shrink-to-survive)...
    let ckpt8 = tmp_dir("specfem_elastic_ckpt_r8");
    copy_dir(&ckpt, &ckpt8);
    let r2 = sim
        .try_run_with_mesh(
            &mesh,
            RunOptions {
                profile: Some(profile),
                checkpoint_dir: Some(&ckpt),
                resume: true,
                world: Some(2),
                dossier_dir: None,
            },
        )
        .unwrap();
    assert_eq!(r2.ranks.len(), 2);
    assert_matches_oracle(&oracle, &r2, "W=4 -> R=2");

    // ...and on a LARGER one (grow) from the very same container bytes.
    let r8 = sim
        .try_run_with_mesh(
            &mesh,
            RunOptions {
                profile: Some(profile),
                checkpoint_dir: Some(&ckpt8),
                resume: true,
                world: Some(8),
                dossier_dir: None,
            },
        )
        .unwrap();
    assert_eq!(r8.ranks.len(), 8);
    assert_matches_oracle(&oracle, &r8, "W=4 -> R=8");

    for d in [&oracle_dir, &ckpt, &ckpt8] {
        let _ = std::fs::remove_dir_all(d);
    }
}

#[test]
fn resume_elastic_entry_point_runs_cold_and_warm() {
    // The facade-level API: `resume_elastic` is a cold start on an empty
    // directory and a true resume once a generation exists.
    let sim = base_sim();
    let dir = tmp_dir("specfem_elastic_api");
    let cold = sim
        .resume_elastic(NetworkProfile::loopback(), &dir, 3)
        .unwrap();
    assert_eq!(cold.ranks.len(), 3);
    // The cold run checkpointed; resuming at a different world size picks
    // those generations up and finishes immediately-comparable output.
    let warm = sim
        .resume_elastic(NetworkProfile::loopback(), &dir, 5)
        .unwrap();
    assert_eq!(warm.ranks.len(), 5);
    assert_eq!(cold.dt.to_bits(), warm.dt.to_bits());
    assert_eq!(cold.seismograms.len(), warm.seismograms.len());
    // The warm run restored a finished state (next_step = nsteps): its
    // records come straight out of the container, bit-identical.
    for (a, b) in cold.seismograms.iter().zip(&warm.seismograms) {
        assert_eq!(a.station, b.station);
        assert_eq!(a.data.len(), b.data.len());
    }
    let _ = std::fs::remove_dir_all(&dir);
}
