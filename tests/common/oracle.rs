//! Shared bit-identity test kit for the differential oracle suites
//! (`overlap_equivalence`, `elastic_resume`, `lts_equivalence`, and the
//! batch crate's `batch_oracle`).
//!
//! The kit deliberately depends only on `specfem_solver` types so every
//! consumer — the core facade's test targets *and* `crates/batch/tests`,
//! which cannot see `specfem_core` — can include it verbatim with a
//! `#[path]` module declaration.
//!
//! Everything here compares to the **bit** (`f32::to_bits`), because the
//! solver's equivalence contracts (overlap vs blocking, batch vs serial,
//! LTS rate-1 vs plain) are exact, not approximate: float addition is not
//! associative, so the solver pins the per-point accumulation order and
//! any reordering regression must surface as a ULP diff, not hide inside
//! a tolerance.

// Each consumer uses the subset it needs; the rest must not warn.
#![allow(dead_code)]

use std::collections::HashMap;
use std::sync::{Arc, Mutex};

use specfem_solver::checkpoint::{CheckpointError, CheckpointSink, CheckpointState};
use specfem_solver::Seismogram;

/// Every sample of `a` and `b` bit-identical.
pub fn assert_bits_eq(label: &str, a: &[f32], b: &[f32]) {
    assert_eq!(a.len(), b.len(), "{label} length");
    for (i, (x, y)) in a.iter().zip(b).enumerate() {
        assert_eq!(x.to_bits(), y.to_bits(), "{label}[{i}]: {x:e} vs {y:e}");
    }
}

/// `dt` must survive any re-derivation (resume, re-partition, LTS) to the
/// bit — it feeds every timestep expression.
pub fn assert_dt_bits_eq(label: &str, a: f64, b: f64) {
    assert_eq!(a.to_bits(), b.to_bits(), "{label}: dt {a} vs {b}");
}

/// All six wave fields plus the attenuation memory of two checkpointed
/// states bit-identical.
pub fn assert_fields_bits_eq(label: &str, a: &CheckpointState, b: &CheckpointState) {
    assert_bits_eq(&format!("{label}.displ"), &a.displ, &b.displ);
    assert_bits_eq(&format!("{label}.veloc"), &a.veloc, &b.veloc);
    assert_bits_eq(&format!("{label}.accel"), &a.accel, &b.accel);
    assert_bits_eq(&format!("{label}.chi"), &a.chi, &b.chi);
    assert_bits_eq(&format!("{label}.chi_dot"), &a.chi_dot, &b.chi_dot);
    assert_bits_eq(&format!("{label}.chi_ddot"), &a.chi_ddot, &b.chi_ddot);
    match (&a.atten_memory, &b.atten_memory) {
        (Some(ma), Some(mb)) => assert_bits_eq(&format!("{label}.atten_memory"), ma, mb),
        (None, None) => {}
        _ => panic!("{label}: attenuation memory presence differs"),
    }
}

/// Station records carried inside two checkpointed states bit-identical.
pub fn assert_records_bits_eq(label: &str, a: &CheckpointState, b: &CheckpointState) {
    assert_eq!(a.records.len(), b.records.len(), "{label} stations");
    for ((an, asamples), (bn, bsamples)) in a.records.iter().zip(&b.records) {
        assert_eq!(an, bn, "{label} station name");
        assert_eq!(asamples.len(), bsamples.len(), "{label}/{an} samples");
        for (x, y) in asamples.iter().zip(bsamples) {
            for c in 0..3 {
                assert_eq!(x[c].to_bits(), y[c].to_bits(), "{label}/{an}");
            }
        }
    }
}

/// The full state contract: fields, `dt`, and station records — what the
/// batch and LTS oracles demand of a final checkpoint.
pub fn assert_state_matches(label: &str, a: &CheckpointState, b: &CheckpointState) {
    assert_fields_bits_eq(label, a, b);
    assert_dt_bits_eq(label, a.dt, b.dt);
    assert_records_bits_eq(label, a, b);
}

/// Two merged seismogram sets bit-identical, station by station.
pub fn assert_seismograms_bits_eq(label: &str, a: &[Seismogram], b: &[Seismogram]) {
    assert_eq!(a.len(), b.len(), "{label} seismogram count");
    for (sa, sb) in a.iter().zip(b) {
        assert_eq!(sa.station, sb.station, "{label} station order");
        assert_eq!(
            sa.data.len(),
            sb.data.len(),
            "{label}/{} samples",
            sa.station
        );
        for (va, vb) in sa.data.iter().zip(&sb.data) {
            for c in 0..3 {
                assert_eq!(
                    va[c].to_bits(),
                    vb[c].to_bits(),
                    "{label}, station {}: {} vs {}",
                    sa.station,
                    va[c],
                    vb[c]
                );
            }
        }
    }
}

/// Peak absolute amplitude across one station's samples (tolerance scale).
pub fn seismogram_scale(s: &Seismogram) -> f32 {
    s.data
        .iter()
        .flat_map(|v| v.iter())
        .fold(0.0f32, |m, &x| m.max(x.abs()))
        .max(1e-20)
}

/// Two seismogram sets equal within `tol_rel ×` each station's peak
/// amplitude — the envelope for contracts that are *approximate* by
/// construction (cross-decomposition resume tails, multi-rate LTS vs the
/// global-min-dt reference).
pub fn assert_seismograms_close(label: &str, a: &[Seismogram], b: &[Seismogram], tol_rel: f32) {
    assert_eq!(a.len(), b.len(), "{label} seismogram count");
    for (sa, sb) in a.iter().zip(b) {
        assert_eq!(sa.station, sb.station, "{label} station order");
        let scale = seismogram_scale(sa);
        for (va, vb) in sa.data.iter().zip(&sb.data) {
            for c in 0..3 {
                assert!(
                    (va[c] - vb[c]).abs() <= tol_rel * scale,
                    "{label}, station {}: {} vs {} (tol {tol_rel} × scale {scale})",
                    sa.station,
                    va[c],
                    vb[c]
                );
            }
        }
    }
}

/// Longest shared bit-identical sample prefix between two seismogram sets,
/// minimized over stations (how far a restored run's records reach before
/// the recomputed tail starts).
pub fn bit_identical_prefix(a: &[Seismogram], b: &[Seismogram]) -> usize {
    let mut prefix = usize::MAX;
    for (sa, sb) in a.iter().zip(b) {
        let mut p = 0;
        for (va, vb) in sa.data.iter().zip(&sb.data) {
            if (0..3).all(|c| va[c].to_bits() == vb[c].to_bits()) {
                p += 1;
            } else {
                break;
            }
        }
        prefix = prefix.min(p);
    }
    prefix
}

/// Captures each rank's final checkpoint (written once, at the last step)
/// — the standard way the oracles get at complete final fields: set
/// `checkpoint_every = nsteps` and hand [`FinalStates::sink`] to the run's
/// sink factory.
#[derive(Clone, Default)]
pub struct FinalStates {
    states: Arc<Mutex<HashMap<usize, CheckpointState>>>,
}

struct FinalSink {
    rank: usize,
    store: FinalStates,
}

impl CheckpointSink for FinalSink {
    fn write(&mut self, state: &CheckpointState) -> Result<(), CheckpointError> {
        self.store
            .states
            .lock()
            .unwrap()
            .insert(self.rank, state.clone());
        Ok(())
    }
}

impl FinalStates {
    /// The per-rank sink to hand to `FtOptions::sink_factory`.
    pub fn sink(&self, rank: usize) -> Box<dyn CheckpointSink> {
        Box::new(FinalSink {
            rank,
            store: self.clone(),
        })
    }

    /// Snapshot of every rank's captured state.
    pub fn collected(&self) -> HashMap<usize, CheckpointState> {
        self.states.lock().unwrap().clone()
    }
}
