//! Physics validation against analytic expectations: P-wave travel time in
//! a homogeneous ball, geometric spreading, and reciprocity-flavoured
//! sanity checks. These are the laptop-scale stand-ins for the
//! normal-mode benchmarks the paper cites (§3).

use specfem_core::mesh::{GlobalMesh, MeshParams, Partition};
use specfem_core::model::{HomogeneousModel, SourceTimeFunction, StfKind};
use specfem_core::solver::{run_serial, SolverConfig, SourceSpec};
use specfem_core::Station;

const VP: f64 = 8000.0;
const VS: f64 = 4500.0;

fn homogeneous_mesh(nex: usize) -> GlobalMesh {
    let params = MeshParams::new(nex, 1);
    let model = HomogeneousModel {
        rho: 3000.0,
        vp: VP,
        vs: VS,
        radius: specfem_core::model::EARTH_RADIUS_M,
        q_mu: 600.0,
    };
    GlobalMesh::build(&params, &model)
}

#[test]
fn p_wave_arrives_at_the_analytic_travel_time() {
    let mesh = homogeneous_mesh(6);
    // Vertical point force at 1000 km depth under the north pole; a
    // receiver right above at the pole sees a direct P arrival after
    // depth / vp.
    let depth = 1.0e6;
    let r_src = specfem_core::model::EARTH_RADIUS_M - depth;
    let hdur = 40.0;
    let stf = SourceTimeFunction::new(StfKind::Ricker, hdur);
    let config = SolverConfig {
        // Long enough to contain the ~185 s arrival at this mesh's dt.
        nsteps: 1100,
        source: SourceSpec::PointForce {
            position: [0.0, 0.0, r_src],
            force: [0.0, 0.0, 1.0e18],
            stf,
        },
        exact_station_location: true,
        ..SolverConfig::default()
    };
    let stations = vec![Station {
        name: "POLE".into(),
        lat_deg: 90.0,
        lon_deg: 0.0,
    }];
    let result = run_serial(&mesh, &config, &stations);
    let seis = &result.seismograms[0];
    // Peak-based pick: at coarse resolution the discrete point source has
    // a small immediate footprint across its (large) element, so a
    // threshold pick triggers on near-field leakage; the energy *maximum*
    // is the robust arrival proxy.
    let (pick_idx, peak) = seis
        .data
        .iter()
        .enumerate()
        .map(|(i, v)| (i, v[2].abs()))
        .fold((0, 0.0f32), |acc, x| if x.1 > acc.1 { x } else { acc });
    assert!(peak > 0.0);
    let pick = pick_idx as f64 * seis.dt;
    // Expected: travel time + the Ricker peak delay (1.5·hdur).
    let travel = depth / VP;
    let expect = travel + 1.5 * hdur;
    let err = (pick - expect).abs();
    assert!(
        err < 2.0 * hdur,
        "P peak at {pick:.1} s, expected ≈ {expect:.1} s (travel {travel:.1} s)"
    );
}

#[test]
fn closer_station_sees_earlier_and_larger_arrival() {
    let mesh = homogeneous_mesh(4);
    let config = SolverConfig {
        nsteps: 500,
        source: SourceSpec::PointForce {
            position: [0.0, 0.0, 5.0e6],
            force: [0.0, 0.0, 1.0e18],
            stf: SourceTimeFunction::new(StfKind::Ricker, 60.0),
        },
        ..SolverConfig::default()
    };
    let stations = vec![
        Station {
            name: "NEAR".into(),
            lat_deg: 75.0,
            lon_deg: 0.0,
        },
        Station {
            name: "MID".into(),
            lat_deg: 20.0,
            lon_deg: 0.0,
        },
    ];
    let result = run_serial(&mesh, &config, &stations);
    let metric = |name: &str| {
        let s = result
            .seismograms
            .iter()
            .find(|s| s.station == name)
            .unwrap();
        let peak: f32 = s
            .data
            .iter()
            .flat_map(|v| v.iter())
            .fold(0.0f32, |m, &x| m.max(x.abs()));
        let pick = s
            .data
            .iter()
            .position(|v| v.iter().any(|&x| x.abs() > 0.2 * peak))
            .unwrap_or(usize::MAX);
        (pick, peak)
    };
    let (t_near, a_near) = metric("NEAR");
    let (t_mid, a_mid) = metric("MID");
    assert!(t_near < t_mid, "near pick {t_near} vs mid pick {t_mid}");
    assert!(
        a_near > a_mid,
        "geometric spreading: near peak {a_near} vs mid {a_mid}"
    );
}

#[test]
fn doubling_the_force_doubles_the_response_linearity() {
    // The solver is linear: scaling the source scales the seismogram.
    let mesh = homogeneous_mesh(4);
    let run = |scale: f64| {
        let config = SolverConfig {
            nsteps: 120,
            source: SourceSpec::PointForce {
                position: [0.0, 0.0, 5.5e6],
                force: [0.0, 0.0, scale * 1.0e17],
                stf: SourceTimeFunction::new(StfKind::Gaussian, 80.0),
            },
            ..SolverConfig::default()
        };
        let stations = vec![Station {
            name: "LIN".into(),
            lat_deg: 60.0,
            lon_deg: 45.0,
        }];
        run_serial(&mesh, &config, &stations).seismograms[0]
            .data
            .clone()
    };
    let one = run(1.0);
    let two = run(2.0);
    let scale: f32 = one
        .iter()
        .flat_map(|v| v.iter())
        .fold(0.0f32, |m, &x| m.max(x.abs()));
    assert!(scale > 0.0);
    for (a, b) in one.iter().zip(&two) {
        for c in 0..3 {
            assert!(
                (2.0 * a[c] - b[c]).abs() < 1e-3 * scale,
                "nonlinear response: 2×{} vs {}",
                a[c],
                b[c]
            );
        }
    }
}

#[test]
fn mesh_quality_report_matches_resolution_law_shape() {
    // Empirical shortest period from the 5-points-per-wavelength rule
    // should scale like 1/NEX (the paper's T = 17·256/NEX law).
    let q4 = {
        let mesh = homogeneous_mesh(4);
        Partition::serial(&mesh).extract(&mesh, 0).quality()
    };
    let q8 = {
        let mesh = homogeneous_mesh(8);
        Partition::serial(&mesh).extract(&mesh, 0).quality()
    };
    let ratio = q4.shortest_period_s / q8.shortest_period_s;
    assert!(
        (ratio - 2.0).abs() < 0.4,
        "period ratio NEX4/NEX8 = {ratio} (expected ≈ 2)"
    );
    assert!(q8.dt_stable_s < q4.dt_stable_s);
}
