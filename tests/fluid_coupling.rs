//! Extra cross-crate physics checks on the fluid outer core and its
//! coupling: waves must actually traverse the fluid (PKP-style paths), and
//! removing the coupling must visibly decouple the core.

use specfem_core::comm::SerialComm;
use specfem_core::mesh::{GlobalMesh, MeshParams, Partition};
use specfem_core::model::{Prem, SourceTimeFunction, StfKind};
use specfem_core::solver::{RankSolver, SolverConfig, SourceSpec};

fn prem_mesh() -> GlobalMesh {
    GlobalMesh::build(&MeshParams::new(4, 1), &Prem::isotropic_no_ocean())
}

#[test]
fn fluid_core_is_excited_through_the_cmb() {
    // A mantle source must pump energy into the outer-core potential via
    // the displacement-based coupling.
    let mesh = prem_mesh();
    let local = Partition::serial(&mesh).extract(&mesh, 0);
    let config = SolverConfig {
        nsteps: 250,
        source: SourceSpec::PointForce {
            // Deep mantle source near the CMB.
            position: [0.0, 0.0, 3.8e6],
            force: [0.0, 0.0, 1.0e18],
            stf: SourceTimeFunction::new(StfKind::Ricker, 150.0),
        },
        ..SolverConfig::default()
    };
    let mut comm = SerialComm::new();
    let solver = RankSolver::new(local, &config, &[], &mut comm);
    let mut solver = solver;
    let mut max_chi: f32 = 0.0;
    for istep in 0..config.nsteps {
        solver.step(istep, &mut comm).unwrap();
        let m = solver
            .fields
            .chi_dot
            .iter()
            .map(|v| v.abs())
            .fold(0.0f32, f32::max);
        max_chi = max_chi.max(m);
    }
    assert!(
        max_chi > 0.0 && max_chi.is_finite(),
        "fluid potential never excited: {max_chi}"
    );
}

#[test]
fn inner_core_is_reached_only_through_the_fluid() {
    // Track the inner-core solid motion: it can only be excited through
    // CMB→fluid→ICB coupling, so it must lag the fluid excitation.
    let mesh = prem_mesh();
    let local = Partition::serial(&mesh).extract(&mesh, 0);
    // Mark inner-core points.
    let n3 = local.points_per_element();
    let mut inner = vec![false; local.nglob];
    for e in 0..local.nspec {
        if local.region[e].is_inner_core() {
            for &p in &local.ibool[e * n3..(e + 1) * n3] {
                inner[p as usize] = true;
            }
        }
    }
    let config = SolverConfig {
        nsteps: 300,
        source: SourceSpec::PointForce {
            position: [0.0, 0.0, 3.8e6],
            force: [0.0, 0.0, 1.0e18],
            stf: SourceTimeFunction::new(StfKind::Ricker, 120.0),
        },
        ..SolverConfig::default()
    };
    let mut comm = SerialComm::new();
    let mut solver = RankSolver::new(local, &config, &[], &mut comm);
    let mut first_fluid: Option<usize> = None;
    let mut first_inner: Option<usize> = None;
    for istep in 0..config.nsteps {
        solver.step(istep, &mut comm).unwrap();
        if first_fluid.is_none() {
            let m = solver
                .fields
                .chi_dot
                .iter()
                .map(|v| v.abs())
                .fold(0.0f32, f32::max);
            if m > 1e-12 {
                first_fluid = Some(istep);
            }
        }
        if first_inner.is_none() {
            let mut m = 0.0f32;
            for (p, &is_inner) in inner.iter().enumerate() {
                if is_inner {
                    for c in 0..3 {
                        m = m.max(solver.fields.veloc[p * 3 + c].abs());
                    }
                }
            }
            if m > 1e-10 {
                first_inner = Some(istep);
            }
        }
    }
    let ff = first_fluid.expect("fluid must be excited");
    let fi = first_inner.expect("inner core must eventually move");
    assert!(
        ff <= fi,
        "inner core moved (step {fi}) before the fluid (step {ff})"
    );
}
