//! The clustered-LTS differential oracle (DESIGN.md §3k): with every
//! element forced to rate 1 (`lts_all_rate_one`), the LTS timeloop —
//! per-cluster contribution kernels, frozen buffers, canonical scatter —
//! must be **bit-identical** to the plain timeloop on seismograms and
//! final checkpointed fields, for both kernel families, serial and
//! partitioned, overlapped and blocking. The multi-rate path is validated
//! against the global-min-dt reference within a stated tolerance, and the
//! checkpoint alignment rules (cap divides `checkpoint_every`, resume only
//! at full-cycle boundaries) are enforced as typed failures.

use std::collections::HashMap;

use specfem_comm::SerialComm;
use specfem_core::comm::NetworkProfile;
use specfem_core::kernels::KernelVariant;
use specfem_core::mesh::stations::Station;
use specfem_core::mesh::{GlobalMesh, MeshParams, Partition};
use specfem_core::model::{Prem, SourceTimeFunction, StfKind};
use specfem_core::solver::checkpoint::{CheckpointSink, CheckpointState};
use specfem_core::solver::{
    merge_seismograms, try_run_distributed, FtOptions, RankSolver, Seismogram, SolverConfig,
    SolverError, SourceSpec,
};

#[path = "common/oracle.rs"]
mod oracle;
use oracle::FinalStates;

fn prem_mesh(nproc: usize) -> GlobalMesh {
    GlobalMesh::build(&MeshParams::new(4, nproc), &Prem::isotropic_no_ocean())
}

fn point_force() -> SourceSpec {
    SourceSpec::PointForce {
        position: [0.0, 0.0, 5.8e6],
        force: [0.0, 0.0, 1.0e18],
        stf: SourceTimeFunction::new(StfKind::Ricker, 200.0),
    }
}

fn stations() -> Vec<Station> {
    vec![
        Station {
            name: "NEAR".into(),
            lat_deg: 55.0,
            lon_deg: 15.0,
        },
        Station {
            name: "FAR".into(),
            lat_deg: -40.0,
            lon_deg: 130.0,
        },
    ]
}

fn base_config(nsteps: usize) -> SolverConfig {
    SolverConfig {
        nsteps,
        source: point_force(),
        ..SolverConfig::default()
    }
}

/// Serial manual `RankSolver` loop capturing final fields + records.
fn serial_state(mesh: &GlobalMesh, config: &SolverConfig) -> CheckpointState {
    let local = Partition::serial(mesh).extract(mesh, 0);
    let mut comm = SerialComm::new();
    let mut solver = RankSolver::new(local, config, &stations(), &mut comm);
    for istep in 0..config.nsteps {
        solver.step(istep, &mut comm).expect("serial step");
    }
    solver.capture_checkpoint(0, 1, config.nsteps)
}

/// The serial rate-1 harness: plain vs all-rate-one LTS must be 0-ULP.
fn assert_rate1_serial_identical(config: &SolverConfig, label: &str) {
    let mesh = prem_mesh(1);
    let plain = serial_state(&mesh, config);
    let lts_cfg = SolverConfig {
        lts_all_rate_one: true,
        ..config.clone()
    };
    let lts = serial_state(&mesh, &lts_cfg);
    oracle::assert_state_matches(label, &lts, &plain);
    match (&plain.atten_memory, &lts.atten_memory) {
        (Some(a), Some(b)) => oracle::assert_bits_eq(&format!("{label}.atten_memory"), a, b),
        (None, None) => {}
        _ => panic!("{label}: attenuation memory presence differs"),
    }
}

#[test]
fn rate1_lts_is_bit_identical_serial_reference_kernels() {
    let config = SolverConfig {
        attenuation: true, // memory-variable updates must move to LTS cleanly
        ..base_config(20)
    };
    assert_rate1_serial_identical(&config, "rate1/reference");
}

#[test]
fn rate1_lts_is_bit_identical_serial_simd_kernels() {
    let config = SolverConfig {
        variant: KernelVariant::Simd,
        ..base_config(20)
    };
    assert_rate1_serial_identical(&config, "rate1/simd");
}

#[test]
fn rate1_lts_is_bit_identical_with_gravity_and_rotation() {
    // Gravity exercises the `−accum + body` emit expression; rotation the
    // corrector (untouched by LTS, but the fields feeding it must match).
    let config = SolverConfig {
        gravity: true,
        rotation: true,
        ..base_config(12)
    };
    assert_rate1_serial_identical(&config, "rate1/gravity+rotation");
}

#[test]
fn rate1_lts_blocking_path_is_bit_identical() {
    let config = SolverConfig {
        overlap: false,
        ..base_config(16)
    };
    assert_rate1_serial_identical(&config, "rate1/blocking");
}

/// Distributed run returning merged seismograms, per-rank final states,
/// and per-rank posted message counts.
fn run_partitioned(
    mesh: &GlobalMesh,
    config: &SolverConfig,
) -> (Vec<Seismogram>, HashMap<usize, CheckpointState>, Vec<u64>) {
    let mut config = config.clone();
    config.checkpoint_every = config.nsteps; // exactly one final capture
    let store = FinalStates::default();
    let sink_store = store.clone();
    let sink_factory = move |rank: usize| -> Box<dyn CheckpointSink> { sink_store.sink(rank) };
    let results = try_run_distributed(
        mesh,
        &config,
        &stations(),
        NetworkProfile::loopback(),
        FtOptions {
            sink_factory: Some(&sink_factory),
            restore: None,
            flight: None,
        },
    );
    let ranks: Vec<_> = results
        .into_iter()
        .map(|r| r.expect("every rank must finish"))
        .collect();
    let messages = ranks.iter().map(|r| r.comm.messages_sent).collect();
    (merge_seismograms(&ranks), store.collected(), messages)
}

#[test]
fn rate1_lts_is_bit_identical_partitioned_with_unchanged_message_counts() {
    let mesh = prem_mesh(1); // 6 ranks
    let config = base_config(12);
    let (seis_plain, fields_plain, msgs_plain) = run_partitioned(&mesh, &config);
    let lts_cfg = SolverConfig {
        lts_all_rate_one: true,
        ..config
    };
    let (seis_lts, fields_lts, msgs_lts) = run_partitioned(&mesh, &lts_cfg);

    oracle::assert_seismograms_bits_eq("partitioned rate1", &seis_plain, &seis_lts);
    assert_eq!(fields_plain.len(), fields_lts.len());
    for (rank, a) in &fields_plain {
        oracle::assert_fields_bits_eq(&format!("rank {rank}"), a, &fields_lts[rank]);
    }
    // LTS gates only the kernels; the halo exchange runs every fine step,
    // so the posted message count per rank must not change.
    assert_eq!(msgs_plain, msgs_lts, "LTS must not change halo traffic");
}

#[test]
fn multi_rate_lts_tracks_the_global_min_dt_reference() {
    // The real multi-rate scheme (frozen forces on coarse clusters) is an
    // approximation; it must stay within a small fraction of the peak
    // amplitude of the global-min-dt reference over a physically meaningful
    // run — the tolerance stated in EXPERIMENTS.md E-LTS.
    let mesh = prem_mesh(1);
    let config = SolverConfig {
        attenuation: true, // per-level recursion constants in play
        ..base_config(60)
    };
    let reference = serial_state(&mesh, &config);
    let lts_cfg = SolverConfig {
        lts_max_rate: 4,
        ..config
    };
    let lts = serial_state(&mesh, &lts_cfg);
    assert_eq!(reference.records.len(), lts.records.len());
    for ((name_a, rec_a), (name_b, rec_b)) in reference.records.iter().zip(&lts.records) {
        assert_eq!(name_a, name_b);
        let scale = rec_a
            .iter()
            .flat_map(|v| v.iter())
            .fold(0.0f32, |m, &x| m.max(x.abs()))
            .max(1e-20);
        for (va, vb) in rec_a.iter().zip(rec_b) {
            for c in 0..3 {
                assert!(
                    (va[c] - vb[c]).abs() <= 0.05 * scale,
                    "station {name_a}: reference {} vs LTS {} (scale {scale})",
                    va[c],
                    vb[c]
                );
            }
        }
    }
}

#[test]
fn multi_rate_run_reports_lts_telemetry() {
    let mesh = prem_mesh(1);
    let config = SolverConfig {
        lts_max_rate: 4,
        ..base_config(8)
    };
    let results = try_run_distributed(
        &mesh,
        &config,
        &stations(),
        NetworkProfile::loopback(),
        FtOptions::default(),
    );
    let mut any_multi_rate = false;
    for r in results {
        let r = r.expect("rank ok");
        let lts = r.lts.expect("LTS telemetry present");
        assert_eq!(lts.max_rate, 4);
        assert!(!lts.levels.is_empty());
        assert!(lts
            .levels
            .iter()
            .all(|&(rate, _)| rate.is_power_of_two() && rate <= 4));
        assert_eq!(lts.element_steps_total, (r.nspec * r.nsteps) as u64);
        if lts.levels.iter().any(|&(rate, _)| rate > 1) {
            any_multi_rate = true;
            assert!(lts.element_steps_saved > 0);
            assert!(lts.theoretical_speedup > 1.0);
        }
    }
    assert!(
        any_multi_rate,
        "PREM NEX-4 must produce a multi-rate spread"
    );
}

#[test]
fn plain_runs_carry_no_lts_telemetry() {
    let mesh = prem_mesh(1);
    let local = Partition::serial(&mesh).extract(&mesh, 0);
    let mut comm = SerialComm::new();
    let solver = RankSolver::new(local, &base_config(2), &stations(), &mut comm);
    let result = solver.run(&mut comm);
    assert!(result.lts.is_none());
}

#[test]
#[should_panic(expected = "CHECKPOINT_EVERY")]
fn misaligned_checkpoint_interval_is_rejected_at_setup() {
    let mesh = prem_mesh(1);
    let local = Partition::serial(&mesh).extract(&mesh, 0);
    let config = SolverConfig {
        lts_max_rate: 4,
        checkpoint_every: 6, // not a multiple of the cap
        ..base_config(12)
    };
    let mut comm = SerialComm::new();
    let _ = RankSolver::new(local, &config, &[], &mut comm);
}

#[test]
fn misaligned_resume_step_is_a_typed_checkpoint_error() {
    let mesh = prem_mesh(1);
    let config = SolverConfig {
        lts_max_rate: 4,
        checkpoint_every: 8,
        ..base_config(16)
    };
    let local = Partition::serial(&mesh).extract(&mesh, 0);
    let mut comm = SerialComm::new();
    let mut solver = RankSolver::new(local, &config, &[], &mut comm);
    // A full-cycle boundary restores fine...
    let aligned = solver.capture_checkpoint(0, 1, 8);
    solver.restore_from(aligned).expect("aligned resume");
    // ...a mid-cycle step must be refused: the frozen contribution buffers
    // are not persisted, so resuming there would run on stale forces.
    let mut misaligned = solver.capture_checkpoint(0, 1, 8);
    misaligned.next_step = 10;
    match solver.restore_from(misaligned) {
        Err(SolverError::Checkpoint(e)) => {
            assert!(e.to_string().contains("full-cycle"), "{e}");
        }
        other => panic!("expected a typed checkpoint error, got {other:?}"),
    }
}
