//! End-to-end observability: a traced run must yield well-formed span
//! trees on every rank, a Perfetto export that actually parses as JSON,
//! and an IPM report whose per-rank bytes agree exactly with the
//! communicator's own accounting.

use specfem_core::{NetworkProfile, Simulation};

#[test]
fn traced_run_produces_profiles_and_parseable_artifacts() {
    let dir = std::env::temp_dir().join("specfem_obs_integration");
    let _ = std::fs::remove_dir_all(&dir);

    let sim = Simulation::builder()
        .resolution(4)
        .processors(1) // 6 ranks
        .steps(8)
        .stations(2)
        .trace_dir(&dir)
        .metrics_every(2)
        .build()
        .unwrap();
    let result = sim.run_parallel(NetworkProfile::loopback());
    assert_eq!(result.ranks.len(), 6);

    // Every rank recorded a well-formed trace covering the main loop.
    for r in &result.ranks {
        let p = r.profile.as_ref().expect("traced rank has a profile");
        assert_eq!(p.rank, r.rank);
        p.trace.check_well_formed().unwrap();
        assert!(p.trace.events.iter().any(|e| e.name == "timeloop"));
        assert!(p.trace.events.iter().any(|e| e.name == "forces.solid"));
        assert!(p.metrics.histograms.contains_key("solver.step_ns"));
    }
    let mesher = result.mesher_profile.as_ref().expect("mesher profile");
    assert!(mesher.trace.events.iter().any(|e| e.name == "mesh.build"));

    // The Perfetto export is valid JSON with metadata and span events.
    let json = result.perfetto_json().expect("traced run exports a trace");
    let v = serde_json::from_str(&json).expect("Perfetto JSON parses");
    assert_eq!(v["displayTimeUnit"].as_str(), Some("ns"));
    let events = v["traceEvents"].as_array().unwrap();
    assert!(events.iter().any(|e| e["ph"].as_str() == Some("M")));
    assert!(events.iter().any(|e| e["ph"].as_str() == Some("X")));

    // IPM per-rank rows reproduce CommStats byte-for-byte.
    let report = result.ipm_report();
    let rj = serde_json::from_str(&report.to_json()).expect("report JSON parses");
    let per_rank = rj["per_rank"].as_array().unwrap();
    assert_eq!(per_rank.len(), result.ranks.len());
    for r in &result.ranks {
        let row = per_rank
            .iter()
            .find(|row| row["rank"].as_u64() == Some(r.rank as u64))
            .expect("every rank has a report row");
        assert_eq!(row["bytes_sent"].as_u64(), Some(r.comm.bytes_sent));
        assert_eq!(row["bytes_received"].as_u64(), Some(r.comm.bytes_received));
        assert_eq!(row["messages_sent"].as_u64(), Some(r.comm.messages_sent));
    }
    let total_sent: u64 = result.ranks.iter().map(|r| r.comm.bytes_sent).sum();
    assert_eq!(rj["totals"]["bytes_sent"].as_u64(), Some(total_sent));
    assert!(!report.phases.is_empty());
    assert!(report.phases.iter().any(|p| p.name == "comm.halo"));

    // `trace_dir` auto-wrote all three artifacts.
    for f in ["ipm_report.txt", "ipm_report.json", "trace.perfetto.json"] {
        assert!(dir.join(f).is_file(), "{f} missing from {}", dir.display());
    }
    let text = std::fs::read_to_string(dir.join("ipm_report.txt")).unwrap();
    assert!(text.contains("IPM-style report"));
    let on_disk = std::fs::read_to_string(dir.join("trace.perfetto.json")).unwrap();
    assert!(serde_json::from_str(&on_disk).is_ok());
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn untraced_run_records_nothing_but_still_reports() {
    let sim = Simulation::builder()
        .resolution(4)
        .steps(5)
        .stations(1)
        .build()
        .unwrap();
    let result = sim.run_serial();
    assert!(result.ranks[0].profile.is_none());
    assert!(result.mesher_profile.is_none());
    assert!(result.perfetto_json().is_none());

    // The IPM report still works from communication counters alone.
    let report = result.ipm_report();
    assert_eq!(report.ranks, 1);
    assert!(report.phases.is_empty());
    assert!(serde_json::from_str(&report.to_json()).is_ok());
}

#[test]
fn traced_serial_and_parallel_report_identical_physics() {
    // Tracing must not perturb the simulation: seismograms of a traced
    // run are bit-identical to an untraced one.
    let base = Simulation::builder()
        .resolution(4)
        .steps(6)
        .stations(2)
        .build()
        .unwrap();
    let traced = Simulation::builder()
        .resolution(4)
        .steps(6)
        .stations(2)
        .trace(true)
        .build()
        .unwrap();
    let a = base.run_serial();
    let b = traced.run_serial();
    assert_eq!(a.seismograms.len(), b.seismograms.len());
    for (sa, sb) in a.seismograms.iter().zip(&b.seismograms) {
        assert_eq!(sa.station, sb.station);
        assert_eq!(sa.data, sb.data);
    }
    assert!(b.ranks[0].profile.is_some());
}
