//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no crates.io access, so this vendored crate
//! reimplements the slice of proptest the workspace's property tests use:
//! the `proptest!` macro (with `#![proptest_config(...)]`), range and
//! `any::<T>()` strategies, tuple strategies, `prop::collection::vec`, and
//! the `prop_assert*` macros.
//!
//! Differences from real proptest, by design:
//! * sampling is plain seeded random generation — no shrinking on failure;
//! * the seed is derived deterministically from the test name, so every run
//!   explores the same cases (reproducible CI);
//! * failures report the formatted assertion message and case number.

use std::fmt;

/// Failure of one generated test case.
#[derive(Debug, Clone)]
pub struct TestCaseError {
    message: String,
}

impl TestCaseError {
    /// Build a failure with a message.
    pub fn fail(message: impl Into<String>) -> Self {
        Self {
            message: message.into(),
        }
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

/// Result type of a generated test-case body.
pub type TestCaseResult = Result<(), TestCaseError>;

/// Deterministic generator used to drive strategies (SplitMix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seed deterministically from a label (the test name).
    pub fn deterministic(label: &str) -> Self {
        // FNV-1a over the label, mixed once.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in label.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        Self {
            state: h ^ 0x9E37_79B9_7F4A_7C15,
        }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform draw from `[0, n)`.
    pub fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0);
        self.next_u64() % n
    }
}

/// A value generator. The stand-in generates directly (no shrink trees).
pub trait Strategy {
    /// The generated type.
    type Value;
    /// Generate one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;
}

macro_rules! impl_range_strategy_int {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty strategy range");
                let span = (hi as i128 - lo as i128 + 1) as u64;
                (lo as i128 + rng.below(span) as i128) as $t
            }
        }
    )*};
}
impl_range_strategy_int!(usize, u8, u16, u32, u64, i8, i16, i32, i64);

impl Strategy for std::ops::Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty strategy range");
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

impl Strategy for std::ops::Range<f32> {
    type Value = f32;
    fn generate(&self, rng: &mut TestRng) -> f32 {
        assert!(self.start < self.end, "empty strategy range");
        self.start + rng.unit_f64() as f32 * (self.end - self.start)
    }
}

/// Strategy produced by [`any`].
#[derive(Debug, Clone, Copy)]
pub struct Any<T> {
    _marker: std::marker::PhantomData<T>,
}

/// `any::<T>()` — the full-domain strategy for `T`.
pub fn any<T>() -> Any<T>
where
    Any<T>: Strategy,
{
    Any {
        _marker: std::marker::PhantomData,
    }
}

macro_rules! impl_any_uint {
    ($($t:ty),*) => {$(
        impl Strategy for Any<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_any_uint!(u8, u16, u32, u64, usize, i8, i16, i32, i64);

impl Strategy for Any<bool> {
    type Value = bool;
    fn generate(&self, rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Strategy for Any<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        // Finite, broad range; property tests here never rely on NaN/inf.
        (rng.unit_f64() - 0.5) * 2.0e12
    }
}

impl Strategy for Any<f32> {
    type Value = f32;
    fn generate(&self, rng: &mut TestRng) -> f32 {
        ((rng.unit_f64() - 0.5) * 2.0e6) as f32
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($name:ident),+)),+ $(,)?) => {$(
        #[allow(non_snake_case)]
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    )+};
}
impl_tuple_strategy!((A, B), (A, B, C), (A, B, C, D));

/// Collection-size specification: a fixed size or an inclusive-exclusive
/// range of sizes.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    /// Minimum length (inclusive).
    pub min: usize,
    /// Maximum length (exclusive).
    pub max_exclusive: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        Self {
            min: n,
            max_exclusive: n + 1,
        }
    }
}

impl From<std::ops::Range<usize>> for SizeRange {
    fn from(r: std::ops::Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        Self {
            min: r.start,
            max_exclusive: r.end,
        }
    }
}

/// The `prop::` namespace (`prop::collection::vec`).
pub mod prop {
    /// Collection strategies.
    pub mod collection {
        use super::super::{SizeRange, Strategy, TestRng};

        /// Strategy generating `Vec<S::Value>` with length drawn from `size`.
        #[derive(Debug, Clone)]
        pub struct VecStrategy<S> {
            element: S,
            size: SizeRange,
        }

        /// `prop::collection::vec(element, size)`.
        pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
            VecStrategy {
                element,
                size: size.into(),
            }
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;
            fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
                let span = (self.size.max_exclusive - self.size.min).max(1) as u64;
                let len = self.size.min + rng.below(span) as usize;
                (0..len).map(|_| self.element.generate(rng)).collect()
            }
        }
    }
}

/// Per-`proptest!` block configuration.
#[derive(Debug, Clone, Copy)]
pub struct ProptestConfig {
    /// Number of random cases to run per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// Run `cases` random cases.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 64 }
    }
}

/// Everything the tests import.
pub mod prelude {
    pub use crate::{
        any, prop, prop_assert, prop_assert_eq, prop_assert_ne, proptest, ProptestConfig, Strategy,
        TestCaseError, TestCaseResult,
    };
}

/// The test-defining macro. Supports an optional leading
/// `#![proptest_config(expr)]` and any number of `#[test] fn name(args) {}`
/// items whose arguments are `name in strategy` bindings.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($cfg:expr)]
        $($rest:tt)*
    ) => {
        $crate::__proptest_items! { config = ($cfg); $($rest)* }
    };
    ( $($rest:tt)* ) => {
        $crate::__proptest_items! { config = ($crate::ProptestConfig::default()); $($rest)* }
    };
}

/// Internal expansion helper for [`proptest!`]. Not public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    ( config = ($cfg:expr); ) => {};
    (
        config = ($cfg:expr);
        $(#[$meta:meta])*
        fn $name:ident( $($arg:ident in $strat:expr),* $(,)? ) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            let mut rng = $crate::TestRng::deterministic(concat!(module_path!(), "::", stringify!($name)));
            for case in 0..config.cases {
                $(let $arg = $crate::Strategy::generate(&($strat), &mut rng);)*
                let outcome: ::std::result::Result<(), $crate::TestCaseError> = (|| {
                    $body
                    #[allow(unreachable_code)]
                    ::std::result::Result::Ok(())
                })();
                if let ::std::result::Result::Err(e) = outcome {
                    panic!(
                        "proptest '{}' failed on case {}/{}: {}",
                        stringify!($name),
                        case + 1,
                        config.cases,
                        e
                    );
                }
            }
        }
        $crate::__proptest_items! { config = ($cfg); $($rest)* }
    };
}

/// Assert inside a proptest body; failure aborts the current case with the
/// message instead of panicking.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: {}",
                stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// `prop_assert!(a == b)` with value reporting.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let (lhs, rhs) = (&$a, &$b);
        if lhs != rhs {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: {} == {} (left: {:?}, right: {:?})",
                stringify!($a),
                stringify!($b),
                lhs,
                rhs
            )));
        }
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (lhs, rhs) = (&$a, &$b);
        if lhs != rhs {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    }};
}

/// `prop_assert!(a != b)` with value reporting.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {{
        let (lhs, rhs) = (&$a, &$b);
        if lhs == rhs {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: {} != {} (both: {:?})",
                stringify!($a),
                stringify!($b),
                lhs
            )));
        }
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (lhs, rhs) = (&$a, &$b);
        if lhs == rhs {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(40))]

        /// Generated values respect their range strategies.
        #[test]
        fn ranges_respected(
            n in 3usize..17,
            x in -2.0f64..5.0,
            v in prop::collection::vec(0u32..100, 1..20),
            pair in prop::collection::vec((0usize..4, 0usize..6), 0..10),
        ) {
            prop_assert!((3..17).contains(&n));
            prop_assert!((-2.0..5.0).contains(&x), "x out of range: {x}");
            prop_assert!(!v.is_empty() && v.len() < 20);
            for &val in &v {
                prop_assert!(val < 100);
            }
            for &(a, b) in &pair {
                prop_assert!(a < 4 && b < 6);
            }
        }

        #[test]
        fn early_return_ok_is_accepted(flag in any::<bool>(), _x in any::<u64>()) {
            if flag {
                return Ok(());
            }
            prop_assert_ne!(1, 2);
            prop_assert_eq!(2 + 2, 4);
        }
    }

    #[test]
    fn rng_is_deterministic_per_label() {
        let mut a = crate::TestRng::deterministic("t");
        let mut b = crate::TestRng::deterministic("t");
        assert_eq!(a.next_u64(), b.next_u64());
        let mut c = crate::TestRng::deterministic("u");
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    #[should_panic(expected = "failed on case")]
    fn failing_property_panics_with_case_number() {
        proptest! {
            #![proptest_config(ProptestConfig::with_cases(5))]
            #[allow(unused)]
            fn always_fails(x in 0usize..10) {
                prop_assert!(x > 100, "x was {x}");
            }
        }
        always_fails();
    }
}
