//! Offline stand-in for the `rayon` crate.
//!
//! The build environment has no crates.io access. This vendored crate keeps
//! the workspace compiling by making `par_iter()` return the *standard
//! sequential iterator*: every downstream adapter (`map`, `zip`, `collect`,
//! …) then resolves to the `std::iter` machinery unchanged. Data-parallel
//! speedup is deliberately traded for a zero-dependency build; all in-repo
//! uses are correctness-neutral under sequential execution (pure per-element
//! maps in the mesher's geometry/material passes).

/// `use rayon::prelude::*` — the only entry point the workspace uses.
pub mod prelude {
    /// `.par_iter()` on slice-like containers (sequential fallback).
    pub trait IntoParallelRefIterator<'data> {
        /// The iterator type (here: the plain sequential one).
        type Iter: Iterator<Item = Self::Item>;
        /// Item yielded by the iterator.
        type Item: 'data;
        /// Return the "parallel" iterator.
        fn par_iter(&'data self) -> Self::Iter;
    }

    impl<'data, T: 'data + Sync> IntoParallelRefIterator<'data> for [T] {
        type Iter = std::slice::Iter<'data, T>;
        type Item = &'data T;
        fn par_iter(&'data self) -> Self::Iter {
            self.iter()
        }
    }

    impl<'data, T: 'data + Sync> IntoParallelRefIterator<'data> for Vec<T> {
        type Iter = std::slice::Iter<'data, T>;
        type Item = &'data T;
        fn par_iter(&'data self) -> Self::Iter {
            self.iter()
        }
    }

    /// `.par_iter_mut()` on slice-like containers (sequential fallback).
    pub trait IntoParallelRefMutIterator<'data> {
        /// The iterator type (here: the plain sequential one).
        type Iter: Iterator<Item = Self::Item>;
        /// Item yielded by the iterator.
        type Item: 'data;
        /// Return the "parallel" iterator.
        fn par_iter_mut(&'data mut self) -> Self::Iter;
    }

    impl<'data, T: 'data + Send> IntoParallelRefMutIterator<'data> for [T] {
        type Iter = std::slice::IterMut<'data, T>;
        type Item = &'data mut T;
        fn par_iter_mut(&'data mut self) -> Self::Iter {
            self.iter_mut()
        }
    }

    impl<'data, T: 'data + Send> IntoParallelRefMutIterator<'data> for Vec<T> {
        type Iter = std::slice::IterMut<'data, T>;
        type Item = &'data mut T;
        fn par_iter_mut(&'data mut self) -> Self::Iter {
            self.iter_mut()
        }
    }

    /// `.into_par_iter()` (sequential fallback).
    pub trait IntoParallelIterator {
        /// The iterator type (here: the plain sequential one).
        type Iter: Iterator<Item = Self::Item>;
        /// Item yielded by the iterator.
        type Item;
        /// Return the "parallel" iterator.
        fn into_par_iter(self) -> Self::Iter;
    }

    impl<T: Send> IntoParallelIterator for Vec<T> {
        type Iter = std::vec::IntoIter<T>;
        type Item = T;
        fn into_par_iter(self) -> Self::Iter {
            self.into_iter()
        }
    }

    impl IntoParallelIterator for std::ops::Range<usize> {
        type Iter = std::ops::Range<usize>;
        type Item = usize;
        fn into_par_iter(self) -> Self::Iter {
            self
        }
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn par_iter_behaves_like_iter() {
        let v = vec![1, 2, 3, 4];
        let doubled: Vec<i32> = v.par_iter().map(|x| x * 2).collect();
        assert_eq!(doubled, vec![2, 4, 6, 8]);
        let zipped: Vec<i32> = v.par_iter().zip(&doubled).map(|(a, b)| a + b).collect();
        assert_eq!(zipped, vec![3, 6, 9, 12]);
    }

    #[test]
    fn into_par_iter_on_range_and_vec() {
        let s: usize = (0usize..5).into_par_iter().sum();
        assert_eq!(s, 10);
        let v: Vec<usize> = vec![5usize, 6].into_par_iter().collect();
        assert_eq!(v, vec![5, 6]);
    }
}
