//! Offline stand-in for the `crossbeam-channel` crate.
//!
//! The build environment has no access to crates.io, so this vendored crate
//! provides the (small) subset of the API the workspace uses, backed by
//! `std::sync::mpsc`. Semantics match what the comm substrate relies on:
//! unbounded MPSC channels, cloneable senders, blocking and deadline-bounded
//! receives, and disconnect errors once every sender is dropped.

use std::sync::mpsc;
use std::time::{Duration, Instant};

/// Sending half of an unbounded channel.
pub struct Sender<T> {
    inner: mpsc::Sender<T>,
}

impl<T> Clone for Sender<T> {
    fn clone(&self) -> Self {
        Self {
            inner: self.inner.clone(),
        }
    }
}

/// Receiving half of an unbounded channel.
pub struct Receiver<T> {
    inner: mpsc::Receiver<T>,
}

/// Error returned by [`Sender::send`] when the receiver is gone.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SendError<T>(pub T);

/// Error returned by [`Receiver::recv`] when all senders are gone.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecvError;

/// Error returned by [`Receiver::recv_timeout`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecvTimeoutError {
    /// No message arrived within the timeout.
    Timeout,
    /// All senders disconnected and the buffer is drained.
    Disconnected,
}

/// Error returned by [`Receiver::try_recv`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TryRecvError {
    /// No message currently buffered.
    Empty,
    /// All senders disconnected and the buffer is drained.
    Disconnected,
}

impl<T> Sender<T> {
    /// Send a message, failing only if the receiver was dropped.
    pub fn send(&self, msg: T) -> Result<(), SendError<T>> {
        self.inner
            .send(msg)
            .map_err(|mpsc::SendError(m)| SendError(m))
    }
}

impl<T> Receiver<T> {
    /// Block until a message arrives or every sender disconnects.
    pub fn recv(&self) -> Result<T, RecvError> {
        self.inner.recv().map_err(|_| RecvError)
    }

    /// Block until a message arrives, the timeout elapses, or every sender
    /// disconnects.
    pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
        match self.inner.recv_timeout(timeout) {
            Ok(m) => Ok(m),
            Err(mpsc::RecvTimeoutError::Timeout) => Err(RecvTimeoutError::Timeout),
            Err(mpsc::RecvTimeoutError::Disconnected) => Err(RecvTimeoutError::Disconnected),
        }
    }

    /// Block until a message arrives or `deadline` passes.
    pub fn recv_deadline(&self, deadline: Instant) -> Result<T, RecvTimeoutError> {
        let now = Instant::now();
        let timeout = deadline.saturating_duration_since(now);
        self.recv_timeout(timeout)
    }

    /// Non-blocking receive.
    pub fn try_recv(&self) -> Result<T, TryRecvError> {
        match self.inner.try_recv() {
            Ok(m) => Ok(m),
            Err(mpsc::TryRecvError::Empty) => Err(TryRecvError::Empty),
            Err(mpsc::TryRecvError::Disconnected) => Err(TryRecvError::Disconnected),
        }
    }
}

/// Create an unbounded channel.
pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
    let (s, r) = mpsc::channel();
    (Sender { inner: s }, Receiver { inner: r })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn send_recv_roundtrip() {
        let (s, r) = unbounded();
        s.send(5i32).unwrap();
        assert_eq!(r.recv(), Ok(5));
    }

    #[test]
    fn timeout_fires_on_empty_channel() {
        let (_s, r) = unbounded::<i32>();
        assert_eq!(
            r.recv_timeout(Duration::from_millis(10)),
            Err(RecvTimeoutError::Timeout)
        );
    }

    #[test]
    fn disconnect_surfaces_after_drain() {
        let (s, r) = unbounded();
        s.send(1u8).unwrap();
        drop(s);
        assert_eq!(r.recv(), Ok(1));
        assert_eq!(r.recv(), Err(RecvError));
        assert_eq!(
            r.recv_timeout(Duration::from_millis(1)),
            Err(RecvTimeoutError::Disconnected)
        );
    }

    #[test]
    fn cloned_senders_feed_one_receiver() {
        let (s, r) = unbounded();
        let s2 = s.clone();
        std::thread::spawn(move || s2.send(7i64).unwrap())
            .join()
            .unwrap();
        s.send(8).unwrap();
        let mut got = vec![r.recv().unwrap(), r.recv().unwrap()];
        got.sort();
        assert_eq!(got, vec![7, 8]);
    }
}
