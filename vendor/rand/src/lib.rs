//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no crates.io access, so this vendored crate
//! implements the small slice of the `rand 0.8` API the workspace uses:
//! [`SeedableRng::seed_from_u64`], [`rngs::StdRng`], [`Rng::gen_range`] for
//! integer/float ranges, and [`seq::SliceRandom::shuffle`].
//!
//! The generator is xoshiro256** seeded through SplitMix64 — deterministic
//! across platforms, which is exactly what the mesher's seeded shuffles and
//! the fault-injection machinery need. It is NOT the same stream as the real
//! `rand::rngs::StdRng` (ChaCha12); all in-repo users only rely on
//! *determinism under a fixed seed*, not on a specific stream.

/// Core RNG trait: uniform `u64`s plus derived helpers.
pub trait RngCore {
    /// Next raw 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Next raw 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Construction from seeds.
pub trait SeedableRng: Sized {
    /// Build from a 64-bit seed (deterministic).
    fn seed_from_u64(seed: u64) -> Self;
}

/// Sampling helpers layered over [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform sample from a half-open range.
    fn gen_range<T: SampleRange>(&mut self, range: std::ops::Range<T>) -> T {
        T::sample(self, range)
    }

    /// Uniform `f64` in `[0, 1)`.
    fn gen_f64(&mut self) -> f64 {
        // 53 mantissa bits.
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// A uniformly random `bool`.
    fn gen_bool(&mut self, p: f64) -> bool {
        self.gen_f64() < p
    }
}

impl<R: RngCore> Rng for R {}

/// Types samplable from a `Range` by [`Rng::gen_range`].
pub trait SampleRange: Sized {
    /// Uniform sample in `[range.start, range.end)`.
    fn sample<R: RngCore + ?Sized>(rng: &mut R, range: std::ops::Range<Self>) -> Self;
}

macro_rules! impl_sample_int {
    ($($t:ty),*) => {$(
        impl SampleRange for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R, range: std::ops::Range<Self>) -> Self {
                assert!(range.start < range.end, "empty range");
                let span = (range.end as u128).wrapping_sub(range.start as u128) as u64;
                // Modulo bias is irrelevant for the in-repo uses (shuffles,
                // jitter); keep it simple and portable.
                range.start + (rng.next_u64() % span) as $t
            }
        }
    )*};
}
impl_sample_int!(usize, u64, u32, u16, u8, i64, i32);

impl SampleRange for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R, range: std::ops::Range<Self>) -> Self {
        assert!(range.start < range.end, "empty range");
        let u = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        range.start + u * (range.end - range.start)
    }
}

impl SampleRange for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R, range: std::ops::Range<Self>) -> Self {
        assert!(range.start < range.end, "empty range");
        let u = (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32);
        range.start + u * (range.end - range.start)
    }
}

/// Named generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256** generator (stand-in for `StdRng`).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            Self {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

/// Slice sampling/shuffling.
pub mod seq {
    use super::RngCore;

    /// Shuffle support for slices.
    pub trait SliceRandom {
        /// Fisher–Yates shuffle in place.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = (rng.next_u64() % (i as u64 + 1)) as usize;
                self.swap(i, j);
            }
        }
    }
}

/// `use rand::prelude::*` convenience.
pub mod prelude {
    pub use crate::rngs::StdRng;
    pub use crate::seq::SliceRandom;
    pub use crate::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn seeded_stream_is_deterministic() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn shuffle_is_a_permutation_and_seed_dependent() {
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut StdRng::seed_from_u64(7));
        let mut sorted = v.clone();
        sorted.sort();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        let mut w: Vec<u32> = (0..50).collect();
        w.shuffle(&mut StdRng::seed_from_u64(7));
        assert_eq!(v, w, "same seed, same permutation");
        let mut u: Vec<u32> = (0..50).collect();
        u.shuffle(&mut StdRng::seed_from_u64(8));
        assert_ne!(v, u, "different seed, different permutation");
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x = rng.gen_range(3usize..17);
            assert!((3..17).contains(&x));
            let f = rng.gen_range(-2.0f64..3.0);
            assert!((-2.0..3.0).contains(&f));
        }
    }
}
