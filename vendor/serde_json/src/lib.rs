//! Offline stand-in for `serde_json`.
//!
//! The build environment has no crates.io access, so this crate
//! reimplements the slice of the `serde_json` API the workspace uses:
//! [`from_str`] parsing into a [`Value`] tree, the accessor methods on
//! `Value` (`get`, indexing, `as_*`), and [`Error`] with a line/column
//! position. It is a strict parser — trailing garbage, unterminated
//! strings, bad escapes, and malformed numbers are errors — which is
//! exactly what the CI smoke test needs to validate exported Perfetto
//! traces and IPM reports.

use std::collections::BTreeMap;
use std::fmt;
use std::ops::Index;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number (stored as `f64`, like `serde_json`'s lossy view).
    Number(f64),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Value>),
    /// An object. `BTreeMap` keeps key iteration deterministic.
    Object(BTreeMap<String, Value>),
}

impl Value {
    /// Member access by key (objects) — `None` for other variants.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(m) => m.get(key),
            _ => None,
        }
    }

    /// Element access by index (arrays) — `None` for other variants.
    pub fn get_index(&self, i: usize) -> Option<&Value> {
        match self {
            Value::Array(v) => v.get(i),
            _ => None,
        }
    }

    /// The string slice, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// The number as `f64`, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(*n),
            _ => None,
        }
    }

    /// The number as `u64`, if it is a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Number(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= u64::MAX as f64 => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// The number as `i64`, if it is an integer in range.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Number(n)
                if n.fract() == 0.0 && *n >= i64::MIN as f64 && *n <= i64::MAX as f64 =>
            {
                Some(*n as i64)
            }
            _ => None,
        }
    }

    /// The boolean, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(v) => Some(v),
            _ => None,
        }
    }

    /// The members, if this is an object.
    pub fn as_object(&self) -> Option<&BTreeMap<String, Value>> {
        match self {
            Value::Object(m) => Some(m),
            _ => None,
        }
    }

    /// Whether this is `null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }
}

impl Index<&str> for Value {
    type Output = Value;

    /// Panics with a clear message when the key is absent — matches the
    /// upstream convenience behavior used in tests.
    fn index(&self, key: &str) -> &Value {
        self.get(key)
            .unwrap_or_else(|| panic!("no member {key:?} in {self:?}"))
    }
}

impl Index<usize> for Value {
    type Output = Value;

    fn index(&self, i: usize) -> &Value {
        self.get_index(i)
            .unwrap_or_else(|| panic!("no index {i} in JSON value"))
    }
}

/// A parse error with 1-based line/column position.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    msg: String,
    line: usize,
    column: usize,
}

impl Error {
    /// 1-based line of the error.
    pub fn line(&self) -> usize {
        self.line
    }

    /// 1-based column of the error.
    pub fn column(&self) -> usize {
        self.column
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} at line {} column {}",
            self.msg, self.line, self.column
        )
    }
}

impl std::error::Error for Error {}

/// Parse alias mirroring `serde_json::Result`.
pub type Result<T> = std::result::Result<T, Error>;

/// Parse a complete JSON document. Trailing non-whitespace is an error.
pub fn from_str(s: &str) -> Result<Value> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
        depth: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters"));
    }
    Ok(v)
}

/// Nesting guard: deeper than this is rejected rather than overflowing
/// the stack on adversarial input.
const MAX_DEPTH: usize = 128;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
    depth: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> Error {
        let mut line = 1;
        let mut column = 1;
        for &b in &self.bytes[..self.pos.min(self.bytes.len())] {
            if b == b'\n' {
                line += 1;
                column = 1;
            } else {
                column += 1;
            }
        }
        Error {
            msg: msg.to_string(),
            line,
            column,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<()> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected {:?}", b as char)))
        }
    }

    fn value(&mut self) -> Result<Value> {
        if self.depth >= MAX_DEPTH {
            return Err(self.err("recursion limit exceeded"));
        }
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Value::String(self.string()?)),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'n') => self.literal("null", Value::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(_) => Err(self.err("unexpected character")),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn literal(&mut self, word: &str, v: Value) -> Result<Value> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(self.err(&format!("expected {word}")))
        }
    }

    fn object(&mut self) -> Result<Value> {
        self.expect(b'{')?;
        self.depth += 1;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            self.depth -= 1;
            return Ok(Value::Object(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            map.insert(key, val);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    self.depth -= 1;
                    return Ok(Value::Object(map));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn array(&mut self) -> Result<Value> {
        self.expect(b'[')?;
        self.depth += 1;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            self.depth -= 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    self.depth -= 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn string(&mut self) -> Result<String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            self.pos += 1;
                            let cp = self.hex4()?;
                            // Surrogate pairs: a high surrogate must be
                            // followed by \uXXXX low surrogate.
                            let c = if (0xD800..0xDC00).contains(&cp) {
                                if self.peek() == Some(b'\\') {
                                    self.pos += 1;
                                    self.expect(b'u')?;
                                    let lo = self.hex4()?;
                                    if !(0xDC00..0xE000).contains(&lo) {
                                        return Err(self.err("invalid low surrogate"));
                                    }
                                    let combined = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
                                    char::from_u32(combined)
                                        .ok_or_else(|| self.err("invalid surrogate pair"))?
                                } else {
                                    return Err(self.err("unpaired high surrogate"));
                                }
                            } else if (0xDC00..0xE000).contains(&cp) {
                                return Err(self.err("unpaired low surrogate"));
                            } else {
                                char::from_u32(cp).ok_or_else(|| self.err("invalid codepoint"))?
                            };
                            out.push(c);
                            continue; // hex4 advanced pos already
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                    self.pos += 1;
                }
                Some(b) if b < 0x20 => return Err(self.err("control character in string")),
                Some(_) => {
                    // Consume one UTF-8 scalar (input is a &str, so the
                    // bytes are valid UTF-8; find the char boundary).
                    let start = self.pos;
                    self.pos += 1;
                    while self.pos < self.bytes.len() && (self.bytes[self.pos] & 0xC0) == 0x80 {
                        self.pos += 1;
                    }
                    out.push_str(std::str::from_utf8(&self.bytes[start..self.pos]).unwrap());
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32> {
        if self.pos + 4 > self.bytes.len() {
            return Err(self.err("truncated \\u escape"));
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
            .map_err(|_| self.err("invalid \\u escape"))?;
        let cp = u32::from_str_radix(hex, 16).map_err(|_| self.err("invalid \\u escape"))?;
        self.pos += 4;
        Ok(cp)
    }

    fn number(&mut self) -> Result<Value> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        // Integer part: one zero, or a nonzero digit followed by digits.
        match self.peek() {
            Some(b'0') => self.pos += 1,
            Some(b'1'..=b'9') => {
                while matches!(self.peek(), Some(b'0'..=b'9')) {
                    self.pos += 1;
                }
            }
            _ => return Err(self.err("invalid number")),
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            if !matches!(self.peek(), Some(b'0'..=b'9')) {
                return Err(self.err("expected digit after decimal point"));
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            if !matches!(self.peek(), Some(b'0'..=b'9')) {
                return Err(self.err("expected digit in exponent"));
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        text.parse::<f64>()
            .map(Value::Number)
            .map_err(|_| self.err("invalid number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(from_str("null").unwrap(), Value::Null);
        assert_eq!(from_str("true").unwrap(), Value::Bool(true));
        assert_eq!(from_str(" false ").unwrap(), Value::Bool(false));
        assert_eq!(from_str("42").unwrap(), Value::Number(42.0));
        assert_eq!(from_str("-1.5e3").unwrap(), Value::Number(-1500.0));
        assert_eq!(from_str("\"hi\"").unwrap(), Value::String("hi".into()));
    }

    #[test]
    fn parses_nested_structures() {
        let v = from_str(r#"{"a": [1, {"b": "c"}], "d": null}"#).unwrap();
        assert_eq!(v["a"][0].as_f64(), Some(1.0));
        assert_eq!(v["a"][1]["b"].as_str(), Some("c"));
        assert!(v["d"].is_null());
        assert_eq!(v.as_object().unwrap().len(), 2);
    }

    #[test]
    fn parses_escapes_and_unicode() {
        let v = from_str(r#""a\n\t\"\\\u0041\uD83D\uDE00""#).unwrap();
        assert_eq!(v.as_str(), Some("a\n\t\"\\A😀"));
        let v = from_str("\"é\"").unwrap();
        assert_eq!(v.as_str(), Some("é"));
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(from_str("").is_err());
        assert!(from_str("{").is_err());
        assert!(from_str("[1,]").is_err());
        assert!(from_str("{\"a\":}").is_err());
        assert!(from_str("01").is_err());
        assert!(from_str("1.").is_err());
        assert!(from_str("\"abc").is_err());
        assert!(from_str("\"\\x\"").is_err());
        assert!(from_str("true false").is_err());
        assert!(from_str("nul").is_err());
    }

    #[test]
    fn error_reports_position() {
        let e = from_str("{\n  \"a\": !\n}").unwrap_err();
        assert_eq!(e.line(), 2);
        assert!(e.column() > 1);
        assert!(e.to_string().contains("line 2"));
    }

    #[test]
    fn integer_accessors_respect_range() {
        assert_eq!(from_str("7").unwrap().as_u64(), Some(7));
        assert_eq!(from_str("-7").unwrap().as_u64(), None);
        assert_eq!(from_str("-7").unwrap().as_i64(), Some(-7));
        assert_eq!(from_str("1.5").unwrap().as_u64(), None);
        assert_eq!(from_str("\"7\"").unwrap().as_u64(), None);
    }

    #[test]
    fn deep_nesting_is_bounded() {
        let deep = "[".repeat(200) + &"]".repeat(200);
        assert!(from_str(&deep).is_err());
        let ok = "[".repeat(100) + &"]".repeat(100);
        assert!(from_str(&ok).is_ok());
    }
}
