//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no crates.io access. This vendored crate keeps
//! the workspace's `harness = false` benches compiling and *runnable*: each
//! `bench_function` runs the closure for a fixed number of timed iterations
//! and prints mean wall time (plus throughput when configured). There is no
//! statistical analysis, HTML report, or regression detection — it is a
//! smoke-timing harness, not a measurement instrument.

use std::fmt;
use std::time::{Duration, Instant};

/// Throughput annotation for a benchmark group.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Identifier combining a function name and a parameter.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `name/parameter`.
    pub fn new(name: impl fmt::Display, parameter: impl fmt::Display) -> Self {
        Self {
            id: format!("{name}/{parameter}"),
        }
    }

    /// Parameter-only id.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        Self {
            id: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.id)
    }
}

/// Timing driver handed to benchmark closures.
pub struct Bencher {
    iters: u64,
    /// Mean seconds per iteration, filled by [`Bencher::iter`].
    mean_s: f64,
}

impl Bencher {
    /// Time `f` over a fixed number of iterations.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // One warmup iteration, then the timed batch.
        std::hint::black_box(f());
        let t0 = Instant::now();
        for _ in 0..self.iters {
            std::hint::black_box(f());
        }
        self.mean_s = t0.elapsed().as_secs_f64() / self.iters as f64;
    }

    /// Time `f` with per-iteration setup (batched form).
    pub fn iter_batched<I, O, S, F>(&mut self, mut setup: S, mut f: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> O,
    {
        std::hint::black_box(f(setup()));
        let mut total = Duration::ZERO;
        for _ in 0..self.iters {
            let input = setup();
            let t0 = Instant::now();
            std::hint::black_box(f(input));
            total += t0.elapsed();
        }
        self.mean_s = total.as_secs_f64() / self.iters as f64;
    }
}

/// Batch sizing hint (ignored by the stand-in).
#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
}

/// A named group of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    name: String,
    criterion: &'a mut Criterion,
    throughput: Option<Throughput>,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Set the iteration count used for each benchmark in the group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Annotate throughput for reporting.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Run one benchmark.
    pub fn bench_function<D: fmt::Display, F>(&mut self, id: D, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            iters: self.sample_size as u64,
            mean_s: 0.0,
        };
        f(&mut b);
        report(&format!("{}/{}", self.name, id), b.mean_s, self.throughput);
        self
    }

    /// Run one benchmark with an explicit input value.
    pub fn bench_with_input<D: fmt::Display, I: ?Sized, F>(
        &mut self,
        id: D,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut b = Bencher {
            iters: self.sample_size as u64,
            mean_s: 0.0,
        };
        f(&mut b, input);
        report(&format!("{}/{}", self.name, id), b.mean_s, self.throughput);
        self
    }

    /// Finish the group (marker only).
    pub fn finish(&mut self) {
        let _ = &self.criterion;
    }
}

fn report(name: &str, mean_s: f64, throughput: Option<Throughput>) {
    let extra = match throughput {
        Some(Throughput::Elements(n)) if mean_s > 0.0 => {
            format!("  ({:.3e} elem/s)", n as f64 / mean_s)
        }
        Some(Throughput::Bytes(n)) if mean_s > 0.0 => {
            format!("  ({:.3e} B/s)", n as f64 / mean_s)
        }
        _ => String::new(),
    };
    println!("{name:<48} {:>12.3} µs/iter{extra}", mean_s * 1e6);
}

/// The top-level benchmark driver.
#[derive(Default)]
pub struct Criterion {
    sample_size: Option<usize>,
}

impl Criterion {
    /// Builder: default iteration count per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = Some(n.max(1));
        self
    }

    /// Open a benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let sample_size = self.sample_size.unwrap_or(10);
        BenchmarkGroup {
            name: name.into(),
            criterion: self,
            throughput: None,
            sample_size,
        }
    }

    /// Run a standalone benchmark.
    pub fn bench_function<D: fmt::Display, F>(&mut self, id: D, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let name = id.to_string();
        self.benchmark_group(name.clone()).bench_function("", f);
        self
    }
}

/// Define the group-runner function(s).
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Define `main` from group-runner functions.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        let mut group = c.benchmark_group("demo");
        group.sample_size(3);
        group.throughput(Throughput::Elements(100));
        group.bench_function("sum", |b| {
            b.iter(|| (0..100u64).sum::<u64>());
        });
        group.bench_with_input(BenchmarkId::new("scaled", 7), &7u64, |b, &n| {
            b.iter(|| n * 2);
        });
        group.finish();
    }

    criterion_group!(benches, sample_bench);

    #[test]
    fn group_runs_without_panicking() {
        benches();
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("f", 32).to_string(), "f/32");
        assert_eq!(BenchmarkId::from_parameter("x").to_string(), "x");
    }
}
