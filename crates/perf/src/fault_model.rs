//! Checkpoint-interval modeling for fault-tolerant production runs.
//!
//! The paper's 62K-core target is exactly the regime where the system-wide
//! mean time between failures drops below the wall time of one
//! high-frequency run, so a production campaign must checkpoint. This
//! module applies the classic Young (1974) first-order optimum
//! `τ ≈ sqrt(2·δ·M)` and Daly's (2006) higher-order refinement to the four
//! §5 machines, using each machine's node count, a per-node MTBF, and the
//! checkpoint volume the solver state actually occupies.

use crate::machines::MachineProfile;

/// Fault-tolerance parameters of one machine at one scale.
#[derive(Debug, Clone, Copy)]
pub struct FaultToleranceModel {
    /// The machine.
    pub machine: MachineProfile,
    /// Cores used by the run.
    pub cores: usize,
    /// Cores per node (failure unit) on this machine.
    pub cores_per_node: usize,
    /// Per-node mean time between failures (hours).
    pub node_mtbf_hours: f64,
    /// Checkpoint volume per core (GB) — the solver's evolving state
    /// (wavefields, attenuation memory, seismogram buffers).
    pub checkpoint_gb_per_core: f64,
    /// Aggregate parallel-filesystem bandwidth (GB/s).
    pub io_bandwidth_gbs: f64,
    /// Fixed restart cost (s): relaunch, remesh, read the checkpoint back.
    pub restart_overhead_s: f64,
}

/// One machine's modeled answer.
#[derive(Debug, Clone)]
pub struct FtPrediction {
    /// Machine name.
    pub machine: &'static str,
    /// Cores modeled.
    pub cores: usize,
    /// System-wide MTBF at that scale (s).
    pub system_mtbf_s: f64,
    /// Seconds to write one checkpoint (δ).
    pub checkpoint_write_s: f64,
    /// Young's optimal interval `sqrt(2·δ·M)` (s).
    pub young_interval_s: f64,
    /// Daly's higher-order optimal interval (s).
    pub daly_interval_s: f64,
    /// Expected fraction of wall time lost to checkpointing + rework +
    /// restarts at the Daly interval.
    pub waste_fraction: f64,
}

impl FaultToleranceModel {
    /// Canonical 62K-core model for one of the §5 machines: node
    /// architecture from the published specs, a 25-year per-node MTBF (the
    /// usual planning figure for commodity Opteron nodes of that era —
    /// which still means a node dies every few hours somewhere in a
    /// 62K-core partition), and the solver's evolving state as checkpoint
    /// volume.
    pub fn at_62k(machine: MachineProfile) -> Self {
        let cores_per_node = match machine.name {
            n if n.starts_with("Ranger") => 16,  // 4-socket quad-core blades
            n if n.starts_with("Franklin") => 2, // XT4 dual-core nodes
            _ => 4,                              // XT4 quad-core nodes
        };
        // Scratch-filesystem aggregate bandwidth of the era (GB/s).
        let io_bandwidth_gbs = match machine.name {
            n if n.starts_with("Ranger") => 50.0,   // Lustre /scratch
            n if n.starts_with("Franklin") => 17.0, // Lustre, XT4
            n if n.starts_with("Kraken") => 30.0,
            _ => 42.0, // Jaguar's Spider precursor
        };
        Self {
            machine,
            cores: 62_000,
            cores_per_node,
            node_mtbf_hours: 25.0 * 8760.0,
            // The evolving state is a fraction of the ~1.85 GB/core mesh +
            // fields footprint: 9 wavefield components + 5×3 attenuation
            // memory variables in f32 ≈ 0.4 GB at production resolution.
            checkpoint_gb_per_core: 0.4,
            io_bandwidth_gbs,
            restart_overhead_s: 300.0,
        }
    }

    /// System-wide MTBF (s): node MTBF divided by the node count in use.
    pub fn system_mtbf_s(&self) -> f64 {
        let nodes = (self.cores as f64 / self.cores_per_node as f64).ceil();
        self.node_mtbf_hours * 3600.0 / nodes
    }

    /// Seconds to write one full checkpoint (δ): total volume over the
    /// aggregate filesystem bandwidth.
    pub fn checkpoint_write_s(&self) -> f64 {
        self.cores as f64 * self.checkpoint_gb_per_core / self.io_bandwidth_gbs
    }

    /// Young's first-order optimal interval `τ = sqrt(2·δ·M)`.
    pub fn young_interval_s(&self) -> f64 {
        (2.0 * self.checkpoint_write_s() * self.system_mtbf_s()).sqrt()
    }

    /// Daly's higher-order optimum, valid when δ < 2M:
    /// `τ = sqrt(2·δ·M)·[1 + ⅓·sqrt(δ/(2M)) + (1/9)·(δ/(2M))] − δ`.
    pub fn daly_interval_s(&self) -> f64 {
        let delta = self.checkpoint_write_s();
        let m = self.system_mtbf_s();
        if delta >= 2.0 * m {
            return m; // degenerate regime: checkpoint as fast as you fail
        }
        let x = delta / (2.0 * m);
        (2.0 * delta * m).sqrt() * (1.0 + x.sqrt() / 3.0 + x / 9.0) - delta
    }

    /// Expected fraction of wall time wasted when checkpointing every
    /// `tau` seconds: checkpoint overhead `δ/τ`, plus the expected rework
    /// of half an interval (and the restart cost) per failure.
    pub fn waste_fraction(&self, tau: f64) -> f64 {
        let delta = self.checkpoint_write_s();
        let m = self.system_mtbf_s();
        delta / tau + (0.5 * (tau + delta) + self.restart_overhead_s) / m
    }

    /// Package the model's answers.
    pub fn predict(&self) -> FtPrediction {
        let daly = self.daly_interval_s();
        FtPrediction {
            machine: self.machine.name,
            cores: self.cores,
            system_mtbf_s: self.system_mtbf_s(),
            checkpoint_write_s: self.checkpoint_write_s(),
            young_interval_s: self.young_interval_s(),
            daly_interval_s: daly,
            waste_fraction: self.waste_fraction(daly),
        }
    }
}

/// The four §5 machines, each modeled at the paper's 62K-core scale.
pub fn survey_62k() -> Vec<FtPrediction> {
    crate::machines::ALL_MACHINES
        .iter()
        .map(|m| FaultToleranceModel::at_62k(m()).predict())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn young_formula_is_exact() {
        let mut m = FaultToleranceModel::at_62k(MachineProfile::ranger());
        // Force round numbers: δ = 50 s, M = 10 000 s → τ = 1000 s.
        // 62 400 cores / 16 per node = exactly 3 900 nodes (no ceil slack).
        m.cores = 62_400;
        m.checkpoint_gb_per_core = 50.0 * m.io_bandwidth_gbs / m.cores as f64;
        m.node_mtbf_hours = 10_000.0 * (m.cores as f64 / m.cores_per_node as f64) / 3600.0;
        assert!((m.checkpoint_write_s() - 50.0).abs() < 1e-9);
        assert!((m.system_mtbf_s() - 10_000.0).abs() < 1e-6);
        assert!((m.young_interval_s() - 1000.0).abs() < 1e-6);
    }

    #[test]
    fn daly_interval_is_near_youngs_when_delta_is_small() {
        let m = FaultToleranceModel::at_62k(MachineProfile::jaguar());
        let young = m.young_interval_s();
        let daly = m.daly_interval_s();
        let rel = (daly - young).abs() / young;
        assert!(rel < 0.25, "daly {daly} vs young {young}");
    }

    #[test]
    fn daly_interval_is_close_to_the_waste_minimum() {
        // Scan τ and check nothing beats the Daly interval by much.
        let m = FaultToleranceModel::at_62k(MachineProfile::franklin());
        let daly = m.daly_interval_s();
        let at_daly = m.waste_fraction(daly);
        let mut best = f64::INFINITY;
        let mut tau = daly / 10.0;
        while tau < daly * 10.0 {
            best = best.min(m.waste_fraction(tau));
            tau *= 1.01;
        }
        assert!(
            at_daly <= best * 1.02,
            "daly waste {at_daly} vs scanned minimum {best}"
        );
    }

    #[test]
    fn more_nodes_mean_shorter_intervals() {
        // Franklin's 2-core nodes put ~31K failure units under a 62K-core
        // run — far more than Ranger's 16-core blades — so its system MTBF
        // and optimal interval must both be shorter.
        let franklin = FaultToleranceModel::at_62k(MachineProfile::franklin());
        let ranger = FaultToleranceModel::at_62k(MachineProfile::ranger());
        assert!(franklin.system_mtbf_s() < ranger.system_mtbf_s());
        assert!(franklin.young_interval_s() < ranger.young_interval_s());
    }

    #[test]
    fn survey_is_physical() {
        let rows = survey_62k();
        assert_eq!(rows.len(), 4);
        for r in &rows {
            assert!(r.system_mtbf_s > 0.0, "{}", r.machine);
            assert!(r.checkpoint_write_s > 0.0);
            assert!(r.young_interval_s > r.checkpoint_write_s);
            assert!(
                r.waste_fraction > 0.0 && r.waste_fraction < 0.5,
                "{}: waste {}",
                r.machine,
                r.waste_fraction
            );
        }
    }
}
