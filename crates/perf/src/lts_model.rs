//! Clustered-LTS speedup model: theoretical vs achievable.
//!
//! A rate-`r` cluster recomputes its stiffness contributions every `r`
//! fine steps, so its *kernel* cost drops by `r` — but every element
//! still pays a fixed per-step cost each fine step: the canonical
//! scatter, the Newmark update, the halo exchange. With `w_l` the
//! fraction of elements at rate `r_l` and `f` the fixed cost as a
//! fraction of the kernel cost, the model is
//!
//! ```text
//! speedup(f) = (1 + f) / (Σ_l w_l / r_l + f)
//! ```
//!
//! `f = 0` gives the *theoretical* speedup (pure element-step counting,
//! the number `LtsSummary` reports); a calibrated `f > 0` explains the
//! gap to the *achieved* speedup the E-LTS ablation measures.

/// Speedup model over one cluster census.
#[derive(Debug, Clone)]
pub struct LtsSpeedupModel {
    /// `(rate, element count)` per cluster level.
    levels: Vec<(u32, usize)>,
    nspec: usize,
}

impl LtsSpeedupModel {
    /// Build from a cluster census (`(rate, element count)` pairs).
    pub fn new(levels: Vec<(u32, usize)>) -> Self {
        assert!(!levels.is_empty(), "empty cluster census");
        for &(rate, _) in &levels {
            assert!(rate.is_power_of_two(), "rate {rate} not a power of two");
        }
        let nspec = levels.iter().map(|&(_, n)| n).sum();
        assert!(nspec > 0, "census covers no elements");
        Self { levels, nspec }
    }

    /// Total elements in the census.
    pub fn nspec(&self) -> usize {
        self.nspec
    }

    /// Kernel-work fraction remaining under LTS: `Σ_l w_l / r_l ∈ (0, 1]`.
    pub fn kernel_work_fraction(&self) -> f64 {
        self.levels
            .iter()
            .map(|&(rate, n)| n as f64 / self.nspec as f64 / rate as f64)
            .sum()
    }

    /// Speedup with a fixed per-step cost of `fixed_fraction` of the
    /// kernel cost per element (scatter + Newmark + halo — the work LTS
    /// cannot skip).
    pub fn predicted_speedup(&self, fixed_fraction: f64) -> f64 {
        assert!(fixed_fraction >= 0.0, "negative fixed-cost fraction");
        (1.0 + fixed_fraction) / (self.kernel_work_fraction() + fixed_fraction)
    }

    /// The pure element-step-counting bound (`fixed_fraction = 0`) — what
    /// the solver's `LtsSummary::theoretical_speedup` reports.
    pub fn theoretical_speedup(&self) -> f64 {
        self.predicted_speedup(0.0)
    }

    /// Achieved-over-theoretical efficiency of a measured speedup.
    pub fn efficiency(&self, achieved: f64) -> f64 {
        achieved / self.theoretical_speedup()
    }

    /// Solve the model for the fixed-cost fraction that explains a
    /// measured speedup: the inverse of [`predicted_speedup`]. Returns
    /// `None` when the measurement is at/below 1× or at/above the
    /// theoretical bound (no finite `f ≥ 0` explains it).
    ///
    /// [`predicted_speedup`]: LtsSpeedupModel::predicted_speedup
    pub fn calibrate_fixed_fraction(&self, achieved: f64) -> Option<f64> {
        let w = self.kernel_work_fraction();
        if achieved <= 1.0 || achieved * w >= 1.0 {
            return None;
        }
        // a = (1+f)/(w+f)  ⇒  f = (1 − a·w) / (a − 1)
        Some((1.0 - achieved * w) / (achieved - 1.0))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_rate_one_census_never_speeds_up() {
        let m = LtsSpeedupModel::new(vec![(1, 500)]);
        assert_eq!(m.theoretical_speedup(), 1.0);
        assert_eq!(m.predicted_speedup(3.0), 1.0);
        assert!(m.calibrate_fixed_fraction(1.5).is_none());
    }

    #[test]
    fn all_coarse_census_hits_the_rate_bound() {
        let m = LtsSpeedupModel::new(vec![(4, 100)]);
        assert!((m.theoretical_speedup() - 4.0).abs() < 1e-12);
        // f = 1: half the per-step cost is unskippable → (1+1)/(0.25+1).
        assert!((m.predicted_speedup(1.0) - 1.6).abs() < 1e-12);
    }

    #[test]
    fn mixed_census_matches_hand_computation() {
        // Half at rate 1, half at rate 4: w = 0.5 + 0.125 = 0.625.
        let m = LtsSpeedupModel::new(vec![(1, 50), (4, 50)]);
        assert!((m.kernel_work_fraction() - 0.625).abs() < 1e-12);
        assert!((m.theoretical_speedup() - 1.6).abs() < 1e-12);
        // Fixed costs only ever shrink the speedup, monotonically.
        let mut prev = m.theoretical_speedup();
        for f in [0.05, 0.1, 0.5, 1.0, 5.0] {
            let s = m.predicted_speedup(f);
            assert!(s < prev, "speedup must fall as f grows");
            assert!(s > 1.0);
            prev = s;
        }
    }

    #[test]
    fn calibration_inverts_prediction() {
        let m = LtsSpeedupModel::new(vec![(1, 30), (2, 40), (8, 30)]);
        for f in [0.01, 0.2, 1.5] {
            let achieved = m.predicted_speedup(f);
            let back = m.calibrate_fixed_fraction(achieved).expect("in range");
            assert!((back - f).abs() < 1e-9, "f={f} round-tripped to {back}");
        }
        // Out-of-range measurements are refused, not extrapolated.
        assert!(m.calibrate_fixed_fraction(0.9).is_none());
        assert!(m
            .calibrate_fixed_fraction(m.theoretical_speedup() + 0.1)
            .is_none());
        // Efficiency is the achieved/theoretical ratio.
        let achieved = m.predicted_speedup(0.3);
        let eff = m.efficiency(achieved);
        assert!(eff > 0.0 && eff < 1.0);
    }
}
