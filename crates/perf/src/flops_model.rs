//! The large-run predictor that regenerates the paper's §6 results table:
//! sustained Tflops and shortest seismic period for each reported run.

use crate::machines::MachineProfile;

/// One large-run configuration and its model prediction.
#[derive(Debug, Clone)]
pub struct RunPrediction {
    /// Machine name.
    pub machine: &'static str,
    /// Cores used.
    pub cores: usize,
    /// Resolution (NEX_XI) of the run.
    pub nex: usize,
    /// Shortest resolved period (s), from the T = 17·256/NEX law.
    pub period_s: f64,
    /// Model-sustained Tflops.
    pub sustained_tflops: f64,
    /// Fraction of the machine's (scaled) Rmax, when published.
    pub pct_rmax: Option<f64>,
    /// Whether the run fits in memory per the capacity model.
    pub memory_feasible: bool,
    /// The paper's reported sustained Tflops, for comparison.
    pub paper_tflops: Option<f64>,
}

impl RunPrediction {
    /// Hand-rolled JSON (serde is unavailable offline; the schema is flat).
    pub fn to_json(&self) -> String {
        let opt = |v: Option<f64>| v.map_or("null".to_string(), |x| format!("{x}"));
        format!(
            concat!(
                "{{\"machine\":{:?},\"cores\":{},\"nex\":{},\"period_s\":{},",
                "\"sustained_tflops\":{},\"pct_rmax\":{},\"memory_feasible\":{},",
                "\"paper_tflops\":{}}}"
            ),
            self.machine,
            self.cores,
            self.nex,
            self.period_s,
            self.sustained_tflops,
            opt(self.pct_rmax),
            self.memory_feasible,
            opt(self.paper_tflops),
        )
    }
}

/// JSON array of predictions (machine-readable table output).
pub fn runs_to_json(runs: &[RunPrediction]) -> String {
    let body: Vec<String> = runs.iter().map(RunPrediction::to_json).collect();
    format!("[{}]", body.join(","))
}

/// Predict one run: `cores` of `machine` at resolution `nex`.
pub fn predict_run(
    machine: &MachineProfile,
    cores: usize,
    nex: usize,
    paper_tflops: Option<f64>,
) -> RunPrediction {
    let sustained = cores as f64 * machine.sustained_gflops_per_core() / 1000.0;
    let pct_rmax = machine.rmax_tflops.map(|rmax| {
        let rmax_scaled = rmax * cores as f64 / machine.total_cores as f64;
        sustained / rmax_scaled
    });
    RunPrediction {
        machine: machine.name,
        cores,
        nex,
        period_s: specfem_mesh::nominal_shortest_period_s(nex),
        sustained_tflops: sustained,
        pct_rmax,
        memory_feasible: nex <= machine.max_nex_for_cores(cores),
        paper_tflops,
    }
}

/// The six §6 production runs (plus the planned 62K-core Ranger run), with
/// NEX back-computed from each reported shortest period.
pub fn paper_runs() -> Vec<RunPrediction> {
    let nex_for = |period: f64| specfem_mesh::nex_for_period(period);
    vec![
        predict_run(
            &MachineProfile::franklin(),
            12_150,
            nex_for(3.0),
            Some(24.0),
        ),
        predict_run(&MachineProfile::kraken(), 9_600, nex_for(2.52), Some(12.1)),
        predict_run(&MachineProfile::kraken(), 12_696, nex_for(2.52), Some(16.0)),
        predict_run(&MachineProfile::kraken(), 17_496, nex_for(2.52), Some(22.4)),
        predict_run(&MachineProfile::jaguar(), 29_000, nex_for(1.94), Some(35.7)),
        predict_run(&MachineProfile::ranger(), 32_000, nex_for(1.84), Some(28.7)),
        // Future work (§7): full Ranger toward the 1-second limit.
        predict_run(&MachineProfile::ranger(), 62_000, nex_for(1.05), None),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn predictions_match_paper_tflops_within_10_percent() {
        for run in paper_runs() {
            if let Some(paper) = run.paper_tflops {
                let rel = (run.sustained_tflops - paper).abs() / paper;
                assert!(
                    rel < 0.10,
                    "{} @ {} cores: model {:.1} TF vs paper {paper} TF ({rel:.2})",
                    run.machine,
                    run.cores,
                    run.sustained_tflops
                );
            }
        }
    }

    #[test]
    fn jaguar_holds_the_flops_record_ranger_the_resolution_record() {
        // The paper's "who wins" structure.
        let runs = paper_runs();
        let reported: Vec<&RunPrediction> =
            runs.iter().filter(|r| r.paper_tflops.is_some()).collect();
        let flops_winner = reported
            .iter()
            .max_by(|a, b| a.sustained_tflops.partial_cmp(&b.sustained_tflops).unwrap())
            .unwrap();
        assert!(
            flops_winner.machine.contains("Jaguar"),
            "{}",
            flops_winner.machine
        );
        let res_winner = reported
            .iter()
            .min_by(|a, b| a.period_s.partial_cmp(&b.period_s).unwrap())
            .unwrap();
        assert!(
            res_winner.machine.contains("Ranger"),
            "{}",
            res_winner.machine
        );
    }

    #[test]
    fn franklin_runs_at_about_44_pct_of_rmax() {
        let run = &paper_runs()[0];
        let pct = run.pct_rmax.unwrap();
        assert!(
            (pct - 0.44).abs() < 0.05,
            "Franklin % of Rmax = {pct:.3} (paper: 44 %)"
        );
    }

    #[test]
    fn all_reported_runs_are_memory_feasible() {
        for run in paper_runs() {
            assert!(
                run.memory_feasible,
                "{} @ {} cores NEX {} should fit",
                run.machine, run.cores, run.nex
            );
        }
    }

    #[test]
    fn two_second_barrier_is_broken_on_half_of_ranger() {
        // Abstract: "we broke the barrier using just half of Ranger, by
        // reaching a period of 1.84 seconds … on 32K processors".
        let runs = paper_runs();
        let ranger_32k = runs
            .iter()
            .find(|r| r.machine.contains("Ranger") && r.cores == 32_000)
            .unwrap();
        assert!(ranger_32k.period_s < 2.0);
        assert!(ranger_32k.cores * 2 <= MachineProfile::ranger().total_cores + 2000);
    }

    #[test]
    fn sixty_two_k_run_approaches_one_second() {
        let runs = paper_runs();
        let future = runs.last().unwrap();
        assert_eq!(future.cores, 62_000);
        assert!(future.period_s <= 1.1, "period {}", future.period_s);
        assert!(future.memory_feasible);
    }
}
