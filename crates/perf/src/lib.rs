//! Performance modeling (paper §5) — the measure-small / fit / extrapolate
//! methodology that let the team predict 62K-core behaviour before running
//! it, plus the machine profiles of the four systems of §5 and the
//! large-run predictor that regenerates the §6 results table.

pub mod comm_model;
pub mod disk_model;
pub mod fault_model;
pub mod flops_model;
pub mod lts_model;
pub mod machines;
pub mod runtime_model;

pub use comm_model::{
    analytic_total_comm_seconds, outer_element_fraction, per_rank_step_comm_seconds,
    predict_overlap, CommTimeModel, OverlapPrediction,
};
pub use disk_model::DiskSpaceModel;
pub use fault_model::{survey_62k, FaultToleranceModel, FtPrediction};
pub use flops_model::{paper_runs as paper_runs_table, predict_run, runs_to_json, RunPrediction};
pub use lts_model::LtsSpeedupModel;
pub use machines::{MachineProfile, ALL_MACHINES};
pub use runtime_model::RuntimeModel;

/// A single (x, y) observation used by the fitted models.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Sample {
    pub x: f64,
    pub y: f64,
}

/// Least-squares power-law fit `y = c·x^p` shared by the models, with
/// goodness-of-fit in log space.
#[derive(Debug, Clone, Copy)]
pub struct PowerLawFit {
    /// Coefficient `c`.
    pub coefficient: f64,
    /// Exponent `p`.
    pub exponent: f64,
    /// R² of the fit in log-log space.
    pub r_squared: f64,
}

impl PowerLawFit {
    /// Fit the samples (all must be positive).
    pub fn fit(samples: &[Sample]) -> PowerLawFit {
        assert!(samples.len() >= 2, "need at least two samples");
        let xs: Vec<f64> = samples.iter().map(|s| s.x).collect();
        let ys: Vec<f64> = samples.iter().map(|s| s.y).collect();
        let (c, p) = specfem_model::linalg::fit_power_law(&xs, &ys);
        // R² in log space.
        let mean_ly = ys.iter().map(|y| y.ln()).sum::<f64>() / ys.len() as f64;
        let mut ss_res = 0.0;
        let mut ss_tot = 0.0;
        for s in samples {
            let pred = (c * s.x.powf(p)).ln();
            let ly = s.y.ln();
            ss_res += (ly - pred).powi(2);
            ss_tot += (ly - mean_ly).powi(2);
        }
        let r_squared = if ss_tot > 0.0 {
            1.0 - ss_res / ss_tot
        } else {
            1.0
        };
        PowerLawFit {
            coefficient: c,
            exponent: p,
            r_squared,
        }
    }

    /// Evaluate the fitted law.
    pub fn predict(&self, x: f64) -> f64 {
        self.coefficient * x.powf(self.exponent)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn power_law_fit_recovers_exact_law() {
        let samples: Vec<Sample> = (1..8)
            .map(|i| {
                let x = (i * 32) as f64;
                Sample {
                    x,
                    y: 0.004 * x.powf(2.7),
                }
            })
            .collect();
        let fit = PowerLawFit::fit(&samples);
        assert!((fit.exponent - 2.7).abs() < 1e-9);
        assert!((fit.coefficient - 0.004).abs() < 1e-9);
        assert!(fit.r_squared > 0.999999);
    }

    #[test]
    fn noisy_fit_reports_lower_r2() {
        let samples: Vec<Sample> = (1..10)
            .map(|i| {
                let x = i as f64;
                let noise = if i % 2 == 0 { 1.6 } else { 0.6 };
                Sample {
                    x,
                    y: 5.0 * x.powf(1.5) * noise,
                }
            })
            .collect();
        let fit = PowerLawFit::fit(&samples);
        assert!(fit.r_squared < 0.99);
        assert!(fit.r_squared > 0.3);
    }
}
