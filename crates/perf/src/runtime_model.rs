//! The Figure 7 model: totaled execution time for all cores vs resolution.
//!
//! The paper's key observation: "the overall execution time totaled for all
//! computation cores is defined by the resolution used and is independent
//! of the number of cores" — total work ∝ elements × steps ∝ NEX³ for the
//! fixed-radial-layer production mesh. Figure 7's normalized range (1 →
//! ~300 over NEX 96 → 640) is exactly that cubic.

use crate::{PowerLawFit, Sample};

/// Fitted total-core-seconds model `T(NEX) = c·NEX^p`.
#[derive(Debug, Clone, Copy)]
pub struct RuntimeModel {
    fit: PowerLawFit,
}

impl RuntimeModel {
    /// Fit from `(NEX, total core-seconds)` samples.
    pub fn fit(samples: &[Sample]) -> Self {
        Self {
            fit: PowerLawFit::fit(samples),
        }
    }

    /// Predicted total core-seconds at resolution `nex`.
    pub fn predict_total(&self, nex: usize) -> f64 {
        self.fit.predict(nex as f64)
    }

    /// Per-core seconds on `cores` cores (total work is core-count
    /// independent).
    pub fn predict_per_core(&self, nex: usize, cores: usize) -> f64 {
        self.predict_total(nex) / cores as f64
    }

    /// Normalized curve over a resolution sweep (minimum = 1), the exact
    /// form Figure 7 plots.
    pub fn normalized_curve(&self, nexes: &[usize]) -> Vec<f64> {
        let vals: Vec<f64> = nexes.iter().map(|&n| self.predict_total(n)).collect();
        let min = vals.iter().cloned().fold(f64::INFINITY, f64::min);
        vals.into_iter().map(|v| v / min).collect()
    }

    /// Fitted exponent.
    pub fn exponent(&self) -> f64 {
        self.fit.exponent
    }

    /// Relative prediction error against a held-out observation — the
    /// paper validated its 12K-core NEX=1440 prediction "within 12% error".
    pub fn relative_error(&self, nex: usize, observed_total: f64) -> f64 {
        (self.predict_total(nex) - observed_total).abs() / observed_total
    }
}

/// Figure 7's x axis.
pub const FIG7_RESOLUTIONS: [usize; 6] = [96, 144, 288, 320, 512, 640];

#[cfg(test)]
mod tests {
    use super::*;

    fn cubic_samples() -> Vec<Sample> {
        FIG7_RESOLUTIONS
            .iter()
            .map(|&n| Sample {
                x: n as f64,
                y: 3.1e-4 * (n as f64).powi(3),
            })
            .collect()
    }

    #[test]
    fn figure7_normalized_range_is_about_300() {
        let model = RuntimeModel::fit(&cubic_samples());
        let curve = model.normalized_curve(&FIG7_RESOLUTIONS);
        assert!((curve[0] - 1.0).abs() < 1e-9);
        let last = *curve.last().unwrap();
        // (640/96)³ ≈ 296 — the figure's "1 … 301" y range.
        assert!((last - 296.0).abs() < 3.0, "normalized max {last}");
    }

    #[test]
    fn total_time_is_core_count_independent() {
        let model = RuntimeModel::fit(&cubic_samples());
        let t1 = model.predict_per_core(320, 100) * 100.0;
        let t2 = model.predict_per_core(320, 10_000) * 10_000.0;
        assert!((t1 - t2).abs() < 1e-9 * t1);
    }

    #[test]
    fn held_out_prediction_error_metric() {
        let model = RuntimeModel::fit(&cubic_samples());
        let truth = 3.1e-4 * 1440.0f64.powi(3);
        assert!(model.relative_error(1440, truth) < 1e-9);
        assert!((model.relative_error(1440, truth * 1.12) - 0.107).abs() < 0.01);
    }
}
