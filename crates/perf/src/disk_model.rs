//! The Figure 5 model: disk space used to communicate between MESHFEM3D
//! and SPECFEM3D as a function of resolution, fitted from measured runs and
//! extrapolated to the 2-second (14 TB) and 1-second (108 TB) regimes.

use crate::{PowerLawFit, Sample};

/// Fitted disk-usage model `bytes(NEX) = c·NEX^p`.
#[derive(Debug, Clone, Copy)]
pub struct DiskSpaceModel {
    fit: PowerLawFit,
}

impl DiskSpaceModel {
    /// Fit from measured `(NEX, total bytes)` samples.
    pub fn fit(samples: &[Sample]) -> Self {
        Self {
            fit: PowerLawFit::fit(samples),
        }
    }

    /// Predicted total bytes at resolution `nex`.
    pub fn predict_bytes(&self, nex: usize) -> f64 {
        self.fit.predict(nex as f64)
    }

    /// Predicted bytes at the resolution for `period_s` (paper law
    /// NEX = 17·256/T).
    pub fn predict_bytes_for_period(&self, period_s: f64) -> f64 {
        self.predict_bytes(specfem_mesh::nex_for_period(period_s))
    }

    /// The fitted exponent (mesh data volume grows ~cubically in NEX).
    pub fn exponent(&self) -> f64 {
        self.fit.exponent
    }

    /// Fit quality.
    pub fn r_squared(&self) -> f64 {
        self.fit.r_squared
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Synthetic measurements with the real mesher's scaling shape (the
    /// bench binary feeds true measured bytes; here we validate the model
    /// machinery and the paper's extrapolation ratio).
    fn synthetic_samples() -> Vec<Sample> {
        // bytes ≈ 5.2 kB per element · (6·NEX²·L(NEX) + NEX³) with
        // L ≈ 0.32·NEX radial layers → ≈ c·NEX³.
        (1..=6)
            .map(|i| {
                let nex = (i * 16) as f64;
                let elements = 6.0 * nex * nex * (0.32 * nex) + nex.powi(3);
                Sample {
                    x: nex,
                    y: 5200.0 * elements,
                }
            })
            .collect()
    }

    #[test]
    fn model_fits_cubic_growth() {
        let model = DiskSpaceModel::fit(&synthetic_samples());
        assert!(
            (model.exponent() - 3.0).abs() < 0.05,
            "exponent {}",
            model.exponent()
        );
        assert!(model.r_squared() > 0.999);
    }

    #[test]
    fn one_second_run_needs_about_8x_the_two_second_run() {
        // Paper: 14 TB at 2 s vs 108 TB at 1 s — a ratio of ~7.7, i.e.
        // the cubic resolution growth (2³ = 8).
        let model = DiskSpaceModel::fit(&synthetic_samples());
        let b2 = model.predict_bytes_for_period(2.0);
        let b1 = model.predict_bytes_for_period(1.0);
        let ratio = b1 / b2;
        assert!(
            (ratio - 7.7).abs() < 0.6,
            "1s/2s disk ratio {ratio} (paper: 108/14 ≈ 7.7)"
        );
    }

    #[test]
    fn extrapolation_is_monotone() {
        let model = DiskSpaceModel::fit(&synthetic_samples());
        let mut prev = 0.0;
        for nex in [96, 256, 640, 1440, 2176, 4352] {
            let b = model.predict_bytes(nex);
            assert!(b > prev);
            prev = b;
        }
    }
}
