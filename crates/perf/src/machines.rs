//! Profiles of the four HPC systems of paper §5, with the published
//! specifications.

/// An HPC system profile.
#[derive(Debug, Clone, Copy)]
pub struct MachineProfile {
    /// System name.
    pub name: &'static str,
    /// Total compute cores.
    pub total_cores: usize,
    /// Core clock (GHz).
    pub clock_ghz: f64,
    /// Theoretical peak per core (Gflops) — 4 flops/cycle for these
    /// Opterons.
    pub peak_gflops_per_core: f64,
    /// Memory per core (GB).
    pub mem_per_core_gb: f64,
    /// Memory bandwidth per core (GB/s) — the quantity the paper credits
    /// for Jaguar's higher sustained flop rate ("which has better memory
    /// bandwidth per processor").
    pub mem_bw_per_core_gbs: f64,
    /// Published Rmax (Tflops), when known.
    pub rmax_tflops: Option<f64>,
    /// Theoretical peak of the full system (Tflops).
    pub rpeak_tflops: f64,
}

impl MachineProfile {
    /// TACC Ranger: 62,976 cores, quad-core 2.0 GHz Opterons, 2 GB/core,
    /// full-CLOS InfiniBand.
    pub fn ranger() -> Self {
        Self {
            name: "Ranger (TACC, Sun Constellation)",
            total_cores: 62_976,
            clock_ghz: 2.0,
            peak_gflops_per_core: 8.0,
            mem_per_core_gb: 2.0,
            // 16 cores per node share the DDR2 controllers: the paper's
            // observation is that Ranger is memory-bandwidth lean per core.
            mem_bw_per_core_gbs: 1.8,
            rmax_tflops: Some(326.0),
            rpeak_tflops: 504.0,
        }
    }

    /// NERSC Franklin: Cray XT4, dual-core 2.6 GHz Opterons, 2 GB/core.
    pub fn franklin() -> Self {
        Self {
            name: "Franklin (NERSC, Cray XT4)",
            total_cores: 19_520,
            clock_ghz: 2.6,
            peak_gflops_per_core: 5.2,
            mem_per_core_gb: 2.0,
            mem_bw_per_core_gbs: 4.0, // DDR2-800 shared by only 2 cores
            rmax_tflops: Some(85.0),
            rpeak_tflops: 101.5,
        }
    }

    /// NICS Kraken: Cray XT4, quad-core 2.3 GHz Opterons, 1 GB/core.
    pub fn kraken() -> Self {
        Self {
            name: "Kraken (NICS, Cray XT4)",
            total_cores: 18_048,
            clock_ghz: 2.3,
            peak_gflops_per_core: 9.2,
            mem_per_core_gb: 1.0,
            mem_bw_per_core_gbs: 2.6,
            rmax_tflops: None,
            rpeak_tflops: 166.0,
        }
    }

    /// ORNL Jaguar: Cray XT4, quad-core 2.1 GHz Opterons, 2 GB/core —
    /// "better memory bandwidth per processor" (DDR2-800 per socket).
    pub fn jaguar() -> Self {
        Self {
            name: "Jaguar (ORNL, Cray XT4)",
            total_cores: 31_328,
            clock_ghz: 2.1,
            peak_gflops_per_core: 8.4,
            mem_per_core_gb: 2.0,
            mem_bw_per_core_gbs: 2.5,
            rmax_tflops: Some(205.0),
            rpeak_tflops: 263.0,
        }
    }

    /// Sustained fraction of peak for the SPECFEM kernel on this machine.
    ///
    /// The kernel streams large global arrays through small matrix
    /// products; its effective arithmetic intensity is ≈ 0.5 flops/byte of
    /// memory traffic, so sustained performance follows a bandwidth
    /// roofline, capped at ~40 % of peak (the cache-resident limit of the
    /// 5×5 products).
    pub fn sustained_fraction(&self) -> f64 {
        const INTENSITY_FLOPS_PER_BYTE: f64 = 0.5;
        let bw_bound_gflops = self.mem_bw_per_core_gbs * INTENSITY_FLOPS_PER_BYTE;
        let frac = bw_bound_gflops / self.peak_gflops_per_core;
        frac.min(0.40)
    }

    /// Sustained Gflops per core for this code.
    pub fn sustained_gflops_per_core(&self) -> f64 {
        self.sustained_fraction() * self.peak_gflops_per_core
    }

    /// Largest NEX that fits in memory on `cores` cores, assuming the
    /// paper's sizing: 1–2 s resolution needs ~37 TB over ~62K cores at
    /// ~1.85 GB/core usable (paper §4) — i.e. bytes/core ≈ k·NEX³/cores.
    pub fn max_nex_for_cores(&self, cores: usize) -> usize {
        // Calibrate k from the paper's anchor: NEX 4848 ↔ 62K cores ×
        // 1.85 GB usable (≈ 37 TB · (4848/4352)³ rounding aside).
        let usable_gb_per_core = (self.mem_per_core_gb - 0.15).min(1.85);
        let k = 62_000.0 * 1.85e9 / 4848.0f64.powi(3);
        let nex = (cores as f64 * usable_gb_per_core * 1e9 / k).cbrt();
        (nex / 8.0).floor() as usize * 8
    }
}

/// All four §5 machines.
pub static ALL_MACHINES: &[fn() -> MachineProfile] = &[
    MachineProfile::ranger,
    MachineProfile::franklin,
    MachineProfile::kraken,
    MachineProfile::jaguar,
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn published_specs_match_paper() {
        let r = MachineProfile::ranger();
        assert_eq!(r.total_cores, 62_976);
        assert!((r.rpeak_tflops - 504.0).abs() < 1.0);
        let f = MachineProfile::franklin();
        assert!((f.peak_gflops_per_core - 5.2).abs() < 0.1);
        let j = MachineProfile::jaguar();
        assert_eq!(j.rmax_tflops, Some(205.0));
    }

    #[test]
    fn jaguar_sustains_more_per_core_than_ranger() {
        // The paper's central hardware observation: Jaguar's better memory
        // bandwidth per core gives it the flops record at fewer cores.
        let j = MachineProfile::jaguar().sustained_gflops_per_core();
        let r = MachineProfile::ranger().sustained_gflops_per_core();
        assert!(j > 1.3 * r, "jaguar {j} vs ranger {r}");
    }

    #[test]
    fn sustained_fraction_is_physical() {
        for m in ALL_MACHINES {
            let f = m().sustained_fraction();
            assert!(f > 0.02 && f <= 0.40, "{}: {f}", m().name);
        }
    }

    #[test]
    fn memory_capacity_gates_resolution() {
        let r = MachineProfile::ranger();
        // Half of Ranger (32K cores) reached NEX high enough for 1.84 s:
        // T = 4352/NEX ≤ 1.84 → NEX ≥ 2365.
        let nex = r.max_nex_for_cores(32_000);
        assert!(nex >= 2360, "32K-core NEX = {nex}");
        // And 62K cores approach the 1-second regime (NEX ≈ 4352+).
        let nex_full = r.max_nex_for_cores(62_000);
        assert!(nex_full >= 4200, "62K-core NEX = {nex_full}");
        // More cores → more resolution.
        assert!(nex_full > nex);
    }
}
