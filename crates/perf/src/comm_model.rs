//! The Figure 6 model: total MPI time for all cores as a function of
//! processor count, per resolution — fitted from measured runs, plus the
//! first-principles analog built from the mesh's halo geometry and a
//! network profile.

use crate::{PowerLawFit, Sample};

/// Fitted per-resolution communication-time model
/// `t_total(P) = c·P^α` (all-cores total, seconds).
#[derive(Debug, Clone, Copy)]
pub struct CommTimeModel {
    fit: PowerLawFit,
    /// The resolution (NEX) the samples were taken at.
    pub nex: usize,
}

impl CommTimeModel {
    /// Fit from `(processor count, total comm seconds)` samples.
    pub fn fit(nex: usize, samples: &[Sample]) -> Self {
        Self {
            fit: PowerLawFit::fit(samples),
            nex,
        }
    }

    /// Predicted total communication time across all cores (s).
    pub fn predict_total(&self, cores: usize) -> f64 {
        self.fit.predict(cores as f64)
    }

    /// Predicted per-core communication time (s) — the paper's observation
    /// is that this *decreases* as the core count grows at fixed
    /// resolution, which requires the fitted exponent < 1.
    pub fn predict_per_core(&self, cores: usize) -> f64 {
        self.predict_total(cores) / cores as f64
    }

    /// Fitted exponent α.
    pub fn exponent(&self) -> f64 {
        self.fit.exponent
    }
}

/// First-principles total-communication estimate for one run: the halo
/// traffic of a `6·nproc²`-rank cubed-sphere decomposition.
///
/// Each rank's slice boundary carries `O((NEX/nproc)·layers)` shared points
/// per edge; per step each interface is exchanged twice (fluid and solid
/// passes). This is the model used to extrapolate where no measurement
/// exists (62K cores).
pub fn analytic_total_comm_seconds(
    nex: usize,
    nproc_xi: usize,
    nsteps: usize,
    radial_layers: usize,
    profile: &specfem_comm::NetworkProfile,
) -> f64 {
    let ranks = 6 * nproc_xi * nproc_xi;
    let edge_points_per_rank = (nex / nproc_xi) * radial_layers * 5; // GLL-width band
    let neighbors = 4.0; // interior slices: 4 lateral neighbours
    let bytes_per_msg = edge_points_per_rank * 4 * 3; // f32 × 3 components
    let msgs_per_step = neighbors * 2.0; // solid + fluid passes
    let per_rank_per_step = msgs_per_step * profile.message_time(bytes_per_msg);
    ranks as f64 * per_rank_per_step * nsteps as f64
}

/// One rank's halo-exchange time for a single step (s) — the per-step,
/// per-rank slice of [`analytic_total_comm_seconds`].
pub fn per_rank_step_comm_seconds(
    nex: usize,
    nproc_xi: usize,
    radial_layers: usize,
    profile: &specfem_comm::NetworkProfile,
) -> f64 {
    let edge_points_per_rank = (nex / nproc_xi) * radial_layers * 5; // GLL-width band
    let neighbors = 4.0; // interior slices: 4 lateral neighbours
    let bytes_per_msg = edge_points_per_rank * 4 * 3; // f32 × 3 components
    let msgs_per_step = neighbors * 2.0; // solid + fluid passes
    msgs_per_step * profile.message_time(bytes_per_msg)
}

/// Fraction of a slice's elements that touch an inter-rank boundary.
///
/// A slice is an `m × m` lateral block of elements (`m = NEX/NPROC_XI`)
/// through all radial layers; the outer elements are the one-element-wide
/// lateral ring, so the fraction is `1 − ((m−2)/m)²`. Slices of width ≤ 2
/// are all ring — no inner elements to hide communication behind.
pub fn outer_element_fraction(nex: usize, nproc_xi: usize) -> f64 {
    let m = (nex / nproc_xi).max(1) as f64;
    if m <= 2.0 {
        1.0
    } else {
        1.0 - ((m - 2.0) / m).powi(2)
    }
}

/// Step-time prediction with and without communication/computation
/// overlap, per rank.
#[derive(Debug, Clone, Copy)]
pub struct OverlapPrediction {
    /// Blocking step time: `compute + comm` (s).
    pub blocking_step_s: f64,
    /// Overlapped step time: `outer_compute + max(inner_compute, comm)` (s).
    pub overlapped_step_s: f64,
    /// Comm share of the blocking step.
    pub comm_fraction_blocking: f64,
    /// *Exposed* comm share of the overlapped step — only the part of the
    /// exchange that outlasts the inner-element computation is charged.
    pub comm_fraction_overlapped: f64,
    /// Fraction of elements classified outer (not overlappable).
    pub outer_fraction: f64,
}

impl OverlapPrediction {
    /// Predicted step-time speedup from overlapping (≥ 1).
    pub fn speedup(&self) -> f64 {
        self.blocking_step_s / self.overlapped_step_s.max(1e-300)
    }
}

/// The overlap-aware network model: the blocking path pays
/// `compute + comm` per step, the overlapped path pays
/// `outer_compute + max(inner_compute, comm)` — communication is hidden
/// behind the inner-element loop and only the exposed remainder counts.
/// `compute_step_s` is one rank's full force-computation time per step.
pub fn predict_overlap(
    nex: usize,
    nproc_xi: usize,
    radial_layers: usize,
    profile: &specfem_comm::NetworkProfile,
    compute_step_s: f64,
) -> OverlapPrediction {
    let comm = per_rank_step_comm_seconds(nex, nproc_xi, radial_layers, profile);
    let outer_fraction = outer_element_fraction(nex, nproc_xi);
    let outer_compute = compute_step_s * outer_fraction;
    let inner_compute = compute_step_s - outer_compute;
    let blocking = compute_step_s + comm;
    let overlapped = outer_compute + inner_compute.max(comm);
    OverlapPrediction {
        blocking_step_s: blocking,
        overlapped_step_s: overlapped,
        comm_fraction_blocking: comm / blocking,
        comm_fraction_overlapped: (comm - inner_compute).max(0.0) / overlapped,
        outer_fraction,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use specfem_comm::NetworkProfile;

    /// Synthetic samples with the halo-scaling shape t_total ∝ √P.
    fn samples() -> Vec<Sample> {
        [24, 96, 216, 384, 600]
            .iter()
            .map(|&p| Sample {
                x: p as f64,
                y: 120.0 * (p as f64).powf(0.5),
            })
            .collect()
    }

    #[test]
    fn total_grows_but_per_core_shrinks() {
        // The paper's two observations about Figure 6 in one test.
        let model = CommTimeModel::fit(320, &samples());
        assert!(model.predict_total(600) > model.predict_total(96));
        assert!(model.predict_per_core(600) < model.predict_per_core(96));
        assert!(model.exponent() > 0.0 && model.exponent() < 1.0);
    }

    #[test]
    fn analytic_model_shares_the_shape() {
        let profile = NetworkProfile::ranger_infiniband();
        let t1 = analytic_total_comm_seconds(320, 2, 1000, 20, &profile);
        let t2 = analytic_total_comm_seconds(320, 8, 1000, 20, &profile);
        let p1 = t1 / (6.0 * 4.0);
        let p2 = t2 / (6.0 * 64.0);
        assert!(t2 > t1, "total must grow with ranks");
        assert!(p2 < p1, "per-core must shrink with ranks");
    }

    #[test]
    fn sixty_two_k_core_prediction_is_small_fraction() {
        // §5: 62K cores, NEX 4848 → ~28K s per core over the full run and
        // 4.7 % of execution — our analytic model must land in a regime
        // where comm stays a minority share (same qualitative conclusion).
        let profile = NetworkProfile::ranger_infiniband();
        // A full science run is ~100k steps at this resolution.
        let per_core =
            analytic_total_comm_seconds(4848, 101, 100_000, 100, &profile) / (6.0 * 101.0 * 101.0);
        // Computation per core: elements/rank × flops/element × steps /
        // sustained rate ≈ (6·4848²·100/61206)·37250·1e5 / 0.9e9 ≈ 9.5e5 s.
        let compute_per_core = (6.0 * 4848.0f64.powi(2) * 100.0 / 61206.0) * 37_250.0 * 1e5 / 0.9e9;
        let frac = per_core / (per_core + compute_per_core);
        // The pure latency/bandwidth model is a lower bound — IPM's 4.7 %
        // also counts synchronization waits — but the qualitative
        // conclusion (comm is a small minority) must hold.
        assert!(frac < 0.15, "comm fraction {frac} must stay a minority");
        assert!(frac > 1e-4, "comm fraction {frac} unrealistically small");
    }

    #[test]
    fn overlap_never_slower_and_hides_comm_at_62k() {
        let profile = NetworkProfile::ranger_infiniband();
        // Per-rank compute per step at the paper's 62K configuration
        // (NEX 4848, 6·101² ranks): elements/rank × flops/element /
        // sustained rate ≈ (6·4848²·100/61206)·37250 / 0.9e9 ≈ 9.5 s.
        let compute = (6.0 * 4848.0f64.powi(2) * 100.0 / 61206.0) * 37_250.0 / 0.9e9;
        let p = predict_overlap(4848, 101, 100, &profile, compute);
        assert!(p.overlapped_step_s <= p.blocking_step_s);
        assert!(
            p.comm_fraction_overlapped < p.comm_fraction_blocking,
            "overlap must drop the exposed comm fraction ({} vs {})",
            p.comm_fraction_overlapped,
            p.comm_fraction_blocking
        );
        assert!(p.speedup() >= 1.0);
        // A 48-wide slice is mostly inner: the ring is 1−(46/48)² ≈ 8 %.
        assert!(p.outer_fraction > 0.0 && p.outer_fraction < 0.2);
        // At 62K the exchange is small enough that inner compute hides it
        // entirely.
        assert!(p.comm_fraction_overlapped < 1e-12);
    }

    #[test]
    fn outer_fraction_shrinks_with_slice_width() {
        // Wider slices → thinner relative ring → more comm hidden.
        assert_eq!(outer_element_fraction(8, 4), 1.0); // 2-wide: all ring
        let f4 = outer_element_fraction(16, 4); // 4-wide
        let f16 = outer_element_fraction(64, 4); // 16-wide
        assert!(f4 > f16);
        assert!((outer_element_fraction(48, 1) - (1.0 - (46.0f64 / 48.0).powi(2))).abs() < 1e-12);
    }
}
