//! Property-based tests of the performance models.

use proptest::prelude::*;
use specfem_perf::{CommTimeModel, DiskSpaceModel, PowerLawFit, RuntimeModel, Sample};

fn power_samples(c: f64, p: f64, xs: &[f64]) -> Vec<Sample> {
    xs.iter()
        .map(|&x| Sample {
            x,
            y: c * x.powf(p),
        })
        .collect()
}

proptest! {
    /// The power-law fit recovers exact laws over any positive range.
    #[test]
    fn fit_recovers_exact_power_laws(
        c in 1.0e-6f64..1.0e6,
        p in -2.0f64..4.0,
        x0 in 1.0f64..100.0,
    ) {
        let xs: Vec<f64> = (1..=6).map(|i| x0 * i as f64).collect();
        let fit = PowerLawFit::fit(&power_samples(c, p, &xs));
        prop_assert!((fit.exponent - p).abs() < 1e-6);
        prop_assert!((fit.coefficient / c - 1.0).abs() < 1e-6);
        prop_assert!(fit.r_squared > 0.999);
    }

    /// Disk model predictions are monotone in NEX whenever the fitted
    /// exponent is positive.
    #[test]
    fn disk_model_monotone(c in 1.0f64..1.0e4, p in 0.5f64..4.0) {
        let xs: Vec<f64> = vec![8.0, 16.0, 32.0, 64.0];
        let model = DiskSpaceModel::fit(&power_samples(c, p, &xs));
        let mut prev = 0.0;
        for nex in [96usize, 256, 640, 2176, 4352] {
            let b = model.predict_bytes(nex);
            prop_assert!(b > prev);
            prev = b;
        }
    }

    /// Comm model: per-core time decreases with P iff exponent < 1.
    #[test]
    fn comm_model_per_core_trend(alpha in 0.1f64..0.95) {
        let xs: Vec<f64> = vec![24.0, 96.0, 384.0, 1536.0];
        let model = CommTimeModel::fit(144, &power_samples(100.0, alpha, &xs));
        prop_assert!(model.predict_per_core(62_000) < model.predict_per_core(1_000));
        prop_assert!(model.predict_total(62_000) > model.predict_total(1_000));
    }

    /// Runtime model: normalized curve starts at 1 and is increasing for
    /// positive exponents.
    #[test]
    fn runtime_normalized_curve_shape(c in 1.0e-6f64..1.0, p in 1.5f64..4.0) {
        let xs: Vec<f64> = vec![96.0, 144.0, 288.0, 320.0];
        let model = RuntimeModel::fit(&power_samples(c, p, &xs));
        let res = [96usize, 144, 288, 320, 512, 640];
        let curve = model.normalized_curve(&res);
        prop_assert!((curve[0] - 1.0).abs() < 1e-9);
        for w in curve.windows(2) {
            prop_assert!(w[1] > w[0]);
        }
    }
}
