//! Property tests for the clustered-LTS rate assignment and the
//! LTS-weighted partitioner (ISSUE 9): every element lands in exactly one
//! cluster, rates are powers of two within the cap (and maximal for the
//! element's permitted step), the assignment is invariant under element
//! reordering (fingerprint-stable), and per-rank cluster balance honours
//! the partitioner's stated bound.

use std::sync::OnceLock;

use proptest::prelude::*;
use specfem_mesh::{GlobalMesh, LtsClusters, MeshParams, Partition};
use specfem_model::Prem;

fn mesh() -> &'static GlobalMesh {
    static MESH: OnceLock<GlobalMesh> = OnceLock::new();
    MESH.get_or_init(|| GlobalMesh::build(&MeshParams::new(2, 1), &Prem::isotropic_no_ocean()))
}

/// Deterministic Fisher-Yates permutation of `0..n` from a seed (LCG —
/// proptest shrinks the seed, the shuffle itself stays reproducible).
fn permutation(n: usize, seed: u64) -> Vec<usize> {
    let mut perm: Vec<usize> = (0..n).collect();
    let mut s = seed;
    for i in (1..n).rev() {
        s = s
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        let j = (s >> 33) as usize % (i + 1);
        perm.swap(i, j);
    }
    perm
}

proptest! {
    #[test]
    fn every_element_lands_in_exactly_one_cluster(
        dts in prop::collection::vec(1e-3..10.0f64, 1..300),
        dt in 1e-3..1.0f64,
        cap_pow in 0u32..6,
    ) {
        let cap = 1usize << cap_pow;
        let c = LtsClusters::assign(&dts, dt, cap);
        let mut count = vec![0usize; dts.len()];
        for rate in c.levels() {
            for e in c.elements_at(rate) {
                count[e as usize] += 1;
            }
        }
        prop_assert!(count.iter().all(|&n| n == 1), "levels must partition the elements");
    }

    #[test]
    fn rates_are_maximal_powers_of_two_within_the_cap(
        dts in prop::collection::vec(1e-3..10.0f64, 1..300),
        dt in 1e-3..1.0f64,
        cap_pow in 0u32..6,
    ) {
        let cap = 1usize << cap_pow;
        let c = LtsClusters::assign(&dts, dt, cap);
        prop_assert_eq!(c.rate_of.len(), dts.len());
        for (e, &r) in c.rate_of.iter().enumerate() {
            prop_assert!(r.is_power_of_two(), "rate {r} not a power of two");
            prop_assert!(r as usize <= cap, "rate {r} above cap {cap}");
            // Safety: a rate above 1 never exceeds the element's permitted
            // step at the base dt...
            prop_assert!(r == 1 || (r as f64) * dt <= dts[e]);
            // ...and the rate is maximal: doubling it (inside the cap)
            // would break that bound.
            prop_assert!(r as usize == cap || (2 * r) as f64 * dt > dts[e]);
        }
    }

    #[test]
    fn assignment_is_reordering_invariant_and_fingerprint_stable(
        dts in prop::collection::vec(1e-3..10.0f64, 1..200),
        dt in 1e-3..1.0f64,
        seed in any::<u64>(),
    ) {
        let cap = 8;
        let c = LtsClusters::assign(&dts, dt, cap);
        let n = dts.len();
        let perm = permutation(n, seed);
        let permuted_dts: Vec<f64> = perm.iter().map(|&i| dts[i]).collect();
        let cp = LtsClusters::assign(&permuted_dts, dt, cap);
        // Element-wise: permuted slot j holds original element perm[j] and
        // must get the identical rate.
        for (j, &i) in perm.iter().enumerate() {
            prop_assert_eq!(cp.rate_of[j], c.rate_of[i]);
        }
        // The order-invariant fingerprint agrees once both sides carry
        // their global element ids.
        let ids: Vec<u32> = (0..n as u32).collect();
        let permuted_ids: Vec<u32> = perm.iter().map(|&i| i as u32).collect();
        prop_assert_eq!(c.fingerprint(&ids), cp.fingerprint(&permuted_ids));
    }

    #[test]
    fn lts_partition_balance_honours_the_stated_bound(
        seed in any::<u64>(),
        nranks in 1usize..16,
    ) {
        let gm = mesh();
        // Arbitrary per-element rates from the seed (powers of two ≤ 32).
        let mut s = seed;
        let rates: Vec<u32> = (0..gm.nspec)
            .map(|_| {
                s = s
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                1u32 << ((s >> 33) % 6)
            })
            .collect();
        let part = Partition::lts_balanced(gm, nranks, &rates);
        let load = part.lts_load(&rates);
        prop_assert_eq!(load.len(), nranks);
        let total: f64 = load.iter().sum();
        let share = total / nranks as f64;
        for (rank, &l) in load.iter().enumerate() {
            // The stated bound: ideal share plus at most one element's
            // maximum weight (1.0).
            prop_assert!(
                l <= share + 1.0 + 1e-9,
                "rank {rank} load {l} above share {share} + 1"
            );
            prop_assert!(l > 0.0, "rank {rank} must own at least one element");
        }
        // Census covers every element exactly once.
        let census = part.cluster_census(&rates);
        let covered: usize = census
            .iter()
            .flat_map(|per_rank| per_rank.iter().map(|&(_, n)| n))
            .sum();
        prop_assert_eq!(covered, gm.nspec);
    }

    #[test]
    fn power_of_two_caps_pass_validation(cap_pow in 0u32..6) {
        prop_assert!(specfem_mesh::lts::validate_max_rate(1usize << cap_pow).is_ok());
    }
}
