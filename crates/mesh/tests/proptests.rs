//! Property-based tests of the mesher's combinatorial invariants.

use proptest::prelude::*;
use specfem_mesh::numbering::{
    element_permutation, graph_bandwidth, renumber_points_first_touch, ElementOrder, PointRegistry,
};

/// A random undirected graph as adjacency lists.
fn random_graph(n: usize, edges: &[(usize, usize)]) -> Vec<Vec<u32>> {
    let mut adj = vec![Vec::new(); n];
    for &(a, b) in edges {
        let (a, b) = (a % n, b % n);
        if a != b {
            adj[a].push(b as u32);
            adj[b].push(a as u32);
        }
    }
    for v in &mut adj {
        v.sort_unstable();
        v.dedup();
    }
    adj
}

proptest! {
    /// Every ordering is a permutation of 0..n on random graphs.
    #[test]
    fn orderings_are_permutations(
        n in 2usize..60,
        edges in prop::collection::vec((0usize..60, 0usize..60), 0..150),
        seed in any::<u64>(),
        block in 1usize..20,
    ) {
        let adj = random_graph(n, &edges);
        for order in [
            ElementOrder::Natural,
            ElementOrder::Random(seed),
            ElementOrder::CuthillMcKee,
            ElementOrder::MultilevelCuthillMcKee { block },
        ] {
            let mut p = element_permutation(order, n, &adj);
            p.sort_unstable();
            let expect: Vec<u32> = (0..n as u32).collect();
            prop_assert_eq!(p, expect);
        }
    }

    /// RCM never yields a larger bandwidth than the worst of a few random
    /// orders on connected-ish graphs (statistical sanity, not optimality).
    #[test]
    fn rcm_not_worse_than_random_worst(
        n in 4usize..40,
        extra in prop::collection::vec((0usize..40, 0usize..40), 0..60),
    ) {
        // Ensure a connected path backbone + random chords.
        let mut edges: Vec<(usize, usize)> = (0..n - 1).map(|i| (i, i + 1)).collect();
        edges.extend(extra);
        let adj = random_graph(n, &edges);
        let rcm = element_permutation(ElementOrder::CuthillMcKee, n, &adj);
        let bw_rcm = graph_bandwidth(&rcm, &adj);
        let worst_random = (0..4u64)
            .map(|s| {
                let p = element_permutation(ElementOrder::Random(s), n, &adj);
                graph_bandwidth(&p, &adj)
            })
            .max()
            .unwrap();
        prop_assert!(bw_rcm <= worst_random.max(1));
    }

    /// First-touch renumbering is a bijection and covers every point.
    #[test]
    fn first_touch_is_bijection(
        nelem in 1usize..20,
        ppe in 1usize..6,
        seed in any::<u32>(),
    ) {
        // Random ibool covering every point id at least once.
        let nglob = nelem * ppe;
        let mut ibool: Vec<u32> = (0..nglob as u32).collect();
        // Shuffle deterministically.
        for i in (1..ibool.len()).rev() {
            let j = (seed as usize).wrapping_mul(i).wrapping_add(7) % (i + 1);
            ibool.swap(i, j);
        }
        let perm: Vec<u32> = (0..nelem as u32).collect();
        let (new_ibool, old_to_new) =
            renumber_points_first_touch(&ibool, &perm, ppe, nglob);
        let mut sorted = old_to_new.clone();
        sorted.sort_unstable();
        let expect: Vec<u32> = (0..nglob as u32).collect();
        prop_assert_eq!(sorted, expect);
        // Mapping consistency.
        for (o, n) in ibool.iter().zip(&new_ibool) {
            prop_assert_eq!(old_to_new[*o as usize], *n);
        }
        // First-touch order: new ids appear in nondecreasing "first seen"
        // order along the traversal.
        let mut seen_max = 0i64;
        let mut seen = vec![false; nglob];
        for &g in &new_ibool {
            if !seen[g as usize] {
                prop_assert!(g as i64 >= seen_max);
                seen_max = g as i64;
                seen[g as usize] = true;
            }
        }
    }

    /// The point registry identifies points within tolerance and separates
    /// points beyond it, for arbitrary offsets.
    #[test]
    fn registry_tolerance_semantics(
        x in -1.0e7f64..1.0e7,
        y in -1.0e7f64..1.0e7,
        z in -1.0e7f64..1.0e7,
        eps_frac in 0.0f64..0.45,
        far_frac in 3.0f64..100.0,
    ) {
        let tol = 0.05;
        let mut reg = PointRegistry::new(tol);
        let a = reg.get_or_insert([x, y, z]);
        let b = reg.get_or_insert([x + eps_frac * tol, y, z]);
        let c = reg.get_or_insert([x + far_frac * tol, y, z]);
        prop_assert_eq!(a, b);
        prop_assert_ne!(a, c);
    }
}

// ---------------------------------------------------------------------------
// Outer/inner element split (the overlap optimisation's correctness
// contract). Builds are expensive, so few cases over small meshes.
// ---------------------------------------------------------------------------

mod split_props {
    use proptest::prelude::*;
    use specfem_mesh::{GlobalMesh, MeshKey, MeshParams, Partition};
    use specfem_model::Prem;

    /// Small valid `(nex, nproc)` pair (nex divisible by nproc).
    fn draw_params(nex_half: usize, two_proc: bool) -> MeshParams {
        let nex = 2 * nex_half.clamp(1, 3); // 2, 4, 6
        MeshParams::new(nex, if two_proc { 2 } else { 1 })
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(5))]

        /// Every element is classified exactly once (outer prefix, inner
        /// suffix), every halo point belongs to an outer element, and no
        /// inner element touches a halo point.
        #[test]
        fn split_classifies_exactly_once_and_covers_halo(
            nex_half in 1usize..4,
            two_proc in any::<bool>(),
        ) {
            let params = draw_params(nex_half, two_proc);
            let mesh = GlobalMesh::build(&params, &Prem::isotropic_no_ocean());
            let part = Partition::compute(&mesh);
            for l in part.extract_all(&mesh) {
                let n3 = l.points_per_element();
                // Exactly-once: the two ranges tile 0..nspec.
                prop_assert_eq!(l.outer_elements().len() + l.inner_elements().len(), l.nspec);
                prop_assert_eq!(l.outer_elements().end, l.inner_elements().start);
                let mut is_halo = vec![false; l.nglob];
                for n in &l.halo.neighbors {
                    for &p in &n.points {
                        is_halo[p as usize] = true;
                    }
                }
                let touches_halo = |e: usize| {
                    l.ibool[e * n3..(e + 1) * n3].iter().any(|&p| is_halo[p as usize])
                };
                for e in l.outer_elements() {
                    prop_assert!(touches_halo(e), "rank {} outer {e} halo-free", l.rank);
                }
                for e in l.inner_elements() {
                    prop_assert!(!touches_halo(e), "rank {} inner {e} on halo", l.rank);
                }
                // Halo coverage: every halo point is in some outer element.
                let mut covered = vec![false; l.nglob];
                for e in l.outer_elements() {
                    for &p in &l.ibool[e * n3..(e + 1) * n3] {
                        covered[p as usize] = true;
                    }
                }
                for p in 0..l.nglob {
                    if is_halo[p] {
                        prop_assert!(covered[p], "rank {} halo point {p} uncovered", l.rank);
                    }
                }
            }
        }

        /// The split is deterministic, and invariant under the mesh
        /// fingerprint: two builds with identical keys produce identical
        /// orderings and identical outer counts on every rank.
        #[test]
        fn split_is_deterministic_and_fingerprint_invariant(
            nex_half in 1usize..4,
            two_proc in any::<bool>(),
        ) {
            let pa = draw_params(nex_half, two_proc);
            let pb = pa.clone();
            prop_assert_eq!(
                MeshKey::new(&pa, "prem_iso").fingerprint(),
                MeshKey::new(&pb, "prem_iso").fingerprint()
            );
            let ma = GlobalMesh::build(&pa, &Prem::isotropic_no_ocean());
            let mb = GlobalMesh::build(&pb, &Prem::isotropic_no_ocean());
            let la = Partition::compute(&ma).extract_all(&ma);
            let lb = Partition::compute(&mb).extract_all(&mb);
            prop_assert_eq!(la.len(), lb.len());
            for (a, b) in la.iter().zip(&lb) {
                prop_assert_eq!(&a.element_global, &b.element_global);
                prop_assert_eq!(a.nspec_outer, b.nspec_outer);
                prop_assert_eq!(&a.global_ids, &b.global_ids);
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Mesh fingerprint determinism (the campaign cache's correctness contract).
// Builds are expensive, so this block runs few cases over small meshes.
// ---------------------------------------------------------------------------

mod fingerprint_props {
    use proptest::prelude::*;
    use specfem_mesh::{content_hash, GlobalMesh, MeshKey, MeshParams};
    use specfem_model::Prem;

    /// Draw a small valid `(nex, nproc)` pair (nex divisible by nproc).
    fn draw_params(nex_half: usize, nproc_choice: usize, honor: bool) -> MeshParams {
        let nex = 2 * nex_half.clamp(1, 3); // 2, 4, 6
        let nproc = if nproc_choice.is_multiple_of(2) || !nex.is_multiple_of(2) {
            1
        } else {
            2
        };
        let mut p = MeshParams::new(nex, nproc);
        p.honor_minor_discontinuities = honor;
        p
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(6))]

        /// Same config → bit-identical key, and bit-identical mesh content
        /// (ibool / coordinate / material hashes) across repeated builds —
        /// including builds racing on different worker threads, which is
        /// exactly what the campaign cache assumes when any worker's build
        /// may be the one every other job shares.
        #[test]
        fn same_config_same_key_and_content(
            nex_half in 1usize..4,
            nproc_choice in 0usize..4,
            honor in any::<bool>(),
            workers in 2usize..4,
        ) {
            let params = draw_params(nex_half, nproc_choice, honor);
            let key_a = MeshKey::new(&params, "prem_iso");
            let key_b = MeshKey::new(&params, "prem_iso");
            prop_assert_eq!(&key_a, &key_b);
            prop_assert_eq!(key_a.fingerprint(), key_b.fingerprint());

            let reference = content_hash(&GlobalMesh::build(&params, &Prem::isotropic_no_ocean()));
            let built: Vec<_> = std::thread::scope(|s| {
                let handles: Vec<_> = (0..workers)
                    .map(|_| {
                        let p = params.clone();
                        s.spawn(move || {
                            content_hash(&GlobalMesh::build(&p, &Prem::isotropic_no_ocean()))
                        })
                    })
                    .collect();
                handles.into_iter().map(|h| h.join().unwrap()).collect()
            });
            for h in built {
                prop_assert_eq!(h, reference);
            }
        }

        /// Distinct configs → distinct full fingerprints, and the geometry
        /// fingerprint masks exactly the decomposition knobs.
        #[test]
        fn distinct_configs_distinct_keys(
            a_half in 1usize..4,
            b_half in 1usize..4,
            honor_a in any::<bool>(),
            honor_b in any::<bool>(),
        ) {
            let pa = draw_params(a_half, 0, honor_a);
            let pb = draw_params(b_half, 0, honor_b);
            let ka = MeshKey::new(&pa, "prem_iso");
            let kb = MeshKey::new(&pb, "prem_iso");
            let same = (pa.nex_xi, pa.nproc_xi, pa.honor_minor_discontinuities)
                == (pb.nex_xi, pb.nproc_xi, pb.honor_minor_discontinuities);
            if same {
                prop_assert_eq!(ka.fingerprint(), kb.fingerprint());
            } else {
                prop_assert_ne!(ka.fingerprint(), kb.fingerprint());
            }
            // nproc is decomposition-only: same geometry fingerprint,
            // different full fingerprint.
            if pa.nex_xi.is_multiple_of(2) {
                let mut pc = pa.clone();
                pc.nproc_xi = if pa.nproc_xi == 1 { 2 } else { 1 };
                let kc = MeshKey::new(&pc, "prem_iso");
                prop_assert_ne!(ka.fingerprint(), kc.fingerprint());
                prop_assert_eq!(ka.geometry_fingerprint(), kc.geometry_fingerprint());
            }
            // Model identity is part of the key.
            let k3d = MeshKey::new(&pa, "prem_3d");
            prop_assert_ne!(ka.fingerprint(), k3d.fingerprint());
        }
    }
}
