//! Building the global mesh: geometry, global numbering, materials.
//!
//! The builder supports both material-assignment modes of paper §4.4-1:
//! the merged **one-pass** mode (properties assigned to each element right
//! after its creation) and the **legacy two-pass** mode in which the mesher
//! effectively runs twice — once for geometry and once more, regenerating
//! the geometry, to populate material properties. The two-pass mode exists
//! purely so the ~2× mesher slowdown the paper fixed can be measured.

use rayon::prelude::*;
use std::time::Instant;

use crate::cubed_sphere::{
    chunk_face_vector, cube_node, cube_surface_radius, lerp, tan_lattice, NCHUNKS,
};
use crate::layers::LayerPlan;
use crate::{MeshMode, MeshParams, MeshRegion};
use specfem_gll::GllBasis;
use specfem_model::{EarthModel, ICB_RADIUS_M};

/// Where an element lives in the structured decomposition — the partitioner
/// turns this into a rank id.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ElementHome {
    /// Shell element: chunk id and lateral tile indices at the surface grid.
    Shell { chunk: u8, ix: u16, iy: u16 },
    /// Central-cube element: lattice indices.
    Cube { i: u16, j: u16, k: u16 },
}

/// Timing and size report of one mesher run.
#[derive(Debug, Clone, Default)]
pub struct MesherReport {
    /// Seconds spent generating element geometry.
    pub geometry_seconds: f64,
    /// Seconds spent assigning material properties.
    pub material_seconds: f64,
    /// Seconds spent on global numbering.
    pub numbering_seconds: f64,
    /// 1 for the merged mesher, 2 for the legacy mode.
    pub passes: u8,
    /// Elements per region (crust-mantle, outer core, inner core, cube).
    pub elements_per_region: [usize; 4],
}

/// The assembled global mesh.
#[derive(Debug, Clone)]
pub struct GlobalMesh {
    /// The parameters it was built with.
    pub params: MeshParams,
    /// GLL basis.
    pub basis: GllBasis,
    /// Number of spectral elements.
    pub nspec: usize,
    /// Number of distinct global points.
    pub nglob: usize,
    /// Local→global mapping: `ibool[e·n³ + (k·np + j)·np + i]`.
    pub ibool: Vec<u32>,
    /// Coordinates of global points (m).
    pub coords: Vec<[f64; 3]>,
    /// Region of each element.
    pub region: Vec<MeshRegion>,
    /// Structured home of each element (for partitioning).
    pub home: Vec<ElementHome>,
    /// Density at each GLL point of each element (kg/m³).
    pub rho: Vec<f32>,
    /// Bulk modulus κ (Pa).
    pub kappa: Vec<f32>,
    /// Shear modulus μ (Pa); zero in the fluid.
    pub mu: Vec<f32>,
    /// Shear quality factor at each GLL point (`f32::INFINITY` in fluid).
    pub qmu: Vec<f32>,
    /// The radial plan used.
    pub layer_plan: LayerPlan,
    /// Build report.
    pub report: MesherReport,
}

/// Description of one element before its nodes are generated.
#[derive(Debug, Clone, Copy)]
struct ElementSpec {
    home: ElementHome,
    region: MeshRegion,
    /// Radial bounds of the *shell* this element samples material from.
    mat_r_lo: f64,
    mat_r_hi: f64,
    /// Shell-element radial interpolation: fractions of the column span
    /// (inner-core shell) or absolute radii (spherical shells).
    radial: RadialSpan,
}

#[derive(Debug, Clone, Copy)]
enum RadialSpan {
    /// Spherical shell layer: absolute radii.
    Spherical { r0: f64, r1: f64 },
    /// Inner-core column layer: fractions between the cube surface (which
    /// varies laterally) and the ICB.
    Column { f0: f64, f1: f64 },
    /// Central-cube element: no radial span (fully 3-D lattice cell).
    Cube,
}

impl GlobalMesh {
    /// Number of GLL points per element.
    pub fn points_per_element(&self) -> usize {
        let np = self.basis.npoints();
        np * np * np
    }

    /// Build the global mesh for `params` over `model`.
    pub fn build(params: &MeshParams, model: &dyn EarthModel) -> GlobalMesh {
        let _span = specfem_obs::span("mesh.build");
        let basis = GllBasis::new(params.degree);
        let nex = params.nex_xi;
        let a = params.cube_half_width_fraction * ICB_RADIUS_M;
        let beta = params.cube_inflation;
        let radial_nex = params.radial_layer_nex.unwrap_or(nex);
        let (regional, r_base) = match params.mode {
            MeshMode::Global => (false, a),
            MeshMode::Regional { r_min } => (true, r_min),
        };
        let plan = LayerPlan::new(
            model,
            radial_nex,
            r_base,
            params.honor_minor_discontinuities,
        );
        let lattice = tan_lattice(nex);
        let np = basis.npoints();
        let n3 = np * np * np;
        // Reference abscissae as interpolation fractions in [0, 1].
        let frac: Vec<f64> = basis.points.iter().map(|&x| (x + 1.0) / 2.0).collect();

        if regional {
            assert!(
                plan.shells
                    .iter()
                    .all(|s| s.region == MeshRegion::CrustMantle),
                "regional meshes must stay in the solid mantle/crust"
            );
        }

        // ---- enumerate element specs -----------------------------------
        let span_enumerate = specfem_obs::span("mesh.enumerate");
        let mut specs: Vec<ElementSpec> = Vec::new();
        // Central cube (global mode only).
        for k in 0..if regional { 0 } else { nex } {
            for j in 0..nex {
                for i in 0..nex {
                    specs.push(ElementSpec {
                        home: ElementHome::Cube {
                            i: i as u16,
                            j: j as u16,
                            k: k as u16,
                        },
                        region: MeshRegion::CentralCube,
                        mat_r_lo: 0.0,
                        mat_r_hi: ICB_RADIUS_M,
                        radial: RadialSpan::Cube,
                    });
                }
            }
        }
        // Shells, bottom-up, chunk by chunk (regional: the +Z chunk only).
        let nchunks = if regional { 1 } else { NCHUNKS };
        for chunk in 0..nchunks {
            for shell in &plan.shells {
                let radii = shell.layer_radii();
                for l in 0..shell.n_layers {
                    let radial = if shell.region == MeshRegion::InnerCore {
                        RadialSpan::Column {
                            f0: l as f64 / shell.n_layers as f64,
                            f1: (l + 1) as f64 / shell.n_layers as f64,
                        }
                    } else {
                        RadialSpan::Spherical {
                            r0: radii[l],
                            r1: radii[l + 1],
                        }
                    };
                    let (mat_lo, mat_hi) = if shell.region == MeshRegion::InnerCore {
                        (0.0, ICB_RADIUS_M)
                    } else {
                        (shell.r_in, shell.r_out)
                    };
                    for iy in 0..nex {
                        for ix in 0..nex {
                            specs.push(ElementSpec {
                                home: ElementHome::Shell {
                                    chunk: chunk as u8,
                                    ix: ix as u16,
                                    iy: iy as u16,
                                },
                                region: shell.region,
                                mat_r_lo: mat_lo,
                                mat_r_hi: mat_hi,
                                radial,
                            });
                        }
                    }
                }
            }
        }
        let nspec = specs.len();
        let mut report = MesherReport {
            passes: if params.legacy_two_pass_materials {
                2
            } else {
                1
            },
            ..Default::default()
        };
        for s in &specs {
            let slot = match s.region {
                MeshRegion::CrustMantle => 0,
                MeshRegion::OuterCore => 1,
                MeshRegion::InnerCore => 2,
                MeshRegion::CentralCube => 3,
            };
            report.elements_per_region[slot] += 1;
        }

        drop(span_enumerate);

        // ---- geometry pass ----------------------------------------------
        let span_geometry = specfem_obs::span("mesh.geometry");
        let gen_nodes =
            |spec: &ElementSpec| -> Vec<[f64; 3]> { element_nodes(spec, &lattice, &frac, a, beta) };
        let t0 = Instant::now();
        let all_nodes: Vec<Vec<[f64; 3]>> = specs.par_iter().map(gen_nodes).collect();
        report.geometry_seconds = t0.elapsed().as_secs_f64();
        drop(span_geometry);

        // ---- material assignment ----------------------------------------
        let span_materials = specfem_obs::span("mesh.materials");
        let t0 = Instant::now();
        let materials: Vec<[Vec<f32>; 4]> = if params.legacy_two_pass_materials {
            // Legacy mode: the mesher runs again — geometry is regenerated
            // from scratch just to know where to sample the model (§4.4-1).
            specs
                .par_iter()
                .map(|spec| {
                    let nodes = gen_nodes(spec);
                    assign_materials(spec, &nodes, model)
                })
                .collect()
        } else {
            specs
                .par_iter()
                .zip(&all_nodes)
                .map(|(spec, nodes)| assign_materials(spec, nodes, model))
                .collect()
        };
        report.material_seconds = t0.elapsed().as_secs_f64();
        drop(span_materials);

        // ---- global numbering -------------------------------------------
        let span_numbering = specfem_obs::span("mesh.numbering");
        let t0 = Instant::now();
        // Tolerance far below the smallest GLL spacing: even a NEX=512 crust
        // layer has ~50 m spacing; roundoff differences are nanometres.
        let mut registry = crate::numbering::PointRegistry::new(0.05);
        let mut ibool = Vec::with_capacity(nspec * n3);
        for nodes in &all_nodes {
            for &p in nodes {
                ibool.push(registry.get_or_insert(p));
            }
        }
        let nglob = registry.len();
        let coords = registry.into_coords();
        report.numbering_seconds = t0.elapsed().as_secs_f64();
        drop(span_numbering);

        // ---- flatten materials ------------------------------------------
        let mut rho = Vec::with_capacity(nspec * n3);
        let mut kappa = Vec::with_capacity(nspec * n3);
        let mut mu = Vec::with_capacity(nspec * n3);
        let mut qmu = Vec::with_capacity(nspec * n3);
        for m in &materials {
            rho.extend_from_slice(&m[0]);
            kappa.extend_from_slice(&m[1]);
            mu.extend_from_slice(&m[2]);
            qmu.extend_from_slice(&m[3]);
        }

        GlobalMesh {
            params: params.clone(),
            basis,
            nspec,
            nglob,
            ibool,
            coords,
            region: specs.iter().map(|s| s.region).collect(),
            home: specs.iter().map(|s| s.home).collect(),
            rho,
            kappa,
            mu,
            qmu,
            layer_plan: plan,
            report,
        }
    }

    /// Nodal coordinates of element `e` (n³ points, `i` fastest).
    pub fn element_nodes(&self, e: usize) -> Vec<[f64; 3]> {
        let n3 = self.points_per_element();
        self.ibool[e * n3..(e + 1) * n3]
            .iter()
            .map(|&g| self.coords[g as usize])
            .collect()
    }

    /// Expected element count for the structured decomposition:
    /// `6·NEX²·Σlayers + NEX³` for the globe, `NEX²·Σlayers` regionally.
    pub fn expected_nspec(params: &MeshParams, plan: &LayerPlan) -> usize {
        match params.mode {
            MeshMode::Global => {
                6 * params.nex_xi * params.nex_xi * plan.total_layers()
                    + params.nex_xi * params.nex_xi * params.nex_xi
            }
            MeshMode::Regional { .. } => params.nex_xi * params.nex_xi * plan.total_layers(),
        }
    }
}

/// A point on the ray through unnormalized direction `c` at radius `r`.
#[inline]
fn ray_point(c: [f64; 3], r: f64) -> [f64; 3] {
    let norm = (c[0] * c[0] + c[1] * c[1] + c[2] * c[2]).sqrt();
    [r * c[0] / norm, r * c[1] / norm, r * c[2] / norm]
}

/// Generate the GLL nodal coordinates of one element.
fn element_nodes(
    spec: &ElementSpec,
    lattice: &[f64],
    frac: &[f64],
    a: f64,
    beta: f64,
) -> Vec<[f64; 3]> {
    let np = frac.len();
    let mut out = Vec::with_capacity(np * np * np);
    match (spec.home, spec.radial) {
        (ElementHome::Cube { i, j, k }, RadialSpan::Cube) => {
            let (i, j, k) = (i as usize, j as usize, k as usize);
            for &tk in frac.iter().take(np) {
                let cz = lerp(lattice[k], lattice[k + 1], tk);
                for &tj in frac.iter().take(np) {
                    let cy = lerp(lattice[j], lattice[j + 1], tj);
                    for &ti in frac.iter().take(np) {
                        let cx = lerp(lattice[i], lattice[i + 1], ti);
                        out.push(cube_node([cx, cy, cz], a, beta));
                    }
                }
            }
        }
        (ElementHome::Shell { chunk, ix, iy }, radial) => {
            let (ix, iy) = (ix as usize, iy as usize);
            for &tk in frac.iter().take(np) {
                for &tj in frac.iter().take(np) {
                    let v = lerp(lattice[iy], lattice[iy + 1], tj);
                    for &ti in frac.iter().take(np) {
                        let u = lerp(lattice[ix], lattice[ix + 1], ti);
                        let c = chunk_face_vector(chunk as usize, u, v);
                        let r = match radial {
                            RadialSpan::Spherical { r0, r1 } => lerp(r0, r1, tk),
                            RadialSpan::Column { f0, f1 } => {
                                let r_bot = cube_surface_radius(c, a, beta);
                                lerp(
                                    lerp(r_bot, ICB_RADIUS_M, f0),
                                    lerp(r_bot, ICB_RADIUS_M, f1),
                                    tk,
                                )
                            }
                            RadialSpan::Cube => unreachable!("shell element with cube span"),
                        };
                        out.push(ray_point(c, r));
                    }
                }
            }
        }
        _ => unreachable!("inconsistent element spec"),
    }
    out
}

/// Sample the model at every GLL point of one element, staying on the
/// element's own side of material discontinuities.
fn assign_materials(
    spec: &ElementSpec,
    nodes: &[[f64; 3]],
    model: &dyn EarthModel,
) -> [Vec<f32>; 4] {
    let n = nodes.len();
    let mut rho = Vec::with_capacity(n);
    let mut kappa = Vec::with_capacity(n);
    let mut mu = Vec::with_capacity(n);
    let mut qmu = Vec::with_capacity(n);
    let tiny = 1e-3; // metres
                     // Boundary points are pulled 1 cm *into* the shell before sampling:
                     // the model polynomials are continuous inside a region (error ~1e-9
                     // relative), and the recomputed radius of the scaled position can then
                     // never round across the discontinuity.
    let inset = 0.01;
    for p in nodes {
        let r = (p[0] * p[0] + p[1] * p[1] + p[2] * p[2]).sqrt();
        let r_s = if r >= spec.mat_r_hi - tiny {
            spec.mat_r_hi - inset
        } else if r <= spec.mat_r_lo + tiny {
            spec.mat_r_lo + inset
        } else {
            r
        };
        // Sample at the clamped radius along the same ray, preserving the
        // lateral position for 3-D models.
        let m = if r > tiny {
            let s = r_s / r;
            model.material_at_point([p[0] * s, p[1] * s, p[2] * s], false)
        } else {
            model.material_at(r_s, false)
        };
        rho.push(m.rho as f32);
        kappa.push(m.kappa() as f32);
        mu.push(m.mu() as f32);
        qmu.push(m.q_mu as f32);
    }
    [rho, kappa, mu, qmu]
}

#[cfg(test)]
mod tests {
    use super::*;
    use specfem_model::{Prem, CMB_RADIUS_M, EARTH_RADIUS_M};

    fn small_mesh() -> GlobalMesh {
        let params = MeshParams::new(4, 2);
        let prem = Prem::isotropic_no_ocean();
        GlobalMesh::build(&params, &prem)
    }

    #[test]
    fn element_count_matches_structured_formula() {
        let mesh = small_mesh();
        let expect = GlobalMesh::expected_nspec(&mesh.params, &mesh.layer_plan);
        assert_eq!(mesh.nspec, expect);
        assert_eq!(mesh.region.len(), mesh.nspec);
        assert_eq!(mesh.ibool.len(), mesh.nspec * mesh.points_per_element());
    }

    #[test]
    fn global_numbering_shares_points_between_elements() {
        let mesh = small_mesh();
        // A conforming mesh has far fewer global points than local points.
        let nloc = mesh.nspec * mesh.points_per_element();
        assert!(mesh.nglob < nloc, "nglob {} !< nloc {nloc}", mesh.nglob);
        // For degree 4 conforming hexahedral meshes the ratio is ~0.52-0.75.
        let ratio = mesh.nglob as f64 / nloc as f64;
        assert!(ratio > 0.4 && ratio < 0.8, "suspicious ratio {ratio}");
    }

    #[test]
    fn all_points_inside_earth_and_cover_surface_and_center() {
        let mesh = small_mesh();
        let mut r_max: f64 = 0.0;
        let mut r_min = f64::INFINITY;
        for p in &mesh.coords {
            let r = (p[0] * p[0] + p[1] * p[1] + p[2] * p[2]).sqrt();
            r_max = r_max.max(r);
            r_min = r_min.min(r);
        }
        assert!(r_max <= EARTH_RADIUS_M * (1.0 + 1e-9));
        assert!((r_max - EARTH_RADIUS_M).abs() < 1.0, "surface not meshed");
        assert!(r_min < 1.0, "cube centre missing (r_min = {r_min})");
    }

    #[test]
    fn fluid_elements_have_zero_shear_solid_nonzero() {
        let mesh = small_mesh();
        let n3 = mesh.points_per_element();
        for e in 0..mesh.nspec {
            let is_fluid = mesh.region[e].is_fluid();
            for idx in e * n3..(e + 1) * n3 {
                if is_fluid {
                    assert_eq!(mesh.mu[idx], 0.0, "fluid with shear at elem {e}");
                } else {
                    assert!(mesh.mu[idx] > 0.0, "solid without shear at elem {e}");
                }
                assert!(mesh.rho[idx] > 0.0);
                assert!(mesh.kappa[idx] > 0.0);
            }
        }
    }

    #[test]
    fn material_sides_respect_cmb_discontinuity() {
        // GLL points exactly on the CMB belong to both an outer-core element
        // (fluid side) and a mantle element (solid side) and must carry the
        // correct one-sided material in each.
        let mesh = small_mesh();
        let n3 = mesh.points_per_element();
        let mut fluid_side = Vec::new();
        let mut solid_side = Vec::new();
        for e in 0..mesh.nspec {
            for l in 0..n3 {
                let g = mesh.ibool[e * n3 + l] as usize;
                let p = mesh.coords[g];
                let r = (p[0] * p[0] + p[1] * p[1] + p[2] * p[2]).sqrt();
                if (r - CMB_RADIUS_M).abs() < 1.0 {
                    match mesh.region[e] {
                        MeshRegion::OuterCore => fluid_side.push(mesh.rho[e * n3 + l]),
                        MeshRegion::CrustMantle => solid_side.push(mesh.rho[e * n3 + l]),
                        _ => {}
                    }
                }
            }
        }
        assert!(!fluid_side.is_empty() && !solid_side.is_empty());
        for &rho in &fluid_side {
            assert!((rho - 9903.4).abs() < 50.0, "fluid-side rho {rho}");
        }
        for &rho in &solid_side {
            assert!((rho - 5566.5).abs() < 50.0, "solid-side rho {rho}");
        }
    }

    #[test]
    fn all_elements_have_positive_jacobian() {
        let mesh = small_mesh();
        for e in 0..mesh.nspec {
            let nodes = mesh.element_nodes(e);
            crate::geometry::ElementGeometry::compute(&mesh.basis, &nodes)
                .unwrap_or_else(|err| panic!("element {e} ({:?}): {err}", mesh.region[e]));
        }
    }

    #[test]
    fn mesh_volume_matches_sphere() {
        let mesh = small_mesh();
        let np = mesh.basis.npoints();
        let mut vol = 0.0f64;
        for e in 0..mesh.nspec {
            let nodes = mesh.element_nodes(e);
            let g = crate::geometry::ElementGeometry::compute(&mesh.basis, &nodes).unwrap();
            for k in 0..np {
                for j in 0..np {
                    for i in 0..np {
                        let w =
                            mesh.basis.weights[i] * mesh.basis.weights[j] * mesh.basis.weights[k];
                        vol += w * g.jacobian[(k * np + j) * np + i] as f64;
                    }
                }
            }
        }
        let exact = 4.0 / 3.0 * std::f64::consts::PI * EARTH_RADIUS_M.powi(3);
        let rel = (vol - exact).abs() / exact;
        // NEX=4 is a very coarse sphere; a percent-level error is expected,
        // but anything larger means holes or overlaps.
        assert!(rel < 0.02, "volume error {rel}");
    }

    #[test]
    fn two_pass_matches_one_pass_materials_but_is_slower() {
        let prem = Prem::isotropic_no_ocean();
        let mut p1 = MeshParams::new(4, 2);
        p1.legacy_two_pass_materials = false;
        let mut p2 = p1.clone();
        p2.legacy_two_pass_materials = true;
        let m1 = GlobalMesh::build(&p1, &prem);
        let m2 = GlobalMesh::build(&p2, &prem);
        assert_eq!(m1.rho, m2.rho);
        assert_eq!(m1.mu, m2.mu);
        assert_eq!(m1.report.passes, 1);
        assert_eq!(m2.report.passes, 2);
    }
}
