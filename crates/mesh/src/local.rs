//! The per-rank mesh slice the solver runs on.

use specfem_comm::HaloPlan;
use specfem_gll::GllBasis;

use crate::geometry::{min_gll_spacing, ElementGeometry, QualityReport, COURANT};
use crate::MeshRegion;

/// Everything one rank needs: its elements, local numbering, materials and
/// the halo plan describing shared points with neighbouring ranks.
#[derive(Debug, Clone)]
pub struct LocalMesh {
    /// Owning rank.
    pub rank: usize,
    /// GLL basis (copied; small).
    pub basis: GllBasis,
    /// Number of local elements.
    pub nspec: usize,
    /// Number of *outer* elements — elements touching at least one halo
    /// (inter-rank shared) point. The extraction orders outer elements
    /// first, so `0..nspec_outer` are outer and `nspec_outer..nspec` are
    /// inner; the solver uses the split to overlap halo communication with
    /// inner-element computation.
    pub nspec_outer: usize,
    /// Number of local points.
    pub nglob: usize,
    /// Local connectivity: `ibool[e·n³ + …] → local point id`.
    pub ibool: Vec<u32>,
    /// Local point coordinates (m).
    pub coords: Vec<[f64; 3]>,
    /// Local point id → global point id (diagnostics and tests).
    pub global_ids: Vec<u32>,
    /// Region per local element.
    pub region: Vec<MeshRegion>,
    /// Global element id per local element (diagnostics and tests).
    pub element_global: Vec<u32>,
    /// Density per GLL point (kg/m³).
    pub rho: Vec<f32>,
    /// Bulk modulus per GLL point (Pa).
    pub kappa: Vec<f32>,
    /// Shear modulus per GLL point (Pa).
    pub mu: Vec<f32>,
    /// Shear quality factor per GLL point.
    pub qmu: Vec<f32>,
    /// Communication plan for assembly.
    pub halo: HaloPlan,
}

impl LocalMesh {
    /// GLL points per element.
    pub fn points_per_element(&self) -> usize {
        let np = self.basis.npoints();
        np * np * np
    }

    /// The outer elements (touch a halo point) — computed *before* posting
    /// the halo exchange.
    pub fn outer_elements(&self) -> std::ops::Range<usize> {
        0..self.nspec_outer
    }

    /// The inner elements (touch no halo point) — computable while halo
    /// messages are in flight.
    pub fn inner_elements(&self) -> std::ops::Range<usize> {
        self.nspec_outer..self.nspec
    }

    /// Nodal coordinates of local element `e`.
    pub fn element_nodes(&self, e: usize) -> Vec<[f64; 3]> {
        let n3 = self.points_per_element();
        self.ibool[e * n3..(e + 1) * n3]
            .iter()
            .map(|&l| self.coords[l as usize])
            .collect()
    }

    /// Metric terms of local element `e`.
    pub fn element_geometry(&self, e: usize) -> ElementGeometry {
        ElementGeometry::compute(&self.basis, &self.element_nodes(e))
            .unwrap_or_else(|err| panic!("rank {} element {e}: {err}", self.rank))
    }

    /// Stability / resolution report over this rank's elements.
    ///
    /// `dt` from the Courant condition on the local P speed; shortest
    /// resolved period from the 5-points-per-wavelength rule on the local
    /// S speed (P speed in the fluid), paper §3.
    pub fn quality(&self) -> QualityReport {
        let np = self.basis.npoints();
        let n3 = self.points_per_element();
        let mut rep = QualityReport::default();
        for e in 0..self.nspec {
            let nodes = self.element_nodes(e);
            let hmin = min_gll_spacing(&self.basis, &nodes);
            // Average GLL spacing (element size / degree) for resolution.
            let mut hmax: f64 = 0.0;
            let at = |i: usize, j: usize, k: usize| nodes[(k * np + j) * np + i];
            let d = |a: [f64; 3], b: [f64; 3]| {
                ((a[0] - b[0]).powi(2) + (a[1] - b[1]).powi(2) + (a[2] - b[2]).powi(2)).sqrt()
            };
            // Element edge lengths along the three directions.
            hmax = hmax.max(d(at(0, 0, 0), at(np - 1, 0, 0)));
            hmax = hmax.max(d(at(0, 0, 0), at(0, np - 1, 0)));
            hmax = hmax.max(d(at(0, 0, 0), at(0, 0, np - 1)));

            let mut vp_max = 0.0f64;
            let mut v_res_min = f64::INFINITY;
            for l in 0..n3 {
                let idx = e * n3 + l;
                let rho = self.rho[idx] as f64;
                let kap = self.kappa[idx] as f64;
                let mu = self.mu[idx] as f64;
                let vp = ((kap + 4.0 / 3.0 * mu) / rho).sqrt();
                let vs = (mu / rho).sqrt();
                vp_max = vp_max.max(vp);
                // Resolution is governed by the slowest wave present: S in
                // solids, P in the fluid.
                let v = if mu > 0.0 { vs } else { vp };
                v_res_min = v_res_min.min(v);
            }
            let dt = COURANT * hmin / vp_max;
            // 5 points per wavelength; one element of degree N spans N
            // average spacings, so λ_min = 5 · (element size / degree).
            let period = 5.0 * (hmax / self.basis.degree as f64) / v_res_min;

            let er = QualityReport {
                min_spacing_m: hmin,
                max_spacing_m: hmax,
                dt_stable_s: dt,
                shortest_period_s: period,
            };
            rep = if e == 0 { er } else { rep.merge(&er) };
        }
        rep
    }

    /// Element adjacency (elements sharing at least one local point) —
    /// input to the Cuthill-McKee orderings.
    pub fn element_adjacency(&self) -> Vec<Vec<u32>> {
        let n3 = self.points_per_element();
        let mut point_elems: Vec<Vec<u32>> = vec![Vec::new(); self.nglob];
        for e in 0..self.nspec {
            for &p in &self.ibool[e * n3..(e + 1) * n3] {
                let v = &mut point_elems[p as usize];
                if v.last() != Some(&(e as u32)) {
                    v.push(e as u32);
                }
            }
        }
        let mut adj: Vec<Vec<u32>> = vec![Vec::new(); self.nspec];
        for elems in &point_elems {
            for (ai, &a) in elems.iter().enumerate() {
                for &b in &elems[ai + 1..] {
                    adj[a as usize].push(b);
                    adj[b as usize].push(a);
                }
            }
        }
        for v in &mut adj {
            v.sort_unstable();
            v.dedup();
        }
        adj
    }
}
