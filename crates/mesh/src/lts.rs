//! Clustered local time stepping (LTS): per-element permitted time steps
//! and rate-2^k cluster assignment.
//!
//! The global mesh's doubling layers and crustal thinning make the
//! Courant-stable `dt` vary by large factors across elements, yet the
//! plain solver steps every element at the global minimum. Following the
//! clustered-LTS scheme of Breuer & Heinecke's ADER-DG work, elements are
//! bucketed into clusters whose rates are powers of two: a rate-`r`
//! cluster refreshes its element contributions every `r` fine steps. The
//! assignment here is purely element-local — a function of the element's
//! geometry and material only — so it is deterministic under any element
//! reordering (the fingerprint invariance `tests/` property).

use std::collections::hash_map::DefaultHasher;
use std::hash::{Hash, Hasher};

use crate::build::GlobalMesh;
use crate::geometry::{min_gll_spacing, COURANT};
use crate::local::LocalMesh;
use crate::partition::Partition;
use specfem_gll::GllBasis;

/// Hard ceiling on cluster rates (`LTS_MAX_RATE` must be a power of two
/// no larger than this). 32 covers the dt spread of every mesh the layer
/// plan can produce; deeper hierarchies only add scheduling overhead.
pub const MAX_LTS_RATE: usize = 32;

/// Validate an `LTS_MAX_RATE` value: at least 1, a power of two, at most
/// [`MAX_LTS_RATE`]. Shared by the Par_file reader and the solver so the
/// two never disagree on what a legal cap is.
pub fn validate_max_rate(max_rate: usize) -> Result<(), String> {
    if max_rate < 1 {
        return Err(format!("LTS_MAX_RATE: must be >= 1, got {max_rate}"));
    }
    if !max_rate.is_power_of_two() {
        return Err(format!(
            "LTS_MAX_RATE: must be a power of two, got {max_rate}"
        ));
    }
    if max_rate > MAX_LTS_RATE {
        return Err(format!(
            "LTS_MAX_RATE: must be <= {MAX_LTS_RATE}, got {max_rate}"
        ));
    }
    Ok(())
}

/// Courant-permitted time step of one element: `COURANT · h_min / v_p,max`
/// — exactly the per-element bound [`LocalMesh::quality`] minimizes over.
fn element_dt(basis: &GllBasis, nodes: &[[f64; 3]], rho: &[f32], kappa: &[f32], mu: &[f32]) -> f64 {
    let hmin = min_gll_spacing(basis, nodes);
    let mut vp_max = 0.0f64;
    for l in 0..nodes.len() {
        let rho = rho[l] as f64;
        let kap = kappa[l] as f64;
        let mu = mu[l] as f64;
        let vp = ((kap + 4.0 / 3.0 * mu) / rho).sqrt();
        vp_max = vp_max.max(vp);
    }
    COURANT * hmin / vp_max
}

/// Per-element permitted `dt` of a rank's local elements, in local
/// element order. The minimum over all ranks' entries equals
/// `quality().dt_stable_s` reduced over the world — the plain solver's
/// global step.
pub fn element_dts(mesh: &LocalMesh) -> Vec<f64> {
    let n3 = mesh.points_per_element();
    (0..mesh.nspec)
        .map(|e| {
            let nodes = mesh.element_nodes(e);
            let base = e * n3;
            element_dt(
                &mesh.basis,
                &nodes,
                &mesh.rho[base..base + n3],
                &mesh.kappa[base..base + n3],
                &mesh.mu[base..base + n3],
            )
        })
        .collect()
}

/// Per-element permitted `dt` of the global mesh, in global element order
/// — the partitioner's input for cluster-aware balancing.
pub fn global_element_dts(mesh: &GlobalMesh) -> Vec<f64> {
    let n3 = mesh.points_per_element();
    (0..mesh.nspec)
        .map(|e| {
            let base = e * n3;
            let nodes: Vec<[f64; 3]> = mesh.ibool[base..base + n3]
                .iter()
                .map(|&g| mesh.coords[g as usize])
                .collect();
            element_dt(
                &mesh.basis,
                &nodes,
                &mesh.rho[base..base + n3],
                &mesh.kappa[base..base + n3],
                &mesh.mu[base..base + n3],
            )
        })
        .collect()
}

/// The cluster assignment: one rate per element, each a power of two.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LtsClusters {
    /// Rate of each element (power of two, ≤ the cap used at assignment).
    pub rate_of: Vec<u32>,
    /// The cap the assignment honoured.
    pub max_rate: u32,
}

impl LtsClusters {
    /// Bucket elements by permitted step: an element of permitted step
    /// `dt_e` run at base step `dt` lands in the cluster whose rate is the
    /// largest power of two `r` with `r·dt ≤ dt_e`, capped at `max_rate`
    /// (and floored at 1 — an explicit `dt` larger than an element's bound
    /// never produces a zero rate).
    ///
    /// The mapping reads only `(dt_e, dt, max_rate)`, so permuting the
    /// input permutes the output identically — assignment is invariant
    /// under element reordering.
    ///
    /// # Panics
    /// When `max_rate` fails [`validate_max_rate`] or `dt` is not positive.
    pub fn assign(dts: &[f64], dt: f64, max_rate: usize) -> LtsClusters {
        validate_max_rate(max_rate).unwrap_or_else(|e| panic!("{e}"));
        assert!(dt > 0.0, "LTS base step must be positive, got {dt}");
        let rate_of = dts
            .iter()
            .map(|&dt_e| {
                let ratio = dt_e / dt;
                let mut rate = 1u32;
                while (rate as usize) < max_rate && (2 * rate) as f64 <= ratio {
                    rate *= 2;
                }
                rate
            })
            .collect();
        LtsClusters {
            rate_of,
            max_rate: max_rate as u32,
        }
    }

    /// The distinct rates present, ascending.
    pub fn levels(&self) -> Vec<u32> {
        let mut lv: Vec<u32> = self.rate_of.clone();
        lv.sort_unstable();
        lv.dedup();
        lv
    }

    /// Elements of one rate, ascending element index.
    pub fn elements_at(&self, rate: u32) -> Vec<u32> {
        self.rate_of
            .iter()
            .enumerate()
            .filter(|(_, &r)| r == rate)
            .map(|(e, _)| e as u32)
            .collect()
    }

    /// Element-step count of an `nsteps`-step run: rate-`r` elements
    /// refresh at steps `0, r, 2r, …`, i.e. `ceil(nsteps / r)` times.
    pub fn element_steps(&self, nsteps: usize) -> u64 {
        self.rate_of
            .iter()
            .map(|&r| nsteps.div_ceil(r as usize) as u64)
            .sum()
    }

    /// Theoretical LTS speedup: global-min-dt element steps over clustered
    /// element steps (pure kernel-work model; the achieved number the
    /// E-LTS ablation measures is below this because per-step scatter,
    /// update and communication costs are not rate-scaled).
    pub fn theoretical_speedup(&self, nsteps: usize) -> f64 {
        let plain = (self.rate_of.len() * nsteps) as f64;
        plain / self.element_steps(nsteps).max(1) as f64
    }

    /// Order-invariant fingerprint of the assignment: a hash over the
    /// sorted `(global element id, rate)` pairs. Two ranks (or two
    /// extraction orders) holding the same elements at the same rates
    /// produce the same fingerprint regardless of local ordering.
    pub fn fingerprint(&self, element_global: &[u32]) -> u64 {
        assert_eq!(element_global.len(), self.rate_of.len());
        let mut pairs: Vec<(u32, u32)> = element_global
            .iter()
            .copied()
            .zip(self.rate_of.iter().copied())
            .collect();
        pairs.sort_unstable();
        let mut h = DefaultHasher::new();
        pairs.hash(&mut h);
        h.finish()
    }

    /// Per-element LTS work weights (`1/rate`) — the partitioner input.
    pub fn weights(&self) -> Vec<f64> {
        self.rate_of.iter().map(|&r| 1.0 / r as f64).collect()
    }
}

impl Partition {
    /// A contiguous partition balanced by *LTS work* instead of element
    /// count: element `e` costs `1/rate_of[e]` kernel sweeps per fine
    /// step, and the blocks are cut so every rank's summed cost is within
    /// the stated bound of the ideal share.
    ///
    /// **Stated balance bound:** every rank's weighted load is at most
    /// `total_weight / nranks + 1.0` (one element weighs at most 1), which
    /// the cluster-balance proptests enforce. With all rates equal this
    /// degenerates to [`Partition::balanced`]'s near-equal element counts.
    ///
    /// # Panics
    /// When `rate_of` doesn't cover the mesh or `nranks` is zero / exceeds
    /// the element count.
    pub fn lts_balanced(mesh: &GlobalMesh, nranks: usize, rate_of: &[u32]) -> Partition {
        assert_eq!(rate_of.len(), mesh.nspec, "rate per global element");
        assert!(nranks >= 1, "LTS partition needs at least one rank");
        assert!(
            nranks <= mesh.nspec,
            "LTS partition of {} elements cannot fill {nranks} ranks",
            mesh.nspec
        );
        let n = mesh.nspec;
        // Prefix weights: prefix[e] = Σ w_i for i < e.
        let mut prefix = Vec::with_capacity(n + 1);
        let mut acc = 0.0f64;
        prefix.push(0.0);
        for &r in rate_of {
            acc += 1.0 / r as f64;
            prefix.push(acc);
        }
        let total = acc;
        let share = total / nranks as f64;
        // Cut r at the smallest index with prefix ≥ r·share, nudged so
        // every block keeps at least one element. A nudge only fires when
        // the natural block would be empty, and the forced single-element
        // block weighs ≤ 1 — inside the stated bound either way.
        let mut cuts = Vec::with_capacity(nranks + 1);
        cuts.push(0usize);
        for r in 1..nranks {
            let target = r as f64 * share;
            let natural = prefix.partition_point(|&w| w < target).min(n);
            let lo = cuts[r - 1] + 1;
            let hi = n - (nranks - r);
            cuts.push(natural.clamp(lo, hi));
        }
        cuts.push(n);
        let mut rank_of = vec![0u32; n];
        for r in 0..nranks {
            rank_of[cuts[r]..cuts[r + 1]].fill(r as u32);
        }
        Partition {
            num_ranks: nranks,
            rank_of,
        }
    }

    /// Weighted (LTS-work) load per rank — the balance view the
    /// [`Partition::lts_balanced`] bound is stated over.
    pub fn lts_load(&self, rate_of: &[u32]) -> Vec<f64> {
        assert_eq!(rate_of.len(), self.rank_of.len());
        let mut load = vec![0.0f64; self.num_ranks];
        for (e, &r) in self.rank_of.iter().enumerate() {
            load[r as usize] += 1.0 / rate_of[e] as f64;
        }
        load
    }

    /// Elements per `(rank, rate)` — `out[rank]` lists `(rate, count)`
    /// ascending by rate. The per-rank cluster census for reports and
    /// balance tests.
    pub fn cluster_census(&self, rate_of: &[u32]) -> Vec<Vec<(u32, usize)>> {
        assert_eq!(rate_of.len(), self.rank_of.len());
        let mut out: Vec<std::collections::BTreeMap<u32, usize>> =
            vec![Default::default(); self.num_ranks];
        for (e, &r) in self.rank_of.iter().enumerate() {
            *out[r as usize].entry(rate_of[e]).or_default() += 1;
        }
        out.into_iter().map(|m| m.into_iter().collect()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::MeshParams;
    use specfem_model::Prem;

    fn prem_mesh(nex: usize) -> GlobalMesh {
        GlobalMesh::build(&MeshParams::new(nex, 1), &Prem::isotropic_no_ocean())
    }

    #[test]
    fn max_rate_validation() {
        assert!(validate_max_rate(1).is_ok());
        assert!(validate_max_rate(2).is_ok());
        assert!(validate_max_rate(MAX_LTS_RATE).is_ok());
        assert!(validate_max_rate(0).is_err());
        assert!(validate_max_rate(3).is_err());
        assert!(validate_max_rate(MAX_LTS_RATE * 2).is_err());
    }

    #[test]
    fn local_min_dt_matches_quality_report() {
        let gm = prem_mesh(4);
        let local = Partition::serial(&gm).extract(&gm, 0);
        let dts = element_dts(&local);
        let min = dts.iter().cloned().fold(f64::INFINITY, f64::min);
        let q = local.quality();
        assert!(
            (min - q.dt_stable_s).abs() < 1e-12 * q.dt_stable_s,
            "per-element min {min} vs quality {q:?}"
        );
    }

    #[test]
    fn global_dts_match_local_dts_under_extraction() {
        // The same element must get the same permitted dt whether computed
        // from the global mesh or from any rank's extracted local mesh —
        // the property that lets ranks assign clusters independently.
        let gm = prem_mesh(4);
        let global = global_element_dts(&gm);
        let part = Partition::compute(&gm);
        for rank in [0usize, 7, 23] {
            let local = part.extract(&gm, rank);
            let local_dts = element_dts(&local);
            for (le, &ge) in local.element_global.iter().enumerate() {
                assert_eq!(
                    local_dts[le].to_bits(),
                    global[ge as usize].to_bits(),
                    "rank {rank} element {le} (global {ge})"
                );
            }
        }
    }

    #[test]
    fn assignment_rates_are_powers_of_two_within_cap() {
        let gm = prem_mesh(6);
        let dts = global_element_dts(&gm);
        let dt_min = dts.iter().cloned().fold(f64::INFINITY, f64::min);
        for cap in [1usize, 2, 4, 8, MAX_LTS_RATE] {
            let clusters = LtsClusters::assign(&dts, dt_min, cap);
            assert_eq!(clusters.rate_of.len(), gm.nspec);
            for &r in &clusters.rate_of {
                assert!(r.is_power_of_two() && r as usize <= cap, "rate {r}");
            }
            if cap == 1 {
                assert_eq!(clusters.levels(), vec![1]);
            }
        }
    }

    #[test]
    fn prem_mesh_has_a_multi_rate_spread() {
        // The layered mesh must actually produce ≥ 2 clusters — otherwise
        // the whole LTS tier is a no-op on the meshes we care about.
        let gm = prem_mesh(6);
        let dts = global_element_dts(&gm);
        let dt_min = dts.iter().cloned().fold(f64::INFINITY, f64::min);
        let clusters = LtsClusters::assign(&dts, dt_min, MAX_LTS_RATE);
        let levels = clusters.levels();
        assert!(
            levels.len() >= 2,
            "expected a rate spread on PREM, got {levels:?}"
        );
        assert!(clusters.theoretical_speedup(64) > 1.0);
    }

    #[test]
    fn element_steps_count_activations() {
        let clusters = LtsClusters {
            rate_of: vec![1, 2, 4],
            max_rate: 4,
        };
        // 10 steps: rate 1 fires 10×, rate 2 fires at 0,2,..,8 = 5×,
        // rate 4 at 0,4,8 = 3× (ceil(10/4)).
        assert_eq!(clusters.element_steps(10), 10 + 5 + 3);
        let s = clusters.theoretical_speedup(8);
        assert!((s - 24.0 / (8.0 + 4.0 + 2.0)).abs() < 1e-12);
    }

    #[test]
    fn fingerprint_is_order_invariant() {
        let rates = vec![1u32, 2, 4, 2, 1, 8];
        let ids = vec![10u32, 11, 12, 13, 14, 15];
        let a = LtsClusters {
            rate_of: rates.clone(),
            max_rate: 8,
        };
        let perm = [5usize, 3, 0, 1, 4, 2];
        let b = LtsClusters {
            rate_of: perm.iter().map(|&i| rates[i]).collect(),
            max_rate: 8,
        };
        let ids_b: Vec<u32> = perm.iter().map(|&i| ids[i]).collect();
        assert_eq!(a.fingerprint(&ids), b.fingerprint(&ids_b));
        // Changing one rate changes the fingerprint.
        let mut c = a.clone();
        c.rate_of[0] = 4;
        assert_ne!(a.fingerprint(&ids), c.fingerprint(&ids));
    }

    #[test]
    fn lts_balanced_honours_the_stated_bound() {
        let gm = prem_mesh(6);
        let dts = global_element_dts(&gm);
        let dt_min = dts.iter().cloned().fold(f64::INFINITY, f64::min);
        let clusters = LtsClusters::assign(&dts, dt_min, 8);
        for nranks in [1usize, 2, 3, 5, 8, 13] {
            let part = Partition::lts_balanced(&gm, nranks, &clusters.rate_of);
            let load = part.lts_load(&clusters.rate_of);
            let total: f64 = load.iter().sum();
            let share = total / nranks as f64;
            for (r, &w) in load.iter().enumerate() {
                assert!(w > 0.0, "rank {r} empty at nranks={nranks}");
                assert!(
                    w <= share + 1.0 + 1e-9,
                    "rank {r} load {w} over bound {share} + 1 at nranks={nranks}"
                );
            }
            // Contiguous blocks: rank ids are non-decreasing.
            assert!(part.rank_of.windows(2).all(|w| w[0] <= w[1]));
            let census = part.cluster_census(&clusters.rate_of);
            let n: usize = census.iter().flat_map(|c| c.iter().map(|&(_, k)| k)).sum();
            assert_eq!(n, gm.nspec);
        }
    }
}
