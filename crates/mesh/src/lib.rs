//! The mesher — the `meshfem3D` analog (paper §3).
//!
//! Generates the cubed-sphere spectral-element mesh of the whole globe:
//! six gnomonic chunks from the surface down to a central cube in the inner
//! core, radial element boundaries honouring the Earth model's first-order
//! discontinuities (ICB, CMB, 670, Moho), global point numbering, material
//! assignment, reverse Cuthill-McKee element sorting (§4.2), partitioning of
//! the chunks into `6 × NPROC_XI²` slices with the central cube cut in two
//! (§1), halo communication lists, and seismic-station location (§4.4).
//!
//! Deviations from production SPECFEM3D_GLOBE are documented in DESIGN.md:
//! the mesh is radially conforming (no lateral doubling bricks) and the
//! global mesh is built once then partitioned, which makes the halo lists
//! correct by construction.

pub mod build;
pub mod cubed_sphere;
pub mod fingerprint;
pub mod geometry;
pub mod layers;
pub mod local;
pub mod lts;
pub mod numbering;
pub mod partition;
pub mod report;
pub mod stations;

pub use build::{GlobalMesh, MesherReport};
pub use cubed_sphere::{chunk_direction, cube_node, tan_lattice, NCHUNKS};
pub use fingerprint::{content_hash, estimated_mesh_bytes, MeshContentHash, MeshKey};
pub use geometry::{ElementGeometry, QualityReport};
pub use layers::{LayerPlan, Shell};
pub use local::LocalMesh;
pub use lts::{element_dts, global_element_dts, LtsClusters, MAX_LTS_RATE};
pub use numbering::ElementOrder;
pub use partition::{CubeAssignment, Partition};
pub use stations::{locate_station_exact, locate_station_nearest, Station, StationLocation};

/// Which physical region an element belongs to. Mirrors SPECFEM's
/// crust_mantle / outer_core / inner_core regions, with the central cube
/// tracked separately because it is partitioned differently.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MeshRegion {
    /// Solid mantle + crust (CMB to surface).
    CrustMantle,
    /// Fluid outer core (ICB to CMB).
    OuterCore,
    /// Solid inner core between the central cube and the ICB.
    InnerCore,
    /// The central cube at the centre of the inner core.
    CentralCube,
}

impl MeshRegion {
    /// Whether the region is fluid (scalar-potential unknowns).
    pub fn is_fluid(self) -> bool {
        matches!(self, MeshRegion::OuterCore)
    }

    /// Whether the region is part of the solid inner core.
    pub fn is_inner_core(self) -> bool {
        matches!(self, MeshRegion::InnerCore | MeshRegion::CentralCube)
    }
}

/// Whole-globe or single-chunk regional meshing (paper §3: "the mesher is
/// designed to generate a spectral-element mesh for either regional or
/// entire globe simulations").
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum MeshMode {
    /// Six chunks + central cube: the full globe.
    Global,
    /// One chunk (the +Z chunk) from `r_min` to the surface; the four
    /// chunk sides and the bottom become artificial absorbing boundaries.
    /// `r_min` must not descend into the fluid outer core
    /// (≥ `specfem_model::CMB_RADIUS_M`).
    Regional {
        /// Inner radius of the regional model (m).
        r_min: f64,
    },
}

/// Mesh generation parameters — the analog of SPECFEM's `Par_file`.
#[derive(Debug, Clone)]
pub struct MeshParams {
    /// Whole globe or regional single chunk.
    pub mode: MeshMode,
    /// `NEX_XI`: number of spectral elements along one side of each of the
    /// six chunks at the surface (paper §5). Must be divisible by
    /// `nproc_xi`.
    pub nex_xi: usize,
    /// `NPROC_XI`: number of MPI slices along one side of each chunk; total
    /// ranks = `6 × nproc_xi²` (paper §5, Figure 4).
    pub nproc_xi: usize,
    /// Polynomial degree (production: 4).
    pub degree: usize,
    /// Central-cube inflation factor β ∈ [0, 1): 0 = flat-faced "real"
    /// cube, →1 = fully inflated (spherical) cube boundary. The paper
    /// credits the inflated cube with better inner-core resolution [7].
    /// β = 1 with a straight cube lattice folds the eight corner elements
    /// (negative Jacobians); β ≤ 0.8 is safe, and 0.75 is the default.
    pub cube_inflation: f64,
    /// Central-cube half-width as a fraction of the ICB radius.
    pub cube_half_width_fraction: f64,
    /// Honour minor upper-mantle/crust discontinuities with element
    /// boundaries (true) or only ICB/CMB/670/Moho (false, for small NEX).
    pub honor_minor_discontinuities: bool,
    /// Compute radial layer counts as if `NEX_XI` were this value. Real
    /// SPECFEM3D_GLOBE has a *fixed* radial layering per configuration, so
    /// total work scales as NEX³ (NEX² elements × NEX steps — the Figure 7
    /// growth); pinning this reproduces that scaling in resolution sweeps.
    /// `None` scales the layering with `nex_xi`.
    pub radial_layer_nex: Option<usize>,
    /// How central-cube elements are assigned to ranks.
    pub cube_assignment: CubeAssignment,
    /// Element ordering applied per rank after build.
    pub element_order: ElementOrder,
    /// Legacy two-pass material assignment (geometry first, then a second
    /// full sweep for materials — the §4.4-1 bottleneck) instead of the
    /// merged one-pass assignment.
    pub legacy_two_pass_materials: bool,
}

impl MeshParams {
    /// Sensible defaults for a given resolution/decomposition.
    pub fn new(nex_xi: usize, nproc_xi: usize) -> Self {
        assert!(nex_xi >= 2, "NEX_XI must be at least 2");
        assert!(
            nex_xi.is_multiple_of(nproc_xi),
            "NEX_XI ({nex_xi}) must be divisible by NPROC_XI ({nproc_xi})"
        );
        Self {
            mode: MeshMode::Global,
            nex_xi,
            nproc_xi,
            degree: specfem_gll::DEFAULT_DEGREE,
            cube_inflation: 0.75,
            cube_half_width_fraction: 0.45,
            honor_minor_discontinuities: nex_xi >= 32,
            radial_layer_nex: None,
            cube_assignment: CubeAssignment::TwoRanks,
            element_order: ElementOrder::MultilevelCuthillMcKee { block: 64 },
            legacy_two_pass_materials: false,
        }
    }

    /// Regional single-chunk parameters with the given inner radius (m).
    pub fn regional(nex_xi: usize, nproc_xi: usize, r_min: f64) -> Self {
        assert!(
            r_min >= specfem_model::CMB_RADIUS_M,
            "regional meshes must stay above the fluid outer core"
        );
        Self {
            mode: MeshMode::Regional { r_min },
            ..Self::new(nex_xi, nproc_xi)
        }
    }

    /// Total number of ranks: `6 × NPROC_XI²` for the globe, `NPROC_XI²`
    /// for a regional chunk.
    pub fn num_ranks(&self) -> usize {
        match self.mode {
            MeshMode::Global => 6 * self.nproc_xi * self.nproc_xi,
            MeshMode::Regional { .. } => self.nproc_xi * self.nproc_xi,
        }
    }

    /// The paper's resolution law: shortest resolved period in seconds,
    /// `T = 17 × 256 / NEX_XI` (Figure 5 caption: Resolution = 256·17 / T).
    pub fn nominal_shortest_period_s(&self) -> f64 {
        nominal_shortest_period_s(self.nex_xi)
    }
}

/// The paper's resolution law as a free function: `T(NEX) = 17·256 / NEX`.
pub fn nominal_shortest_period_s(nex_xi: usize) -> f64 {
    17.0 * 256.0 / nex_xi as f64
}

/// The inverse law: NEX needed for a target shortest period (rounded up to
/// the next multiple of 8 so standard NPROC values divide it).
pub fn nex_for_period(period_s: f64) -> usize {
    let raw = 17.0 * 256.0 / period_s;
    (raw / 8.0).ceil() as usize * 8
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn resolution_law_matches_paper_anchor_points() {
        // Paper §5: "mesh resolution from 96 to 640 … 45.3 s to 6.8 s".
        assert!((nominal_shortest_period_s(96) - 45.33).abs() < 0.05);
        assert!((nominal_shortest_period_s(640) - 6.8).abs() < 0.01);
        // §5 predictions: NEX 1440 on 12K cores, NEX 4848 on 62K cores.
        assert!(nominal_shortest_period_s(4848) < 1.0);
        // 2-second barrier needs NEX ≥ 2176.
        assert!(nominal_shortest_period_s(2176) <= 2.0);
        assert!(nex_for_period(2.0) == 2176);
    }

    #[test]
    fn params_validate_divisibility() {
        let p = MeshParams::new(16, 4);
        assert_eq!(p.num_ranks(), 96);
    }

    #[test]
    #[should_panic(expected = "divisible")]
    fn params_reject_bad_divisibility() {
        let _ = MeshParams::new(10, 4);
    }

    #[test]
    fn region_classification() {
        assert!(MeshRegion::OuterCore.is_fluid());
        assert!(!MeshRegion::CrustMantle.is_fluid());
        assert!(MeshRegion::CentralCube.is_inner_core());
        assert!(MeshRegion::InnerCore.is_inner_core());
        assert!(!MeshRegion::OuterCore.is_inner_core());
    }
}
