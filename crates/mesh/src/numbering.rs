//! Global point numbering and element ordering.
//!
//! * [`PointRegistry`] — tolerance-based coordinate matching that assigns
//!   every distinct GLL location one global id (the local→global `ibool`
//!   mapping of paper §2.4 / Figure 3).
//! * [`ElementOrder`] — the element traversal orders of paper §4.2:
//!   natural, random (worst case), reverse Cuthill-McKee, and the improved
//!   *multilevel* Cuthill-McKee that groups 50–100 elements into
//!   cache-sized blocks.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use std::collections::HashMap;

/// Tolerance-based registry of global points.
///
/// Coordinates are quantized onto a grid much finer than any GLL spacing;
/// lookups probe the 27 neighbouring cells so two generations of the same
/// point that differ by roundoff always match, even straddling a cell
/// boundary.
pub struct PointRegistry {
    cell: f64,
    tol2: f64,
    map: HashMap<(i64, i64, i64), Vec<u32>>,
    coords: Vec<[f64; 3]>,
}

impl PointRegistry {
    /// `tolerance` is the distance below which two points are "the same";
    /// it must be far below the minimum GLL spacing (metres).
    pub fn new(tolerance: f64) -> Self {
        assert!(tolerance > 0.0);
        Self {
            cell: 4.0 * tolerance,
            tol2: tolerance * tolerance,
            map: HashMap::new(),
            coords: Vec::new(),
        }
    }

    #[inline]
    fn key(&self, p: [f64; 3]) -> (i64, i64, i64) {
        (
            (p[0] / self.cell).round() as i64,
            (p[1] / self.cell).round() as i64,
            (p[2] / self.cell).round() as i64,
        )
    }

    /// Get the id of `p`, registering it if unseen.
    pub fn get_or_insert(&mut self, p: [f64; 3]) -> u32 {
        let (kx, ky, kz) = self.key(p);
        for dx in -1..=1 {
            for dy in -1..=1 {
                for dz in -1..=1 {
                    if let Some(ids) = self.map.get(&(kx + dx, ky + dy, kz + dz)) {
                        for &id in ids {
                            let q = self.coords[id as usize];
                            let d2 = (p[0] - q[0]).powi(2)
                                + (p[1] - q[1]).powi(2)
                                + (p[2] - q[2]).powi(2);
                            if d2 <= self.tol2 {
                                return id;
                            }
                        }
                    }
                }
            }
        }
        let id = self.coords.len() as u32;
        self.coords.push(p);
        self.map.entry((kx, ky, kz)).or_default().push(id);
        id
    }

    /// Number of distinct points registered.
    pub fn len(&self) -> usize {
        self.coords.len()
    }

    /// True when nothing is registered yet.
    pub fn is_empty(&self) -> bool {
        self.coords.is_empty()
    }

    /// Consume the registry, returning the coordinates by id.
    pub fn into_coords(self) -> Vec<[f64; 3]> {
        self.coords
    }
}

/// Element traversal order (paper §4.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ElementOrder {
    /// Creation order.
    Natural,
    /// Random shuffle with the given seed — the cache-hostile baseline, and
    /// the permutation used by the loop-order-invariance check.
    Random(u64),
    /// Classical reverse Cuthill-McKee on the element adjacency graph.
    CuthillMcKee,
    /// Multilevel variant: RCM order then grouped into `block`-element
    /// chunks that fit L2 together (paper: "groups of typically 50 to 100
    /// elements").
    MultilevelCuthillMcKee {
        /// Elements per cache block.
        block: usize,
    },
}

/// Compute the permutation `perm` such that processing elements in the
/// order `perm[0], perm[1], …` realizes `order`. `adjacency(e)` must yield
/// the neighbours of element `e` (elements sharing at least one point).
pub fn element_permutation(order: ElementOrder, nspec: usize, adjacency: &[Vec<u32>]) -> Vec<u32> {
    match order {
        ElementOrder::Natural => (0..nspec as u32).collect(),
        ElementOrder::Random(seed) => {
            let mut p: Vec<u32> = (0..nspec as u32).collect();
            p.shuffle(&mut StdRng::seed_from_u64(seed));
            p
        }
        ElementOrder::CuthillMcKee => reverse_cuthill_mckee(nspec, adjacency),
        ElementOrder::MultilevelCuthillMcKee { block } => {
            // RCM first, then keep the order but materialize block grouping
            // (blocks are contiguous runs of the RCM order; within a block
            // re-sort by degree to mimic the multilevel pass).
            let rcm = reverse_cuthill_mckee(nspec, adjacency);
            let block = block.max(1);
            let mut out = Vec::with_capacity(nspec);
            for chunk in rcm.chunks(block) {
                let mut b: Vec<u32> = chunk.to_vec();
                b.sort_by_key(|&e| adjacency[e as usize].len());
                out.extend(b);
            }
            out
        }
    }
}

/// Classical reverse Cuthill-McKee on an undirected graph given as
/// adjacency lists. Handles disconnected graphs by restarting from the
/// lowest-degree unvisited vertex.
pub fn reverse_cuthill_mckee(n: usize, adjacency: &[Vec<u32>]) -> Vec<u32> {
    assert_eq!(adjacency.len(), n);
    let mut visited = vec![false; n];
    let mut order = Vec::with_capacity(n);
    let mut queue = std::collections::VecDeque::new();
    // Vertices sorted by degree for start selection.
    let mut by_degree: Vec<u32> = (0..n as u32).collect();
    by_degree.sort_by_key(|&v| adjacency[v as usize].len());

    for &start in &by_degree {
        if visited[start as usize] {
            continue;
        }
        visited[start as usize] = true;
        queue.push_back(start);
        while let Some(v) = queue.pop_front() {
            order.push(v);
            let mut nb: Vec<u32> = adjacency[v as usize]
                .iter()
                .copied()
                .filter(|&w| !visited[w as usize])
                .collect();
            nb.sort_by_key(|&w| adjacency[w as usize].len());
            for w in nb {
                if !visited[w as usize] {
                    visited[w as usize] = true;
                    queue.push_back(w);
                }
            }
        }
    }
    order.reverse();
    order
}

/// Bandwidth of the adjacency structure under a permutation: the maximum
/// |position(a) − position(b)| over all edges. RCM exists to shrink this.
pub fn graph_bandwidth(perm: &[u32], adjacency: &[Vec<u32>]) -> usize {
    let mut pos = vec![0usize; perm.len()];
    for (i, &e) in perm.iter().enumerate() {
        pos[e as usize] = i;
    }
    let mut bw = 0usize;
    for (v, nb) in adjacency.iter().enumerate() {
        for &w in nb {
            bw = bw.max(pos[v].abs_diff(pos[w as usize]));
        }
    }
    bw
}

/// Renumber global points by first touch in the (permuted) element order —
/// the "renumbering the global index table" of §4.2, which gives spatial
/// locality to the global arrays. Returns `(new_ibool, old_to_new)`.
pub fn renumber_points_first_touch(
    ibool: &[u32],
    perm: &[u32],
    points_per_element: usize,
    nglob: usize,
) -> (Vec<u32>, Vec<u32>) {
    let mut old_to_new = vec![u32::MAX; nglob];
    let mut next = 0u32;
    for &e in perm {
        let base = e as usize * points_per_element;
        for &g in &ibool[base..base + points_per_element] {
            if old_to_new[g as usize] == u32::MAX {
                old_to_new[g as usize] = next;
                next += 1;
            }
        }
    }
    assert_eq!(next as usize, nglob, "ibool does not cover all points");
    let new_ibool = ibool.iter().map(|&g| old_to_new[g as usize]).collect();
    (new_ibool, old_to_new)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_deduplicates_within_tolerance() {
        let mut reg = PointRegistry::new(0.5);
        let a = reg.get_or_insert([100.0, 200.0, 300.0]);
        let b = reg.get_or_insert([100.0 + 1e-7, 200.0, 300.0 - 1e-7]);
        let c = reg.get_or_insert([101.0, 200.0, 300.0]);
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_eq!(reg.len(), 2);
    }

    #[test]
    fn registry_matches_across_cell_boundaries() {
        let mut reg = PointRegistry::new(0.5);
        // Two representations of "the same" point straddling a 2 m cell
        // boundary.
        let a = reg.get_or_insert([0.999_999_9, 0.0, 0.0]);
        let b = reg.get_or_insert([1.000_000_1, 0.0, 0.0]);
        assert_eq!(a, b);
    }

    #[test]
    fn registry_coords_roundtrip() {
        let mut reg = PointRegistry::new(0.1);
        let p = [1.0, 2.0, 3.0];
        let id = reg.get_or_insert(p);
        let coords = reg.into_coords();
        assert_eq!(coords[id as usize], p);
    }

    /// A path graph 0-1-2-…-n: RCM ordering must give bandwidth 1.
    #[test]
    fn rcm_on_path_graph_is_optimal() {
        let n = 50;
        let adjacency: Vec<Vec<u32>> = (0..n)
            .map(|i| {
                let mut nb = Vec::new();
                if i > 0 {
                    nb.push((i - 1) as u32);
                }
                if i + 1 < n {
                    nb.push((i + 1) as u32);
                }
                nb
            })
            .collect();
        let perm = reverse_cuthill_mckee(n, &adjacency);
        assert_eq!(perm.len(), n);
        assert_eq!(graph_bandwidth(&perm, &adjacency), 1);
    }

    #[test]
    fn rcm_beats_random_on_grid_graph() {
        // 2-D grid graph 20×20.
        let (w, h) = (20usize, 20usize);
        let n = w * h;
        let idx = |x: usize, y: usize| (y * w + x) as u32;
        let adjacency: Vec<Vec<u32>> = (0..n)
            .map(|v| {
                let (x, y) = (v % w, v / w);
                let mut nb = Vec::new();
                if x > 0 {
                    nb.push(idx(x - 1, y));
                }
                if x + 1 < w {
                    nb.push(idx(x + 1, y));
                }
                if y > 0 {
                    nb.push(idx(x, y - 1));
                }
                if y + 1 < h {
                    nb.push(idx(x, y + 1));
                }
                nb
            })
            .collect();
        let rcm = element_permutation(ElementOrder::CuthillMcKee, n, &adjacency);
        let rnd = element_permutation(ElementOrder::Random(1), n, &adjacency);
        let bw_rcm = graph_bandwidth(&rcm, &adjacency);
        let bw_rnd = graph_bandwidth(&rnd, &adjacency);
        assert!(
            bw_rcm * 4 < bw_rnd,
            "RCM bandwidth {bw_rcm} not ≪ random {bw_rnd}"
        );
        // Grid RCM bandwidth should be close to the grid width.
        assert!(bw_rcm <= 2 * w);
    }

    #[test]
    fn all_orders_are_permutations() {
        let n = 30;
        let adjacency: Vec<Vec<u32>> = (0..n)
            .map(|i| {
                (0..n as u32)
                    .filter(|&j| j as usize != i && (j as usize).abs_diff(i) <= 3)
                    .collect()
            })
            .collect();
        for order in [
            ElementOrder::Natural,
            ElementOrder::Random(7),
            ElementOrder::CuthillMcKee,
            ElementOrder::MultilevelCuthillMcKee { block: 8 },
        ] {
            let mut p = element_permutation(order, n, &adjacency);
            p.sort_unstable();
            let expect: Vec<u32> = (0..n as u32).collect();
            assert_eq!(p, expect, "{order:?} is not a permutation");
        }
    }

    #[test]
    fn rcm_handles_disconnected_graphs() {
        let adjacency = vec![vec![1], vec![0], vec![3], vec![2], vec![]];
        let mut p = reverse_cuthill_mckee(5, &adjacency);
        p.sort_unstable();
        assert_eq!(p, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn first_touch_renumbering_is_a_bijection_and_monotone() {
        // 3 elements × 2 points, 4 global points, natural order.
        let ibool = vec![2, 3, 3, 1, 1, 0];
        let perm = vec![0, 1, 2];
        let (new_ibool, old_to_new) = renumber_points_first_touch(&ibool, &perm, 2, 4);
        // First touches: 2→0, 3→1, 1→2, 0→3.
        assert_eq!(old_to_new, vec![3, 2, 0, 1]);
        assert_eq!(new_ibool, vec![0, 1, 1, 2, 2, 3]);
    }
}
