//! Content-addressed mesh identity (campaign runtime support).
//!
//! A [`MeshKey`] is a deterministic fingerprint over every knob that can
//! change the bits of a built [`GlobalMesh`] — `(nex, nproc, mode, model,
//! dtype-affecting parameters)`. Jobs whose simulations hash to the same
//! key can share one mesh build; the campaign scheduler uses the key for
//! cache addressing and mesh-affinity ordering, and `specfem-io` uses its
//! hex form to name on-disk mesh artifacts.
//!
//! Two fingerprints are exposed:
//!
//! * [`MeshKey::fingerprint`] — the full identity, including the
//!   decomposition (`nproc_xi`, cube assignment, element order).
//! * [`MeshKey::geometry_fingerprint`] — masks the *partition-time* knobs.
//!   The global mesh geometry, numbering and materials provably do not
//!   depend on `nproc_xi`/`cube_assignment`/`element_order` (only
//!   `Partition::compute` and `Partition::extract` read them), so a cached
//!   mesh built for one decomposition can serve a request for another by
//!   cloning and re-stamping `params` — a "derived hit" in cache terms.

use crate::numbering::ElementOrder;
use crate::partition::CubeAssignment;
use crate::{GlobalMesh, LayerPlan, MeshMode, MeshParams};
use specfem_model::EarthModel;

/// Deterministic identity of a mesh build: the model plus every
/// `MeshParams` field that influences the built mesh or its partition.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct MeshKey {
    /// Stable identifier of the Earth model (e.g. `"prem"`).
    pub model_id: String,
    /// Mode tag: 0 = global, 1 = regional.
    mode_tag: u8,
    /// Bit pattern of the regional inner radius (0 for global mode).
    r_min_bits: u64,
    /// `NEX_XI`.
    pub nex_xi: usize,
    /// `NPROC_XI` (masked by [`Self::geometry_fingerprint`]).
    pub nproc_xi: usize,
    /// Polynomial degree.
    pub degree: usize,
    cube_inflation_bits: u64,
    cube_half_width_bits: u64,
    honor_minor: bool,
    /// `radial_layer_nex`, with `usize::MAX` standing in for `None`.
    radial_layer_nex: usize,
    cube_assignment_tag: u8,
    element_order_tag: u8,
    element_order_arg: u64,
    legacy_two_pass: bool,
}

impl MeshKey {
    /// Build the key for `params` over the model named `model_id`.
    pub fn new(params: &MeshParams, model_id: &str) -> MeshKey {
        let (mode_tag, r_min_bits) = match params.mode {
            MeshMode::Global => (0u8, 0u64),
            MeshMode::Regional { r_min } => (1u8, r_min.to_bits()),
        };
        let (cube_assignment_tag,) = match params.cube_assignment {
            CubeAssignment::SingleRank => (0u8,),
            CubeAssignment::TwoRanks => (1u8,),
        };
        let (element_order_tag, element_order_arg) = match params.element_order {
            ElementOrder::Natural => (0u8, 0u64),
            ElementOrder::Random(seed) => (1u8, seed),
            ElementOrder::CuthillMcKee => (2u8, 0u64),
            ElementOrder::MultilevelCuthillMcKee { block } => (3u8, block as u64),
        };
        MeshKey {
            model_id: model_id.to_string(),
            mode_tag,
            r_min_bits,
            nex_xi: params.nex_xi,
            nproc_xi: params.nproc_xi,
            degree: params.degree,
            cube_inflation_bits: params.cube_inflation.to_bits(),
            cube_half_width_bits: params.cube_half_width_fraction.to_bits(),
            honor_minor: params.honor_minor_discontinuities,
            radial_layer_nex: params.radial_layer_nex.unwrap_or(usize::MAX),
            cube_assignment_tag,
            element_order_tag,
            element_order_arg,
            legacy_two_pass: params.legacy_two_pass_materials,
        }
    }

    fn hash_fields(&self, mask_partition_knobs: bool) -> u64 {
        let mut h = Fnv::new();
        h.write(self.model_id.as_bytes());
        h.write(&[self.mode_tag]);
        h.write(&self.r_min_bits.to_le_bytes());
        h.write(&(self.nex_xi as u64).to_le_bytes());
        h.write(&(self.degree as u64).to_le_bytes());
        h.write(&self.cube_inflation_bits.to_le_bytes());
        h.write(&self.cube_half_width_bits.to_le_bytes());
        h.write(&[self.honor_minor as u8]);
        h.write(&(self.radial_layer_nex as u64).to_le_bytes());
        h.write(&[self.legacy_two_pass as u8]);
        if !mask_partition_knobs {
            h.write(&(self.nproc_xi as u64).to_le_bytes());
            h.write(&[self.cube_assignment_tag]);
            h.write(&[self.element_order_tag]);
            h.write(&self.element_order_arg.to_le_bytes());
        }
        h.finish()
    }

    /// Full 64-bit fingerprint, including the decomposition knobs.
    pub fn fingerprint(&self) -> u64 {
        self.hash_fields(false)
    }

    /// Fingerprint of the *built* mesh only: masks `nproc_xi`,
    /// `cube_assignment` and `element_order`, which affect only
    /// partitioning/extraction, never the global mesh bits.
    pub fn geometry_fingerprint(&self) -> u64 {
        self.hash_fields(true)
    }

    /// Lower-case hex form of the full fingerprint — used as the artifact
    /// file stem by the on-disk mesh cache.
    pub fn hex(&self) -> String {
        format!("{:016x}", self.fingerprint())
    }

    /// Lower-case hex form of the geometry fingerprint.
    pub fn geometry_hex(&self) -> String {
        format!("{:016x}", self.geometry_fingerprint())
    }
}

/// Content hashes of a built mesh: one digest per constituent array.
/// Bit-identical meshes (the determinism contract the mesh cache relies
/// on) have equal hashes; the proptest suite checks this across repeated
/// builds and worker counts.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MeshContentHash {
    /// FNV-1a over the `ibool` local→global mapping.
    pub ibool: u64,
    /// FNV-1a over the bit patterns of global point coordinates.
    pub coords: u64,
    /// FNV-1a over the bit patterns of rho/kappa/mu/qmu.
    pub materials: u64,
}

/// Digest the arrays of a built mesh.
pub fn content_hash(mesh: &GlobalMesh) -> MeshContentHash {
    let mut hi = Fnv::new();
    for &g in &mesh.ibool {
        hi.write(&g.to_le_bytes());
    }
    let mut hc = Fnv::new();
    for p in &mesh.coords {
        for &x in p {
            hc.write(&x.to_bits().to_le_bytes());
        }
    }
    let mut hm = Fnv::new();
    for arr in [&mesh.rho, &mesh.kappa, &mesh.mu, &mesh.qmu] {
        for &v in arr.iter() {
            hm.write(&v.to_bits().to_le_bytes());
        }
    }
    MeshContentHash {
        ibool: hi.finish(),
        coords: hc.finish(),
        materials: hm.finish(),
    }
}

impl GlobalMesh {
    /// Approximate resident size of this mesh in bytes (heap arrays only;
    /// used by the campaign cache's byte-budget admission control).
    pub fn approx_bytes(&self) -> usize {
        self.ibool.len() * 4
            + self.coords.len() * 24
            + (self.rho.len() + self.kappa.len() + self.mu.len() + self.qmu.len()) * 4
            + self.region.len()
            + self.home.len() * 8
    }
}

/// Estimate the resident bytes of the mesh `params` would build, without
/// building it. Uses the (cheap) radial layer plan and the structured
/// element-count formula; accurate to a few percent, which is all that
/// byte-budget admission control needs.
pub fn estimated_mesh_bytes(params: &MeshParams, model: &dyn EarthModel) -> usize {
    let radial_nex = params.radial_layer_nex.unwrap_or(params.nex_xi);
    let r_base = match params.mode {
        MeshMode::Global => params.cube_half_width_fraction * specfem_model::ICB_RADIUS_M,
        MeshMode::Regional { r_min } => r_min,
    };
    let plan = LayerPlan::new(
        model,
        radial_nex,
        r_base,
        params.honor_minor_discontinuities,
    );
    let nspec = GlobalMesh::expected_nspec(params, &plan);
    let np = params.degree + 1;
    let n3 = np * np * np;
    // nglob/nloc for conforming degree-4 hexahedral meshes sits near 0.6.
    let nglob = (nspec as f64 * n3 as f64 * 0.62) as usize;
    nspec * n3 * (4 + 16) + nglob * 24 + nspec * 9
}

/// Minimal FNV-1a 64-bit hasher — deterministic across platforms and runs,
/// with no dependency on `std::hash`'s unspecified per-process seeding.
struct Fnv(u64);

impl Fnv {
    fn new() -> Fnv {
        Fnv(0xcbf2_9ce4_8422_2325)
    }

    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= b as u64;
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }

    fn finish(&self) -> u64 {
        self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use specfem_model::Prem;

    #[test]
    fn key_is_stable_and_nproc_sensitive() {
        let p1 = MeshParams::new(8, 2);
        let p2 = MeshParams::new(8, 4);
        let k1 = MeshKey::new(&p1, "prem");
        let k1b = MeshKey::new(&p1, "prem");
        let k2 = MeshKey::new(&p2, "prem");
        assert_eq!(k1, k1b);
        assert_eq!(k1.fingerprint(), k1b.fingerprint());
        assert_ne!(k1.fingerprint(), k2.fingerprint());
        // Geometry identity ignores the decomposition.
        assert_eq!(k1.geometry_fingerprint(), k2.geometry_fingerprint());
    }

    #[test]
    fn key_distinguishes_models_and_resolution() {
        let p = MeshParams::new(8, 2);
        let a = MeshKey::new(&p, "prem");
        let b = MeshKey::new(&p, "prem3d");
        assert_ne!(a.fingerprint(), b.fingerprint());
        let mut hi = p.clone();
        hi.nex_xi = 16;
        assert_ne!(MeshKey::new(&hi, "prem").fingerprint(), a.fingerprint());
    }

    #[test]
    fn content_hash_detects_bit_flips() {
        let prem = Prem::isotropic_no_ocean();
        let params = MeshParams::new(4, 2);
        let mesh = GlobalMesh::build(&params, &prem);
        let h0 = content_hash(&mesh);
        assert_eq!(h0, content_hash(&mesh));
        let mut tweaked = mesh.clone();
        tweaked.rho[0] += 1.0;
        assert_ne!(h0.materials, content_hash(&tweaked).materials);
        assert_eq!(h0.ibool, content_hash(&tweaked).ibool);
    }

    #[test]
    fn byte_estimate_tracks_actual_size() {
        let prem = Prem::isotropic_no_ocean();
        let params = MeshParams::new(4, 2);
        let mesh = GlobalMesh::build(&params, &prem);
        let actual = mesh.approx_bytes();
        let est = estimated_mesh_bytes(&params, &prem);
        let rel = (est as f64 - actual as f64).abs() / actual as f64;
        assert!(rel < 0.10, "estimate {est} vs actual {actual} (rel {rel})");
    }
}
