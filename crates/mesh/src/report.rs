//! Mesh statistics and the memory-sizing model of paper §4: "the mesher
//! and solver would each require at least 37 TBs of data … around 62K
//! cores of an HPC system having around 1.85 GB of memory per core".

use crate::build::GlobalMesh;
use crate::MeshRegion;
#[cfg(test)]
use crate::{MeshMode, MeshParams};

/// Summary statistics of a built mesh.
#[derive(Debug, Clone, Default)]
pub struct MeshStatistics {
    /// Elements per region (crust-mantle, outer core, inner core, cube).
    pub elements: [usize; 4],
    /// Total elements and global points.
    pub nspec: usize,
    pub nglob: usize,
    /// Points shared by ≥ 2 elements (assembly points).
    pub shared_points: usize,
    /// Estimated solver memory for the whole mesh (bytes).
    pub solver_bytes: u64,
}

impl MeshStatistics {
    /// Collect statistics from a built mesh.
    pub fn collect(mesh: &GlobalMesh) -> Self {
        let n3 = mesh.points_per_element();
        let mut refs = vec![0u8; mesh.nglob];
        for e in 0..mesh.nspec {
            let mut seen: Vec<u32> = mesh.ibool[e * n3..(e + 1) * n3].to_vec();
            seen.sort_unstable();
            seen.dedup();
            for p in seen {
                refs[p as usize] = refs[p as usize].saturating_add(1);
            }
        }
        let shared_points = refs.iter().filter(|&&r| r >= 2).count();
        let mut elements = [0usize; 4];
        for r in &mesh.region {
            elements[match r {
                MeshRegion::CrustMantle => 0,
                MeshRegion::OuterCore => 1,
                MeshRegion::InnerCore => 2,
                MeshRegion::CentralCube => 3,
            }] += 1;
        }
        Self {
            elements,
            nspec: mesh.nspec,
            nglob: mesh.nglob,
            shared_points,
            solver_bytes: solver_bytes_for(mesh.nspec, mesh.nglob, n3),
        }
    }
}

/// Solver memory for a mesh of the given size: per-element metric terms
/// (10 × f32), materials (4 × f32), connectivity (u32), plus per-point
/// fields (displ/veloc/accel 3-comp + fluid potentials + 2 mass matrices),
/// attenuation memory variables (5 comps × 3 SLS).
pub fn solver_bytes_for(nspec: usize, nglob: usize, n3: usize) -> u64 {
    let per_elem_point = 10 * 4 + 4 * 4 + 4 + 5 * 3 * 4; // metric+mat+ibool+SLS
    let per_point = (3 * 3 + 3) * 4 + 2 * 4; // fields + masses
    (nspec * n3 * per_elem_point + nglob * per_point) as u64
}

/// Memory estimate for a *hypothetical* global run at `nex`, without
/// building it: element counts from the structured decomposition with the
/// production-style fixed radial layering ratio.
pub fn estimate_global_solver_bytes(nex: usize, radial_layers: usize) -> u64 {
    let n3 = 125;
    let nspec = 6 * nex * nex * radial_layers + nex * nex * nex / 64; // coarse cube
                                                                      // Conforming degree-4 meshes have ~0.55 global points per local point.
    let nglob = (nspec as f64 * n3 as f64 * 0.55) as usize;
    solver_bytes_for(nspec, nglob, n3)
}

/// The paper's §4 sizing, reproduced: bytes per core for a 62K-core run at
/// the 1–2 s resolutions.
pub fn paper_sizing_check() -> (f64, f64) {
    // The paper's production mesh at NEX ~4848 has ~100 radial layers
    // (with doubling); per-core share on 62,976 cores:
    let bytes_2s = estimate_global_solver_bytes(2176, 100) as f64;
    let bytes_1s = estimate_global_solver_bytes(4352, 100) as f64;
    (bytes_2s / 62_976.0, bytes_1s / 62_976.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use specfem_model::Prem;

    #[test]
    fn statistics_are_consistent() {
        let params = MeshParams::new(4, 1);
        let mesh = GlobalMesh::build(&params, &Prem::isotropic_no_ocean());
        let stats = MeshStatistics::collect(&mesh);
        assert_eq!(stats.nspec, mesh.nspec);
        assert_eq!(stats.elements.iter().sum::<usize>(), mesh.nspec);
        assert!(stats.shared_points > 0);
        assert!(stats.shared_points < mesh.nglob);
        assert!(stats.solver_bytes > 1_000_000);
    }

    #[test]
    fn regional_mesh_statistics() {
        let params = MeshParams::regional(4, 1, 5_701_000.0);
        let mesh = GlobalMesh::build(&params, &Prem::isotropic_no_ocean());
        let stats = MeshStatistics::collect(&mesh);
        assert_eq!(stats.elements[1], 0, "no fluid in regional mesh");
        assert_eq!(stats.elements[3], 0, "no cube in regional mesh");
        assert!(matches!(mesh.params.mode, MeshMode::Regional { .. }));
    }

    #[test]
    fn paper_memory_sizing_lands_near_1_85_gb_per_core() {
        // §4: 1–2 s needs ~62K cores at ~1.85 GB/core. Our solver layout
        // differs in detail from the Fortran arrays, but the per-core share
        // at the 1-second resolution must land at the same order.
        let (per_core_2s, per_core_1s) = paper_sizing_check();
        assert!(
            per_core_1s > 0.4e9 && per_core_1s < 6.0e9,
            "1-s per-core bytes {per_core_1s:.3e}"
        );
        // And the 1 s case needs ~8× the 2 s case (cubic in resolution at
        // fixed layering… lateral² × same layers = 4×, plus cube growth).
        let ratio = per_core_1s / per_core_2s;
        assert!(ratio > 3.0 && ratio < 10.0, "1s/2s memory ratio {ratio}");
    }

    #[test]
    fn memory_grows_with_resolution() {
        let a = estimate_global_solver_bytes(256, 40);
        let b = estimate_global_solver_bytes(512, 40);
        assert!(b > 3 * a);
    }
}
