//! Seismic-station location (paper §4.4-2).
//!
//! Stations rarely fall exactly on grid points. At low resolution the code
//! must locate them *between* grid points with a costly nonlinear (Newton)
//! inversion of the element mapping, and the solver must then interpolate
//! the wave field at the located reference coordinates. At high resolution
//! the paper found that snapping to the **closest grid point** is both much
//! cheaper and geophysically negligible in error — and it removes the load
//! imbalance from slices that carry many stations. Both algorithms are
//! implemented so the trade-off can be measured.

use specfem_gll::lagrange::{lagrange_deriv_weights_at, lagrange_weights_at, LagrangeEval};
use specfem_model::EARTH_RADIUS_M;

use crate::local::LocalMesh;

/// A seismic recording station at the Earth's surface.
#[derive(Debug, Clone)]
pub struct Station {
    /// Station code, e.g. "ANMO".
    pub name: String,
    /// Latitude, degrees north.
    pub lat_deg: f64,
    /// Longitude, degrees east.
    pub lon_deg: f64,
}

impl Station {
    /// Cartesian position on the spherical surface (m).
    pub fn position(&self) -> [f64; 3] {
        let theta = (90.0 - self.lat_deg).to_radians();
        let phi = self.lon_deg.to_radians();
        [
            EARTH_RADIUS_M * theta.sin() * phi.cos(),
            EARTH_RADIUS_M * theta.sin() * phi.sin(),
            EARTH_RADIUS_M * theta.cos(),
        ]
    }
}

/// Result of locating a station in a local mesh.
#[derive(Debug, Clone)]
pub struct StationLocation {
    /// Local element containing (or nearest to) the station.
    pub element: usize,
    /// Reference coordinates inside the element, each in ≈[-1, 1].
    pub ref_coords: [f64; 3],
    /// Distance between the station and the located position (m).
    pub position_error_m: f64,
    /// True if located by the exact nonlinear algorithm, false if snapped
    /// to the nearest grid point.
    pub exact: bool,
}

impl StationLocation {
    /// Interpolation weights for reading the wave field at this location.
    pub fn evaluator(&self, nodes: &[f64]) -> LagrangeEval {
        LagrangeEval::new(
            nodes,
            self.ref_coords[0],
            self.ref_coords[1],
            self.ref_coords[2],
        )
    }
}

/// Nearest local GLL point to `target`, brute force. Returns
/// `(point id, distance²)`.
fn nearest_point(mesh: &LocalMesh, target: [f64; 3]) -> (usize, f64) {
    let mut best = (0usize, f64::INFINITY);
    for (i, p) in mesh.coords.iter().enumerate() {
        let d2 =
            (p[0] - target[0]).powi(2) + (p[1] - target[1]).powi(2) + (p[2] - target[2]).powi(2);
        if d2 < best.1 {
            best = (i, d2);
        }
    }
    best
}

/// Locate `station` by snapping to the closest grid point — the cheap
/// high-resolution algorithm the paper switched to.
pub fn locate_station_nearest(mesh: &LocalMesh, station: &Station) -> StationLocation {
    let target = station.position();
    let (pid, d2) = nearest_point(mesh, target);
    let n3 = mesh.points_per_element();
    let np = mesh.basis.npoints();
    // First element containing the point; the GLL indices give the
    // reference coordinates directly.
    for e in 0..mesh.nspec {
        if let Some(l) = mesh.ibool[e * n3..(e + 1) * n3]
            .iter()
            .position(|&p| p as usize == pid)
        {
            let i = l % np;
            let j = (l / np) % np;
            let k = l / (np * np);
            return StationLocation {
                element: e,
                ref_coords: [
                    mesh.basis.points[i],
                    mesh.basis.points[j],
                    mesh.basis.points[k],
                ],
                position_error_m: d2.sqrt(),
                exact: false,
            };
        }
    }
    unreachable!("point {pid} not referenced by any element");
}

/// Locate `station` exactly: nearest grid point to seed the search, then
/// Newton iteration on the isoparametric mapping of each candidate element;
/// the best (smallest-residual) element wins.
pub fn locate_station_exact(mesh: &LocalMesh, station: &Station) -> StationLocation {
    locate_point_exact(mesh, station.position())
}

/// Locate an arbitrary point (e.g. an earthquake hypocentre) by the same
/// exact nonlinear algorithm.
///
/// If Newton fails in every candidate element — which is the *normal* case
/// on a rank whose mesh slice does not contain the target — falls back to
/// the nearest grid point, whose (large) distance error then loses the
/// cross-rank ownership election.
pub fn locate_point_exact(mesh: &LocalMesh, target: [f64; 3]) -> StationLocation {
    let (pid, _) = nearest_point(mesh, target);
    let n3 = mesh.points_per_element();
    // All elements containing the nearest point are candidates.
    let candidates: Vec<usize> = (0..mesh.nspec)
        .filter(|&e| mesh.ibool[e * n3..(e + 1) * n3].contains(&(pid as u32)))
        .collect();
    let mut best: Option<StationLocation> = None;
    for e in candidates {
        let nodes = mesh.element_nodes(e);
        if let Some((xi, err)) = invert_mapping(&mesh.basis.points, &nodes, target) {
            let better = best
                .as_ref()
                .map(|b| err < b.position_error_m)
                .unwrap_or(true);
            if better {
                best = Some(StationLocation {
                    element: e,
                    ref_coords: xi,
                    position_error_m: err,
                    exact: true,
                });
            }
        }
    }
    best.unwrap_or_else(|| {
        // Target outside this rank's slice: report the nearest grid point
        // so distributed ownership elections have a finite, honest error.
        let n3 = mesh.points_per_element();
        let np = mesh.basis.npoints();
        let e = (0..mesh.nspec)
            .find(|&e| mesh.ibool[e * n3..(e + 1) * n3].contains(&(pid as u32)))
            .expect("nearest point must belong to an element");
        let l = mesh.ibool[e * n3..(e + 1) * n3]
            .iter()
            .position(|&p| p as usize == pid)
            .unwrap();
        let (i, j, k) = (l % np, (l / np) % np, l / (np * np));
        let q = mesh.coords[pid];
        let err =
            ((q[0] - target[0]).powi(2) + (q[1] - target[1]).powi(2) + (q[2] - target[2]).powi(2))
                .sqrt();
        StationLocation {
            element: e,
            ref_coords: [
                mesh.basis.points[i],
                mesh.basis.points[j],
                mesh.basis.points[k],
            ],
            position_error_m: err,
            exact: false,
        }
    })
}

/// Newton-invert the element mapping: find ξ with x(ξ) = target.
/// Returns `(ξ, |x(ξ) − target|)` or `None` if the iteration left the
/// element badly or the Jacobian became singular.
fn invert_mapping(
    gll_nodes: &[f64],
    elem_nodes: &[[f64; 3]],
    target: [f64; 3],
) -> Option<([f64; 3], f64)> {
    let np = gll_nodes.len();
    let mut xi = [0.0f64; 3];
    for _ in 0..20 {
        let hx = lagrange_weights_at(gll_nodes, xi[0]);
        let hy = lagrange_weights_at(gll_nodes, xi[1]);
        let hz = lagrange_weights_at(gll_nodes, xi[2]);
        let dx = lagrange_deriv_weights_at(gll_nodes, xi[0]);
        let dy = lagrange_deriv_weights_at(gll_nodes, xi[1]);
        let dz = lagrange_deriv_weights_at(gll_nodes, xi[2]);
        let mut x = [0.0f64; 3];
        let mut jac = [[0.0f64; 3]; 3]; // jac[c][dir] = ∂x_c/∂ξ_dir
        for k in 0..np {
            for j in 0..np {
                for i in 0..np {
                    let p = elem_nodes[(k * np + j) * np + i];
                    let w = hx[i] * hy[j] * hz[k];
                    let wx = dx[i] * hy[j] * hz[k];
                    let wy = hx[i] * dy[j] * hz[k];
                    let wz = hx[i] * hy[j] * dz[k];
                    for c in 0..3 {
                        x[c] += w * p[c];
                        jac[c][0] += wx * p[c];
                        jac[c][1] += wy * p[c];
                        jac[c][2] += wz * p[c];
                    }
                }
            }
        }
        let res = [target[0] - x[0], target[1] - x[1], target[2] - x[2]];
        let err = (res[0] * res[0] + res[1] * res[1] + res[2] * res[2]).sqrt();
        if err < 1e-6 {
            return Some((xi, err));
        }
        // Solve jac · Δξ = res (3×3 Cramer).
        let det = jac[0][0] * (jac[1][1] * jac[2][2] - jac[1][2] * jac[2][1])
            - jac[0][1] * (jac[1][0] * jac[2][2] - jac[1][2] * jac[2][0])
            + jac[0][2] * (jac[1][0] * jac[2][1] - jac[1][1] * jac[2][0]);
        if det.abs() < 1e-30 {
            return None;
        }
        let inv = 1.0 / det;
        let mut delta = [0.0f64; 3];
        for d in 0..3 {
            // Replace column d by res (Cramer's rule).
            let mut m = jac;
            for c in 0..3 {
                m[c][d] = res[c];
            }
            delta[d] = inv
                * (m[0][0] * (m[1][1] * m[2][2] - m[1][2] * m[2][1])
                    - m[0][1] * (m[1][0] * m[2][2] - m[1][2] * m[2][0])
                    + m[0][2] * (m[1][0] * m[2][1] - m[1][1] * m[2][0]));
        }
        for d in 0..3 {
            xi[d] = (xi[d] + delta[d]).clamp(-1.2, 1.2);
        }
    }
    // Did not fully converge; accept if inside the (slightly padded)
    // element and report the residual.
    if xi.iter().all(|&v| v.abs() <= 1.05) {
        let ev = LagrangeEval::new(gll_nodes, xi[0], xi[1], xi[2]);
        let mut x = [0.0; 3];
        for c in 0..3 {
            let comp: Vec<f64> = elem_nodes.iter().map(|p| p[c]).collect();
            x[c] = ev.interpolate(&comp);
        }
        let err =
            ((target[0] - x[0]).powi(2) + (target[1] - x[1]).powi(2) + (target[2] - x[2]).powi(2))
                .sqrt();
        Some((xi, err))
    } else {
        None
    }
}

/// A deterministic worldwide station network: `n` stations on a Fibonacci
/// sphere (roughly uniform coverage, like the global GSN network).
pub fn global_network(n: usize) -> Vec<Station> {
    let golden = (1.0 + 5.0f64.sqrt()) / 2.0;
    (0..n)
        .map(|i| {
            let lat = ((1.0 - 2.0 * (i as f64 + 0.5) / n as f64).asin()).to_degrees();
            let lon = (360.0 * ((i as f64 / golden) % 1.0)) - 180.0;
            Station {
                name: format!("ST{i:03}"),
                lat_deg: lat,
                lon_deg: lon,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::partition::Partition;
    use crate::{GlobalMesh, MeshParams};
    use specfem_model::Prem;

    fn serial_mesh(nex: usize) -> LocalMesh {
        let params = MeshParams::new(nex, 1);
        let prem = Prem::isotropic_no_ocean();
        let mesh = GlobalMesh::build(&params, &prem);
        Partition::serial(&mesh).extract(&mesh, 0)
    }

    #[test]
    fn station_position_is_on_surface() {
        let s = Station {
            name: "TEST".into(),
            lat_deg: 45.0,
            lon_deg: 45.0,
        };
        let p = s.position();
        let r = (p[0] * p[0] + p[1] * p[1] + p[2] * p[2]).sqrt();
        assert!((r - EARTH_RADIUS_M).abs() < 1e-6);
        assert!(p[2] > 0.0);
    }

    #[test]
    fn exact_location_is_much_more_accurate_at_low_resolution() {
        // Paper §4.4-2: at low resolution nearest-grid-point has a large
        // error, which is why the costly algorithm existed.
        let mesh = serial_mesh(4);
        let station = Station {
            name: "X".into(),
            lat_deg: 13.7,
            lon_deg: 57.3,
        };
        let exact = locate_station_exact(&mesh, &station);
        let near = locate_station_nearest(&mesh, &station);
        assert!(exact.exact);
        assert!(!near.exact);
        assert!(
            exact.position_error_m < 1.0,
            "exact error {}",
            exact.position_error_m
        );
        assert!(
            near.position_error_m > 1_000.0,
            "nearest error suspiciously small: {}",
            near.position_error_m
        );
        assert!(exact.position_error_m < near.position_error_m / 100.0);
    }

    #[test]
    fn nearest_error_shrinks_with_resolution() {
        // Averaged over a network: a single station can happen to sit near
        // a grid point at any resolution.
        let coarse_mesh = serial_mesh(2);
        let fine_mesh = serial_mesh(6);
        let network = global_network(12);
        let mean_err = |mesh: &LocalMesh| -> f64 {
            network
                .iter()
                .map(|s| locate_station_nearest(mesh, s).position_error_m)
                .sum::<f64>()
                / network.len() as f64
        };
        let coarse = mean_err(&coarse_mesh);
        let fine = mean_err(&fine_mesh);
        assert!(
            fine < coarse / 1.5,
            "fine mean {fine} vs coarse mean {coarse}"
        );
    }

    #[test]
    fn located_ref_coords_are_inside_element() {
        let mesh = serial_mesh(4);
        for station in global_network(6) {
            let loc = locate_station_exact(&mesh, &station);
            for &c in &loc.ref_coords {
                assert!(c.abs() <= 1.05, "{}: ref coord {c}", station.name);
            }
        }
    }

    #[test]
    fn station_on_grid_point_is_found_exactly_by_both() {
        let mesh = serial_mesh(4);
        // North pole is a chunk-face centre → a grid point at the surface.
        let station = Station {
            name: "POLE".into(),
            lat_deg: 90.0,
            lon_deg: 0.0,
        };
        let near = locate_station_nearest(&mesh, &station);
        assert!(near.position_error_m < 1.0, "{}", near.position_error_m);
        let exact = locate_station_exact(&mesh, &station);
        assert!(exact.position_error_m < 1.0);
    }

    #[test]
    fn global_network_is_deterministic_and_spread() {
        let a = global_network(20);
        let b = global_network(20);
        assert_eq!(a.len(), 20);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.lat_deg, y.lat_deg);
            assert_eq!(x.lon_deg, y.lon_deg);
        }
        // Both hemispheres covered.
        assert!(a.iter().any(|s| s.lat_deg > 30.0));
        assert!(a.iter().any(|s| s.lat_deg < -30.0));
    }

    #[test]
    fn evaluator_interpolates_constant_field_to_one() {
        let mesh = serial_mesh(2);
        let station = Station {
            name: "C".into(),
            lat_deg: 10.0,
            lon_deg: 20.0,
        };
        let loc = locate_station_exact(&mesh, &station);
        let ev = loc.evaluator(&mesh.basis.points);
        let n3 = mesh.points_per_element();
        let ones = vec![1.0f64; n3];
        assert!((ev.interpolate(&ones) - 1.0).abs() < 1e-10);
    }
}
