//! Radial layering: how many element layers each spherical shell gets and
//! at which radii the layer boundaries sit.
//!
//! Element boundaries are forced onto the model's first-order
//! discontinuities so material jumps never fall inside an element (mesh
//! "adapted to the main geological interfaces", paper Figure 2). Within a
//! shell, layers subdivide uniformly, with the layer count chosen to keep
//! element radial thickness comparable to the lateral element size at that
//! depth.

use crate::MeshRegion;
use specfem_model::{EarthModel, CMB_RADIUS_M, ICB_RADIUS_M, MOHO_RADIUS_M, R670_M};

/// One spherical shell between consecutive honoured discontinuities.
#[derive(Debug, Clone)]
pub struct Shell {
    /// Inner radius (m). For the innermost (inner-core) shell this is the
    /// nominal cube surface radius; actual element bottoms follow the cube.
    pub r_in: f64,
    /// Outer radius (m).
    pub r_out: f64,
    /// Region the shell belongs to.
    pub region: MeshRegion,
    /// Number of element layers in the shell.
    pub n_layers: usize,
}

impl Shell {
    /// Radii of the layer boundaries, ascending, `n_layers + 1` values.
    pub fn layer_radii(&self) -> Vec<f64> {
        (0..=self.n_layers)
            .map(|i| {
                crate::cubed_sphere::lerp(self.r_in, self.r_out, i as f64 / self.n_layers as f64)
            })
            .collect()
    }
}

/// The full radial plan: shells bottom-up from the cube surface.
#[derive(Debug, Clone)]
pub struct LayerPlan {
    /// Shells, ascending radius; `shells[0]` is the inner-core shell that
    /// starts at the central cube surface.
    pub shells: Vec<Shell>,
    /// Central-cube half width (m).
    pub cube_half_width: f64,
}

impl LayerPlan {
    /// Build the plan.
    ///
    /// `nex_xi` controls the lateral resolution that radial layer counts
    /// aim to match. When `honor_minor` is false only ICB/CMB/670/Moho are
    /// honoured (low-resolution meshes would otherwise get sliver layers).
    pub fn new(
        model: &dyn EarthModel,
        nex_xi: usize,
        cube_half_width: f64,
        honor_minor: bool,
    ) -> Self {
        let surface = model.surface_radius();
        let major = [ICB_RADIUS_M, CMB_RADIUS_M, R670_M, MOHO_RADIUS_M];
        let mut bounds: Vec<f64> = model
            .discontinuities()
            .into_iter()
            .filter(|r| honor_minor || major.iter().any(|m| (m - r).abs() < 1.0))
            .collect();
        bounds.push(surface);
        bounds.sort_by(|a, b| a.partial_cmp(b).unwrap());
        bounds.dedup_by(|a, b| (*a - *b).abs() < 1.0);

        // Lateral angular size of one element at the surface of a chunk.
        let dxi = std::f64::consts::FRAC_PI_2 / nex_xi as f64;

        let mut shells = Vec::new();
        // Innermost shell: cube surface → first boundary (ICB).
        let mut r_prev = cube_half_width;
        for &r in &bounds {
            let thickness = r - r_prev;
            if thickness < 1.0 {
                continue;
            }
            let r_mid = 0.5 * (r + r_prev);
            let target_dr = (dxi * r_mid).max(1.0);
            let n_layers = ((thickness / target_dr).round() as usize).max(1);
            let region = classify_shell(model, r_prev, r);
            shells.push(Shell {
                r_in: r_prev,
                r_out: r,
                region,
                n_layers,
            });
            r_prev = r;
        }
        Self {
            shells,
            cube_half_width,
        }
    }

    /// Total number of radial element layers over all shells.
    pub fn total_layers(&self) -> usize {
        self.shells.iter().map(|s| s.n_layers).sum()
    }

    /// The shells, restricted to one region.
    pub fn region_layers(&self, region: MeshRegion) -> usize {
        self.shells
            .iter()
            .filter(|s| s.region == region)
            .map(|s| s.n_layers)
            .sum()
    }
}

fn classify_shell(model: &dyn EarthModel, r_in: f64, r_out: f64) -> MeshRegion {
    let r_mid = 0.5 * (r_in + r_out);
    if model.is_fluid_shell(r_in, r_out) {
        MeshRegion::OuterCore
    } else if r_mid < ICB_RADIUS_M {
        MeshRegion::InnerCore
    } else {
        MeshRegion::CrustMantle
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use specfem_model::Prem;

    #[test]
    fn major_boundaries_always_honoured() {
        let prem = Prem::isotropic_no_ocean();
        let plan = LayerPlan::new(&prem, 8, 550_000.0, false);
        let radii: Vec<f64> = plan.shells.iter().map(|s| s.r_out).collect();
        for &must in &[ICB_RADIUS_M, CMB_RADIUS_M, R670_M, MOHO_RADIUS_M] {
            assert!(
                radii.iter().any(|&r| (r - must).abs() < 1.0),
                "missing {must}"
            );
        }
    }

    #[test]
    fn minor_boundaries_only_at_high_resolution() {
        let prem = Prem::isotropic_no_ocean();
        let coarse = LayerPlan::new(&prem, 8, 550_000.0, false);
        let fine = LayerPlan::new(&prem, 8, 550_000.0, true);
        assert!(fine.shells.len() > coarse.shells.len());
        // e.g. the 400-km discontinuity only in the fine plan
        let has_400 = |p: &LayerPlan| p.shells.iter().any(|s| (s.r_out - 5_971_000.0).abs() < 1.0);
        assert!(!has_400(&coarse));
        assert!(has_400(&fine));
    }

    #[test]
    fn regions_are_classified_correctly() {
        let prem = Prem::isotropic_no_ocean();
        let plan = LayerPlan::new(&prem, 8, 550_000.0, false);
        assert_eq!(plan.shells[0].region, MeshRegion::InnerCore);
        let oc: Vec<_> = plan
            .shells
            .iter()
            .filter(|s| s.region == MeshRegion::OuterCore)
            .collect();
        assert_eq!(oc.len(), 1);
        assert!((oc[0].r_in - ICB_RADIUS_M).abs() < 1.0);
        assert!((oc[0].r_out - CMB_RADIUS_M).abs() < 1.0);
        assert_eq!(plan.shells.last().unwrap().region, MeshRegion::CrustMantle);
    }

    #[test]
    fn layer_counts_scale_with_resolution() {
        let prem = Prem::isotropic_no_ocean();
        let lo = LayerPlan::new(&prem, 8, 550_000.0, false);
        let hi = LayerPlan::new(&prem, 32, 550_000.0, false);
        assert!(hi.total_layers() > 2 * lo.total_layers());
    }

    #[test]
    fn shells_are_contiguous_ascending() {
        let prem = Prem::isotropic_no_ocean();
        let plan = LayerPlan::new(&prem, 16, 550_000.0, true);
        let mut prev = plan.cube_half_width;
        for s in &plan.shells {
            assert!((s.r_in - prev).abs() < 1.0);
            assert!(s.r_out > s.r_in);
            assert!(s.n_layers >= 1);
            prev = s.r_out;
        }
        assert!((prev - prem.surface_radius()).abs() < 1.0);
    }

    #[test]
    fn layer_radii_hit_shell_bounds_exactly() {
        let s = Shell {
            r_in: 1000.0,
            r_out: 2000.0,
            region: MeshRegion::CrustMantle,
            n_layers: 4,
        };
        let r = s.layer_radii();
        assert_eq!(r.len(), 5);
        assert_eq!(r[0], 1000.0);
        assert_eq!(r[4], 2000.0);
        for w in r.windows(2) {
            assert!(w[1] > w[0]);
        }
    }
}
