//! Partitioning the global mesh into `6 × NPROC_XI²` slices and extracting
//! per-rank local meshes with halo communication lists.
//!
//! Shell elements go to the slice of their chunk tile (paper Figure 4). The
//! central cube either lands entirely on one rank — the historical
//! bottleneck — or is *cut in two* across ranks of opposite chunks, the
//! §1 improvement ("reduction of the central cube bottleneck by cutting the
//! cube in two").

use std::collections::HashMap;

use specfem_comm::{HaloPlan, Neighbor};

use crate::build::{ElementHome, GlobalMesh};
use crate::local::LocalMesh;
use crate::numbering::element_permutation;

/// How central-cube elements are assigned to ranks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CubeAssignment {
    /// Whole cube on one rank (the pre-optimization bottleneck).
    SingleRank,
    /// Cube cut in two halves assigned to ranks of opposite chunks.
    TwoRanks,
}

/// Element → rank assignment for a mesh.
#[derive(Debug, Clone)]
pub struct Partition {
    /// Total ranks (= `6 × nproc_xi²`).
    pub num_ranks: usize,
    /// Rank of each global element.
    pub rank_of: Vec<u32>,
}

impl Partition {
    /// Compute the assignment from the mesh parameters.
    pub fn compute(mesh: &GlobalMesh) -> Partition {
        let _span = specfem_obs::span("mesh.partition");
        let nproc = mesh.params.nproc_xi;
        let nex_per = mesh.params.nex_xi / nproc;
        let num_ranks = mesh.params.num_ranks();
        // The two cube owners sit in opposite chunks (+Z slice 0 and −Z
        // slice 0) so the cube work rides on ranks whose shell slices are
        // far apart.
        let cube_rank_a = 0u32;
        let cube_rank_b = (nproc * nproc) as u32; // first rank of chunk 1 (−Z)
        let rank_of = mesh
            .home
            .iter()
            .map(|home| match *home {
                ElementHome::Shell { chunk, ix, iy } => {
                    let tx = ix as usize / nex_per;
                    let ty = iy as usize / nex_per;
                    (chunk as usize * nproc * nproc + ty * nproc + tx) as u32
                }
                ElementHome::Cube { k, .. } => match mesh.params.cube_assignment {
                    CubeAssignment::SingleRank => cube_rank_a,
                    CubeAssignment::TwoRanks => {
                        if (k as usize) < mesh.params.nex_xi / 2 {
                            cube_rank_b
                        } else {
                            cube_rank_a
                        }
                    }
                },
            })
            .collect();
        Partition { num_ranks, rank_of }
    }

    /// A trivial single-rank partition (serial runs, reference results).
    pub fn serial(mesh: &GlobalMesh) -> Partition {
        Partition {
            num_ranks: 1,
            rank_of: vec![0; mesh.nspec],
        }
    }

    /// A balanced partition into an *arbitrary* world size: contiguous,
    /// near-equal blocks of the global element ordering. The cubed-sphere
    /// assignment of [`Partition::compute`] only exists for `6 × nproc²`
    /// ranks; elastic (shrink-to-survive) resume needs every world size in
    /// between, and the global Cuthill-McKee-style ordering keeps the
    /// blocks spatially coherent so halos stay small.
    ///
    /// # Panics
    /// When `nranks` is zero or exceeds the element count (a rank with no
    /// elements has no stable `dt` and no work).
    pub fn balanced(mesh: &GlobalMesh, nranks: usize) -> Partition {
        assert!(nranks >= 1, "balanced partition needs at least one rank");
        assert!(
            nranks <= mesh.nspec,
            "balanced partition of {} elements cannot fill {nranks} ranks",
            mesh.nspec
        );
        let n = mesh.nspec;
        let rank_of = (0..n).map(|e| ((e * nranks) / n) as u32).collect();
        Partition {
            num_ranks: nranks,
            rank_of,
        }
    }

    /// Elements per rank — the load-balance view ("excellent load
    /// balancing", paper abstract).
    pub fn load(&self) -> Vec<usize> {
        let mut load = vec![0usize; self.num_ranks];
        for &r in &self.rank_of {
            load[r as usize] += 1;
        }
        load
    }

    /// Extract the local mesh of `rank`, applying the element ordering from
    /// the mesh parameters and building the halo plan.
    pub fn extract(&self, mesh: &GlobalMesh, rank: usize) -> LocalMesh {
        let _span = specfem_obs::span("mesh.extract");
        let n3 = mesh.points_per_element();
        // ---- elements of this rank, natural order ------------------------
        let mine: Vec<u32> = (0..mesh.nspec as u32)
            .filter(|&e| self.rank_of[e as usize] == rank as u32)
            .collect();

        // ---- ownership map of global points (which ranks touch them) ----
        let point_ranks = self.point_ranks(mesh);

        // ---- element ordering (paper §4.2) -------------------------------
        // Build adjacency among this rank's elements via shared points.
        let mut local_of_global_elem: HashMap<u32, u32> = HashMap::new();
        for (le, &ge) in mine.iter().enumerate() {
            local_of_global_elem.insert(ge, le as u32);
        }
        let mut point_elems: HashMap<u32, Vec<u32>> = HashMap::new();
        for (le, &ge) in mine.iter().enumerate() {
            let base = ge as usize * n3;
            for &g in &mesh.ibool[base..base + n3] {
                let v = point_elems.entry(g).or_default();
                if v.last() != Some(&(le as u32)) {
                    v.push(le as u32);
                }
            }
        }
        let mut adj: Vec<Vec<u32>> = vec![Vec::new(); mine.len()];
        for elems in point_elems.values() {
            for (ai, &a) in elems.iter().enumerate() {
                for &b in &elems[ai + 1..] {
                    adj[a as usize].push(b);
                    adj[b as usize].push(a);
                }
            }
        }
        for v in &mut adj {
            v.sort_unstable();
            v.dedup();
        }
        let perm = element_permutation(mesh.params.element_order, mine.len(), &adj);
        let cm_ordered: Vec<u32> = perm.iter().map(|&le| mine[le as usize]).collect();

        // ---- outer/inner classification ----------------------------------
        // An element is *outer* iff any of its global points is shared with
        // another rank (`point_ranks` stores exactly the multi-rank points).
        // Stable-partition the ordering so outer elements come first: the
        // solver can then compute `0..nspec_outer`, post the halo exchange,
        // and fill `nspec_outer..nspec` while messages fly. The partition is
        // stable, so within each class the Cuthill-McKee relative order (and
        // thus cache behaviour) is preserved — and because the *blocking*
        // path iterates the same ordering, per-point accumulation order is
        // identical in both paths (the bit-identity requirement).
        let is_outer = |ge: u32| {
            let base = ge as usize * n3;
            mesh.ibool[base..base + n3]
                .iter()
                .any(|g| point_ranks.contains_key(g))
        };
        let (outer, inner): (Vec<u32>, Vec<u32>) = cm_ordered.iter().partition(|&&ge| is_outer(ge));
        let nspec_outer = outer.len();
        let mut ordered = outer;
        ordered.extend_from_slice(&inner);

        // ---- local point numbering by first touch ------------------------
        let mut local_of_global: HashMap<u32, u32> = HashMap::new();
        let mut global_ids: Vec<u32> = Vec::new();
        let mut ibool = Vec::with_capacity(ordered.len() * n3);
        let mut rho = Vec::with_capacity(ordered.len() * n3);
        let mut kappa = Vec::with_capacity(ordered.len() * n3);
        let mut mu = Vec::with_capacity(ordered.len() * n3);
        let mut qmu = Vec::with_capacity(ordered.len() * n3);
        let mut region = Vec::with_capacity(ordered.len());
        for &ge in &ordered {
            let base = ge as usize * n3;
            region.push(mesh.region[ge as usize]);
            for l in 0..n3 {
                let g = mesh.ibool[base + l];
                let lid = *local_of_global.entry(g).or_insert_with(|| {
                    global_ids.push(g);
                    (global_ids.len() - 1) as u32
                });
                ibool.push(lid);
                rho.push(mesh.rho[base + l]);
                kappa.push(mesh.kappa[base + l]);
                mu.push(mesh.mu[base + l]);
                qmu.push(mesh.qmu[base + l]);
            }
        }
        let coords: Vec<[f64; 3]> = global_ids
            .iter()
            .map(|&g| mesh.coords[g as usize])
            .collect();

        // ---- halo plan ----------------------------------------------------
        // For every local point shared with other ranks, record it under
        // each other rank; point lists sorted by global id so both sides
        // enumerate identically.
        let mut per_neighbor: HashMap<u32, Vec<(u32, u32)>> = HashMap::new(); // rank → (gid, lid)
        for (lid, &g) in global_ids.iter().enumerate() {
            if let Some(ranks) = point_ranks.get(&g) {
                for &r in ranks {
                    if r != rank as u32 {
                        per_neighbor.entry(r).or_default().push((g, lid as u32));
                    }
                }
            }
        }
        let mut neighbors: Vec<Neighbor> = per_neighbor
            .into_iter()
            .map(|(r, mut pts)| {
                pts.sort_unstable_by_key(|&(g, _)| g);
                Neighbor {
                    rank: r as usize,
                    points: pts.into_iter().map(|(_, l)| l).collect(),
                }
            })
            .collect();
        neighbors.sort_by_key(|n| n.rank);
        let halo = HaloPlan { neighbors };
        let nglob = global_ids.len();
        halo.validate(rank, nglob).expect("halo plan invalid");

        LocalMesh {
            rank,
            basis: mesh.basis.clone(),
            nspec: ordered.len(),
            nspec_outer,
            nglob,
            ibool,
            coords,
            global_ids,
            region,
            element_global: ordered,
            rho,
            kappa,
            mu,
            qmu,
            halo,
        }
    }

    /// Extract every rank's local mesh.
    pub fn extract_all(&self, mesh: &GlobalMesh) -> Vec<LocalMesh> {
        (0..self.num_ranks).map(|r| self.extract(mesh, r)).collect()
    }

    /// Map from global point id to the sorted list of ranks touching it —
    /// only points touched by ≥ 2 ranks are stored.
    fn point_ranks(&self, mesh: &GlobalMesh) -> HashMap<u32, Vec<u32>> {
        let n3 = mesh.points_per_element();
        let mut first_rank: Vec<u32> = vec![u32::MAX; mesh.nglob];
        let mut multi: HashMap<u32, Vec<u32>> = HashMap::new();
        for e in 0..mesh.nspec {
            let r = self.rank_of[e];
            for &g in &mesh.ibool[e * n3..(e + 1) * n3] {
                let f = first_rank[g as usize];
                if f == u32::MAX {
                    first_rank[g as usize] = r;
                } else if f != r {
                    let v = multi.entry(g).or_insert_with(|| vec![f]);
                    if !v.contains(&r) {
                        v.push(r);
                    }
                }
            }
        }
        for v in multi.values_mut() {
            v.sort_unstable();
        }
        multi
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{MeshParams, MeshRegion};
    use specfem_model::Prem;

    fn mesh_with(nex: usize, nproc: usize, cube: CubeAssignment) -> GlobalMesh {
        let mut params = MeshParams::new(nex, nproc);
        params.cube_assignment = cube;
        let prem = Prem::isotropic_no_ocean();
        GlobalMesh::build(&params, &prem)
    }

    #[test]
    fn every_element_gets_exactly_one_rank() {
        let mesh = mesh_with(4, 2, CubeAssignment::TwoRanks);
        let part = Partition::compute(&mesh);
        assert_eq!(part.rank_of.len(), mesh.nspec);
        assert_eq!(part.num_ranks, 24);
        let load = part.load();
        assert_eq!(load.iter().sum::<usize>(), mesh.nspec);
        assert!(load.iter().all(|&l| l > 0), "empty rank: {load:?}");
    }

    #[test]
    fn shell_slices_are_perfectly_balanced() {
        let mesh = mesh_with(4, 2, CubeAssignment::TwoRanks);
        let part = Partition::compute(&mesh);
        // Count shell elements per rank: all equal by construction.
        let mut shell_load = vec![0usize; part.num_ranks];
        for (e, home) in mesh.home.iter().enumerate() {
            if matches!(home, ElementHome::Shell { .. }) {
                shell_load[part.rank_of[e] as usize] += 1;
            }
        }
        let first = shell_load[0];
        assert!(shell_load.iter().all(|&l| l == first), "{shell_load:?}");
    }

    #[test]
    fn cube_single_rank_vs_two_ranks() {
        let m1 = mesh_with(4, 2, CubeAssignment::SingleRank);
        let p1 = Partition::compute(&m1);
        let m2 = mesh_with(4, 2, CubeAssignment::TwoRanks);
        let p2 = Partition::compute(&m2);
        let cube_ranks = |mesh: &GlobalMesh, part: &Partition| {
            let mut ranks: Vec<u32> = mesh
                .home
                .iter()
                .enumerate()
                .filter(|(_, h)| matches!(h, ElementHome::Cube { .. }))
                .map(|(e, _)| part.rank_of[e])
                .collect();
            ranks.sort_unstable();
            ranks.dedup();
            ranks
        };
        assert_eq!(cube_ranks(&m1, &p1).len(), 1);
        let two = cube_ranks(&m2, &p2);
        assert_eq!(two.len(), 2);
        // Max load drops when the cube is cut in two.
        let max1 = *p1.load().iter().max().unwrap();
        let max2 = *p2.load().iter().max().unwrap();
        assert!(max2 < max1, "cutting the cube must reduce peak load");
    }

    #[test]
    fn local_meshes_cover_global_mesh_exactly() {
        let mesh = mesh_with(4, 2, CubeAssignment::TwoRanks);
        let part = Partition::compute(&mesh);
        let locals = part.extract_all(&mesh);
        let total: usize = locals.iter().map(|l| l.nspec).sum();
        assert_eq!(total, mesh.nspec);
        // Every global element appears exactly once.
        let mut seen = vec![false; mesh.nspec];
        for l in &locals {
            for &ge in &l.element_global {
                assert!(!seen[ge as usize], "element {ge} duplicated");
                seen[ge as usize] = true;
            }
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn halo_plans_are_symmetric() {
        let mesh = mesh_with(4, 2, CubeAssignment::TwoRanks);
        let part = Partition::compute(&mesh);
        let locals = part.extract_all(&mesh);
        for l in &locals {
            for n in &l.halo.neighbors {
                let other = &locals[n.rank];
                let back = other
                    .halo
                    .neighbors
                    .iter()
                    .find(|m| m.rank == l.rank)
                    .unwrap_or_else(|| panic!("rank {} missing back edge to {}", n.rank, l.rank));
                assert_eq!(n.points.len(), back.points.len());
                // Same global ids in the same order on both sides.
                let gids: Vec<u32> = n.points.iter().map(|&p| l.global_ids[p as usize]).collect();
                let back_gids: Vec<u32> = back
                    .points
                    .iter()
                    .map(|&p| other.global_ids[p as usize])
                    .collect();
                assert_eq!(gids, back_gids);
            }
        }
    }

    #[test]
    fn halo_points_lie_on_slice_boundaries() {
        // Shared points must be shared: every halo point's global id must be
        // referenced by elements of both ranks.
        let mesh = mesh_with(4, 2, CubeAssignment::TwoRanks);
        let part = Partition::compute(&mesh);
        let l0 = part.extract(&mesh, 0);
        assert!(!l0.halo.neighbors.is_empty(), "rank 0 must have neighbours");
        let n3 = mesh.points_per_element();
        for n in &l0.halo.neighbors {
            for &p in n.points.iter().take(5) {
                let gid = l0.global_ids[p as usize];
                let mut ranks: Vec<u32> = (0..mesh.nspec)
                    .filter(|&e| mesh.ibool[e * n3..(e + 1) * n3].contains(&gid))
                    .map(|e| part.rank_of[e])
                    .collect();
                ranks.sort_unstable();
                ranks.dedup();
                assert!(ranks.contains(&0));
                assert!(ranks.contains(&(n.rank as u32)));
            }
        }
    }

    #[test]
    fn serial_partition_has_everything_no_halo() {
        let mesh = mesh_with(4, 2, CubeAssignment::TwoRanks);
        let part = Partition::serial(&mesh);
        let local = part.extract(&mesh, 0);
        assert_eq!(local.nspec, mesh.nspec);
        assert_eq!(local.nglob, mesh.nglob);
        assert!(local.halo.neighbors.is_empty());
        // Region totals preserved.
        let cm = local
            .region
            .iter()
            .filter(|r| **r == MeshRegion::CrustMantle)
            .count();
        let cm_global = mesh
            .region
            .iter()
            .filter(|r| **r == MeshRegion::CrustMantle)
            .count();
        assert_eq!(cm, cm_global);
    }

    #[test]
    fn outer_elements_cover_all_halo_points_and_inner_none() {
        let mesh = mesh_with(4, 2, CubeAssignment::TwoRanks);
        let part = Partition::compute(&mesh);
        for l in part.extract_all(&mesh) {
            let n3 = l.points_per_element();
            let mut is_halo = vec![false; l.nglob];
            for n in &l.halo.neighbors {
                for &p in &n.points {
                    is_halo[p as usize] = true;
                }
            }
            assert!(l.nspec_outer <= l.nspec);
            assert!(
                l.nspec_outer > 0,
                "rank {} has neighbours but no outer elements",
                l.rank
            );
            // Outer prefix: every outer element touches a halo point; inner
            // suffix: none do.
            for e in l.outer_elements() {
                assert!(
                    l.ibool[e * n3..(e + 1) * n3]
                        .iter()
                        .any(|&p| is_halo[p as usize]),
                    "rank {} outer element {e} touches no halo point",
                    l.rank
                );
            }
            for e in l.inner_elements() {
                assert!(
                    l.ibool[e * n3..(e + 1) * n3]
                        .iter()
                        .all(|&p| !is_halo[p as usize]),
                    "rank {} inner element {e} touches a halo point",
                    l.rank
                );
            }
            // Every halo point belongs to at least one outer element.
            let mut touched = vec![false; l.nglob];
            for e in l.outer_elements() {
                for &p in &l.ibool[e * n3..(e + 1) * n3] {
                    touched[p as usize] = true;
                }
            }
            for p in 0..l.nglob {
                if is_halo[p] {
                    assert!(touched[p], "rank {} halo point {p} not outer", l.rank);
                }
            }
        }
    }

    #[test]
    fn serial_extract_has_no_outer_elements() {
        let mesh = mesh_with(4, 2, CubeAssignment::TwoRanks);
        let local = Partition::serial(&mesh).extract(&mesh, 0);
        assert_eq!(local.nspec_outer, 0);
        assert_eq!(local.outer_elements(), 0..0);
        assert_eq!(local.inner_elements(), 0..local.nspec);
    }

    #[test]
    fn outer_inner_split_is_a_stable_partition_of_the_ordering() {
        // Re-extracting must give the identical element order (determinism),
        // and the split must preserve relative order within each class
        // versus the unsplit Cuthill-McKee ordering.
        let mesh = mesh_with(4, 2, CubeAssignment::TwoRanks);
        let part = Partition::compute(&mesh);
        let a = part.extract(&mesh, 5);
        let b = part.extract(&mesh, 5);
        assert_eq!(a.element_global, b.element_global);
        assert_eq!(a.nspec_outer, b.nspec_outer);
        // Stability: element_global restricted to each class is a
        // subsequence of the full ordering, so sorting the two classes by
        // their position in the concatenation reproduces the original
        // relative order. Verify outer ∪ inner is exactly the element set.
        let mut all: Vec<u32> = a.element_global.clone();
        all.sort_unstable();
        all.dedup();
        assert_eq!(all.len(), a.nspec);
    }

    #[test]
    fn balanced_partition_works_at_arbitrary_world_sizes() {
        let mesh = mesh_with(4, 1, CubeAssignment::TwoRanks);
        for nranks in [1usize, 2, 3, 4, 5, 7, 8] {
            let part = Partition::balanced(&mesh, nranks);
            assert_eq!(part.num_ranks, nranks);
            let load = part.load();
            assert_eq!(load.iter().sum::<usize>(), mesh.nspec);
            let (lo, hi) = (*load.iter().min().unwrap(), *load.iter().max().unwrap());
            assert!(lo > 0, "empty rank at nranks={nranks}: {load:?}");
            assert!(hi - lo <= 1, "imbalance at nranks={nranks}: {load:?}");
            // Every element appears on exactly one rank and halos validate
            // (extract() panics on an inconsistent plan).
            let locals = part.extract_all(&mesh);
            let total: usize = locals.iter().map(|l| l.nspec).sum();
            assert_eq!(total, mesh.nspec);
        }
    }

    #[test]
    fn local_materials_match_global() {
        let mesh = mesh_with(4, 2, CubeAssignment::TwoRanks);
        let part = Partition::compute(&mesh);
        let l = part.extract(&mesh, 3);
        let n3 = mesh.points_per_element();
        for (le, &ge) in l.element_global.iter().enumerate() {
            for i in 0..n3 {
                assert_eq!(l.rho[le * n3 + i], mesh.rho[ge as usize * n3 + i]);
                assert_eq!(l.mu[le * n3 + i], mesh.mu[ge as usize * n3 + i]);
            }
        }
    }
}
