//! Element geometry: Jacobians, inverse metric terms, mesh quality and the
//! Courant time-step estimate.
//!
//! Elements are isoparametric at the full polynomial degree: the mapping
//! from the reference cube is carried by the GLL nodal coordinates
//! themselves, so curved spherical shells are represented to spectral
//! accuracy (paper §2.2's "curved hexahedra whose shape is adapted…").

use specfem_gll::GllBasis;

/// Per-GLL-point metric terms of one element.
///
/// Layout: all arrays are `(n+1)³` with `i` fastest — `[(k·np + j)·np + i]`.
#[derive(Debug, Clone)]
pub struct ElementGeometry {
    /// ∂ξ/∂x, ∂ξ/∂y, ∂ξ/∂z.
    pub xix: Vec<f32>,
    pub xiy: Vec<f32>,
    pub xiz: Vec<f32>,
    /// ∂η/∂x, ∂η/∂y, ∂η/∂z.
    pub etax: Vec<f32>,
    pub etay: Vec<f32>,
    pub etaz: Vec<f32>,
    /// ∂γ/∂x, ∂γ/∂y, ∂γ/∂z.
    pub gammax: Vec<f32>,
    pub gammay: Vec<f32>,
    pub gammaz: Vec<f32>,
    /// |det ∂x/∂ξ| — the volume Jacobian.
    pub jacobian: Vec<f32>,
}

impl ElementGeometry {
    /// Compute metric terms from the element's nodal coordinates
    /// (`(n+1)³` points, `i` fastest).
    ///
    /// Returns `Err` with the offending point if the Jacobian determinant is
    /// not strictly positive anywhere (inverted/degenerate element).
    pub fn compute(basis: &GllBasis, nodes: &[[f64; 3]]) -> Result<Self, String> {
        let np = basis.npoints();
        let n3 = np * np * np;
        assert_eq!(nodes.len(), n3);
        let h = &basis.hprime;
        let mut out = Self {
            xix: vec![0.0; n3],
            xiy: vec![0.0; n3],
            xiz: vec![0.0; n3],
            etax: vec![0.0; n3],
            etay: vec![0.0; n3],
            etaz: vec![0.0; n3],
            gammax: vec![0.0; n3],
            gammay: vec![0.0; n3],
            gammaz: vec![0.0; n3],
            jacobian: vec![0.0; n3],
        };
        let at = |i: usize, j: usize, k: usize| nodes[(k * np + j) * np + i];
        for k in 0..np {
            for j in 0..np {
                for i in 0..np {
                    // dx/dxi etc. by applying the derivative matrix along
                    // each reference direction.
                    let mut dxi = [0.0f64; 3];
                    let mut deta = [0.0f64; 3];
                    let mut dgam = [0.0f64; 3];
                    for m in 0..np {
                        let hi = h[i * np + m];
                        let hj = h[j * np + m];
                        let hk = h[k * np + m];
                        let pxi = at(m, j, k);
                        let peta = at(i, m, k);
                        let pgam = at(i, j, m);
                        for c in 0..3 {
                            dxi[c] += hi * pxi[c];
                            deta[c] += hj * peta[c];
                            dgam[c] += hk * pgam[c];
                        }
                    }
                    let det = dxi[0] * (deta[1] * dgam[2] - deta[2] * dgam[1])
                        - dxi[1] * (deta[0] * dgam[2] - deta[2] * dgam[0])
                        + dxi[2] * (deta[0] * dgam[1] - deta[1] * dgam[0]);
                    if det <= 0.0 {
                        return Err(format!("non-positive Jacobian {det} at GLL ({i},{j},{k})"));
                    }
                    let inv = 1.0 / det;
                    // Inverse of the 3×3 [dxi deta dgam] matrix (rows are
                    // ∂(ξηγ)/∂(xyz)).
                    let idx = (k * np + j) * np + i;
                    out.xix[idx] = ((deta[1] * dgam[2] - deta[2] * dgam[1]) * inv) as f32;
                    out.xiy[idx] = ((deta[2] * dgam[0] - deta[0] * dgam[2]) * inv) as f32;
                    out.xiz[idx] = ((deta[0] * dgam[1] - deta[1] * dgam[0]) * inv) as f32;
                    out.etax[idx] = ((dxi[2] * dgam[1] - dxi[1] * dgam[2]) * inv) as f32;
                    out.etay[idx] = ((dxi[0] * dgam[2] - dxi[2] * dgam[0]) * inv) as f32;
                    out.etaz[idx] = ((dxi[1] * dgam[0] - dxi[0] * dgam[1]) * inv) as f32;
                    out.gammax[idx] = ((dxi[1] * deta[2] - dxi[2] * deta[1]) * inv) as f32;
                    out.gammay[idx] = ((dxi[2] * deta[0] - dxi[0] * deta[2]) * inv) as f32;
                    out.gammaz[idx] = ((dxi[0] * deta[1] - dxi[1] * deta[0]) * inv) as f32;
                    out.jacobian[idx] = det as f32;
                }
            }
        }
        Ok(out)
    }
}

/// Minimum distance between grid-adjacent GLL points of an element (m) —
/// the length scale entering the Courant condition.
pub fn min_gll_spacing(basis: &GllBasis, nodes: &[[f64; 3]]) -> f64 {
    let np = basis.npoints();
    let at = |i: usize, j: usize, k: usize| nodes[(k * np + j) * np + i];
    let d = |a: [f64; 3], b: [f64; 3]| {
        ((a[0] - b[0]).powi(2) + (a[1] - b[1]).powi(2) + (a[2] - b[2]).powi(2)).sqrt()
    };
    let mut min = f64::INFINITY;
    for k in 0..np {
        for j in 0..np {
            for i in 0..np {
                if i + 1 < np {
                    min = min.min(d(at(i, j, k), at(i + 1, j, k)));
                }
                if j + 1 < np {
                    min = min.min(d(at(i, j, k), at(i, j + 1, k)));
                }
                if k + 1 < np {
                    min = min.min(d(at(i, j, k), at(i, j, k + 1)));
                }
            }
        }
    }
    min
}

/// Mesh quality and stability report.
#[derive(Debug, Clone, Default)]
pub struct QualityReport {
    /// Smallest GLL spacing over the mesh (m).
    pub min_spacing_m: f64,
    /// Largest GLL spacing (m).
    pub max_spacing_m: f64,
    /// Stable time step from the Courant condition (s).
    pub dt_stable_s: f64,
    /// Empirical shortest resolved period (s): 5 grid points per wavelength
    /// at the local shear (or compressional, in fluids) speed (paper §3).
    pub shortest_period_s: f64,
}

/// Courant number used for the stable-dt estimate, measured against the
/// minimum grid-line GLL spacing. The straight-line spacing overestimates
/// the resolvable length inside the sheared central-cube corner elements,
/// so the constant carries a safety margin: long energy-conservation runs
/// are stable at 0.17 and diverge at 0.35 on this mesh family.
pub const COURANT: f64 = 0.15;

impl QualityReport {
    /// Merge two partial reports (e.g. from different ranks).
    pub fn merge(&self, other: &QualityReport) -> QualityReport {
        QualityReport {
            min_spacing_m: if self.min_spacing_m == 0.0 {
                other.min_spacing_m
            } else {
                self.min_spacing_m.min(other.min_spacing_m)
            },
            max_spacing_m: self.max_spacing_m.max(other.max_spacing_m),
            dt_stable_s: if self.dt_stable_s == 0.0 {
                other.dt_stable_s
            } else {
                self.dt_stable_s.min(other.dt_stable_s)
            },
            shortest_period_s: self.shortest_period_s.max(other.shortest_period_s),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use specfem_gll::GllBasis;

    /// Nodes of an axis-aligned box [0,Lx]×[0,Ly]×[0,Lz] on the GLL grid.
    fn box_nodes(basis: &GllBasis, lx: f64, ly: f64, lz: f64) -> Vec<[f64; 3]> {
        let np = basis.npoints();
        let mut out = Vec::with_capacity(np * np * np);
        for k in 0..np {
            for j in 0..np {
                for i in 0..np {
                    out.push([
                        lx * (basis.points[i] + 1.0) / 2.0,
                        ly * (basis.points[j] + 1.0) / 2.0,
                        lz * (basis.points[k] + 1.0) / 2.0,
                    ]);
                }
            }
        }
        out
    }

    #[test]
    fn box_element_jacobian_is_constant_volume_ratio() {
        let basis = GllBasis::new(4);
        let (lx, ly, lz) = (2000.0, 3000.0, 4000.0);
        let g = ElementGeometry::compute(&basis, &box_nodes(&basis, lx, ly, lz)).unwrap();
        // Reference cube volume 8 → jacobian = V/8 everywhere.
        let expect = (lx * ly * lz / 8.0) as f32;
        for &j in &g.jacobian {
            assert!((j - expect).abs() < 1e-3 * expect);
        }
        // Metric terms: ξ_x = 2/Lx, η_y = 2/Ly, γ_z = 2/Lz; off-diagonals 0.
        for idx in 0..g.xix.len() {
            assert!((g.xix[idx] - (2.0 / lx) as f32).abs() < 1e-9);
            assert!((g.etay[idx] - (2.0 / ly) as f32).abs() < 1e-9);
            assert!((g.gammaz[idx] - (2.0 / lz) as f32).abs() < 1e-9);
            assert!(g.xiy[idx].abs() < 1e-12);
            assert!(g.gammax[idx].abs() < 1e-12);
        }
    }

    #[test]
    fn quadrature_of_jacobian_gives_volume() {
        let basis = GllBasis::new(4);
        let (lx, ly, lz) = (1000.0, 500.0, 250.0);
        let g = ElementGeometry::compute(&basis, &box_nodes(&basis, lx, ly, lz)).unwrap();
        let np = basis.npoints();
        let mut vol = 0.0f64;
        for k in 0..np {
            for j in 0..np {
                for i in 0..np {
                    let w = basis.weights[i] * basis.weights[j] * basis.weights[k];
                    vol += w * g.jacobian[(k * np + j) * np + i] as f64;
                }
            }
        }
        let expect = lx * ly * lz;
        assert!((vol - expect).abs() < 1e-9 * expect);
    }

    #[test]
    fn inverted_element_is_rejected() {
        let basis = GllBasis::new(4);
        let mut nodes = box_nodes(&basis, 1.0, 1.0, 1.0);
        // Mirror x — inverts orientation.
        for p in &mut nodes {
            p[0] = -p[0];
        }
        assert!(ElementGeometry::compute(&basis, &nodes).is_err());
    }

    #[test]
    fn min_spacing_of_unit_box_matches_gll_gaps() {
        let basis = GllBasis::new(4);
        let nodes = box_nodes(&basis, 1.0, 1.0, 1.0);
        let expect = (basis.points[1] - basis.points[0]) / 2.0;
        let got = min_gll_spacing(&basis, &nodes);
        assert!((got - expect).abs() < 1e-12);
    }

    #[test]
    fn sheared_element_has_valid_positive_jacobian() {
        let basis = GllBasis::new(4);
        let mut nodes = box_nodes(&basis, 1000.0, 1000.0, 1000.0);
        for p in &mut nodes {
            p[0] += 0.3 * p[1]; // shear, volume preserved
        }
        let g = ElementGeometry::compute(&basis, &nodes).unwrap();
        let expect = (1000.0f64 * 1000.0 * 1000.0 / 8.0) as f32;
        for &j in &g.jacobian {
            assert!((j - expect).abs() < 1e-3 * expect);
        }
        // For x' = x + 0.3y the inverse mapping has ∂ξ/∂y' = −0.3·(2/L)
        // while η stays a pure function of y.
        assert!((g.xiy[0] - (-0.3 * 2.0 / 1000.0) as f32).abs() < 1e-9);
        assert!(g.etax[0].abs() < 1e-12);
    }

    #[test]
    fn quality_report_merge() {
        let a = QualityReport {
            min_spacing_m: 10.0,
            max_spacing_m: 100.0,
            dt_stable_s: 0.1,
            shortest_period_s: 5.0,
        };
        let b = QualityReport {
            min_spacing_m: 8.0,
            max_spacing_m: 90.0,
            dt_stable_s: 0.2,
            shortest_period_s: 7.0,
        };
        let m = a.merge(&b);
        assert_eq!(m.min_spacing_m, 8.0);
        assert_eq!(m.max_spacing_m, 100.0);
        assert_eq!(m.dt_stable_s, 0.1);
        assert_eq!(m.shortest_period_s, 7.0);
    }
}
