//! The gnomonic "cubed sphere" mapping (paper §3, Figure 4) and the central
//! cube lattice it must conform with.
//!
//! Each of the six chunks is parametrized by angles `(ξ, η) ∈ [-π/4, π/4]²`;
//! the equal-angle grid `ξ_i` induces the *tangent lattice* `u_i = tan ξ_i ∈
//! [-1, 1]`. A lateral position `(u, v)` of a chunk maps to the unit
//! direction obtained by normalizing the face vector `c(u, v)` of that
//! chunk. Crucially, interpolation *within* elements is linear in `(u, v)` —
//! not in `(ξ, η)` — so chunk faces, chunk/chunk edges and the chunk/cube
//! interface all sample bitwise-identical point sets.

/// Number of cubed-sphere chunks.
pub const NCHUNKS: usize = 6;

/// The equal-angle tangent lattice: `u_i = tan(-π/4 + i·(π/2)/n)` for
/// `i = 0..=n`, with the end points snapped to exactly ±1 and the centre to
/// exactly 0 so shared faces match bitwise.
pub fn tan_lattice(n: usize) -> Vec<f64> {
    assert!(n >= 1);
    let mut u: Vec<f64> = (0..=n)
        .map(|i| {
            let xi =
                -std::f64::consts::FRAC_PI_4 + std::f64::consts::FRAC_PI_2 * i as f64 / n as f64;
            xi.tan()
        })
        .collect();
    u[0] = -1.0;
    u[n] = 1.0;
    if n.is_multiple_of(2) {
        u[n / 2] = 0.0;
    }
    // Enforce exact antisymmetry.
    for i in 0..n.div_ceil(2) {
        let s = 0.5 * (u[i] - u[n - i]);
        u[i] = s;
        u[n - i] = -s;
    }
    u
}

/// Unnormalized face vector of chunk `chunk` at lateral coordinates
/// `(u, v) ∈ [-1, 1]²`.
///
/// The six orientations are chosen so that (a) every chunk-edge point set
/// coincides between adjacent chunks, (b) the bottom face of every chunk
/// coincides with one face of the central-cube lattice, and (c) the local
/// `(u, v, radial)` frame is right-handed (positive Jacobians).
#[inline]
pub fn chunk_face_vector(chunk: usize, u: f64, v: f64) -> [f64; 3] {
    match chunk {
        0 => [u, v, 1.0],  // +Z
        1 => [v, u, -1.0], // -Z
        2 => [v, 1.0, u],  // +Y
        3 => [u, -1.0, v], // -Y
        4 => [1.0, u, v],  // +X
        5 => [-1.0, v, u], // -X
        _ => panic!("chunk index {chunk} out of range 0..6"),
    }
}

/// Unit direction (gnomonic projection) of chunk `chunk` at `(u, v)`.
#[inline]
pub fn chunk_direction(chunk: usize, u: f64, v: f64) -> [f64; 3] {
    let c = chunk_face_vector(chunk, u, v);
    let norm = (c[0] * c[0] + c[1] * c[1] + c[2] * c[2]).sqrt();
    [c[0] / norm, c[1] / norm, c[2] / norm]
}

/// Position of a central-cube lattice point with cube coordinates
/// `c ∈ [-1, 1]³` (components are tangent-lattice values), half-width `a`
/// and inflation `beta ∈ [0, 1]`.
///
/// `beta = 0` is the flat-faced "real cube with flat faces"; `beta = 1` the
/// fully "inflated" cube whose boundary is the sphere of radius `a` (the
/// improvement over the flat cube described in the paper's introduction and
/// ref [7]). Both keep every node on the ray through `c`, so chunk columns
/// interpolate radially along fixed directions.
#[inline]
pub fn cube_node(c: [f64; 3], a: f64, beta: f64) -> [f64; 3] {
    let norm2 = c[0] * c[0] + c[1] * c[1] + c[2] * c[2];
    if norm2 == 0.0 {
        return [0.0; 3];
    }
    let linf = c[0].abs().max(c[1].abs()).max(c[2].abs());
    let norm = norm2.sqrt();
    // radius along the ray: (1-β)·a·|c|₂ + β·a·|c|∞ — at the boundary
    // (|c|∞ = 1) this is a·((1-β)|c|₂ + β), i.e. sphere of radius a if β=1.
    let scale = a * ((1.0 - beta) + beta * linf / norm);
    [c[0] * scale, c[1] * scale, c[2] * scale]
}

/// Radius of the cube boundary point in direction of lattice coords `c`
/// (with `|c|∞ = 1`) — where the chunks' radial columns start.
#[inline]
pub fn cube_surface_radius(c: [f64; 3], a: f64, beta: f64) -> f64 {
    let p = cube_node(c, a, beta);
    (p[0] * p[0] + p[1] * p[1] + p[2] * p[2]).sqrt()
}

/// Linear interpolation in the exact-endpoint form `a(1−t) + b t` (returns
/// `a` bitwise at `t = 0` and `b` bitwise at `t = 1`, which the global point
/// matching relies on).
#[inline]
pub fn lerp(a: f64, b: f64, t: f64) -> f64 {
    a * (1.0 - t) + b * t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tan_lattice_is_symmetric_and_spans() {
        for n in [1, 2, 4, 8, 17] {
            let u = tan_lattice(n);
            assert_eq!(u.len(), n + 1);
            assert_eq!(u[0], -1.0);
            assert_eq!(u[n], 1.0);
            for i in 0..=n {
                assert_eq!(u[i], -u[n - i], "antisymmetry at {i}");
            }
            for w in u.windows(2) {
                assert!(w[1] > w[0]);
            }
        }
    }

    #[test]
    fn tan_lattice_denser_at_centre() {
        // Equal-angle gnomonic grids have wider tangent spacing at the
        // edges (sec² grows away from the face centre).
        let u = tan_lattice(8);
        let centre_gap = u[5] - u[4];
        let edge_gap = u[8] - u[7];
        assert!(edge_gap > 1.4 * centre_gap);
    }

    #[test]
    fn directions_are_unit_and_cover_all_faces() {
        let mut hits = [false; 6];
        for chunk in 0..NCHUNKS {
            let d = chunk_direction(chunk, 0.0, 0.0);
            let norm = (d[0] * d[0] + d[1] * d[1] + d[2] * d[2]).sqrt();
            assert!((norm - 1.0).abs() < 1e-15);
            for (axis, &val) in d.iter().enumerate() {
                if (val - 1.0).abs() < 1e-12 {
                    hits[axis] = true;
                }
                if (val + 1.0).abs() < 1e-12 {
                    hits[3 + axis] = true;
                }
            }
        }
        assert!(hits.iter().all(|&h| h), "face centres must cover ±x ±y ±z");
    }

    #[test]
    fn chunk_frames_are_right_handed() {
        // Numerically check det[∂d/∂u, ∂d/∂v, d] > 0 at the face centre for
        // every chunk (positive Jacobian convention).
        let h = 1e-6;
        for chunk in 0..NCHUNKS {
            let d0 = chunk_direction(chunk, 0.0, 0.0);
            let du = chunk_direction(chunk, h, 0.0);
            let dv = chunk_direction(chunk, 0.0, h);
            let eu = [du[0] - d0[0], du[1] - d0[1], du[2] - d0[2]];
            let ev = [dv[0] - d0[0], dv[1] - d0[1], dv[2] - d0[2]];
            let det = eu[0] * (ev[1] * d0[2] - ev[2] * d0[1])
                - eu[1] * (ev[0] * d0[2] - ev[2] * d0[0])
                + eu[2] * (ev[0] * d0[1] - ev[1] * d0[0]);
            assert!(det > 0.0, "chunk {chunk} left-handed (det = {det})");
        }
    }

    #[test]
    fn adjacent_chunk_edges_share_identical_points() {
        // Every chunk-boundary point has two coordinates in {−1, +1} and one
        // free lattice value; collect all boundary points of all chunks and
        // verify each appears at least twice (edges) using exact comparison.
        let n = 6;
        let u = tan_lattice(n);
        let mut pts: Vec<[u64; 3]> = Vec::new();
        for chunk in 0..NCHUNKS {
            for (i, &ui) in u.iter().enumerate() {
                for (j, &vj) in u.iter().enumerate() {
                    let on_boundary = i == 0 || i == n || j == 0 || j == n;
                    if !on_boundary {
                        continue;
                    }
                    let d = chunk_direction(chunk, ui, vj);
                    pts.push([
                        (d[0] * 1e12).round() as i64 as u64,
                        (d[1] * 1e12).round() as i64 as u64,
                        (d[2] * 1e12).round() as i64 as u64,
                    ]);
                }
            }
        }
        let mut counts = std::collections::HashMap::new();
        for p in &pts {
            *counts.entry(*p).or_insert(0usize) += 1;
        }
        for (p, c) in counts {
            assert!(c >= 2, "boundary point {p:?} only appears {c} times");
        }
    }

    #[test]
    fn flat_cube_has_flat_faces_inflated_cube_is_spherical() {
        let a = 550_000.0;
        // Flat (β=0): face +z points all have z = a.
        for &(x, y) in &[(0.0, 0.0), (0.5, -0.3), (1.0, 1.0)] {
            let p = cube_node([x, y, 1.0], a, 0.0);
            assert!((p[2] - a).abs() < 1e-6 * a, "flat face z = {}", p[2]);
        }
        // Inflated (β=1): all boundary points at radius a.
        for &(x, y) in &[(0.0, 0.0), (0.5, -0.3), (1.0, 1.0), (-0.7, 0.9)] {
            let r = cube_surface_radius([x, y, 1.0], a, 1.0);
            assert!((r - a).abs() < 1e-9 * a, "inflated radius = {r}");
        }
        // Partial inflation lies between.
        let r_half = cube_surface_radius([1.0, 1.0, 1.0], a, 0.5);
        assert!(r_half > a && r_half < a * 3.0f64.sqrt());
    }

    #[test]
    fn cube_face_matches_chunk_bottom_lattice() {
        // Cube face k = n (c = (u_i, u_j, 1)) must equal chunk 0's bottom
        // lattice positions at the cube surface radius.
        let n = 4;
        let u = tan_lattice(n);
        let a = 500_000.0;
        let beta = 1.0;
        for &ui in &u {
            for &vj in &u {
                let cube_p = cube_node([ui, vj, 1.0], a, beta);
                let d = chunk_direction(0, ui, vj);
                let r = cube_surface_radius([ui, vj, 1.0], a, beta);
                for k in 0..3 {
                    assert!(
                        (cube_p[k] - r * d[k]).abs() < 1e-6,
                        "cube/chunk mismatch at ({ui}, {vj})"
                    );
                }
            }
        }
    }

    #[test]
    fn lerp_is_exact_at_endpoints() {
        let (a, b) = (0.123456789f64, 0.987654321f64);
        assert_eq!(lerp(a, b, 0.0), a);
        assert_eq!(lerp(a, b, 1.0), b);
    }

    #[test]
    fn cube_node_center_is_origin() {
        assert_eq!(cube_node([0.0; 3], 1000.0, 0.7), [0.0; 3]);
    }
}
