//! Property-based tests of the GLL basis: quadrature exactness, partition
//! of unity, interpolation identity — over randomized inputs.

use proptest::prelude::*;
use specfem_gll::{gll_points_and_weights, lagrange_weights_at, GllBasis};

proptest! {
    /// GLL quadrature with n+1 points integrates any polynomial of degree
    /// ≤ 2n−1 exactly, for random coefficients.
    #[test]
    fn quadrature_exact_for_random_polynomials(
        degree in 2usize..8,
        coeffs in prop::collection::vec(-5.0f64..5.0, 1..8),
    ) {
        let (x, w) = gll_points_and_weights(degree);
        // Truncate the polynomial to degree 2n−1.
        let max_pow = (2 * degree - 1).min(coeffs.len() - 1);
        let poly = |t: f64| -> f64 {
            coeffs[..=max_pow]
                .iter()
                .enumerate()
                .map(|(k, c)| c * t.powi(k as i32))
                .sum()
        };
        let quad: f64 = x.iter().zip(&w).map(|(xi, wi)| wi * poly(*xi)).sum();
        let exact: f64 = coeffs[..=max_pow]
            .iter()
            .enumerate()
            .map(|(k, c)| if k % 2 == 0 { 2.0 * c / (k as f64 + 1.0) } else { 0.0 })
            .sum();
        prop_assert!((quad - exact).abs() < 1e-9 * (1.0 + exact.abs()));
    }

    /// Lagrange weights form a partition of unity at any point in [-1, 1].
    #[test]
    fn partition_of_unity_everywhere(
        degree in 1usize..9,
        xi in -1.0f64..1.0,
    ) {
        let (x, _) = gll_points_and_weights(degree);
        let w = lagrange_weights_at(&x, xi);
        let sum: f64 = w.iter().sum();
        prop_assert!((sum - 1.0).abs() < 1e-10);
    }

    /// Interpolating a degree-≤n polynomial at any point is exact.
    #[test]
    fn interpolation_reproduces_representable_polynomials(
        degree in 2usize..7,
        xi in -1.0f64..1.0,
        a in -3.0f64..3.0,
        b in -3.0f64..3.0,
    ) {
        let (x, _) = gll_points_and_weights(degree);
        let f = |t: f64| a * t.powi(degree as i32) + b * t - 0.5;
        let nodal: Vec<f64> = x.iter().map(|&t| f(t)).collect();
        let w = lagrange_weights_at(&x, xi);
        let interp: f64 = w.iter().zip(&nodal).map(|(wi, fi)| wi * fi).sum();
        prop_assert!((interp - f(xi)).abs() < 1e-9 * (1.0 + f(xi).abs()));
    }

    /// The derivative matrix annihilates constants and differentiates
    /// the identity exactly, for every degree.
    #[test]
    fn derivative_matrix_basics(degree in 1usize..10) {
        let basis = GllBasis::new(degree);
        let np = basis.npoints();
        let ones = vec![1.0; np];
        for v in basis.differentiate(&ones) {
            prop_assert!(v.abs() < 1e-10);
        }
        let ident: Vec<f64> = basis.points.clone();
        for v in basis.differentiate(&ident) {
            prop_assert!((v - 1.0).abs() < 1e-10);
        }
    }

    /// Weights are positive and symmetric for every degree.
    #[test]
    fn weights_positive_symmetric(degree in 1usize..12) {
        let (_, w) = gll_points_and_weights(degree);
        for i in 0..w.len() {
            prop_assert!(w[i] > 0.0);
            prop_assert!((w[i] - w[w.len() - 1 - i]).abs() < 1e-13);
        }
    }
}
