//! Lagrange interpolation on arbitrary node sets (used with GLL nodes).

/// Build the derivative matrix `D[i][j] = l'_j(x_i)` for the Lagrange
/// interpolants `l_j` through the nodes `x` (row-major `(n+1)²`).
///
/// Uses the barycentric form: with weights `c_j = Π_{m≠j} (x_j - x_m)`,
/// `l'_j(x_i) = (c_i / c_j) / (x_i - x_j)` for `i ≠ j`, and the diagonal is
/// fixed by the zero-row-sum property (derivative of the constant is zero).
pub fn lagrange_derivative_matrix(x: &[f64]) -> Vec<f64> {
    let np = x.len();
    let mut c = vec![1.0f64; np];
    for j in 0..np {
        for m in 0..np {
            if m != j {
                c[j] *= x[j] - x[m];
            }
        }
    }
    let mut d = vec![0.0f64; np * np];
    for i in 0..np {
        for j in 0..np {
            if i != j {
                d[i * np + j] = (c[i] / c[j]) / (x[i] - x[j]);
            }
        }
    }
    for i in 0..np {
        let off: f64 = (0..np).filter(|&j| j != i).map(|j| d[i * np + j]).sum();
        d[i * np + i] = -off;
    }
    d
}

/// Values of all Lagrange interpolants `l_j(xi)` at an arbitrary point `xi`.
///
/// Used to interpolate the wave field at a seismic station that does not fall
/// on a grid point (paper §4.4-2, the *costly* interpolation path), and to
/// spread a point source onto the element's GLL points.
pub fn lagrange_weights_at(nodes: &[f64], xi: f64) -> Vec<f64> {
    let np = nodes.len();
    let mut out = vec![1.0f64; np];
    for j in 0..np {
        for m in 0..np {
            if m != j {
                out[j] *= (xi - nodes[m]) / (nodes[j] - nodes[m]);
            }
        }
    }
    out
}

/// Derivatives of all Lagrange interpolants `l'_j(xi)` at an arbitrary
/// point `xi` (not necessarily a node). Used by the Newton iteration that
/// locates seismic stations *between* grid points (paper §4.4-2).
pub fn lagrange_deriv_weights_at(nodes: &[f64], xi: f64) -> Vec<f64> {
    let np = nodes.len();
    let mut out = vec![0.0f64; np];
    for j in 0..np {
        let denom: f64 = (0..np)
            .filter(|&k| k != j)
            .map(|k| nodes[j] - nodes[k])
            .product();
        let mut acc = 0.0;
        for m in 0..np {
            if m == j {
                continue;
            }
            let mut prod = 1.0;
            for k in 0..np {
                if k != j && k != m {
                    prod *= xi - nodes[k];
                }
            }
            acc += prod;
        }
        out[j] = acc / denom;
    }
    out
}

/// Reusable evaluator for repeated interpolation at one fixed reference-cube
/// location (e.g. a station inside an element): caches the 1-D weight vectors
/// for the three directions.
#[derive(Debug, Clone)]
pub struct LagrangeEval {
    /// Weights along ξ.
    pub hxi: Vec<f64>,
    /// Weights along η.
    pub heta: Vec<f64>,
    /// Weights along γ.
    pub hgamma: Vec<f64>,
}

impl LagrangeEval {
    /// Build the evaluator for reference coordinates `(xi, eta, gamma)`,
    /// each in `[-1, 1]`, on the given 1-D node set.
    pub fn new(nodes: &[f64], xi: f64, eta: f64, gamma: f64) -> Self {
        Self {
            hxi: lagrange_weights_at(nodes, xi),
            heta: lagrange_weights_at(nodes, eta),
            hgamma: lagrange_weights_at(nodes, gamma),
        }
    }

    /// Interpolate a nodal field stored as `f[(k*np + j)*np + i]`
    /// (i fastest, matching the solver's element storage).
    pub fn interpolate(&self, f: &[f64]) -> f64 {
        let np = self.hxi.len();
        debug_assert_eq!(f.len(), np * np * np);
        let mut acc = 0.0;
        for k in 0..np {
            for j in 0..np {
                let hjk = self.heta[j] * self.hgamma[k];
                let base = (k * np + j) * np;
                for i in 0..np {
                    acc += f[base + i] * self.hxi[i] * hjk;
                }
            }
        }
        acc
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::quadrature::gll_points_and_weights;

    fn assert_close(a: f64, b: f64, tol: f64) {
        assert!((a - b).abs() <= tol, "{a} vs {b}");
    }

    #[test]
    fn weights_are_kronecker_at_nodes() {
        let (x, _) = gll_points_and_weights(4);
        for (i, &xi) in x.iter().enumerate() {
            let w = lagrange_weights_at(&x, xi);
            for (j, &wj) in w.iter().enumerate() {
                let expect = if i == j { 1.0 } else { 0.0 };
                assert_close(wj, expect, 1e-12);
            }
        }
    }

    #[test]
    fn weights_form_partition_of_unity() {
        let (x, _) = gll_points_and_weights(5);
        for &xi in &[-0.913, -0.2, 0.33, 0.78] {
            let w = lagrange_weights_at(&x, xi);
            assert_close(w.iter().sum::<f64>(), 1.0, 1e-12);
        }
    }

    #[test]
    fn interpolation_reproduces_polynomials() {
        let (x, _) = gll_points_and_weights(4);
        let f: Vec<f64> = x.iter().map(|&v| 3.0 * v.powi(4) - v + 0.5).collect();
        for &xi in &[-0.77, 0.11, 0.6] {
            let w = lagrange_weights_at(&x, xi);
            let interp: f64 = w.iter().zip(&f).map(|(wi, fi)| wi * fi).sum();
            assert_close(interp, 3.0 * xi.powi(4) - xi + 0.5, 1e-12);
        }
    }

    #[test]
    fn derivative_matrix_exact_for_degree_n() {
        let (x, _) = gll_points_and_weights(4);
        let d = lagrange_derivative_matrix(&x);
        let np = x.len();
        // f = x^4 → f' = 4x^3, representable exactly.
        let f: Vec<f64> = x.iter().map(|&v| v.powi(4)).collect();
        for i in 0..np {
            let df: f64 = (0..np).map(|j| d[i * np + j] * f[j]).sum();
            assert_close(df, 4.0 * x[i].powi(3), 1e-12);
        }
    }

    #[test]
    fn deriv_weights_at_arbitrary_point_differentiate_polynomials() {
        let (x, _) = gll_points_and_weights(4);
        // f(x) = x^4 - 2x² + x, f' = 4x³ - 4x + 1.
        let f: Vec<f64> = x.iter().map(|&v| v.powi(4) - 2.0 * v * v + v).collect();
        for &xi in &[-0.91, -0.2, 0.05, 0.66] {
            let dw = lagrange_deriv_weights_at(&x, xi);
            let df: f64 = dw.iter().zip(&f).map(|(w, fi)| w * fi).sum();
            assert_close(df, 4.0 * xi.powi(3) - 4.0 * xi + 1.0, 1e-11);
        }
    }

    #[test]
    fn deriv_weights_match_derivative_matrix_at_nodes() {
        let (x, _) = gll_points_and_weights(5);
        let d = lagrange_derivative_matrix(&x);
        let np = x.len();
        for (i, &xi) in x.iter().enumerate() {
            let dw = lagrange_deriv_weights_at(&x, xi);
            for j in 0..np {
                assert_close(dw[j], d[i * np + j], 1e-10);
            }
        }
    }

    #[test]
    fn trilinear_eval_reproduces_separable_product() {
        let (x, _) = gll_points_and_weights(4);
        let np = x.len();
        // f(x,y,z) = (x²)(y+2)(z³)
        let mut f = vec![0.0; np * np * np];
        for k in 0..np {
            for j in 0..np {
                for i in 0..np {
                    f[(k * np + j) * np + i] = x[i] * x[i] * (x[j] + 2.0) * x[k].powi(3);
                }
            }
        }
        let (xi, eta, ga) = (0.3, -0.45, 0.81);
        let ev = LagrangeEval::new(&x, xi, eta, ga);
        assert_close(
            ev.interpolate(&f),
            xi * xi * (eta + 2.0) * ga.powi(3),
            1e-12,
        );
    }
}
