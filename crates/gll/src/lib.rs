//! Gauss-Lobatto-Legendre (GLL) quadrature and Lagrange interpolation —
//! the polynomial machinery of the spectral-element method (paper §2.3).
//!
//! A spectral element of polynomial degree `n` carries `n + 1` GLL control
//! points per direction. The GLL points are the roots of
//! `(1 - x²) P'_n(x)` where `P_n` is the Legendre polynomial of degree `n`;
//! they always include the end points ±1, which is what makes neighbouring
//! elements share points on their common faces, edges and corners (paper
//! Figure 3). Quadrature at these same points yields a *diagonal* mass
//! matrix, the property that makes explicit time marching cheap (paper §2.4).
//!
//! All basis quantities are computed once in `f64` and consumed by the mesher
//! and solver (which, like SPECFEM3D_GLOBE, run the wave propagation itself
//! in single precision).

// Numeric kernels index several arrays with one loop variable by design.
#![allow(clippy::needless_range_loop)]

pub mod lagrange;
pub mod legendre;
pub mod quadrature;

pub use lagrange::{lagrange_derivative_matrix, lagrange_weights_at, LagrangeEval};
pub use legendre::{legendre, legendre_deriv, legendre_pair};
pub use quadrature::{gll_points_and_weights, GllBasis};

/// Polynomial degree used throughout SPECFEM3D_GLOBE production runs.
///
/// The paper (§2.3) notes degrees 4–10 are usable; 4 (i.e. 5 GLL points per
/// direction, 125 per element) is the production choice and the one the 5×5
/// cut-plane matrix products of §4.3 are built around.
pub const DEFAULT_DEGREE: usize = 4;

/// Number of GLL points per direction at the default degree.
pub const NGLL: usize = DEFAULT_DEGREE + 1;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_degree_is_production_specfem() {
        assert_eq!(DEFAULT_DEGREE, 4);
        assert_eq!(NGLL, 5);
        let b = GllBasis::new(DEFAULT_DEGREE);
        assert_eq!(b.points.len(), NGLL);
    }
}
