//! GLL node/weight computation and the per-degree basis bundle.

use crate::lagrange::lagrange_derivative_matrix;
use crate::legendre::{legendre, legendre_deriv, legendre_deriv2};

/// Compute the `n + 1` Gauss-Lobatto-Legendre points and weights for
/// polynomial degree `n`.
///
/// Points are the roots of `(1 - x²) P'_n(x)`: the end points ±1 plus the
/// `n - 1` interior roots of `P'_n`, found by Newton iteration seeded with
/// Chebyshev-Gauss-Lobatto points. Weights are `2 / (n (n+1) P_n(x_i)²)`.
pub fn gll_points_and_weights(n: usize) -> (Vec<f64>, Vec<f64>) {
    assert!(n >= 1, "GLL quadrature needs degree >= 1");
    let np = n + 1;
    let mut x = vec![0.0f64; np];
    x[0] = -1.0;
    x[n] = 1.0;
    // Interior points: roots of P'_n. Seed with Chebyshev-Lobatto nodes,
    // refine with Newton on f = P'_n, f' = P''_n.
    for i in 1..n {
        let mut xi = -(std::f64::consts::PI * i as f64 / n as f64).cos();
        for _ in 0..100 {
            let f = legendre_deriv(n, xi);
            let df = legendre_deriv2(n, xi);
            let step = f / df;
            xi -= step;
            if step.abs() < 1e-15 {
                break;
            }
        }
        x[i] = xi;
    }
    // Enforce exact antisymmetry (the seed/Newton pair is symmetric up to
    // roundoff; averaging removes the last-bit asymmetry).
    for i in 0..np / 2 {
        let s = 0.5 * (x[i] - x[n - i]);
        x[i] = s;
        x[n - i] = -s;
    }
    if np % 2 == 1 {
        x[np / 2] = 0.0;
    }
    let nf = n as f64;
    let w: Vec<f64> = x
        .iter()
        .map(|&xi| {
            let p = legendre(n, xi);
            2.0 / (nf * (nf + 1.0) * p * p)
        })
        .collect();
    (x, w)
}

/// Everything the mesher and solver need about the 1-D GLL basis of one
/// polynomial degree: nodes, weights, and the Lagrange derivative matrix in
/// both plain and quadrature-weighted forms.
#[derive(Debug, Clone)]
pub struct GllBasis {
    /// Polynomial degree `n`.
    pub degree: usize,
    /// GLL nodes `x_0 = -1 < … < x_n = 1`.
    pub points: Vec<f64>,
    /// GLL quadrature weights.
    pub weights: Vec<f64>,
    /// `hprime[i][j] = l'_j(x_i)`: derivative of the `j`-th Lagrange
    /// interpolant at the `i`-th node (row-major, `(n+1)²`).
    pub hprime: Vec<f64>,
    /// `hprime_wgll[i][j] = w_i l'_j(x_i)` — the weighted transpose-ready
    /// form used in the second application inside the force kernel.
    pub hprime_wgll: Vec<f64>,
}

impl GllBasis {
    /// Build the basis for polynomial degree `degree`.
    pub fn new(degree: usize) -> Self {
        let (points, weights) = gll_points_and_weights(degree);
        let hprime = lagrange_derivative_matrix(&points);
        let np = degree + 1;
        let mut hprime_wgll = vec![0.0; np * np];
        for i in 0..np {
            for j in 0..np {
                hprime_wgll[i * np + j] = weights[i] * hprime[i * np + j];
            }
        }
        Self {
            degree,
            points,
            weights,
            hprime,
            hprime_wgll,
        }
    }

    /// Number of points per direction (`degree + 1`).
    #[inline]
    pub fn npoints(&self) -> usize {
        self.degree + 1
    }

    /// Integrate a sampled function (values at the GLL nodes) over `[-1, 1]`.
    pub fn integrate(&self, values: &[f64]) -> f64 {
        assert_eq!(values.len(), self.npoints());
        values.iter().zip(&self.weights).map(|(v, w)| v * w).sum()
    }

    /// Differentiate a nodal function, returning the derivative sampled at
    /// the nodes: `(Df)_i = Σ_j hprime[i][j] f_j`.
    pub fn differentiate(&self, values: &[f64]) -> Vec<f64> {
        let np = self.npoints();
        assert_eq!(values.len(), np);
        let mut out = vec![0.0; np];
        for i in 0..np {
            let mut acc = 0.0;
            for j in 0..np {
                acc += self.hprime[i * np + j] * values[j];
            }
            out[i] = acc;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_close(a: f64, b: f64, tol: f64) {
        assert!((a - b).abs() <= tol, "{a} vs {b}");
    }

    #[test]
    fn degree4_matches_published_values() {
        // Classical degree-4 GLL: {±1, ±sqrt(3/7), 0},
        // weights {1/10, 49/90, 32/45}.
        let (x, w) = gll_points_and_weights(4);
        let s = (3.0f64 / 7.0).sqrt();
        let expect_x = [-1.0, -s, 0.0, s, 1.0];
        let expect_w = [0.1, 49.0 / 90.0, 32.0 / 45.0, 49.0 / 90.0, 0.1];
        for i in 0..5 {
            assert_close(x[i], expect_x[i], 1e-14);
            assert_close(w[i], expect_w[i], 1e-14);
        }
    }

    #[test]
    fn weights_sum_to_interval_length() {
        for n in 1..12 {
            let (_, w) = gll_points_and_weights(n);
            assert_close(w.iter().sum::<f64>(), 2.0, 1e-12);
        }
    }

    #[test]
    fn quadrature_exact_up_to_2n_minus_1() {
        // GLL with n+1 points integrates polynomials of degree 2n-1 exactly.
        for n in 2..9 {
            let (x, w) = gll_points_and_weights(n);
            for k in 0..=(2 * n - 1) {
                let quad: f64 = x
                    .iter()
                    .zip(&w)
                    .map(|(xi, wi)| wi * xi.powi(k as i32))
                    .sum();
                let exact = if k % 2 == 1 {
                    0.0
                } else {
                    2.0 / (k as f64 + 1.0)
                };
                assert_close(quad, exact, 1e-11);
            }
        }
    }

    #[test]
    fn quadrature_not_exact_at_2n() {
        // x^{2n} has a known positive quadrature error for Lobatto rules.
        let n = 4;
        let (x, w) = gll_points_and_weights(n);
        let k = 2 * n;
        let quad: f64 = x
            .iter()
            .zip(&w)
            .map(|(xi, wi)| wi * xi.powi(k as i32))
            .sum();
        let exact = 2.0 / (k as f64 + 1.0);
        assert!((quad - exact).abs() > 1e-6);
    }

    #[test]
    fn nodes_are_sorted_and_symmetric() {
        for n in 1..15 {
            let (x, _) = gll_points_and_weights(n);
            for i in 1..x.len() {
                assert!(x[i] > x[i - 1]);
            }
            for i in 0..x.len() {
                assert_close(x[i], -x[x.len() - 1 - i], 1e-15);
            }
        }
    }

    #[test]
    fn derivative_matrix_rows_sum_to_zero() {
        // Derivative of the constant function is zero.
        let b = GllBasis::new(4);
        for i in 0..5 {
            let row: f64 = (0..5).map(|j| b.hprime[i * 5 + j]).sum();
            assert_close(row, 0.0, 1e-12);
        }
    }

    #[test]
    fn differentiate_polynomial_exactly() {
        let b = GllBasis::new(4);
        // f(x) = x^3 - 2x, f'(x) = 3x^2 - 2; degree 3 < 5 so exact.
        let f: Vec<f64> = b.points.iter().map(|&x| x * x * x - 2.0 * x).collect();
        let df = b.differentiate(&f);
        for (i, &x) in b.points.iter().enumerate() {
            assert_close(df[i], 3.0 * x * x - 2.0, 1e-12);
        }
    }

    #[test]
    fn integrate_matches_weights() {
        let b = GllBasis::new(6);
        let f: Vec<f64> = b.points.iter().map(|&x| x * x).collect();
        assert_close(b.integrate(&f), 2.0 / 3.0, 1e-12);
    }

    #[test]
    fn high_degree_stable() {
        let (x, w) = gll_points_and_weights(10);
        assert_eq!(x.len(), 11);
        assert!(w.iter().all(|&wi| wi > 0.0));
        assert_close(w.iter().sum::<f64>(), 2.0, 1e-12);
    }
}
