//! Legendre polynomials and derivatives via the three-term recurrence.

/// Evaluate the Legendre polynomial `P_n(x)`.
///
/// Uses the stable Bonnet recurrence
/// `(k+1) P_{k+1}(x) = (2k+1) x P_k(x) - k P_{k-1}(x)`.
pub fn legendre(n: usize, x: f64) -> f64 {
    legendre_pair(n, x).0
}

/// Evaluate the derivative `P'_n(x)`.
pub fn legendre_deriv(n: usize, x: f64) -> f64 {
    legendre_pair(n, x).1
}

/// Evaluate `(P_n(x), P'_n(x))` together.
///
/// The derivative is accumulated alongside the recurrence using
/// `P'_{k+1} = P'_{k-1} + (2k+1) P_k`, which is valid for all `x` including
/// the end points ±1 (where the common `(x² - 1)`-division formula blows up).
pub fn legendre_pair(n: usize, x: f64) -> (f64, f64) {
    match n {
        0 => return (1.0, 0.0),
        1 => return (x, 1.0),
        _ => {}
    }
    let mut p_prev = 1.0; // P_0
    let mut p = x; // P_1
    let mut d_prev = 0.0; // P'_0
    let mut d = 1.0; // P'_1
    for k in 1..n {
        let kf = k as f64;
        let p_next = ((2.0 * kf + 1.0) * x * p - kf * p_prev) / (kf + 1.0);
        let d_next = d_prev + (2.0 * kf + 1.0) * p;
        p_prev = p;
        p = p_next;
        d_prev = d;
        d = d_next;
    }
    (p, d)
}

/// Second derivative `P''_n(x)`, from the Legendre ODE
/// `(1-x²) P'' - 2x P' + n(n+1) P = 0` away from ±1, and the closed form
/// at the end points.
pub fn legendre_deriv2(n: usize, x: f64) -> f64 {
    let nf = n as f64;
    if (1.0 - x * x).abs() < 1e-12 {
        // limit value at x = ±1: P''_n(±1) = (±1)^n (n-1) n (n+1) (n+2) / 8
        let sign = if x > 0.0 || n.is_multiple_of(2) {
            1.0
        } else {
            -1.0
        };
        return sign * (nf - 1.0) * nf * (nf + 1.0) * (nf + 2.0) / 8.0;
    }
    let (p, d) = legendre_pair(n, x);
    (2.0 * x * d - nf * (nf + 1.0) * p) / (1.0 - x * x)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_close(a: f64, b: f64, tol: f64) {
        assert!((a - b).abs() <= tol, "{a} vs {b}");
    }

    #[test]
    fn low_degree_closed_forms() {
        for &x in &[-1.0, -0.7, -0.3, 0.0, 0.25, 0.9, 1.0] {
            assert_close(legendre(0, x), 1.0, 1e-15);
            assert_close(legendre(1, x), x, 1e-15);
            assert_close(legendre(2, x), 0.5 * (3.0 * x * x - 1.0), 1e-14);
            assert_close(legendre(3, x), 0.5 * (5.0 * x * x * x - 3.0 * x), 1e-14);
            assert_close(
                legendre(4, x),
                (35.0 * x.powi(4) - 30.0 * x * x + 3.0) / 8.0,
                1e-14,
            );
        }
    }

    #[test]
    fn derivative_closed_forms() {
        for &x in &[-1.0, -0.4, 0.0, 0.6, 1.0] {
            assert_close(legendre_deriv(2, x), 3.0 * x, 1e-14);
            assert_close(legendre_deriv(3, x), 0.5 * (15.0 * x * x - 3.0), 1e-13);
            assert_close(
                legendre_deriv(4, x),
                (140.0 * x * x * x - 60.0 * x) / 8.0,
                1e-13,
            );
        }
    }

    #[test]
    fn endpoint_values() {
        for n in 0..12 {
            assert_close(legendre(n, 1.0), 1.0, 1e-12);
            let expect = if n % 2 == 0 { 1.0 } else { -1.0 };
            assert_close(legendre(n, -1.0), expect, 1e-12);
            // P'_n(1) = n(n+1)/2
            let nf = n as f64;
            assert_close(legendre_deriv(n, 1.0), nf * (nf + 1.0) / 2.0, 1e-10);
        }
    }

    #[test]
    fn ode_satisfied_in_interior() {
        for n in 2..9 {
            let nf = n as f64;
            for &x in &[-0.83, -0.31, 0.07, 0.55, 0.96] {
                let (p, d) = legendre_pair(n, x);
                let d2 = legendre_deriv2(n, x);
                let residual = (1.0 - x * x) * d2 - 2.0 * x * d + nf * (nf + 1.0) * p;
                assert_close(residual, 0.0, 1e-9);
            }
        }
    }

    #[test]
    fn second_derivative_endpoint_limit() {
        // P''_4(1) = 3*4*5*6/8 = 45
        assert_close(legendre_deriv2(4, 1.0), 45.0, 1e-12);
        // continuity: approach the end point
        let near = legendre_deriv2(4, 1.0 - 1e-7);
        assert_close(near, 45.0, 1e-4);
    }
}
