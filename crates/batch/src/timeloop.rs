//! The batched time-marching driver: `RankSolver`'s step sequence with K
//! event lanes advancing through one mesh, one set of metric terms, and
//! one halo exchange per neighbor per field per step.
//!
//! Everything lane-scoped (source injection, seismogram recording,
//! health monitoring) runs per lane in lane order; everything
//! mesh-scoped (stiffness, mass division, halo assembly) runs once over
//! the lane-major bank. The step order is a verbatim transcription of
//! `RankSolver::step`'s blocking path — which the solver's
//! `overlap_equivalence` harness proves bit-identical to the default
//! overlapped path — so a K-lane batch reproduces K serial runs to the
//! bit (enforced by `tests/batch_oracle.rs`).

use std::time::Instant;

use specfem_comm::{
    assemble_halo, tags, CommError, Communicator, NetworkProfile, SerialComm, StatsSnapshot,
    ThreadWorld,
};
use specfem_kernels::{DerivOps, FlopCounter, MAX_BATCH_LANES};
use specfem_mesh::stations::Station;
use specfem_mesh::{GlobalMesh, LocalMesh, Partition};
use specfem_obs::{HealthMonitor, HealthReport};
use specfem_solver::{
    CheckpointState, CouplingSurface, MassMatrices, PrecomputedGeometry, ReceiverSet, Seismogram,
    SolverConfig, SolverError, SourceArrays, SourceSpec, EARTH_OMEGA_RAD_S,
};

use crate::bank::WavefieldBank;
use crate::forces::{compute_fluid_forces_batched, compute_solid_forces_batched, BatchScratch};

/// One event lane of a batch: its earthquake and the stations whose
/// seismograms it owes.
#[derive(Debug, Clone)]
pub struct EventLane {
    /// Job/event name, carried through to the lane's output.
    pub name: String,
    /// The lane's source.
    pub source: SourceSpec,
    /// The lane's station set.
    pub stations: Vec<Station>,
}

/// Per-lane solver state (the lane-scoped half of `RankSolver`).
struct LaneState {
    name: String,
    source: SourceArrays,
    apply_source: bool,
    receivers: ReceiverSet,
    health: HealthMonitor,
    tripped: Option<HealthReport>,
}

/// Run options for the batched time loop.
#[derive(Debug, Clone, Default)]
pub struct BatchRunOptions {
    /// Capture every lane's final wavefield as a [`CheckpointState`] —
    /// the differential oracle compares these against serial runs, and
    /// campaign jobs that feed adjoint workflows keep them.
    pub capture_final_state: bool,
}

/// What one lane of a batch produced on one rank.
#[derive(Debug, Clone)]
pub struct LaneOutput {
    /// The lane's event name.
    pub name: String,
    /// Seismograms of the stations this rank owns for this lane.
    pub seismograms: Vec<Seismogram>,
    /// Worst station location error on this rank (m).
    pub station_error_m: f64,
    /// Final wavefield (when [`BatchRunOptions::capture_final_state`]).
    pub final_state: Option<CheckpointState>,
}

/// Everything one rank returns from a batched run.
#[derive(Debug, Clone)]
pub struct BatchRankOutput {
    /// Rank id.
    pub rank: usize,
    /// Lane count of the batch.
    pub k: usize,
    /// Per-lane outcome: a healthy lane's output, or the health report
    /// that poisoned it (siblings complete regardless).
    pub lanes: Vec<Result<LaneOutput, HealthReport>>,
    /// Communication statistics of the main loop — shared by the whole
    /// batch (one message per neighbor carries all K lanes).
    pub comm: StatsSnapshot,
    /// Total flops executed by this rank's kernels (all lanes).
    pub flops: u64,
    /// Wall-clock seconds of the main loop.
    pub elapsed_s: f64,
    /// Time step used (s).
    pub dt: f64,
    /// Steps taken.
    pub nsteps: usize,
    /// Local elements / points.
    pub nspec: usize,
    pub nglob: usize,
}

/// Unwrap a setup-phase collective (same policy as the single-lane
/// solver: failures before the first step are fatal).
fn setup<T>(r: Result<T, CommError>) -> T {
    r.unwrap_or_else(|e| panic!("collective failed during batch solver setup: {e}"))
}

/// Map a health trip's flat field index back to the local element holding
/// the offending grid point (single-lane layout: the monitor scans
/// per-lane extracts).
fn attribute_element(mesh: &LocalMesh, field: &str, point: usize) -> Option<usize> {
    let pid = if matches!(field, "chi" | "chi_dot" | "chi_ddot") {
        point
    } else {
        point / 3
    } as u32;
    let npe = mesh.points_per_element();
    mesh.ibool.chunks(npe).position(|elem| elem.contains(&pid))
}

/// One rank's batched solver state.
pub struct BatchSolver {
    /// The rank's mesh slice.
    pub mesh: LocalMesh,
    config: SolverConfig,
    geom: PrecomputedGeometry,
    ops: DerivOps,
    mass: MassMatrices,
    coupling: CouplingSurface,
    /// The lane-major wave fields (public for tests).
    pub bank: WavefieldBank,
    lanes: Vec<LaneState>,
    /// Time step (s) — identical to the single-lane solver's on the
    /// same mesh (same Courant collective).
    pub dt: f64,
    flops: FlopCounter,
    scratch: BatchScratch,
}

impl BatchSolver {
    /// Set up one rank for K lanes (collective call). The mesh-scoped
    /// setup runs once; source and receiver location run per lane, in
    /// lane order, with the same ownership collectives as the
    /// single-lane solver — so every rank agrees on who applies which
    /// lane's source and records which lane's stations.
    ///
    /// Panics on configurations the batched tier does not support
    /// (see [`crate::supported`]) — the campaign packer screens jobs
    /// before fusing them, so hitting one here is a driver bug.
    pub fn new(
        mesh: LocalMesh,
        config: &SolverConfig,
        lanes: &[EventLane],
        comm: &mut dyn Communicator,
    ) -> Self {
        let _span = specfem_obs::span("batch.setup");
        let k = lanes.len();
        assert!(
            (1..=MAX_BATCH_LANES).contains(&k),
            "batch lane count {k} out of 1..={MAX_BATCH_LANES}"
        );
        crate::supported(config).unwrap_or_else(|e| panic!("unbatchable config: {e}"));

        let gravity_profile = if config.gravity {
            Some(specfem_model::GravityProfile::new(
                &specfem_model::Prem::isotropic_no_ocean(),
                256,
            ))
        } else {
            None
        };
        let geom = PrecomputedGeometry::compute(&mesh, gravity_profile.as_ref());
        let ops = DerivOps::from_basis(&mesh.basis);
        let mass = MassMatrices::build(&mesh, &geom, comm)
            .unwrap_or_else(|e| panic!("mass-matrix assembly failed: {e}"));
        let coupling = CouplingSurface::build(&mesh);
        let absorbing =
            specfem_solver::AbsorbingSurface::build(&mesh, specfem_model::EARTH_RADIUS_M);
        assert!(
            absorbing.is_empty(),
            "batched tier only runs global meshes (no absorbing boundaries)"
        );

        let quality = mesh.quality();
        let dt = match config.dt {
            Some(dt) => dt,
            None => setup(comm.allreduce_min(quality.dt_stable_s)),
        };

        let lane_states = lanes
            .iter()
            .map(|lane| {
                // Source ownership: every rank locates, the best fit wins
                // (identical collective sequence to the single-lane path).
                let source = SourceArrays::build(&mesh, &lane.source);
                let best = setup(comm.allreduce_min(source.locate_cost()));
                let mine = if (source.locate_cost() - best).abs() <= 1e-9 * best.max(1.0) {
                    comm.rank() as f64
                } else {
                    f64::INFINITY
                };
                let winner = setup(comm.allreduce_min(mine));
                let apply_source = best.is_finite() && winner == comm.rank() as f64;

                // Receivers: per-station ownership by best location error.
                let mut receivers =
                    ReceiverSet::locate(&mesh, &lane.stations, config.exact_station_location);
                let errors = receivers.errors();
                let mut keep = vec![false; errors.len()];
                for (s, &err) in errors.iter().enumerate() {
                    let best = setup(comm.allreduce_min(err));
                    let mine = if (err - best).abs() <= 1e-9 * best.max(1.0) {
                        comm.rank() as f64
                    } else {
                        f64::INFINITY
                    };
                    let winner = setup(comm.allreduce_min(mine));
                    keep[s] = winner == comm.rank() as f64;
                }
                receivers.retain(&keep);

                LaneState {
                    name: lane.name.clone(),
                    source,
                    apply_source,
                    receivers,
                    health: HealthMonitor::new(config.health_every),
                    tripped: None,
                }
            })
            .collect();

        let bank = WavefieldBank::zeros(mesh.nglob, k);
        Self {
            config: config.clone(),
            geom,
            ops,
            mass,
            coupling,
            bank,
            lanes: lane_states,
            dt,
            flops: FlopCounter::new(),
            scratch: BatchScratch::new(k),
            mesh,
        }
    }

    /// Add lane `lane`'s source force at time `t` into its lane of the
    /// acceleration bank — `SourceArrays::apply` re-addressed into the
    /// lane-major layout (same weights, same add order).
    fn apply_source_lane(&mut self, lane: usize, t: f64) {
        let k = self.bank.k;
        let source = &self.lanes[lane].source;
        if let Some((weights, samples, dt)) = &source.trace {
            let idx = (t / dt).round() as usize;
            let Some(s) = samples.get(idx) else { return };
            for &(p, w) in weights {
                let o = p as usize * 3 * k;
                self.bank.accel[o + lane] += w * s[0];
                self.bank.accel[o + k + lane] += w * s[1];
                self.bank.accel[o + 2 * k + lane] += w * s[2];
            }
            return;
        }
        let Some(stf) = &source.stf else { return };
        let s = stf.eval(t) as f32;
        if s == 0.0 {
            return;
        }
        for &(p, f) in &source.entries {
            let o = p as usize * 3 * k;
            self.bank.accel[o + lane] += s * f[0];
            self.bank.accel[o + k + lane] += s * f[1];
            self.bank.accel[o + 2 * k + lane] += s * f[2];
        }
    }

    /// Advance all lanes one time step. Mirrors `RankSolver::step`'s
    /// blocking path; each halo field is exchanged once with all K
    /// lanes packed (`ncomp = K` fluid, `3K` solid) under the batched
    /// tags, so the posted message count per step does not depend on K.
    pub fn step(&mut self, istep: usize, comm: &mut dyn Communicator) -> Result<(), SolverError> {
        comm.on_time_step(istep)?;
        let _span = specfem_obs::span("batch.step");
        let dt = self.dt as f32;
        let t = (istep + 1) as f64 * self.dt;
        let k = self.bank.k;

        // 1. Newmark predictor on both media, all lanes.
        self.bank.predictor(dt);

        // 2. Fluid outer core: solid→fluid coupling from the predicted
        //    displacement (before the element loop — same accumulation-
        //    order contract as the single-lane solver), stiffness,
        //    assemble, divide by mass.
        {
            let _s = specfem_obs::span("batch.forces.fluid");
            for cp in &self.coupling.points {
                let o = cp.point as usize * 3 * k;
                let co = cp.point as usize * k;
                for lane in 0..k {
                    let dot = self.bank.displ[o + lane] * cp.nw[0]
                        + self.bank.displ[o + k + lane] * cp.nw[1]
                        + self.bank.displ[o + 2 * k + lane] * cp.nw[2];
                    self.bank.chi_ddot[co + lane] += dot;
                }
            }
            compute_fluid_forces_batched(
                &self.mesh,
                &self.geom,
                &self.ops,
                self.config.variant,
                &mut self.bank,
                &mut self.flops,
                &mut self.scratch,
            );
        }
        {
            let _s = specfem_obs::span("batch.assemble.fluid");
            assemble_halo(
                comm,
                &self.mesh.halo,
                &mut self.bank.chi_ddot,
                k,
                tags::HALO_BATCHED_FLUID,
            )?;
        }
        self.bank.corrector_fluid(&self.mass.fluid, dt);

        // 3. Solid regions: fluid→solid coupling, per-lane sources,
        //    stiffness, assembly.
        {
            let _s = specfem_obs::span("batch.forces.solid");
            for cp in &self.coupling.points {
                let o = cp.point as usize * 3 * k;
                let co = cp.point as usize * k;
                for lane in 0..k {
                    let chiddot = self.bank.chi_ddot[co + lane];
                    self.bank.accel[o + lane] -= cp.nw[0] * chiddot;
                    self.bank.accel[o + k + lane] -= cp.nw[1] * chiddot;
                    self.bank.accel[o + 2 * k + lane] -= cp.nw[2] * chiddot;
                }
            }
            for lane in 0..k {
                if self.lanes[lane].apply_source {
                    self.apply_source_lane(lane, t);
                }
            }
            compute_solid_forces_batched(
                &self.mesh,
                &self.geom,
                &self.ops,
                self.config.variant,
                &mut self.bank,
                self.config.gravity,
                &mut self.flops,
                &mut self.scratch,
            );
        }
        {
            let _s = specfem_obs::span("batch.assemble.solid");
            assemble_halo(
                comm,
                &self.mesh.halo,
                &mut self.bank.accel,
                3 * k,
                tags::HALO_BATCHED_SOLID,
            )?;
        }

        // 4. Solid corrector (optional Coriolis between the mass division
        //    and the velocity half-update), all lanes.
        if self.config.rotation {
            let half_dt = 0.5 * dt;
            let om = EARTH_OMEGA_RAD_S as f32;
            for (p, &m) in self.mass.solid.iter().enumerate() {
                if m > 0.0 {
                    let inv = 1.0 / m;
                    let o = p * 3 * k;
                    for lane in 0..k {
                        let vx = self.bank.veloc[o + lane];
                        let vy = self.bank.veloc[o + k + lane];
                        let ax = self.bank.accel[o + lane] * inv + 2.0 * om * vy;
                        let ay = self.bank.accel[o + k + lane] * inv - 2.0 * om * vx;
                        let az = self.bank.accel[o + 2 * k + lane] * inv;
                        self.bank.accel[o + lane] = ax;
                        self.bank.accel[o + k + lane] = ay;
                        self.bank.accel[o + 2 * k + lane] = az;
                        self.bank.veloc[o + lane] += half_dt * ax;
                        self.bank.veloc[o + k + lane] += half_dt * ay;
                        self.bank.veloc[o + 2 * k + lane] += half_dt * az;
                    }
                }
            }
        } else {
            self.bank.corrector_solid(&self.mass.solid, dt);
        }

        // Bookkeeping flops for the update loops (≈ 50/point/step/lane).
        self.flops.add_raw(self.mesh.nglob as u64 * 50 * k as u64);

        if istep.is_multiple_of(self.config.record_every) {
            let _s = specfem_obs::span("batch.step.record");
            let bank = &self.bank;
            for (lane, ls) in self.lanes.iter_mut().enumerate() {
                ls.receivers
                    .record_with(&self.mesh, |p, c| bank.veloc[(p * 3 + c) * k + lane]);
            }
        }
        Ok(())
    }

    /// Scan every healthy lane's fields with its own monitor. A trip
    /// poisons only that lane: its report is stored (and later returned
    /// as the lane's outcome) while its siblings keep marching — lanes
    /// never mix numerically, so a NaN stays in its own lane.
    fn check_health(&mut self, rank: usize, istep: usize) {
        let k = self.bank.k;
        let nglob = self.bank.nglob;
        for (lane, ls) in self.lanes.iter_mut().enumerate() {
            if ls.tripped.is_some() || !ls.health.should_check(istep) {
                continue;
            }
            let displ = WavefieldBank::lane_vec3(&self.bank.displ, nglob, k, lane);
            let veloc = WavefieldBank::lane_vec3(&self.bank.veloc, nglob, k, lane);
            let chi_dot = WavefieldBank::lane_scalar(&self.bank.chi_dot, nglob, k, lane);
            let fields: [(&'static str, &[f32]); 3] =
                [("displ", &displ), ("veloc", &veloc), ("chi_dot", &chi_dot)];
            if let Some(mut report) = ls.health.check(rank, istep, &fields) {
                report.element = attribute_element(&self.mesh, report.field, report.point);
                specfem_obs::counter_add("batch.health.trips", 1);
                ls.tripped = Some(report);
            }
        }
    }

    /// Capture lane `lane`'s final wavefield in the single-lane
    /// checkpoint container (next_step = nsteps, no attenuation memory,
    /// no energy/snapshot series — the batched tier records neither).
    fn capture_lane_state(&self, lane: usize, rank: usize, nranks: usize) -> CheckpointState {
        let k = self.bank.k;
        let nglob = self.bank.nglob;
        CheckpointState {
            rank,
            nranks,
            next_step: self.config.nsteps,
            dt: self.dt,
            nglob,
            global_ids: self.mesh.global_ids.clone(),
            element_global: self.mesh.element_global.clone(),
            displ: WavefieldBank::lane_vec3(&self.bank.displ, nglob, k, lane),
            veloc: WavefieldBank::lane_vec3(&self.bank.veloc, nglob, k, lane),
            accel: WavefieldBank::lane_vec3(&self.bank.accel, nglob, k, lane),
            chi: WavefieldBank::lane_scalar(&self.bank.chi, nglob, k, lane),
            chi_dot: WavefieldBank::lane_scalar(&self.bank.chi_dot, nglob, k, lane),
            chi_ddot: WavefieldBank::lane_scalar(&self.bank.chi_ddot, nglob, k, lane),
            atten_memory: None,
            records: self.lanes[lane]
                .receivers
                .station_names()
                .into_iter()
                .zip(self.lanes[lane].receivers.records().iter().cloned())
                .collect(),
            energy: Vec::new(),
            snapshots: Vec::new(),
            flops: 0,
        }
    }

    /// Run the configured number of steps and package per-lane results.
    pub fn try_run(
        mut self,
        comm: &mut dyn Communicator,
        opts: &BatchRunOptions,
    ) -> Result<BatchRankOutput, SolverError> {
        comm.barrier()?;
        comm.reset_stats(); // main-loop statistics only, like IPM
        let span_timeloop = specfem_obs::span("batch.timeloop");
        let t0 = Instant::now();
        for istep in 0..self.config.nsteps {
            self.step(istep, comm)?;
            self.check_health(comm.rank(), istep);
        }
        comm.barrier()?;
        drop(span_timeloop);
        let elapsed = t0.elapsed().as_secs_f64();
        specfem_obs::counter_add("batch.steps", self.config.nsteps as u64);

        let rank = comm.rank();
        let nranks = comm.size();
        let final_states: Vec<Option<CheckpointState>> = (0..self.lanes.len())
            .map(|lane| {
                (opts.capture_final_state && self.lanes[lane].tripped.is_none())
                    .then(|| self.capture_lane_state(lane, rank, nranks))
            })
            .collect();
        let dt_samples = self.dt * self.config.record_every as f64;
        let lanes: Vec<Result<LaneOutput, HealthReport>> = self
            .lanes
            .into_iter()
            .zip(final_states)
            .map(|(ls, final_state)| match ls.tripped {
                Some(report) => Err(report),
                None => Ok(LaneOutput {
                    name: ls.name,
                    station_error_m: ls.receivers.worst_error_m(),
                    seismograms: ls.receivers.into_seismograms(dt_samples),
                    final_state,
                }),
            })
            .collect();
        Ok(BatchRankOutput {
            rank,
            k: self.bank.k,
            lanes,
            comm: comm.stats(),
            flops: self.flops.total(),
            elapsed_s: elapsed,
            dt: self.dt,
            nsteps: self.config.nsteps,
            nspec: self.mesh.nspec,
            nglob: self.mesh.nglob,
        })
    }
}

/// Run a batch serially (one rank, whole mesh).
pub fn try_run_batch_serial(
    mesh: &GlobalMesh,
    config: &SolverConfig,
    lanes: &[EventLane],
    opts: &BatchRunOptions,
) -> Result<BatchRankOutput, SolverError> {
    let local = Partition::serial(mesh).extract(mesh, 0);
    let mut comm = SerialComm::new();
    let solver = BatchSolver::new(local, config, lanes, &mut comm);
    solver.try_run(&mut comm, opts)
}

/// Run a batch distributed over an explicit partition (the `mpirun`
/// analog of [`try_run_batch_serial`]).
pub fn try_run_batch_partitioned(
    mesh: &GlobalMesh,
    config: &SolverConfig,
    lanes: &[EventLane],
    profile: NetworkProfile,
    partition: &Partition,
    opts: &BatchRunOptions,
) -> Vec<Result<BatchRankOutput, SolverError>> {
    let nranks = partition.num_ranks;
    let rank_main = |mut base: specfem_comm::ThreadComm| {
        base.set_recv_timeout(config.recv_timeout);
        let rank = base.rank();
        let local = partition.extract(mesh, rank);
        let solver = BatchSolver::new(local, config, lanes, &mut base);
        solver.try_run(&mut base, opts)
    };
    ThreadWorld::try_run(nranks, profile, rank_main)
        .into_iter()
        .map(|r| match r {
            Ok(inner) => inner,
            Err(p) => Err(SolverError::RankPanicked {
                rank: p.rank,
                message: p.message,
            }),
        })
        .collect()
}
