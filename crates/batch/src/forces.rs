//! Batched internal-force kernels: the solid and fluid routines of
//! `specfem_solver::forces` with an innermost event-lane dimension K.
//!
//! The geometry and material terms (metric tensor, Jacobian, μ, κ, ρ,
//! gravity profile) are shared across all lanes — that sharing is the
//! entire point of batching: one load of the per-point scalars feeds K
//! lanes of stress/force arithmetic. The per-lane arithmetic itself is
//! a verbatim transcription of the single-lane kernel (same expression
//! tree, same evaluation order), and the cut-plane products go through
//! `specfem_kernels::batched`, so each lane's f32 sequence is exactly
//! the single-lane sequence — the zero-ULP oracle in
//! `tests/batch_oracle.rs` holds per lane, per variant.
//!
//! Attenuation is not offered on the batched path (per-lane SLS memory
//! would triple the bank footprint); the campaign packer never fuses
//! attenuating jobs.

use specfem_kernels::{
    batched_cutplane_derivatives, batched_cutplane_transpose_accumulate, DerivOps, FlopCounter,
    KernelVariant, NGLL, NGLL3,
};
use specfem_mesh::LocalMesh;
use specfem_solver::PrecomputedGeometry;

use crate::bank::WavefieldBank;

/// Heap scratch for the batched element kernels (the single-lane solver
/// uses stack arrays; at K lanes the blocks are `NGLL3·K` floats and go
/// on the heap once per solver, not per element).
pub struct BatchScratch {
    u: [Vec<f32>; 3],
    t: [[Vec<f32>; 3]; 3],
    f: [[Vec<f32>; 3]; 3],
    body: [Vec<f32>; 3],
    accum: Vec<f32>,
    chi: Vec<f32>,
    ft1: Vec<f32>,
    ft2: Vec<f32>,
    ft3: Vec<f32>,
}

impl BatchScratch {
    /// Scratch for `k` lanes.
    pub fn new(k: usize) -> Self {
        let block = || vec![0.0f32; NGLL3 * k];
        Self {
            u: std::array::from_fn(|_| block()),
            t: std::array::from_fn(|_| std::array::from_fn(|_| block())),
            f: std::array::from_fn(|_| std::array::from_fn(|_| block())),
            body: std::array::from_fn(|_| block()),
            accum: block(),
            chi: block(),
            ft1: block(),
            ft2: block(),
            ft3: block(),
        }
    }
}

/// Batched solid internal forces: `accel -= K·displ` on every lane, plus
/// the optional Cowling gravity body force. Mirrors
/// `compute_solid_forces_range(.., 0..nspec)` per lane.
#[allow(clippy::too_many_arguments)]
pub fn compute_solid_forces_batched(
    mesh: &LocalMesh,
    geom: &PrecomputedGeometry,
    ops: &DerivOps,
    variant: KernelVariant,
    bank: &mut WavefieldBank,
    gravity: bool,
    flops: &mut FlopCounter,
    s: &mut BatchScratch,
) {
    let n3 = mesh.points_per_element();
    assert_eq!(n3, NGLL3, "solver kernels are specialized to degree 4");
    let k = bank.k;
    let w = &mesh.basis.weights;
    let mut wf = [0.0f32; NGLL];
    for i in 0..NGLL {
        wf[i] = w[i] as f32;
    }

    let mut nsolid = 0usize;
    for e in 0..mesh.nspec {
        if mesh.region[e].is_fluid() {
            continue;
        }
        nsolid += 1;
        let base = e * n3;
        let ib = &mesh.ibool[base..base + n3];
        // Lane-major gather: a point's K lane values are contiguous in
        // the bank, so each (l, c) slot is one memcpy of K floats.
        for (c, uc) in s.u.iter_mut().enumerate() {
            for (l, &p) in ib.iter().enumerate() {
                let src = (p as usize * 3 + c) * k;
                uc[l * k..l * k + k].copy_from_slice(&bank.displ[src..src + k]);
            }
        }
        for c in 0..3 {
            let (t0, rest) = s.t[c].split_at_mut(1);
            let (t1, t2) = rest.split_at_mut(1);
            batched_cutplane_derivatives(
                variant, &s.u[c], k, ops, &mut t0[0], &mut t1[0], &mut t2[0],
            );
        }
        if gravity {
            for b in s.body.iter_mut() {
                b.fill(0.0);
            }
        }
        for kk in 0..NGLL {
            for j in 0..NGLL {
                for i in 0..NGLL {
                    let l = (kk * NGLL + j) * NGLL + i;
                    let idx = base + l;
                    // Shared per-point scalars: loaded once for all K lanes.
                    let (xix, xiy, xiz) = (geom.xix[idx], geom.xiy[idx], geom.xiz[idx]);
                    let (etx, ety, etz) = (geom.etax[idx], geom.etay[idx], geom.etaz[idx]);
                    let (gax, gay, gaz) = (geom.gammax[idx], geom.gammay[idx], geom.gammaz[idx]);
                    let mu = mesh.mu[idx];
                    let kappa = mesh.kappa[idx];
                    let lambda = kappa - 2.0 / 3.0 * mu;
                    let jac = geom.jacobian[idx];
                    let w1 = (wf[j] * wf[kk]) * jac;
                    let w2 = (wf[i] * wf[kk]) * jac;
                    let w3 = (wf[i] * wf[j]) * jac;
                    let o = l * k;
                    for lane in 0..k {
                        // Physical displacement gradient (per lane).
                        let dux_dx = s.t[0][0][o + lane] * xix
                            + s.t[0][1][o + lane] * etx
                            + s.t[0][2][o + lane] * gax;
                        let dux_dy = s.t[0][0][o + lane] * xiy
                            + s.t[0][1][o + lane] * ety
                            + s.t[0][2][o + lane] * gay;
                        let dux_dz = s.t[0][0][o + lane] * xiz
                            + s.t[0][1][o + lane] * etz
                            + s.t[0][2][o + lane] * gaz;
                        let duy_dx = s.t[1][0][o + lane] * xix
                            + s.t[1][1][o + lane] * etx
                            + s.t[1][2][o + lane] * gax;
                        let duy_dy = s.t[1][0][o + lane] * xiy
                            + s.t[1][1][o + lane] * ety
                            + s.t[1][2][o + lane] * gay;
                        let duy_dz = s.t[1][0][o + lane] * xiz
                            + s.t[1][1][o + lane] * etz
                            + s.t[1][2][o + lane] * gaz;
                        let duz_dx = s.t[2][0][o + lane] * xix
                            + s.t[2][1][o + lane] * etx
                            + s.t[2][2][o + lane] * gax;
                        let duz_dy = s.t[2][0][o + lane] * xiy
                            + s.t[2][1][o + lane] * ety
                            + s.t[2][2][o + lane] * gay;
                        let duz_dz = s.t[2][0][o + lane] * xiz
                            + s.t[2][1][o + lane] * etz
                            + s.t[2][2][o + lane] * gaz;

                        let div = dux_dx + duy_dy + duz_dz;
                        let eps_xy = 0.5 * (dux_dy + duy_dx);
                        let eps_xz = 0.5 * (dux_dz + duz_dx);
                        let eps_yz = 0.5 * (duy_dz + duz_dy);

                        let sig_xx = lambda * div + 2.0 * mu * dux_dx;
                        let sig_yy = lambda * div + 2.0 * mu * duy_dy;
                        let sig_zz = lambda * div + 2.0 * mu * duz_dz;
                        let sig_xy = 2.0 * mu * eps_xy;
                        let sig_xz = 2.0 * mu * eps_xz;
                        let sig_yz = 2.0 * mu * eps_yz;

                        s.f[0][0][o + lane] = w1 * (sig_xx * xix + sig_xy * xiy + sig_xz * xiz);
                        s.f[0][1][o + lane] = w2 * (sig_xx * etx + sig_xy * ety + sig_xz * etz);
                        s.f[0][2][o + lane] = w3 * (sig_xx * gax + sig_xy * gay + sig_xz * gaz);
                        s.f[1][0][o + lane] = w1 * (sig_xy * xix + sig_yy * xiy + sig_yz * xiz);
                        s.f[1][1][o + lane] = w2 * (sig_xy * etx + sig_yy * ety + sig_yz * etz);
                        s.f[1][2][o + lane] = w3 * (sig_xy * gax + sig_yy * gay + sig_yz * gaz);
                        s.f[2][0][o + lane] = w1 * (sig_xz * xix + sig_yz * xiy + sig_zz * xiz);
                        s.f[2][1][o + lane] = w2 * (sig_xz * etx + sig_yz * ety + sig_zz * etz);
                        s.f[2][2][o + lane] = w3 * (sig_xz * gax + sig_yz * gay + sig_zz * gaz);

                        if gravity && !geom.g_at_point.is_empty() {
                            let g = geom.g_at_point[idx];
                            let rh = geom.rhat[idx];
                            let rho = mesh.rho[idx];
                            let wjac = (wf[i] * wf[j] * wf[kk]) * jac;
                            let gx = -g * (rh[0] * dux_dx + rh[1] * duy_dx + rh[2] * duz_dx);
                            let gy = -g * (rh[0] * dux_dy + rh[1] * duy_dy + rh[2] * duz_dy);
                            let gz = -g * (rh[0] * dux_dz + rh[1] * duy_dz + rh[2] * duz_dz);
                            s.body[0][o + lane] = rho * wjac * (gx + g * rh[0] * div);
                            s.body[1][o + lane] = rho * wjac * (gy + g * rh[1] * div);
                            s.body[2][o + lane] = rho * wjac * (gz + g * rh[2] * div);
                        }
                    }
                }
            }
        }
        for c in 0..3 {
            s.accum.fill(0.0);
            batched_cutplane_transpose_accumulate(
                variant,
                &s.f[c][0],
                &s.f[c][1],
                &s.f[c][2],
                k,
                ops,
                &mut s.accum,
            );
            if gravity {
                for (l, &p) in ib.iter().enumerate() {
                    let dst = (p as usize * 3 + c) * k;
                    for lane in 0..k {
                        bank.accel[dst + lane] += -s.accum[l * k + lane] + s.body[c][l * k + lane];
                    }
                }
            } else {
                for (l, &p) in ib.iter().enumerate() {
                    let dst = (p as usize * 3 + c) * k;
                    for lane in 0..k {
                        bank.accel[dst + lane] -= s.accum[l * k + lane];
                    }
                }
            }
        }
    }
    flops.add_solid_elements(nsolid * k, false);
}

/// Batched fluid (outer-core) internal forces: `χ̈ -= K_f·χ` per lane.
/// Mirrors `compute_fluid_forces_range(.., 0..nspec)` per lane.
pub fn compute_fluid_forces_batched(
    mesh: &LocalMesh,
    geom: &PrecomputedGeometry,
    ops: &DerivOps,
    variant: KernelVariant,
    bank: &mut WavefieldBank,
    flops: &mut FlopCounter,
    s: &mut BatchScratch,
) {
    let n3 = mesh.points_per_element();
    let k = bank.k;
    let w = &mesh.basis.weights;
    let mut wf = [0.0f32; NGLL];
    for i in 0..NGLL {
        wf[i] = w[i] as f32;
    }

    let mut nfluid = 0usize;
    for e in 0..mesh.nspec {
        if !mesh.region[e].is_fluid() {
            continue;
        }
        nfluid += 1;
        let base = e * n3;
        let ib = &mesh.ibool[base..base + n3];
        for (l, &p) in ib.iter().enumerate() {
            let src = p as usize * k;
            s.chi[l * k..l * k + k].copy_from_slice(&bank.chi[src..src + k]);
        }
        batched_cutplane_derivatives(variant, &s.chi, k, ops, &mut s.ft1, &mut s.ft2, &mut s.ft3);
        for kk in 0..NGLL {
            for j in 0..NGLL {
                for i in 0..NGLL {
                    let l = (kk * NGLL + j) * NGLL + i;
                    let idx = base + l;
                    let (xix, xiy, xiz) = (geom.xix[idx], geom.xiy[idx], geom.xiz[idx]);
                    let (etx, ety, etz) = (geom.etax[idx], geom.etay[idx], geom.etaz[idx]);
                    let (gax, gay, gaz) = (geom.gammax[idx], geom.gammay[idx], geom.gammaz[idx]);
                    let inv_rho = 1.0 / mesh.rho[idx];
                    let jac = geom.jacobian[idx];
                    let wa = (wf[j] * wf[kk]) * jac;
                    let wb = (wf[i] * wf[kk]) * jac;
                    let wc = (wf[i] * wf[j]) * jac;
                    let o = l * k;
                    for lane in 0..k {
                        let dchi_dx =
                            s.ft1[o + lane] * xix + s.ft2[o + lane] * etx + s.ft3[o + lane] * gax;
                        let dchi_dy =
                            s.ft1[o + lane] * xiy + s.ft2[o + lane] * ety + s.ft3[o + lane] * gay;
                        let dchi_dz =
                            s.ft1[o + lane] * xiz + s.ft2[o + lane] * etz + s.ft3[o + lane] * gaz;
                        let gx = inv_rho * dchi_dx;
                        let gy = inv_rho * dchi_dy;
                        let gz = inv_rho * dchi_dz;
                        s.f[0][0][o + lane] = wa * (gx * xix + gy * xiy + gz * xiz);
                        s.f[0][1][o + lane] = wb * (gx * etx + gy * ety + gz * etz);
                        s.f[0][2][o + lane] = wc * (gx * gax + gy * gay + gz * gaz);
                    }
                }
            }
        }
        s.accum.fill(0.0);
        batched_cutplane_transpose_accumulate(
            variant,
            &s.f[0][0],
            &s.f[0][1],
            &s.f[0][2],
            k,
            ops,
            &mut s.accum,
        );
        for (l, &p) in ib.iter().enumerate() {
            let dst = p as usize * k;
            for lane in 0..k {
                bank.chi_ddot[dst + lane] -= s.accum[l * k + lane];
            }
        }
    }
    flops.add_fluid_elements(nfluid * k);
}
