//! `specfem-batch` — the batched multi-event execution tier: one mesh,
//! K earthquakes per solve.
//!
//! The campaign runtime already dedups the mesh across a catalogue
//! sweep (E-CAMP), but each event still re-pays identical stiffness
//! work: the same metric terms, the same derivative operators, the same
//! halo exchange, once per event. Following Yamaguchi et al.'s
//! multiple-simulation formulation, this crate fuses K simulations that
//! share a mesh into *one* time loop:
//!
//! * [`WavefieldBank`] stores `displ/veloc/accel/chi/χ̇/χ̈` with an
//!   innermost event-lane dimension K (lane-major SoA,
//!   `specfem_kernels::lane_major`);
//! * [`forces`] runs the solid and fluid force kernels as 5×5×K
//!   batched cut-plane products through the same kernel-dispatch
//!   interface ([`specfem_kernels::batched`]);
//! * [`BatchSolver`] mirrors the single-lane `RankSolver` step order
//!   exactly — per-lane source injection, per-lane seismogram
//!   recording, a per-lane health monitor (a poisoned lane fails alone;
//!   its siblings finish) — and exchanges halos once per neighbor per
//!   step with all K lanes packed into the message (`ncomp = 3K` solid,
//!   `K` fluid), so the posted message count is independent of K.
//!
//! **Differential oracle / ULP policy: zero ULP.** A K-event batch is
//! bit-identical to the K serial runs it replaces — seismograms *and*
//! final checkpointed fields — for every kernel variant. See
//! `specfem_kernels::batched` for the per-variant argument and
//! `tests/batch_oracle.rs` for the enforcement.

pub mod bank;
pub mod forces;
pub mod timeloop;

pub use bank::WavefieldBank;
pub use timeloop::{
    try_run_batch_partitioned, try_run_batch_serial, BatchRankOutput, BatchRunOptions, BatchSolver,
    EventLane, LaneOutput,
};

/// Reject configurations the batched tier does not support. The serial
/// path handles these; the campaign packer only fuses jobs that pass.
pub fn supported(config: &specfem_solver::SolverConfig) -> Result<(), String> {
    if config.attenuation {
        return Err("batched tier does not support attenuation (per-lane SLS memory)".into());
    }
    if config.ocean_load {
        return Err("batched tier does not support the ocean load".into());
    }
    if config.energy_every > 0 {
        return Err("batched tier does not support energy diagnostics".into());
    }
    if config.snapshot_every > 0 {
        return Err("batched tier does not support wavefield snapshots".into());
    }
    if config.checkpoint_every > 0 {
        return Err("batched tier does not support mid-run checkpointing".into());
    }
    if config.fault_plan.is_some() {
        return Err("batched tier does not run fault plans".into());
    }
    if config.lts_max_rate > 1 || config.lts_all_rate_one {
        return Err("batched tier does not support local time stepping".into());
    }
    Ok(())
}
