//! Lane-major wavefield storage for K fused events.
//!
//! Layout: vector fields store `[(point*3 + comp)*k + lane]`, scalar
//! fields `[point*k + lane]` (see `specfem_kernels::lane_major`). The
//! K lane values of one slot are contiguous, which is what lets the
//! halo layer pack all lanes of a shared point into one message
//! (`ncomp = 3K` / `K`) and the batched kernels stream K products per
//! coefficient load.
//!
//! Every update here is the *same per-lane f32 operation sequence* as
//! `specfem_solver::WaveFields`: the Newmark predictor is an
//! element-wise zip (lane order is irrelevant — each lane only reads
//! its own slots) and the correctors hoist `1/m` exactly like the
//! single-lane code, so batch results stay bit-identical to serial
//! runs (the crate-wide zero-ULP contract).

/// SoA wavefield bank for `k` event lanes over `nglob` mesh points.
pub struct WavefieldBank {
    /// Number of event lanes fused into this bank.
    pub k: usize,
    /// Points in the local mesh slice.
    pub nglob: usize,
    /// Solid displacement, `[(p*3+c)*k + lane]`.
    pub displ: Vec<f32>,
    /// Solid velocity, same layout.
    pub veloc: Vec<f32>,
    /// Solid acceleration / force accumulator, same layout.
    pub accel: Vec<f32>,
    /// Fluid potential χ, `[p*k + lane]`.
    pub chi: Vec<f32>,
    /// ∂χ/∂t, same layout.
    pub chi_dot: Vec<f32>,
    /// ∂²χ/∂t² / fluid force accumulator, same layout.
    pub chi_ddot: Vec<f32>,
}

impl WavefieldBank {
    /// All-zero bank (quiescent initial conditions, like `WaveFields::zeros`).
    pub fn zeros(nglob: usize, k: usize) -> Self {
        assert!((1..=specfem_kernels::MAX_BATCH_LANES).contains(&k));
        Self {
            k,
            nglob,
            displ: vec![0.0; nglob * 3 * k],
            veloc: vec![0.0; nglob * 3 * k],
            accel: vec![0.0; nglob * 3 * k],
            chi: vec![0.0; nglob * k],
            chi_dot: vec![0.0; nglob * k],
            chi_ddot: vec![0.0; nglob * k],
        }
    }

    /// Newmark predictor for all lanes. Identical per-element update to
    /// the single-lane predictor; lane-major layout only changes the
    /// iteration order across independent slots, not any lane's own
    /// operation sequence.
    pub fn predictor(&mut self, dt: f32) {
        let half_dt = 0.5 * dt;
        let dt2_half = 0.5 * dt * dt;
        for ((u, v), a) in self
            .displ
            .iter_mut()
            .zip(self.veloc.iter_mut())
            .zip(self.accel.iter_mut())
        {
            *u += dt * *v + dt2_half * *a;
            *v += half_dt * *a;
            *a = 0.0;
        }
        for ((u, v), a) in self
            .chi
            .iter_mut()
            .zip(self.chi_dot.iter_mut())
            .zip(self.chi_ddot.iter_mut())
        {
            *u += dt * *v + dt2_half * *a;
            *v += half_dt * *a;
            *a = 0.0;
        }
    }

    /// Newmark corrector on the solid fields: divide the assembled force
    /// by the mass matrix and advance velocity a half step, per lane.
    pub fn corrector_solid(&mut self, mass: &[f32], dt: f32) {
        let half_dt = 0.5 * dt;
        let k = self.k;
        for (p, &m) in mass.iter().enumerate() {
            if m > 0.0 {
                let inv = 1.0 / m;
                for c in 0..3 {
                    let o = (p * 3 + c) * k;
                    for lane in 0..k {
                        let a = &mut self.accel[o + lane];
                        *a *= inv;
                        self.veloc[o + lane] += half_dt * *a;
                    }
                }
            }
        }
    }

    /// Newmark corrector on the fluid potential, per lane.
    pub fn corrector_fluid(&mut self, mass: &[f32], dt: f32) {
        let half_dt = 0.5 * dt;
        let k = self.k;
        for (p, &m) in mass.iter().enumerate() {
            if m > 0.0 {
                let inv = 1.0 / m;
                let o = p * k;
                for lane in 0..k {
                    let a = &mut self.chi_ddot[o + lane];
                    *a *= inv;
                    self.chi_dot[o + lane] += half_dt * *a;
                }
            }
        }
    }

    /// Extract one lane of a 3-component field into the single-lane
    /// `[p*3 + c]` layout (for health checks, checkpoints, oracles).
    pub fn lane_vec3(field: &[f32], nglob: usize, k: usize, lane: usize) -> Vec<f32> {
        let mut out = vec![0.0f32; nglob * 3];
        for slot in 0..nglob * 3 {
            out[slot] = field[slot * k + lane];
        }
        out
    }

    /// Extract one lane of a scalar field into the single-lane `[p]` layout.
    pub fn lane_scalar(field: &[f32], nglob: usize, k: usize, lane: usize) -> Vec<f32> {
        let mut out = vec![0.0f32; nglob];
        for p in 0..nglob {
            out[p] = field[p * k + lane];
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    #[allow(clippy::needless_range_loop)]
    fn predictor_and_correctors_match_single_lane_bitwise() {
        // Build a 2-lane bank whose lanes hold two different states, and
        // the same states as two independent single-lane "banks"; every
        // update must agree to the bit.
        let nglob = 7;
        let k = 2;
        let mut bank = WavefieldBank::zeros(nglob, k);
        let mut solo: Vec<WavefieldBank> = (0..k).map(|_| WavefieldBank::zeros(nglob, 1)).collect();

        let mut x = 1.0f32;
        for slot in 0..nglob * 3 {
            for lane in 0..k {
                x = (x * 1.1 + 0.3).sin();
                bank.displ[slot * k + lane] = x;
                solo[lane].displ[slot] = x;
                bank.veloc[slot * k + lane] = x * 0.5;
                solo[lane].veloc[slot] = x * 0.5;
                bank.accel[slot * k + lane] = x * 0.25;
                solo[lane].accel[slot] = x * 0.25;
            }
        }
        for p in 0..nglob {
            for lane in 0..k {
                x = (x * 1.7 + 0.1).cos();
                bank.chi[p * k + lane] = x;
                solo[lane].chi[p] = x;
                bank.chi_dot[p * k + lane] = -x;
                solo[lane].chi_dot[p] = -x;
                bank.chi_ddot[p * k + lane] = 2.0 * x;
                solo[lane].chi_ddot[p] = 2.0 * x;
            }
        }

        let mass: Vec<f32> = (0..nglob)
            .map(|p| if p == 3 { 0.0 } else { 1.0 + p as f32 * 0.37 })
            .collect();
        let dt = 0.125f32;

        bank.predictor(dt);
        bank.corrector_solid(&mass, dt);
        bank.corrector_fluid(&mass, dt);
        for s in solo.iter_mut() {
            s.predictor(dt);
            s.corrector_solid(&mass, dt);
            s.corrector_fluid(&mass, dt);
        }

        for lane in 0..k {
            let d = WavefieldBank::lane_vec3(&bank.displ, nglob, k, lane);
            let v = WavefieldBank::lane_vec3(&bank.veloc, nglob, k, lane);
            let a = WavefieldBank::lane_vec3(&bank.accel, nglob, k, lane);
            for slot in 0..nglob * 3 {
                assert_eq!(d[slot].to_bits(), solo[lane].displ[slot].to_bits());
                assert_eq!(v[slot].to_bits(), solo[lane].veloc[slot].to_bits());
                assert_eq!(a[slot].to_bits(), solo[lane].accel[slot].to_bits());
            }
            let c = WavefieldBank::lane_scalar(&bank.chi, nglob, k, lane);
            let cd = WavefieldBank::lane_scalar(&bank.chi_dot, nglob, k, lane);
            let cdd = WavefieldBank::lane_scalar(&bank.chi_ddot, nglob, k, lane);
            for p in 0..nglob {
                assert_eq!(c[p].to_bits(), solo[lane].chi[p].to_bits());
                assert_eq!(cd[p].to_bits(), solo[lane].chi_dot[p].to_bits());
                assert_eq!(cdd[p].to_bits(), solo[lane].chi_ddot[p].to_bits());
            }
        }
    }
}
