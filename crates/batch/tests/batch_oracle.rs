//! The batched tier's differential oracle — the crate's non-negotiable
//! contract: a K-event batch is **bit-identical** (zero ULP, every
//! kernel variant) to the K serial runs it replaces, on every
//! decomposition, for seismograms *and* final checkpointed fields; and
//! the halo message count per step does not depend on K.
//!
//! The single-lane reference is driven through `RankSolver` manually
//! (`new` → `step` loop → `capture_checkpoint`) so one pass yields both
//! the final fields and the station records, with the solver's default
//! overlapped exchange — so the oracle also transitively rechecks the
//! overlap/blocking equivalence the batched (blocking-only) path leans
//! on.

use specfem_batch::{try_run_batch_partitioned, try_run_batch_serial, BatchRunOptions, EventLane};
use specfem_comm::{tags, Communicator, NetworkProfile, SerialComm, ThreadWorld};
use specfem_kernels::KernelVariant;
use specfem_mesh::stations::global_network;
use specfem_mesh::{GlobalMesh, MeshParams, Partition};
use specfem_model::{builtin_events, Prem, SourceTimeFunction, StfKind};
use specfem_solver::{CheckpointState, RankSolver, SolverConfig, SourceSpec};

#[path = "../../../tests/common/oracle.rs"]
mod oracle;
use oracle::assert_state_matches;

fn prem_mesh() -> GlobalMesh {
    GlobalMesh::build(&MeshParams::new(4, 1), &Prem::isotropic_no_ocean())
}

fn config(variant: KernelVariant, nsteps: usize) -> SolverConfig {
    SolverConfig {
        variant,
        nsteps,
        ..SolverConfig::default()
    }
}

/// Lane i: the i-th builtin CMT event, with a per-lane station set (the
/// sizes differ so per-lane receiver plumbing is actually exercised).
fn lanes(n: usize) -> Vec<EventLane> {
    let events = builtin_events();
    (0..n)
        .map(|i| EventLane {
            name: format!("event-{i}"),
            source: SourceSpec::Cmt {
                event: events[i % events.len()].clone(),
                stf: SourceTimeFunction::new(StfKind::Ricker, 200.0),
            },
            stations: global_network(2 + (i % 2)),
        })
        .collect()
}

/// Single-lane serial reference: manual `RankSolver` loop, returning the
/// final fields + station records in one checkpoint container.
fn serial_state(mesh: &GlobalMesh, cfg: &SolverConfig, lane: &EventLane) -> CheckpointState {
    let cfg = SolverConfig {
        source: lane.source.clone(),
        ..cfg.clone()
    };
    let cfg = &cfg;
    let local = Partition::serial(mesh).extract(mesh, 0);
    let mut comm = SerialComm::new();
    let mut solver = RankSolver::new(local, cfg, &lane.stations, &mut comm);
    for istep in 0..cfg.nsteps {
        solver.step(istep, &mut comm).expect("serial step");
    }
    solver.capture_checkpoint(0, 1, cfg.nsteps)
}

fn run_batch_and_compare(mesh: &GlobalMesh, cfg: &SolverConfig, k: usize) {
    let lanes = lanes(k);
    let out = try_run_batch_serial(
        mesh,
        cfg,
        &lanes,
        &BatchRunOptions {
            capture_final_state: true,
        },
    )
    .expect("batch run");
    assert_eq!(out.k, k);
    assert_eq!(out.lanes.len(), k);
    for (lane, result) in lanes.iter().zip(&out.lanes) {
        let got = result.as_ref().expect("healthy lane");
        assert_eq!(got.name, lane.name);
        let want = serial_state(mesh, cfg, lane);
        assert_state_matches(&lane.name, got.final_state.as_ref().unwrap(), &want);
        // The packaged seismograms restate the records.
        assert_eq!(got.seismograms.len(), lane.stations.len());
        for (seis, (name, rec)) in got.seismograms.iter().zip(&want.records) {
            assert_eq!(&seis.station, name);
            assert_eq!(seis.data.len(), rec.len());
            for (x, y) in seis.data.iter().zip(rec) {
                for c in 0..3 {
                    assert_eq!(x[c].to_bits(), y[c].to_bits());
                }
            }
        }
    }
}

#[test]
fn serial_batch_is_bit_identical_for_k_1_2_4_reference() {
    let mesh = prem_mesh();
    let cfg = config(KernelVariant::Reference, 10);
    for k in [1, 2, 4] {
        run_batch_and_compare(&mesh, &cfg, k);
    }
}

#[test]
fn serial_batch_is_bit_identical_for_simd_and_blas_variants() {
    // Simd/BlasStyle dispatch gathers each lane through the unmodified
    // single-lane kernel, so identity must hold there too.
    let mesh = prem_mesh();
    for variant in [KernelVariant::Simd, KernelVariant::BlasStyle] {
        run_batch_and_compare(&mesh, &config(variant, 8), 2);
    }
}

#[test]
fn serial_batch_is_bit_identical_with_rotation_and_gravity() {
    let mesh = prem_mesh();
    let cfg = SolverConfig {
        rotation: true,
        gravity: true,
        ..config(KernelVariant::Reference, 6)
    };
    run_batch_and_compare(&mesh, &cfg, 2);
}

/// Single-lane distributed reference on an explicit partition: manual
/// per-rank `RankSolver` loops capturing each rank's final state.
fn distributed_states(
    mesh: &GlobalMesh,
    cfg: &SolverConfig,
    lane: &EventLane,
    partition: &Partition,
) -> Vec<CheckpointState> {
    let cfg = &SolverConfig {
        source: lane.source.clone(),
        ..cfg.clone()
    };
    let nranks = partition.num_ranks;
    let raw = ThreadWorld::try_run(nranks, NetworkProfile::loopback(), |mut base| {
        base.set_recv_timeout(cfg.recv_timeout);
        let rank = base.rank();
        let local = partition.extract(mesh, rank);
        let mut solver = RankSolver::new(local, cfg, &lane.stations, &mut base);
        for istep in 0..cfg.nsteps {
            solver.step(istep, &mut base).expect("distributed step");
        }
        solver.capture_checkpoint(rank, nranks, cfg.nsteps)
    });
    raw.into_iter()
        .map(|r| r.unwrap_or_else(|p| panic!("rank {} panicked: {}", p.rank, p.message)))
        .collect()
}

#[test]
fn distributed_batch_is_bit_identical_per_rank_and_per_lane() {
    let mesh = prem_mesh();
    let partition = Partition::compute(&mesh);
    let cfg = config(KernelVariant::Reference, 6);
    let lanes4 = lanes(4);
    let outs = try_run_batch_partitioned(
        &mesh,
        &cfg,
        &lanes4,
        NetworkProfile::loopback(),
        &partition,
        &BatchRunOptions {
            capture_final_state: true,
        },
    );
    assert_eq!(outs.len(), partition.num_ranks);
    for (lane_idx, lane) in lanes4.iter().enumerate() {
        let want = distributed_states(&mesh, &cfg, lane, &partition);
        for (rank, out) in outs.iter().enumerate() {
            let out = out.as_ref().expect("rank ok");
            let got = out.lanes[lane_idx].as_ref().expect("healthy lane");
            assert_state_matches(
                &format!("rank{rank}/{}", lane.name),
                got.final_state.as_ref().unwrap(),
                &want[rank],
            );
        }
    }
}

#[test]
fn halo_message_count_is_independent_of_lane_count() {
    let mesh = prem_mesh();
    let partition = Partition::compute(&mesh);
    let cfg = config(KernelVariant::Reference, 4);
    let opts = BatchRunOptions::default();
    let run = |k: usize| {
        try_run_batch_partitioned(
            &mesh,
            &cfg,
            &lanes(k),
            NetworkProfile::loopback(),
            &partition,
            &opts,
        )
        .into_iter()
        .map(|r| r.expect("rank ok"))
        .collect::<Vec<_>>()
    };
    let k1 = run(1);
    let k2 = run(2);
    let k4 = run(4);

    for rank in 0..partition.num_ranks {
        // Posted message count per step is independent of K...
        assert_eq!(k1[rank].comm.messages_sent, k2[rank].comm.messages_sent);
        assert_eq!(k2[rank].comm.messages_sent, k4[rank].comm.messages_sent);
        for tag in [tags::HALO_BATCHED_SOLID, tags::HALO_BATCHED_FLUID] {
            let (m1, b1) = k1[rank].comm.tag_traffic(tag);
            let (m2, b2) = k2[rank].comm.tag_traffic(tag);
            let (m4, b4) = k4[rank].comm.tag_traffic(tag);
            assert!(m1 > 0, "rank {rank} tag {tag} sent no halo messages");
            assert_eq!(m1, m2, "rank {rank} tag {tag} message count");
            assert_eq!(m2, m4, "rank {rank} tag {tag} message count");
            // ...while the bytes scale exactly linearly with K.
            assert_eq!(b2, 2 * b1, "rank {rank} tag {tag} bytes");
            assert_eq!(b4, 2 * b2, "rank {rank} tag {tag} bytes");
        }
        // The legacy single-lane tags are silent on the batched path.
        for tag in [tags::HALO_SOLID, tags::HALO_FLUID] {
            assert_eq!(k4[rank].comm.tag_traffic(tag).0, 0);
        }
    }
}

#[test]
fn poisoned_lane_fails_alone_and_siblings_stay_bit_identical() {
    let mesh = prem_mesh();
    let cfg = SolverConfig {
        health_every: 2,
        ..config(KernelVariant::Reference, 8)
    };
    let mut batch_lanes = lanes(3);
    // Poison the middle lane: a NaN force nukes its own wavefield at the
    // first source application but must never leak into siblings.
    batch_lanes[1].source = SourceSpec::PointForce {
        position: [0.0, 0.0, 5.8e6],
        force: [f64::NAN, 0.0, 1.0e18],
        stf: SourceTimeFunction::new(StfKind::Ricker, 200.0),
    };
    let out = try_run_batch_serial(
        &mesh,
        &cfg,
        &batch_lanes,
        &BatchRunOptions {
            capture_final_state: true,
        },
    )
    .expect("batch completes despite the poisoned lane");
    let report = out.lanes[1].as_ref().expect_err("lane 1 must trip");
    assert_eq!(report.rank, 0);
    assert!(!report.field.is_empty());
    for lane_idx in [0usize, 2] {
        let got = out.lanes[lane_idx].as_ref().expect("sibling completes");
        let want = serial_state(&mesh, &cfg, &batch_lanes[lane_idx]);
        assert_state_matches(
            &batch_lanes[lane_idx].name,
            got.final_state.as_ref().unwrap(),
            &want,
        );
    }
}

#[test]
fn unsupported_configs_are_rejected() {
    for (cfg, why) in [
        (
            SolverConfig {
                attenuation: true,
                ..SolverConfig::default()
            },
            "attenuation",
        ),
        (
            SolverConfig {
                ocean_load: true,
                ..SolverConfig::default()
            },
            "ocean",
        ),
        (
            SolverConfig {
                energy_every: 5,
                ..SolverConfig::default()
            },
            "energy",
        ),
        (
            SolverConfig {
                snapshot_every: 5,
                ..SolverConfig::default()
            },
            "snapshot",
        ),
        (
            SolverConfig {
                checkpoint_every: 5,
                ..SolverConfig::default()
            },
            "checkpoint",
        ),
        (
            SolverConfig {
                lts_max_rate: 2,
                ..SolverConfig::default()
            },
            "lts",
        ),
        (
            SolverConfig {
                lts_all_rate_one: true,
                ..SolverConfig::default()
            },
            "lts oracle hook",
        ),
    ] {
        let err = specfem_batch::supported(&cfg).expect_err(why);
        assert!(err.contains("batched tier"), "{why}: {err}");
    }
    assert!(specfem_batch::supported(&SolverConfig::default()).is_ok());
}
