//! Ocean-load approximation (paper §3: benchmarks include "the effect of
//! the ocean layer located at the surface of the Earth"): extra water
//! mass on the normal component of free-surface motion.

use specfem_mesh::{GlobalMesh, MeshParams};
use specfem_model::{Prem, SourceTimeFunction, StfKind};
use specfem_solver::{run_serial, SolverConfig, SourceSpec};

fn surface_source_config(nsteps: usize, ocean_load: bool) -> SolverConfig {
    SolverConfig {
        nsteps,
        ocean_load,
        // Vertical force right at the surface: the ocean load acts on the
        // normal (≈ vertical) component there.
        source: SourceSpec::PointForce {
            position: [0.0, 0.0, 6_370_000.0],
            force: [0.0, 0.0, 1.0e17],
            stf: SourceTimeFunction::new(StfKind::Gaussian, 150.0),
        },
        exact_station_location: true,
        ..SolverConfig::default()
    }
}

#[test]
fn ocean_load_reduces_vertical_surface_motion() {
    let params = MeshParams::new(4, 1);
    let mesh = GlobalMesh::build(&params, &Prem::isotropic_no_ocean());
    let station = vec![specfem_mesh::stations::Station {
        name: "POLE".into(),
        lat_deg: 88.0,
        lon_deg: 0.0,
    }];
    let dry = run_serial(&mesh, &surface_source_config(120, false), &station);
    let wet = run_serial(&mesh, &surface_source_config(120, true), &station);
    let peak_z = |r: &specfem_solver::RankResult| {
        r.seismograms[0]
            .data
            .iter()
            .map(|v| v[2].abs())
            .fold(0.0f32, f32::max)
    };
    let pd = peak_z(&dry);
    let pw = peak_z(&wet);
    assert!(pd > 0.0);
    assert!(
        pw < pd,
        "water column must damp vertical surface motion: wet {pw} vs dry {pd}"
    );
    // …but only mildly: 3 km of water vs ~20+ km of rock-equivalent mass.
    assert!(
        pw > 0.5 * pd,
        "ocean effect implausibly strong: {pw} vs {pd}"
    );
}

#[test]
fn ocean_load_runs_stable_with_other_physics() {
    let params = MeshParams::new(4, 1);
    let mesh = GlobalMesh::build(&params, &Prem::isotropic_no_ocean());
    let config = SolverConfig {
        ocean_load: true,
        attenuation: true,
        rotation: true,
        ..surface_source_config(40, true)
    };
    let result = run_serial(&mesh, &config, &[]);
    assert!(result.flops > 0);
}
