//! In-flight health-telemetry integration tests: an injected NaN aborts
//! the step loop with a structured [`specfem_solver::HealthReport`], an
//! injected straggler trips the watchdog's gauges and escalates to typed
//! [`CommError::Stalled`] errors instead of a hang, a killed rank under
//! an armed watchdog still surfaces typed errors, and — the differential
//! guarantee — arming the telemetry leaves the physics bit-identical.

use std::time::Duration;

use specfem_comm::{CommError, FaultPlan, NetworkProfile, SerialComm};
use specfem_mesh::stations::Station;
use specfem_mesh::{GlobalMesh, MeshParams, Partition};
use specfem_model::{Prem, SourceTimeFunction, StfKind};
use specfem_solver::{
    merge_seismograms, run_distributed, try_run_distributed_watched, FtOptions, HealthTrip,
    RankSolver, SolverConfig, SolverError, SourceSpec,
};

fn test_mesh() -> GlobalMesh {
    let params = MeshParams::new(4, 1);
    GlobalMesh::build(&params, &Prem::isotropic_no_ocean())
}

fn test_config(nsteps: usize) -> SolverConfig {
    SolverConfig {
        nsteps,
        source: SourceSpec::PointForce {
            position: [0.0, 0.0, 5.8e6],
            force: [0.0, 0.0, 1.0e18],
            stf: SourceTimeFunction::new(StfKind::Ricker, 200.0),
        },
        ..SolverConfig::default()
    }
}

fn test_stations() -> Vec<Station> {
    vec![
        Station {
            name: "NEAR".into(),
            lat_deg: 60.0,
            lon_deg: 10.0,
        },
        Station {
            name: "FAR".into(),
            lat_deg: -45.0,
            lon_deg: 120.0,
        },
    ]
}

/// Acceptance: a NaN injected into the displacement field aborts the run
/// at the next health sample with a report naming rank, step, field, and
/// the element holding the poisoned grid point.
#[test]
fn injected_nan_aborts_with_a_structured_health_report() {
    let mesh = test_mesh();
    let stations = test_stations();
    let mut config = test_config(8);
    config.health_every = 4; // samples at steps 0 and 4

    let mut comm = SerialComm::new();
    let local = Partition::serial(&mesh).extract(&mesh, 0);
    let mut solver = RankSolver::new(local, &config, &stations, &mut comm);
    let poison = solver.fields.displ.len() / 2;
    solver.fields.displ[poison] = f32::NAN;

    let err = solver
        .try_run(&mut comm, None)
        .expect_err("a poisoned field must abort the run");
    match err {
        SolverError::Health(report) => {
            assert_eq!(report.trip, HealthTrip::Nan);
            assert_eq!(report.rank, 0);
            assert_eq!(report.step, 0, "first sample after the poisoned step");
            assert_eq!(report.field, "displ", "displ is scanned first");
            assert!(
                report.element.is_some(),
                "the trip must be attributed to a local element: {report}"
            );
            let text = report.to_string();
            assert!(text.contains("rank 0"), "{text}");
            assert!(text.contains("step 0"), "{text}");
            assert!(text.contains("NaN"), "{text}");
        }
        other => panic!("expected SolverError::Health, got: {other}"),
    }
}

/// A healthy run with the monitor armed at the same cadence finishes —
/// the monitor only trips on genuine blow-ups.
#[test]
fn healthy_run_passes_the_armed_monitor() {
    let mesh = test_mesh();
    let stations = test_stations();
    let mut config = test_config(8);
    config.health_every = 2;

    let mut comm = SerialComm::new();
    let local = Partition::serial(&mesh).extract(&mesh, 0);
    let solver = RankSolver::new(local, &config, &stations, &mut comm);
    let result = solver
        .try_run(&mut comm, None)
        .expect("a healthy run must not trip the monitor");
    assert_eq!(result.nsteps, 8);
}

/// Acceptance: a rank slowed by an injected per-message delay trips the
/// straggler watchdog — the report carries the skew/stall gauges and the
/// escalation surfaces on other ranks as typed [`CommError::Stalled`]
/// instead of a silent hang.
#[test]
fn delayed_rank_trips_the_watchdog_and_escalates() {
    let mesh = test_mesh();
    let stations = test_stations();
    let mut config = test_config(400); // far more steps than can finish
    config.watchdog_timeout = Some(Duration::from_millis(150));
    // Fallback so a watchdog bug cannot wedge the test suite.
    config.recv_timeout = Some(Duration::from_secs(10));
    // From step 2 on, every message rank 1 sends sleeps 100 ms: with
    // several halo messages per step its heartbeat age blows far past
    // the 150 ms stall threshold.
    config.fault_plan = Some(FaultPlan::new(0xC0FF_EE00).delay(1, 2, 1000, 100_000));

    let (results, report) = try_run_distributed_watched(
        &mesh,
        &config,
        &stations,
        NetworkProfile::loopback(),
        FtOptions::default(),
    );
    let report = report.expect("an armed watchdog must produce a report");

    assert!(report.stalled(), "{report:?}");
    assert!(report.polls > 0);
    assert!(report
        .metrics
        .gauges
        .contains_key("watchdog.max_skew_steps"));
    assert!(report.metrics.gauges["watchdog.stalled_ranks"] >= 1.0);
    for rank in 0..results.len() {
        let key = format!("watchdog.rank{rank}.last_step");
        assert!(report.metrics.gauges.contains_key(key.as_str()), "{key}");
    }

    // Escalation aborts the world with typed errors — nobody finishes
    // 400 delayed steps and nobody panics.
    assert!(results.iter().all(|r| r.is_err()), "{report:?}");
    let stalled = results
        .iter()
        .filter(|r| matches!(r, Err(SolverError::Comm(CommError::Stalled { .. }))))
        .count();
    assert!(
        stalled >= 1,
        "at least one rank must surface the typed stall escalation"
    );
    assert!(
        !results
            .iter()
            .any(|r| matches!(r, Err(SolverError::RankPanicked { .. }))),
        "escalation must be typed errors, not panics"
    );
}

/// Acceptance: a rank killed mid-run under an armed watchdog surfaces as
/// typed [`CommError`]s on every rank — the world tears down instead of
/// hanging, and the report records where the dead rank stopped.
#[test]
fn killed_rank_surfaces_typed_errors_without_hanging() {
    let mesh = test_mesh();
    let stations = test_stations();
    let mut config = test_config(60);
    config.watchdog_timeout = Some(Duration::from_millis(250));
    config.recv_timeout = Some(Duration::from_secs(2));
    config.fault_plan = Some(FaultPlan::new(0xDEAD_0002).kill(2, 5));

    let (results, report) = try_run_distributed_watched(
        &mesh,
        &config,
        &stations,
        NetworkProfile::loopback(),
        FtOptions::default(),
    );
    let report = report.expect("an armed watchdog must produce a report");

    assert!(results.iter().all(|r| r.is_err()), "{report:?}");
    for r in &results {
        match r {
            Err(SolverError::Comm(_)) => {}
            Err(other) => panic!("expected typed comm errors, got: {other}"),
            Ok(r) => panic!("rank {} must not finish a killed run", r.rank),
        }
    }
    // The dead rank's final heartbeat precedes the kill step.
    if let Some(last) = report.last_steps[2] {
        assert!(last <= 5, "rank 2 was killed at step 5, beat {last}");
    }
}

/// The differential guarantee: arming the health monitor and the
/// watchdog on a healthy run changes nothing — seismograms are
/// bit-identical to the telemetry-off run, so the monitors are provably
/// read-only observers of the physics.
#[test]
fn armed_telemetry_is_bit_identical_to_disabled() {
    let mesh = test_mesh();
    let stations = test_stations();
    let nsteps = 12;

    // Telemetry off: health_every = 0, no watchdog (the pre-PR path).
    let baseline = run_distributed(
        &mesh,
        &test_config(nsteps),
        &stations,
        NetworkProfile::loopback(),
    );
    let baseline = merge_seismograms(&baseline);

    // Telemetry armed: sampling every 3 steps plus a watchdog generous
    // enough never to fire on a healthy run.
    let mut armed_config = test_config(nsteps);
    armed_config.health_every = 3;
    armed_config.watchdog_timeout = Some(Duration::from_secs(30));
    let (armed, report) = try_run_distributed_watched(
        &mesh,
        &armed_config,
        &stations,
        NetworkProfile::loopback(),
        FtOptions::default(),
    );
    let report = report.expect("watchdog armed");
    assert!(!report.stalled(), "{report:?}");
    let armed: Vec<_> = armed
        .into_iter()
        .map(|r| r.expect("healthy telemetry run must finish"))
        .collect();
    let armed = merge_seismograms(&armed);

    assert_eq!(baseline.len(), armed.len());
    for (a, b) in baseline.iter().zip(&armed) {
        assert_eq!(a.station, b.station);
        assert_eq!(a.data.len(), b.data.len());
        for (va, vb) in a.data.iter().zip(&b.data) {
            for c in 0..3 {
                assert_eq!(
                    va[c].to_bits(),
                    vb[c].to_bits(),
                    "station {}: telemetry must be bit-transparent ({} vs {})",
                    a.station,
                    va[c],
                    vb[c]
                );
            }
        }
    }
}
