//! Fault-tolerance integration tests: checkpoint codec round-trips under
//! random states, and a killed-then-resumed distributed run reproduces the
//! uninterrupted run bit-for-bit.

use std::collections::HashMap;
use std::sync::{Arc, Mutex};

use proptest::prelude::*;
use specfem_comm::{FaultPlan, NetworkProfile};
use specfem_mesh::stations::Station;
use specfem_mesh::{GlobalMesh, LocalMesh, MeshParams};
use specfem_model::{Prem, SourceTimeFunction, StfKind};
use specfem_solver::checkpoint::{CheckpointError, CheckpointSink, CheckpointState};
use specfem_solver::timeloop::merge_seismograms;
use specfem_solver::{
    run_distributed, try_run_distributed, FtOptions, SolverConfig, SolverError, SourceSpec,
};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Arbitrary checkpoint states survive encode → decode losslessly
    /// (bit-level: f32/f64 payloads compared through their bit patterns).
    #[test]
    fn checkpoint_roundtrip_is_lossless(
        nglob in 1usize..40,
        rank in 0usize..8,
        next_step in 0usize..100_000,
        dt in 1e-3f64..10.0,
        seed_vals in prop::collection::vec(-1e12f32..1e12, 1..40),
        with_atten in any::<bool>(),
        flops in any::<u64>(),
    ) {
        let v = |scale: f32, len: usize| -> Vec<f32> {
            (0..len)
                .map(|i| seed_vals[i % seed_vals.len()] * scale + i as f32)
                .collect()
        };
        let state = CheckpointState {
            rank,
            nranks: 8,
            next_step,
            dt,
            nglob,
            global_ids: (0..nglob as u32).rev().collect(),
            element_global: vec![nglob as u32, 0],
            displ: v(1.0, nglob * 3),
            veloc: v(0.5, nglob * 3),
            accel: v(-2.0, nglob * 3),
            chi: v(3.0, nglob),
            chi_dot: v(-0.25, nglob),
            chi_ddot: v(7.0, nglob),
            atten_memory: with_atten.then(|| v(0.125, nglob * 5)),
            records: vec![
                ("AAK".to_string(), vec![[1.0, -2.0, 3.5]; 4]),
                ("BORG".to_string(), vec![[0.0, f32::MIN_POSITIVE, -0.0]; 2]),
            ],
            energy: vec![(0, 1.5, -2.5), (10, 3.25, 4.75)],
            snapshots: vec![v(0.0625, nglob * 3)],
            flops,
        };
        let decoded = CheckpointState::decode(&state.encode())
            .expect("decode of a fresh encode");
        prop_assert_eq!(decoded.rank, state.rank);
        prop_assert_eq!(decoded.next_step, state.next_step);
        prop_assert_eq!(decoded.dt.to_bits(), state.dt.to_bits());
        let bits = |x: &[f32]| x.iter().map(|f| f.to_bits()).collect::<Vec<_>>();
        prop_assert_eq!(bits(&decoded.displ), bits(&state.displ));
        prop_assert_eq!(bits(&decoded.veloc), bits(&state.veloc));
        prop_assert_eq!(bits(&decoded.accel), bits(&state.accel));
        prop_assert_eq!(bits(&decoded.chi), bits(&state.chi));
        prop_assert_eq!(decoded.atten_memory.is_some(), with_atten);
        prop_assert_eq!(decoded.records.len(), 2);
        prop_assert_eq!(decoded.records[1].1[0][1].to_bits(),
            f32::MIN_POSITIVE.to_bits());
        prop_assert_eq!(decoded.energy, state.energy);
        prop_assert_eq!(decoded.flops, state.flops);
        prop_assert_eq!(decoded.global_ids, state.global_ids);
        prop_assert_eq!(decoded.element_global, state.element_global);
    }

    /// Flipping any single byte of an encoded checkpoint is detected.
    #[test]
    fn checkpoint_corruption_never_decodes(
        flip_pos in 0.0f64..1.0,
        flip_mask in 1u8..=255,
    ) {
        let state = CheckpointState {
            rank: 1,
            nranks: 4,
            next_step: 50,
            dt: 0.125,
            nglob: 3,
            global_ids: vec![2, 0, 1],
            element_global: vec![4],
            displ: vec![1.0; 9],
            veloc: vec![2.0; 9],
            accel: vec![3.0; 9],
            chi: vec![4.0; 3],
            chi_dot: vec![5.0; 3],
            chi_ddot: vec![6.0; 3],
            atten_memory: Some(vec![7.0; 15]),
            records: vec![("X".to_string(), vec![[1.0, 2.0, 3.0]])],
            energy: vec![(5, 1.0, 2.0)],
            snapshots: vec![],
            flops: 99,
        };
        let mut bytes = state.encode();
        let pos = ((bytes.len() - 1) as f64 * flip_pos) as usize;
        bytes[pos] ^= flip_mask;
        prop_assert!(CheckpointState::decode(&bytes).is_err(),
            "flipped byte {} must fail the CRC or a structural check", pos);
    }
}

/// In-memory per-rank checkpoint store shared across the thread world —
/// the `CheckpointStore` shape without touching disk.
#[derive(Clone, Default)]
struct SharedStore {
    states: Arc<Mutex<HashMap<(usize, usize), CheckpointState>>>,
}

struct SharedSink {
    rank: usize,
    store: SharedStore,
}

impl CheckpointSink for SharedSink {
    fn write(&mut self, state: &CheckpointState) -> Result<(), CheckpointError> {
        self.store
            .states
            .lock()
            .unwrap()
            .insert((state.next_step, self.rank), state.clone());
        Ok(())
    }
}

impl SharedStore {
    /// Newest step all `nranks` ranks have written.
    fn latest_complete(&self, nranks: usize) -> Option<usize> {
        let states = self.states.lock().unwrap();
        let mut steps: Vec<usize> = states.keys().map(|&(s, _)| s).collect();
        steps.sort_unstable();
        steps.dedup();
        steps
            .into_iter()
            .rev()
            .find(|&s| (0..nranks).all(|r| states.contains_key(&(s, r))))
    }

    fn load(&self, step: usize, rank: usize) -> Option<CheckpointState> {
        self.states.lock().unwrap().get(&(step, rank)).cloned()
    }
}

fn test_mesh() -> GlobalMesh {
    let params = MeshParams::new(4, 1);
    GlobalMesh::build(&params, &Prem::isotropic_no_ocean())
}

fn test_config(nsteps: usize) -> SolverConfig {
    SolverConfig {
        nsteps,
        attenuation: true, // exercise the memory-variable restore path
        source: SourceSpec::PointForce {
            position: [0.0, 0.0, 5.8e6],
            force: [0.0, 0.0, 1.0e18],
            stf: SourceTimeFunction::new(StfKind::Ricker, 200.0),
        },
        ..SolverConfig::default()
    }
}

fn test_stations() -> Vec<Station> {
    vec![
        Station {
            name: "NEAR".into(),
            lat_deg: 60.0,
            lon_deg: 10.0,
        },
        Station {
            name: "FAR".into(),
            lat_deg: -45.0,
            lon_deg: 120.0,
        },
    ]
}

/// The acceptance test: a run killed at step 17 by a deterministic fault
/// plan, restarted from the last complete checkpoint, must reproduce the
/// uninterrupted run's seismograms bit-for-bit. The reference runs the
/// *blocking* halo path while the killed and resumed runs use the default
/// overlapped path — so the comparison also proves a checkpointed job
/// retried through the overlapped path reproduces the blocking oracle.
#[test]
fn killed_run_resumes_bit_identical() {
    let mesh = test_mesh();
    let stations = test_stations();
    let nranks = 6; // 6 cubed-sphere chunks at NPROC_XI = 1
    let nsteps = 30;

    // Reference: uninterrupted, blocking halo exchange (the oracle).
    let mut reference_config = test_config(nsteps);
    reference_config.overlap = false;
    let reference = run_distributed(
        &mesh,
        &reference_config,
        &stations,
        NetworkProfile::loopback(),
    );
    let reference = merge_seismograms(&reference);

    // Crash run: checkpoint every 10 steps, rank 2 dies at step 17.
    let store = SharedStore::default();
    let mut config = test_config(nsteps);
    config.checkpoint_every = 10;
    config.recv_timeout = Some(std::time::Duration::from_secs(2));
    config.fault_plan = Some(FaultPlan::new(0xDEAD_BEEF).kill(2, 17));
    let sink_store = store.clone();
    let sink_factory = move |rank: usize| -> Box<dyn CheckpointSink> {
        Box::new(SharedSink {
            rank,
            store: sink_store.clone(),
        })
    };
    let results = try_run_distributed(
        &mesh,
        &config,
        &stations,
        NetworkProfile::loopback(),
        FtOptions {
            sink_factory: Some(&sink_factory),
            restore: None,
            flight: None,
        },
    );
    assert!(
        results.iter().any(|r| r.is_err()),
        "the fault plan must kill the run"
    );
    let died = results.iter().filter(|r| r.is_err()).count();
    assert!(died >= 1, "at least the dead rank must error, got {died}");
    if let Some(r) = results.iter().flatten().next() {
        panic!(
            "no rank should finish a 30-step run killed at 17: {:?}",
            r.rank
        );
    }

    // The last complete checkpoint is step 10 (death at 17 precedes the
    // step-20 checkpoint everywhere, because the halo exchange couples all
    // ranks every step).
    assert_eq!(store.latest_complete(nranks), Some(10));

    // Resume: same mesh + config, no fault plan, restore from the store.
    let mut resume_config = test_config(nsteps);
    resume_config.checkpoint_every = 10;
    let restore_store = store.clone();
    let restore =
        move |rank: usize, _mesh: &LocalMesh| -> Result<Option<CheckpointState>, CheckpointError> {
            let step = restore_store
                .latest_complete(nranks)
                .ok_or_else(|| CheckpointError("no complete checkpoint".into()))?;
            Ok(Some(restore_store.load(step, rank).ok_or_else(|| {
                CheckpointError(format!("missing rank {rank} at step {step}"))
            })?))
        };
    let sink_store = store.clone();
    let sink_factory = move |rank: usize| -> Box<dyn CheckpointSink> {
        Box::new(SharedSink {
            rank,
            store: sink_store.clone(),
        })
    };
    let resumed = try_run_distributed(
        &mesh,
        &resume_config,
        &stations,
        NetworkProfile::loopback(),
        FtOptions {
            sink_factory: Some(&sink_factory),
            restore: Some(&restore),
            flight: None,
        },
    );
    let resumed: Vec<_> = resumed
        .into_iter()
        .map(|r| r.expect("resumed rank must finish"))
        .collect();
    let resumed = merge_seismograms(&resumed);

    assert_eq!(reference.len(), resumed.len());
    for (a, b) in reference.iter().zip(&resumed) {
        assert_eq!(a.station, b.station);
        assert_eq!(a.data.len(), b.data.len());
        for (va, vb) in a.data.iter().zip(&b.data) {
            for c in 0..3 {
                assert_eq!(
                    va[c].to_bits(),
                    vb[c].to_bits(),
                    "station {} must match bit-for-bit ({} vs {})",
                    a.station,
                    va[c],
                    vb[c]
                );
            }
        }
    }

    // And the resumed run kept checkpointing past the restore point.
    assert_eq!(store.latest_complete(nranks), Some(30));
}

/// A mismatched world (different rank's checkpoint) is rejected with a
/// typed error, never silently restored.
#[test]
fn mismatched_checkpoint_is_rejected() {
    let mesh = test_mesh();
    let mut config = test_config(5);
    config.checkpoint_every = 0;
    let restore = move |_rank: usize,
                        _mesh: &LocalMesh|
          -> Result<Option<CheckpointState>, CheckpointError> {
        // Hand every rank a checkpoint claiming to be rank 0's.
        Ok(Some(CheckpointState {
            rank: 0,
            nranks: 6,
            next_step: 2,
            dt: 1.0, // wrong dt too
            nglob: 1,
            global_ids: vec![0],
            element_global: vec![0],
            displ: vec![0.0; 3],
            veloc: vec![0.0; 3],
            accel: vec![0.0; 3],
            chi: vec![0.0],
            chi_dot: vec![0.0],
            chi_ddot: vec![0.0],
            atten_memory: None,
            records: vec![],
            energy: vec![],
            snapshots: vec![],
            flops: 0,
        }))
    };
    let results = try_run_distributed(
        &mesh,
        &config,
        &[],
        NetworkProfile::loopback(),
        FtOptions {
            sink_factory: None,
            restore: Some(&restore),
            flight: None,
        },
    );
    for r in results {
        match r {
            Err(SolverError::Checkpoint(e)) => {
                assert!(e.0.contains("mismatch"), "unexpected message: {e}")
            }
            other => panic!("expected a checkpoint mismatch error, got {other:?}"),
        }
    }
}
