//! Regional (single-chunk) simulations with Stacey absorbing boundaries —
//! the "regional" mode of the mesher (paper §3) plus the artificial
//! absorbing boundary Γ of Figure 1.

use specfem_comm::SerialComm;
use specfem_mesh::{GlobalMesh, MeshParams, Partition};
use specfem_model::{Prem, SourceTimeFunction, StfKind, CMB_RADIUS_M, EARTH_RADIUS_M};
use specfem_solver::absorbing::AbsorbingSurface;
use specfem_solver::{RankSolver, SolverConfig, SourceSpec};

fn regional_mesh(nex: usize, r_min: f64) -> GlobalMesh {
    let params = MeshParams::regional(nex, 1, r_min);
    GlobalMesh::build(&params, &Prem::isotropic_no_ocean())
}

#[test]
fn regional_mesh_has_expected_structure() {
    let r_min = 5_701_000.0; // 670-km discontinuity
    let mesh = regional_mesh(6, r_min);
    let plan = &mesh.layer_plan;
    assert_eq!(
        mesh.nspec,
        GlobalMesh::expected_nspec(&mesh.params, plan),
        "regional element count"
    );
    // All solid, no cube.
    assert!(mesh
        .region
        .iter()
        .all(|r| *r == specfem_mesh::MeshRegion::CrustMantle));
    // Radii span [r_min, surface].
    let mut r_lo = f64::INFINITY;
    let mut r_hi: f64 = 0.0;
    for p in &mesh.coords {
        let r = (p[0] * p[0] + p[1] * p[1] + p[2] * p[2]).sqrt();
        r_lo = r_lo.min(r);
        r_hi = r_hi.max(r);
    }
    assert!((r_lo - r_min).abs() < 1.0);
    assert!((r_hi - EARTH_RADIUS_M).abs() < 1.0);
    // One chunk: ~1/4 of the sphere's solid angle → all z > 0 at surface
    // centre direction... cheap check: every point has z above the cone of
    // the +Z chunk extent (z ≥ r/√3 − ε at the corners).
    for p in mesh.coords.iter().step_by(101) {
        let r = (p[0] * p[0] + p[1] * p[1] + p[2] * p[2]).sqrt();
        assert!(p[2] >= r / 3.0f64.sqrt() - 1.0, "point outside +Z chunk");
    }
}

#[test]
fn absorbing_surface_covers_sides_and_bottom_only() {
    let r_min = 5_701_000.0;
    let mesh = regional_mesh(4, r_min);
    let local = Partition::serial(&mesh).extract(&mesh, 0);
    let surf = AbsorbingSurface::build(&local, EARTH_RADIUS_M);
    assert!(!surf.is_empty(), "regional mesh must have absorbing faces");
    // Area: bottom cap (quarter-ish sphere at r_min: 4πr²/6) + 4 sides.
    let bottom = 4.0 * std::f64::consts::PI * r_min * r_min / 6.0;
    let area = surf.total_area();
    assert!(
        area > bottom && area < 4.0 * bottom,
        "absorbing area {area:.3e} vs bottom cap {bottom:.3e}"
    );
    // The free surface itself must not be absorbed: points *at* the outer
    // radius may only be the top edges of side faces (a small minority),
    // never whole faces.
    let at_surface = surf
        .points
        .iter()
        .filter(|ap| {
            let p = local.coords[ap.point as usize];
            let r = (p[0] * p[0] + p[1] * p[1] + p[2] * p[2]).sqrt();
            r >= EARTH_RADIUS_M - 1.0
        })
        .count();
    assert!(
        at_surface * 4 < surf.points.len(),
        "{at_surface} of {} absorbing points on the free surface — the free \
         surface is being absorbed",
        surf.points.len()
    );
}

#[test]
fn global_mesh_has_no_absorbing_surface() {
    let params = MeshParams::new(4, 1);
    let mesh = GlobalMesh::build(&params, &Prem::isotropic_no_ocean());
    let local = Partition::serial(&mesh).extract(&mesh, 0);
    let surf = AbsorbingSurface::build(&local, EARTH_RADIUS_M);
    assert!(
        surf.is_empty(),
        "the globe is closed: {} spurious absorbing points",
        surf.points.len()
    );
}

#[test]
fn absorbing_boundaries_drain_energy_from_regional_runs() {
    // Same regional run with and without the Stacey condition: once the
    // wave hits the bottom boundary, the absorbing run must hold less
    // energy (the reflecting run keeps it all, minus roundoff).
    let r_min = 5_701_000.0;
    let mesh = regional_mesh(4, r_min);
    let run = |absorb: bool| -> Vec<f64> {
        let local = Partition::serial(&mesh).extract(&mesh, 0);
        let config = SolverConfig {
            nsteps: 600,
            energy_every: 50,
            source: SourceSpec::None,
            ..SolverConfig::default()
        };
        let mut comm = SerialComm::new();
        let mut solver = RankSolver::new(local, &config, &[], &mut comm);
        if !absorb {
            solver.disable_absorbing_for_tests();
        }
        // Downward-travelling bump in the middle of the chunk.
        solver.set_initial_displacement(|p| {
            let dz = (p[2] - 6.1e6) / 2.0e5;
            let dx = p[0] / 4.0e5;
            let dy = p[1] / 4.0e5;
            let g = (-(dx * dx + dy * dy + dz * dz)).exp();
            [0.0, 0.0, 50.0 * g]
        });
        solver
            .run(&mut comm)
            .energy
            .iter()
            .map(|(_, k, p)| k + p)
            .collect()
    };
    let absorbed = run(true);
    let reflected = run(false);
    let last = absorbed.len() - 1;
    assert!(
        absorbed[last] < 0.7 * reflected[last],
        "absorbing {} vs reflecting {} at end",
        absorbed[last],
        reflected[last]
    );
}

#[test]
fn regional_run_with_source_is_stable() {
    let mesh = regional_mesh(4, CMB_RADIUS_M);
    let local = Partition::serial(&mesh).extract(&mesh, 0);
    let config = SolverConfig {
        nsteps: 200,
        source: SourceSpec::PointForce {
            position: [0.0, 0.0, 6.0e6],
            force: [0.0, 0.0, 1.0e17],
            stf: SourceTimeFunction::new(StfKind::Ricker, 100.0),
        },
        ..SolverConfig::default()
    };
    let mut comm = SerialComm::new();
    let solver = RankSolver::new(local, &config, &[], &mut comm);
    let result = solver.run(&mut comm);
    assert!(result.flops > 0);
    // Field stays finite.
    assert!(result.elapsed_s.is_finite());
}

#[test]
#[should_panic(expected = "above the fluid outer core")]
fn regional_below_cmb_is_rejected() {
    let _ = MeshParams::regional(4, 1, 2_000_000.0);
}
