//! Absorbing boundary conditions for regional simulations.
//!
//! Paper Figure 1: "An artificial absorbing boundary Γ is introduced if
//! the physical model is not of finite size." Regional (single-chunk)
//! meshes truncate the Earth at the chunk sides and at depth; the classic
//! first-order Stacey condition absorbs outgoing waves there by applying
//! the traction `t = −ρ [v_p (v·n̂) n̂ + v_s (v − (v·n̂) n̂)]` on the
//! artificial surface.
//!
//! Boundary faces are detected *topologically*: an element face is on the
//! domain boundary iff its interior points belong to exactly one element
//! and to no inter-rank interface. The free surface (points at the model's
//! outer radius) is excluded — a free surface is the natural boundary
//! condition of the weak form and needs no term.

use specfem_mesh::LocalMesh;

use crate::assemble::WaveFields;

/// One absorbing-boundary quadrature point.
#[derive(Debug, Clone, Copy)]
pub struct AbsorbingPoint {
    /// Local point id.
    pub point: u32,
    /// Outward unit normal.
    pub normal: [f32; 3],
    /// Face Jacobian × quadrature weight (m²).
    pub weight: f32,
    /// ρ·v_p at the point (kg·m⁻²·s⁻¹).
    pub rho_vp: f32,
    /// ρ·v_s at the point.
    pub rho_vs: f32,
}

/// All absorbing quadrature points of one rank.
#[derive(Debug, Clone, Default)]
pub struct AbsorbingSurface {
    /// Quadrature points (shared edge points appear once per face).
    pub points: Vec<AbsorbingPoint>,
}

/// The six faces of the reference cube: (fixed index, fixed value,
/// outward sign of the corresponding reference direction).
const FACES: [(usize, usize); 6] = [
    (0, 0), // ξ = −1
    (0, 1), // ξ = +1
    (1, 0), // η = −1
    (1, 1), // η = +1
    (2, 0), // γ = −1
    (2, 1), // γ = +1
];

impl AbsorbingSurface {
    /// Detect artificial-boundary faces of `mesh` and build the Stacey
    /// quadrature table. `surface_radius` identifies the free surface to
    /// exclude (pass the model's outer radius).
    pub fn build(mesh: &LocalMesh, surface_radius: f64) -> Self {
        let np = mesh.basis.npoints();
        let n3 = mesh.points_per_element();
        let h = &mesh.basis.hprime;
        let w = &mesh.basis.weights;

        // How many elements reference each local point, and whether the
        // point sits on an inter-rank interface.
        let mut refs = vec![0u8; mesh.nglob];
        for e in 0..mesh.nspec {
            let mut seen: Vec<u32> = mesh.ibool[e * n3..(e + 1) * n3].to_vec();
            seen.sort_unstable();
            seen.dedup();
            for p in seen {
                refs[p as usize] = refs[p as usize].saturating_add(1);
            }
        }
        let mut in_halo = vec![false; mesh.nglob];
        for n in &mesh.halo.neighbors {
            for &p in &n.points {
                in_halo[p as usize] = true;
            }
        }

        let face_point = |i: usize, j: usize, fixed: usize, side: usize| -> (usize, usize, usize) {
            let v = if side == 0 { 0 } else { np - 1 };
            match fixed {
                0 => (v, i, j),
                1 => (i, v, j),
                _ => (i, j, v),
            }
        };

        let mut points = Vec::new();
        for e in 0..mesh.nspec {
            let nodes = mesh.element_nodes(e);
            let at = |i: usize, j: usize, k: usize| nodes[(k * np + j) * np + i];
            for &(fixed, side) in &FACES {
                // Face-interior witness point: if it belongs to exactly one
                // element and no halo, the face is a true domain boundary.
                let (wi, wj, wk) = face_point(np / 2, np / 2, fixed, side);
                let witness = mesh.ibool[e * n3 + (wk * np + wj) * np + wi] as usize;
                if refs[witness] != 1 || in_halo[witness] {
                    continue;
                }
                // Exclude the free surface.
                let wp = at(wi, wj, wk);
                let wr = (wp[0] * wp[0] + wp[1] * wp[1] + wp[2] * wp[2]).sqrt();
                if (wr - surface_radius).abs() < 1.0e3 {
                    continue;
                }
                // Quadrature points of the face.
                for j in 0..np {
                    for i in 0..np {
                        let (pi, pj, pk) = face_point(i, j, fixed, side);
                        // Tangents along the two in-face reference
                        // directions (ξ-derivatives sum over the i index,
                        // η over j, γ over k).
                        let mut t1 = [0.0f64; 3];
                        let mut t2 = [0.0f64; 3];
                        for m in 0..np {
                            let (pa, h1, pb, h2) = match fixed {
                                // ξ fixed → tangents ∂x/∂η and ∂x/∂γ.
                                0 => (at(pi, m, pk), h[pj * np + m], at(pi, pj, m), h[pk * np + m]),
                                // η fixed → ∂x/∂ξ and ∂x/∂γ.
                                1 => (at(m, pj, pk), h[pi * np + m], at(pi, pj, m), h[pk * np + m]),
                                // γ fixed → ∂x/∂ξ and ∂x/∂η.
                                _ => (at(m, pj, pk), h[pi * np + m], at(pi, m, pk), h[pj * np + m]),
                            };
                            for c in 0..3 {
                                t1[c] += h1 * pa[c];
                                t2[c] += h2 * pb[c];
                            }
                        }
                        let mut n = [
                            t1[1] * t2[2] - t1[2] * t2[1],
                            t1[2] * t2[0] - t1[0] * t2[2],
                            t1[0] * t2[1] - t1[1] * t2[0],
                        ];
                        let area = (n[0] * n[0] + n[1] * n[1] + n[2] * n[2]).sqrt();
                        if area == 0.0 {
                            continue;
                        }
                        for c in &mut n {
                            *c /= area;
                        }
                        // Orient outward: away from the element centre.
                        let centre = at(np / 2, np / 2, np / 2);
                        let fp = at(pi, pj, pk);
                        let dir = [fp[0] - centre[0], fp[1] - centre[1], fp[2] - centre[2]];
                        if n[0] * dir[0] + n[1] * dir[1] + n[2] * dir[2] < 0.0 {
                            for c in &mut n {
                                *c = -*c;
                            }
                        }
                        let (qi, qj) = (i, j);
                        let weight = (w[qi] * w[qj]) * area;
                        let idx = e * n3 + (pk * np + pj) * np + pi;
                        let rho = mesh.rho[idx];
                        let vp = ((mesh.kappa[idx] + 4.0 / 3.0 * mesh.mu[idx]) / rho).sqrt();
                        let vs = (mesh.mu[idx] / rho).sqrt();
                        points.push(AbsorbingPoint {
                            point: mesh.ibool[idx],
                            normal: [n[0] as f32, n[1] as f32, n[2] as f32],
                            weight: weight as f32,
                            rho_vp: rho * vp,
                            rho_vs: rho * vs,
                        });
                    }
                }
            }
        }
        Self { points }
    }

    /// Apply the Stacey traction using the current (predicted) velocity:
    /// `accel −= w·ρ[v_p (v·n̂)n̂ + v_s v_t]`.
    pub fn apply(&self, fields: &mut WaveFields) {
        for ap in &self.points {
            let p = ap.point as usize;
            let v = [
                fields.veloc[p * 3],
                fields.veloc[p * 3 + 1],
                fields.veloc[p * 3 + 2],
            ];
            let vn = v[0] * ap.normal[0] + v[1] * ap.normal[1] + v[2] * ap.normal[2];
            for c in 0..3 {
                let vt = v[c] - vn * ap.normal[c];
                let traction = ap.rho_vp * vn * ap.normal[c] + ap.rho_vs * vt;
                fields.accel[p * 3 + c] -= ap.weight * traction;
            }
        }
    }

    /// Total absorbing area (m²) — diagnostics.
    pub fn total_area(&self) -> f64 {
        self.points.iter().map(|p| p.weight as f64).sum()
    }

    /// True when the mesh has no artificial boundary (global runs).
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// All boundary faces *including* the free surface (pass-through
    /// builder used by the ocean-load setup, which needs the free-surface
    /// quadrature weights and normals).
    pub fn build_including_free_surface(mesh: &LocalMesh) -> Self {
        // An excluded-surface radius no real point matches.
        Self::build(mesh, f64::MIN)
    }
}
