//! Earthquake sources and seismogram receivers.
//!
//! The earthquake is the point moment tensor of paper eq. (3): in the weak
//! form its contribution to the test function `w` is `M : ∇w(x_s) S(t)`, so
//! the discrete force on element node `p`, component `c`, is
//! `F_pc = S(t) Σ_b M_cb ∂φ_p/∂x_b (ξ_s)` — SPECFEM's "source array".
//! Receivers read the wave field back out at located stations, either
//! through Lagrange interpolation at the exact reference coordinates or at
//! the nearest grid point (paper §4.4-2).

use specfem_gll::lagrange::{lagrange_deriv_weights_at, lagrange_weights_at};
use specfem_mesh::stations::{
    locate_point_exact, locate_station_exact, locate_station_nearest, Station, StationLocation,
};
use specfem_mesh::LocalMesh;
use specfem_model::{CmtSource, SourceTimeFunction, StfKind};

use crate::assemble::WaveFields;

/// What shakes the Earth.
#[derive(Debug, Clone)]
pub enum SourceSpec {
    /// No source (free oscillation of initial conditions).
    None,
    /// CMT moment-tensor point source.
    Cmt {
        event: CmtSource,
        stf: SourceTimeFunction,
    },
    /// Simple point force (validation runs).
    PointForce {
        /// Position (m, Cartesian).
        position: [f64; 3],
        /// Force direction and magnitude (N).
        force: [f64; 3],
        stf: SourceTimeFunction,
    },
    /// A point force driven by a sampled time series — the adjoint source
    /// (the time-reversed seismogram injected at the receiver, ref [13]).
    Trace {
        /// Position (m, Cartesian).
        position: [f64; 3],
        /// Force samples (N) at `trace_dt` spacing.
        trace: Vec<[f32; 3]>,
        /// Sample spacing (s).
        trace_dt: f64,
    },
}

impl Default for SourceSpec {
    fn default() -> Self {
        SourceSpec::PointForce {
            position: [0.0, 0.0, 6_000_000.0],
            force: [0.0, 0.0, 1.0e15],
            stf: SourceTimeFunction::new(StfKind::Ricker, 60.0),
        }
    }
}

/// Precomputed nodal force coefficients of the source on its element.
#[derive(Debug, Clone, Default)]
pub struct SourceArrays {
    /// `(local point, force per unit S(t))` — ready to add each step.
    pub entries: Vec<(u32, [f32; 3])>,
    /// The source-time function.
    pub stf: Option<SourceTimeFunction>,
    /// Sampled drive: `(per-node interpolation weights, samples, dt)` for
    /// the adjoint/trace source.
    #[allow(clippy::type_complexity)]
    pub trace: Option<(Vec<(u32, f32)>, Vec<[f32; 3]>, f64)>,
    /// Distance between requested and located source position (m).
    pub location_error_m: f64,
}

impl SourceArrays {
    /// Build the source arrays on this rank's mesh. Every rank calls this;
    /// whether *this* rank applies the source is decided collectively (see
    /// [`SourceArrays::locate_cost`]) — the rank with the best fit wins.
    pub fn build(mesh: &LocalMesh, spec: &SourceSpec) -> SourceArrays {
        match spec {
            SourceSpec::None => SourceArrays::default(),
            SourceSpec::PointForce {
                position,
                force,
                stf,
            } => {
                let loc = locate_point_exact(mesh, *position);
                let n3 = mesh.points_per_element();
                let np = mesh.basis.npoints();
                let hx = lagrange_weights_at(&mesh.basis.points, loc.ref_coords[0]);
                let hy = lagrange_weights_at(&mesh.basis.points, loc.ref_coords[1]);
                let hz = lagrange_weights_at(&mesh.basis.points, loc.ref_coords[2]);
                let mut entries = Vec::with_capacity(n3);
                for k in 0..np {
                    for j in 0..np {
                        for i in 0..np {
                            let l = (k * np + j) * np + i;
                            let w = hx[i] * hy[j] * hz[k];
                            if w.abs() < 1e-14 {
                                continue;
                            }
                            let p = mesh.ibool[loc.element * n3 + l];
                            entries.push((
                                p,
                                [
                                    (w * force[0]) as f32,
                                    (w * force[1]) as f32,
                                    (w * force[2]) as f32,
                                ],
                            ));
                        }
                    }
                }
                SourceArrays {
                    entries,
                    stf: Some(*stf),
                    trace: None,
                    location_error_m: loc.position_error_m,
                }
            }
            SourceSpec::Trace {
                position,
                trace,
                trace_dt,
            } => {
                let loc = locate_point_exact(mesh, *position);
                let n3 = mesh.points_per_element();
                let np = mesh.basis.npoints();
                let hx = lagrange_weights_at(&mesh.basis.points, loc.ref_coords[0]);
                let hy = lagrange_weights_at(&mesh.basis.points, loc.ref_coords[1]);
                let hz = lagrange_weights_at(&mesh.basis.points, loc.ref_coords[2]);
                let mut weights = Vec::new();
                for k in 0..np {
                    for j in 0..np {
                        for i in 0..np {
                            let w = (hx[i] * hy[j] * hz[k]) as f32;
                            if w.abs() > 1e-12 {
                                let l = (k * np + j) * np + i;
                                weights.push((mesh.ibool[loc.element * n3 + l], w));
                            }
                        }
                    }
                }
                SourceArrays {
                    entries: Vec::new(),
                    stf: None,
                    trace: Some((weights, trace.clone(), *trace_dt)),
                    location_error_m: loc.position_error_m,
                }
            }
            SourceSpec::Cmt { event, stf } => {
                let target = event.position();
                let loc = locate_point_exact(mesh, target);
                let m = event.tensor_cartesian();
                let n3 = mesh.points_per_element();
                let np = mesh.basis.npoints();
                let nodes = mesh.element_nodes(loc.element);
                let hx = lagrange_weights_at(&mesh.basis.points, loc.ref_coords[0]);
                let hy = lagrange_weights_at(&mesh.basis.points, loc.ref_coords[1]);
                let hz = lagrange_weights_at(&mesh.basis.points, loc.ref_coords[2]);
                let dx = lagrange_deriv_weights_at(&mesh.basis.points, loc.ref_coords[0]);
                let dy = lagrange_deriv_weights_at(&mesh.basis.points, loc.ref_coords[1]);
                let dz = lagrange_deriv_weights_at(&mesh.basis.points, loc.ref_coords[2]);
                // Jacobian ∂x/∂ξ at the source point, then invert.
                let mut jac = [[0.0f64; 3]; 3];
                for k in 0..np {
                    for j in 0..np {
                        for i in 0..np {
                            let p = nodes[(k * np + j) * np + i];
                            let wx = dx[i] * hy[j] * hz[k];
                            let wy = hx[i] * dy[j] * hz[k];
                            let wz = hx[i] * hy[j] * dz[k];
                            for c in 0..3 {
                                jac[c][0] += wx * p[c];
                                jac[c][1] += wy * p[c];
                                jac[c][2] += wz * p[c];
                            }
                        }
                    }
                }
                let inv = invert3(&jac);
                // G_pb = ∂φ_p/∂x_b = Σ_dir ∂φ_p/∂ξ_dir · ∂ξ_dir/∂x_b.
                let mut entries = Vec::with_capacity(n3);
                for k in 0..np {
                    for j in 0..np {
                        for i in 0..np {
                            let dphi_dref = [
                                dx[i] * hy[j] * hz[k],
                                hx[i] * dy[j] * hz[k],
                                hx[i] * hy[j] * dz[k],
                            ];
                            let mut g = [0.0f64; 3];
                            for (b, gb) in g.iter_mut().enumerate() {
                                for dir in 0..3 {
                                    *gb += dphi_dref[dir] * inv[dir][b];
                                }
                            }
                            // F_c = Σ_b M_cb G_b (per unit S(t)).
                            let mut fc = [0.0f32; 3];
                            for c in 0..3 {
                                let mut acc = 0.0;
                                for b in 0..3 {
                                    acc += m[c][b] * g[b];
                                }
                                fc[c] = acc as f32;
                            }
                            if fc.iter().any(|v| v.abs() > 0.0) {
                                let l = (k * np + j) * np + i;
                                entries.push((mesh.ibool[loc.element * n3 + l], fc));
                            }
                        }
                    }
                }
                SourceArrays {
                    entries,
                    stf: Some(*stf),
                    trace: None,
                    location_error_m: loc.position_error_m,
                }
            }
        }
    }

    /// The quantity minimized across ranks to pick the applying rank.
    pub fn locate_cost(&self) -> f64 {
        if self.entries.is_empty() && self.trace.is_none() {
            f64::INFINITY
        } else {
            self.location_error_m
        }
    }

    /// Add the source force at time `t` to the solid acceleration RHS.
    pub fn apply(&self, t: f64, fields: &mut WaveFields) {
        if let Some((weights, samples, dt)) = &self.trace {
            let idx = (t / dt).round() as usize;
            let Some(s) = samples.get(idx) else { return };
            for &(p, w) in weights {
                let p = p as usize;
                fields.accel[p * 3] += w * s[0];
                fields.accel[p * 3 + 1] += w * s[1];
                fields.accel[p * 3 + 2] += w * s[2];
            }
            return;
        }
        let Some(stf) = &self.stf else { return };
        let s = stf.eval(t) as f32;
        if s == 0.0 {
            return;
        }
        for &(p, f) in &self.entries {
            let p = p as usize;
            fields.accel[p * 3] += s * f[0];
            fields.accel[p * 3 + 1] += s * f[1];
            fields.accel[p * 3 + 2] += s * f[2];
        }
    }
}

fn invert3(m: &[[f64; 3]; 3]) -> [[f64; 3]; 3] {
    let det = m[0][0] * (m[1][1] * m[2][2] - m[1][2] * m[2][1])
        - m[0][1] * (m[1][0] * m[2][2] - m[1][2] * m[2][0])
        + m[0][2] * (m[1][0] * m[2][1] - m[1][1] * m[2][0]);
    let inv = 1.0 / det;
    let mut out = [[0.0f64; 3]; 3];
    out[0][0] = (m[1][1] * m[2][2] - m[1][2] * m[2][1]) * inv;
    out[0][1] = (m[0][2] * m[2][1] - m[0][1] * m[2][2]) * inv;
    out[0][2] = (m[0][1] * m[1][2] - m[0][2] * m[1][1]) * inv;
    out[1][0] = (m[1][2] * m[2][0] - m[1][0] * m[2][2]) * inv;
    out[1][1] = (m[0][0] * m[2][2] - m[0][2] * m[2][0]) * inv;
    out[1][2] = (m[0][2] * m[1][0] - m[0][0] * m[1][2]) * inv;
    out[2][0] = (m[1][0] * m[2][1] - m[1][1] * m[2][0]) * inv;
    out[2][1] = (m[0][1] * m[2][0] - m[0][0] * m[2][1]) * inv;
    out[2][2] = (m[0][0] * m[1][1] - m[0][1] * m[1][0]) * inv;
    out
}

/// One recorded seismogram: a 3-component time series at a station.
#[derive(Debug, Clone, PartialEq)]
pub struct Seismogram {
    /// Station name.
    pub station: String,
    /// Sample interval (s).
    pub dt: f64,
    /// Velocity samples `[vx, vy, vz]`.
    pub data: Vec<[f32; 3]>,
}

/// Located stations of one rank.
#[derive(Debug, Clone, Default)]
pub struct ReceiverSet {
    located: Vec<(Station, StationLocation)>,
    records: Vec<Vec<[f32; 3]>>,
}

impl ReceiverSet {
    /// Locate `stations` in this rank's mesh using the exact or
    /// nearest-grid-point algorithm.
    pub fn locate(mesh: &LocalMesh, stations: &[Station], exact: bool) -> Self {
        let located: Vec<(Station, StationLocation)> = stations
            .iter()
            .map(|s| {
                let loc = if exact {
                    locate_station_exact(mesh, s)
                } else {
                    locate_station_nearest(mesh, s)
                };
                (s.clone(), loc)
            })
            .collect();
        let records = vec![Vec::new(); located.len()];
        Self { located, records }
    }

    /// Number of stations in the set.
    pub fn len(&self) -> usize {
        self.located.len()
    }

    /// True when no stations are located.
    pub fn is_empty(&self) -> bool {
        self.located.is_empty()
    }

    /// Per-station location errors (m), in input order.
    pub fn errors(&self) -> Vec<f64> {
        self.located
            .iter()
            .map(|(_, l)| l.position_error_m)
            .collect()
    }

    /// Keep only the stations with `keep[i] == true` — used to assign each
    /// station to the one rank that located it best.
    pub fn retain(&mut self, keep: &[bool]) {
        assert_eq!(keep.len(), self.located.len());
        let mut it = keep.iter();
        self.located.retain(|_| *it.next().unwrap());
        let mut it = keep.iter();
        self.records.retain(|_| *it.next().unwrap());
    }

    /// Largest location error over the set (m).
    pub fn worst_error_m(&self) -> f64 {
        self.located
            .iter()
            .map(|(_, l)| l.position_error_m)
            .fold(0.0, f64::max)
    }

    /// Record the current velocity at every station.
    pub fn record(&mut self, mesh: &LocalMesh, fields: &WaveFields) {
        self.record_with(mesh, |p, c| fields.veloc[p * 3 + c])
    }

    /// Record with a caller-supplied velocity accessor `veloc_at(point,
    /// component)` — the batched solver reads one event lane out of its
    /// lane-major bank through this, reusing the exact interpolation
    /// sequence of the single-lane path.
    pub fn record_with(&mut self, mesh: &LocalMesh, veloc_at: impl Fn(usize, usize) -> f32) {
        let n3 = mesh.points_per_element();
        for ((_, loc), rec) in self.located.iter().zip(&mut self.records) {
            let ev = loc.evaluator(&mesh.basis.points);
            let base = loc.element * n3;
            let mut v = [0.0f32; 3];
            for c in 0..3 {
                let comp: Vec<f64> = mesh.ibool[base..base + n3]
                    .iter()
                    .map(|&p| veloc_at(p as usize, c) as f64)
                    .collect();
                v[c] = ev.interpolate(&comp) as f32;
            }
            rec.push(v);
        }
    }

    /// Station names in located order (checkpoint identity check).
    pub fn station_names(&self) -> Vec<String> {
        self.located.iter().map(|(s, _)| s.name.clone()).collect()
    }

    /// The accumulated velocity records, one series per station.
    pub fn records(&self) -> &[Vec<[f32; 3]>] {
        &self.records
    }

    /// Replace the accumulated records (checkpoint restore). The checkpoint
    /// may carry a superset of this set's stations — a merged container
    /// written at a different world size holds every rank's stations — but
    /// every station this set owns must be present by name.
    pub fn restore_records(&mut self, named: Vec<(String, Vec<[f32; 3]>)>) -> Result<(), String> {
        let mut by_name: std::collections::HashMap<String, Vec<[f32; 3]>> =
            named.into_iter().collect();
        let mut records = Vec::with_capacity(self.located.len());
        for (station, _) in &self.located {
            match by_name.remove(&station.name) {
                Some(rec) => records.push(rec),
                None => {
                    return Err(format!(
                    "station mismatch: solver owns '{}' but the checkpoint has no record for it",
                    station.name
                ))
                }
            }
        }
        self.records = records;
        Ok(())
    }

    /// Finish: package the records as seismograms with sample spacing
    /// `dt_samples`.
    pub fn into_seismograms(self, dt_samples: f64) -> Vec<Seismogram> {
        self.located
            .into_iter()
            .zip(self.records)
            .map(|((s, _), data)| Seismogram {
                station: s.name,
                dt: dt_samples,
                data,
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use specfem_mesh::{GlobalMesh, MeshParams, Partition};
    use specfem_model::{builtin_events, Prem};

    fn serial_mesh() -> LocalMesh {
        let params = MeshParams::new(4, 1);
        let prem = Prem::isotropic_no_ocean();
        let gm = GlobalMesh::build(&params, &prem);
        Partition::serial(&gm).extract(&gm, 0)
    }

    #[test]
    fn point_force_weights_sum_to_total_force() {
        // Σ_p φ_p = 1 at any point → the nodal forces sum to the force.
        let mesh = serial_mesh();
        let spec = SourceSpec::PointForce {
            position: [1.0e6, 2.0e6, 5.5e6],
            force: [3.0e14, -1.0e14, 2.0e14],
            stf: SourceTimeFunction::new(StfKind::Gaussian, 30.0),
        };
        let arrays = SourceArrays::build(&mesh, &spec);
        let mut total = [0.0f64; 3];
        for (_, f) in &arrays.entries {
            for c in 0..3 {
                total[c] += f[c] as f64;
            }
        }
        assert!((total[0] - 3.0e14).abs() < 1e9);
        assert!((total[1] + 1.0e14).abs() < 1e9);
        assert!((total[2] - 2.0e14).abs() < 1e9);
    }

    #[test]
    fn cmt_source_nodal_forces_sum_to_zero() {
        // A moment tensor exerts zero net force: Σ_p F_p = M·Σ_p ∇φ_p = 0
        // because Σφ_p ≡ 1.
        let mesh = serial_mesh();
        let event = builtin_events().remove(0);
        let spec = SourceSpec::Cmt {
            stf: SourceTimeFunction::new(StfKind::Gaussian, 20.0),
            event,
        };
        let arrays = SourceArrays::build(&mesh, &spec);
        assert!(!arrays.entries.is_empty());
        let mut total = [0.0f64; 3];
        let mut scale = 0.0f64;
        for (_, f) in &arrays.entries {
            for c in 0..3 {
                total[c] += f[c] as f64;
                scale += (f[c] as f64).abs();
            }
        }
        for c in total {
            assert!(c.abs() < 1e-6 * scale, "net force {total:?}, scale {scale}");
        }
    }

    #[test]
    fn source_apply_respects_stf() {
        let mesh = serial_mesh();
        let arrays = SourceArrays::build(&mesh, &SourceSpec::default());
        let mut f0 = WaveFields::zeros(mesh.nglob);
        arrays.apply(0.0, &mut f0); // Ricker at t=0 ≈ 0
        let mut fpeak = WaveFields::zeros(mesh.nglob);
        let tpeak = arrays.stf.unwrap().t_shift;
        arrays.apply(tpeak, &mut fpeak);
        let norm = |f: &WaveFields| {
            f.accel
                .iter()
                .map(|a| a.abs() as f64)
                .fold(0.0f64, f64::max)
        };
        assert!(norm(&fpeak) > 10.0 * norm(&f0).max(1e-12));
    }

    #[test]
    fn none_source_is_inert() {
        let mesh = serial_mesh();
        let arrays = SourceArrays::build(&mesh, &SourceSpec::None);
        assert!(arrays.entries.is_empty());
        assert!(arrays.locate_cost().is_infinite());
        let mut f = WaveFields::zeros(mesh.nglob);
        arrays.apply(5.0, &mut f);
        assert!(f.accel.iter().all(|&a| a == 0.0));
    }

    #[test]
    fn receivers_record_the_field() {
        let mesh = serial_mesh();
        let stations = vec![Station {
            name: "REC1".into(),
            lat_deg: 5.0,
            lon_deg: 5.0,
        }];
        let mut rx = ReceiverSet::locate(&mesh, &stations, true);
        let mut fields = WaveFields::zeros(mesh.nglob);
        fields.veloc.iter_mut().for_each(|v| *v = 2.0);
        rx.record(&mesh, &fields);
        fields.veloc.iter_mut().for_each(|v| *v = -1.0);
        rx.record(&mesh, &fields);
        let seis = rx.into_seismograms(0.1);
        assert_eq!(seis.len(), 1);
        assert_eq!(seis[0].data.len(), 2);
        // Constant field interpolates exactly.
        assert!((seis[0].data[0][0] - 2.0).abs() < 1e-4);
        assert!((seis[0].data[1][2] + 1.0).abs() < 1e-4);
    }
}
