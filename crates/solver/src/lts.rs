//! Clustered local time stepping (LTS) — the solver half.
//!
//! `specfem_mesh::lts` buckets elements into rate-2^k clusters from their
//! per-element Courant bound; this module holds the run-time state the
//! timeloop needs to *act* on those clusters: per-level element lists split
//! along the existing outer/inner halo boundary, frozen force-contribution
//! buffers, and per-level attenuation recursion constants.
//!
//! ## Force-freezing scheme
//!
//! Every fine step advances **every** grid point with the Newmark scheme at
//! the global `dt` — only the expensive stiffness kernels (>70 % of runtime,
//! paper §4.3) are gated. A cluster of rate `r` recomputes its elements'
//! force contributions only on steps with `istep % r == 0`; in between, the
//! contributions stay frozen in per-element buffers. Each fine step a single
//! canonical scatter pass — ascending local element order, the same order
//! the plain element loop uses — adds every element's (fresh or frozen)
//! contribution into the assembled `accel`/`chi_ddot`.
//!
//! ## Why rate 1 is bit-identical to the plain loop
//!
//! The kernels read only `displ`/`chi` (plus their own attenuation memory)
//! and the per-point value they emit — `−accum` (or `−accum + body` under
//! gravity) — is the identical f32 expression whether it is `+=`-ed directly
//! (plain path) or stored then `+=`-ed by the scatter (LTS path): IEEE-754
//! `a -= x` ≡ `a += (-x)`. Within one element every local node maps to a
//! distinct global point, so per (point, component) there is exactly one
//! addition per element and the scatter's loop nesting cannot reorder it;
//! across elements the scatter runs ascending, matching the plain loop.
//! `tests/lts_equivalence.rs` enforces 0-ULP equality end to end.

use specfem_kernels::FlopCounter;
use specfem_mesh::{LocalMesh, LtsClusters};
use specfem_model::attenuation::N_SLS;

use crate::forces::AttenuationState;

/// One rate-2^k cluster, its element list split along the outer/inner halo
/// boundary so the overlapped exchange can refresh outer elements before
/// posting and inner elements while messages are in flight.
#[derive(Debug, Clone)]
pub struct LtsLevel {
    /// Refresh period in fine steps (power of two).
    pub rate: u32,
    /// Cluster elements touching a halo point (ascending, `< nspec_outer`).
    pub outer: Vec<u32>,
    /// Cluster elements touching no halo point (ascending).
    pub inner: Vec<u32>,
    /// SLS recursion constants fitted at `rate·dt` (attenuation runs on the
    /// cluster's own refresh period); `None` when attenuation is off. At
    /// rate 1 these are bitwise equal to the base constants.
    pub atten: Option<([f32; N_SLS], [f32; N_SLS])>,
}

impl LtsLevel {
    /// Whether this cluster refreshes its forces on fine step `istep`.
    pub fn active(&self, istep: usize) -> bool {
        istep.is_multiple_of(self.rate as usize)
    }

    /// Local elements in this cluster.
    pub fn len(&self) -> usize {
        self.outer.len() + self.inner.len()
    }

    /// Whether the cluster is empty on this rank.
    pub fn is_empty(&self) -> bool {
        self.outer.is_empty() && self.inner.is_empty()
    }
}

/// Per-rank LTS run-time state: the cluster levels plus the frozen force
/// contributions of every local element.
#[derive(Debug, Clone)]
pub struct LtsState {
    /// Refresh rate per local element.
    pub rate_of: Vec<u32>,
    /// The configured `LTS_MAX_RATE` cap — the checkpoint alignment unit:
    /// every assigned rate is a power of two dividing it.
    pub cap: u32,
    /// Clusters present on this rank, ascending rate.
    pub levels: Vec<LtsLevel>,
    /// Frozen solid force contributions, `[(e·n³ + l)·3 + c]`.
    pub solid_contrib: Vec<f32>,
    /// Frozen fluid force contributions, `[e·n³ + l]`.
    pub fluid_contrib: Vec<f32>,
    /// Element-steps whose stiffness kernel was skipped this run (the work
    /// LTS saved; a plain run computes `nspec` element-steps per step).
    pub element_steps_saved: u64,
}

impl LtsState {
    /// Build the run-time state from a per-element rate assignment.
    /// `atten` carries `(dt, shortest_period_s)` when attenuation is on so
    /// each level gets recursion constants fitted at its own `rate·dt`.
    pub fn new(mesh: &LocalMesh, rate_of: Vec<u32>, cap: u32, atten: Option<(f64, f64)>) -> Self {
        assert_eq!(rate_of.len(), mesh.nspec, "one rate per local element");
        let n3 = mesh.points_per_element();
        let mut rates: Vec<u32> = rate_of.clone();
        rates.sort_unstable();
        rates.dedup();
        let levels = rates
            .into_iter()
            .map(|rate| {
                let mut outer = Vec::new();
                let mut inner = Vec::new();
                for (e, &r) in rate_of.iter().enumerate() {
                    if r == rate {
                        if e < mesh.nspec_outer {
                            outer.push(e as u32);
                        } else {
                            inner.push(e as u32);
                        }
                    }
                }
                let atten = atten.map(|(dt, period)| {
                    AttenuationState::update_constants(rate as f64 * dt, period)
                });
                LtsLevel {
                    rate,
                    outer,
                    inner,
                    atten,
                }
            })
            .collect();
        Self {
            rate_of,
            cap,
            levels,
            solid_contrib: vec![0.0; mesh.nspec * n3 * 3],
            fluid_contrib: vec![0.0; mesh.nspec * n3],
            element_steps_saved: 0,
        }
    }

    /// Build from the mesh's per-element Courant bounds (the production
    /// path; `LtsClusters::assign` does the 2^k bucketing).
    pub fn from_mesh(mesh: &LocalMesh, dt: f64, cap: usize, atten: Option<(f64, f64)>) -> Self {
        let dts = specfem_mesh::element_dts(mesh);
        let clusters = LtsClusters::assign(&dts, dt, cap);
        Self::new(mesh, clusters.rate_of, cap as u32, atten)
    }

    /// Package the run's LTS telemetry.
    pub fn summary(&self, nspec: usize, steps_run: usize) -> LtsSummary {
        let total = nspec as u64 * steps_run as u64;
        let computed = total.saturating_sub(self.element_steps_saved);
        LtsSummary {
            max_rate: self.cap,
            levels: self.levels.iter().map(|l| (l.rate, l.len())).collect(),
            element_steps_saved: self.element_steps_saved,
            element_steps_total: total,
            theoretical_speedup: if computed > 0 {
                total as f64 / computed as f64
            } else {
                1.0
            },
        }
    }
}

/// What a rank reports about its LTS run (attached to `RankResult`).
#[derive(Debug, Clone)]
pub struct LtsSummary {
    /// Configured `LTS_MAX_RATE`.
    pub max_rate: u32,
    /// `(rate, local element count)` per cluster present on the rank.
    pub levels: Vec<(u32, usize)>,
    /// Stiffness element-steps skipped (frozen instead of recomputed).
    pub element_steps_saved: u64,
    /// Element-steps a plain run would compute (`nspec × steps`).
    pub element_steps_total: u64,
    /// Kernel-work speedup implied by the skip count
    /// (`total / (total − saved)`).
    pub theoretical_speedup: f64,
}

/// Add every solid element's frozen contribution in `range` into `accel` —
/// the canonical ascending scatter the bit-identity argument relies on.
/// Fluid elements are *skipped*, not added as stored zeros: `−0.0 + 0.0`
/// would flip the sign bit of a negative zero.
pub fn scatter_solid(
    mesh: &LocalMesh,
    contrib: &[f32],
    accel: &mut [f32],
    range: std::ops::Range<usize>,
) {
    let n3 = mesh.points_per_element();
    for e in range {
        if mesh.region[e].is_fluid() {
            continue;
        }
        let base = e * n3;
        let ib = &mesh.ibool[base..base + n3];
        for (l, &p) in ib.iter().enumerate() {
            let src = (base + l) * 3;
            let dst = p as usize * 3;
            for c in 0..3 {
                accel[dst + c] += contrib[src + c];
            }
        }
    }
}

/// Fluid counterpart of [`scatter_solid`]: add frozen `χ̈` contributions of
/// the fluid elements in `range`.
pub fn scatter_fluid(
    mesh: &LocalMesh,
    contrib: &[f32],
    chi_ddot: &mut [f32],
    range: std::ops::Range<usize>,
) {
    let n3 = mesh.points_per_element();
    for e in range {
        if !mesh.region[e].is_fluid() {
            continue;
        }
        let base = e * n3;
        let ib = &mesh.ibool[base..base + n3];
        for (l, &p) in ib.iter().enumerate() {
            chi_ddot[p as usize] += contrib[base + l];
        }
    }
}

/// Count the scatter's per-point adds so flop accounting stays comparable
/// between plain and LTS runs (3 adds per solid point, 1 per fluid point —
/// bookkeeping, not kernel work).
pub fn scatter_flops(mesh: &LocalMesh, flops: &mut FlopCounter) {
    let n3 = mesh.points_per_element();
    let nfluid = mesh.region.iter().filter(|r| r.is_fluid()).count();
    let nsolid = mesh.nspec - nfluid;
    flops.add_raw((nsolid * n3 * 3 + nfluid * n3) as u64);
}

#[cfg(test)]
mod tests {
    use super::*;
    use specfem_mesh::{GlobalMesh, MeshParams, Partition};
    use specfem_model::Prem;

    fn local_mesh() -> LocalMesh {
        let params = MeshParams::new(4, 1);
        let gm = GlobalMesh::build(&params, &Prem::isotropic_no_ocean());
        Partition::serial(&gm).extract(&gm, 0)
    }

    #[test]
    fn levels_partition_the_elements_along_the_halo_split() {
        let mesh = local_mesh();
        let dts = specfem_mesh::element_dts(&mesh);
        let dt = dts.iter().cloned().fold(f64::INFINITY, f64::min);
        let state = LtsState::from_mesh(&mesh, dt, 8, None);
        let mut seen = vec![false; mesh.nspec];
        for lv in &state.levels {
            for &e in &lv.outer {
                assert!((e as usize) < mesh.nspec_outer);
                assert!(!std::mem::replace(&mut seen[e as usize], true));
            }
            for &e in &lv.inner {
                assert!((e as usize) >= mesh.nspec_outer);
                assert!(!std::mem::replace(&mut seen[e as usize], true));
            }
            assert!(lv.outer.windows(2).all(|w| w[0] < w[1]));
            assert!(lv.inner.windows(2).all(|w| w[0] < w[1]));
            assert_eq!(lv.len(), lv.outer.len() + lv.inner.len());
            assert!(!lv.is_empty());
        }
        assert!(
            seen.iter().all(|&s| s),
            "every element in exactly one level"
        );
    }

    #[test]
    fn rate_one_attenuation_constants_match_the_base_state() {
        let mesh = local_mesh();
        let dt = 0.1;
        let period = 40.0;
        let state = LtsState::new(&mesh, vec![1; mesh.nspec], 1, Some((dt, period)));
        let base = AttenuationState::new(&mesh, dt, period);
        let (alpha, beta) = state.levels[0].atten.unwrap();
        assert_eq!(alpha.map(f32::to_bits), base.alpha.map(f32::to_bits));
        assert_eq!(beta.map(f32::to_bits), base.beta_unit.map(f32::to_bits));
    }

    #[test]
    fn activation_schedule_follows_the_rate() {
        let lv = LtsLevel {
            rate: 4,
            outer: vec![0],
            inner: vec![],
            atten: None,
        };
        let active: Vec<usize> = (0..10).filter(|&s| lv.active(s)).collect();
        assert_eq!(active, vec![0, 4, 8]);
    }

    #[test]
    fn summary_accounts_saved_steps() {
        let mesh = local_mesh();
        let mut state = LtsState::new(&mesh, vec![1; mesh.nspec], 4, None);
        state.element_steps_saved = (mesh.nspec as u64) * 5;
        let s = state.summary(mesh.nspec, 20);
        assert_eq!(s.element_steps_total, mesh.nspec as u64 * 20);
        assert_eq!(s.element_steps_saved, mesh.nspec as u64 * 5);
        assert!((s.theoretical_speedup - 20.0 / 15.0).abs() < 1e-12);
    }
}
