//! Fluid–solid coupling at the CMB and ICB (paper §1, ref [4]).
//!
//! The coupling is **non-iterative and displacement-based**: within one time
//! step the fluid potential equation is driven by the boundary term
//! `∮ w (u_solid · n̂) dΓ` using the freshly *predicted solid displacement*,
//! and the solid momentum equation then receives the traction
//! `t = −p n̂_s = χ̈ n̂_s` from the just-updated fluid acceleration potential.
//! (Earlier SPECFEM versions coupled through velocity and required care or
//! iteration; the displacement form is the improvement cited from Chaljub &
//! Valette.)

use specfem_mesh::{LocalMesh, MeshRegion};
use specfem_model::{CMB_RADIUS_M, ICB_RADIUS_M};

use crate::assemble::WaveFields;

/// One quadrature point of the fluid–solid interface: the local point id
/// and the fluid-outward normal scaled by `(face Jacobian · w_i · w_j)`.
#[derive(Debug, Clone, Copy)]
pub struct CouplingPoint {
    /// Local point id.
    pub point: u32,
    /// Outward-from-fluid weighted normal (m²).
    pub nw: [f32; 3],
}

/// All fluid–solid interface quadrature points of one rank (both CMB and
/// ICB), built from the *fluid* elements' boundary faces.
#[derive(Debug, Clone, Default)]
pub struct CouplingSurface {
    /// Quadrature points (a point shared by several faces appears once per
    /// face — contributions are additive quadrature pieces).
    pub points: Vec<CouplingPoint>,
}

impl CouplingSurface {
    /// Detect outer-core boundary faces and build the weighted normals.
    pub fn build(mesh: &LocalMesh) -> Self {
        let np = mesh.basis.npoints();
        let n3 = mesh.points_per_element();
        let h = &mesh.basis.hprime;
        let w = &mesh.basis.weights;
        let mut points = Vec::new();
        let tol = 10.0; // m — face-on-boundary detection
        for e in 0..mesh.nspec {
            if mesh.region[e] != MeshRegion::OuterCore {
                continue;
            }
            let nodes = mesh.element_nodes(e);
            let at = |i: usize, j: usize, k: usize| nodes[(k * np + j) * np + i];
            // Candidate faces: k = 0 (bottom, ICB) and k = np−1 (top, CMB).
            for (kface, target_r, outward_sign) in
                [(0usize, ICB_RADIUS_M, -1.0f64), (np - 1, CMB_RADIUS_M, 1.0)]
            {
                // The whole face must lie on the target radius.
                let on_boundary = (0..np).all(|j| {
                    (0..np).all(|i| {
                        let p = at(i, j, kface);
                        let r = (p[0] * p[0] + p[1] * p[1] + p[2] * p[2]).sqrt();
                        (r - target_r).abs() < tol
                    })
                });
                if !on_boundary {
                    continue;
                }
                for j in 0..np {
                    for i in 0..np {
                        // Tangents ∂x/∂ξ and ∂x/∂η at the face point.
                        let mut tu = [0.0f64; 3];
                        let mut tv = [0.0f64; 3];
                        for m in 0..np {
                            let hi = h[i * np + m];
                            let hj = h[j * np + m];
                            let pu = at(m, j, kface);
                            let pv = at(i, m, kface);
                            for c in 0..3 {
                                tu[c] += hi * pu[c];
                                tv[c] += hj * pv[c];
                            }
                        }
                        // Cross product → area-weighted normal.
                        let mut n = [
                            tu[1] * tv[2] - tu[2] * tv[1],
                            tu[2] * tv[0] - tu[0] * tv[2],
                            tu[0] * tv[1] - tu[1] * tv[0],
                        ];
                        // Orient outward from the fluid: radially out at the
                        // CMB, radially in at the ICB.
                        let p = at(i, j, kface);
                        let dot = n[0] * p[0] + n[1] * p[1] + n[2] * p[2];
                        let sign = if dot * outward_sign >= 0.0 { 1.0 } else { -1.0 };
                        let ww = w[i] * w[j] * sign;
                        for c in &mut n {
                            *c *= ww;
                        }
                        points.push(CouplingPoint {
                            point: mesh.ibool[e * n3 + (kface * np + j) * np + i],
                            nw: [n[0] as f32, n[1] as f32, n[2] as f32],
                        });
                    }
                }
            }
        }
        Self { points }
    }

    /// Fluid side: `χ̈_rhs += ∮ w (u_s · n̂) dΓ` — call *before* the fluid
    /// halo assembly, using the predicted solid displacement.
    pub fn add_solid_displacement_to_fluid(&self, fields: &mut WaveFields) {
        for cp in &self.points {
            let p = cp.point as usize;
            let dot = fields.displ[p * 3] * cp.nw[0]
                + fields.displ[p * 3 + 1] * cp.nw[1]
                + fields.displ[p * 3 + 2] * cp.nw[2];
            fields.chi_ddot[p] += dot;
        }
    }

    /// Solid side: traction `χ̈ n̂_s = −χ̈ n̂_f` — call with the *final*
    /// fluid acceleration, before the solid halo assembly.
    pub fn add_fluid_pressure_to_solid(&self, fields: &mut WaveFields) {
        for cp in &self.points {
            let p = cp.point as usize;
            let chiddot = fields.chi_ddot[p];
            fields.accel[p * 3] -= cp.nw[0] * chiddot;
            fields.accel[p * 3 + 1] -= cp.nw[1] * chiddot;
            fields.accel[p * 3 + 2] -= cp.nw[2] * chiddot;
        }
    }

    /// Total (vector) of the weighted normals — ≈ 0 over the closed CMB+ICB
    /// surfaces; used as a mesh-quality check.
    pub fn normal_sum(&self) -> [f64; 3] {
        let mut s = [0.0f64; 3];
        for cp in &self.points {
            for c in 0..3 {
                s[c] += cp.nw[c] as f64;
            }
        }
        s
    }

    /// Total unsigned surface measure Σ|nw| (≈ area of CMB + ICB).
    pub fn total_area(&self) -> f64 {
        self.points
            .iter()
            .map(|cp| {
                let n = cp.nw;
                ((n[0] as f64).powi(2) + (n[1] as f64).powi(2) + (n[2] as f64).powi(2)).sqrt()
            })
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use specfem_mesh::{GlobalMesh, MeshParams, Partition};
    use specfem_model::Prem;

    fn serial_mesh() -> LocalMesh {
        let params = MeshParams::new(4, 1);
        let prem = Prem::isotropic_no_ocean();
        let gm = GlobalMesh::build(&params, &prem);
        Partition::serial(&gm).extract(&gm, 0)
    }

    #[test]
    fn coupling_surface_covers_cmb_and_icb_areas() {
        let mesh = serial_mesh();
        let surf = CouplingSurface::build(&mesh);
        assert!(!surf.points.is_empty());
        let area = surf.total_area();
        let expect = 4.0
            * std::f64::consts::PI
            * (CMB_RADIUS_M * CMB_RADIUS_M + ICB_RADIUS_M * ICB_RADIUS_M);
        let rel = (area - expect).abs() / expect;
        assert!(rel < 0.02, "area {area:.4e} vs {expect:.4e} (rel {rel})");
    }

    #[test]
    fn closed_surface_normals_sum_to_zero() {
        let mesh = serial_mesh();
        let surf = CouplingSurface::build(&mesh);
        let s = surf.normal_sum();
        let scale = surf.total_area();
        for c in s {
            assert!(c.abs() < 1e-6 * scale, "∮n dS = {s:?}");
        }
    }

    #[test]
    fn uniform_radial_displacement_pumps_fluid_with_correct_sign() {
        // u = r̂ everywhere: at the CMB (fluid outward = +r̂) u·n̂ > 0; at
        // the ICB (fluid outward = −r̂) u·n̂ < 0. Net: CMB area > ICB area
        // → total positive.
        let mesh = serial_mesh();
        let surf = CouplingSurface::build(&mesh);
        let mut fields = WaveFields::zeros(mesh.nglob);
        for (p, c) in mesh.coords.iter().enumerate() {
            let r = (c[0] * c[0] + c[1] * c[1] + c[2] * c[2]).sqrt();
            if r > 0.0 {
                for d in 0..3 {
                    fields.displ[p * 3 + d] = (c[d] / r) as f32;
                }
            }
        }
        surf.add_solid_displacement_to_fluid(&mut fields);
        let total: f64 = fields.chi_ddot.iter().map(|&v| v as f64).sum();
        let cmb_area = 4.0 * std::f64::consts::PI * CMB_RADIUS_M * CMB_RADIUS_M;
        let icb_area = 4.0 * std::f64::consts::PI * ICB_RADIUS_M * ICB_RADIUS_M;
        let expect = cmb_area - icb_area;
        assert!(
            (total - expect).abs() < 0.02 * expect,
            "flux {total:.4e} vs {expect:.4e}"
        );
    }

    #[test]
    fn uniform_pressure_pushes_solid_inward_at_cmb() {
        // χ̈ = 1 (uniform "suction" p = −1): solid traction χ̈·n̂_s. At the
        // CMB n̂_s points into the fluid (−r̂): the mantle is pulled inward;
        // the reaction sum should be ≈ −(CMB area)·r̂ integrated = 0 by
        // symmetry, but each individual point force must be radial.
        let mesh = serial_mesh();
        let surf = CouplingSurface::build(&mesh);
        let mut fields = WaveFields::zeros(mesh.nglob);
        fields.chi_ddot.fill(1.0);
        surf.add_fluid_pressure_to_solid(&mut fields);
        // Global force balance by symmetry.
        let mut total = [0.0f64; 3];
        for p in 0..mesh.nglob {
            for c in 0..3 {
                total[c] += fields.accel[p * 3 + c] as f64;
            }
        }
        let scale = surf.total_area();
        for c in total {
            assert!(c.abs() < 1e-6 * scale);
        }
        // And the force at a CMB point is along −r̂ (inward for the solid).
        let cp = surf
            .points
            .iter()
            .max_by(|a, b| {
                let ra = norm(&mesh.coords[a.point as usize]);
                let rb = norm(&mesh.coords[b.point as usize]);
                ra.partial_cmp(&rb).unwrap()
            })
            .unwrap();
        let p = cp.point as usize;
        let pos = mesh.coords[p];
        let dot = fields.accel[p * 3] as f64 * pos[0]
            + fields.accel[p * 3 + 1] as f64 * pos[1]
            + fields.accel[p * 3 + 2] as f64 * pos[2];
        assert!(dot < 0.0, "CMB traction must point inward, got dot {dot}");
    }

    fn norm(p: &[f64; 3]) -> f64 {
        (p[0] * p[0] + p[1] * p[1] + p[2] * p[2]).sqrt()
    }
}
