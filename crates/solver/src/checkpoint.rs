//! Checkpoint/restart of the time loop.
//!
//! A 62K-core run at NEX 4848 marches hundreds of thousands of steps over
//! many wall-clock hours — longer than the MTBF of the target machines — so
//! the solver must be able to come back from a kill without recomputing from
//! step 0. (The real SPECFEM3D_GLOBE of the paper had no checkpointing; see
//! DESIGN.md for the deviation note.)
//!
//! A checkpoint captures the complete per-rank time-loop state: both wave
//! fields (solid `u/v/a`, fluid `χ/χ̇/χ̈`), the attenuation memory
//! variables, the seismogram records, energy samples, wavefield snapshots,
//! the step counter and flop count. Everything else (mass matrices, metric
//! terms, source/receiver location, `dt`) is recomputed deterministically at
//! restart, and the rank-order deterministic reductions make a resumed run
//! **bit-identical** to an uninterrupted one.
//!
//! The on-disk format is versioned and checksummed: `"SFCK"` magic, format
//! version, little-endian body, trailing CRC-32 (IEEE) over everything
//! before it. Torn or corrupted files are rejected at decode, never
//! silently restored.

use std::fmt;

/// Current on-disk format version. Version 2 added the local→global point
/// and element maps, making every state self-describing enough for a
/// *different* world size to consume it (rank-count-independent restart).
pub const FORMAT_VERSION: u32 = 2;

/// File magic: "SFCK" = SpecFem ChecKpoint.
pub const MAGIC: [u8; 4] = *b"SFCK";

/// A checkpoint failure (encode, decode, or state mismatch).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CheckpointError(pub String);

impl fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "checkpoint error: {}", self.0)
    }
}

impl std::error::Error for CheckpointError {}

/// Complete time-loop state of one rank at a step boundary.
#[derive(Debug, Clone, PartialEq)]
pub struct CheckpointState {
    /// Rank that wrote the state.
    pub rank: usize,
    /// World size of the run (restore must match).
    pub nranks: usize,
    /// First step the resumed loop executes (the checkpoint was taken after
    /// completing step `next_step - 1`).
    pub next_step: usize,
    /// Time step of the run (s); restore must bit-match.
    pub dt: f64,
    /// Local global-point count (consistency check against the rebuilt
    /// mesh).
    pub nglob: usize,
    /// Local point id → global point id (`LocalMesh::global_ids`) — the
    /// index that lets a merged, rank-count-independent container gather
    /// this state and scatter it back onto any decomposition.
    pub global_ids: Vec<u32>,
    /// Local element id → global element id (`LocalMesh::element_global`),
    /// the element-major analog for attenuation memory remapping.
    pub element_global: Vec<u32>,
    /// Solid displacement `[p·3 + c]`.
    pub displ: Vec<f32>,
    /// Solid velocity.
    pub veloc: Vec<f32>,
    /// Solid acceleration.
    pub accel: Vec<f32>,
    /// Fluid potential χ.
    pub chi: Vec<f32>,
    /// χ̇.
    pub chi_dot: Vec<f32>,
    /// χ̈.
    pub chi_ddot: Vec<f32>,
    /// Attenuation memory variables, when the run is anelastic.
    pub atten_memory: Option<Vec<f32>>,
    /// Per-station seismogram records: `(station name, velocity samples)`.
    pub records: Vec<(String, Vec<[f32; 3]>)>,
    /// `(step, kinetic, potential)` energy samples so far.
    pub energy: Vec<(usize, f64, f64)>,
    /// Displacement snapshots recorded so far (adjoint storage).
    pub snapshots: Vec<Vec<f32>>,
    /// Flop count so far.
    pub flops: u64,
}

/// CRC-32 (IEEE 802.3, reflected, poly 0xEDB88320) — the checksum guarding
/// every checkpoint file.
pub fn crc32(data: &[u8]) -> u32 {
    let mut crc: u32 = 0xFFFF_FFFF;
    for &b in data {
        crc ^= b as u32;
        for _ in 0..8 {
            let mask = (crc & 1).wrapping_neg();
            crc = (crc >> 1) ^ (0xEDB8_8320 & mask);
        }
    }
    !crc
}

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_f64(out: &mut Vec<u8>, v: f64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_f32_slice(out: &mut Vec<u8>, v: &[f32]) {
    put_u64(out, v.len() as u64);
    for &x in v {
        out.extend_from_slice(&x.to_le_bytes());
    }
}

fn put_u32_slice(out: &mut Vec<u8>, v: &[u32]) {
    put_u64(out, v.len() as u64);
    for &x in v {
        out.extend_from_slice(&x.to_le_bytes());
    }
}

struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], CheckpointError> {
        if self.pos + n > self.buf.len() {
            return Err(CheckpointError(format!(
                "truncated checkpoint: need {} bytes at offset {}, have {}",
                n,
                self.pos,
                self.buf.len() - self.pos
            )));
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn u32(&mut self) -> Result<u32, CheckpointError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> Result<u64, CheckpointError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn f64(&mut self) -> Result<f64, CheckpointError> {
        Ok(f64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn f32_vec(&mut self) -> Result<Vec<f32>, CheckpointError> {
        let n = self.u64()? as usize;
        let raw = self.take(n * 4)?;
        Ok(raw
            .chunks_exact(4)
            .map(|c| f32::from_le_bytes(c.try_into().unwrap()))
            .collect())
    }

    fn u32_vec(&mut self) -> Result<Vec<u32>, CheckpointError> {
        let n = self.u64()? as usize;
        let raw = self.take(n * 4)?;
        Ok(raw
            .chunks_exact(4)
            .map(|c| u32::from_le_bytes(c.try_into().unwrap()))
            .collect())
    }
}

impl CheckpointState {
    /// Serialize to the versioned, checksummed binary format.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        out.extend_from_slice(&MAGIC);
        put_u32(&mut out, FORMAT_VERSION);
        put_u64(&mut out, self.rank as u64);
        put_u64(&mut out, self.nranks as u64);
        put_u64(&mut out, self.next_step as u64);
        put_f64(&mut out, self.dt);
        put_u64(&mut out, self.nglob as u64);
        put_u32_slice(&mut out, &self.global_ids);
        put_u32_slice(&mut out, &self.element_global);
        put_f32_slice(&mut out, &self.displ);
        put_f32_slice(&mut out, &self.veloc);
        put_f32_slice(&mut out, &self.accel);
        put_f32_slice(&mut out, &self.chi);
        put_f32_slice(&mut out, &self.chi_dot);
        put_f32_slice(&mut out, &self.chi_ddot);
        match &self.atten_memory {
            Some(m) => {
                out.push(1);
                put_f32_slice(&mut out, m);
            }
            None => out.push(0),
        }
        put_u64(&mut out, self.records.len() as u64);
        for (name, samples) in &self.records {
            put_u64(&mut out, name.len() as u64);
            out.extend_from_slice(name.as_bytes());
            put_u64(&mut out, samples.len() as u64);
            for s in samples {
                for &c in s {
                    out.extend_from_slice(&c.to_le_bytes());
                }
            }
        }
        put_u64(&mut out, self.energy.len() as u64);
        for &(step, ke, pe) in &self.energy {
            put_u64(&mut out, step as u64);
            put_f64(&mut out, ke);
            put_f64(&mut out, pe);
        }
        put_u64(&mut out, self.snapshots.len() as u64);
        for s in &self.snapshots {
            put_f32_slice(&mut out, s);
        }
        put_u64(&mut out, self.flops);
        let crc = crc32(&out);
        put_u32(&mut out, crc);
        out
    }

    /// Deserialize, rejecting bad magic, unknown versions, truncation, and
    /// checksum mismatches.
    pub fn decode(buf: &[u8]) -> Result<Self, CheckpointError> {
        if buf.len() < MAGIC.len() + 8 {
            return Err(CheckpointError(format!(
                "file too short ({} bytes) to be a checkpoint",
                buf.len()
            )));
        }
        let (body, crc_bytes) = buf.split_at(buf.len() - 4);
        let stored = u32::from_le_bytes(crc_bytes.try_into().unwrap());
        let computed = crc32(body);
        if stored != computed {
            return Err(CheckpointError(format!(
                "checksum mismatch: stored {stored:#010x}, computed {computed:#010x}"
            )));
        }
        let mut r = Reader { buf: body, pos: 0 };
        let magic = r.take(4)?;
        if magic != MAGIC {
            return Err(CheckpointError(format!("bad magic {magic:?}")));
        }
        let version = r.u32()?;
        if version != FORMAT_VERSION {
            return Err(CheckpointError(format!(
                "unsupported format version {version} (this build reads {FORMAT_VERSION})"
            )));
        }
        let rank = r.u64()? as usize;
        let nranks = r.u64()? as usize;
        let next_step = r.u64()? as usize;
        let dt = r.f64()?;
        let nglob = r.u64()? as usize;
        let global_ids = r.u32_vec()?;
        let element_global = r.u32_vec()?;
        let displ = r.f32_vec()?;
        let veloc = r.f32_vec()?;
        let accel = r.f32_vec()?;
        let chi = r.f32_vec()?;
        let chi_dot = r.f32_vec()?;
        let chi_ddot = r.f32_vec()?;
        let atten_memory = match r.take(1)?[0] {
            0 => None,
            1 => Some(r.f32_vec()?),
            b => return Err(CheckpointError(format!("bad attenuation flag {b}"))),
        };
        let nrec = r.u64()? as usize;
        let mut records = Vec::with_capacity(nrec);
        for _ in 0..nrec {
            let namelen = r.u64()? as usize;
            let name = String::from_utf8(r.take(namelen)?.to_vec())
                .map_err(|e| CheckpointError(format!("bad station name: {e}")))?;
            let nsamp = r.u64()? as usize;
            let raw = r.take(nsamp * 12)?;
            let samples = raw
                .chunks_exact(12)
                .map(|c| {
                    [
                        f32::from_le_bytes(c[0..4].try_into().unwrap()),
                        f32::from_le_bytes(c[4..8].try_into().unwrap()),
                        f32::from_le_bytes(c[8..12].try_into().unwrap()),
                    ]
                })
                .collect();
            records.push((name, samples));
        }
        let nen = r.u64()? as usize;
        let mut energy = Vec::with_capacity(nen);
        for _ in 0..nen {
            let step = r.u64()? as usize;
            let ke = r.f64()?;
            let pe = r.f64()?;
            energy.push((step, ke, pe));
        }
        let nsnap = r.u64()? as usize;
        let mut snapshots = Vec::with_capacity(nsnap);
        for _ in 0..nsnap {
            snapshots.push(r.f32_vec()?);
        }
        let flops = r.u64()?;
        if r.pos != body.len() {
            return Err(CheckpointError(format!(
                "{} trailing bytes after checkpoint body",
                body.len() - r.pos
            )));
        }
        Ok(Self {
            rank,
            nranks,
            next_step,
            dt,
            nglob,
            global_ids,
            element_global,
            displ,
            veloc,
            accel,
            chi,
            chi_dot,
            chi_ddot,
            atten_memory,
            records,
            energy,
            snapshots,
            flops,
        })
    }
}

/// Destination for checkpoints produced inside the time loop. The storage
/// backend (per-rank files with atomic rename) lives in `specfem-io`; the
/// solver only knows this trait so the dependency arrow keeps pointing
/// io → solver.
pub trait CheckpointSink: Send {
    /// Persist one rank's state; must be atomic (no torn files on kill).
    fn write(&mut self, state: &CheckpointState) -> Result<(), CheckpointError>;
}

/// A sink that keeps checkpoints in memory — used by tests and by the
/// ablation harness to measure pure serialization cost.
#[derive(Debug, Default)]
pub struct MemorySink {
    /// Every state written, in write order.
    pub written: Vec<CheckpointState>,
}

impl CheckpointSink for MemorySink {
    fn write(&mut self, state: &CheckpointState) -> Result<(), CheckpointError> {
        self.written.push(state.clone());
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_state() -> CheckpointState {
        CheckpointState {
            rank: 3,
            nranks: 24,
            next_step: 500,
            dt: 0.1625,
            nglob: 4,
            global_ids: vec![12, 7, 3, 40],
            element_global: vec![5, 9],
            displ: vec![
                1.0,
                -2.5,
                3.25,
                0.0,
                1e-30,
                f32::MIN_POSITIVE,
                7.0,
                -0.0,
                2.0,
                1.5,
                0.5,
                9.0,
            ],
            veloc: vec![0.0; 12],
            accel: vec![0.5; 12],
            chi: vec![1.0, 2.0, 3.0, 4.0],
            chi_dot: vec![-1.0; 4],
            chi_ddot: vec![0.25; 4],
            atten_memory: Some(vec![0.125; 10]),
            records: vec![
                ("STA1".into(), vec![[1.0, 2.0, 3.0], [4.0, 5.0, 6.0]]),
                ("STA2".into(), vec![[0.0, -1.0, 1.0]]),
            ],
            energy: vec![(0, 1.5, -0.5), (10, 2.5, -1.5)],
            snapshots: vec![vec![1.0; 12]],
            flops: 123_456_789_012,
        }
    }

    #[test]
    fn roundtrip_is_lossless() {
        let state = sample_state();
        let bytes = state.encode();
        let back = CheckpointState::decode(&bytes).unwrap();
        assert_eq!(state, back);
    }

    #[test]
    fn corruption_is_detected() {
        let state = sample_state();
        let mut bytes = state.encode();
        // Flip one bit in the middle of the body.
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x10;
        let err = CheckpointState::decode(&bytes).unwrap_err();
        assert!(err.0.contains("checksum"), "{err}");
    }

    #[test]
    fn truncation_is_detected() {
        let state = sample_state();
        let bytes = state.encode();
        let err = CheckpointState::decode(&bytes[..bytes.len() - 9]).unwrap_err();
        // Either the CRC no longer matches or a read runs off the end —
        // both must be errors, never a partial state.
        assert!(!err.0.is_empty());
    }

    #[test]
    fn wrong_version_is_rejected() {
        let state = sample_state();
        let mut bytes = state.encode();
        // Patch the version field (offset 4) and re-seal the CRC.
        bytes[4] = 99;
        let n = bytes.len();
        let crc = crc32(&bytes[..n - 4]);
        bytes[n - 4..].copy_from_slice(&crc.to_le_bytes());
        let err = CheckpointState::decode(&bytes).unwrap_err();
        assert!(err.0.contains("version"), "{err}");
    }

    #[test]
    fn crc32_matches_known_vector() {
        // Standard test vector: CRC-32("123456789") = 0xCBF43926.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn memory_sink_accumulates() {
        let mut sink = MemorySink::default();
        sink.write(&sample_state()).unwrap();
        sink.write(&sample_state()).unwrap();
        assert_eq!(sink.written.len(), 2);
    }
}
