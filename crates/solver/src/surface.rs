//! Surface wavefield snapshots — the data behind SPECFEM's "movie" output
//! (surface shaking maps rendered from production runs).

use specfem_mesh::LocalMesh;
use specfem_model::EARTH_RADIUS_M;

use crate::assemble::WaveFields;

/// Indices and positions of this rank's free-surface points.
#[derive(Debug, Clone, Default)]
pub struct SurfaceField {
    /// Local point ids on the free surface.
    pub points: Vec<u32>,
    /// Their positions (m).
    pub positions: Vec<[f64; 3]>,
}

impl SurfaceField {
    /// Collect the free-surface points of `mesh`.
    pub fn build(mesh: &LocalMesh) -> Self {
        let mut points = Vec::new();
        let mut positions = Vec::new();
        for (p, c) in mesh.coords.iter().enumerate() {
            let r = (c[0] * c[0] + c[1] * c[1] + c[2] * c[2]).sqrt();
            if (r - EARTH_RADIUS_M).abs() < 1.0 {
                points.push(p as u32);
                positions.push(*c);
            }
        }
        Self { points, positions }
    }

    /// Sample the velocity magnitude at every surface point — one movie
    /// frame.
    pub fn frame(&self, fields: &WaveFields) -> Vec<f32> {
        self.points
            .iter()
            .map(|&p| {
                let p = p as usize;
                let (vx, vy, vz) = (
                    fields.veloc[p * 3],
                    fields.veloc[p * 3 + 1],
                    fields.veloc[p * 3 + 2],
                );
                (vx * vx + vy * vy + vz * vz).sqrt()
            })
            .collect()
    }

    /// Geographic coordinates (lat°, lon°) of each surface point.
    pub fn latlon(&self) -> Vec<(f64, f64)> {
        self.positions
            .iter()
            .map(|p| {
                let r = (p[0] * p[0] + p[1] * p[1] + p[2] * p[2]).sqrt();
                let lat = (p[2] / r).asin().to_degrees();
                let lon = p[1].atan2(p[0]).to_degrees();
                (lat, lon)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use specfem_mesh::{GlobalMesh, MeshParams, Partition};
    use specfem_model::Prem;

    #[test]
    fn surface_points_cover_the_globe() {
        let params = MeshParams::new(4, 1);
        let mesh = GlobalMesh::build(&params, &Prem::isotropic_no_ocean());
        let local = Partition::serial(&mesh).extract(&mesh, 0);
        let surf = SurfaceField::build(&local);
        // 6·NEX² surface elements × (N+1)² points, shared → 6·(4N)²+2 =
        // 6·16·16+2 = 1538 unique points at degree 4, NEX 4.
        assert_eq!(surf.points.len(), 6 * (4 * 4) * (4 * 4) + 2);
        let ll = surf.latlon();
        assert!(ll.iter().any(|&(lat, _)| lat > 80.0));
        assert!(ll.iter().any(|&(lat, _)| lat < -80.0));
        assert!(ll.iter().any(|&(_, lon)| !(-170.0..=170.0).contains(&lon)));
    }

    #[test]
    fn frame_reads_velocity_magnitude() {
        let params = MeshParams::new(2, 1);
        let mesh = GlobalMesh::build(&params, &Prem::isotropic_no_ocean());
        let local = Partition::serial(&mesh).extract(&mesh, 0);
        let surf = SurfaceField::build(&local);
        let mut fields = WaveFields::zeros(local.nglob);
        for &p in &surf.points {
            fields.veloc[p as usize * 3] = 3.0;
            fields.veloc[p as usize * 3 + 1] = 4.0;
        }
        let frame = surf.frame(&fields);
        assert!(frame.iter().all(|&v| (v - 5.0).abs() < 1e-6));
    }
}
