//! Sensitivity kernels via the adjoint method (paper §1: "the capacity to
//! compute sensitivity kernels for inverse problems in addition to forward
//! problems", ref [13] Liu & Tromp).
//!
//! The shear-wave-speed (β) kernel is the time integral of the interaction
//! of the forward deviatoric strain with the time-reversed adjoint
//! deviatoric strain:
//!
//! `K_β(x) = −2 ∫ 2μ D[u†](x, T−t) : D[u](x, t) dt / (ρ β²)`
//!
//! Here both wavefields come from two forward runs of the same solver —
//! the adjoint source is the (reversed) seismogram injected at the
//! receiver — and the kernel is assembled from displacement snapshots.

use specfem_gll::GllBasis;
use specfem_kernels::{cutplane_derivatives, DerivOps, KernelVariant, NGLL3, NGLL3_PADDED};
use specfem_mesh::LocalMesh;

use crate::assemble::PrecomputedGeometry;

/// Displacement snapshots of one run: `frames[f][point·3 + comp]`.
#[derive(Debug, Clone, Default)]
pub struct WavefieldSnapshots {
    /// Snapshot cadence in steps.
    pub every: usize,
    /// Time step of the run (s).
    pub dt: f64,
    /// The frames, oldest first.
    pub frames: Vec<Vec<f32>>,
}

impl WavefieldSnapshots {
    /// Seconds between frames.
    pub fn frame_dt(&self) -> f64 {
        self.dt * self.every as f64
    }
}

/// Deviatoric strain of one element at every GLL point, flattened
/// `[point][comp]` with comps (xx, yy, xy, xz, yz).
fn element_deviatoric_strain(
    mesh: &LocalMesh,
    geom: &PrecomputedGeometry,
    ops: &DerivOps,
    displ: &[f32],
    e: usize,
    out: &mut [[f32; 5]],
) {
    let n3 = mesh.points_per_element();
    let ib = &mesh.ibool[e * n3..(e + 1) * n3];
    let mut u = [[0.0f32; NGLL3_PADDED]; 3];
    for (c, uc) in u.iter_mut().enumerate() {
        for (l, &p) in ib.iter().enumerate() {
            uc[l] = displ[p as usize * 3 + c];
        }
    }
    let mut t = [[[0.0f32; NGLL3_PADDED]; 3]; 3];
    for c in 0..3 {
        let (t0, rest) = t[c].split_at_mut(1);
        let (t1, t2) = rest.split_at_mut(1);
        cutplane_derivatives(
            KernelVariant::Simd,
            &u[c],
            ops,
            &mut t0[0],
            &mut t1[0],
            &mut t2[0],
        );
    }
    let base = e * n3;
    for l in 0..NGLL3 {
        let idx = base + l;
        let (xix, xiy, xiz) = (geom.xix[idx], geom.xiy[idx], geom.xiz[idx]);
        let (etx, ety, etz) = (geom.etax[idx], geom.etay[idx], geom.etaz[idx]);
        let (gax, gay, gaz) = (geom.gammax[idx], geom.gammay[idx], geom.gammaz[idx]);
        let g = |c: usize, d: usize| -> f32 {
            match d {
                0 => t[c][0][l] * xix + t[c][1][l] * etx + t[c][2][l] * gax,
                1 => t[c][0][l] * xiy + t[c][1][l] * ety + t[c][2][l] * gay,
                _ => t[c][0][l] * xiz + t[c][1][l] * etz + t[c][2][l] * gaz,
            }
        };
        let div3 = (g(0, 0) + g(1, 1) + g(2, 2)) / 3.0;
        out[l] = [
            g(0, 0) - div3,
            g(1, 1) - div3,
            0.5 * (g(0, 1) + g(1, 0)),
            0.5 * (g(0, 2) + g(2, 0)),
            0.5 * (g(1, 2) + g(2, 1)),
        ];
    }
}

/// Assemble the β (shear) sensitivity kernel on this rank from forward and
/// adjoint snapshot sets. Returns one value per GLL point per element
/// (`nspec·n³`), in s/m³-like relative units.
pub fn shear_kernel(
    mesh: &LocalMesh,
    geom: &PrecomputedGeometry,
    forward: &WavefieldSnapshots,
    adjoint: &WavefieldSnapshots,
) -> Vec<f32> {
    assert_eq!(forward.frames.len(), adjoint.frames.len());
    assert!(forward.every == adjoint.every);
    let nframes = forward.frames.len();
    let n3 = mesh.points_per_element();
    assert_eq!(n3, NGLL3);
    let ops = DerivOps::from_basis(&GllBasis::new(mesh.basis.degree));
    let dt = forward.frame_dt() as f32;

    let mut kernel = vec![0.0f32; mesh.nspec * n3];
    let mut dev_f = [[0.0f32; 5]; NGLL3];
    let mut dev_a = [[0.0f32; 5]; NGLL3];
    for e in 0..mesh.nspec {
        if mesh.region[e].is_fluid() {
            continue; // no shear kernel in the fluid
        }
        for f in 0..nframes {
            // Adjoint field is time-reversed: pair frame f with the
            // adjoint frame (nframes−1−f).
            element_deviatoric_strain(mesh, geom, &ops, &forward.frames[f], e, &mut dev_f);
            element_deviatoric_strain(
                mesh,
                geom,
                &ops,
                &adjoint.frames[nframes - 1 - f],
                e,
                &mut dev_a,
            );
            for l in 0..NGLL3 {
                let idx = e * n3 + l;
                let mu = mesh.mu[idx];
                // D:D with the off-diagonal double counting (xy, xz, yz
                // appear twice in the full contraction) and the implicit
                // zz = −(xx+yy) terms of both tensors.
                let (f5, a5) = (&dev_f[l], &dev_a[l]);
                let zz_f = -(f5[0] + f5[1]);
                let zz_a = -(a5[0] + a5[1]);
                let dd = f5[0] * a5[0]
                    + f5[1] * a5[1]
                    + zz_f * zz_a
                    + 2.0 * (f5[2] * a5[2] + f5[3] * a5[3] + f5[4] * a5[4]);
                kernel[idx] -= 2.0 * 2.0 * mu * dd * dt / (mesh.rho[idx]);
            }
        }
    }
    kernel
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::assemble::WaveFields;
    use specfem_mesh::{GlobalMesh, MeshParams, Partition};
    use specfem_model::Prem;

    fn snapshots_from(fields: Vec<Vec<f32>>, dt: f64) -> WavefieldSnapshots {
        WavefieldSnapshots {
            every: 1,
            dt,
            frames: fields,
        }
    }

    #[test]
    fn zero_fields_give_zero_kernel() {
        let params = MeshParams::new(4, 1);
        let mesh = GlobalMesh::build(&params, &Prem::isotropic_no_ocean());
        let local = Partition::serial(&mesh).extract(&mesh, 0);
        let geom = PrecomputedGeometry::compute(&local, None);
        let zero = WaveFields::zeros(local.nglob).displ;
        let snaps = snapshots_from(vec![zero.clone(), zero], 1.0);
        let k = shear_kernel(&local, &geom, &snaps, &snaps);
        assert!(k.iter().all(|&v| v == 0.0));
    }

    #[test]
    fn identical_shear_fields_give_negative_kernel_in_solid() {
        // K_β for u† = u is −4μ|D|²dt/ρ ≤ 0 — strictly negative wherever
        // the field has deviatoric strain.
        let params = MeshParams::new(4, 1);
        let mesh = GlobalMesh::build(&params, &Prem::isotropic_no_ocean());
        let local = Partition::serial(&mesh).extract(&mesh, 0);
        let geom = PrecomputedGeometry::compute(&local, None);
        let mut displ = vec![0.0f32; local.nglob * 3];
        for (p, c) in local.coords.iter().enumerate() {
            displ[p * 3] = (c[1] / 2.0e6).sin() as f32; // pure shear-ish
        }
        let snaps = snapshots_from(vec![displ.clone()], 1.0);
        let k = shear_kernel(&local, &geom, &snaps, &snaps);
        let n3 = local.points_per_element();
        let mut negative = 0usize;
        let mut positive = 0usize;
        for e in 0..local.nspec {
            for l in 0..n3 {
                let v = k[e * n3 + l];
                if v < 0.0 {
                    negative += 1;
                }
                if v > 0.0 {
                    positive += 1;
                }
                if local.region[e].is_fluid() {
                    assert_eq!(v, 0.0, "fluid must have no shear kernel");
                }
            }
        }
        assert!(negative > 0);
        assert_eq!(positive, 0, "self-correlation kernel must be ≤ 0");
    }
}
