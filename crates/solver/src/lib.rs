//! The solver — the `specfem3D` analog (paper §3).
//!
//! Marches the global wave field forward in time with the explicit
//! second-order Newmark scheme on the spectral-element mesh:
//!
//! * solid regions (crust-mantle, inner core, central cube) solve the
//!   momentum equation with the two-stage cut-plane kernel of
//!   `specfem-kernels` (the >70 % hotspot of paper §4.3);
//! * the fluid outer core solves the acoustic potential equation
//!   (`u = ∇χ/ρ`, `p = −χ̈`);
//! * fluid and solid are coupled **non-iteratively through the displacement
//!   vector** at the CMB and ICB (paper §1, ref [4]);
//! * optional anelasticity via 3 standard-linear-solid memory variables
//!   (the ~1.8× runtime factor of §6), Coriolis rotation, and
//!   Cowling-approximation self-gravitation;
//! * halo assembly over `specfem-comm` after each force computation —
//!   the `assemble_MPI` step of §2.4;
//! * earthquake sources as CMT moment tensors spread through the gradient
//!   of the element basis, seismogram recording at located stations.
//!
//! The mesher and solver are *merged*: a run takes a `LocalMesh` directly
//! from `specfem-mesh` in memory (paper §4.1's I/O-bottleneck fix); the
//! legacy file-based handoff lives in `specfem-io` for the ablation.

// Numeric kernels index several arrays with one loop variable by design.
#![allow(clippy::needless_range_loop)]

pub mod absorbing;
pub mod adjoint;
pub mod assemble;
pub mod checkpoint;
pub mod coupling;
pub mod forces;
pub mod lts;
pub mod source;
pub mod surface;
pub mod timeloop;

pub use absorbing::AbsorbingSurface;
pub use adjoint::{shear_kernel, WavefieldSnapshots};
pub use assemble::{MassMatrices, PrecomputedGeometry, WaveFields};
pub use checkpoint::{CheckpointError, CheckpointSink, CheckpointState, MemorySink};
pub use coupling::CouplingSurface;
pub use lts::{LtsLevel, LtsState, LtsSummary};
pub use source::{ReceiverSet, Seismogram, SourceArrays, SourceSpec};
pub use timeloop::{
    merge_seismograms, run_distributed, run_serial, try_run_distributed,
    try_run_distributed_watched, try_run_partitioned, try_run_serial, FtOptions, RankResult,
    RankSolver, SolverError,
};
// In-flight telemetry types surfaced through the solver's API.
pub use specfem_comm::{WatchdogConfig, WatchdogReport};
pub use specfem_obs::{HealthMonitor, HealthReport, HealthTrip};

use specfem_comm::FaultPlan;
use specfem_kernels::KernelVariant;
use specfem_model::{SourceTimeFunction, StfKind};
use std::time::Duration;

/// Earth's rotation rate (rad/s).
pub const EARTH_OMEGA_RAD_S: f64 = 7.292_115e-5;

/// Solver configuration — the run-time half of the `Par_file`.
#[derive(Debug, Clone)]
pub struct SolverConfig {
    /// Kernel implementation (paper §4.3 ablation).
    pub variant: KernelVariant,
    /// Anelastic attenuation with 3-SLS memory variables.
    pub attenuation: bool,
    /// Coriolis term in the solid regions.
    pub rotation: bool,
    /// Cowling-approximation self-gravitation.
    pub gravity: bool,
    /// Ocean load: the 3-km global water column approximated as extra mass
    /// acting on the *normal* component of free-surface motion (exactly
    /// SPECFEM's equivalent-load treatment — the ocean is never meshed).
    pub ocean_load: bool,
    /// Number of time steps.
    pub nsteps: usize,
    /// Explicit time step (s); `None` → Courant-stable dt from the mesh.
    pub dt: Option<f64>,
    /// Record seismograms every this many steps.
    pub record_every: usize,
    /// Compute global energy diagnostics every this many steps (0 = never).
    pub energy_every: usize,
    /// Record full displacement snapshots every this many steps (0 = off)
    /// — the forward-wavefield storage adjoint kernels need (ref [13]).
    pub snapshot_every: usize,
    /// The source.
    pub source: SourceSpec,
    /// Locate stations with the exact nonlinear algorithm (true) or
    /// nearest-grid-point (false) — paper §4.4-2.
    pub exact_station_location: bool,
    /// Write a checkpoint every this many steps (0 = never). Only takes
    /// effect on the fault-tolerant run paths that supply a checkpoint
    /// store.
    pub checkpoint_every: usize,
    /// How many complete checkpoint generations the on-disk store keeps
    /// (`CHECKPOINT_KEEP`, min 1). Older generations are pruned after each
    /// successful write; the extras are the fallback when the newest
    /// container turns out corrupt.
    pub checkpoint_keep: usize,
    /// Deadline for blocking receives in the main loop; a stalled peer
    /// surfaces as `CommError::Timeout` naming `(src, tag)` instead of
    /// hanging the world. `None` waits forever.
    pub recv_timeout: Option<Duration>,
    /// Deterministic fault-injection schedule (delays, drops, corruption,
    /// rank death); `None` runs clean.
    pub fault_plan: Option<FaultPlan>,
    /// Record span traces and metrics on every rank (the IPM/PMaC-style
    /// instrumentation of paper §5). Off by default: with tracing off a
    /// would-be span costs a single relaxed atomic load.
    pub trace: bool,
    /// Where the run's observability artifacts (Perfetto trace, IPM
    /// report) are written by the facade; `None` keeps them in memory
    /// on the `RankResult`s only.
    pub trace_dir: Option<std::path::PathBuf>,
    /// Sample per-step timing metrics every this many steps when tracing
    /// (0 disables step sampling; spans are unaffected).
    pub metrics_every: usize,
    /// Overlap halo communication with inner-element computation: compute
    /// the outer elements, post the exchange, compute the inner elements
    /// while messages are in flight, then wait and combine. Bit-identical
    /// to the blocking path (the differential harness in
    /// `tests/overlap_equivalence.rs` enforces it), so this defaults on;
    /// turn it off to use the blocking path as the oracle.
    pub overlap: bool,
    /// Sample the numerical-health monitor every this many steps (0, the
    /// default, disables it): scans displacement/velocity/fluid fields
    /// for NaN/Inf and sustained exponential growth and aborts the run
    /// with a structured [`specfem_obs::HealthReport`] naming rank,
    /// step, element, and field. The disabled path never reads the
    /// fields, so output is bit-identical with the monitor off.
    pub health_every: usize,
    /// Arm the straggler watchdog on distributed runs: a monitor thread
    /// flags any rank whose heartbeat age exceeds this, emits skew
    /// gauges, and escalates a genuine stall to
    /// [`specfem_comm::CommError::Stalled`] instead of hanging. `None`
    /// (the default) leaves the watchdog off — the step hook stays a
    /// no-op.
    pub watchdog_timeout: Option<Duration>,
    /// `LTS_MAX_RATE`: cap on the clustered local-time-stepping rate
    /// (power of two ≤ [`specfem_mesh::MAX_LTS_RATE`]). 1 (the default)
    /// disables LTS and runs the plain timeloop; larger caps let coarse
    /// clusters refresh their stiffness forces every 2^k fine steps.
    /// When checkpointing, `checkpoint_every` must be a multiple of the
    /// cap so every cluster refreshes on the first resumed step (frozen
    /// contributions then never need to be persisted).
    pub lts_max_rate: usize,
    /// Test hook: run the clustered LTS machinery with *every* element at
    /// rate 1 — the differential oracle configuration that must be 0-ULP
    /// bit-identical to the plain timeloop (`tests/lts_equivalence.rs`).
    pub lts_all_rate_one: bool,
    /// `FLIGHT_RECORDER`: arm the per-rank flight recorder — a fixed-size
    /// ring journal of recent span/comm/health/checkpoint events kept so
    /// a failed run can write a crash dossier from its last moments. Off
    /// by default; when off a would-be journal entry costs one relaxed
    /// atomic load, and when on the recorder only reads metadata, so the
    /// physics is bit-identical either way
    /// (`tests/flight_recorder.rs`).
    pub flight_recorder: bool,
    /// `FLIGHT_BUFFER_EVENTS`: ring capacity of each rank's flight
    /// journal in events (clamped to at least 16).
    pub flight_buffer_events: usize,
    /// Correlation id of the request/job this run executes for; stamped
    /// onto each `RankResult` and any crash dossier. `None` for runs
    /// nobody is tracing end-to-end.
    pub trace_id: Option<specfem_obs::TraceId>,
}

impl Default for SolverConfig {
    fn default() -> Self {
        Self {
            variant: KernelVariant::default(),
            attenuation: false,
            rotation: false,
            gravity: false,
            ocean_load: false,
            nsteps: 100,
            dt: None,
            record_every: 1,
            energy_every: 0,
            snapshot_every: 0,
            source: SourceSpec::default(),
            exact_station_location: false,
            checkpoint_every: 0,
            checkpoint_keep: 2,
            recv_timeout: Some(Duration::from_secs(30)),
            fault_plan: None,
            trace: false,
            trace_dir: None,
            metrics_every: 10,
            overlap: true,
            health_every: 0,
            watchdog_timeout: None,
            lts_max_rate: 1,
            lts_all_rate_one: false,
            flight_recorder: false,
            flight_buffer_events: 1024,
            trace_id: None,
        }
    }
}

impl SolverConfig {
    /// Default source-time function for a given shortest period: Ricker
    /// with a half-duration that fits the resolution.
    pub fn default_stf(shortest_period_s: f64) -> SourceTimeFunction {
        SourceTimeFunction::new(StfKind::Ricker, shortest_period_s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_is_production_like() {
        let c = SolverConfig::default();
        assert_eq!(c.variant, KernelVariant::Reference);
        assert!(!c.attenuation);
        assert!(c.record_every >= 1);
    }
}
