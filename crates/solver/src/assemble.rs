//! Solver setup: precomputed metric arrays, assembled (diagonal) mass
//! matrices, and the global wave-field storage.

use specfem_comm::{assemble_halo, tags, CommError, Communicator};
use specfem_mesh::{LocalMesh, MeshRegion};

/// Metric terms and material constants of every local element, flattened
/// `[e · n³ + point]` for streaming access in the force kernels.
#[derive(Debug, Clone)]
pub struct PrecomputedGeometry {
    pub xix: Vec<f32>,
    pub xiy: Vec<f32>,
    pub xiz: Vec<f32>,
    pub etax: Vec<f32>,
    pub etay: Vec<f32>,
    pub etaz: Vec<f32>,
    pub gammax: Vec<f32>,
    pub gammay: Vec<f32>,
    pub gammaz: Vec<f32>,
    pub jacobian: Vec<f32>,
    /// Radial unit vector at every GLL point (for gravity/rotation terms).
    pub rhat: Vec<[f32; 3]>,
    /// Gravitational acceleration magnitude at every GLL point (m/s²);
    /// empty unless gravity is enabled.
    pub g_at_point: Vec<f32>,
}

impl PrecomputedGeometry {
    /// Compute all metric terms of `mesh` (one pass over the elements).
    pub fn compute(mesh: &LocalMesh, gravity: Option<&specfem_model::GravityProfile>) -> Self {
        let n3 = mesh.points_per_element();
        let total = mesh.nspec * n3;
        let mut out = Self {
            xix: Vec::with_capacity(total),
            xiy: Vec::with_capacity(total),
            xiz: Vec::with_capacity(total),
            etax: Vec::with_capacity(total),
            etay: Vec::with_capacity(total),
            etaz: Vec::with_capacity(total),
            gammax: Vec::with_capacity(total),
            gammay: Vec::with_capacity(total),
            gammaz: Vec::with_capacity(total),
            jacobian: Vec::with_capacity(total),
            rhat: Vec::with_capacity(total),
            g_at_point: Vec::new(),
        };
        if gravity.is_some() {
            out.g_at_point.reserve(total);
        }
        for e in 0..mesh.nspec {
            let g = mesh.element_geometry(e);
            out.xix.extend_from_slice(&g.xix);
            out.xiy.extend_from_slice(&g.xiy);
            out.xiz.extend_from_slice(&g.xiz);
            out.etax.extend_from_slice(&g.etax);
            out.etay.extend_from_slice(&g.etay);
            out.etaz.extend_from_slice(&g.etaz);
            out.gammax.extend_from_slice(&g.gammax);
            out.gammay.extend_from_slice(&g.gammay);
            out.gammaz.extend_from_slice(&g.gammaz);
            out.jacobian.extend_from_slice(&g.jacobian);
            for &lid in &mesh.ibool[e * n3..(e + 1) * n3] {
                let p = mesh.coords[lid as usize];
                let r = (p[0] * p[0] + p[1] * p[1] + p[2] * p[2]).sqrt();
                if r > 0.0 {
                    out.rhat
                        .push([(p[0] / r) as f32, (p[1] / r) as f32, (p[2] / r) as f32]);
                } else {
                    out.rhat.push([0.0, 0.0, 0.0]);
                }
                if let Some(prof) = gravity {
                    out.g_at_point.push(prof.g_at(r) as f32);
                }
            }
        }
        out
    }
}

/// Assembled diagonal mass matrices: `M_solid[p] = Σ ρ J w³` over solid
/// elements, `M_fluid[p] = Σ (1/κ) J w³` over fluid elements (paper §2.4:
/// "the mass matrix M is diagonal by construction").
#[derive(Debug, Clone)]
pub struct MassMatrices {
    /// Solid mass per local point (zero at fluid-only points).
    pub solid: Vec<f32>,
    /// Fluid "mass" per local point (zero at solid-only points).
    pub fluid: Vec<f32>,
}

impl MassMatrices {
    /// Build and globally assemble the mass matrices.
    pub fn build(
        mesh: &LocalMesh,
        geom: &PrecomputedGeometry,
        comm: &mut dyn Communicator,
    ) -> Result<Self, CommError> {
        let np = mesh.basis.npoints();
        let n3 = mesh.points_per_element();
        let w = &mesh.basis.weights;
        let mut solid = vec![0.0f32; mesh.nglob];
        let mut fluid = vec![0.0f32; mesh.nglob];
        for e in 0..mesh.nspec {
            let is_fluid = mesh.region[e].is_fluid();
            for k in 0..np {
                for j in 0..np {
                    for i in 0..np {
                        let l = (k * np + j) * np + i;
                        let idx = e * n3 + l;
                        let p = mesh.ibool[idx] as usize;
                        let w3 = (w[i] * w[j] * w[k]) as f32;
                        let jw = geom.jacobian[idx] * w3;
                        if is_fluid {
                            fluid[p] += jw / mesh.kappa[idx];
                        } else {
                            solid[p] += mesh.rho[idx] * jw;
                        }
                    }
                }
            }
        }
        // Sum shared-point contributions across ranks once, at startup.
        assemble_halo(comm, &mesh.halo, &mut solid, 1, tags::HALO_SOLID)?;
        assemble_halo(comm, &mesh.halo, &mut fluid, 1, tags::HALO_FLUID)?;
        Ok(Self { solid, fluid })
    }
}

/// The global degrees of freedom of one rank: solid displacement/velocity/
/// acceleration (3 components, point-major `[p·3 + c]`) and the fluid
/// potential χ and its time derivatives.
#[derive(Debug, Clone)]
pub struct WaveFields {
    pub displ: Vec<f32>,
    pub veloc: Vec<f32>,
    pub accel: Vec<f32>,
    pub chi: Vec<f32>,
    pub chi_dot: Vec<f32>,
    pub chi_ddot: Vec<f32>,
}

impl WaveFields {
    /// Zero-initialized fields for `nglob` points.
    pub fn zeros(nglob: usize) -> Self {
        Self {
            displ: vec![0.0; nglob * 3],
            veloc: vec![0.0; nglob * 3],
            accel: vec![0.0; nglob * 3],
            chi: vec![0.0; nglob],
            chi_dot: vec![0.0; nglob],
            chi_ddot: vec![0.0; nglob],
        }
    }

    /// Newmark predictor: `u += dt·v + dt²/2·a; v += dt/2·a; a = 0`, for
    /// both solid and fluid unknowns.
    pub fn predictor(&mut self, dt: f32) {
        let half_dt = 0.5 * dt;
        let dt2_half = 0.5 * dt * dt;
        for ((u, v), a) in self
            .displ
            .iter_mut()
            .zip(self.veloc.iter_mut())
            .zip(self.accel.iter_mut())
        {
            *u += dt * *v + dt2_half * *a;
            *v += half_dt * *a;
            *a = 0.0;
        }
        for ((c, cd), cdd) in self
            .chi
            .iter_mut()
            .zip(self.chi_dot.iter_mut())
            .zip(self.chi_ddot.iter_mut())
        {
            *c += dt * *cd + dt2_half * *cdd;
            *cd += half_dt * *cdd;
            *cdd = 0.0;
        }
    }

    /// Newmark corrector for the solid: `a ← a/M; v += dt/2·a` (only where
    /// solid mass exists).
    pub fn corrector_solid(&mut self, mass: &[f32], dt: f32) {
        let half_dt = 0.5 * dt;
        for (p, &m) in mass.iter().enumerate() {
            if m > 0.0 {
                let inv = 1.0 / m;
                for c in 0..3 {
                    let a = &mut self.accel[p * 3 + c];
                    *a *= inv;
                    self.veloc[p * 3 + c] += half_dt * *a;
                }
            }
        }
    }

    /// Newmark corrector for the fluid potential.
    pub fn corrector_fluid(&mut self, mass: &[f32], dt: f32) {
        let half_dt = 0.5 * dt;
        for (p, &m) in mass.iter().enumerate() {
            if m > 0.0 {
                let inv = 1.0 / m;
                let a = &mut self.chi_ddot[p];
                *a *= inv;
                self.chi_dot[p] += half_dt * *a;
            }
        }
    }
}

/// Which points belong to solid / fluid regions (both at interfaces).
pub fn region_masks(mesh: &LocalMesh) -> (Vec<bool>, Vec<bool>) {
    let n3 = mesh.points_per_element();
    let mut solid = vec![false; mesh.nglob];
    let mut fluid = vec![false; mesh.nglob];
    for e in 0..mesh.nspec {
        let dst = if mesh.region[e] == MeshRegion::OuterCore {
            &mut fluid
        } else {
            &mut solid
        };
        for &p in &mesh.ibool[e * n3..(e + 1) * n3] {
            dst[p as usize] = true;
        }
    }
    (solid, fluid)
}

#[cfg(test)]
mod tests {
    use super::*;
    use specfem_comm::SerialComm;
    use specfem_mesh::{GlobalMesh, MeshParams, Partition};
    use specfem_model::Prem;

    fn serial_mesh() -> LocalMesh {
        let params = MeshParams::new(4, 1);
        let prem = Prem::isotropic_no_ocean();
        let mesh = GlobalMesh::build(&params, &prem);
        Partition::serial(&mesh).extract(&mesh, 0)
    }

    #[test]
    fn mass_matrices_are_positive_where_defined_and_partition_points() {
        let mesh = serial_mesh();
        let geom = PrecomputedGeometry::compute(&mesh, None);
        let mut comm = SerialComm::new();
        let mass = MassMatrices::build(&mesh, &geom, &mut comm).unwrap();
        let (solid_mask, fluid_mask) = region_masks(&mesh);
        for p in 0..mesh.nglob {
            assert_eq!(mass.solid[p] > 0.0, solid_mask[p], "solid mass at {p}");
            assert_eq!(mass.fluid[p] > 0.0, fluid_mask[p], "fluid mass at {p}");
            assert!(
                solid_mask[p] || fluid_mask[p],
                "point {p} belongs to no region"
            );
        }
    }

    #[test]
    fn total_solid_mass_matches_model_mass_of_solid_regions() {
        // Σ M_solid = ∫ρ dV over the solid regions — compare against a
        // direct quadrature of the same elements.
        let mesh = serial_mesh();
        let geom = PrecomputedGeometry::compute(&mesh, None);
        let mut comm = SerialComm::new();
        let mass = MassMatrices::build(&mesh, &geom, &mut comm).unwrap();
        let total: f64 = mass.solid.iter().map(|&m| m as f64).sum();
        // Earth minus outer core ≈ 5.97e24 − 1.84e24 ≈ 4.1e24 kg. The
        // NEX=4 mesh is crude; accept 5 %.
        assert!(
            (total - 4.13e24).abs() < 0.05 * 4.13e24,
            "solid mass {total:.3e}"
        );
    }

    #[test]
    fn predictor_then_correctors_reproduce_newmark_free_flight() {
        // With zero forces, constant acceleration = 0: u advances linearly.
        let mut f = WaveFields::zeros(4);
        f.veloc[0] = 2.0;
        let mass = vec![1.0f32; 4];
        let dt = 0.1f32;
        for _ in 0..10 {
            f.predictor(dt);
            f.corrector_solid(&mass, dt);
        }
        assert!((f.displ[0] - 2.0).abs() < 1e-5); // 2.0 m/s × 1.0 s
        assert!((f.veloc[0] - 2.0).abs() < 1e-6);
    }

    #[test]
    fn fluid_corrector_skips_zero_mass() {
        let mut f = WaveFields::zeros(2);
        f.chi_ddot = vec![4.0, 4.0];
        let mass = vec![2.0f32, 0.0];
        f.corrector_fluid(&mass, 0.5);
        assert_eq!(f.chi_ddot[0], 2.0);
        assert_eq!(f.chi_ddot[1], 4.0); // untouched
        assert_eq!(f.chi_dot[0], 0.5);
    }

    #[test]
    fn geometry_arrays_have_consistent_lengths_and_unit_rhat() {
        let mesh = serial_mesh();
        let geom = PrecomputedGeometry::compute(&mesh, None);
        let total = mesh.nspec * mesh.points_per_element();
        assert_eq!(geom.jacobian.len(), total);
        assert_eq!(geom.rhat.len(), total);
        assert!(geom.g_at_point.is_empty());
        for rh in geom.rhat.iter().step_by(97) {
            let n = (rh[0] * rh[0] + rh[1] * rh[1] + rh[2] * rh[2]).sqrt();
            assert!(n == 0.0 || (n - 1.0).abs() < 1e-5);
        }
    }
}
