//! The time-marching driver: Newmark predictor, fluid solve, fluid→solid
//! coupling, solid solve, halo assembly, correctors — the "main loop of the
//! solver component" whose communication share the paper measures at
//! 1.9–4.2 % (§5).

use std::fmt;
use std::time::Instant;

use specfem_comm::{
    assemble_halo, finish_halo_assembly, post_halo_exchange, tags, CommError, Communicator,
    FaultyComm, NetworkProfile, SerialComm, StatsSnapshot, ThreadWorld,
};
use specfem_kernels::{DerivOps, FlopCounter};
use specfem_mesh::stations::Station;
use specfem_mesh::{GlobalMesh, LocalMesh, Partition};

use crate::absorbing::AbsorbingSurface;
use crate::assemble::{region_masks, MassMatrices, PrecomputedGeometry, WaveFields};
use crate::checkpoint::{CheckpointError, CheckpointSink, CheckpointState};
use crate::coupling::CouplingSurface;
use crate::forces::{
    compute_fluid_contribs, compute_fluid_forces_range, compute_solid_contribs,
    compute_solid_forces_range, AttenuationState,
};
use crate::lts::{scatter_flops, scatter_fluid, scatter_solid, LtsState, LtsSummary};
use crate::source::{ReceiverSet, Seismogram, SourceArrays};
use crate::{SolverConfig, EARTH_OMEGA_RAD_S};

/// Why a rank's run failed.
#[derive(Debug, Clone)]
pub enum SolverError {
    /// A communication operation failed (timeout, dead peer, injected
    /// fault, …).
    Comm(CommError),
    /// Checkpoint capture, storage, or restore failed.
    Checkpoint(CheckpointError),
    /// The numerical-health monitor tripped (NaN/Inf or sustained
    /// exponential growth in a wave field); the report names rank, step,
    /// field, and element so the operator knows where the blow-up started.
    Health(specfem_obs::HealthReport),
    /// The rank's thread panicked.
    RankPanicked {
        /// The rank that died.
        rank: usize,
        /// Best-effort panic message.
        message: String,
    },
}

impl fmt::Display for SolverError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SolverError::Comm(e) => write!(f, "communication failure: {e}"),
            SolverError::Checkpoint(e) => write!(f, "{e}"),
            SolverError::Health(r) => write!(f, "{r}"),
            SolverError::RankPanicked { rank, message } => {
                write!(f, "rank {rank} panicked: {message}")
            }
        }
    }
}

impl std::error::Error for SolverError {}

impl From<CommError> for SolverError {
    fn from(e: CommError) -> Self {
        SolverError::Comm(e)
    }
}

impl From<specfem_obs::HealthReport> for SolverError {
    fn from(r: specfem_obs::HealthReport) -> Self {
        SolverError::Health(r)
    }
}

impl From<CheckpointError> for SolverError {
    fn from(e: CheckpointError) -> Self {
        SolverError::Checkpoint(e)
    }
}

/// Everything one rank returns from a run.
#[derive(Debug, Clone)]
pub struct RankResult {
    /// Rank id.
    pub rank: usize,
    /// Seismograms recorded on this rank.
    pub seismograms: Vec<Seismogram>,
    /// `(step, kinetic, potential)` energy samples (global, identical on
    /// all ranks).
    pub energy: Vec<(usize, f64, f64)>,
    /// Wall-clock seconds of the main loop.
    pub elapsed_s: f64,
    /// Communication statistics of the main loop (IPM analog).
    pub comm: StatsSnapshot,
    /// Total flops executed by this rank's kernels.
    pub flops: u64,
    /// Time step used (s).
    pub dt: f64,
    /// Steps taken.
    pub nsteps: usize,
    /// Local elements / points.
    pub nspec: usize,
    pub nglob: usize,
    /// Worst station location error on this rank (m).
    pub station_error_m: f64,
    /// Displacement snapshots (when `snapshot_every > 0`).
    pub snapshots: Option<crate::adjoint::WavefieldSnapshots>,
    /// Span trace and metrics captured on this rank's thread
    /// (`Some` only when `config.trace` enabled the recorder).
    pub profile: Option<specfem_obs::RankProfile>,
    /// Clustered local-time-stepping telemetry (`Some` only when LTS ran:
    /// `lts_max_rate > 1` or the rate-1 oracle hook).
    pub lts: Option<LtsSummary>,
    /// Correlation id of the request/job this run executed for, echoed
    /// from `config.trace_id` so result consumers can stitch the rank
    /// into an end-to-end timeline.
    pub trace_id: Option<specfem_obs::TraceId>,
}

impl RankResult {
    /// Sustained flop rate of this rank (flops/s of wall time).
    pub fn flop_rate(&self) -> f64 {
        self.flops as f64 / self.elapsed_s.max(1e-12)
    }

    /// Fraction of the main loop spent communicating (wall basis).
    pub fn comm_fraction(&self) -> f64 {
        self.comm.wall_time_s / self.elapsed_s.max(1e-12)
    }
}

/// One rank's solver state.
pub struct RankSolver {
    /// The rank's mesh slice.
    pub mesh: LocalMesh,
    config: SolverConfig,
    geom: PrecomputedGeometry,
    ops: DerivOps,
    mass: MassMatrices,
    /// The wave fields (public for tests and custom initial conditions).
    pub fields: WaveFields,
    coupling: CouplingSurface,
    absorbing: AbsorbingSurface,
    /// Ocean-load table: `(point, M/(M+M_ocean), outward normal)` for every
    /// free-surface point when the ocean load is on.
    ocean: Vec<(u32, f32, [f32; 3])>,
    atten: Option<AttenuationState>,
    /// Clustered local-time-stepping state (`None` runs the plain loop).
    lts: Option<LtsState>,
    source: SourceArrays,
    apply_source: bool,
    receivers: ReceiverSet,
    owned: Vec<bool>,
    /// Time step (s).
    pub dt: f64,
    flops: FlopCounter,
    energy: Vec<(usize, f64, f64)>,
    snapshots: Vec<Vec<f32>>,
    /// First step the time loop executes (nonzero after a checkpoint
    /// restore).
    start_step: usize,
    /// Numerical-health monitor (disabled when `config.health_every == 0`;
    /// the disabled path never touches the fields).
    health: specfem_obs::HealthMonitor,
}

/// Unwrap a setup-phase collective: failures before the first step are
/// fatal (there is no earlier checkpoint to fall back to).
fn setup<T>(r: Result<T, CommError>) -> T {
    r.unwrap_or_else(|e| panic!("collective failed during solver setup: {e}"))
}

/// Map a health trip's flat field index back to the local element holding
/// the offending grid point. Vector fields (`displ`, `veloc`) interleave
/// `[x, y, z]` per point; the fluid potentials are scalar. The
/// O(nspec·NGLL³) `ibool` scan only runs on the (fatal) trip path.
fn attribute_element(mesh: &LocalMesh, field: &str, point: usize) -> Option<usize> {
    let pid = if matches!(field, "chi" | "chi_dot" | "chi_ddot") {
        point
    } else {
        point / 3
    } as u32;
    let npe = mesh.points_per_element();
    mesh.ibool.chunks(npe).position(|elem| elem.contains(&pid))
}

impl RankSolver {
    /// Set up one rank: metric terms, assembled mass matrices, coupling
    /// surface, source and receiver location (collective call).
    pub fn new(
        mesh: LocalMesh,
        config: &SolverConfig,
        stations: &[Station],
        comm: &mut dyn Communicator,
    ) -> Self {
        let _span = specfem_obs::span("solver.setup");
        let gravity_profile = if config.gravity {
            Some(specfem_model::GravityProfile::new(
                &specfem_model::Prem::isotropic_no_ocean(),
                256,
            ))
        } else {
            None
        };
        let geom = PrecomputedGeometry::compute(&mesh, gravity_profile.as_ref());
        let ops = DerivOps::from_basis(&mesh.basis);
        // Setup-phase comm failures are fatal: there is no earlier state to
        // fall back to, so a clear panic beats a half-built solver.
        let mass = MassMatrices::build(&mesh, &geom, comm)
            .unwrap_or_else(|e| panic!("mass-matrix assembly failed: {e}"));
        let coupling = CouplingSurface::build(&mesh);
        // Artificial-boundary faces (regional meshes; empty for the globe).
        let absorbing = AbsorbingSurface::build(&mesh, specfem_model::EARTH_RADIUS_M);

        // Ocean load (§3): extra water-column mass on the normal component
        // of free-surface motion. Assemble the extra mass across ranks so
        // shared edge points agree, then precompute M/(M+M_o).
        let ocean = if config.ocean_load {
            const RHO_WATER: f32 = 1020.0;
            const OCEAN_DEPTH_M: f32 = 3000.0;
            let all_faces = AbsorbingSurface::build_including_free_surface(&mesh);
            let mut extra = vec![0.0f32; mesh.nglob];
            let mut normals = vec![[0.0f32; 3]; mesh.nglob];
            for ap in &all_faces.points {
                let p = ap.point as usize;
                let c = mesh.coords[p];
                let r = (c[0] * c[0] + c[1] * c[1] + c[2] * c[2]).sqrt();
                if (r - specfem_model::EARTH_RADIUS_M).abs() < 1.0 {
                    extra[p] += RHO_WATER * OCEAN_DEPTH_M * ap.weight;
                    normals[p] = ap.normal;
                }
            }
            specfem_comm::assemble_halo(
                comm,
                &mesh.halo,
                &mut extra,
                1,
                specfem_comm::tags::HALO_SOLID,
            )
            .unwrap_or_else(|e| panic!("ocean-load assembly failed: {e}"));
            extra
                .iter()
                .enumerate()
                .filter(|(_, &m)| m > 0.0)
                .map(|(p, &mo)| {
                    let m = mass.solid[p];
                    (p as u32, m / (m + mo), normals[p])
                })
                .collect()
        } else {
            Vec::new()
        };

        // Collective dt: local Courant bound, reduced over ranks.
        let quality = mesh.quality();
        let dt = match config.dt {
            Some(dt) => dt,
            None => setup(comm.allreduce_min(quality.dt_stable_s)),
        };

        // Attenuation band centred on what the mesh resolves.
        let atten_period = if config.attenuation {
            Some(setup(comm.allreduce_max(quality.shortest_period_s)))
        } else {
            None
        };
        let atten = atten_period.map(|period| AttenuationState::new(&mesh, dt, period));

        // Clustered LTS: off at the default cap of 1 unless the rate-1
        // differential-oracle hook forces the machinery on.
        let lts = if config.lts_max_rate > 1 || config.lts_all_rate_one {
            specfem_mesh::lts::validate_max_rate(config.lts_max_rate)
                .unwrap_or_else(|e| panic!("{e}"));
            if config.checkpoint_every > 0
                && !config.checkpoint_every.is_multiple_of(config.lts_max_rate)
            {
                panic!(
                    "CHECKPOINT_EVERY ({}) must be a multiple of LTS_MAX_RATE ({}) so every \
                     cluster refreshes its frozen forces on the first resumed step",
                    config.checkpoint_every, config.lts_max_rate
                );
            }
            let atten_params = atten_period.map(|p| (dt, p));
            Some(if config.lts_all_rate_one {
                LtsState::new(
                    &mesh,
                    vec![1; mesh.nspec],
                    config.lts_max_rate as u32,
                    atten_params,
                )
            } else {
                LtsState::from_mesh(&mesh, dt, config.lts_max_rate, atten_params)
            })
        } else {
            None
        };

        // Source: every rank locates; the best fit applies it.
        let source = SourceArrays::build(&mesh, &config.source);
        let best = setup(comm.allreduce_min(source.locate_cost()));
        let mine = if (source.locate_cost() - best).abs() <= 1e-9 * best.max(1.0) {
            comm.rank() as f64
        } else {
            f64::INFINITY
        };
        let winner = setup(comm.allreduce_min(mine));
        let apply_source = best.is_finite() && winner == comm.rank() as f64;

        // Receivers: per-station ownership by best location error.
        let mut receivers = ReceiverSet::locate(&mesh, stations, config.exact_station_location);
        let errors = receivers.errors();
        let mut keep = vec![false; errors.len()];
        for (s, &err) in errors.iter().enumerate() {
            let best = setup(comm.allreduce_min(err));
            let mine = if (err - best).abs() <= 1e-9 * best.max(1.0) {
                comm.rank() as f64
            } else {
                f64::INFINITY
            };
            let winner = setup(comm.allreduce_min(mine));
            keep[s] = winner == comm.rank() as f64;
        }
        receivers.retain(&keep);

        // Point ownership (lowest sharing rank) for global reductions.
        let mut owned = vec![true; mesh.nglob];
        for n in &mesh.halo.neighbors {
            if n.rank < mesh.rank {
                for &p in &n.points {
                    owned[p as usize] = false;
                }
            }
        }

        let fields = WaveFields::zeros(mesh.nglob);
        Self {
            fields,
            config: config.clone(),
            geom,
            ops,
            mass,
            coupling,
            absorbing,
            ocean,
            atten,
            lts,
            source,
            apply_source,
            receivers,
            owned,
            dt,
            flops: FlopCounter::new(),
            energy: Vec::new(),
            snapshots: Vec::new(),
            start_step: 0,
            health: specfem_obs::HealthMonitor::new(config.health_every),
            mesh,
        }
    }

    /// Remove the absorbing surface (test hook: compare absorbing vs
    /// reflecting behaviour on the same regional mesh).
    pub fn disable_absorbing_for_tests(&mut self) {
        self.absorbing = AbsorbingSurface::default();
    }

    /// Direct access to the LTS state (test hook: the loop-order-invariance
    /// harness splits the rate-1 level into artificial clusters swept in
    /// arbitrary order to prove the canonical scatter makes the sweep order
    /// irrelevant).
    pub fn lts_state_mut_for_tests(&mut self) -> Option<&mut LtsState> {
        self.lts.as_mut()
    }

    /// Impose an initial solid displacement field (for source-free
    /// validation runs): `f(x, y, z) → [ux, uy, uz]`.
    pub fn set_initial_displacement(&mut self, f: impl Fn([f64; 3]) -> [f64; 3]) {
        let (solid_mask, _) = region_masks(&self.mesh);
        for (p, coord) in self.mesh.coords.iter().enumerate() {
            if solid_mask[p] {
                let u = f(*coord);
                for c in 0..3 {
                    self.fields.displ[p * 3 + c] = u[c] as f32;
                }
            }
        }
    }

    /// Advance one time step. `istep` is 0-based; the source is evaluated
    /// at `t = (istep + 1)·dt`.
    pub fn step(&mut self, istep: usize, comm: &mut dyn Communicator) -> Result<(), SolverError> {
        comm.on_time_step(istep)?;
        let _span = specfem_obs::span("step");
        let dt = self.dt as f32;
        let t = (istep + 1) as f64 * self.dt;

        // 1. Newmark predictor on both media.
        {
            let _s = specfem_obs::span("step.predictor");
            self.fields.predictor(dt);
        }

        // 2. Fluid outer core: coupling from the *predicted solid
        //    displacement* (the displacement-based scheme of [4]), then
        //    stiffness, assemble, divide by mass.
        //
        //    The coupling term is applied *before* the element loop so the
        //    per-point accumulation order — boundary terms, outer elements,
        //    inner elements, received halo partials — is identical whether
        //    the exchange is blocking or overlapped: float addition is not
        //    associative, and this ordering is what keeps the two paths
        //    bit-identical (enforced by `tests/overlap_equivalence.rs`).
        {
            let _s = specfem_obs::span("forces.fluid");
            self.coupling
                .add_solid_displacement_to_fluid(&mut self.fields);
        }
        if self.lts.is_some() {
            // LTS: refresh the active clusters' frozen contributions, then
            // scatter *all* elements in canonical ascending order.
            self.lts_fluid_phase(istep, comm)?;
        } else if self.config.overlap {
            // Outer elements first, post the halo exchange, fill the
            // in-flight window with the inner elements, then wait/combine.
            {
                let _s = specfem_obs::span("forces.fluid.outer");
                compute_fluid_forces_range(
                    &self.mesh,
                    &self.geom,
                    &self.ops,
                    self.config.variant,
                    &mut self.fields,
                    &mut self.flops,
                    self.mesh.outer_elements(),
                );
            }
            let reqs = post_halo_exchange(
                comm,
                &self.mesh.halo,
                &self.fields.chi_ddot,
                1,
                tags::HALO_FLUID,
            )?;
            {
                let _s = specfem_obs::span("forces.fluid.inner");
                compute_fluid_forces_range(
                    &self.mesh,
                    &self.geom,
                    &self.ops,
                    self.config.variant,
                    &mut self.fields,
                    &mut self.flops,
                    self.mesh.inner_elements(),
                );
            }
            finish_halo_assembly(comm, &self.mesh.halo, &mut self.fields.chi_ddot, 1, reqs)?;
        } else {
            {
                let _s = specfem_obs::span("forces.fluid");
                compute_fluid_forces_range(
                    &self.mesh,
                    &self.geom,
                    &self.ops,
                    self.config.variant,
                    &mut self.fields,
                    &mut self.flops,
                    0..self.mesh.nspec,
                );
            }
            let _s = specfem_obs::span("assemble.fluid");
            assemble_halo(
                comm,
                &self.mesh.halo,
                &mut self.fields.chi_ddot,
                1,
                tags::HALO_FLUID,
            )?;
        }
        self.fields.corrector_fluid(&self.mass.fluid, dt);

        // 3. Solid regions: coupling from the fresh fluid acceleration,
        //    absorbing boundaries and the source — all *before* the
        //    stiffness loop (same bit-identity rationale as the fluid
        //    phase; every one of these terms only adds into `accel` from
        //    fields the stiffness loop does not write) — then stiffness
        //    (+ attenuation, gravity) and assembly.
        {
            let _s = specfem_obs::span("forces.solid");
            self.coupling.add_fluid_pressure_to_solid(&mut self.fields);
            if !self.absorbing.is_empty() {
                // Stacey condition on artificial boundaries (regional
                // runs), driven by the predicted velocity.
                self.absorbing.apply(&mut self.fields);
            }
            if self.apply_source {
                self.source.apply(t, &mut self.fields);
            }
        }
        if self.lts.is_some() {
            self.lts_solid_phase(istep, comm)?;
        } else if self.config.overlap {
            {
                let _s = specfem_obs::span("forces.solid.outer");
                compute_solid_forces_range(
                    &self.mesh,
                    &self.geom,
                    &self.ops,
                    self.config.variant,
                    &mut self.fields,
                    self.atten.as_mut(),
                    self.config.gravity,
                    &mut self.flops,
                    self.mesh.outer_elements(),
                );
            }
            let reqs = post_halo_exchange(
                comm,
                &self.mesh.halo,
                &self.fields.accel,
                3,
                tags::HALO_SOLID,
            )?;
            {
                let _s = specfem_obs::span("forces.solid.inner");
                compute_solid_forces_range(
                    &self.mesh,
                    &self.geom,
                    &self.ops,
                    self.config.variant,
                    &mut self.fields,
                    self.atten.as_mut(),
                    self.config.gravity,
                    &mut self.flops,
                    self.mesh.inner_elements(),
                );
            }
            finish_halo_assembly(comm, &self.mesh.halo, &mut self.fields.accel, 3, reqs)?;
        } else {
            {
                let _s = specfem_obs::span("forces.solid");
                compute_solid_forces_range(
                    &self.mesh,
                    &self.geom,
                    &self.ops,
                    self.config.variant,
                    &mut self.fields,
                    self.atten.as_mut(),
                    self.config.gravity,
                    &mut self.flops,
                    0..self.mesh.nspec,
                );
            }
            let _s = specfem_obs::span("assemble.solid");
            assemble_halo(
                comm,
                &self.mesh.halo,
                &mut self.fields.accel,
                3,
                tags::HALO_SOLID,
            )?;
        }

        // Ocean load: scale the normal RHS component by M/(M+M_o) so the
        // upcoming division by M yields F_n/(M+M_o) on the free surface.
        for &(p, k, n) in &self.ocean {
            let p = p as usize;
            let fn_dot = self.fields.accel[p * 3] * n[0]
                + self.fields.accel[p * 3 + 1] * n[1]
                + self.fields.accel[p * 3 + 2] * n[2];
            let delta = fn_dot * (k - 1.0);
            self.fields.accel[p * 3] += delta * n[0];
            self.fields.accel[p * 3 + 1] += delta * n[1];
            self.fields.accel[p * 3 + 2] += delta * n[2];
        }

        // Energy diagnostic uses the assembled right-hand side (before the
        // mass division) so PE = −½ uᵀ(−K u) is available.
        if self.config.energy_every > 0 && istep.is_multiple_of(self.config.energy_every) {
            let _s = specfem_obs::span("diag.energy");
            let (ke, pe) = self.energy_sample(comm)?;
            self.energy.push((istep, ke, pe));
        }

        // 4. Solid corrector (with optional Coriolis term applied between
        //    the mass division and the velocity half-update).
        let span_corrector = specfem_obs::span("step.corrector");
        if self.config.rotation {
            let half_dt = 0.5 * dt;
            let om = EARTH_OMEGA_RAD_S as f32;
            for (p, &m) in self.mass.solid.iter().enumerate() {
                if m > 0.0 {
                    let inv = 1.0 / m;
                    let vx = self.fields.veloc[p * 3];
                    let vy = self.fields.veloc[p * 3 + 1];
                    // Ω = Ω ẑ ⇒ −2Ω×v = (2Ω v_y, −2Ω v_x, 0).
                    let ax = self.fields.accel[p * 3] * inv + 2.0 * om * vy;
                    let ay = self.fields.accel[p * 3 + 1] * inv - 2.0 * om * vx;
                    let az = self.fields.accel[p * 3 + 2] * inv;
                    self.fields.accel[p * 3] = ax;
                    self.fields.accel[p * 3 + 1] = ay;
                    self.fields.accel[p * 3 + 2] = az;
                    self.fields.veloc[p * 3] += half_dt * ax;
                    self.fields.veloc[p * 3 + 1] += half_dt * ay;
                    self.fields.veloc[p * 3 + 2] += half_dt * az;
                }
            }
        } else {
            self.fields.corrector_solid(&self.mass.solid, dt);
        }

        // Bookkeeping flops for the update loops (≈ 50/point/step).
        self.flops.add_raw(self.mesh.nglob as u64 * 50);
        drop(span_corrector);

        if istep.is_multiple_of(self.config.record_every) {
            let _s = specfem_obs::span("step.record");
            self.receivers.record(&self.mesh, &self.fields);
        }
        if self.config.snapshot_every > 0 && istep.is_multiple_of(self.config.snapshot_every) {
            self.snapshots.push(self.fields.displ.clone());
        }
        Ok(())
    }

    /// The LTS fluid force phase: recompute the contributions of clusters
    /// active on `istep`, then add *every* element's (fresh or frozen)
    /// contribution into `chi_ddot` in ascending element order — the same
    /// per-point accumulation sequence as the plain loop, which is what
    /// keeps the rate-1 path bit-identical (`tests/lts_equivalence.rs`).
    fn lts_fluid_phase(
        &mut self,
        istep: usize,
        comm: &mut dyn Communicator,
    ) -> Result<(), SolverError> {
        let Self {
            mesh,
            geom,
            ops,
            config,
            fields,
            flops,
            lts,
            ..
        } = self;
        let lts = lts.as_mut().expect("LTS phase without LTS state");
        let WaveFields { chi, chi_ddot, .. } = fields;
        let LtsState {
            levels,
            fluid_contrib,
            ..
        } = lts;
        let split = mesh.nspec_outer;
        if config.overlap {
            {
                let _s = specfem_obs::span("forces.fluid.outer");
                for lv in levels.iter() {
                    if lv.active(istep) {
                        compute_fluid_contribs(
                            mesh,
                            geom,
                            ops,
                            config.variant,
                            chi,
                            flops,
                            &lv.outer,
                            fluid_contrib,
                        );
                    }
                }
                scatter_fluid(mesh, fluid_contrib, chi_ddot, 0..split);
            }
            let reqs = post_halo_exchange(comm, &mesh.halo, chi_ddot, 1, tags::HALO_FLUID)?;
            {
                let _s = specfem_obs::span("forces.fluid.inner");
                for lv in levels.iter() {
                    if lv.active(istep) {
                        compute_fluid_contribs(
                            mesh,
                            geom,
                            ops,
                            config.variant,
                            chi,
                            flops,
                            &lv.inner,
                            fluid_contrib,
                        );
                    }
                }
                scatter_fluid(mesh, fluid_contrib, chi_ddot, split..mesh.nspec);
            }
            finish_halo_assembly(comm, &mesh.halo, chi_ddot, 1, reqs)?;
        } else {
            {
                let _s = specfem_obs::span("forces.fluid");
                for lv in levels.iter() {
                    if lv.active(istep) {
                        compute_fluid_contribs(
                            mesh,
                            geom,
                            ops,
                            config.variant,
                            chi,
                            flops,
                            &lv.outer,
                            fluid_contrib,
                        );
                        compute_fluid_contribs(
                            mesh,
                            geom,
                            ops,
                            config.variant,
                            chi,
                            flops,
                            &lv.inner,
                            fluid_contrib,
                        );
                    }
                }
                scatter_fluid(mesh, fluid_contrib, chi_ddot, 0..mesh.nspec);
            }
            let _s = specfem_obs::span("assemble.fluid");
            assemble_halo(comm, &mesh.halo, chi_ddot, 1, tags::HALO_FLUID)?;
        }
        Ok(())
    }

    /// The LTS solid force phase — see [`Self::lts_fluid_phase`]. Each
    /// active cluster computes with attenuation recursion constants fitted
    /// at its own `rate·dt` (memory variables refresh on the cluster's
    /// schedule); skipped element-steps are tallied here, once per element
    /// per fine step.
    fn lts_solid_phase(
        &mut self,
        istep: usize,
        comm: &mut dyn Communicator,
    ) -> Result<(), SolverError> {
        let Self {
            mesh,
            geom,
            ops,
            config,
            fields,
            flops,
            atten,
            lts,
            ..
        } = self;
        let lts = lts.as_mut().expect("LTS phase without LTS state");
        let WaveFields { displ, accel, .. } = fields;
        let LtsState {
            levels,
            solid_contrib,
            element_steps_saved,
            ..
        } = lts;
        let split = mesh.nspec_outer;
        if config.overlap {
            {
                let _s = specfem_obs::span("forces.solid.outer");
                for lv in levels.iter() {
                    if lv.active(istep) {
                        if let (Some(att), Some((a, b))) = (atten.as_mut(), lv.atten) {
                            att.alpha = a;
                            att.beta_unit = b;
                        }
                        compute_solid_contribs(
                            mesh,
                            geom,
                            ops,
                            config.variant,
                            displ,
                            atten.as_mut(),
                            config.gravity,
                            flops,
                            &lv.outer,
                            solid_contrib,
                        );
                    }
                }
                scatter_solid(mesh, solid_contrib, accel, 0..split);
            }
            let reqs = post_halo_exchange(comm, &mesh.halo, accel, 3, tags::HALO_SOLID)?;
            {
                let _s = specfem_obs::span("forces.solid.inner");
                for lv in levels.iter() {
                    if lv.active(istep) {
                        if let (Some(att), Some((a, b))) = (atten.as_mut(), lv.atten) {
                            att.alpha = a;
                            att.beta_unit = b;
                        }
                        compute_solid_contribs(
                            mesh,
                            geom,
                            ops,
                            config.variant,
                            displ,
                            atten.as_mut(),
                            config.gravity,
                            flops,
                            &lv.inner,
                            solid_contrib,
                        );
                    }
                }
                scatter_solid(mesh, solid_contrib, accel, split..mesh.nspec);
            }
            finish_halo_assembly(comm, &mesh.halo, accel, 3, reqs)?;
        } else {
            {
                let _s = specfem_obs::span("forces.solid");
                for lv in levels.iter() {
                    if lv.active(istep) {
                        if let (Some(att), Some((a, b))) = (atten.as_mut(), lv.atten) {
                            att.alpha = a;
                            att.beta_unit = b;
                        }
                        compute_solid_contribs(
                            mesh,
                            geom,
                            ops,
                            config.variant,
                            displ,
                            atten.as_mut(),
                            config.gravity,
                            flops,
                            &lv.outer,
                            solid_contrib,
                        );
                        compute_solid_contribs(
                            mesh,
                            geom,
                            ops,
                            config.variant,
                            displ,
                            atten.as_mut(),
                            config.gravity,
                            flops,
                            &lv.inner,
                            solid_contrib,
                        );
                    }
                }
                scatter_solid(mesh, solid_contrib, accel, 0..mesh.nspec);
            }
            let _s = specfem_obs::span("assemble.solid");
            assemble_halo(comm, &mesh.halo, accel, 3, tags::HALO_SOLID)?;
        }
        // Bookkeeping: the scatter's per-point adds (covers this step's
        // fluid scatter too), and the element-steps LTS skipped.
        scatter_flops(mesh, flops);
        for lv in levels.iter() {
            if !lv.active(istep) {
                *element_steps_saved += lv.len() as u64;
            }
        }
        Ok(())
    }

    /// Global kinetic and potential energy (collective).
    fn energy_sample(&mut self, comm: &mut dyn Communicator) -> Result<(f64, f64), CommError> {
        let mut ke = 0.0f64;
        let mut pe = 0.0f64;
        for p in 0..self.mesh.nglob {
            if !self.owned[p] {
                continue;
            }
            let m = self.mass.solid[p] as f64;
            if m > 0.0 {
                let mut v2 = 0.0f64;
                let mut ua = 0.0f64;
                for c in 0..3 {
                    let v = self.fields.veloc[p * 3 + c] as f64;
                    v2 += v * v;
                    ua += self.fields.displ[p * 3 + c] as f64 * self.fields.accel[p * 3 + c] as f64;
                }
                ke += 0.5 * m * v2;
                pe -= 0.5 * ua; // accel = −K u (before mass division)
            }
            let mf = self.mass.fluid[p] as f64;
            if mf > 0.0 {
                let cd = self.fields.chi_dot[p] as f64;
                ke += 0.5 * mf * cd * cd;
            }
        }
        Ok((comm.allreduce_sum(ke)?, comm.allreduce_sum(pe)?))
    }

    /// Capture the complete time-loop state at a step boundary:
    /// `next_step` is the first step the resumed loop will execute.
    pub fn capture_checkpoint(
        &self,
        rank: usize,
        nranks: usize,
        next_step: usize,
    ) -> CheckpointState {
        CheckpointState {
            rank,
            nranks,
            next_step,
            dt: self.dt,
            nglob: self.mesh.nglob,
            global_ids: self.mesh.global_ids.clone(),
            element_global: self.mesh.element_global.clone(),
            displ: self.fields.displ.clone(),
            veloc: self.fields.veloc.clone(),
            accel: self.fields.accel.clone(),
            chi: self.fields.chi.clone(),
            chi_dot: self.fields.chi_dot.clone(),
            chi_ddot: self.fields.chi_ddot.clone(),
            atten_memory: self.atten.as_ref().map(|a| a.memory.clone()),
            records: self
                .receivers
                .station_names()
                .into_iter()
                .zip(self.receivers.records().iter().cloned())
                .collect(),
            energy: self.energy.clone(),
            snapshots: self.snapshots.clone(),
            flops: self.flops.total(),
        }
    }

    /// Restore the time-loop state from a checkpoint. The state must
    /// describe *this* rank of *this* decomposition — the rank-count-
    /// independent store scatters a merged container onto the current
    /// world before calling this, so the writing world size may differ.
    /// Every consistency check failure is a typed error, never a silent
    /// mis-restore.
    pub fn restore_from(&mut self, state: CheckpointState) -> Result<(), SolverError> {
        let fail = |msg: String| Err(SolverError::Checkpoint(CheckpointError(msg)));
        if state.nglob != self.mesh.nglob {
            return fail(format!(
                "nglob mismatch: checkpoint {} vs mesh {}",
                state.nglob, self.mesh.nglob
            ));
        }
        if state.rank != self.mesh.rank {
            return fail(format!(
                "rank mismatch: checkpoint {} vs solver {}",
                state.rank, self.mesh.rank
            ));
        }
        if state.dt.to_bits() != self.dt.to_bits() {
            return fail(format!(
                "dt mismatch: checkpoint {} vs recomputed {} — different mesh or config?",
                state.dt, self.dt
            ));
        }
        if let Some(lts) = &self.lts {
            // Frozen force contributions are never persisted; that is only
            // sound when every cluster refreshes on the first resumed step,
            // i.e. the resume step is a full-cycle boundary.
            let cap = lts.cap as usize;
            if !state.next_step.is_multiple_of(cap) {
                return fail(format!(
                    "LTS resume step {} is not a multiple of the rate cap {cap} — frozen \
                     force contributions are only valid at full-cycle boundaries",
                    state.next_step
                ));
            }
        }
        let n3 = self.mesh.nglob * 3;
        for (name, len, expect) in [
            ("displ", state.displ.len(), n3),
            ("veloc", state.veloc.len(), n3),
            ("accel", state.accel.len(), n3),
            ("chi", state.chi.len(), self.mesh.nglob),
            ("chi_dot", state.chi_dot.len(), self.mesh.nglob),
            ("chi_ddot", state.chi_ddot.len(), self.mesh.nglob),
        ] {
            if len != expect {
                return fail(format!("{name} length {len}, expected {expect}"));
            }
        }
        match (&mut self.atten, state.atten_memory) {
            (Some(att), Some(mem)) => {
                if mem.len() != att.memory.len() {
                    return fail(format!(
                        "attenuation memory length {} vs {}",
                        mem.len(),
                        att.memory.len()
                    ));
                }
                att.memory = mem;
            }
            (None, None) => {}
            (a, m) => {
                return fail(format!(
                    "attenuation mismatch: solver {}, checkpoint {}",
                    a.is_some(),
                    m.is_some()
                ))
            }
        }
        self.receivers
            .restore_records(state.records)
            .map_err(|e| SolverError::Checkpoint(CheckpointError(e)))?;
        self.fields.displ = state.displ;
        self.fields.veloc = state.veloc;
        self.fields.accel = state.accel;
        self.fields.chi = state.chi;
        self.fields.chi_dot = state.chi_dot;
        self.fields.chi_ddot = state.chi_ddot;
        self.energy = state.energy;
        self.snapshots = state.snapshots;
        self.flops.set_total(state.flops);
        self.start_step = state.next_step;
        // Restored fields have a fresh (possibly large) baseline norm; the
        // growth tracker must not read the jump from zero as a blow-up.
        self.health.re_arm();
        specfem_obs::flight_event(
            specfem_obs::FlightEventKind::Restore,
            "",
            self.start_step as u64,
            0,
        );
        Ok(())
    }

    /// Run the configured number of steps and package the result. Failures
    /// panic — use [`RankSolver::try_run`] for typed errors and
    /// checkpointing.
    pub fn run(self, comm: &mut dyn Communicator) -> RankResult {
        self.try_run(comm, None)
            .unwrap_or_else(|e| panic!("solver rank failed: {e}"))
    }

    /// Run the time loop (from `start_step` after a restore), writing a
    /// checkpoint to `sink` every `config.checkpoint_every` steps.
    pub fn try_run(
        mut self,
        comm: &mut dyn Communicator,
        mut sink: Option<&mut dyn CheckpointSink>,
    ) -> Result<RankResult, SolverError> {
        comm.barrier()?;
        comm.reset_stats(); // main-loop statistics only, like IPM (§5)
        let span_timeloop = specfem_obs::span("timeloop");
        // Per-step timing samples: only while a tracer is live, and only
        // every `metrics_every`-th step so sampling stays cheap.
        let sample_every = if specfem_obs::is_active() {
            self.config.metrics_every
        } else {
            0
        };
        let t0 = Instant::now();
        for istep in self.start_step..self.config.nsteps {
            specfem_obs::flight_set_step(istep as u64);
            let t_step =
                (sample_every > 0 && istep.is_multiple_of(sample_every)).then(Instant::now);
            self.step(istep, comm)?;
            if let Some(t) = t_step {
                specfem_obs::hist_record("solver.step_ns", t.elapsed().as_nanos() as u64);
            }
            if self.health.should_check(istep) {
                let _s = specfem_obs::span("health.check");
                let fields: [(&'static str, &[f32]); 3] = [
                    ("displ", &self.fields.displ),
                    ("veloc", &self.fields.veloc),
                    ("chi_dot", &self.fields.chi_dot),
                ];
                if let Some(mut report) = self.health.check(comm.rank(), istep, &fields) {
                    report.element = attribute_element(&self.mesh, report.field, report.point);
                    specfem_obs::counter_add("health.trips", 1);
                    specfem_obs::flight_event(
                        specfem_obs::FlightEventKind::HealthTrip,
                        report.field,
                        report.point as u64,
                        0,
                    );
                    return Err(SolverError::Health(report));
                }
                specfem_obs::counter_add("health.samples", 1);
                specfem_obs::flight_event(specfem_obs::FlightEventKind::HealthSample, "", 0, 0);
            }
            if self.config.checkpoint_every > 0 && (istep + 1) % self.config.checkpoint_every == 0 {
                if let Some(sink) = sink.as_mut() {
                    let state = self.capture_checkpoint(comm.rank(), comm.size(), istep + 1);
                    sink.write(&state)?;
                    specfem_obs::flight_event(
                        specfem_obs::FlightEventKind::Checkpoint,
                        "",
                        (istep + 1) as u64,
                        0,
                    );
                }
            }
        }
        comm.barrier()?;
        drop(span_timeloop);
        let elapsed = t0.elapsed().as_secs_f64();
        specfem_obs::counter_add(
            "solver.steps",
            (self.config.nsteps - self.start_step) as u64,
        );
        specfem_obs::gauge_set("solver.nspec", self.mesh.nspec as f64);
        specfem_obs::gauge_set("solver.nglob", self.mesh.nglob as f64);
        let lts = self.lts.as_ref().map(|l| {
            let s = l.summary(self.mesh.nspec, self.config.nsteps - self.start_step);
            specfem_obs::gauge_set("lts.max_rate", s.max_rate as f64);
            specfem_obs::gauge_set("lts.levels", s.levels.len() as f64);
            specfem_obs::counter_add("lts.element_steps_saved", s.element_steps_saved);
            s
        });
        let station_error_m = self.receivers.worst_error_m();
        let snapshots = if self.config.snapshot_every > 0 {
            Some(crate::adjoint::WavefieldSnapshots {
                every: self.config.snapshot_every,
                dt: self.dt,
                frames: std::mem::take(&mut self.snapshots),
            })
        } else {
            None
        };
        Ok(RankResult {
            rank: comm.rank(),
            seismograms: self
                .receivers
                .into_seismograms(self.dt * self.config.record_every as f64),
            energy: self.energy,
            elapsed_s: elapsed,
            comm: comm.stats(),
            flops: self.flops.total(),
            dt: self.dt,
            nsteps: self.config.nsteps,
            nspec: self.mesh.nspec,
            nglob: self.mesh.nglob,
            station_error_m,
            snapshots,
            profile: specfem_obs::finish_rank(),
            lts,
            trace_id: self.config.trace_id,
        })
    }
}

/// Run serially (one rank, whole mesh) — the merged mesher+solver path.
/// Any failure (including an injected fault) panics; use
/// [`try_run_serial`] for typed errors, checkpointing and resume.
pub fn run_serial(mesh: &GlobalMesh, config: &SolverConfig, stations: &[Station]) -> RankResult {
    try_run_serial(mesh, config, stations, FtOptions::default())
        .unwrap_or_else(|e| panic!("solver rank failed: {e}"))
}

/// The fault-tolerant serial path: one rank, whole mesh, typed errors.
/// Honors `config.fault_plan` (wrapping the in-process communicator in a
/// [`FaultyComm`]) and the [`FtOptions`] checkpoint sink/restore hooks —
/// the single-rank analog of [`try_run_distributed`], which the campaign
/// runtime uses so a killed job can resume from its latest checkpoint.
pub fn try_run_serial(
    mesh: &GlobalMesh,
    config: &SolverConfig,
    stations: &[Station],
    opts: FtOptions<'_>,
) -> Result<RankResult, SolverError> {
    if config.trace {
        specfem_obs::init_rank(0, &specfem_obs::TraceConfig::default());
    }
    if config.flight_recorder {
        specfem_obs::flight_arm(0, config.flight_buffer_events);
    }
    let local = Partition::serial(mesh).extract(mesh, 0);
    let base = SerialComm::new();
    let mut comm: Box<dyn Communicator> = match &config.fault_plan {
        Some(plan) => Box::new(FaultyComm::new(base, plan)),
        None => Box::new(base),
    };
    let mut solver = RankSolver::new(local, config, stations, comm.as_mut());
    let out = (move || {
        if let Some(restore) = opts.restore {
            match restore(0, &solver.mesh) {
                Ok(Some(state)) => solver.restore_from(state)?,
                Ok(None) => {}
                Err(e) => return Err(SolverError::Checkpoint(e)),
            }
        }
        let mut sink = opts.sink_factory.map(|f| f(0));
        let sink_ref: Option<&mut dyn CheckpointSink> = match sink.as_mut() {
            Some(b) => Some(&mut **b),
            None => None,
        };
        solver.try_run(comm.as_mut(), sink_ref)
    })();
    if out.is_err() {
        // A failed run never reached the harvest in `try_run`; drop the
        // recorder so the global tracer gate is released.
        let _ = specfem_obs::finish_rank();
    }
    if let Some(journal) = specfem_obs::flight_harvest() {
        if let Some(deposit) = opts.flight {
            deposit(journal);
        }
    }
    out
}

/// Run distributed over `6 × NPROC_XI²` thread-ranks (the `mpirun` analog).
/// Any rank failure panics; use [`try_run_distributed`] for typed errors.
pub fn run_distributed(
    mesh: &GlobalMesh,
    config: &SolverConfig,
    stations: &[Station],
    profile: NetworkProfile,
) -> Vec<RankResult> {
    try_run_distributed(mesh, config, stations, profile, FtOptions::default())
        .into_iter()
        .map(|r| r.unwrap_or_else(|e| panic!("solver rank failed: {e}")))
        .collect()
}

/// Per-rank fault-tolerance hooks for [`try_run_distributed`].
#[derive(Default)]
pub struct FtOptions<'a> {
    /// Build the checkpoint sink a rank writes to every
    /// `checkpoint_every` steps (`None` disables writing).
    pub sink_factory: Option<&'a (dyn Fn(usize) -> Box<dyn CheckpointSink> + Sync)>,
    /// Load the checkpoint a rank resumes from; `Ok(None)` is a cold
    /// start. The rank's freshly extracted [`LocalMesh`] is passed so a
    /// rank-count-independent store can scatter merged global state onto
    /// *this* decomposition (which may differ from the one that wrote it).
    #[allow(clippy::type_complexity)]
    pub restore: Option<
        &'a (dyn Fn(usize, &LocalMesh) -> Result<Option<CheckpointState>, CheckpointError> + Sync),
    >,
    /// Receive the rank's harvested flight journal when
    /// `config.flight_recorder` armed one — called from the rank's own
    /// thread on both success and failure exits, so a crash-dossier
    /// writer sees every surviving rank's journal. `None` discards
    /// harvested journals.
    pub flight: Option<&'a (dyn Fn(specfem_obs::FlightJournal) + Sync)>,
}

/// The fault-tolerant `mpirun` analog: per-rank typed results instead of a
/// world-wide panic. Honors `config.recv_timeout` (a stalled peer surfaces
/// as `CommError::Timeout` naming the `(src, tag)` it waited on),
/// `config.fault_plan` (deterministic injection), and `config.checkpoint_every`
/// together with the [`FtOptions`] hooks.
pub fn try_run_distributed(
    mesh: &GlobalMesh,
    config: &SolverConfig,
    stations: &[Station],
    profile: NetworkProfile,
    opts: FtOptions<'_>,
) -> Vec<Result<RankResult, SolverError>> {
    try_run_distributed_watched(mesh, config, stations, profile, opts).0
}

/// [`try_run_distributed`] plus the straggler watchdog: when
/// `config.watchdog_timeout` is set, a monitor thread samples every rank's
/// step heartbeat, publishes skew gauges, and escalates a stall to
/// [`CommError::Stalled`] on the healthy ranks; the returned
/// [`specfem_comm::WatchdogReport`] carries the skew/stall telemetry.
/// With the watchdog off the report is `None` and the run is identical to
/// [`try_run_distributed`].
pub fn try_run_distributed_watched(
    mesh: &GlobalMesh,
    config: &SolverConfig,
    stations: &[Station],
    profile: NetworkProfile,
    opts: FtOptions<'_>,
) -> (
    Vec<Result<RankResult, SolverError>>,
    Option<specfem_comm::WatchdogReport>,
) {
    let partition = Partition::compute(mesh);
    try_run_partitioned(mesh, config, stations, profile, opts, &partition)
}

/// [`try_run_distributed_watched`] over an *explicit* partition — the
/// elastic-recovery entry point. The cubed-sphere assignment of
/// [`Partition::compute`] only exists for `6 × nproc²` worlds; a
/// shrink-to-survive resume passes [`Partition::balanced`] here to run the
/// same global mesh on any world size. The watchdog (when armed) is built
/// for `partition.num_ranks`, so its report and gauges always reflect the
/// world actually running — not the one that wrote the checkpoint.
pub fn try_run_partitioned(
    mesh: &GlobalMesh,
    config: &SolverConfig,
    stations: &[Station],
    profile: NetworkProfile,
    opts: FtOptions<'_>,
    partition: &Partition,
) -> (
    Vec<Result<RankResult, SolverError>>,
    Option<specfem_comm::WatchdogReport>,
) {
    let nranks = partition.num_ranks;
    let opts = &opts;
    let rank_main = |mut base: specfem_comm::ThreadComm| {
        base.set_recv_timeout(config.recv_timeout);
        let rank = base.rank();
        if config.trace {
            // Before extraction so mesh-extract and setup spans land in
            // the trace too.
            specfem_obs::init_rank(rank, &specfem_obs::TraceConfig::default());
        }
        if config.flight_recorder {
            specfem_obs::flight_arm(rank, config.flight_buffer_events);
        }
        let mut comm: Box<dyn Communicator> = match &config.fault_plan {
            Some(plan) => Box::new(FaultyComm::new(base, plan)),
            None => Box::new(base),
        };
        let local = partition.extract(mesh, rank);
        let mut solver = RankSolver::new(local, config, stations, comm.as_mut());
        let out = (move || {
            if let Some(restore) = opts.restore {
                match restore(rank, &solver.mesh) {
                    Ok(Some(state)) => solver.restore_from(state)?,
                    Ok(None) => {}
                    Err(e) => return Err(SolverError::Checkpoint(e)),
                }
            }
            let mut sink = opts.sink_factory.map(|f| f(rank));
            let sink_ref: Option<&mut dyn CheckpointSink> = match sink.as_mut() {
                Some(b) => Some(&mut **b),
                None => None,
            };
            solver.try_run(comm.as_mut(), sink_ref)
        })();
        if out.is_err() {
            // A failed rank never reached the harvest in `try_run`; drop
            // its recorder so the global tracer gate is released.
            let _ = specfem_obs::finish_rank();
        }
        if let Some(journal) = specfem_obs::flight_harvest() {
            if let Some(deposit) = opts.flight {
                deposit(journal);
            }
        }
        out
    };
    let (raw, watchdog) = match config.watchdog_timeout {
        Some(timeout) => {
            let wd = specfem_comm::WatchdogConfig::new(timeout);
            let (raw, report) = ThreadWorld::try_run_watched(nranks, profile, wd, rank_main);
            (raw, Some(report))
        }
        None => (ThreadWorld::try_run(nranks, profile, rank_main), None),
    };
    let results = raw
        .into_iter()
        .map(|r| match r {
            Ok(inner) => inner,
            Err(p) => Err(SolverError::RankPanicked {
                rank: p.rank,
                message: p.message,
            }),
        })
        .collect();
    (results, watchdog)
}

/// Merge per-rank seismograms into one station-ordered list.
pub fn merge_seismograms(results: &[RankResult]) -> Vec<Seismogram> {
    let mut all: Vec<Seismogram> = results
        .iter()
        .flat_map(|r| r.seismograms.iter().cloned())
        .collect();
    all.sort_by(|a, b| a.station.cmp(&b.station));
    all
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::SourceSpec;
    use specfem_mesh::MeshParams;
    use specfem_model::{HomogeneousModel, Prem, SourceTimeFunction, StfKind};

    fn prem_mesh(nex: usize, nproc: usize) -> GlobalMesh {
        let params = MeshParams::new(nex, nproc);
        GlobalMesh::build(&params, &Prem::isotropic_no_ocean())
    }

    fn small_config(nsteps: usize) -> SolverConfig {
        SolverConfig {
            nsteps,
            source: SourceSpec::PointForce {
                position: [0.0, 0.0, 5.8e6],
                force: [0.0, 0.0, 1.0e18],
                stf: SourceTimeFunction::new(StfKind::Ricker, 200.0),
            },
            ..SolverConfig::default()
        }
    }

    #[test]
    fn serial_run_produces_motion_and_stays_finite() {
        let mesh = prem_mesh(4, 1);
        let stations = specfem_mesh::stations::global_network(3);
        let result = run_serial(&mesh, &small_config(30), &stations);
        assert_eq!(result.nsteps, 30);
        assert!(result.flops > 0);
        assert!(result.dt > 0.0);
        let max: f32 = result
            .seismograms
            .iter()
            .flat_map(|s| s.data.iter())
            .flat_map(|v| v.iter())
            .fold(0.0f32, |m, &x| m.max(x.abs()));
        assert!(max.is_finite());
    }

    #[test]
    fn wave_reaches_nearby_station_before_antipode() {
        // Source under the north pole; station near the pole must move
        // long before one near the south pole.
        let mesh = prem_mesh(4, 1);
        let stations = vec![
            Station {
                name: "NEAR".into(),
                lat_deg: 80.0,
                lon_deg: 0.0,
            },
            Station {
                name: "FAR".into(),
                lat_deg: -80.0,
                lon_deg: 0.0,
            },
        ];
        let mut config = small_config(120);
        config.record_every = 1;
        let result = run_serial(&mesh, &config, &stations);
        let first_motion = |name: &str| -> usize {
            let s = result
                .seismograms
                .iter()
                .find(|s| s.station == name)
                .unwrap();
            let peak: f32 = s
                .data
                .iter()
                .flat_map(|v| v.iter())
                .fold(0.0f32, |m, &x| m.max(x.abs()));
            s.data
                .iter()
                .position(|v| v.iter().any(|&x| x.abs() > 0.05 * peak))
                .unwrap_or(usize::MAX)
        };
        let near = first_motion("NEAR");
        let far = first_motion("FAR");
        assert!(
            near < far,
            "near station must move first (near {near}, far {far})"
        );
    }

    #[test]
    fn energy_is_conserved_without_attenuation_in_solid_ball() {
        // Homogeneous solid Earth, no fluid, no source: initial bump, check
        // total energy drift stays small over many steps.
        let params = MeshParams::new(4, 1);
        let model = HomogeneousModel::default();
        let mesh = GlobalMesh::build(&params, &model);
        let local = Partition::serial(&mesh).extract(&mesh, 0);
        let config = SolverConfig {
            nsteps: 200,
            energy_every: 10,
            source: SourceSpec::None,
            ..SolverConfig::default()
        };
        let mut comm = SerialComm::new();
        let mut solver = RankSolver::new(local, &config, &[], &mut comm);
        let r0 = 5.0e6;
        solver.set_initial_displacement(|p| {
            let dx = (p[0] - r0) / 8.0e5;
            let dy = p[1] / 8.0e5;
            let dz = p[2] / 8.0e5;
            let g = (-(dx * dx + dy * dy + dz * dz)).exp();
            [0.0, 0.0, 100.0 * g]
        });
        let result = solver.run(&mut comm);
        let totals: Vec<f64> = result.energy.iter().map(|(_, ke, pe)| ke + pe).collect();
        assert!(totals.len() >= 10);
        let e0 = totals[1]; // skip step 0 (velocity still zero)
        assert!(e0 > 0.0);
        for (i, &e) in totals.iter().enumerate().skip(2) {
            let drift = (e - e0).abs() / e0;
            assert!(drift < 0.05, "energy drift {drift} at sample {i}");
        }
    }

    #[test]
    fn attenuation_dissipates_energy() {
        let params = MeshParams::new(4, 1);
        // A strongly attenuating medium (Q = 20, inner-core-like): over a
        // few hundred steps the Q=600 default would lose < 0.1 % (correct
        // physics, but unmeasurable against f32 noise).
        let model = HomogeneousModel {
            q_mu: 20.0,
            ..HomogeneousModel::default()
        };
        let mesh = GlobalMesh::build(&params, &model);
        let run = |attenuation: bool| -> Vec<f64> {
            let local = Partition::serial(&mesh).extract(&mesh, 0);
            let config = SolverConfig {
                nsteps: 400,
                energy_every: 40,
                attenuation,
                source: SourceSpec::None,
                ..SolverConfig::default()
            };
            let mut comm = SerialComm::new();
            let mut solver = RankSolver::new(local, &config, &[], &mut comm);
            solver.set_initial_displacement(|p| {
                let dz = (p[2] - 4.0e6) / 1.0e6;
                [0.0, 0.0, 100.0 * (-dz * dz).exp()]
            });
            solver
                .run(&mut comm)
                .energy
                .iter()
                .map(|(_, ke, pe)| ke + pe)
                .collect()
        };
        let elastic = run(false);
        let anelastic = run(true);
        let last = elastic.len() - 1;
        assert!(
            anelastic[last] < 0.98 * elastic[last],
            "attenuation must dissipate: {} vs {}",
            anelastic[last],
            elastic[last]
        );
        // Monotone-ish: the anelastic energy never exceeds the elastic one.
        for (e, a) in elastic.iter().zip(&anelastic).skip(1) {
            assert!(a <= &(e * 1.001), "anelastic {a} above elastic {e}");
        }
    }

    #[test]
    fn distributed_run_matches_serial_seismograms() {
        // The same physical run on 1 rank and on 24 ranks must agree to
        // f32 roundoff — the halo assembly correctness test.
        let mesh = prem_mesh(4, 2);
        let stations = vec![Station {
            name: "CHK".into(),
            lat_deg: 40.0,
            lon_deg: -30.0,
        }];
        let config = small_config(40);
        let serial = run_serial(&mesh, &config, &stations);
        let distributed = run_distributed(
            &mesh,
            &config,
            &stations,
            specfem_comm::NetworkProfile::loopback(),
        );
        let merged = merge_seismograms(&distributed);
        assert_eq!(merged.len(), 1);
        let a = &serial.seismograms[0];
        let b = &merged[0];
        assert_eq!(a.data.len(), b.data.len());
        let scale: f32 = a
            .data
            .iter()
            .flat_map(|v| v.iter())
            .fold(0.0f32, |m, &x| m.max(x.abs()))
            .max(1e-20);
        for (va, vb) in a.data.iter().zip(&b.data) {
            for c in 0..3 {
                assert!(
                    (va[c] - vb[c]).abs() <= 2e-3 * scale,
                    "serial {} vs distributed {} (scale {scale})",
                    va[c],
                    vb[c]
                );
            }
        }
    }

    #[test]
    fn rotation_and_gravity_flags_run_stable() {
        let mesh = prem_mesh(4, 1);
        let config = SolverConfig {
            nsteps: 20,
            rotation: true,
            gravity: true,
            ..small_config(20)
        };
        let result = run_serial(&mesh, &config, &[]);
        assert!(result.flops > 0);
        assert!(result.elapsed_s > 0.0);
    }

    #[test]
    fn comm_stats_are_main_loop_only_and_nonzero_in_parallel() {
        let mesh = prem_mesh(4, 2);
        let config = small_config(10);
        let results = run_distributed(
            &mesh,
            &config,
            &[],
            specfem_comm::NetworkProfile::loopback(),
        );
        for r in &results {
            assert!(r.comm.bytes_sent > 0, "rank {} sent nothing", r.rank);
            assert!(r.comm.modeled_time_s > 0.0);
        }
    }
}
