//! The internal-force kernels — "the two computational routines in which we
//! compute the internal forces and related acceleration vectors … in the
//! large solid mantle and crust, and the smaller fluid outer core" that
//! dominate >70 % of runtime (paper §4.3).

use specfem_kernels::{
    cutplane_derivatives, cutplane_transpose_accumulate, DerivOps, FlopCounter, KernelVariant,
    NGLL, NGLL3, NGLL3_PADDED,
};
use specfem_mesh::LocalMesh;
use specfem_model::attenuation::{AttenuationFit, AttenuationSpec, N_SLS};

use crate::assemble::{PrecomputedGeometry, WaveFields};

/// Per-run attenuation state: the SLS recursion constants and the memory
/// variables of every solid GLL point (5 deviatoric strain components ×
/// `N_SLS` solids).
#[derive(Debug, Clone)]
pub struct AttenuationState {
    /// `exp(−dt/τ_j)` per SLS.
    pub alpha: [f32; N_SLS],
    /// `y_j(Q=1)·(1 − α_j)` per SLS; scaled by `1/Q` per point at use (the
    /// least-squares fit is exactly linear in `1/Q`).
    pub beta_unit: [f32; N_SLS],
    /// Memory variables `[((e·n³ + l)·5 + comp)·N_SLS + j]`.
    pub memory: Vec<f32>,
}

impl AttenuationState {
    /// Build for a run with time step `dt` resolving `shortest_period_s`.
    pub fn new(mesh: &LocalMesh, dt: f64, shortest_period_s: f64) -> Self {
        let (alpha, beta_unit) = Self::update_constants(dt, shortest_period_s);
        let n3 = mesh.points_per_element();
        Self {
            alpha,
            beta_unit,
            memory: vec![0.0; mesh.nspec * n3 * 5 * N_SLS],
        }
    }

    /// The SLS recursion constants `(α, β_unit)` for step `dt` resolving
    /// `shortest_period_s`. LTS re-derives these at `rate·dt` for coarse
    /// clusters whose memory variables refresh every `rate` fine steps;
    /// at rate 1 the result is bitwise equal to what [`Self::new`] installs.
    pub fn update_constants(dt: f64, shortest_period_s: f64) -> ([f32; N_SLS], [f32; N_SLS]) {
        // Unit fit: Q = 1 reference; y scales as 1/Q.
        let fit = AttenuationFit::fit(AttenuationSpec::for_shortest_period(
            1.0 + 1e-9, // Q→1 reference (assert in fit requires > 1)
            shortest_period_s,
        ));
        let factors = fit.update_factors(dt);
        let mut alpha = [0.0f32; N_SLS];
        let mut beta_unit = [0.0f32; N_SLS];
        for j in 0..N_SLS {
            alpha[j] = factors[j].0 as f32;
            beta_unit[j] = factors[j].1 as f32;
        }
        (alpha, beta_unit)
    }
}

#[inline(always)]
fn gather_component(ibool: &[u32], field: &[f32], comp: usize, out: &mut [f32; NGLL3_PADDED]) {
    for (l, &p) in ibool.iter().enumerate() {
        out[l] = field[p as usize * 3 + comp];
    }
}

/// Destination of a solid element's accumulated force: either scattered
/// straight into the global `accel` (the plain timeloop) or written to a
/// per-element contribution buffer (the LTS timeloop, which scatters all
/// elements in one canonical ascending pass afterwards). The emitted
/// value per point is the identical f32 expression in both cases —
/// `−accum` (or `−accum + body` with gravity) — so compute-then-scatter
/// is bit-identical to the fused loop.
trait SolidSink {
    fn emit(
        &mut self,
        e: usize,
        ib: &[u32],
        c: usize,
        accum: &[f32; NGLL3_PADDED],
        body: Option<&[f32; NGLL3_PADDED]>,
    );
}

/// Scatter into the global acceleration (`accel[p·3+c] += −accum [+ body]`).
struct SolidAccelSink<'a> {
    accel: &'a mut [f32],
}

impl SolidSink for SolidAccelSink<'_> {
    #[inline(always)]
    fn emit(
        &mut self,
        _e: usize,
        ib: &[u32],
        c: usize,
        accum: &[f32; NGLL3_PADDED],
        body: Option<&[f32; NGLL3_PADDED]>,
    ) {
        match body {
            Some(body) => {
                for (l, &p) in ib.iter().enumerate() {
                    self.accel[p as usize * 3 + c] += -accum[l] + body[l];
                }
            }
            None => {
                for (l, &p) in ib.iter().enumerate() {
                    self.accel[p as usize * 3 + c] -= accum[l];
                }
            }
        }
    }
}

/// Overwrite the element's slice of a contribution buffer
/// (`out[(e·n³+l)·3+c] = −accum [+ body]`).
struct SolidContribSink<'a> {
    out: &'a mut [f32],
    n3: usize,
}

impl SolidSink for SolidContribSink<'_> {
    #[inline(always)]
    fn emit(
        &mut self,
        e: usize,
        ib: &[u32],
        c: usize,
        accum: &[f32; NGLL3_PADDED],
        body: Option<&[f32; NGLL3_PADDED]>,
    ) {
        let base = e * self.n3;
        match body {
            Some(body) => {
                for l in 0..ib.len() {
                    self.out[(base + l) * 3 + c] = -accum[l] + body[l];
                }
            }
            None => {
                for l in 0..ib.len() {
                    self.out[(base + l) * 3 + c] = -accum[l];
                }
            }
        }
    }
}

/// Solid internal forces: `accel -= K·displ` elementwise, plus optional
/// attenuation memory-variable update and Cowling gravity body force.
#[allow(clippy::too_many_arguments)]
pub fn compute_solid_forces(
    mesh: &LocalMesh,
    geom: &PrecomputedGeometry,
    ops: &DerivOps,
    variant: KernelVariant,
    fields: &mut WaveFields,
    atten: Option<&mut AttenuationState>,
    gravity: bool,
    flops: &mut FlopCounter,
) {
    compute_solid_forces_range(
        mesh,
        geom,
        ops,
        variant,
        fields,
        atten,
        gravity,
        flops,
        0..mesh.nspec,
    );
}

/// Solid internal forces restricted to the local elements in `elems` —
/// the overlap building block: the solver runs it on the outer range,
/// posts the halo exchange, then runs it on the inner range. Iterating
/// `0..nspec` in one call is bit-identical to any split of the range into
/// consecutive calls, because per-point accumulation order only depends
/// on the element ordering.
#[allow(clippy::too_many_arguments)]
pub fn compute_solid_forces_range(
    mesh: &LocalMesh,
    geom: &PrecomputedGeometry,
    ops: &DerivOps,
    variant: KernelVariant,
    fields: &mut WaveFields,
    atten: Option<&mut AttenuationState>,
    gravity: bool,
    flops: &mut FlopCounter,
    elems: std::ops::Range<usize>,
) {
    let WaveFields { displ, accel, .. } = fields;
    solid_forces_impl(
        mesh,
        geom,
        ops,
        variant,
        displ,
        atten,
        gravity,
        flops,
        elems,
        &mut SolidAccelSink { accel },
    );
}

/// Solid forces of the listed elements written to a per-element
/// contribution buffer (`out[(e·n³+l)·3+c]`, sized `nspec·n³·3`) instead
/// of the global field — the LTS refresh step. Elements *not* listed keep
/// their previous (frozen) contributions; the caller scatters the whole
/// buffer in ascending element order afterwards, which reproduces the
/// plain loop's per-point accumulation order exactly.
#[allow(clippy::too_many_arguments)]
pub fn compute_solid_contribs(
    mesh: &LocalMesh,
    geom: &PrecomputedGeometry,
    ops: &DerivOps,
    variant: KernelVariant,
    displ: &[f32],
    atten: Option<&mut AttenuationState>,
    gravity: bool,
    flops: &mut FlopCounter,
    elems: &[u32],
    out: &mut [f32],
) {
    let n3 = mesh.points_per_element();
    debug_assert_eq!(out.len(), mesh.nspec * n3 * 3);
    solid_forces_impl(
        mesh,
        geom,
        ops,
        variant,
        displ,
        atten,
        gravity,
        flops,
        elems.iter().map(|&e| e as usize),
        &mut SolidContribSink { out, n3 },
    );
}

#[allow(clippy::too_many_arguments)]
fn solid_forces_impl<S: SolidSink>(
    mesh: &LocalMesh,
    geom: &PrecomputedGeometry,
    ops: &DerivOps,
    variant: KernelVariant,
    displ: &[f32],
    mut atten: Option<&mut AttenuationState>,
    gravity: bool,
    flops: &mut FlopCounter,
    elems: impl Iterator<Item = usize>,
    sink: &mut S,
) {
    let n3 = mesh.points_per_element();
    assert_eq!(n3, NGLL3, "solver kernels are specialized to degree 4");
    let w = &mesh.basis.weights;
    let mut wf = [0.0f32; NGLL];
    for i in 0..NGLL {
        wf[i] = w[i] as f32;
    }

    let mut u = [[0.0f32; NGLL3_PADDED]; 3];
    let mut t = [[[0.0f32; NGLL3_PADDED]; 3]; 3]; // t[comp][dir]
    let mut f = [[[0.0f32; NGLL3_PADDED]; 3]; 3]; // f[comp][dir]
    let mut body = [[0.0f32; NGLL3_PADDED]; 3];
    let mut accum = [0.0f32; NGLL3_PADDED];

    let mut nsolid = 0usize;
    for e in elems {
        if mesh.region[e].is_fluid() {
            continue;
        }
        nsolid += 1;
        let base = e * n3;
        let ib = &mesh.ibool[base..base + n3];
        for (c, uc) in u.iter_mut().enumerate() {
            gather_component(ib, displ, c, uc);
        }
        for c in 0..3 {
            let (t0, rest) = t[c].split_at_mut(1);
            let (t1, t2) = rest.split_at_mut(1);
            cutplane_derivatives(variant, &u[c], ops, &mut t0[0], &mut t1[0], &mut t2[0]);
        }
        if gravity {
            for b in body.iter_mut() {
                b[..NGLL3].fill(0.0);
            }
        }
        for k in 0..NGLL {
            for j in 0..NGLL {
                for i in 0..NGLL {
                    let l = (k * NGLL + j) * NGLL + i;
                    let idx = base + l;
                    let (xix, xiy, xiz) = (geom.xix[idx], geom.xiy[idx], geom.xiz[idx]);
                    let (etx, ety, etz) = (geom.etax[idx], geom.etay[idx], geom.etaz[idx]);
                    let (gax, gay, gaz) = (geom.gammax[idx], geom.gammay[idx], geom.gammaz[idx]);
                    // Physical displacement gradient.
                    let dux_dx = t[0][0][l] * xix + t[0][1][l] * etx + t[0][2][l] * gax;
                    let dux_dy = t[0][0][l] * xiy + t[0][1][l] * ety + t[0][2][l] * gay;
                    let dux_dz = t[0][0][l] * xiz + t[0][1][l] * etz + t[0][2][l] * gaz;
                    let duy_dx = t[1][0][l] * xix + t[1][1][l] * etx + t[1][2][l] * gax;
                    let duy_dy = t[1][0][l] * xiy + t[1][1][l] * ety + t[1][2][l] * gay;
                    let duy_dz = t[1][0][l] * xiz + t[1][1][l] * etz + t[1][2][l] * gaz;
                    let duz_dx = t[2][0][l] * xix + t[2][1][l] * etx + t[2][2][l] * gax;
                    let duz_dy = t[2][0][l] * xiy + t[2][1][l] * ety + t[2][2][l] * gay;
                    let duz_dz = t[2][0][l] * xiz + t[2][1][l] * etz + t[2][2][l] * gaz;

                    let mu = mesh.mu[idx];
                    let kappa = mesh.kappa[idx];
                    let lambda = kappa - 2.0 / 3.0 * mu;
                    let div = dux_dx + duy_dy + duz_dz;
                    let eps_xy = 0.5 * (dux_dy + duy_dx);
                    let eps_xz = 0.5 * (dux_dz + duz_dx);
                    let eps_yz = 0.5 * (duy_dz + duz_dy);

                    let mut sig_xx = lambda * div + 2.0 * mu * dux_dx;
                    let mut sig_yy = lambda * div + 2.0 * mu * duy_dy;
                    let mut sig_zz = lambda * div + 2.0 * mu * duz_dz;
                    let mut sig_xy = 2.0 * mu * eps_xy;
                    let mut sig_xz = 2.0 * mu * eps_xz;
                    let mut sig_yz = 2.0 * mu * eps_yz;

                    if let Some(att) = atten.as_deref_mut() {
                        // Deviatoric strain components (xx, yy, xy, xz, yz).
                        let third_div = div / 3.0;
                        let dev = [
                            dux_dx - third_div,
                            duy_dy - third_div,
                            eps_xy,
                            eps_xz,
                            eps_yz,
                        ];
                        let inv_q = {
                            let q = mesh.qmu[idx];
                            if q.is_finite() && q > 0.0 {
                                1.0 / q
                            } else {
                                0.0
                            }
                        };
                        let mbase = (idx * 5) * N_SLS;
                        let mut rsum = [0.0f32; 5];
                        for (comp, &d) in dev.iter().enumerate() {
                            let target = 2.0 * mu * d * inv_q;
                            for sls in 0..N_SLS {
                                let m = &mut att.memory[mbase + comp * N_SLS + sls];
                                *m = att.alpha[sls] * *m + att.beta_unit[sls] * target;
                                rsum[comp] += *m;
                            }
                        }
                        sig_xx -= rsum[0];
                        sig_yy -= rsum[1];
                        sig_zz += rsum[0] + rsum[1]; // R_zz = −(R_xx + R_yy)
                        sig_xy -= rsum[2];
                        sig_xz -= rsum[3];
                        sig_yz -= rsum[4];
                    }

                    let jac = geom.jacobian[idx];
                    let w1 = (wf[j] * wf[k]) * jac; // ξ-direction cross weight
                    let w2 = (wf[i] * wf[k]) * jac;
                    let w3 = (wf[i] * wf[j]) * jac;
                    // F(comp, dir) = J·σ·∇ξ_dir, with cross weights folded in.
                    f[0][0][l] = w1 * (sig_xx * xix + sig_xy * xiy + sig_xz * xiz);
                    f[0][1][l] = w2 * (sig_xx * etx + sig_xy * ety + sig_xz * etz);
                    f[0][2][l] = w3 * (sig_xx * gax + sig_xy * gay + sig_xz * gaz);
                    f[1][0][l] = w1 * (sig_xy * xix + sig_yy * xiy + sig_yz * xiz);
                    f[1][1][l] = w2 * (sig_xy * etx + sig_yy * ety + sig_yz * etz);
                    f[1][2][l] = w3 * (sig_xy * gax + sig_yy * gay + sig_yz * gaz);
                    f[2][0][l] = w1 * (sig_xz * xix + sig_yz * xiy + sig_zz * xiz);
                    f[2][1][l] = w2 * (sig_xz * etx + sig_yz * ety + sig_zz * etz);
                    f[2][2][l] = w3 * (sig_xz * gax + sig_yz * gay + sig_zz * gaz);

                    if gravity && !geom.g_at_point.is_empty() {
                        // Cowling buoyancy: ρ[∇(u·g) − g(∇·u)], g = −g·r̂.
                        let g = geom.g_at_point[idx];
                        let rh = geom.rhat[idx];
                        let rho = mesh.rho[idx];
                        let wjac = (wf[i] * wf[j] * wf[k]) * jac;
                        // u·g = −g·u_r; ∇(u·g)_i ≈ −g Σ_j rh_j ∂u_j/∂x_i.
                        let gx = -g * (rh[0] * dux_dx + rh[1] * duy_dx + rh[2] * duz_dx);
                        let gy = -g * (rh[0] * dux_dy + rh[1] * duy_dy + rh[2] * duz_dy);
                        let gz = -g * (rh[0] * dux_dz + rh[1] * duy_dz + rh[2] * duz_dz);
                        body[0][l] = rho * wjac * (gx + g * rh[0] * div);
                        body[1][l] = rho * wjac * (gy + g * rh[1] * div);
                        body[2][l] = rho * wjac * (gz + g * rh[2] * div);
                    }
                }
            }
        }
        for c in 0..3 {
            accum[..NGLL3].fill(0.0);
            cutplane_transpose_accumulate(variant, &f[c][0], &f[c][1], &f[c][2], ops, &mut accum);
            sink.emit(
                e,
                ib,
                c,
                &accum,
                if gravity { Some(&body[c]) } else { None },
            );
        }
    }
    flops.add_solid_elements(nsolid, atten.is_some());
}

/// Destination of a fluid element's accumulated force — the scalar
/// (χ̈) analog of [`SolidSink`].
trait FluidSink {
    fn emit(&mut self, e: usize, ib: &[u32], accum: &[f32; NGLL3_PADDED]);
}

struct FluidAccelSink<'a> {
    chi_ddot: &'a mut [f32],
}

impl FluidSink for FluidAccelSink<'_> {
    #[inline(always)]
    fn emit(&mut self, _e: usize, ib: &[u32], accum: &[f32; NGLL3_PADDED]) {
        for (l, &p) in ib.iter().enumerate() {
            self.chi_ddot[p as usize] -= accum[l];
        }
    }
}

struct FluidContribSink<'a> {
    out: &'a mut [f32],
    n3: usize,
}

impl FluidSink for FluidContribSink<'_> {
    #[inline(always)]
    fn emit(&mut self, e: usize, ib: &[u32], accum: &[f32; NGLL3_PADDED]) {
        let base = e * self.n3;
        for l in 0..ib.len() {
            self.out[base + l] = -accum[l];
        }
    }
}

/// Fluid (outer-core) internal forces: `χ̈ -= K_f·χ` with
/// `K_f = ∫ (1/ρ)∇w·∇χ`.
pub fn compute_fluid_forces(
    mesh: &LocalMesh,
    geom: &PrecomputedGeometry,
    ops: &DerivOps,
    variant: KernelVariant,
    fields: &mut WaveFields,
    flops: &mut FlopCounter,
) {
    compute_fluid_forces_range(mesh, geom, ops, variant, fields, flops, 0..mesh.nspec);
}

/// Fluid internal forces restricted to the local elements in `elems` —
/// see [`compute_solid_forces_range`] for the overlap contract.
pub fn compute_fluid_forces_range(
    mesh: &LocalMesh,
    geom: &PrecomputedGeometry,
    ops: &DerivOps,
    variant: KernelVariant,
    fields: &mut WaveFields,
    flops: &mut FlopCounter,
    elems: std::ops::Range<usize>,
) {
    let WaveFields { chi, chi_ddot, .. } = fields;
    fluid_forces_impl(
        mesh,
        geom,
        ops,
        variant,
        chi,
        flops,
        elems,
        &mut FluidAccelSink { chi_ddot },
    );
}

/// Fluid forces of the listed elements written to a per-element
/// contribution buffer (`out[e·n³+l]`, sized `nspec·n³`) — the fluid half
/// of the LTS refresh step; see [`compute_solid_contribs`].
#[allow(clippy::too_many_arguments)]
pub fn compute_fluid_contribs(
    mesh: &LocalMesh,
    geom: &PrecomputedGeometry,
    ops: &DerivOps,
    variant: KernelVariant,
    chi: &[f32],
    flops: &mut FlopCounter,
    elems: &[u32],
    out: &mut [f32],
) {
    let n3 = mesh.points_per_element();
    debug_assert_eq!(out.len(), mesh.nspec * n3);
    fluid_forces_impl(
        mesh,
        geom,
        ops,
        variant,
        chi,
        flops,
        elems.iter().map(|&e| e as usize),
        &mut FluidContribSink { out, n3 },
    );
}

#[allow(clippy::too_many_arguments)]
fn fluid_forces_impl<S: FluidSink>(
    mesh: &LocalMesh,
    geom: &PrecomputedGeometry,
    ops: &DerivOps,
    variant: KernelVariant,
    chi_field: &[f32],
    flops: &mut FlopCounter,
    elems: impl Iterator<Item = usize>,
    sink: &mut S,
) {
    let n3 = mesh.points_per_element();
    let w = &mesh.basis.weights;
    let mut wf = [0.0f32; NGLL];
    for i in 0..NGLL {
        wf[i] = w[i] as f32;
    }
    let mut chi = [0.0f32; NGLL3_PADDED];
    let mut t1 = [0.0f32; NGLL3_PADDED];
    let mut t2 = [0.0f32; NGLL3_PADDED];
    let mut t3 = [0.0f32; NGLL3_PADDED];
    let mut f1 = [0.0f32; NGLL3_PADDED];
    let mut f2 = [0.0f32; NGLL3_PADDED];
    let mut f3 = [0.0f32; NGLL3_PADDED];
    let mut accum = [0.0f32; NGLL3_PADDED];

    let mut nfluid = 0usize;
    for e in elems {
        if !mesh.region[e].is_fluid() {
            continue;
        }
        nfluid += 1;
        let base = e * n3;
        let ib = &mesh.ibool[base..base + n3];
        for (l, &p) in ib.iter().enumerate() {
            chi[l] = chi_field[p as usize];
        }
        cutplane_derivatives(variant, &chi, ops, &mut t1, &mut t2, &mut t3);
        for k in 0..NGLL {
            for j in 0..NGLL {
                for i in 0..NGLL {
                    let l = (k * NGLL + j) * NGLL + i;
                    let idx = base + l;
                    let (xix, xiy, xiz) = (geom.xix[idx], geom.xiy[idx], geom.xiz[idx]);
                    let (etx, ety, etz) = (geom.etax[idx], geom.etay[idx], geom.etaz[idx]);
                    let (gax, gay, gaz) = (geom.gammax[idx], geom.gammay[idx], geom.gammaz[idx]);
                    let dchi_dx = t1[l] * xix + t2[l] * etx + t3[l] * gax;
                    let dchi_dy = t1[l] * xiy + t2[l] * ety + t3[l] * gay;
                    let dchi_dz = t1[l] * xiz + t2[l] * etz + t3[l] * gaz;
                    let inv_rho = 1.0 / mesh.rho[idx];
                    let jac = geom.jacobian[idx];
                    let gx = inv_rho * dchi_dx;
                    let gy = inv_rho * dchi_dy;
                    let gz = inv_rho * dchi_dz;
                    f1[l] = (wf[j] * wf[k]) * jac * (gx * xix + gy * xiy + gz * xiz);
                    f2[l] = (wf[i] * wf[k]) * jac * (gx * etx + gy * ety + gz * etz);
                    f3[l] = (wf[i] * wf[j]) * jac * (gx * gax + gy * gay + gz * gaz);
                }
            }
        }
        accum[..NGLL3].fill(0.0);
        cutplane_transpose_accumulate(variant, &f1, &f2, &f3, ops, &mut accum);
        sink.emit(e, ib, &accum);
    }
    flops.add_fluid_elements(nfluid);
}

#[cfg(test)]
mod tests {
    use super::*;
    use specfem_gll::GllBasis;
    use specfem_mesh::{GlobalMesh, MeshParams, Partition};
    use specfem_model::Prem;

    fn serial_setup() -> (LocalMesh, PrecomputedGeometry, DerivOps) {
        let params = MeshParams::new(4, 1);
        let prem = Prem::isotropic_no_ocean();
        let gm = GlobalMesh::build(&params, &prem);
        let mesh = Partition::serial(&gm).extract(&gm, 0);
        let geom = PrecomputedGeometry::compute(&mesh, None);
        let ops = DerivOps::from_basis(&GllBasis::new(4));
        (mesh, geom, ops)
    }

    #[test]
    fn rigid_translation_produces_no_solid_forces() {
        // A constant displacement field has zero strain → forces at f32
        // roundoff only. "Roundoff" must be judged against the RHS a
        // *deforming* field of the same amplitude produces (the raw RHS
        // carries the enormous λ·J·∇ξ scale before the mass division).
        let (mesh, geom, ops) = serial_setup();
        let mut flops = FlopCounter::new();
        let rhs_max = |fields: &mut WaveFields, flops: &mut FlopCounter| {
            compute_solid_forces(
                &mesh,
                &geom,
                &ops,
                KernelVariant::Simd,
                fields,
                None,
                false,
                flops,
            );
            fields.accel.iter().map(|a| a.abs()).fold(0.0f32, f32::max)
        };
        let mut rigid = WaveFields::zeros(mesh.nglob);
        for p in 0..mesh.nglob {
            rigid.displ[p * 3] = 1.0;
            rigid.displ[p * 3 + 1] = -0.5;
            rigid.displ[p * 3 + 2] = 0.25;
        }
        let rigid_max = rhs_max(&mut rigid, &mut flops);

        let mut wave = WaveFields::zeros(mesh.nglob);
        for (p, c) in mesh.coords.iter().enumerate() {
            wave.displ[p * 3] = (c[0] / 1.0e6).sin() as f32; // unit-amplitude wave
        }
        let wave_max = rhs_max(&mut wave, &mut flops);

        assert!(wave_max > 0.0);
        assert!(
            rigid_max < 1e-4 * wave_max,
            "rigid RHS {rigid_max} vs deforming RHS {wave_max}"
        );
        assert!(flops.total() > 0);
    }

    #[test]
    fn constant_potential_produces_no_fluid_forces() {
        let (mesh, geom, ops) = serial_setup();
        let mut fields = WaveFields::zeros(mesh.nglob);
        fields.chi.fill(7.0);
        let mut flops = FlopCounter::new();
        compute_fluid_forces(
            &mesh,
            &geom,
            &ops,
            KernelVariant::Simd,
            &mut fields,
            &mut flops,
        );
        let max = fields
            .chi_ddot
            .iter()
            .map(|a| a.abs())
            .fold(0.0f32, f32::max);
        assert!(max < 1.0, "max chi_ddot {max}");
    }

    #[test]
    fn kernel_variants_agree_on_real_mesh_forces() {
        let (mesh, geom, ops) = serial_setup();
        let mut results = Vec::new();
        for variant in [
            KernelVariant::Reference,
            KernelVariant::Simd,
            KernelVariant::BlasStyle,
        ] {
            let mut fields = WaveFields::zeros(mesh.nglob);
            // Smooth nontrivial displacement: u = sin(kx)·ŷ.
            for (p, c) in mesh.coords.iter().enumerate() {
                fields.displ[p * 3 + 1] = (c[0] / 1.0e6).sin() as f32;
            }
            let mut flops = FlopCounter::new();
            compute_solid_forces(
                &mesh,
                &geom,
                &ops,
                variant,
                &mut fields,
                None,
                false,
                &mut flops,
            );
            results.push(fields.accel);
        }
        let norm: f32 = results[0].iter().map(|a| a.abs()).fold(0.0, f32::max);
        assert!(norm > 0.0);
        for other in &results[1..] {
            let maxdiff = results[0]
                .iter()
                .zip(other)
                .map(|(a, b)| (a - b).abs())
                .fold(0.0f32, f32::max);
            assert!(
                maxdiff < 1e-4 * norm,
                "variants differ: {maxdiff} vs {norm}"
            );
        }
    }

    #[test]
    fn stiffness_is_symmetric_negative_semidefinite() {
        // ⟨u, K u⟩ ≥ 0 for the elastic stiffness (energy), i.e. the
        // accumulated accel = −K u must satisfy −⟨u, accel⟩ ≥ 0.
        let (mesh, geom, ops) = serial_setup();
        let mut fields = WaveFields::zeros(mesh.nglob);
        for (p, c) in mesh.coords.iter().enumerate() {
            fields.displ[p * 3] = (c[1] / 2.0e6).cos() as f32;
            fields.displ[p * 3 + 2] = (c[0] / 3.0e6).sin() as f32;
        }
        let mut flops = FlopCounter::new();
        compute_solid_forces(
            &mesh,
            &geom,
            &ops,
            KernelVariant::Reference,
            &mut fields,
            None,
            false,
            &mut flops,
        );
        let mut energy = 0.0f64;
        for p in 0..mesh.nglob {
            for c in 0..3 {
                energy -= fields.displ[p * 3 + c] as f64 * fields.accel[p * 3 + c] as f64;
            }
        }
        assert!(energy > 0.0, "strain energy {energy} must be positive");
    }

    #[test]
    fn split_range_forces_are_bit_identical_to_full_pass() {
        // Computing 0..k then k..nspec must reproduce 0..nspec exactly —
        // the property the overlapped time loop's bit-identity rests on.
        let (mesh, geom, ops) = serial_setup();
        let seed_fields = |fields: &mut WaveFields| {
            for (p, c) in mesh.coords.iter().enumerate() {
                fields.displ[p * 3] = (c[0] / 1.5e6).sin() as f32;
                fields.displ[p * 3 + 2] = (c[1] / 2.5e6).cos() as f32;
                fields.chi[p] = (c[2] / 2.0e6).sin() as f32;
            }
        };
        let mut full = WaveFields::zeros(mesh.nglob);
        seed_fields(&mut full);
        let mut flops = FlopCounter::new();
        compute_solid_forces(
            &mesh,
            &geom,
            &ops,
            KernelVariant::Simd,
            &mut full,
            None,
            false,
            &mut flops,
        );
        compute_fluid_forces(
            &mesh,
            &geom,
            &ops,
            KernelVariant::Simd,
            &mut full,
            &mut flops,
        );

        for split in [0, 1, mesh.nspec / 3, mesh.nspec / 2, mesh.nspec] {
            let mut halves = WaveFields::zeros(mesh.nglob);
            seed_fields(&mut halves);
            let mut flops2 = FlopCounter::new();
            compute_solid_forces_range(
                &mesh,
                &geom,
                &ops,
                KernelVariant::Simd,
                &mut halves,
                None,
                false,
                &mut flops2,
                0..split,
            );
            compute_solid_forces_range(
                &mesh,
                &geom,
                &ops,
                KernelVariant::Simd,
                &mut halves,
                None,
                false,
                &mut flops2,
                split..mesh.nspec,
            );
            compute_fluid_forces_range(
                &mesh,
                &geom,
                &ops,
                KernelVariant::Simd,
                &mut halves,
                &mut flops2,
                0..split,
            );
            compute_fluid_forces_range(
                &mesh,
                &geom,
                &ops,
                KernelVariant::Simd,
                &mut halves,
                &mut flops2,
                split..mesh.nspec,
            );
            for (a, b) in full.accel.iter().zip(&halves.accel) {
                assert_eq!(a.to_bits(), b.to_bits(), "split at {split}");
            }
            for (a, b) in full.chi_ddot.iter().zip(&halves.chi_ddot) {
                assert_eq!(a.to_bits(), b.to_bits(), "split at {split}");
            }
            assert_eq!(flops.total(), flops2.total());
        }
    }

    #[test]
    fn attenuation_memory_variables_build_up_and_reduce_stress_work() {
        let (mesh, geom, ops) = serial_setup();
        let mut att = AttenuationState::new(&mesh, 0.5, 100.0);
        assert!(att.memory.iter().all(|&m| m == 0.0));
        let mut fields = WaveFields::zeros(mesh.nglob);
        for (p, c) in mesh.coords.iter().enumerate() {
            fields.displ[p * 3] = (c[2] / 2.0e6).sin() as f32;
        }
        let mut flops = FlopCounter::new();
        compute_solid_forces(
            &mesh,
            &geom,
            &ops,
            KernelVariant::Simd,
            &mut fields,
            Some(&mut att),
            false,
            &mut flops,
        );
        let nonzero = att.memory.iter().filter(|&&m| m != 0.0).count();
        assert!(nonzero > 0, "memory variables must respond to strain");
    }
}
