//! Facade-level glue for the batched multi-event tier: decide which
//! [`Simulation`]s may fuse into one solve, and run K of them through
//! `specfem-batch` producing K ordinary [`SimulationResult`]s.
//!
//! The campaign packer and the serve daemon only ever talk to this
//! module — they never touch lane-major banks or `BatchSolver` directly.
//! The contract is the crate-wide zero-ULP one: each lane's seismograms
//! (and, when requested, final wavefield) are bit-identical to the
//! serial run of the same job, so a batched answer is cached under the
//! same `result_key` a serial answer would be.

use specfem_batch::{
    try_run_batch_partitioned, try_run_batch_serial, BatchRankOutput, BatchRunOptions, EventLane,
    LaneOutput,
};
use specfem_comm::{NetworkProfile, StatsSnapshot};
use specfem_kernels::{KernelVariant, MAX_BATCH_LANES};
use specfem_mesh::{GlobalMesh, MeshMode, Partition};
use specfem_solver::{RankResult, SolverError};

use crate::{ResultFnv, Simulation, SimulationResult};

/// Can this simulation run on the batched tier at all? Requires the
/// solver configuration `specfem_batch::supported` accepts, a global
/// mesh (no absorbing boundaries), and none of the ops machinery the
/// batch driver does not thread through (tracing, watchdog, fault
/// injection, resume). Anything rejected here simply runs on the
/// single-lane path — batching is an optimization, never a requirement.
pub fn batchable(sim: &Simulation) -> bool {
    if specfem_batch::supported(&sim.config).is_err() {
        return false;
    }
    if !matches!(sim.params.mode, MeshMode::Global) {
        return false;
    }
    // Per-lane rank profiles and watchdog telemetry are not plumbed
    // through the batch driver; jobs that asked for them keep the
    // single-lane path so nothing is silently dropped.
    !sim.config.trace && sim.config.watchdog_timeout.is_none()
}

/// The batch-compatibility fingerprint: two simulations may share one
/// batched time loop iff they are [`batchable`] and their keys are
/// equal. Hashes everything the fused loop holds in common — the mesh
/// geometry, the kernel variant, the physics toggles, and the timeloop
/// shape — while the per-lane degrees of freedom (source, stations) are
/// deliberately excluded; those are exactly what the lanes vary.
pub fn batch_compat_key(sim: &Simulation) -> Option<u64> {
    if !batchable(sim) {
        return None;
    }
    let c = &sim.config;
    let mut h = ResultFnv::new();
    h.bytes(b"specfem-batch-compat-v1");
    h.u64(sim.mesh_key().geometry_fingerprint());
    h.u8(match c.variant {
        KernelVariant::Reference => 0,
        KernelVariant::Simd => 1,
        KernelVariant::BlasStyle => 2,
    });
    h.u8(c.rotation as u8);
    h.u8(c.gravity as u8);
    h.u64(c.nsteps as u64);
    match c.dt {
        Some(dt) => {
            h.u8(1);
            h.f64(dt);
        }
        None => {
            h.u8(0);
            h.f64(0.0);
        }
    }
    h.u64(c.record_every as u64);
    h.u8(c.exact_station_location as u8);
    // Health cadence shapes the step loop (when lanes are scanned), so
    // only jobs sampling at the same cadence fuse.
    h.u64(c.health_every as u64);
    Some(h.finish())
}

/// Why a batch could not even be attempted (a packing/validation error,
/// distinct from a per-lane [`SolverError`]). The caller's fallback is
/// always the same: run the jobs on the single-lane path instead.
pub type BatchSetupError = String;

/// Run `sims` — up to [`MAX_BATCH_LANES`] simulations sharing one mesh
/// and one [`batch_compat_key`] — as a single batched solve. `profile =
/// None` solves serially on one in-process rank; `Some(profile)` runs
/// the mesh's native `6 × NPROC_XI²` thread world.
///
/// Returns one entry per input simulation, in order: the lane's
/// [`SimulationResult`] (bit-identical to what `run_serial_with_mesh` /
/// `run_parallel_with_mesh` would have produced), or the
/// [`SolverError::Health`] that poisoned that lane while its siblings
/// completed. A whole-batch failure (comm error, rank panic, lane
/// mismatch) surfaces as the outer `Err` so the caller can rerun the
/// jobs unfused.
///
/// Accounting: the fused loop's communication and flop counters are
/// physically shared by all lanes, so they are attributed to lane 0's
/// `RankResult`s; sibling lanes carry empty comm stats and zero flops
/// (wall time, being shared too, is reported on every lane). Summing
/// telemetry across the returned results therefore never double-counts.
pub fn try_run_batch_with_mesh(
    sims: &[&Simulation],
    mesh: &GlobalMesh,
    profile: Option<NetworkProfile>,
) -> Result<Vec<Result<SimulationResult, SolverError>>, BatchSetupError> {
    if sims.is_empty() {
        return Err("empty batch".into());
    }
    if sims.len() > MAX_BATCH_LANES {
        return Err(format!(
            "batch of {} lanes exceeds MAX_BATCH_LANES = {MAX_BATCH_LANES}",
            sims.len()
        ));
    }
    let key = batch_compat_key(sims[0])
        .ok_or_else(|| format!("'{}' is not batchable", lane_name(sims[0], 0)))?;
    for (i, sim) in sims.iter().enumerate() {
        match batch_compat_key(sim) {
            Some(k) if k == key => {}
            Some(_) => {
                return Err(format!(
                    "'{}' has a different batch-compat key than lane 0",
                    lane_name(sim, i)
                ))
            }
            None => return Err(format!("'{}' is not batchable", lane_name(sim, i))),
        }
        let theirs = specfem_mesh::MeshKey::new(&mesh.params, sim.model.id());
        let check = if profile.is_some() {
            sim.mesh_key().fingerprint() == theirs.fingerprint()
        } else {
            sim.mesh_key().geometry_fingerprint() == theirs.geometry_fingerprint()
        };
        if !check {
            return Err(format!(
                "'{}' was configured for a different mesh than the one supplied",
                lane_name(sim, i)
            ));
        }
    }

    let lanes: Vec<EventLane> = sims
        .iter()
        .enumerate()
        .map(|(i, sim)| EventLane {
            name: lane_name(sim, i),
            source: sim.config.source.clone(),
            stations: sim.stations.clone(),
        })
        .collect();
    // The compat key pins every answer-affecting shared knob, so lane
    // 0's config legitimately drives the fused loop.
    let config = sims[0].config.clone();
    let opts = BatchRunOptions::default();

    let per_rank: Vec<BatchRankOutput> = match profile {
        None => vec![try_run_batch_serial(mesh, &config, &lanes, &opts)
            .map_err(|e| format!("batched solve failed: {e}"))?],
        Some(profile) => {
            let partition = Partition::compute(mesh);
            let mut outputs = Vec::with_capacity(partition.num_ranks);
            for r in try_run_batch_partitioned(mesh, &config, &lanes, profile, &partition, &opts) {
                outputs.push(r.map_err(|e| format!("batched solve failed: {e}"))?);
            }
            outputs
        }
    };

    Ok((0..sims.len())
        .map(|lane| fan_out_lane(lane, &per_rank, sims[lane]))
        .collect())
}

fn lane_name(sim: &Simulation, index: usize) -> String {
    match &sim.config.source {
        specfem_solver::SourceSpec::Cmt { event, .. } => event.name.clone(),
        _ => format!("lane-{index}"),
    }
}

/// Assemble one lane's [`SimulationResult`] from every rank's batch
/// output. A health trip on any rank fails the lane (and only it).
fn fan_out_lane(
    lane: usize,
    per_rank: &[BatchRankOutput],
    sim: &Simulation,
) -> Result<SimulationResult, SolverError> {
    let mut ranks: Vec<RankResult> = Vec::with_capacity(per_rank.len());
    for out in per_rank {
        let lo: &LaneOutput = match &out.lanes[lane] {
            Ok(lo) => lo,
            Err(report) => return Err(SolverError::Health(report.clone())),
        };
        let first_lane = lane == 0;
        ranks.push(RankResult {
            rank: out.rank,
            seismograms: lo.seismograms.clone(),
            energy: Vec::new(),
            elapsed_s: out.elapsed_s,
            comm: if first_lane {
                out.comm.clone()
            } else {
                StatsSnapshot::default()
            },
            flops: if first_lane { out.flops } else { 0 },
            dt: out.dt,
            nsteps: out.nsteps,
            nspec: out.nspec,
            nglob: out.nglob,
            station_error_m: lo.station_error_m,
            snapshots: None,
            profile: None,
            lts: None,
            // Each lane keeps its *own* correlation id — the fused loop
            // shares physics knobs across lanes, but tracing identity
            // stays per-event.
            trace_id: sim.config.trace_id,
        });
    }
    let seismograms = specfem_solver::timeloop::merge_seismograms(&ranks);
    let dt = ranks.first().map(|r| r.dt).unwrap_or(0.0);
    let result = SimulationResult {
        seismograms,
        ranks,
        dt,
        mesher_profile: None,
        watchdog: None,
    };
    // Honor trace_dir autowrite symmetry: batchable() rejects traced
    // configs, so there is nothing to write here by construction.
    let _ = sim;
    Ok(result)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SimulationBuilder;

    fn batch_sim(event: &str) -> SimulationBuilder {
        Simulation::builder()
            .resolution(4)
            .steps(8)
            .catalogue_event(event)
            .stations(2)
    }

    #[test]
    fn batchable_screens_unsupported_configs() {
        assert!(batchable(&batch_sim("argentina_deep").build().unwrap()));
        assert!(!batchable(
            &batch_sim("argentina_deep")
                .attenuation(true)
                .build()
                .unwrap()
        ));
        assert!(!batchable(
            &batch_sim("argentina_deep").trace(true).build().unwrap()
        ));
        assert!(!batchable(
            &batch_sim("argentina_deep")
                .watchdog_timeout(std::time::Duration::from_secs(1))
                .build()
                .unwrap()
        ));
        assert!(!batchable(
            &batch_sim("argentina_deep")
                .configure(|c| c.checkpoint_every = 5)
                .build()
                .unwrap()
        ));
        // Regional meshes have absorbing boundaries — single-lane only.
        assert!(!batchable(
            &Simulation::builder()
                .resolution(4)
                .regional(6_000_000.0)
                .steps(8)
                .build()
                .unwrap()
        ));
    }

    #[test]
    fn compat_key_separates_timeloop_shapes_but_not_sources() {
        let a = batch_sim("argentina_deep").build().unwrap();
        let b = batch_sim("sumatra_thrust").build().unwrap();
        // Different earthquakes, same fused loop.
        assert_eq!(batch_compat_key(&a), batch_compat_key(&b));
        // Different station *sets* still fuse (stations are per-lane).
        let c = batch_sim("argentina_deep").stations(5).build().unwrap();
        assert_eq!(batch_compat_key(&a), batch_compat_key(&c));
        // Anything shaping the shared loop splits the key.
        for other in [
            batch_sim("argentina_deep").steps(9).build().unwrap(),
            batch_sim("argentina_deep").resolution(6).build().unwrap(),
            batch_sim("argentina_deep")
                .kernel(KernelVariant::Simd)
                .build()
                .unwrap(),
            batch_sim("argentina_deep").rotation(true).build().unwrap(),
            batch_sim("argentina_deep").gravity(true).build().unwrap(),
            batch_sim("argentina_deep").health_every(4).build().unwrap(),
            batch_sim("argentina_deep")
                .configure(|c| c.record_every = 2)
                .build()
                .unwrap(),
        ] {
            assert_ne!(batch_compat_key(&a), batch_compat_key(&other));
        }
        // Unbatchable → no key at all.
        assert_eq!(
            batch_compat_key(
                &batch_sim("argentina_deep")
                    .attenuation(true)
                    .build()
                    .unwrap()
            ),
            None
        );
    }

    #[test]
    fn batched_results_match_serial_runs_bitwise() {
        let sims: Vec<Simulation> = ["argentina_deep", "sumatra_thrust"]
            .iter()
            .map(|e| batch_sim(e).build().unwrap())
            .collect();
        let refs: Vec<&Simulation> = sims.iter().collect();
        let (mesh, _) = sims[0].build_mesh();
        let results = try_run_batch_with_mesh(&refs, &mesh, None).unwrap();
        assert_eq!(results.len(), 2);
        for (sim, result) in sims.iter().zip(&results) {
            let batched = result.as_ref().unwrap();
            let serial = sim.run_serial_with_mesh(&mesh);
            assert_eq!(batched.seismograms.len(), serial.seismograms.len());
            assert_eq!(batched.dt.to_bits(), serial.dt.to_bits());
            for (b, s) in batched.seismograms.iter().zip(&serial.seismograms) {
                assert_eq!(b.station, s.station);
                assert_eq!(b.data.len(), s.data.len());
                for (bs, ss) in b.data.iter().zip(&s.data) {
                    for c in 0..3 {
                        assert_eq!(bs[c].to_bits(), ss[c].to_bits(), "station {}", b.station);
                    }
                }
            }
        }
        // Shared accounting lands on lane 0 only.
        let lane0 = results[0].as_ref().unwrap();
        let lane1 = results[1].as_ref().unwrap();
        assert!(lane0.total_flops() > 0);
        assert_eq!(lane1.total_flops(), 0);
    }

    #[test]
    fn mixed_batches_are_rejected_up_front() {
        let a = batch_sim("argentina_deep").build().unwrap();
        let b = batch_sim("sumatra_thrust").steps(9).build().unwrap();
        let (mesh, _) = a.build_mesh();
        let err = try_run_batch_with_mesh(&[&a, &b], &mesh, None).unwrap_err();
        assert!(err.contains("batch-compat"), "got: {err}");
        assert!(try_run_batch_with_mesh(&[], &mesh, None).is_err());
    }
}
