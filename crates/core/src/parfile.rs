//! `Par_file` parsing — the SPECFEM3D_GLOBE configuration format
//! (`KEY = value` lines with `#` comments), mapped onto the
//! [`SimulationBuilder`](crate::SimulationBuilder).
//!
//! Recognized keys (a faithful subset of the production file):
//!
//! ```text
//! # simulation type
//! NCHUNKS                = 6            # 6 = global, 1 = regional
//! NEX_XI                 = 16
//! NPROC_XI               = 2
//! MODEL                  = prem_iso     # prem | prem_iso | prem_3d | homogeneous
//! REGIONAL_MIN_RADIUS_KM = 5701.0      # only for NCHUNKS = 1
//! # physics
//! ATTENUATION            = .true.
//! ROTATION               = .false.
//! GRAVITY                = .false.
//! OCEANS                 = .false.
//! # communication
//! OVERLAP_COMM           = .true.      # overlap halo exchange with inner elements
//! # run
//! NSTEP                  = 400
//! DT                     = 0.0          # 0 = automatic (Courant)
//! LTS_MAX_RATE           = 1            # clustered-LTS rate cap (power of two), 1 = off
//! RECORD_LENGTH_STEPS    = 1
//! EVENT                  = argentina_deep
//! NSTATIONS              = 12
//! # observability
//! TRACE                  = .false.     # record spans + metrics per rank
//! TRACE_DIR              = OUTPUT_FILES/trace  # write artifacts here
//! METRICS_EVERY          = 10          # step-timing sample cadence
//! HEALTH_EVERY           = 0           # numerical-health sample cadence, 0 = off
//! WATCHDOG_TIMEOUT_MS    = 0           # straggler watchdog heartbeat deadline, 0 = off
//! FLIGHT_RECORDER        = .false.     # per-rank event journal for crash dossiers
//! FLIGHT_BUFFER_EVENTS   = 1024        # flight-journal ring capacity (>= 1)
//! CHECKPOINT_KEEP        = 2           # merged checkpoint generations kept on disk (>= 1)
//! # campaign runtime (read via [`campaign_knobs_from_parfile`])
//! CAMPAIGN_WORKERS       = 0           # worker pool size, 0 = auto
//! MESH_CACHE_BYTES       = 512M        # cache ceiling, 0 = unbounded (K/M/G ok)
//! BATCH_MAX_LANES        = 1           # events fused per solve, 1 = batching off
//! BATCH_WINDOW_MS        = 0           # wait for batch-mates before solving, 0 = no wait
//! # serve daemon (read via [`serve_knobs_from_parfile`])
//! SERVE_ADDR             = 127.0.0.1:7460  # daemon listen address
//! RESULT_CACHE_BYTES     = 64M         # result-cache memory tier (K/M/G ok)
//! REQUEST_DEADLINE_MS    = 30000       # per-request deadline, 0 = none
//! ```

use crate::{ModelChoice, Simulation, SimulationBuilder};

/// Parse the `KEY = value` format into key/value pairs (upper-cased keys).
pub fn parse_pairs(text: &str) -> Vec<(String, String)> {
    let mut out = Vec::new();
    for line in text.lines() {
        let line = match line.find('#') {
            Some(i) => &line[..i],
            None => line,
        };
        let Some(eq) = line.find('=') else { continue };
        let key = line[..eq].trim().to_uppercase();
        let value = line[eq + 1..].trim().to_string();
        if !key.is_empty() && !value.is_empty() {
            out.push((key, value));
        }
    }
    out
}

fn parse_bool(v: &str) -> Result<bool, String> {
    match v.to_lowercase().as_str() {
        ".true." | "true" | "1" | "yes" => Ok(true),
        ".false." | "false" | "0" | "no" => Ok(false),
        other => Err(format!("not a boolean: {other}")),
    }
}

/// Campaign-runtime knobs carried in the same Par_file. Kept apart from
/// [`Simulation`] because they configure the scheduler around many
/// simulations, not any single one; `specfem-campaign` builds its
/// `CampaignConfig` from these.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CampaignKnobs {
    /// `CAMPAIGN_WORKERS`: worker-pool size; 0 (the default) = auto.
    pub workers: usize,
    /// `MESH_CACHE_BYTES`: mesh-cache resident-byte ceiling; 0 (the
    /// default) = unbounded. Accepts `K`/`M`/`G` suffixes.
    pub mesh_cache_bytes: usize,
    /// `BATCH_MAX_LANES`: maximum events fused into one batched solve.
    /// 1 (the default) keeps batching off — every job runs on the
    /// single-lane path, untouched. Capped at
    /// `specfem_kernels::MAX_BATCH_LANES`.
    pub batch_max_lanes: usize,
    /// `BATCH_WINDOW_MS`: how long a worker holding one batchable job
    /// waits for compatible batch-mates to arrive before solving.
    /// 0 (the default) = fuse only what is already queued, never wait.
    pub batch_window_ms: u64,
}

impl Default for CampaignKnobs {
    fn default() -> Self {
        Self {
            workers: 0,
            mesh_cache_bytes: 0,
            batch_max_lanes: 1,
            batch_window_ms: 0,
        }
    }
}

impl CampaignKnobs {
    /// Render as Par_file lines (the inverse of
    /// [`campaign_knobs_from_parfile`]).
    pub fn to_parfile(&self) -> String {
        format!(
            "CAMPAIGN_WORKERS = {}\nMESH_CACHE_BYTES = {}\nBATCH_MAX_LANES = {}\nBATCH_WINDOW_MS = {}\n",
            self.workers, self.mesh_cache_bytes, self.batch_max_lanes, self.batch_window_ms
        )
    }
}

/// Parse a byte count with an optional `K`/`M`/`G` (or `KB`/`MB`/`GB`)
/// suffix, case-insensitive: `512M` → 536870912.
fn parse_bytes(key: &str, v: &str) -> Result<usize, String> {
    let upper = v.trim().to_uppercase();
    let (digits, shift) = match upper.strip_suffix("KB").or(upper.strip_suffix('K')) {
        Some(d) => (d, 10),
        None => match upper.strip_suffix("MB").or(upper.strip_suffix('M')) {
            Some(d) => (d, 20),
            None => match upper.strip_suffix("GB").or(upper.strip_suffix('G')) {
                Some(d) => (d, 30),
                None => (upper.as_str(), 0),
            },
        },
    };
    let n: usize = digits
        .trim()
        .parse()
        .map_err(|_| format!("{key}: not a byte count: {v}"))?;
    n.checked_shl(shift)
        .ok_or_else(|| format!("{key}: byte count overflows: {v}"))
}

/// Serve-daemon knobs carried in the same Par_file. Like
/// [`CampaignKnobs`], these configure the runtime *around* simulations —
/// `specfem-serve` builds its listener and result cache from them.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServeKnobs {
    /// `SERVE_ADDR`: TCP listen address for the daemon.
    pub addr: String,
    /// `RESULT_CACHE_BYTES`: memory-tier budget for the content-addressed
    /// result cache. Accepts `K`/`M`/`G` suffixes.
    pub result_cache_bytes: usize,
    /// `REQUEST_DEADLINE_MS`: per-request deadline; 0 disables it.
    pub request_deadline_ms: u64,
    /// `BATCH_MAX_LANES`: same knob as [`CampaignKnobs::batch_max_lanes`]
    /// — the daemon passes it to its internal campaign, so concurrent
    /// requests for the same mesh and timeloop shape fuse into one
    /// K-event solve. 1 (the default) = batching off.
    pub batch_max_lanes: usize,
    /// `BATCH_WINDOW_MS`: same knob as [`CampaignKnobs::batch_window_ms`]
    /// — how long an underfull batch waits for fusable requests.
    pub batch_window_ms: u64,
}

impl Default for ServeKnobs {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:7460".to_string(),
            result_cache_bytes: 64 << 20,
            request_deadline_ms: 30_000,
            batch_max_lanes: 1,
            batch_window_ms: 0,
        }
    }
}

impl ServeKnobs {
    /// Render as Par_file lines (the inverse of [`serve_knobs_from_parfile`]).
    /// The batching keys are shared with [`CampaignKnobs::to_parfile`]
    /// and only rendered when they differ from the defaults, so
    /// concatenating both knob sets never emits conflicting duplicates.
    pub fn to_parfile(&self) -> String {
        let mut out = format!(
            "SERVE_ADDR = {}\nRESULT_CACHE_BYTES = {}\nREQUEST_DEADLINE_MS = {}\n",
            self.addr, self.result_cache_bytes, self.request_deadline_ms
        );
        if self.batch_max_lanes != 1 {
            out.push_str(&format!("BATCH_MAX_LANES = {}\n", self.batch_max_lanes));
        }
        if self.batch_window_ms != 0 {
            out.push_str(&format!("BATCH_WINDOW_MS = {}\n", self.batch_window_ms));
        }
        out
    }
}

/// Extract the serve-daemon knobs from Par_file text. All keys are
/// optional; absent keys keep the `Default`. Unrelated keys are ignored,
/// so one file can configure the simulations, the campaign, and the
/// daemon serving them.
pub fn serve_knobs_from_parfile(text: &str) -> Result<ServeKnobs, String> {
    let pairs = parse_pairs(text);
    let get = |key: &str| -> Option<&str> {
        pairs
            .iter()
            .rev()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    };
    let mut knobs = ServeKnobs::default();
    if let Some(v) = get("SERVE_ADDR") {
        knobs.addr = v.to_string();
    }
    if let Some(v) = get("RESULT_CACHE_BYTES") {
        knobs.result_cache_bytes = parse_bytes("RESULT_CACHE_BYTES", v)?;
    }
    if let Some(v) = get("REQUEST_DEADLINE_MS") {
        knobs.request_deadline_ms = v
            .parse()
            .map_err(|_| format!("REQUEST_DEADLINE_MS: not a millisecond count: {v}"))?;
    }
    if let Some(v) = get("BATCH_MAX_LANES") {
        knobs.batch_max_lanes = parse_batch_max_lanes(v)?;
    }
    if let Some(v) = get("BATCH_WINDOW_MS") {
        knobs.batch_window_ms = parse_batch_window_ms(v)?;
    }
    Ok(knobs)
}

/// Validate `BATCH_MAX_LANES` (shared by the campaign and serve knob
/// readers): at least 1, at most the kernel tier's lane ceiling.
fn parse_batch_max_lanes(v: &str) -> Result<usize, String> {
    let lanes: usize = v
        .parse()
        .map_err(|_| format!("BATCH_MAX_LANES: not a lane count: {v}"))?;
    if lanes < 1 {
        return Err(format!("BATCH_MAX_LANES: must be >= 1, got {v}"));
    }
    if lanes > specfem_kernels::MAX_BATCH_LANES {
        return Err(format!(
            "BATCH_MAX_LANES: must be <= {}, got {v}",
            specfem_kernels::MAX_BATCH_LANES
        ));
    }
    Ok(lanes)
}

fn parse_batch_window_ms(v: &str) -> Result<u64, String> {
    v.parse()
        .map_err(|_| format!("BATCH_WINDOW_MS: not a millisecond count: {v}"))
}

/// Extract the campaign-runtime knobs from Par_file text. Both keys are
/// optional; absent keys keep the `Default` (auto workers, unbounded
/// cache). Unrelated keys are ignored, so one file can configure both
/// the simulations and the campaign around them.
pub fn campaign_knobs_from_parfile(text: &str) -> Result<CampaignKnobs, String> {
    let pairs = parse_pairs(text);
    let get = |key: &str| -> Option<&str> {
        pairs
            .iter()
            .rev()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    };
    let mut knobs = CampaignKnobs::default();
    if let Some(v) = get("CAMPAIGN_WORKERS") {
        knobs.workers = v
            .parse()
            .map_err(|_| format!("CAMPAIGN_WORKERS: not a count: {v}"))?;
    }
    if let Some(v) = get("MESH_CACHE_BYTES") {
        knobs.mesh_cache_bytes = parse_bytes("MESH_CACHE_BYTES", v)?;
    }
    if let Some(v) = get("BATCH_MAX_LANES") {
        knobs.batch_max_lanes = parse_batch_max_lanes(v)?;
    }
    if let Some(v) = get("BATCH_WINDOW_MS") {
        knobs.batch_window_ms = parse_batch_window_ms(v)?;
    }
    Ok(knobs)
}

/// Build a [`Simulation`] from Par_file text.
pub fn simulation_from_parfile(text: &str) -> Result<Simulation, String> {
    let pairs = parse_pairs(text);
    let get = |key: &str| -> Option<&str> {
        pairs
            .iter()
            .rev() // last assignment wins, like Fortran's re-reads
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    };
    let parse_num = |key: &str, v: &str| -> Result<f64, String> {
        v.parse::<f64>()
            .map_err(|_| format!("{key}: not a number: {v}"))
    };

    let mut builder = SimulationBuilder::default();
    if let Some(v) = get("NEX_XI") {
        builder = builder.resolution(parse_num("NEX_XI", v)? as usize);
    }
    if let Some(v) = get("NPROC_XI") {
        builder = builder.processors(parse_num("NPROC_XI", v)? as usize);
    }
    match get("NCHUNKS") {
        None | Some("6") => {}
        Some("1") => {
            let r_km = get("REGIONAL_MIN_RADIUS_KM")
                .map(|v| parse_num("REGIONAL_MIN_RADIUS_KM", v))
                .transpose()?
                .unwrap_or(5_701.0);
            builder = builder.regional(r_km * 1000.0);
        }
        Some(other) => return Err(format!("NCHUNKS must be 1 or 6, got {other}")),
    }
    if let Some(v) = get("MODEL") {
        builder = builder.model(match v.to_lowercase().as_str() {
            "prem" => ModelChoice::Prem,
            "prem_iso" | "prem_isotropic" => ModelChoice::IsotropicPrem,
            "prem_3d" | "s_perturbed" => ModelChoice::Prem3D,
            "homogeneous" => ModelChoice::Homogeneous,
            other => return Err(format!("unknown MODEL: {other}")),
        });
    }
    if let Some(v) = get("ATTENUATION") {
        builder = builder.attenuation(parse_bool(v)?);
    }
    if let Some(v) = get("ROTATION") {
        builder = builder.rotation(parse_bool(v)?);
    }
    if let Some(v) = get("GRAVITY") {
        builder = builder.gravity(parse_bool(v)?);
    }
    if let Some(v) = get("OCEANS") {
        builder = builder.ocean_load(parse_bool(v)?);
    }
    if let Some(v) = get("OVERLAP_COMM") {
        builder = builder.overlap(parse_bool(v)?);
    }
    if let Some(v) = get("NSTEP") {
        builder = builder.steps(parse_num("NSTEP", v)? as usize);
    }
    if let Some(v) = get("EVENT") {
        builder = builder.catalogue_event(v);
    }
    if let Some(v) = get("NSTATIONS") {
        builder = builder.stations(parse_num("NSTATIONS", v)? as usize);
    }
    if let Some(v) = get("TRACE") {
        builder = builder.trace(parse_bool(v)?);
    }
    if let Some(v) = get("TRACE_DIR") {
        builder = builder.trace_dir(v);
    }
    if let Some(v) = get("METRICS_EVERY") {
        builder = builder.metrics_every(parse_num("METRICS_EVERY", v)? as usize);
    }
    if let Some(v) = get("HEALTH_EVERY") {
        builder = builder.health_every(parse_num("HEALTH_EVERY", v)? as usize);
    }
    if let Some(v) = get("WATCHDOG_TIMEOUT_MS") {
        let ms = parse_num("WATCHDOG_TIMEOUT_MS", v)?;
        if ms < 0.0 {
            return Err(format!("WATCHDOG_TIMEOUT_MS: must be >= 0, got {v}"));
        }
        if ms > 0.0 {
            builder = builder.watchdog_timeout(std::time::Duration::from_millis(ms as u64));
        }
    }
    if let Some(v) = get("FLIGHT_RECORDER") {
        builder = builder.flight_recorder(parse_bool(v)?);
    }
    if let Some(v) = get("FLIGHT_BUFFER_EVENTS") {
        let events = parse_num("FLIGHT_BUFFER_EVENTS", v)?;
        if events < 1.0 {
            return Err(format!("FLIGHT_BUFFER_EVENTS: must be >= 1, got {v}"));
        }
        builder = builder.flight_buffer_events(events as usize);
    }
    if let Some(v) = get("LTS_MAX_RATE") {
        let rate: usize = v
            .parse()
            .map_err(|_| format!("LTS_MAX_RATE: not a rate cap: {v}"))?;
        specfem_mesh::lts::validate_max_rate(rate)?;
        builder = builder.lts_max_rate(rate);
    }
    if let Some(v) = get("CHECKPOINT_KEEP") {
        let keep = parse_num("CHECKPOINT_KEEP", v)?;
        if keep < 1.0 {
            return Err(format!("CHECKPOINT_KEEP: must be >= 1, got {v}"));
        }
        builder = builder.checkpoint_keep(keep as usize);
    }
    let dt = get("DT")
        .map(|v| parse_num("DT", v))
        .transpose()?
        .unwrap_or(0.0);
    let record = get("RECORD_LENGTH_STEPS")
        .map(|v| parse_num("RECORD_LENGTH_STEPS", v))
        .transpose()?
        .unwrap_or(1.0) as usize;
    builder = builder.configure(|c| {
        if dt > 0.0 {
            c.dt = Some(dt);
        }
        c.record_every = record.max(1);
    });
    builder.build().map_err(|e| e.to_string())
}

#[cfg(test)]
mod tests {
    use super::*;
    use specfem_mesh::MeshMode;

    const EXAMPLE: &str = r#"
# a global run
NCHUNKS      = 6
NEX_XI       = 8
NPROC_XI     = 2     # 24 ranks
MODEL        = prem_iso
ATTENUATION  = .true.
ROTATION     = .false.
NSTEP        = 250
EVENT        = argentina_deep
NSTATIONS    = 4
"#;

    #[test]
    fn parses_the_example_parfile() {
        let sim = simulation_from_parfile(EXAMPLE).unwrap();
        assert_eq!(sim.params.nex_xi, 8);
        assert_eq!(sim.params.num_ranks(), 24);
        assert!(sim.config.attenuation);
        assert!(!sim.config.rotation);
        assert_eq!(sim.config.nsteps, 250);
        assert_eq!(sim.stations.len(), 4);
    }

    #[test]
    fn comments_and_blank_lines_ignored_last_assignment_wins() {
        let text = "NEX_XI = 4\n# NEX_XI = 99\n\nNEX_XI = 8 # final\n";
        let pairs = parse_pairs(text);
        assert_eq!(pairs.len(), 2);
        let sim = simulation_from_parfile(text).unwrap();
        assert_eq!(sim.params.nex_xi, 8);
    }

    #[test]
    fn regional_parfile() {
        let text = "NCHUNKS = 1\nNEX_XI = 8\nREGIONAL_MIN_RADIUS_KM = 5701\nNSTEP = 10\n";
        let sim = simulation_from_parfile(text).unwrap();
        assert!(matches!(sim.params.mode, MeshMode::Regional { .. }));
        assert_eq!(sim.params.num_ranks(), 1);
    }

    #[test]
    fn errors_are_reported() {
        assert!(simulation_from_parfile("NCHUNKS = 3\n").is_err());
        assert!(simulation_from_parfile("MODEL = marsquake\n").is_err());
        assert!(simulation_from_parfile("ATTENUATION = maybe\n").is_err());
        assert!(simulation_from_parfile("NEX_XI = 8\nNPROC_XI = 3\n").is_err());
    }

    #[test]
    fn observability_keys() {
        let text =
            "NEX_XI = 4\nNSTEP = 5\nTRACE = .true.\nTRACE_DIR = out/trace\nMETRICS_EVERY = 3\n";
        let sim = simulation_from_parfile(text).unwrap();
        assert!(sim.config.trace);
        assert_eq!(
            sim.config.trace_dir.as_deref(),
            Some(std::path::Path::new("out/trace"))
        );
        assert_eq!(sim.config.metrics_every, 3);
        // TRACE_DIR alone implies tracing.
        let sim = simulation_from_parfile("NEX_XI = 4\nTRACE_DIR = out\n").unwrap();
        assert!(sim.config.trace);
    }

    #[test]
    fn health_and_watchdog_keys() {
        // Both default off.
        let sim = simulation_from_parfile("NEX_XI = 4\n").unwrap();
        assert_eq!(sim.config.health_every, 0);
        assert_eq!(sim.config.watchdog_timeout, None);
        let text = "NEX_XI = 4\nHEALTH_EVERY = 25\nWATCHDOG_TIMEOUT_MS = 5000\n";
        let sim = simulation_from_parfile(text).unwrap();
        assert_eq!(sim.config.health_every, 25);
        assert_eq!(
            sim.config.watchdog_timeout,
            Some(std::time::Duration::from_millis(5000))
        );
        // Explicit zero keeps the watchdog off.
        let sim = simulation_from_parfile("NEX_XI = 4\nWATCHDOG_TIMEOUT_MS = 0\n").unwrap();
        assert_eq!(sim.config.watchdog_timeout, None);
        // Errors are reported, not swallowed.
        assert!(simulation_from_parfile("NEX_XI = 4\nHEALTH_EVERY = often\n").is_err());
        assert!(simulation_from_parfile("NEX_XI = 4\nWATCHDOG_TIMEOUT_MS = -5\n").is_err());
    }

    #[test]
    fn flight_recorder_keys() {
        // Off by default with the standard ring size.
        let sim = simulation_from_parfile("NEX_XI = 4\n").unwrap();
        assert!(!sim.config.flight_recorder);
        assert_eq!(sim.config.flight_buffer_events, 1024);
        let text = "NEX_XI = 4\nFLIGHT_RECORDER = .true.\nFLIGHT_BUFFER_EVENTS = 256\n";
        let sim = simulation_from_parfile(text).unwrap();
        assert!(sim.config.flight_recorder);
        assert_eq!(sim.config.flight_buffer_events, 256);
        // A zero-capacity journal is a config error, not a silent clamp.
        assert!(simulation_from_parfile("NEX_XI = 4\nFLIGHT_BUFFER_EVENTS = 0\n").is_err());
        assert!(simulation_from_parfile("NEX_XI = 4\nFLIGHT_RECORDER = maybe\n").is_err());
    }

    #[test]
    fn checkpoint_keep_key() {
        // Default is two generations (fallback depth 1).
        let sim = simulation_from_parfile("NEX_XI = 4\n").unwrap();
        assert_eq!(sim.config.checkpoint_keep, 2);
        let sim = simulation_from_parfile("NEX_XI = 4\nCHECKPOINT_KEEP = 5\n").unwrap();
        assert_eq!(sim.config.checkpoint_keep, 5);
        // Zero/negative/garbage are rejected, not clamped silently.
        assert!(simulation_from_parfile("NEX_XI = 4\nCHECKPOINT_KEEP = 0\n").is_err());
        assert!(simulation_from_parfile("NEX_XI = 4\nCHECKPOINT_KEEP = -1\n").is_err());
        assert!(simulation_from_parfile("NEX_XI = 4\nCHECKPOINT_KEEP = lots\n").is_err());
    }

    #[test]
    fn lts_max_rate_key_round_trips_and_rejects() {
        // Off by default: every element at the global minimum dt.
        let sim = simulation_from_parfile("NEX_XI = 4\n").unwrap();
        assert_eq!(sim.config.lts_max_rate, 1);
        let sim = simulation_from_parfile("NEX_XI = 4\nLTS_MAX_RATE = 4\n").unwrap();
        assert_eq!(sim.config.lts_max_rate, 4);
        // The ceiling itself is accepted; last assignment wins.
        let text = format!(
            "NEX_XI = 4\nLTS_MAX_RATE = 2\nLTS_MAX_RATE = {}\n",
            specfem_mesh::lts::MAX_LTS_RATE
        );
        assert_eq!(
            simulation_from_parfile(&text).unwrap().config.lts_max_rate,
            specfem_mesh::lts::MAX_LTS_RATE
        );
        // Zero / non-power-of-two / over-cap / garbage are rejected, not
        // clamped silently.
        for bad in ["0", "3", "64", "-2", "lots"] {
            assert!(
                simulation_from_parfile(&format!("NEX_XI = 4\nLTS_MAX_RATE = {bad}\n")).is_err(),
                "LTS_MAX_RATE = {bad} must be rejected"
            );
        }
    }

    #[test]
    fn campaign_knobs_parse_and_round_trip() {
        let text = "NEX_XI = 8\nCAMPAIGN_WORKERS = 4\nMESH_CACHE_BYTES = 512M\n";
        let knobs = campaign_knobs_from_parfile(text).unwrap();
        assert_eq!(knobs.workers, 4);
        assert_eq!(knobs.mesh_cache_bytes, 512 << 20);
        // Defaults when absent; unrelated keys ignored.
        assert_eq!(
            campaign_knobs_from_parfile("NEX_XI = 8\n").unwrap(),
            CampaignKnobs::default()
        );
        // Round trip: render → parse → identical.
        let exact = CampaignKnobs {
            workers: 3,
            mesh_cache_bytes: 1_234_567,
            ..CampaignKnobs::default()
        };
        assert_eq!(
            campaign_knobs_from_parfile(&exact.to_parfile()).unwrap(),
            exact
        );
        let suffixed = campaign_knobs_from_parfile("MESH_CACHE_BYTES = 2G\n").unwrap();
        assert_eq!(suffixed.mesh_cache_bytes, 2usize << 30);
        assert_eq!(
            campaign_knobs_from_parfile(&suffixed.to_parfile()).unwrap(),
            suffixed
        );
        // Suffix variants and case-insensitivity.
        assert_eq!(
            campaign_knobs_from_parfile("MESH_CACHE_BYTES = 16kb\n")
                .unwrap()
                .mesh_cache_bytes,
            16 << 10
        );
        // Errors are reported, not swallowed.
        assert!(campaign_knobs_from_parfile("CAMPAIGN_WORKERS = many\n").is_err());
        assert!(campaign_knobs_from_parfile("MESH_CACHE_BYTES = 1T\n").is_err());
    }

    #[test]
    fn batch_knobs_parse_and_round_trip() {
        // Off by default: one lane, no window.
        let defaults = campaign_knobs_from_parfile("NEX_XI = 8\n").unwrap();
        assert_eq!(defaults.batch_max_lanes, 1);
        assert_eq!(defaults.batch_window_ms, 0);

        let text = "BATCH_MAX_LANES = 8\nBATCH_WINDOW_MS = 250\n";
        let knobs = campaign_knobs_from_parfile(text).unwrap();
        assert_eq!(knobs.batch_max_lanes, 8);
        assert_eq!(knobs.batch_window_ms, 250);
        // Round trip: render → parse → identical.
        assert_eq!(
            campaign_knobs_from_parfile(&knobs.to_parfile()).unwrap(),
            knobs
        );
        assert_eq!(
            campaign_knobs_from_parfile(&CampaignKnobs::default().to_parfile()).unwrap(),
            CampaignKnobs::default()
        );
        // Bounds are enforced, not clamped silently.
        assert!(campaign_knobs_from_parfile("BATCH_MAX_LANES = 0\n").is_err());
        assert!(campaign_knobs_from_parfile(&format!(
            "BATCH_MAX_LANES = {}\n",
            specfem_kernels::MAX_BATCH_LANES + 1
        ))
        .is_err());
        assert!(campaign_knobs_from_parfile("BATCH_MAX_LANES = lots\n").is_err());
        assert!(campaign_knobs_from_parfile("BATCH_WINDOW_MS = soon\n").is_err());
        // The ceiling itself is accepted.
        assert_eq!(
            campaign_knobs_from_parfile(&format!(
                "BATCH_MAX_LANES = {}\n",
                specfem_kernels::MAX_BATCH_LANES
            ))
            .unwrap()
            .batch_max_lanes,
            specfem_kernels::MAX_BATCH_LANES
        );
    }

    #[test]
    fn serve_knobs_parse_and_round_trip() {
        let text =
            "SERVE_ADDR = 0.0.0.0:8080\nRESULT_CACHE_BYTES = 16M\nREQUEST_DEADLINE_MS = 500\n";
        let knobs = serve_knobs_from_parfile(text).unwrap();
        assert_eq!(knobs.addr, "0.0.0.0:8080");
        assert_eq!(knobs.result_cache_bytes, 16 << 20);
        assert_eq!(knobs.request_deadline_ms, 500);
        // Defaults when absent; unrelated keys ignored.
        assert_eq!(
            serve_knobs_from_parfile("NEX_XI = 8\n").unwrap(),
            ServeKnobs::default()
        );
        // Round trip: render → parse → identical.
        assert_eq!(
            serve_knobs_from_parfile(&knobs.to_parfile()).unwrap(),
            knobs
        );
        // Errors are reported, not swallowed.
        assert!(serve_knobs_from_parfile("RESULT_CACHE_BYTES = big\n").is_err());
        assert!(serve_knobs_from_parfile("REQUEST_DEADLINE_MS = soon\n").is_err());
        // The daemon reads the same batching keys as the campaign, with
        // the same validation, and they round-trip through to_parfile.
        let batched =
            serve_knobs_from_parfile("BATCH_MAX_LANES = 4\nBATCH_WINDOW_MS = 250\n").unwrap();
        assert_eq!(batched.batch_max_lanes, 4);
        assert_eq!(batched.batch_window_ms, 250);
        assert_eq!(
            serve_knobs_from_parfile(&batched.to_parfile()).unwrap(),
            batched
        );
        assert!(serve_knobs_from_parfile("BATCH_MAX_LANES = 0\n").is_err());
        assert!(serve_knobs_from_parfile("BATCH_MAX_LANES = 1000\n").is_err());
    }

    #[test]
    fn overlap_comm_key_round_trips() {
        // Default on; the key can turn it off and back on (last wins).
        assert!(
            simulation_from_parfile("NEX_XI = 4\n")
                .unwrap()
                .config
                .overlap
        );
        let off = simulation_from_parfile("NEX_XI = 4\nOVERLAP_COMM = .false.\n").unwrap();
        assert!(!off.config.overlap);
        let on =
            simulation_from_parfile("NEX_XI = 4\nOVERLAP_COMM = .false.\nOVERLAP_COMM = .true.\n")
                .unwrap();
        assert!(on.config.overlap);
        assert!(simulation_from_parfile("NEX_XI = 4\nOVERLAP_COMM = maybe\n").is_err());
    }

    #[test]
    fn fortran_style_booleans() {
        assert!(parse_bool(".true.").unwrap());
        assert!(!parse_bool(".false.").unwrap());
        assert!(parse_bool("YES").unwrap());
    }
}
