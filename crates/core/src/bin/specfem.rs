//! The merged mesher+solver executable (paper §4.1: "merging the mesher
//! and solver into a single application"): reads a `Par_file`, builds the
//! mesh in memory, runs the solver, writes seismograms in the SPECFEM
//! ASCII convention.
//!
//! Usage: `specfem <Par_file> [output_dir]`
//! With no arguments, runs a small built-in demo configuration.

use specfem_core::parfile::simulation_from_parfile;
use specfem_io::seismograms::{write_station, SeismogramRecord};

const DEMO: &str = r#"
NEX_XI      = 8
NPROC_XI    = 1
MODEL       = prem_iso
ATTENUATION = .false.
NSTEP       = 200
EVENT       = argentina_deep
NSTATIONS   = 6
"#;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let text = match args.get(1) {
        Some(path) => std::fs::read_to_string(path)
            .unwrap_or_else(|e| panic!("cannot read Par_file {path}: {e}")),
        None => {
            eprintln!("no Par_file given — running the built-in demo configuration");
            DEMO.to_string()
        }
    };
    let out_dir = std::path::PathBuf::from(
        args.get(2)
            .cloned()
            .unwrap_or_else(|| "OUTPUT_FILES".into()),
    );

    let sim = simulation_from_parfile(&text).unwrap_or_else(|e| panic!("Par_file error: {e}"));
    eprintln!(
        "mesh: NEX_XI {} × {} ranks; {} steps; {} stations",
        sim.params.nex_xi,
        sim.params.num_ranks(),
        sim.config.nsteps,
        sim.stations.len()
    );

    let result = if sim.params.num_ranks() > 1 {
        sim.run_parallel(specfem_core::NetworkProfile::loopback())
    } else {
        sim.run_serial()
    };

    let wall = result
        .ranks
        .iter()
        .map(|r| r.elapsed_s)
        .fold(0.0f64, f64::max);
    eprintln!(
        "done: {:.2} s wall, {:.2} Gflop/s sustained, comm share {:.1} %",
        wall,
        result.total_flop_rate() / 1e9,
        100.0 * result.mean_comm_fraction()
    );

    for seis in &result.seismograms {
        let rec = SeismogramRecord {
            station: &seis.station,
            dt: seis.dt,
            data: &seis.data,
        };
        let paths = write_station(&out_dir, "RS", &rec).expect("write seismograms");
        eprintln!("  wrote {}", paths[0].parent().unwrap().join("…").display());
        let _ = paths;
    }
    eprintln!("seismograms in {}", out_dir.display());
}
