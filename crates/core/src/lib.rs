//! # specfem-core — global seismic wave propagation in Rust
//!
//! A from-scratch Rust reproduction of **SPECFEM3D_GLOBE** as described in
//! *"High-Frequency Simulations of Global Seismic Wave Propagation Using
//! SPECFEM3D_GLOBE on 62K Processors"* (Carrington et al., SC 2008): a
//! spectral-element solver for 3-D anelastic, rotating, self-gravitating
//! Earth models on the cubed-sphere mesh, with the merged mesher+solver
//! pipeline, multilevel Cuthill-McKee element ordering, manual-SIMD force
//! kernels, and the paper's performance-modeling methodology.
//!
//! This crate is the high-level facade: build a [`Simulation`] with the
//! builder, run it serially or on a simulated-MPI thread world, and read
//! back seismograms and performance statistics.
//!
//! ```no_run
//! use specfem_core::Simulation;
//!
//! let sim = Simulation::builder()
//!     .resolution(8)          // NEX_XI
//!     .processors(1)          // NPROC_XI → 6·NPROC² ranks
//!     .steps(200)
//!     .catalogue_event("argentina_deep")
//!     .stations(8)
//!     .build()
//!     .unwrap();
//! let result = sim.run_serial();
//! println!("{} seismograms, {:.2} Gflop/s sustained",
//!          result.seismograms.len(), result.total_flop_rate() / 1e9);
//! ```

pub mod batch;
pub mod parfile;

pub use specfem_batch as batchlib;
pub use specfem_comm as comm;
pub use specfem_gll as gll;
pub use specfem_io as io;
pub use specfem_kernels as kernels;
pub use specfem_mesh as mesh;
pub use specfem_model as model;
pub use specfem_perf as perf;
pub use specfem_solver as solver;

pub use specfem_comm::NetworkProfile;
pub use specfem_kernels::KernelVariant;
pub use specfem_mesh::stations::{global_network, Station};
pub use specfem_mesh::{ElementOrder, GlobalMesh, MeshMode, MeshParams, Partition};
pub use specfem_model::{builtin_events, CmtSource, Prem, SourceTimeFunction, StfKind};
pub use specfem_obs as obs;
pub use specfem_solver::{RankResult, Seismogram, SolverConfig, SourceSpec};

/// Which Earth model fills the mesh.
#[derive(Debug, Clone)]
pub enum ModelChoice {
    /// Full PREM with transverse isotropy.
    Prem,
    /// Isotropic PREM without the ocean (the common meshing target).
    IsotropicPrem,
    /// PREM with a deterministic 3-D mantle perturbation (the tomographic-
    /// model stand-in).
    Prem3D,
    /// Uniform solid ball (validation runs).
    Homogeneous,
}

impl ModelChoice {
    /// Stable identifier used in mesh fingerprints and artifact names.
    /// Changing a model's physics must change its id — cached meshes are
    /// addressed by it.
    pub fn id(&self) -> &'static str {
        match self {
            ModelChoice::Prem => "prem",
            ModelChoice::IsotropicPrem => "prem_iso",
            ModelChoice::Prem3D => "prem_3d",
            ModelChoice::Homogeneous => "homogeneous",
        }
    }

    /// Instantiate the Earth model.
    fn instantiate(&self) -> Box<dyn specfem_model::EarthModel> {
        match self {
            ModelChoice::Prem => Box::new(Prem::default()),
            ModelChoice::IsotropicPrem => Box::new(Prem::isotropic_no_ocean()),
            ModelChoice::Prem3D => Box::new(specfem_model::Prem3D::default_mantle()),
            ModelChoice::Homogeneous => Box::new(specfem_model::HomogeneousModel::default()),
        }
    }
}

/// Why [`SimulationBuilder::build`] rejected a configuration. Typed (not
/// `String`) so schedulers and retry logic can match on the cause, in the
/// same direction as the typed `CommError`/`SolverError` hierarchy.
#[derive(Debug, Clone, PartialEq)]
pub enum BuildError {
    /// `NEX_XI` below the minimum meshable resolution.
    ResolutionTooLow {
        /// The rejected `NEX_XI`.
        nex: usize,
    },
    /// `NEX_XI` not divisible by `NPROC_XI` (or `NPROC_XI` is zero).
    IndivisibleDecomposition {
        /// `NEX_XI`.
        nex: usize,
        /// `NPROC_XI`.
        nproc: usize,
    },
    /// The requested catalogue event does not exist.
    UnknownEvent {
        /// The unmatched event name.
        name: String,
    },
    /// A regional mesh may not descend into the fluid outer core.
    RegionalBelowCmb {
        /// The rejected inner radius (m).
        r_min_m: f64,
    },
    /// `LTS_MAX_RATE` outside the legal range (a power of two between 1
    /// and [`specfem_mesh::lts::MAX_LTS_RATE`]).
    InvalidLtsRate {
        /// The rejected rate cap.
        rate: usize,
    },
    /// `CHECKPOINT_EVERY` must be a multiple of `LTS_MAX_RATE`: frozen
    /// force contributions are only consistent at full-cycle boundaries,
    /// so checkpoints may only land there.
    LtsMisalignedCheckpoint {
        /// The checkpoint cadence.
        checkpoint_every: usize,
        /// The LTS rate cap.
        lts_max_rate: usize,
    },
}

impl std::fmt::Display for BuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BuildError::ResolutionTooLow { nex } => {
                write!(f, "NEX_XI must be at least 2 (got {nex})")
            }
            BuildError::IndivisibleDecomposition { nex, nproc } => {
                write!(f, "NEX_XI ({nex}) must be divisible by NPROC_XI ({nproc})")
            }
            BuildError::UnknownEvent { name } => {
                write!(f, "unknown catalogue event '{name}'")
            }
            BuildError::RegionalBelowCmb { r_min_m } => {
                write!(
                    f,
                    "regional meshes must stay above the fluid outer core (r_min = {r_min_m} m)"
                )
            }
            BuildError::InvalidLtsRate { rate } => {
                write!(
                    f,
                    "LTS_MAX_RATE must be a power of two between 1 and {} (got {rate})",
                    specfem_mesh::lts::MAX_LTS_RATE
                )
            }
            BuildError::LtsMisalignedCheckpoint {
                checkpoint_every,
                lts_max_rate,
            } => {
                write!(
                    f,
                    "CHECKPOINT_EVERY ({checkpoint_every}) must be a multiple of \
                     LTS_MAX_RATE ({lts_max_rate}) — checkpoints may only land on \
                     full LTS cycles"
                )
            }
        }
    }
}

impl std::error::Error for BuildError {}

/// A configured simulation: mesh parameters + solver configuration +
/// station network.
#[derive(Debug, Clone)]
pub struct Simulation {
    /// Mesh parameters.
    pub params: MeshParams,
    /// Earth model.
    pub model: ModelChoice,
    /// Solver configuration.
    pub config: SolverConfig,
    /// Stations to record at.
    pub stations: Vec<Station>,
}

/// Merged result of a run.
#[derive(Debug, Clone)]
pub struct SimulationResult {
    /// Seismograms from all ranks, station-ordered.
    pub seismograms: Vec<Seismogram>,
    /// Per-rank results (timings, comm stats, flops).
    pub ranks: Vec<RankResult>,
    /// Time step used (s).
    pub dt: f64,
    /// Spans and metrics recorded while *meshing* on the driver thread
    /// (`Some` only when `config.trace` is set). Solver-phase profiles
    /// live on the individual [`RankResult`]s.
    pub mesher_profile: Option<obs::RankProfile>,
    /// Straggler-watchdog telemetry (skew gauges, per-rank last steps,
    /// stall flags) — `Some` only on distributed runs with
    /// `config.watchdog_timeout` set.
    pub watchdog: Option<comm::WatchdogReport>,
}

impl SimulationResult {
    /// Total flops over all ranks.
    pub fn total_flops(&self) -> u64 {
        self.ranks.iter().map(|r| r.flops).sum()
    }

    /// Aggregate sustained flop rate (total flops / max wall time) — the
    /// PSiNSlight-style number the paper reports as "sustained Tflops".
    pub fn total_flop_rate(&self) -> f64 {
        let wall = self
            .ranks
            .iter()
            .map(|r| r.elapsed_s)
            .fold(0.0f64, f64::max);
        self.total_flops() as f64 / wall.max(1e-12)
    }

    /// Mean fraction of main-loop time spent in communication — the IPM
    /// measurement of paper §5 (1.9–4.2 % on Franklin).
    pub fn mean_comm_fraction(&self) -> f64 {
        if self.ranks.is_empty() {
            return 0.0;
        }
        self.ranks.iter().map(|r| r.comm_fraction()).sum::<f64>() / self.ranks.len() as f64
    }

    /// Total communication seconds over all cores (the Figure 6 quantity).
    pub fn total_comm_seconds(&self) -> f64 {
        self.ranks.iter().map(|r| r.comm.wall_time_s).sum()
    }

    /// Total core-seconds (the Figure 7 quantity).
    pub fn total_core_seconds(&self) -> f64 {
        self.ranks.iter().map(|r| r.elapsed_s).sum()
    }

    /// Build the IPM-style cross-rank report (paper §5) from this run's
    /// per-rank communication statistics and span traces. Works on
    /// untraced runs too — the phase table is simply empty.
    pub fn ipm_report(&self) -> obs::IpmReport {
        let inputs: Vec<obs::IpmRankInput> = self
            .ranks
            .iter()
            .map(|r| obs::IpmRankInput {
                rank: r.rank,
                elapsed_s: r.elapsed_s,
                comm_wall_s: r.comm.wall_time_s,
                modeled_comm_s: r.comm.modeled_time_s,
                bytes_sent: r.comm.bytes_sent,
                bytes_received: r.comm.bytes_received,
                messages_sent: r.comm.messages_sent,
                collectives: r.comm.collectives,
                per_tag: r.comm.per_tag.clone(),
                size_hist: r.comm.size_hist.clone(),
                phase_seconds: r
                    .profile
                    .as_ref()
                    .map(|p| p.trace.phase_seconds())
                    .unwrap_or_default(),
            })
            .collect();
        obs::IpmReport::build(&inputs)
    }

    /// Merge every recorded trace (solver ranks + the mesher pseudo-rank)
    /// into one Chrome/Perfetto `trace_event` JSON document. `None` when
    /// the run was untraced.
    pub fn perfetto_json(&self) -> Option<String> {
        let mut traces: Vec<obs::RankTrace> = self
            .ranks
            .iter()
            .filter_map(|r| r.profile.as_ref().map(|p| p.trace.clone()))
            .collect();
        if let Some(m) = &self.mesher_profile {
            traces.push(m.trace.clone());
        }
        if traces.is_empty() {
            return None;
        }
        Some(obs::perfetto_json(&traces))
    }

    /// Write the run's observability artifacts into `dir` (created if
    /// missing): `ipm_report.txt`, `ipm_report.json`, and — when traces
    /// were recorded — `trace.perfetto.json`.
    pub fn write_observability(&self, dir: &std::path::Path) -> std::io::Result<()> {
        std::fs::create_dir_all(dir)?;
        let report = self.ipm_report();
        std::fs::write(dir.join("ipm_report.txt"), report.render_text())?;
        std::fs::write(dir.join("ipm_report.json"), report.to_json())?;
        if let Some(json) = self.perfetto_json() {
            std::fs::write(dir.join("trace.perfetto.json"), json)?;
        }
        Ok(())
    }

    /// Honor `config.trace_dir`: write artifacts there, warning (not
    /// failing) on I/O errors — observability must never sink a finished
    /// simulation.
    fn autowrite_observability(&self, config: &SolverConfig) {
        if let Some(dir) = &config.trace_dir {
            if let Err(e) = self.write_observability(dir) {
                eprintln!(
                    "warning: could not write observability artifacts to {}: {e}",
                    dir.display()
                );
            }
        }
    }
}

impl Simulation {
    /// Start building a simulation.
    pub fn builder() -> SimulationBuilder {
        SimulationBuilder::default()
    }

    /// The content-addressed identity of the mesh this simulation would
    /// build: model id plus every mesh-affecting parameter. Simulations
    /// with equal keys can share one built [`GlobalMesh`] — the campaign
    /// runtime's cache is addressed by this.
    pub fn mesh_key(&self) -> mesh::MeshKey {
        mesh::MeshKey::new(&self.params, self.model.id())
    }

    /// Estimated resident bytes of the mesh this simulation would build
    /// (without building it) — the cache's admission-control input.
    pub fn estimated_mesh_bytes(&self) -> usize {
        mesh::estimated_mesh_bytes(&self.params, self.model.instantiate().as_ref())
    }

    /// The content address of this simulation's *answer*: a fingerprint
    /// over everything that determines the output seismograms — the mesh
    /// geometry fingerprint (model id + every geometry knob, decomposition
    /// masked, because the bits are decomposition-independent), the
    /// source, the station set, and the answer-affecting solver knobs.
    ///
    /// Pure ops knobs are deliberately **excluded** — checkpoint cadence,
    /// receive/watchdog deadlines, fault plans, tracing — so a request
    /// served under a different deadline or with telemetry armed still
    /// hits the same cached result. The serve daemon keys its result
    /// cache (`specfem_io::ResultCache`) with this.
    pub fn result_key(&self) -> io::ResultKey {
        let mut h = ResultFnv::new();
        h.bytes(b"specfem-result-v1");
        h.u64(self.mesh_key().geometry_fingerprint());
        // Station set, order included (results are station-ordered).
        h.u64(self.stations.len() as u64);
        for s in &self.stations {
            h.u64(s.name.len() as u64);
            h.bytes(s.name.as_bytes());
            h.f64(s.lat_deg);
            h.f64(s.lon_deg);
        }
        let c = &self.config;
        h.u8(c.exact_station_location as u8);
        h.u8(match c.variant {
            KernelVariant::Reference => 0,
            KernelVariant::Simd => 1,
            KernelVariant::BlasStyle => 2,
        });
        h.u8(c.attenuation as u8);
        h.u8(c.rotation as u8);
        h.u8(c.gravity as u8);
        h.u8(c.ocean_load as u8);
        h.u8(c.overlap as u8);
        h.u64(c.nsteps as u64);
        match c.dt {
            Some(dt) => {
                h.u8(1);
                h.f64(dt);
            }
            None => {
                h.u8(0);
                h.f64(0.0);
            }
        }
        h.u64(c.record_every as u64);
        h.u64(c.energy_every as u64);
        h.u64(c.snapshot_every as u64);
        hash_source(&mut h, &c.source);
        io::ResultKey(h.finish())
    }

    /// Build the global mesh, recording mesher spans on the driver thread
    /// (as a pseudo-rank numbered one past the solver ranks, so its
    /// Perfetto timeline row never collides with a real rank) when
    /// tracing is on.
    pub fn build_mesh(&self) -> (GlobalMesh, Option<obs::RankProfile>) {
        if self.config.trace {
            obs::init_rank(self.params.num_ranks(), &obs::TraceConfig::default());
        }
        let mesh = GlobalMesh::build(&self.params, self.model.instantiate().as_ref());
        let profile = if self.config.trace {
            obs::finish_rank()
        } else {
            None
        };
        (mesh, profile)
    }

    /// Check that a caller-supplied mesh actually is the mesh this
    /// simulation would build. The mesh cannot prove which Earth model
    /// filled it, so model identity is the caller's responsibility (the
    /// campaign cache guarantees it by addressing meshes with
    /// [`Simulation::mesh_key`]).
    fn check_mesh_compatible(&self, mesh: &GlobalMesh, distributed: bool) {
        let ours = self.mesh_key();
        let theirs = mesh::MeshKey::new(&mesh.params, self.model.id());
        if distributed {
            assert_eq!(
                ours.fingerprint(),
                theirs.fingerprint(),
                "mesh/simulation mismatch: the supplied mesh was built for different \
                 parameters or decomposition (mesh key {} vs simulation key {})",
                theirs.hex(),
                ours.hex(),
            );
        } else {
            // The serial path ignores the decomposition knobs.
            assert_eq!(
                ours.geometry_fingerprint(),
                theirs.geometry_fingerprint(),
                "mesh/simulation mismatch: the supplied mesh has different geometry \
                 (mesh geometry {} vs simulation geometry {})",
                theirs.geometry_hex(),
                ours.geometry_hex(),
            );
        }
    }

    /// Run on a single rank (merged mesher+solver, no MPI).
    pub fn run_serial(&self) -> SimulationResult {
        let (mesh, mesher_profile) = self.build_mesh();
        self.run_serial_inner(&mesh, mesher_profile)
    }

    /// [`Simulation::run_serial`] against a prebuilt (typically cached and
    /// shared) mesh. The mesh must match this simulation's geometry; the
    /// decomposition knobs are ignored on the serial path.
    pub fn run_serial_with_mesh(&self, mesh: &GlobalMesh) -> SimulationResult {
        self.check_mesh_compatible(mesh, false);
        self.run_serial_inner(mesh, None)
    }

    fn run_serial_inner(
        &self,
        mesh: &GlobalMesh,
        mesher_profile: Option<obs::RankProfile>,
    ) -> SimulationResult {
        let result = specfem_solver::run_serial(mesh, &self.config, &self.stations);
        let out = SimulationResult {
            seismograms: result.seismograms.clone(),
            dt: result.dt,
            ranks: vec![result],
            mesher_profile,
            watchdog: None,
        };
        out.autowrite_observability(&self.config);
        out
    }

    /// Run on the full `6 × NPROC_XI²`-rank thread world, charging
    /// communication against `profile`.
    pub fn run_parallel(&self, profile: NetworkProfile) -> SimulationResult {
        let (mesh, mesher_profile) = self.build_mesh();
        self.run_parallel_inner(&mesh, profile, mesher_profile)
    }

    /// [`Simulation::run_parallel`] against a prebuilt mesh. The mesh must
    /// match this simulation's full key, decomposition included.
    pub fn run_parallel_with_mesh(
        &self,
        mesh: &GlobalMesh,
        profile: NetworkProfile,
    ) -> SimulationResult {
        self.check_mesh_compatible(mesh, true);
        self.run_parallel_inner(mesh, profile, None)
    }

    fn run_parallel_inner(
        &self,
        mesh: &GlobalMesh,
        profile: NetworkProfile,
        mesher_profile: Option<obs::RankProfile>,
    ) -> SimulationResult {
        let (per_rank, watchdog) = specfem_solver::try_run_distributed_watched(
            mesh,
            &self.config,
            &self.stations,
            profile,
            solver::FtOptions::default(),
        );
        let ranks: Vec<RankResult> = per_rank
            .into_iter()
            .map(|r| r.unwrap_or_else(|e| panic!("solver rank failed: {e}")))
            .collect();
        let seismograms = specfem_solver::timeloop::merge_seismograms(&ranks);
        let dt = ranks.first().map(|r| r.dt).unwrap_or(0.0);
        let out = SimulationResult {
            seismograms,
            ranks,
            dt,
            mesher_profile,
            watchdog,
        };
        out.autowrite_observability(&self.config);
        out
    }

    /// Fault-tolerant run against a prebuilt mesh with typed errors — the
    /// campaign runtime's entry point. `opts.profile = None` runs the whole
    /// mesh on one in-process rank (the merged serial path, fault plan and
    /// checkpoints honored); `Some(profile)` runs the full thread world.
    /// With `opts.checkpoint_dir` set, ranks checkpoint every
    /// `config.checkpoint_every` steps and `opts.resume` restarts from the
    /// newest complete checkpoint (cold start when none exists).
    pub fn try_run_with_mesh(
        &self,
        mesh: &GlobalMesh,
        opts: RunOptions<'_>,
    ) -> Result<SimulationResult, solver::SolverError> {
        self.check_mesh_compatible(mesh, opts.profile.is_some());
        self.try_run_inner(mesh, opts, None)
    }

    fn try_run_inner(
        &self,
        mesh: &GlobalMesh,
        opts: RunOptions<'_>,
        mesher_profile: Option<obs::RankProfile>,
    ) -> Result<SimulationResult, solver::SolverError> {
        use specfem_mesh::LocalMesh;
        use specfem_solver::checkpoint::{CheckpointSink, CheckpointState};

        let store = match opts.checkpoint_dir {
            Some(dir) => Some(
                specfem_io::CheckpointStore::new(dir).map_err(solver::SolverError::Checkpoint)?,
            ),
            None => None,
        };
        let sink_factory;
        let restore_fn;
        // Journals deposited by each rank thread (success and failure
        // exits both) — the raw material of a crash dossier.
        let journals: std::sync::Mutex<Vec<obs::FlightJournal>> = std::sync::Mutex::new(Vec::new());
        let deposit = |j: obs::FlightJournal| journals.lock().unwrap().push(j);
        let mut ft = solver::FtOptions::default();
        if self.config.flight_recorder {
            ft.flight = Some(&deposit);
        }
        if let Some(store) = &store {
            store.set_keep(self.config.checkpoint_keep);
            if let Some(plan) = &self.config.fault_plan {
                store.set_fault_plan(plan.clone());
            }
            sink_factory = move |rank: usize| -> Box<dyn CheckpointSink> { store.sink(rank) };
            ft.sink_factory = Some(&sink_factory);
            if opts.resume {
                // The store scatters merged global state onto whatever
                // decomposition this run uses — the checkpoint's writer
                // world size does not have to match ours (elastic resume).
                restore_fn =
                    move |rank: usize, local: &LocalMesh| store.restore_latest_for(rank, local);
                ft.restore = Some(
                    &restore_fn
                        as &(dyn Fn(
                            usize,
                            &LocalMesh,
                        )
                            -> Result<Option<CheckpointState>, solver::CheckpointError>
                              + Sync),
                );
            }
        }
        type RunOut = Result<(Vec<RankResult>, Option<comm::WatchdogReport>), solver::SolverError>;
        let run_out: RunOut = match opts.profile {
            None => specfem_solver::try_run_serial(mesh, &self.config, &self.stations, ft)
                .map(|r| (vec![r], None)),
            Some(profile) => {
                let (per_rank, watchdog) = match opts.world {
                    // Elastic world override: a balanced contiguous
                    // partition works for any rank count, not just the
                    // mesher's native 6·NPROC² decomposition.
                    Some(world) => {
                        let partition = Partition::balanced(mesh, world.max(1));
                        specfem_solver::try_run_partitioned(
                            mesh,
                            &self.config,
                            &self.stations,
                            profile,
                            ft,
                            &partition,
                        )
                    }
                    None => specfem_solver::try_run_distributed_watched(
                        mesh,
                        &self.config,
                        &self.stations,
                        profile,
                        ft,
                    ),
                };
                // One incident can surface differently on each rank: the
                // killed rank sees `RankDead`, its peers see
                // `Disconnected`/`Timeout`. Keep the most *specific*
                // error (rank order breaks ties) — that is the one the
                // crash dossier is classified from. The world is already
                // joined, so every surviving rank has deposited its
                // journal by now.
                let mut ranks = Vec::with_capacity(per_rank.len());
                let mut primary: Option<solver::SolverError> = None;
                for r in per_rank {
                    match r {
                        Ok(v) => ranks.push(v),
                        Err(e) => {
                            if primary
                                .as_ref()
                                .is_none_or(|p| error_salience(&e) > error_salience(p))
                            {
                                primary = Some(e);
                            }
                        }
                    }
                }
                match primary {
                    Some(e) => Err(e),
                    None => Ok((ranks, watchdog)),
                }
            }
        };
        let (ranks, watchdog) = match run_out {
            Ok(v) => v,
            Err(e) => {
                // One merged crash dossier per incident — the run's
                // primary typed failure, with every harvested journal.
                if self.config.flight_recorder {
                    let world = match opts.profile {
                        None => 1,
                        Some(_) => opts
                            .world
                            .map(|w| w.max(1))
                            .unwrap_or_else(|| self.params.num_ranks()),
                    };
                    let harvested = std::mem::take(&mut *journals.lock().unwrap());
                    let dest = opts
                        .dossier_dir
                        .or(opts.checkpoint_dir)
                        .or(self.config.trace_dir.as_deref());
                    if let Some(dir) = dest {
                        let incident = classify_incident(&e, world, self.config.trace_id);
                        match specfem_io::write_crash_dossier(dir, &incident, &harvested) {
                            Ok(path) => {
                                obs::global_counter_add("dossier.written", 1);
                                eprintln!("crash dossier written: {}", path.display());
                            }
                            Err(we) => eprintln!("crash dossier write failed: {we}"),
                        }
                    }
                }
                return Err(e);
            }
        };
        let seismograms = specfem_solver::timeloop::merge_seismograms(&ranks);
        let dt = ranks.first().map(|r| r.dt).unwrap_or(0.0);
        let out = SimulationResult {
            seismograms,
            ranks,
            dt,
            mesher_profile,
            watchdog,
        };
        out.autowrite_observability(&self.config);
        Ok(out)
    }

    /// Fault-tolerant parallel run: every rank writes a checkpoint to
    /// `checkpoint_dir` each `config.checkpoint_every` steps, honors
    /// `config.recv_timeout`, and injects `config.fault_plan` when set. A
    /// failed rank surfaces as a typed [`solver::SolverError`] instead of a
    /// process-wide panic.
    pub fn run_parallel_checkpointed(
        &self,
        profile: NetworkProfile,
        checkpoint_dir: &std::path::Path,
    ) -> Result<SimulationResult, solver::SolverError> {
        self.run_fault_tolerant(profile, checkpoint_dir, false)
    }

    /// Resume an interrupted run from the newest *complete* checkpoint in
    /// `checkpoint_dir` (every rank's file present, CRC-valid) and carry it
    /// to `config.nsteps`. The mesh, configuration, and rank count must
    /// match the original run; the resumed run keeps checkpointing and its
    /// seismograms are bit-identical to an uninterrupted run's. With no
    /// checkpoint on disk this is a cold start.
    pub fn resume_from_checkpoint(
        &self,
        profile: NetworkProfile,
        checkpoint_dir: &std::path::Path,
    ) -> Result<SimulationResult, solver::SolverError> {
        self.run_fault_tolerant(profile, checkpoint_dir, true)
    }

    /// [`Simulation::resume_from_checkpoint`] at a *different* world size:
    /// the elastic-recovery entry point. The merged checkpoint container is
    /// rank-count independent, so a run checkpointed at `6 × NPROC_XI²`
    /// ranks can be re-admitted on `world` survivors (the campaign
    /// runtime's shrink-to-survive path) or grown onto a larger world.
    pub fn resume_elastic(
        &self,
        profile: NetworkProfile,
        checkpoint_dir: &std::path::Path,
        world: usize,
    ) -> Result<SimulationResult, solver::SolverError> {
        let (mesh, mesher_profile) = self.build_mesh();
        self.try_run_inner(
            &mesh,
            RunOptions {
                profile: Some(profile),
                checkpoint_dir: Some(checkpoint_dir),
                resume: true,
                world: Some(world),
                dossier_dir: None,
            },
            mesher_profile,
        )
    }

    fn run_fault_tolerant(
        &self,
        profile: NetworkProfile,
        checkpoint_dir: &std::path::Path,
        resume: bool,
    ) -> Result<SimulationResult, solver::SolverError> {
        let (mesh, mesher_profile) = self.build_mesh();
        self.try_run_inner(
            &mesh,
            RunOptions {
                profile: Some(profile),
                checkpoint_dir: Some(checkpoint_dir),
                resume,
                world: None,
                dossier_dir: None,
            },
            mesher_profile,
        )
    }
}

/// How precisely a rank's error pins down the underlying incident —
/// higher wins when one failure fans out across the world as different
/// errors per rank (the killed rank's `RankDead` beats its peers'
/// secondary `Disconnected`/`Timeout` noise).
fn error_salience(e: &solver::SolverError) -> u8 {
    use solver::SolverError as E;
    match e {
        E::Health(_) => 5,
        E::Comm(comm::CommError::RankDead { .. }) => 4,
        E::RankPanicked { .. } => 4,
        E::Comm(comm::CommError::Stalled { .. }) => 3,
        E::Checkpoint(_) => 2,
        E::Comm(_) => 1,
    }
}

/// Map a run's first typed failure onto the crash-dossier incident
/// record: a stable class string plus whichever rank/step coordinates
/// the error carries. The class names are part of the dossier schema
/// (CI validates them), so keep them in sync with `DESIGN.md` §3l.
fn classify_incident(
    e: &solver::SolverError,
    world: usize,
    trace_id: Option<obs::TraceId>,
) -> io::DossierIncident {
    use solver::SolverError as E;
    let (class, rank, step) = match e {
        E::Health(r) => ("health", Some(r.rank as u64), Some(r.step as u64)),
        E::Comm(comm::CommError::Stalled { rank, .. }) => ("stall", Some(*rank as u64), None),
        E::Comm(comm::CommError::RankDead { rank, step }) => {
            ("rank_dead", Some(*rank as u64), Some(*step as u64))
        }
        E::RankPanicked { rank, .. } => ("rank_dead", Some(*rank as u64), None),
        E::Checkpoint(_) => ("artifact", None, None),
        E::Comm(_) => ("comm", None, None),
    };
    io::DossierIncident {
        class: class.to_string(),
        detail: e.to_string(),
        rank,
        step,
        trace_id: trace_id.map(|t| t.0),
        world: world as u64,
    }
}

/// FNV-1a for [`Simulation::result_key`]. Same constants as the mesh
/// fingerprint hasher; kept separate because the result key hashes a
/// different universe (sources, stations, solver knobs) under its own
/// version salt.
struct ResultFnv(u64);

impl ResultFnv {
    fn new() -> Self {
        Self(0xcbf2_9ce4_8422_2325)
    }
    fn bytes(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= b as u64;
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
    fn u8(&mut self, v: u8) {
        self.bytes(&[v]);
    }
    fn u64(&mut self, v: u64) {
        self.bytes(&v.to_le_bytes());
    }
    fn f64(&mut self, v: f64) {
        self.u64(v.to_bits());
    }
    fn f32(&mut self, v: f32) {
        self.bytes(&v.to_bits().to_le_bytes());
    }
    fn finish(&self) -> u64 {
        self.0
    }
}

fn hash_stf(h: &mut ResultFnv, stf: &SourceTimeFunction) {
    h.u8(match stf.kind {
        StfKind::Gaussian => 0,
        StfKind::Ricker => 1,
        StfKind::SmoothedHeaviside => 2,
    });
    h.f64(stf.half_duration);
    h.f64(stf.t_shift);
}

fn hash_source(h: &mut ResultFnv, source: &SourceSpec) {
    match source {
        SourceSpec::None => h.u8(0),
        SourceSpec::Cmt { event, stf } => {
            h.u8(1);
            h.u64(event.name.len() as u64);
            h.bytes(event.name.as_bytes());
            h.f64(event.lat_deg);
            h.f64(event.lon_deg);
            h.f64(event.depth_km);
            let t = &event.tensor;
            for m in [t.m_rr, t.m_tt, t.m_pp, t.m_rt, t.m_rp, t.m_tp] {
                h.f64(m);
            }
            h.f64(event.half_duration_s);
            hash_stf(h, stf);
        }
        SourceSpec::PointForce {
            position,
            force,
            stf,
        } => {
            h.u8(2);
            for v in position.iter().chain(force.iter()) {
                h.f64(*v);
            }
            hash_stf(h, stf);
        }
        SourceSpec::Trace {
            position,
            trace,
            trace_dt,
        } => {
            h.u8(3);
            for v in position {
                h.f64(*v);
            }
            h.f64(*trace_dt);
            h.u64(trace.len() as u64);
            for sample in trace {
                for &c in sample {
                    h.f32(c);
                }
            }
        }
    }
}

/// Options for [`Simulation::try_run_with_mesh`].
#[derive(Debug, Clone, Default)]
pub struct RunOptions<'a> {
    /// Network model for a distributed thread-world run; `None` runs the
    /// whole mesh on one in-process rank (the merged serial path).
    pub profile: Option<NetworkProfile>,
    /// Directory for checkpoint files; `None` disables checkpointing.
    pub checkpoint_dir: Option<&'a std::path::Path>,
    /// Restore from the newest complete checkpoint in `checkpoint_dir`
    /// before running (a cold start when the directory is empty).
    pub resume: bool,
    /// Override the distributed world size (elastic resume): partition the
    /// mesh into this many balanced contiguous slices instead of the native
    /// `6 × NPROC_XI²` decomposition. Checkpoints are rank-count
    /// independent, so a run checkpointed at one world size can resume at
    /// another. Ignored on the serial path (`profile = None`); clamped to
    /// at least 1.
    pub world: Option<usize>,
    /// Where a crash dossier lands when the run fails with
    /// `config.flight_recorder` armed. Falls back to `checkpoint_dir`,
    /// then `config.trace_dir`; with none of the three set, harvested
    /// journals are discarded on failure.
    pub dossier_dir: Option<&'a std::path::Path>,
}

/// Builder for [`Simulation`].
#[derive(Debug, Clone)]
pub struct SimulationBuilder {
    nex: usize,
    nproc: usize,
    mode: MeshMode,
    model: ModelChoice,
    config: SolverConfig,
    stations: Vec<Station>,
    event: Option<String>,
}

impl Default for SimulationBuilder {
    fn default() -> Self {
        Self {
            nex: 8,
            nproc: 1,
            mode: MeshMode::Global,
            model: ModelChoice::IsotropicPrem,
            config: SolverConfig::default(),
            stations: Vec::new(),
            event: None,
        }
    }
}

impl SimulationBuilder {
    /// Mesh resolution `NEX_XI` (elements per chunk side).
    pub fn resolution(mut self, nex: usize) -> Self {
        self.nex = nex;
        self
    }

    /// `NPROC_XI` (slices per chunk side; 6·NPROC² ranks total).
    pub fn processors(mut self, nproc: usize) -> Self {
        self.nproc = nproc;
        self
    }

    /// Earth model.
    pub fn model(mut self, model: ModelChoice) -> Self {
        self.model = model;
        self
    }

    /// Regional single-chunk simulation from `r_min` (m) to the surface,
    /// with Stacey absorbing boundaries on the artificial faces.
    pub fn regional(mut self, r_min: f64) -> Self {
        self.mode = MeshMode::Regional { r_min };
        self
    }

    /// Number of time steps.
    pub fn steps(mut self, nsteps: usize) -> Self {
        self.config.nsteps = nsteps;
        self
    }

    /// Enable attenuation (anelastic run).
    pub fn attenuation(mut self, on: bool) -> Self {
        self.config.attenuation = on;
        self
    }

    /// Enable rotation (Coriolis).
    pub fn rotation(mut self, on: bool) -> Self {
        self.config.rotation = on;
        self
    }

    /// Enable Cowling-approximation self-gravitation.
    pub fn gravity(mut self, on: bool) -> Self {
        self.config.gravity = on;
        self
    }

    /// Enable the equivalent ocean load on the free surface.
    pub fn ocean_load(mut self, on: bool) -> Self {
        self.config.ocean_load = on;
        self
    }

    /// Kernel variant (§4.3 ablation).
    pub fn kernel(mut self, variant: KernelVariant) -> Self {
        self.config.variant = variant;
        self
    }

    /// Overlap halo communication with inner-element computation
    /// (`Par_file` key `OVERLAP_COMM`). On by default; the blocking path is
    /// the bit-identical oracle for the differential harness.
    pub fn overlap(mut self, on: bool) -> Self {
        self.config.overlap = on;
        self
    }

    /// Use a built-in catalogue event by name.
    pub fn catalogue_event(mut self, name: &str) -> Self {
        self.event = Some(name.to_string());
        self
    }

    /// Explicit source.
    pub fn source(mut self, source: SourceSpec) -> Self {
        self.config.source = source;
        self.event = None;
        self
    }

    /// Record at `n` worldwide stations (Fibonacci network).
    pub fn stations(mut self, n: usize) -> Self {
        self.stations = global_network(n);
        self
    }

    /// Record at explicit stations.
    pub fn station_list(mut self, stations: Vec<Station>) -> Self {
        self.stations = stations;
        self
    }

    /// Energy diagnostics cadence (0 = off).
    pub fn energy_every(mut self, every: usize) -> Self {
        self.config.energy_every = every;
        self
    }

    /// Record span traces and metrics on every rank (paper §5
    /// instrumentation). Off by default; disabled runs pay one relaxed
    /// atomic load per would-be span.
    pub fn trace(mut self, on: bool) -> Self {
        self.config.trace = on;
        self
    }

    /// Enable tracing *and* write the artifacts (Perfetto trace, IPM
    /// report) into `dir` when the run finishes.
    pub fn trace_dir(mut self, dir: impl Into<std::path::PathBuf>) -> Self {
        self.config.trace = true;
        self.config.trace_dir = Some(dir.into());
        self
    }

    /// Step-timing sample cadence while tracing (0 = no step sampling).
    pub fn metrics_every(mut self, every: usize) -> Self {
        self.config.metrics_every = every;
        self
    }

    /// Numerical-health sampling cadence (`Par_file` key `HEALTH_EVERY`;
    /// 0 = off, the default): every `every` steps each rank scans its wave
    /// fields for NaN/Inf and sustained exponential growth and aborts the
    /// run with a structured [`obs::HealthReport`] on a trip. Disabled, the
    /// fields are never read, so output is bit-identical to a monitor-free
    /// build.
    pub fn health_every(mut self, every: usize) -> Self {
        self.config.health_every = every;
        self
    }

    /// Checkpoint generations retained on disk (`Par_file` key
    /// `CHECKPOINT_KEEP`, default 2, clamped to at least 1). Older merged
    /// containers are pruned after each successful write; keeping more than
    /// one generation is what lets resume fall back past a corrupt latest
    /// artifact.
    pub fn checkpoint_keep(mut self, keep: usize) -> Self {
        self.config.checkpoint_keep = keep.max(1);
        self
    }

    /// Clustered local-time-stepping rate cap (`Par_file` key
    /// `LTS_MAX_RATE`, default 1 = off): elements whose Courant-permitted
    /// `dt` allows it refresh their force contributions only every
    /// `2^k ≤ cap` fine steps. Validated at [`SimulationBuilder::build`]:
    /// the cap must be a power of two no larger than
    /// [`specfem_mesh::lts::MAX_LTS_RATE`], and any checkpoint cadence
    /// must be a multiple of it (checkpoints land on full cycles only).
    pub fn lts_max_rate(mut self, rate: usize) -> Self {
        self.config.lts_max_rate = rate;
        self
    }

    /// Arm the straggler watchdog on distributed runs (`Par_file` key
    /// `WATCHDOG_TIMEOUT_MS`; off by default): a monitor thread flags any
    /// rank whose step heartbeat ages past `timeout`, publishes skew
    /// gauges, and escalates a genuine stall to
    /// [`comm::CommError::Stalled`] instead of letting the world hang.
    pub fn watchdog_timeout(mut self, timeout: std::time::Duration) -> Self {
        self.config.watchdog_timeout = Some(timeout);
        self
    }

    /// Arm the per-rank flight recorder (`Par_file` key `FLIGHT_RECORDER`;
    /// off by default): each rank keeps a fixed-size ring journal of
    /// recent span/comm/health/checkpoint events, and a failed run writes
    /// the surviving ranks' journals into one merged SFCN crash dossier
    /// (see [`RunOptions::dossier_dir`]). Purely observational — armed or
    /// not, seismograms and checkpoints are bit-identical
    /// (`tests/flight_recorder.rs`).
    pub fn flight_recorder(mut self, on: bool) -> Self {
        self.config.flight_recorder = on;
        self
    }

    /// Per-rank flight-journal capacity in events (`Par_file` key
    /// `FLIGHT_BUFFER_EVENTS`, default 1024, clamped to at least 16 when
    /// armed).
    pub fn flight_buffer_events(mut self, events: usize) -> Self {
        self.config.flight_buffer_events = events;
        self
    }

    /// Full solver-config access for options without a dedicated method.
    pub fn configure(mut self, f: impl FnOnce(&mut SolverConfig)) -> Self {
        f(&mut self.config);
        self
    }

    /// Validate and build. Rejections are typed ([`BuildError`]) so
    /// schedulers and retry logic can match on the cause.
    pub fn build(mut self) -> Result<Simulation, BuildError> {
        if self.nex < 2 {
            return Err(BuildError::ResolutionTooLow { nex: self.nex });
        }
        if self.nproc == 0 || !self.nex.is_multiple_of(self.nproc) {
            return Err(BuildError::IndivisibleDecomposition {
                nex: self.nex,
                nproc: self.nproc,
            });
        }
        if specfem_mesh::lts::validate_max_rate(self.config.lts_max_rate).is_err() {
            return Err(BuildError::InvalidLtsRate {
                rate: self.config.lts_max_rate,
            });
        }
        if self.config.checkpoint_every > 0
            && !self
                .config
                .checkpoint_every
                .is_multiple_of(self.config.lts_max_rate)
        {
            return Err(BuildError::LtsMisalignedCheckpoint {
                checkpoint_every: self.config.checkpoint_every,
                lts_max_rate: self.config.lts_max_rate,
            });
        }
        if let Some(name) = &self.event {
            let event = builtin_events()
                .into_iter()
                .find(|e| e.name == *name)
                .ok_or_else(|| BuildError::UnknownEvent { name: name.clone() })?;
            let period = specfem_mesh::nominal_shortest_period_s(self.nex);
            let stf =
                SourceTimeFunction::new(StfKind::Gaussian, event.half_duration_s.max(period / 4.0));
            self.config.source = SourceSpec::Cmt { event, stf };
        }
        let mut params = MeshParams::new(self.nex, self.nproc);
        if let MeshMode::Regional { r_min } = self.mode {
            if r_min < specfem_model::CMB_RADIUS_M {
                return Err(BuildError::RegionalBelowCmb { r_min_m: r_min });
            }
            params.mode = self.mode;
        }
        Ok(Simulation {
            params,
            model: self.model,
            config: self.config,
            stations: self.stations,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_validates_inputs() {
        assert!(Simulation::builder().resolution(1).build().is_err());
        assert!(Simulation::builder()
            .resolution(10)
            .processors(4)
            .build()
            .is_err());
        assert!(Simulation::builder()
            .catalogue_event("no_such_event")
            .build()
            .is_err());
        let sim = Simulation::builder()
            .resolution(8)
            .processors(2)
            .catalogue_event("argentina_deep")
            .stations(5)
            .build()
            .unwrap();
        assert_eq!(sim.params.num_ranks(), 24);
        assert_eq!(sim.stations.len(), 5);
        assert!(matches!(sim.config.source, SourceSpec::Cmt { .. }));
    }

    #[test]
    fn builder_validates_lts_rate_and_checkpoint_alignment() {
        // Non-power-of-two cap: a typed rejection, not a clamp.
        assert!(matches!(
            Simulation::builder().resolution(4).lts_max_rate(3).build(),
            Err(BuildError::InvalidLtsRate { rate: 3 })
        ));
        assert!(matches!(
            Simulation::builder().resolution(4).lts_max_rate(0).build(),
            Err(BuildError::InvalidLtsRate { rate: 0 })
        ));
        // Checkpoint cadence must land on full LTS cycles.
        let misaligned = Simulation::builder()
            .resolution(4)
            .lts_max_rate(4)
            .configure(|c| c.checkpoint_every = 6)
            .build();
        assert!(matches!(
            misaligned,
            Err(BuildError::LtsMisalignedCheckpoint {
                checkpoint_every: 6,
                lts_max_rate: 4,
            })
        ));
        let aligned = Simulation::builder()
            .resolution(4)
            .lts_max_rate(4)
            .configure(|c| c.checkpoint_every = 8)
            .build()
            .unwrap();
        assert_eq!(aligned.config.lts_max_rate, 4);
        assert_eq!(aligned.config.checkpoint_every, 8);
    }

    #[test]
    fn tiny_serial_simulation_end_to_end() {
        let sim = Simulation::builder()
            .resolution(4)
            .steps(10)
            .stations(2)
            .build()
            .unwrap();
        let result = sim.run_serial();
        assert_eq!(result.seismograms.len(), 2);
        assert_eq!(result.ranks.len(), 1);
        assert!(result.total_flops() > 0);
        assert!(result.dt > 0.0);
    }

    #[test]
    fn result_aggregations() {
        let sim = Simulation::builder()
            .resolution(4)
            .steps(5)
            .build()
            .unwrap();
        let r = sim.run_serial();
        assert!(r.total_flop_rate() > 0.0);
        assert!(r.total_core_seconds() > 0.0);
        assert!(r.mean_comm_fraction() >= 0.0);
    }

    fn keyed_sim() -> SimulationBuilder {
        Simulation::builder()
            .resolution(8)
            .steps(20)
            .catalogue_event("argentina_deep")
            .stations(3)
    }

    #[test]
    fn result_key_is_stable_and_answer_sensitive() {
        let base = keyed_sim().build().unwrap().result_key();
        // Deterministic: rebuilding the same simulation re-derives it.
        assert_eq!(base, keyed_sim().build().unwrap().result_key());

        // Anything that changes the seismograms changes the key.
        let variants = [
            keyed_sim().resolution(16).build().unwrap(),
            keyed_sim().steps(21).build().unwrap(),
            keyed_sim().stations(4).build().unwrap(),
            keyed_sim()
                .catalogue_event("sumatra_thrust")
                .build()
                .unwrap(),
            keyed_sim().model(ModelChoice::Prem).build().unwrap(),
            keyed_sim().kernel(KernelVariant::Simd).build().unwrap(),
            keyed_sim().attenuation(true).build().unwrap(),
            keyed_sim()
                .configure(|c| c.record_every = 2)
                .build()
                .unwrap(),
        ];
        let mut keys: Vec<u64> = variants.iter().map(|s| s.result_key().0).collect();
        keys.push(base.0);
        keys.sort_unstable();
        keys.dedup();
        assert_eq!(keys.len(), variants.len() + 1, "result keys collided");
    }

    #[test]
    fn result_key_ignores_ops_knobs() {
        let base = keyed_sim().build().unwrap().result_key();
        // Deadlines, checkpoint cadence, and telemetry change how a run is
        // supervised, not what it computes — a request with a different
        // deadline must still hit the cache.
        let ops = keyed_sim()
            .watchdog_timeout(std::time::Duration::from_millis(123))
            .flight_recorder(true)
            .flight_buffer_events(64)
            .configure(|c| {
                c.checkpoint_every = 5;
                c.trace = true;
                c.metrics_every = 1;
                c.health_every = 2;
                c.trace_id = Some(obs::TraceId(0xdead_beef));
            })
            .build()
            .unwrap();
        assert_eq!(base, ops.result_key());
        // Decomposition doesn't change the answer either.
        let wide = keyed_sim().processors(2).build().unwrap();
        assert_eq!(base, wide.result_key());
    }
}
