//! # specfem-core — global seismic wave propagation in Rust
//!
//! A from-scratch Rust reproduction of **SPECFEM3D_GLOBE** as described in
//! *"High-Frequency Simulations of Global Seismic Wave Propagation Using
//! SPECFEM3D_GLOBE on 62K Processors"* (Carrington et al., SC 2008): a
//! spectral-element solver for 3-D anelastic, rotating, self-gravitating
//! Earth models on the cubed-sphere mesh, with the merged mesher+solver
//! pipeline, multilevel Cuthill-McKee element ordering, manual-SIMD force
//! kernels, and the paper's performance-modeling methodology.
//!
//! This crate is the high-level facade: build a [`Simulation`] with the
//! builder, run it serially or on a simulated-MPI thread world, and read
//! back seismograms and performance statistics.
//!
//! ```no_run
//! use specfem_core::Simulation;
//!
//! let sim = Simulation::builder()
//!     .resolution(8)          // NEX_XI
//!     .processors(1)          // NPROC_XI → 6·NPROC² ranks
//!     .steps(200)
//!     .catalogue_event("argentina_deep")
//!     .stations(8)
//!     .build()
//!     .unwrap();
//! let result = sim.run_serial();
//! println!("{} seismograms, {:.2} Gflop/s sustained",
//!          result.seismograms.len(), result.total_flop_rate() / 1e9);
//! ```

pub mod parfile;

pub use specfem_comm as comm;
pub use specfem_gll as gll;
pub use specfem_io as io;
pub use specfem_kernels as kernels;
pub use specfem_mesh as mesh;
pub use specfem_model as model;
pub use specfem_perf as perf;
pub use specfem_solver as solver;

pub use specfem_comm::NetworkProfile;
pub use specfem_kernels::KernelVariant;
pub use specfem_mesh::stations::{global_network, Station};
pub use specfem_mesh::{ElementOrder, GlobalMesh, MeshMode, MeshParams, Partition};
pub use specfem_model::{builtin_events, CmtSource, Prem, SourceTimeFunction, StfKind};
pub use specfem_obs as obs;
pub use specfem_solver::{RankResult, Seismogram, SolverConfig, SourceSpec};

/// Which Earth model fills the mesh.
#[derive(Debug, Clone)]
pub enum ModelChoice {
    /// Full PREM with transverse isotropy.
    Prem,
    /// Isotropic PREM without the ocean (the common meshing target).
    IsotropicPrem,
    /// PREM with a deterministic 3-D mantle perturbation (the tomographic-
    /// model stand-in).
    Prem3D,
    /// Uniform solid ball (validation runs).
    Homogeneous,
}

/// A configured simulation: mesh parameters + solver configuration +
/// station network.
#[derive(Debug, Clone)]
pub struct Simulation {
    /// Mesh parameters.
    pub params: MeshParams,
    /// Earth model.
    pub model: ModelChoice,
    /// Solver configuration.
    pub config: SolverConfig,
    /// Stations to record at.
    pub stations: Vec<Station>,
}

/// Merged result of a run.
#[derive(Debug, Clone)]
pub struct SimulationResult {
    /// Seismograms from all ranks, station-ordered.
    pub seismograms: Vec<Seismogram>,
    /// Per-rank results (timings, comm stats, flops).
    pub ranks: Vec<RankResult>,
    /// Time step used (s).
    pub dt: f64,
    /// Spans and metrics recorded while *meshing* on the driver thread
    /// (`Some` only when `config.trace` is set). Solver-phase profiles
    /// live on the individual [`RankResult`]s.
    pub mesher_profile: Option<obs::RankProfile>,
}

impl SimulationResult {
    /// Total flops over all ranks.
    pub fn total_flops(&self) -> u64 {
        self.ranks.iter().map(|r| r.flops).sum()
    }

    /// Aggregate sustained flop rate (total flops / max wall time) — the
    /// PSiNSlight-style number the paper reports as "sustained Tflops".
    pub fn total_flop_rate(&self) -> f64 {
        let wall = self
            .ranks
            .iter()
            .map(|r| r.elapsed_s)
            .fold(0.0f64, f64::max);
        self.total_flops() as f64 / wall.max(1e-12)
    }

    /// Mean fraction of main-loop time spent in communication — the IPM
    /// measurement of paper §5 (1.9–4.2 % on Franklin).
    pub fn mean_comm_fraction(&self) -> f64 {
        if self.ranks.is_empty() {
            return 0.0;
        }
        self.ranks.iter().map(|r| r.comm_fraction()).sum::<f64>() / self.ranks.len() as f64
    }

    /// Total communication seconds over all cores (the Figure 6 quantity).
    pub fn total_comm_seconds(&self) -> f64 {
        self.ranks.iter().map(|r| r.comm.wall_time_s).sum()
    }

    /// Total core-seconds (the Figure 7 quantity).
    pub fn total_core_seconds(&self) -> f64 {
        self.ranks.iter().map(|r| r.elapsed_s).sum()
    }

    /// Build the IPM-style cross-rank report (paper §5) from this run's
    /// per-rank communication statistics and span traces. Works on
    /// untraced runs too — the phase table is simply empty.
    pub fn ipm_report(&self) -> obs::IpmReport {
        let inputs: Vec<obs::IpmRankInput> = self
            .ranks
            .iter()
            .map(|r| obs::IpmRankInput {
                rank: r.rank,
                elapsed_s: r.elapsed_s,
                comm_wall_s: r.comm.wall_time_s,
                modeled_comm_s: r.comm.modeled_time_s,
                bytes_sent: r.comm.bytes_sent,
                bytes_received: r.comm.bytes_received,
                messages_sent: r.comm.messages_sent,
                collectives: r.comm.collectives,
                per_tag: r.comm.per_tag.clone(),
                size_hist: r.comm.size_hist.clone(),
                phase_seconds: r
                    .profile
                    .as_ref()
                    .map(|p| p.trace.phase_seconds())
                    .unwrap_or_default(),
            })
            .collect();
        obs::IpmReport::build(&inputs)
    }

    /// Merge every recorded trace (solver ranks + the mesher pseudo-rank)
    /// into one Chrome/Perfetto `trace_event` JSON document. `None` when
    /// the run was untraced.
    pub fn perfetto_json(&self) -> Option<String> {
        let mut traces: Vec<obs::RankTrace> = self
            .ranks
            .iter()
            .filter_map(|r| r.profile.as_ref().map(|p| p.trace.clone()))
            .collect();
        if let Some(m) = &self.mesher_profile {
            traces.push(m.trace.clone());
        }
        if traces.is_empty() {
            return None;
        }
        Some(obs::perfetto_json(&traces))
    }

    /// Write the run's observability artifacts into `dir` (created if
    /// missing): `ipm_report.txt`, `ipm_report.json`, and — when traces
    /// were recorded — `trace.perfetto.json`.
    pub fn write_observability(&self, dir: &std::path::Path) -> std::io::Result<()> {
        std::fs::create_dir_all(dir)?;
        let report = self.ipm_report();
        std::fs::write(dir.join("ipm_report.txt"), report.render_text())?;
        std::fs::write(dir.join("ipm_report.json"), report.to_json())?;
        if let Some(json) = self.perfetto_json() {
            std::fs::write(dir.join("trace.perfetto.json"), json)?;
        }
        Ok(())
    }

    /// Honor `config.trace_dir`: write artifacts there, warning (not
    /// failing) on I/O errors — observability must never sink a finished
    /// simulation.
    fn autowrite_observability(&self, config: &SolverConfig) {
        if let Some(dir) = &config.trace_dir {
            if let Err(e) = self.write_observability(dir) {
                eprintln!(
                    "warning: could not write observability artifacts to {}: {e}",
                    dir.display()
                );
            }
        }
    }
}

impl Simulation {
    /// Start building a simulation.
    pub fn builder() -> SimulationBuilder {
        SimulationBuilder::default()
    }

    /// Build the global mesh, recording mesher spans on the driver thread
    /// (as a pseudo-rank numbered one past the solver ranks, so its
    /// Perfetto timeline row never collides with a real rank) when
    /// tracing is on.
    fn build_mesh(&self) -> (GlobalMesh, Option<obs::RankProfile>) {
        if self.config.trace {
            obs::init_rank(self.params.num_ranks(), &obs::TraceConfig::default());
        }
        let mesh = match &self.model {
            ModelChoice::Prem => GlobalMesh::build(&self.params, &Prem::default()),
            ModelChoice::IsotropicPrem => {
                GlobalMesh::build(&self.params, &Prem::isotropic_no_ocean())
            }
            ModelChoice::Prem3D => {
                GlobalMesh::build(&self.params, &specfem_model::Prem3D::default_mantle())
            }
            ModelChoice::Homogeneous => {
                GlobalMesh::build(&self.params, &specfem_model::HomogeneousModel::default())
            }
        };
        let profile = if self.config.trace {
            obs::finish_rank()
        } else {
            None
        };
        (mesh, profile)
    }

    /// Run on a single rank (merged mesher+solver, no MPI).
    pub fn run_serial(&self) -> SimulationResult {
        let (mesh, mesher_profile) = self.build_mesh();
        let result = specfem_solver::run_serial(&mesh, &self.config, &self.stations);
        let out = SimulationResult {
            seismograms: result.seismograms.clone(),
            dt: result.dt,
            ranks: vec![result],
            mesher_profile,
        };
        out.autowrite_observability(&self.config);
        out
    }

    /// Run on the full `6 × NPROC_XI²`-rank thread world, charging
    /// communication against `profile`.
    pub fn run_parallel(&self, profile: NetworkProfile) -> SimulationResult {
        let (mesh, mesher_profile) = self.build_mesh();
        let ranks = specfem_solver::run_distributed(&mesh, &self.config, &self.stations, profile);
        let seismograms = specfem_solver::timeloop::merge_seismograms(&ranks);
        let dt = ranks.first().map(|r| r.dt).unwrap_or(0.0);
        let out = SimulationResult {
            seismograms,
            ranks,
            dt,
            mesher_profile,
        };
        out.autowrite_observability(&self.config);
        out
    }

    /// Fault-tolerant parallel run: every rank writes a checkpoint to
    /// `checkpoint_dir` each `config.checkpoint_every` steps, honors
    /// `config.recv_timeout`, and injects `config.fault_plan` when set. A
    /// failed rank surfaces as a typed [`solver::SolverError`] instead of a
    /// process-wide panic.
    pub fn run_parallel_checkpointed(
        &self,
        profile: NetworkProfile,
        checkpoint_dir: &std::path::Path,
    ) -> Result<SimulationResult, solver::SolverError> {
        self.run_fault_tolerant(profile, checkpoint_dir, false)
    }

    /// Resume an interrupted run from the newest *complete* checkpoint in
    /// `checkpoint_dir` (every rank's file present, CRC-valid) and carry it
    /// to `config.nsteps`. The mesh, configuration, and rank count must
    /// match the original run; the resumed run keeps checkpointing and its
    /// seismograms are bit-identical to an uninterrupted run's. With no
    /// checkpoint on disk this is a cold start.
    pub fn resume_from_checkpoint(
        &self,
        profile: NetworkProfile,
        checkpoint_dir: &std::path::Path,
    ) -> Result<SimulationResult, solver::SolverError> {
        self.run_fault_tolerant(profile, checkpoint_dir, true)
    }

    fn run_fault_tolerant(
        &self,
        profile: NetworkProfile,
        checkpoint_dir: &std::path::Path,
        resume: bool,
    ) -> Result<SimulationResult, solver::SolverError> {
        use specfem_solver::checkpoint::{CheckpointSink, CheckpointState};

        let (mesh, mesher_profile) = self.build_mesh();
        let nranks = self.params.num_ranks();
        let store = specfem_io::CheckpointStore::new(checkpoint_dir)
            .map_err(solver::SolverError::Checkpoint)?;
        let sink_factory = |rank: usize| -> Box<dyn CheckpointSink> { store.sink(rank) };
        let restore_fn = store.restore_latest(nranks);
        let opts = solver::FtOptions {
            sink_factory: Some(&sink_factory),
            restore: if resume {
                Some(
                    &restore_fn
                        as &(dyn Fn(usize) -> Result<Option<CheckpointState>, solver::CheckpointError>
                              + Sync),
                )
            } else {
                None
            },
        };
        let per_rank =
            specfem_solver::try_run_distributed(&mesh, &self.config, &self.stations, profile, opts);
        let mut ranks = Vec::with_capacity(per_rank.len());
        for r in per_rank {
            ranks.push(r?);
        }
        let seismograms = specfem_solver::timeloop::merge_seismograms(&ranks);
        let dt = ranks.first().map(|r| r.dt).unwrap_or(0.0);
        let out = SimulationResult {
            seismograms,
            ranks,
            dt,
            mesher_profile,
        };
        out.autowrite_observability(&self.config);
        Ok(out)
    }
}

/// Builder for [`Simulation`].
#[derive(Debug, Clone)]
pub struct SimulationBuilder {
    nex: usize,
    nproc: usize,
    mode: MeshMode,
    model: ModelChoice,
    config: SolverConfig,
    stations: Vec<Station>,
    event: Option<String>,
}

impl Default for SimulationBuilder {
    fn default() -> Self {
        Self {
            nex: 8,
            nproc: 1,
            mode: MeshMode::Global,
            model: ModelChoice::IsotropicPrem,
            config: SolverConfig::default(),
            stations: Vec::new(),
            event: None,
        }
    }
}

impl SimulationBuilder {
    /// Mesh resolution `NEX_XI` (elements per chunk side).
    pub fn resolution(mut self, nex: usize) -> Self {
        self.nex = nex;
        self
    }

    /// `NPROC_XI` (slices per chunk side; 6·NPROC² ranks total).
    pub fn processors(mut self, nproc: usize) -> Self {
        self.nproc = nproc;
        self
    }

    /// Earth model.
    pub fn model(mut self, model: ModelChoice) -> Self {
        self.model = model;
        self
    }

    /// Regional single-chunk simulation from `r_min` (m) to the surface,
    /// with Stacey absorbing boundaries on the artificial faces.
    pub fn regional(mut self, r_min: f64) -> Self {
        self.mode = MeshMode::Regional { r_min };
        self
    }

    /// Number of time steps.
    pub fn steps(mut self, nsteps: usize) -> Self {
        self.config.nsteps = nsteps;
        self
    }

    /// Enable attenuation (anelastic run).
    pub fn attenuation(mut self, on: bool) -> Self {
        self.config.attenuation = on;
        self
    }

    /// Enable rotation (Coriolis).
    pub fn rotation(mut self, on: bool) -> Self {
        self.config.rotation = on;
        self
    }

    /// Enable Cowling-approximation self-gravitation.
    pub fn gravity(mut self, on: bool) -> Self {
        self.config.gravity = on;
        self
    }

    /// Enable the equivalent ocean load on the free surface.
    pub fn ocean_load(mut self, on: bool) -> Self {
        self.config.ocean_load = on;
        self
    }

    /// Kernel variant (§4.3 ablation).
    pub fn kernel(mut self, variant: KernelVariant) -> Self {
        self.config.variant = variant;
        self
    }

    /// Use a built-in catalogue event by name.
    pub fn catalogue_event(mut self, name: &str) -> Self {
        self.event = Some(name.to_string());
        self
    }

    /// Explicit source.
    pub fn source(mut self, source: SourceSpec) -> Self {
        self.config.source = source;
        self.event = None;
        self
    }

    /// Record at `n` worldwide stations (Fibonacci network).
    pub fn stations(mut self, n: usize) -> Self {
        self.stations = global_network(n);
        self
    }

    /// Record at explicit stations.
    pub fn station_list(mut self, stations: Vec<Station>) -> Self {
        self.stations = stations;
        self
    }

    /// Energy diagnostics cadence (0 = off).
    pub fn energy_every(mut self, every: usize) -> Self {
        self.config.energy_every = every;
        self
    }

    /// Record span traces and metrics on every rank (paper §5
    /// instrumentation). Off by default; disabled runs pay one relaxed
    /// atomic load per would-be span.
    pub fn trace(mut self, on: bool) -> Self {
        self.config.trace = on;
        self
    }

    /// Enable tracing *and* write the artifacts (Perfetto trace, IPM
    /// report) into `dir` when the run finishes.
    pub fn trace_dir(mut self, dir: impl Into<std::path::PathBuf>) -> Self {
        self.config.trace = true;
        self.config.trace_dir = Some(dir.into());
        self
    }

    /// Step-timing sample cadence while tracing (0 = no step sampling).
    pub fn metrics_every(mut self, every: usize) -> Self {
        self.config.metrics_every = every;
        self
    }

    /// Full solver-config access for options without a dedicated method.
    pub fn configure(mut self, f: impl FnOnce(&mut SolverConfig)) -> Self {
        f(&mut self.config);
        self
    }

    /// Validate and build.
    pub fn build(mut self) -> Result<Simulation, String> {
        if self.nex < 2 {
            return Err("NEX_XI must be at least 2".into());
        }
        if self.nproc == 0 || !self.nex.is_multiple_of(self.nproc) {
            return Err(format!(
                "NEX_XI ({}) must be divisible by NPROC_XI ({})",
                self.nex, self.nproc
            ));
        }
        if let Some(name) = &self.event {
            let event = builtin_events()
                .into_iter()
                .find(|e| e.name == *name)
                .ok_or_else(|| format!("unknown catalogue event '{name}'"))?;
            let period = specfem_mesh::nominal_shortest_period_s(self.nex);
            let stf =
                SourceTimeFunction::new(StfKind::Gaussian, event.half_duration_s.max(period / 4.0));
            self.config.source = SourceSpec::Cmt { event, stf };
        }
        let mut params = MeshParams::new(self.nex, self.nproc);
        if let MeshMode::Regional { r_min } = self.mode {
            if r_min < specfem_model::CMB_RADIUS_M {
                return Err("regional meshes must stay above the fluid outer core".into());
            }
            params.mode = self.mode;
        }
        Ok(Simulation {
            params,
            model: self.model,
            config: self.config,
            stations: self.stations,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_validates_inputs() {
        assert!(Simulation::builder().resolution(1).build().is_err());
        assert!(Simulation::builder()
            .resolution(10)
            .processors(4)
            .build()
            .is_err());
        assert!(Simulation::builder()
            .catalogue_event("no_such_event")
            .build()
            .is_err());
        let sim = Simulation::builder()
            .resolution(8)
            .processors(2)
            .catalogue_event("argentina_deep")
            .stations(5)
            .build()
            .unwrap();
        assert_eq!(sim.params.num_ranks(), 24);
        assert_eq!(sim.stations.len(), 5);
        assert!(matches!(sim.config.source, SourceSpec::Cmt { .. }));
    }

    #[test]
    fn tiny_serial_simulation_end_to_end() {
        let sim = Simulation::builder()
            .resolution(4)
            .steps(10)
            .stations(2)
            .build()
            .unwrap();
        let result = sim.run_serial();
        assert_eq!(result.seismograms.len(), 2);
        assert_eq!(result.ranks.len(), 1);
        assert!(result.total_flops() > 0);
        assert!(result.dt > 0.0);
    }

    #[test]
    fn result_aggregations() {
        let sim = Simulation::builder()
            .resolution(4)
            .steps(5)
            .build()
            .unwrap();
        let r = sim.run_serial();
        assert!(r.total_flop_rate() > 0.0);
        assert!(r.total_core_seconds() > 0.0);
        assert!(r.mean_comm_fraction() >= 0.0);
    }
}
