//! The shared single-artifact container format (`"SFCN"`).
//!
//! Both persistent stores — [`super::CheckpointStore`] (`.sfcc`) and
//! [`super::MeshArtifactStore`] (`.sfma`) — file their payloads in the same
//! chunked, schema-versioned container, in the spirit of the DMPlex
//! parallel-mesh checkpoints of Hapla et al.: *one* file per artifact
//! regardless of how many ranks produced it, self-describing enough that a
//! different world size can consume it later.
//!
//! Layout (all integers little-endian):
//!
//! ```text
//! header   magic "SFCN" | container schema u32 | kind (4 bytes) | payload version u32
//! chunks   raw payload bytes, appended back to back
//! footer   directory | dir CRC-32 u32 | dir offset u64 | magic "SFCN"
//! dir      count u32, then per chunk: name len u16 | name | offset u64 | len u64 | CRC-32 u32
//! ```
//!
//! Every chunk carries its own CRC-32 (same IEEE polynomial as
//! `specfem_solver::checkpoint::crc32`), so a bit flip is pinned to a named
//! chunk with expected-vs-actual checksums instead of poisoning the whole
//! file; the directory is checksummed separately so a torn footer is a
//! typed error too. Writers stream chunk bytes straight to the backing
//! `Write` — the container is never buffered whole in memory — and readers
//! seek to one chunk at a time.

use std::fmt;
use std::fs;
use std::io::{BufWriter, Read, Seek, SeekFrom, Write};
use std::path::Path;

/// Container magic: "SFCN" = SpecFem CoNtainer.
pub const CONTAINER_MAGIC: [u8; 4] = *b"SFCN";

/// Version of the container framing itself (header/directory/footer).
/// Payload layouts carry their own version in the header's fourth word.
pub const CONTAINER_SCHEMA_VERSION: u32 = 1;

const HEADER_LEN: u64 = 16;
const FOOTER_LEN: u64 = 16;

/// A typed artifact failure: every variant names the file, and corruption
/// names the chunk with the expected-vs-actual CRC.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ArtifactError {
    /// Underlying filesystem failure.
    Io {
        /// Artifact path.
        file: String,
        /// OS error description.
        detail: String,
    },
    /// Structurally invalid container or chunk payload (truncation, bad
    /// magic, bad tags, missing chunks).
    Format {
        /// Artifact path.
        file: String,
        /// What was malformed.
        detail: String,
    },
    /// Schema or payload version this build does not read.
    Version {
        /// Artifact path.
        file: String,
        /// Version found in the file.
        found: u32,
        /// Version this build supports.
        supported: u32,
    },
    /// A chunk's bytes do not match its stored CRC-32.
    Corrupt {
        /// Artifact path.
        file: String,
        /// The chunk whose checksum failed (`"directory"` for the footer).
        chunk: String,
        /// CRC stored in the directory.
        expected: u32,
        /// CRC computed from the bytes on disk.
        actual: u32,
    },
    /// The artifact is filed under a different content key.
    KeyMismatch {
        /// Artifact path.
        file: String,
        /// Fingerprint stored in the artifact.
        found: u64,
        /// Fingerprint the caller expected.
        expected: u64,
    },
}

impl fmt::Display for ArtifactError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Io { file, detail } => write!(f, "artifact i/o error in {file}: {detail}"),
            Self::Format { file, detail } => write!(f, "artifact format error in {file}: {detail}"),
            Self::Version {
                file,
                found,
                supported,
            } => write!(
                f,
                "unsupported artifact version {found} in {file} (this build reads {supported})"
            ),
            Self::Corrupt {
                file,
                chunk,
                expected,
                actual,
            } => write!(
                f,
                "artifact checksum mismatch in {file} chunk '{chunk}': \
                 expected {expected:#010x}, actual {actual:#010x}"
            ),
            Self::KeyMismatch {
                file,
                found,
                expected,
            } => write!(
                f,
                "artifact key mismatch in {file}: artifact {found:016x}, expected {expected:016x}"
            ),
        }
    }
}

impl std::error::Error for ArtifactError {}

pub(crate) fn io_err(file: &str, context: &str, e: std::io::Error) -> ArtifactError {
    ArtifactError::Io {
        file: file.to_string(),
        detail: format!("{context}: {e}"),
    }
}

/// Incremental CRC-32 (IEEE 802.3, reflected, poly 0xEDB88320) — same
/// polynomial as `specfem_solver::checkpoint::crc32`, usable over streamed
/// chunk writes.
#[derive(Debug, Clone)]
pub struct Crc32(u32);

impl Default for Crc32 {
    fn default() -> Self {
        Self(0xFFFF_FFFF)
    }
}

impl Crc32 {
    /// Fold `data` into the running checksum.
    pub fn update(&mut self, data: &[u8]) {
        let mut crc = self.0;
        for &b in data {
            crc ^= b as u32;
            for _ in 0..8 {
                let mask = (crc & 1).wrapping_neg();
                crc = (crc >> 1) ^ (0xEDB8_8320 & mask);
            }
        }
        self.0 = crc;
    }

    /// The finished checksum.
    pub fn finish(&self) -> u32 {
        !self.0
    }
}

/// One-shot CRC-32 over a byte slice.
pub fn crc32(data: &[u8]) -> u32 {
    let mut c = Crc32::default();
    c.update(data);
    c.finish()
}

// ---- little-endian byte building blocks shared by both payload codecs ----

/// Append a `u8`.
pub fn put_u8(out: &mut Vec<u8>, v: u8) {
    out.push(v);
}

/// Append a little-endian `u32`.
pub fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Append a little-endian `u64`.
pub fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Append a little-endian `f64`.
pub fn put_f64(out: &mut Vec<u8>, v: f64) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Append a length-prefixed `f32` slice.
pub fn put_f32_slice(out: &mut Vec<u8>, v: &[f32]) {
    put_u64(out, v.len() as u64);
    for &x in v {
        out.extend_from_slice(&x.to_le_bytes());
    }
}

/// Append a length-prefixed `u32` slice.
pub fn put_u32_slice(out: &mut Vec<u8>, v: &[u32]) {
    put_u64(out, v.len() as u64);
    for &x in v {
        out.extend_from_slice(&x.to_le_bytes());
    }
}

/// Cursor over one chunk's payload bytes producing typed
/// [`ArtifactError::Format`] errors that name the file and chunk.
pub struct ByteReader<'a> {
    buf: &'a [u8],
    pos: usize,
    file: String,
    chunk: String,
}

impl<'a> ByteReader<'a> {
    /// Read `buf`, attributing errors to `file`/`chunk`.
    pub fn new(buf: &'a [u8], file: impl Into<String>, chunk: impl Into<String>) -> Self {
        Self {
            buf,
            pos: 0,
            file: file.into(),
            chunk: chunk.into(),
        }
    }

    /// A format error at the current position.
    pub fn format_err(&self, detail: impl fmt::Display) -> ArtifactError {
        ArtifactError::Format {
            file: self.file.clone(),
            detail: format!("chunk '{}': {detail}", self.chunk),
        }
    }

    /// Whether every byte has been consumed.
    pub fn finished(&self) -> Result<(), ArtifactError> {
        if self.pos != self.buf.len() {
            return Err(self.format_err(format!(
                "{} trailing bytes after payload",
                self.buf.len() - self.pos
            )));
        }
        Ok(())
    }

    /// Take `n` raw bytes.
    pub fn take(&mut self, n: usize) -> Result<&'a [u8], ArtifactError> {
        if self.pos + n > self.buf.len() {
            return Err(self.format_err(format!(
                "truncated: need {n} bytes at offset {}, have {}",
                self.pos,
                self.buf.len() - self.pos
            )));
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Read a `u8`.
    pub fn u8(&mut self) -> Result<u8, ArtifactError> {
        Ok(self.take(1)?[0])
    }

    /// Read a little-endian `u32`.
    pub fn u32(&mut self) -> Result<u32, ArtifactError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    /// Read a little-endian `u64`.
    pub fn u64(&mut self) -> Result<u64, ArtifactError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    /// Read a little-endian `f64`.
    pub fn f64(&mut self) -> Result<f64, ArtifactError> {
        Ok(f64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    /// Read a length-prefixed `f32` vector.
    pub fn f32_vec(&mut self) -> Result<Vec<f32>, ArtifactError> {
        let n = self.u64()? as usize;
        let raw = self.take(
            n.checked_mul(4)
                .ok_or_else(|| self.format_err("f32 slice length overflows"))?,
        )?;
        Ok(raw
            .chunks_exact(4)
            .map(|c| f32::from_le_bytes(c.try_into().unwrap()))
            .collect())
    }

    /// Read a length-prefixed `u32` vector.
    pub fn u32_vec(&mut self) -> Result<Vec<u32>, ArtifactError> {
        let n = self.u64()? as usize;
        let raw = self.take(
            n.checked_mul(4)
                .ok_or_else(|| self.format_err("u32 slice length overflows"))?,
        )?;
        Ok(raw
            .chunks_exact(4)
            .map(|c| u32::from_le_bytes(c.try_into().unwrap()))
            .collect())
    }
}

#[derive(Debug, Clone)]
struct DirEntry {
    name: String,
    offset: u64,
    len: u64,
    crc: u32,
}

/// Streaming writer: header up front, chunks appended with per-chunk CRCs,
/// directory sealed in [`ContainerWriter::finish`].
pub struct ContainerWriter<W: Write> {
    w: W,
    file: String,
    offset: u64,
    entries: Vec<DirEntry>,
}

impl<W: Write> ContainerWriter<W> {
    /// Start a container of the given `kind` (e.g. `*b"CKPT"`) whose
    /// payload layout is `payload_version`. `file` labels errors only.
    pub fn new(
        mut w: W,
        file: impl Into<String>,
        kind: [u8; 4],
        payload_version: u32,
    ) -> Result<Self, ArtifactError> {
        let file = file.into();
        let mut header = Vec::with_capacity(HEADER_LEN as usize);
        header.extend_from_slice(&CONTAINER_MAGIC);
        put_u32(&mut header, CONTAINER_SCHEMA_VERSION);
        header.extend_from_slice(&kind);
        put_u32(&mut header, payload_version);
        w.write_all(&header)
            .map_err(|e| io_err(&file, "write container header", e))?;
        Ok(Self {
            w,
            file,
            offset: HEADER_LEN,
            entries: Vec::new(),
        })
    }

    /// Append one chunk from a byte slice.
    pub fn chunk(&mut self, name: &str, payload: &[u8]) -> Result<(), ArtifactError> {
        self.w
            .write_all(payload)
            .map_err(|e| io_err(&self.file, &format!("write chunk '{name}'"), e))?;
        self.entries.push(DirEntry {
            name: name.to_string(),
            offset: self.offset,
            len: payload.len() as u64,
            crc: crc32(payload),
        });
        self.offset += payload.len() as u64;
        Ok(())
    }

    /// Append one chunk by streaming `f32`s in bounded batches — the path
    /// the big field arrays take, so a merged checkpoint never buffers a
    /// whole container in memory.
    pub fn chunk_f32s(
        &mut self,
        name: &str,
        values: impl Iterator<Item = f32>,
    ) -> Result<(), ArtifactError> {
        const BATCH: usize = 16 * 1024;
        let mut crc = Crc32::default();
        let mut written = 0u64;
        let mut buf = Vec::with_capacity(BATCH * 4);
        for v in values {
            buf.extend_from_slice(&v.to_le_bytes());
            if buf.len() >= BATCH * 4 {
                crc.update(&buf);
                self.w
                    .write_all(&buf)
                    .map_err(|e| io_err(&self.file, &format!("write chunk '{name}'"), e))?;
                written += buf.len() as u64;
                buf.clear();
            }
        }
        if !buf.is_empty() {
            crc.update(&buf);
            self.w
                .write_all(&buf)
                .map_err(|e| io_err(&self.file, &format!("write chunk '{name}'"), e))?;
            written += buf.len() as u64;
        }
        self.entries.push(DirEntry {
            name: name.to_string(),
            offset: self.offset,
            len: written,
            crc: crc.finish(),
        });
        self.offset += written;
        Ok(())
    }

    /// Seal the directory and footer; returns the backing writer and the
    /// total container size in bytes.
    pub fn finish(mut self) -> Result<(W, u64), ArtifactError> {
        let mut dir = Vec::new();
        put_u32(&mut dir, self.entries.len() as u32);
        for e in &self.entries {
            dir.extend_from_slice(&(e.name.len() as u16).to_le_bytes());
            dir.extend_from_slice(e.name.as_bytes());
            put_u64(&mut dir, e.offset);
            put_u64(&mut dir, e.len);
            put_u32(&mut dir, e.crc);
        }
        let dir_crc = crc32(&dir);
        let dir_offset = self.offset;
        let mut footer = dir;
        put_u32(&mut footer, dir_crc);
        put_u64(&mut footer, dir_offset);
        footer.extend_from_slice(&CONTAINER_MAGIC);
        self.w
            .write_all(&footer)
            .map_err(|e| io_err(&self.file, "write container footer", e))?;
        Ok((self.w, self.offset + footer.len() as u64))
    }
}

/// Write a whole container atomically: bytes stream to `<path>.tmp`, the
/// file is fsynced, then renamed into place (and the directory fsynced,
/// best-effort), so a kill mid-write never leaves a half-written container
/// under the real name.
pub fn write_container_atomic(
    path: &Path,
    kind: [u8; 4],
    payload_version: u32,
    build: impl FnOnce(&mut ContainerWriter<BufWriter<fs::File>>) -> Result<(), ArtifactError>,
) -> Result<u64, ArtifactError> {
    let label = path.display().to_string();
    let tmp = {
        let mut os = path.as_os_str().to_owned();
        os.push(".tmp");
        std::path::PathBuf::from(os)
    };
    let f = fs::File::create(&tmp).map_err(|e| io_err(&label, "create temp", e))?;
    let mut w = ContainerWriter::new(BufWriter::new(f), &label, kind, payload_version)?;
    build(&mut w)?;
    let (buf, bytes) = w.finish()?;
    let f = buf
        .into_inner()
        .map_err(|e| io_err(&label, "flush temp", e.into_error()))?;
    f.sync_all().map_err(|e| io_err(&label, "sync temp", e))?;
    drop(f);
    fs::rename(&tmp, path).map_err(|e| io_err(&label, "rename into place", e))?;
    // Make the rename itself durable (best-effort; not all filesystems
    // support opening a directory for sync).
    if let Some(parent) = path.parent() {
        if let Ok(d) = fs::File::open(parent) {
            let _ = d.sync_all();
        }
    }
    Ok(bytes)
}

/// Reader over any `Read + Seek` source; chunks are fetched one at a time
/// and CRC-validated on every read.
pub struct ContainerReader<R: Read + Seek> {
    r: R,
    file: String,
    kind: [u8; 4],
    payload_version: u32,
    dir: Vec<DirEntry>,
}

impl<R: Read + Seek> fmt::Debug for ContainerReader<R> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ContainerReader")
            .field("file", &self.file)
            .field("kind", &self.kind)
            .field("payload_version", &self.payload_version)
            .field("chunks", &self.dir.len())
            .finish_non_exhaustive()
    }
}

impl ContainerReader<fs::File> {
    /// Open a container file.
    pub fn open(path: &Path) -> Result<Self, ArtifactError> {
        let label = path.display().to_string();
        let f = fs::File::open(path).map_err(|e| io_err(&label, "open", e))?;
        Self::new(f, label)
    }
}

impl<R: Read + Seek> ContainerReader<R> {
    /// Parse the header, footer and directory of `r`.
    pub fn new(mut r: R, file: impl Into<String>) -> Result<Self, ArtifactError> {
        let file = file.into();
        let total = r
            .seek(SeekFrom::End(0))
            .map_err(|e| io_err(&file, "seek end", e))?;
        if total < HEADER_LEN + FOOTER_LEN {
            return Err(ArtifactError::Format {
                file,
                detail: format!("file too short ({total} bytes) to be a container"),
            });
        }
        let mut header = [0u8; HEADER_LEN as usize];
        r.seek(SeekFrom::Start(0))
            .map_err(|e| io_err(&file, "seek header", e))?;
        r.read_exact(&mut header)
            .map_err(|e| io_err(&file, "read header", e))?;
        if header[0..4] != CONTAINER_MAGIC {
            return Err(ArtifactError::Format {
                file,
                detail: format!("bad container magic {:?}", &header[0..4]),
            });
        }
        let schema = u32::from_le_bytes(header[4..8].try_into().unwrap());
        if schema != CONTAINER_SCHEMA_VERSION {
            return Err(ArtifactError::Version {
                file,
                found: schema,
                supported: CONTAINER_SCHEMA_VERSION,
            });
        }
        let kind = header[8..12].try_into().unwrap();
        let payload_version = u32::from_le_bytes(header[12..16].try_into().unwrap());
        let mut footer = [0u8; FOOTER_LEN as usize];
        r.seek(SeekFrom::End(-(FOOTER_LEN as i64)))
            .map_err(|e| io_err(&file, "seek footer", e))?;
        r.read_exact(&mut footer)
            .map_err(|e| io_err(&file, "read footer", e))?;
        if footer[12..16] != CONTAINER_MAGIC {
            return Err(ArtifactError::Format {
                file,
                detail: "bad footer magic (torn or truncated container)".to_string(),
            });
        }
        let dir_crc = u32::from_le_bytes(footer[0..4].try_into().unwrap());
        let dir_offset = u64::from_le_bytes(footer[4..12].try_into().unwrap());
        if dir_offset < HEADER_LEN || dir_offset > total - FOOTER_LEN {
            return Err(ArtifactError::Format {
                file,
                detail: format!("directory offset {dir_offset} out of range"),
            });
        }
        let dir_len = (total - FOOTER_LEN - dir_offset) as usize;
        let mut dir_bytes = vec![0u8; dir_len];
        r.seek(SeekFrom::Start(dir_offset))
            .map_err(|e| io_err(&file, "seek directory", e))?;
        r.read_exact(&mut dir_bytes)
            .map_err(|e| io_err(&file, "read directory", e))?;
        let actual = crc32(&dir_bytes);
        if actual != dir_crc {
            return Err(ArtifactError::Corrupt {
                file,
                chunk: "directory".to_string(),
                expected: dir_crc,
                actual,
            });
        }
        let mut br = ByteReader::new(&dir_bytes, &file, "directory");
        let count = br.u32()? as usize;
        let mut dir = Vec::with_capacity(count);
        for _ in 0..count {
            let name_len = u16::from_le_bytes(br.take(2)?.try_into().unwrap()) as usize;
            let name = String::from_utf8(br.take(name_len)?.to_vec())
                .map_err(|e| br.format_err(format!("bad chunk name: {e}")))?;
            let offset = br.u64()?;
            let len = br.u64()?;
            let crc = br.u32()?;
            if offset < HEADER_LEN || offset + len > dir_offset {
                return Err(br.format_err(format!("chunk '{name}' extent out of range")));
            }
            dir.push(DirEntry {
                name,
                offset,
                len,
                crc,
            });
        }
        br.finished()?;
        Ok(Self {
            r,
            file,
            kind,
            payload_version,
            dir,
        })
    }

    /// The container kind tag (e.g. `*b"CKPT"`).
    pub fn kind(&self) -> [u8; 4] {
        self.kind
    }

    /// The payload layout version from the header.
    pub fn payload_version(&self) -> u32 {
        self.payload_version
    }

    /// The file label errors are attributed to.
    pub fn file(&self) -> &str {
        &self.file
    }

    /// Chunk names in directory order.
    pub fn chunk_names(&self) -> Vec<String> {
        self.dir.iter().map(|e| e.name.clone()).collect()
    }

    /// Byte size of a chunk, if present.
    pub fn chunk_len(&self, name: &str) -> Option<u64> {
        self.dir.iter().find(|e| e.name == name).map(|e| e.len)
    }

    /// Read one chunk, validating its CRC; `Ok(None)` when absent.
    pub fn chunk_opt(&mut self, name: &str) -> Result<Option<Vec<u8>>, ArtifactError> {
        let Some(entry) = self.dir.iter().find(|e| e.name == name).cloned() else {
            return Ok(None);
        };
        self.r
            .seek(SeekFrom::Start(entry.offset))
            .map_err(|e| io_err(&self.file, &format!("seek chunk '{name}'"), e))?;
        let mut payload = vec![0u8; entry.len as usize];
        self.r
            .read_exact(&mut payload)
            .map_err(|e| io_err(&self.file, &format!("read chunk '{name}'"), e))?;
        let actual = crc32(&payload);
        if actual != entry.crc {
            return Err(ArtifactError::Corrupt {
                file: self.file.clone(),
                chunk: name.to_string(),
                expected: entry.crc,
                actual,
            });
        }
        Ok(Some(payload))
    }

    /// Read one required chunk, validating its CRC.
    pub fn chunk(&mut self, name: &str) -> Result<Vec<u8>, ArtifactError> {
        self.chunk_opt(name)?.ok_or_else(|| ArtifactError::Format {
            file: self.file.clone(),
            detail: format!("missing chunk '{name}'"),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    fn build_bytes() -> Vec<u8> {
        let mut w =
            ContainerWriter::new(Cursor::new(Vec::new()), "test.sfcn", *b"TEST", 3).unwrap();
        w.chunk("alpha", b"hello world").unwrap();
        w.chunk_f32s("beta", (0..100_000).map(|i| i as f32))
            .unwrap();
        w.chunk("empty", b"").unwrap();
        let (cur, bytes) = w.finish().unwrap();
        let v = cur.into_inner();
        assert_eq!(v.len() as u64, bytes);
        v
    }

    #[test]
    fn roundtrip_preserves_chunks_and_metadata() {
        let bytes = build_bytes();
        let mut r = ContainerReader::new(Cursor::new(&bytes[..]), "test.sfcn").unwrap();
        assert_eq!(r.kind(), *b"TEST");
        assert_eq!(r.payload_version(), 3);
        assert_eq!(r.chunk_names(), vec!["alpha", "beta", "empty"]);
        assert_eq!(r.chunk("alpha").unwrap(), b"hello world");
        let beta = r.chunk("beta").unwrap();
        assert_eq!(beta.len(), 400_000);
        assert_eq!(
            f32::from_le_bytes(beta[4 * 99_999..].try_into().unwrap()),
            99_999.0
        );
        assert_eq!(r.chunk("empty").unwrap(), b"");
        assert!(r.chunk_opt("gamma").unwrap().is_none());
        assert!(matches!(
            r.chunk("gamma").unwrap_err(),
            ArtifactError::Format { .. }
        ));
    }

    #[test]
    fn bit_flip_names_the_chunk_and_both_crcs() {
        let mut bytes = build_bytes();
        // Flip a bit inside "beta" (well past the 16-byte header + 11-byte
        // "alpha" chunk).
        bytes[1000] ^= 0x04;
        let mut r = ContainerReader::new(Cursor::new(&bytes[..]), "test.sfcn").unwrap();
        assert_eq!(r.chunk("alpha").unwrap(), b"hello world");
        match r.chunk("beta").unwrap_err() {
            ArtifactError::Corrupt {
                file,
                chunk,
                expected,
                actual,
            } => {
                assert_eq!(file, "test.sfcn");
                assert_eq!(chunk, "beta");
                assert_ne!(expected, actual);
            }
            other => panic!("expected Corrupt, got {other:?}"),
        }
        // Display carries the word the fallback machinery greps for.
        let msg = r.chunk("beta").unwrap_err().to_string();
        assert!(msg.contains("checksum"), "{msg}");
    }

    #[test]
    fn truncation_and_torn_header_are_typed_format_errors() {
        let bytes = build_bytes();
        let err = ContainerReader::new(Cursor::new(&bytes[..bytes.len() - 7]), "t").unwrap_err();
        assert!(matches!(err, ArtifactError::Format { .. }), "{err:?}");
        let mut torn = bytes.clone();
        torn[0..4].copy_from_slice(b"XXXX");
        let err = ContainerReader::new(Cursor::new(&torn[..]), "t").unwrap_err();
        assert!(matches!(err, ArtifactError::Format { .. }), "{err:?}");
        let err = ContainerReader::new(Cursor::new(&bytes[..8]), "t").unwrap_err();
        assert!(matches!(err, ArtifactError::Format { .. }), "{err:?}");
    }

    #[test]
    fn directory_corruption_is_detected() {
        let mut bytes = build_bytes();
        // The directory sits between the last chunk and the 16-byte footer.
        let n = bytes.len();
        bytes[n - 20] ^= 0xFF;
        let err = ContainerReader::new(Cursor::new(&bytes[..]), "t").unwrap_err();
        match err {
            ArtifactError::Corrupt { chunk, .. } => assert_eq!(chunk, "directory"),
            other => panic!("expected directory Corrupt, got {other:?}"),
        }
    }

    #[test]
    fn unknown_schema_version_is_rejected() {
        let mut bytes = build_bytes();
        bytes[4] = 99;
        let err = ContainerReader::new(Cursor::new(&bytes[..]), "t").unwrap_err();
        assert!(
            matches!(err, ArtifactError::Version { found: 99, .. }),
            "{err:?}"
        );
    }

    #[test]
    fn incremental_crc_matches_known_vector() {
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        let mut c = Crc32::default();
        c.update(b"1234");
        c.update(b"56789");
        assert_eq!(c.finish(), 0xCBF4_3926);
    }

    #[test]
    fn atomic_write_leaves_no_temp_behind() {
        let dir = std::env::temp_dir().join("specfem_container_atomic");
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        let path = dir.join("a.sfcn");
        let bytes = write_container_atomic(&path, *b"TEST", 1, |w| w.chunk("x", b"abc")).unwrap();
        assert_eq!(fs::metadata(&path).unwrap().len(), bytes);
        assert!(!dir.join("a.sfcn.tmp").exists());
        let mut r = ContainerReader::open(&path).unwrap();
        assert_eq!(r.chunk("x").unwrap(), b"abc");
        let _ = fs::remove_dir_all(&dir);
    }
}
