//! Crash dossiers — one merged SFCN container per failed run.
//!
//! When a run dies (health trip, stalled or dead rank, torn artifact),
//! the surviving ranks' flight-recorder journals plus a typed incident
//! record are written **atomically as one container** — following the
//! merged-artifact lesson of the checkpoint and mesh stores: one file
//! per incident, not O(ranks) scattered fragments. The container reuses
//! the workspace SFCN framing (per-chunk CRCs, tmp + fsync + rename), so
//! a crash while writing the crash dossier never leaves a torn dossier
//! under the real name.
//!
//! Layout (`kind = "FLTR"`, payload version 1):
//! * `incident` — binary incident record (class, detail, rank, step,
//!   trace id, world size);
//! * `incident.json` — the same record as JSON, so CI schema checks can
//!   read it without linking this crate;
//! * `journal_<rank>` — one chunk per surviving rank's flight journal,
//!   events oldest-first with inline labels.

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

use specfem_obs::flight::{FlightEventKind, FlightJournal};
use specfem_obs::json_escape;

use crate::container::{
    io_err, put_u32, put_u64, put_u8, write_container_atomic, ArtifactError, ByteReader,
    ContainerReader,
};

/// Container kind tag for crash dossiers.
pub const DOSSIER_KIND: [u8; 4] = *b"FLTR";

/// Payload version of the dossier encoding.
pub const DOSSIER_PAYLOAD_VERSION: u32 = 1;

/// The typed failure a dossier documents.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct DossierIncident {
    /// Failure class: `health`, `stall`, `rank_dead`, `artifact`, or
    /// `comm` (the classifier in `specfem-core` assigns these).
    pub class: String,
    /// Human-readable detail (the error's `Display` text).
    pub detail: String,
    /// The failing rank, when the error names one.
    pub rank: Option<u64>,
    /// The step the failure was detected on, when known.
    pub step: Option<u64>,
    /// The trace id of the request/job the run belonged to.
    pub trace_id: Option<u64>,
    /// World size of the failed run.
    pub world: u64,
}

/// One rank's journal, as decoded from a dossier (labels owned — the
/// in-memory [`FlightJournal`] uses `&'static str` labels, which cannot
/// survive a round-trip through disk).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct DossierJournal {
    /// The rank that recorded it.
    pub rank: u64,
    /// Ring capacity the journal ran with.
    pub capacity: u64,
    /// Events lost to ring overwrite before harvest.
    pub dropped: u64,
    /// Surviving events, oldest first.
    pub events: Vec<DossierEvent>,
}

/// One decoded journal entry.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct DossierEvent {
    /// Nanoseconds since the process trace epoch.
    pub t_ns: u64,
    /// The time step the rank was on.
    pub step: u64,
    /// Stable event-kind code (see [`FlightEventKind`]).
    pub kind: u8,
    /// Kind-specific operand.
    pub a: u64,
    /// Kind-specific operand.
    pub b: u64,
    /// Event label (span name, field name, `""`).
    pub label: String,
}

impl DossierEvent {
    /// The decoded kind, when the code is known.
    pub fn kind(&self) -> Option<FlightEventKind> {
        FlightEventKind::from_code(self.kind)
    }
}

/// A fully decoded dossier.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CrashDossier {
    /// What failed.
    pub incident: DossierIncident,
    /// Per-rank journals, ascending rank order.
    pub journals: Vec<DossierJournal>,
}

fn put_str(out: &mut Vec<u8>, s: &str) {
    put_u32(out, s.len() as u32);
    out.extend_from_slice(s.as_bytes());
}

fn take_str(r: &mut ByteReader<'_>) -> Result<String, ArtifactError> {
    let n = r.u32()? as usize;
    let bytes = r.take(n)?;
    String::from_utf8(bytes.to_vec()).map_err(|_| r.format_err("non-UTF-8 string"))
}

fn put_opt_u64(out: &mut Vec<u8>, v: Option<u64>) {
    put_u8(out, v.is_some() as u8);
    put_u64(out, v.unwrap_or(0));
}

fn take_opt_u64(r: &mut ByteReader<'_>) -> Result<Option<u64>, ArtifactError> {
    let present = r.u8()? != 0;
    let v = r.u64()?;
    Ok(present.then_some(v))
}

fn encode_incident(inc: &DossierIncident) -> Vec<u8> {
    let mut out = Vec::new();
    put_str(&mut out, &inc.class);
    put_str(&mut out, &inc.detail);
    put_opt_u64(&mut out, inc.rank);
    put_opt_u64(&mut out, inc.step);
    put_opt_u64(&mut out, inc.trace_id);
    put_u64(&mut out, inc.world);
    out
}

fn incident_json(inc: &DossierIncident, journals: &[&FlightJournal]) -> String {
    let mut o = String::from("{");
    o.push_str(&format!("\"class\":\"{}\",", json_escape(&inc.class)));
    o.push_str(&format!("\"detail\":\"{}\",", json_escape(&inc.detail)));
    match inc.rank {
        Some(r) => o.push_str(&format!("\"rank\":{r},")),
        None => o.push_str("\"rank\":null,"),
    }
    match inc.step {
        Some(s) => o.push_str(&format!("\"step\":{s},")),
        None => o.push_str("\"step\":null,"),
    }
    match inc.trace_id {
        Some(t) => o.push_str(&format!("\"trace_id\":\"{t:016x}\",")),
        None => o.push_str("\"trace_id\":null,"),
    }
    o.push_str(&format!("\"world\":{},", inc.world));
    o.push_str("\"journal_ranks\":[");
    for (i, j) in journals.iter().enumerate() {
        if i > 0 {
            o.push(',');
        }
        o.push_str(&format!("{}", j.rank));
    }
    o.push_str("],");
    let total: usize = journals.iter().map(|j| j.events.len()).sum();
    o.push_str(&format!("\"total_events\":{total}"));
    o.push('}');
    o
}

fn encode_journal(j: &FlightJournal) -> Vec<u8> {
    let mut out = Vec::new();
    put_u64(&mut out, j.rank as u64);
    put_u64(&mut out, j.capacity as u64);
    put_u64(&mut out, j.dropped);
    put_u32(&mut out, j.events.len() as u32);
    for e in &j.events {
        put_u64(&mut out, e.t_ns);
        put_u64(&mut out, e.step);
        put_u8(&mut out, e.kind as u8);
        put_u64(&mut out, e.a);
        put_u64(&mut out, e.b);
        put_str(&mut out, e.label);
    }
    out
}

fn decode_journal(bytes: &[u8], file: &str, chunk: &str) -> Result<DossierJournal, ArtifactError> {
    let mut r = ByteReader::new(bytes, file, chunk);
    let rank = r.u64()?;
    let capacity = r.u64()?;
    let dropped = r.u64()?;
    let n = r.u32()? as usize;
    let mut events = Vec::with_capacity(n);
    for _ in 0..n {
        events.push(DossierEvent {
            t_ns: r.u64()?,
            step: r.u64()?,
            kind: r.u8()?,
            a: r.u64()?,
            b: r.u64()?,
            label: take_str(&mut r)?,
        });
    }
    r.finished()?;
    Ok(DossierJournal {
        rank,
        capacity,
        dropped,
        events,
    })
}

/// Process-wide dossier sequence number — keeps concurrent failures
/// (parallel campaign jobs) from racing to one file name.
static DOSSIER_SEQ: AtomicU64 = AtomicU64::new(0);

/// Write one crash dossier into `dir` and return its path. Journals are
/// sorted by rank; the write is atomic (tmp + fsync + rename), so
/// observers never see a partial dossier. The file is named
/// `dossier_<class>_<seq>.sfcn` with a process-unique sequence number.
pub fn write_crash_dossier(
    dir: &Path,
    incident: &DossierIncident,
    journals: &[FlightJournal],
) -> Result<PathBuf, ArtifactError> {
    std::fs::create_dir_all(dir)
        .map_err(|e| io_err(&dir.display().to_string(), "create dossier dir", e))?;
    let mut sorted: Vec<&FlightJournal> = journals.iter().collect();
    sorted.sort_by_key(|j| j.rank);
    let seq = DOSSIER_SEQ.fetch_add(1, Ordering::Relaxed);
    let class: String = incident
        .class
        .chars()
        .map(|c| if c.is_ascii_alphanumeric() { c } else { '_' })
        .collect();
    let path = dir.join(format!("dossier_{class}_{seq:04}.sfcn"));
    write_container_atomic(&path, DOSSIER_KIND, DOSSIER_PAYLOAD_VERSION, |w| {
        w.chunk("incident", &encode_incident(incident))?;
        w.chunk("incident.json", incident_json(incident, &sorted).as_bytes())?;
        for j in &sorted {
            w.chunk(&format!("journal_{}", j.rank), &encode_journal(j))?;
        }
        Ok(())
    })?;
    Ok(path)
}

/// Read a dossier back (tests and tooling; CI reads `incident.json`).
pub fn read_crash_dossier(path: &Path) -> Result<CrashDossier, ArtifactError> {
    let mut r = ContainerReader::open(path)?;
    if r.kind() != DOSSIER_KIND {
        return Err(ArtifactError::Format {
            file: r.file().to_string(),
            detail: format!("not a crash dossier (kind {:?})", r.kind()),
        });
    }
    let file = r.file().to_string();
    let inc_bytes = r.chunk("incident")?;
    let mut br = ByteReader::new(&inc_bytes, &file, "incident");
    let incident = DossierIncident {
        class: take_str(&mut br)?,
        detail: take_str(&mut br)?,
        rank: take_opt_u64(&mut br)?,
        step: take_opt_u64(&mut br)?,
        trace_id: take_opt_u64(&mut br)?,
        world: br.u64()?,
    };
    br.finished()?;
    let mut journals = Vec::new();
    for name in r.chunk_names() {
        if let Some(rank) = name.strip_prefix("journal_") {
            let bytes = r.chunk(&name)?;
            let j = decode_journal(&bytes, &file, &name)?;
            if j.rank.to_string() != rank {
                return Err(ArtifactError::Format {
                    file,
                    detail: format!("chunk '{name}' holds journal for rank {}", j.rank),
                });
            }
            journals.push(j);
        }
    }
    journals.sort_by_key(|j| j.rank);
    Ok(CrashDossier { incident, journals })
}

#[cfg(test)]
mod tests {
    use super::*;
    use specfem_obs::flight::FlightEvent;

    fn journal(rank: usize, n: u64) -> FlightJournal {
        FlightJournal {
            rank,
            capacity: 64,
            dropped: 1,
            events: (0..n)
                .map(|i| FlightEvent {
                    t_ns: 1000 + i,
                    step: i,
                    kind: FlightEventKind::CommSend,
                    a: 100,
                    b: 4096 * i,
                    label: "halo",
                })
                .collect(),
        }
    }

    fn incident() -> DossierIncident {
        DossierIncident {
            class: "health".into(),
            detail: "non-finite displ at step 7".into(),
            rank: Some(1),
            step: Some(7),
            trace_id: Some(0xdead_beef),
            world: 2,
        }
    }

    #[test]
    fn dossier_roundtrip_preserves_incident_and_journals() {
        let dir = tempdir("dossier_roundtrip");
        let path = write_crash_dossier(&dir, &incident(), &[journal(1, 3), journal(0, 2)]).unwrap();
        assert!(path.exists());
        let d = read_crash_dossier(&path).unwrap();
        assert_eq!(d.incident, incident());
        // Journals come back sorted by rank regardless of input order.
        assert_eq!(d.journals.len(), 2);
        assert_eq!(d.journals[0].rank, 0);
        assert_eq!(d.journals[0].events.len(), 2);
        assert_eq!(d.journals[1].rank, 1);
        assert_eq!(d.journals[1].events.len(), 3);
        let e = &d.journals[1].events[2];
        assert_eq!(e.kind(), Some(FlightEventKind::CommSend));
        assert_eq!(e.b, 8192);
        assert_eq!(e.label, "halo");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn incident_json_chunk_is_valid_and_complete() {
        let dir = tempdir("dossier_json");
        let path = write_crash_dossier(&dir, &incident(), &[journal(0, 2)]).unwrap();
        let mut r = ContainerReader::open(&path).unwrap();
        assert_eq!(r.kind(), DOSSIER_KIND);
        let json = String::from_utf8(r.chunk("incident.json").unwrap()).unwrap();
        let v = serde_json::from_str(&json).expect("valid JSON");
        assert_eq!(v["class"].as_str(), Some("health"));
        assert_eq!(v["rank"].as_u64(), Some(1));
        assert_eq!(v["step"].as_u64(), Some(7));
        assert_eq!(v["trace_id"].as_str(), Some("00000000deadbeef"));
        assert_eq!(v["world"].as_u64(), Some(2));
        assert_eq!(v["journal_ranks"][0].as_u64(), Some(0));
        assert_eq!(v["total_events"].as_u64(), Some(2));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn absent_optionals_encode_as_null() {
        let dir = tempdir("dossier_null");
        let inc = DossierIncident {
            class: "stall".into(),
            detail: "watchdog".into(),
            world: 4,
            ..Default::default()
        };
        let path = write_crash_dossier(&dir, &inc, &[]).unwrap();
        let d = read_crash_dossier(&path).unwrap();
        assert_eq!(d.incident.rank, None);
        assert_eq!(d.incident.step, None);
        assert_eq!(d.incident.trace_id, None);
        assert!(d.journals.is_empty());
        let mut r = ContainerReader::open(&path).unwrap();
        let json = String::from_utf8(r.chunk("incident.json").unwrap()).unwrap();
        let v = serde_json::from_str(&json).unwrap();
        assert!(v["rank"].is_null());
        assert!(v["trace_id"].is_null());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn sequence_numbers_keep_names_unique() {
        let dir = tempdir("dossier_seq");
        let a = write_crash_dossier(&dir, &incident(), &[]).unwrap();
        let b = write_crash_dossier(&dir, &incident(), &[]).unwrap();
        assert_ne!(a, b);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    fn tempdir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("specfem_io_{tag}_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        std::fs::create_dir_all(&d).unwrap();
        d
    }
}
