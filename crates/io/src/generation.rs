//! Shared "load latest good generation" fallback logic.
//!
//! Three stores walk content-addressed artifacts newest-first and must
//! survive a bad one: the merged checkpoint store (skip a torn generation,
//! restore from the previous), the mesh artifact store (evict the corrupt
//! file, rebuild from scratch), and the result cache (evict, re-solve).
//! Before this module each reimplemented the same loop — remember the last
//! [`ArtifactError`], keep walking, count the fallback — with subtly
//! different bookkeeping. [`load_latest_good`] is that loop, once.

use crate::container::ArtifactError;

/// Outcome of walking candidate generations newest-first.
#[derive(Debug)]
pub struct GenerationScan<T> {
    /// The newest candidate that loaded cleanly, if any.
    pub value: Option<T>,
    /// How many newer candidates failed validation and were skipped
    /// before `value` (or before giving up).
    pub skipped: usize,
    /// The most recent load failure. `value == None` with `last_error`
    /// set means every candidate on disk failed validation — a harder
    /// condition than "nothing there" (`value == None`, no error).
    pub last_error: Option<ArtifactError>,
}

impl<T> GenerationScan<T> {
    /// Collapse the scan for callers that treat "all generations bad" as
    /// a typed error and "nothing on disk" as a clean miss.
    pub fn into_result(self) -> Result<Option<T>, ArtifactError> {
        match (self.value, self.last_error) {
            (Some(v), _) => Ok(Some(v)),
            (None, Some(e)) => Err(e),
            (None, None) => Ok(None),
        }
    }
}

/// Walk `candidates` (ordered newest-first), loading each until one
/// succeeds.
///
/// * `load` returns `Ok(Some(v))` for a good generation, `Ok(None)` when
///   the candidate simply isn't on disk (skipped silently), and `Err` for
///   a corrupt / torn / mis-keyed artifact.
/// * `on_bad` runs for every failed candidate — stores hook their evict
///   here so a bad artifact can't poison the next scan.
/// * When at least one candidate failed before the scan settled,
///   `fallback_counter` is bumped once (the store *fell back*, however
///   many generations it had to skip).
pub fn load_latest_good<C, T>(
    candidates: impl IntoIterator<Item = C>,
    fallback_counter: &'static str,
    mut load: impl FnMut(&C) -> Result<Option<T>, ArtifactError>,
    mut on_bad: impl FnMut(&C, &ArtifactError),
) -> GenerationScan<T> {
    let mut skipped = 0usize;
    let mut last_error: Option<ArtifactError> = None;
    let mut value = None;
    for cand in candidates {
        match load(&cand) {
            Ok(Some(v)) => {
                value = Some(v);
                break;
            }
            Ok(None) => {}
            Err(e) => {
                on_bad(&cand, &e);
                skipped += 1;
                last_error = Some(e);
            }
        }
    }
    if skipped > 0 {
        specfem_obs::counter_add(fallback_counter, 1);
    }
    GenerationScan {
        value,
        skipped,
        last_error,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn format_err(tag: &str) -> ArtifactError {
        ArtifactError::Format {
            file: format!("{tag}.sfcc"),
            detail: "torn header".into(),
        }
    }

    #[test]
    fn newest_good_wins_without_fallback() {
        let scan = load_latest_good(
            [3usize, 2, 1],
            "test.generation_fallbacks",
            |&step| Ok(Some(step * 10)),
            |_, _| panic!("no candidate should fail"),
        );
        assert_eq!(scan.value, Some(30));
        assert_eq!(scan.skipped, 0);
        assert!(scan.last_error.is_none());
    }

    #[test]
    fn skips_bad_generations_and_reports_the_count() {
        let mut evicted = Vec::new();
        let scan = load_latest_good(
            [4usize, 3, 2, 1],
            "test.generation_fallbacks",
            |&step| {
                if step >= 3 {
                    Err(format_err(&format!("step{step}")))
                } else {
                    Ok(Some(step))
                }
            },
            |&step, _| evicted.push(step),
        );
        assert_eq!(scan.value, Some(2));
        assert_eq!(scan.skipped, 2);
        assert_eq!(evicted, vec![4, 3]);
        assert!(scan.last_error.is_some());
        assert_eq!(scan.into_result().unwrap(), Some(2));
    }

    #[test]
    fn missing_candidates_are_not_fallbacks() {
        let scan = load_latest_good(
            [2usize, 1],
            "test.generation_fallbacks",
            |_| Ok(None::<usize>),
            |_, _| panic!("missing is not bad"),
        );
        assert!(scan.value.is_none());
        assert_eq!(scan.skipped, 0);
        assert!(scan.last_error.is_none());
        assert!(scan.into_result().unwrap().is_none());
    }

    #[test]
    fn all_bad_is_a_typed_error() {
        let scan = load_latest_good(
            [2usize, 1],
            "test.generation_fallbacks",
            |&step| Err::<Option<usize>, _>(format_err(&format!("step{step}"))),
            |_, _| {},
        );
        assert_eq!(scan.skipped, 2);
        let err = scan.into_result().unwrap_err();
        assert!(matches!(err, ArtifactError::Format { .. }), "{err}");
    }
}
