//! On-disk checkpoint storage for fault-tolerant runs.
//!
//! Each rank writes its serialized [`CheckpointState`] (the versioned,
//! CRC-32-guarded binary format of `specfem_solver::checkpoint`) to its own
//! file, `step{step:09}_rank{rank:06}.ckpt`. Writes are atomic: the bytes
//! go to a `.tmp` sibling first and are renamed into place, so a rank
//! killed mid-write never leaves a half-written checkpoint under the real
//! name. Each rank keeps its two most recent checkpoints — if the world
//! dies *during* a checkpoint (some ranks at step M, others still at N),
//! the previous complete set at N is still restorable.
//!
//! A *complete* step is one for which all `nranks` files exist;
//! [`CheckpointStore::latest_complete_step`] finds the newest one and
//! restart resumes from there.

use std::fs;
use std::io::Write;
use std::path::{Path, PathBuf};

use specfem_solver::checkpoint::{CheckpointError, CheckpointSink, CheckpointState};

/// How many checkpoints per rank survive pruning (≥ 2 so an interrupted
/// checkpoint never destroys the last complete set).
const KEEP_PER_RANK: usize = 2;

/// A directory of per-rank checkpoint files.
#[derive(Debug, Clone)]
pub struct CheckpointStore {
    dir: PathBuf,
}

fn file_name(step: usize, rank: usize) -> String {
    format!("step{step:09}_rank{rank:06}.ckpt")
}

/// Parse `step{step:09}_rank{rank:06}.ckpt` back into `(step, rank)`.
fn parse_name(name: &str) -> Option<(usize, usize)> {
    let rest = name.strip_prefix("step")?.strip_suffix(".ckpt")?;
    let (step, rank) = rest.split_once("_rank")?;
    Some((step.parse().ok()?, rank.parse().ok()?))
}

fn io_err(context: &str, e: std::io::Error) -> CheckpointError {
    CheckpointError(format!("{context}: {e}"))
}

impl CheckpointStore {
    /// Open (creating if needed) a checkpoint directory.
    pub fn new(dir: impl Into<PathBuf>) -> Result<Self, CheckpointError> {
        let dir = dir.into();
        fs::create_dir_all(&dir).map_err(|e| io_err("create checkpoint dir", e))?;
        Ok(Self { dir })
    }

    /// The directory backing this store.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// A [`CheckpointSink`] one rank writes through.
    pub fn sink(&self, rank: usize) -> Box<dyn CheckpointSink> {
        Box::new(RankCheckpointWriter {
            dir: self.dir.clone(),
            rank,
        })
    }

    /// Every `(step, rank)` pair currently on disk.
    fn entries(&self) -> Result<Vec<(usize, usize)>, CheckpointError> {
        let mut out = Vec::new();
        for entry in fs::read_dir(&self.dir).map_err(|e| io_err("list checkpoint dir", e))? {
            let entry = entry.map_err(|e| io_err("list checkpoint dir", e))?;
            if let Some(pair) = entry.file_name().to_str().and_then(parse_name) {
                out.push(pair);
            }
        }
        Ok(out)
    }

    /// The newest step for which all `nranks` per-rank files exist
    /// (`None` when no complete checkpoint is on disk).
    pub fn latest_complete_step(&self, nranks: usize) -> Result<Option<usize>, CheckpointError> {
        let mut per_step: std::collections::BTreeMap<usize, usize> =
            std::collections::BTreeMap::new();
        for (step, rank) in self.entries()? {
            if rank < nranks {
                *per_step.entry(step).or_insert(0) += 1;
            }
        }
        Ok(per_step
            .into_iter()
            .rev()
            .find(|&(_, count)| count == nranks)
            .map(|(step, _)| step))
    }

    /// Load and validate one rank's checkpoint at `step` (CRC and format
    /// checks happen in [`CheckpointState::decode`]).
    pub fn load(&self, step: usize, rank: usize) -> Result<CheckpointState, CheckpointError> {
        let path = self.dir.join(file_name(step, rank));
        let bytes = fs::read(&path).map_err(|e| io_err(&format!("read {}", path.display()), e))?;
        let state = CheckpointState::decode(&bytes)?;
        if state.rank != rank || state.next_step != step {
            return Err(CheckpointError(format!(
                "checkpoint {} claims rank {} step {}, expected rank {rank} step {step}",
                path.display(),
                state.rank,
                state.next_step
            )));
        }
        Ok(state)
    }

    /// Restore closure for `try_run_distributed`: every rank resumes from
    /// the newest *complete* step, or cold-starts when there is none.
    pub fn restore_latest(
        &self,
        nranks: usize,
    ) -> impl Fn(usize) -> Result<Option<CheckpointState>, CheckpointError> + Sync + '_ {
        move |rank| match self.latest_complete_step(nranks)? {
            Some(step) => Ok(Some(self.load(step, rank)?)),
            None => Ok(None),
        }
    }
}

/// One rank's sink: atomic write (tmp + rename), then prune its own old
/// checkpoints down to [`KEEP_PER_RANK`].
struct RankCheckpointWriter {
    dir: PathBuf,
    rank: usize,
}

impl CheckpointSink for RankCheckpointWriter {
    fn write(&mut self, state: &CheckpointState) -> Result<(), CheckpointError> {
        let _span = specfem_obs::span("io.checkpoint.write");
        let name = file_name(state.next_step, self.rank);
        let tmp = self.dir.join(format!("{name}.tmp"));
        let finals = self.dir.join(&name);
        {
            let mut f = fs::File::create(&tmp)
                .map_err(|e| io_err(&format!("create {}", tmp.display()), e))?;
            f.write_all(&state.encode())
                .map_err(|e| io_err(&format!("write {}", tmp.display()), e))?;
            f.sync_all()
                .map_err(|e| io_err(&format!("sync {}", tmp.display()), e))?;
        }
        fs::rename(&tmp, &finals)
            .map_err(|e| io_err(&format!("rename into {}", finals.display()), e))?;

        // Prune this rank's older checkpoints, newest first.
        let mut mine: Vec<usize> = fs::read_dir(&self.dir)
            .map_err(|e| io_err("list checkpoint dir", e))?
            .filter_map(|e| e.ok())
            .filter_map(|e| e.file_name().to_str().and_then(parse_name))
            .filter(|&(_, r)| r == self.rank)
            .map(|(s, _)| s)
            .collect();
        mine.sort_unstable_by(|a, b| b.cmp(a));
        for &old in mine.iter().skip(KEEP_PER_RANK) {
            let _ = fs::remove_file(self.dir.join(file_name(old, self.rank)));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn state(rank: usize, nranks: usize, step: usize) -> CheckpointState {
        CheckpointState {
            rank,
            nranks,
            next_step: step,
            dt: 0.25,
            nglob: 2,
            displ: vec![1.0; 6],
            veloc: vec![2.0; 6],
            accel: vec![3.0; 6],
            chi: vec![4.0; 2],
            chi_dot: vec![5.0; 2],
            chi_ddot: vec![6.0; 2],
            atten_memory: None,
            records: vec![],
            energy: vec![],
            snapshots: vec![],
            flops: 7,
        }
    }

    fn tmp_store(tag: &str) -> CheckpointStore {
        let dir = std::env::temp_dir().join(format!("specfem_ckpt_{tag}"));
        let _ = fs::remove_dir_all(&dir);
        CheckpointStore::new(dir).unwrap()
    }

    #[test]
    fn write_load_roundtrip() {
        let store = tmp_store("roundtrip");
        store.sink(0).write(&state(0, 1, 10)).unwrap();
        let back = store.load(10, 0).unwrap();
        assert_eq!(back.next_step, 10);
        assert_eq!(back.displ, vec![1.0; 6]);
        let _ = fs::remove_dir_all(store.dir());
    }

    #[test]
    fn latest_complete_requires_all_ranks() {
        let store = tmp_store("complete");
        // Step 10 complete on both ranks, step 20 only on rank 0.
        store.sink(0).write(&state(0, 2, 10)).unwrap();
        store.sink(1).write(&state(1, 2, 10)).unwrap();
        store.sink(0).write(&state(0, 2, 20)).unwrap();
        assert_eq!(store.latest_complete_step(2).unwrap(), Some(10));
        store.sink(1).write(&state(1, 2, 20)).unwrap();
        assert_eq!(store.latest_complete_step(2).unwrap(), Some(20));
        let _ = fs::remove_dir_all(store.dir());
    }

    #[test]
    fn pruning_keeps_two_newest_per_rank() {
        let store = tmp_store("prune");
        let mut sink = store.sink(0);
        for step in [10, 20, 30, 40] {
            sink.write(&state(0, 1, step)).unwrap();
        }
        let mut steps: Vec<usize> = store
            .entries()
            .unwrap()
            .into_iter()
            .map(|(s, _)| s)
            .collect();
        steps.sort_unstable();
        assert_eq!(steps, vec![30, 40]);
        let _ = fs::remove_dir_all(store.dir());
    }

    #[test]
    fn corrupt_file_is_rejected() {
        let store = tmp_store("corrupt");
        store.sink(0).write(&state(0, 1, 10)).unwrap();
        let path = store.dir().join(file_name(10, 0));
        let mut bytes = fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xFF;
        fs::write(&path, &bytes).unwrap();
        assert!(store.load(10, 0).is_err());
        let _ = fs::remove_dir_all(store.dir());
    }

    #[test]
    fn restore_latest_cold_start_is_none() {
        let store = tmp_store("cold");
        let restore = store.restore_latest(2);
        assert!(restore(0).unwrap().is_none());
        let _ = fs::remove_dir_all(store.dir());
    }
}
