//! Merged, rank-count-independent checkpoint containers.
//!
//! Every rank's [`CheckpointState`] flows through a per-rank sink into a
//! shared collector; when the full world has reported a step, the collector
//! merges the per-rank states into **one** global container,
//! `step{step:09}.sfcc`, keyed by global point/element ids — in the spirit
//! of Hapla et al.'s DMPlex checkpoints, where a file written by W ranks is
//! consumed by R readers through an on-disk index plus redecomposition on
//! load. A campaign that loses ranks restarts on a *smaller* world from the
//! same artifact ("shrink to survive"), and the file count per generation
//! is O(1) instead of O(ranks).
//!
//! Durability: a generation only exists on disk once *every* rank's state
//! for that step has been merged and the container has been written via
//! tmp + fsync + atomic rename ([`crate::container::write_container_atomic`]),
//! so a kill mid-checkpoint can never leave a half generation under a real
//! name. The store keeps the last `keep` generations (Par_file
//! `CHECKPOINT_KEEP`, default 2); when the newest container turns out
//! corrupt at restore, the store falls back to the previous good one.

use std::collections::{BTreeMap, HashMap};
use std::fs;
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex};

use specfem_comm::{ArtifactFaultKind, FaultPlan};
use specfem_mesh::LocalMesh;
use specfem_solver::checkpoint::{CheckpointError, CheckpointSink, CheckpointState};

use crate::container::{
    put_f64, put_u32, put_u64, write_container_atomic, ArtifactError, ByteReader, ContainerReader,
};

/// Container kind tag for merged checkpoints.
pub const CHECKPOINT_KIND: [u8; 4] = *b"CKPT";

/// Version of the merged-checkpoint payload layout.
pub const CHECKPOINT_PAYLOAD_VERSION: u32 = 1;

/// Default number of complete generations kept on disk (≥ 2 so the
/// fallback path always has somewhere to land).
pub const DEFAULT_KEEP: usize = 2;

/// Per-station seismogram records as they travel in a checkpoint.
type StationRecords = Vec<(String, Vec<[f32; 3]>)>;
/// Accessor projecting one flat field out of a rank's checkpoint state.
type FieldAccessor = fn(&CheckpointState) -> &[f32];

fn step_file(step: usize) -> String {
    format!("step{step:09}.sfcc")
}

/// Parse `step{step:09}.sfcc` back into the step (rejects `.tmp` strays).
fn parse_step(name: &str) -> Option<usize> {
    name.strip_prefix("step")?
        .strip_suffix(".sfcc")?
        .parse()
        .ok()
}

fn artifact_to_checkpoint(e: ArtifactError) -> CheckpointError {
    CheckpointError(e.to_string())
}

/// One merged generation: the whole world's time-loop state indexed by
/// global point/element ids, decomposition-free.
#[derive(Debug, Clone, PartialEq)]
pub struct GlobalCheckpoint {
    /// First step a resumed loop executes.
    pub next_step: usize,
    /// Time step (s); restore must bit-match.
    pub dt: f64,
    /// World size that wrote the generation (provenance only — any world
    /// size may consume it).
    pub world_written: usize,
    /// Global point count.
    pub nglob: usize,
    /// Global element count (0 when no element-major payload was written).
    pub nspec: usize,
    /// Attenuation floats per element (0 = elastic run).
    pub atten_per_element: usize,
    /// Solid displacement `[g·3 + c]` over global points.
    pub displ: Vec<f32>,
    /// Solid velocity.
    pub veloc: Vec<f32>,
    /// Solid acceleration.
    pub accel: Vec<f32>,
    /// Fluid potential χ.
    pub chi: Vec<f32>,
    /// χ̇.
    pub chi_dot: Vec<f32>,
    /// χ̈.
    pub chi_ddot: Vec<f32>,
    /// Attenuation memory, element-major over global elements.
    pub atten: Option<Vec<f32>>,
    /// Union of every rank's station records.
    pub records: Vec<(String, Vec<[f32; 3]>)>,
    /// Energy samples (globally reduced — identical on every rank).
    pub energy: Vec<(usize, f64, f64)>,
    /// Displacement snapshots over global points.
    pub snapshots: Vec<Vec<f32>>,
    /// Total flop count across the writing world.
    pub flops: u64,
}

/// Gather one 3-component field into global numbering. Shared (halo)
/// points can carry ULP-different copies per rank (each rank sums its
/// assembly contributions in its own order), so the caller passes states
/// sorted by rank: the highest owning rank deterministically wins.
fn gather3(
    states: &[&CheckpointState],
    nglob: usize,
    field: fn(&CheckpointState) -> &[f32],
) -> Vec<f32> {
    let mut out = vec![0.0f32; nglob * 3];
    for s in states {
        let f = field(s);
        for (p, &g) in s.global_ids.iter().enumerate() {
            let g = g as usize;
            out[g * 3..g * 3 + 3].copy_from_slice(&f[p * 3..p * 3 + 3]);
        }
    }
    out
}

/// Gather one scalar field into global numbering (rank-sorted states —
/// see [`gather3`] on why order matters).
fn gather1(
    states: &[&CheckpointState],
    nglob: usize,
    field: fn(&CheckpointState) -> &[f32],
) -> Vec<f32> {
    let mut out = vec![0.0f32; nglob];
    for s in states {
        let f = field(s);
        for (p, &g) in s.global_ids.iter().enumerate() {
            out[g as usize] = f[p];
        }
    }
    out
}

/// Pre-merge consistency checks over one generation's per-rank states.
fn check_states(states: &[CheckpointState]) -> Result<(), CheckpointError> {
    let fail = |msg: String| Err(CheckpointError(msg));
    let first = &states[0];
    for s in states {
        if s.next_step != first.next_step {
            return fail(format!(
                "generation mixes steps {} and {}",
                first.next_step, s.next_step
            ));
        }
        if s.dt.to_bits() != first.dt.to_bits() {
            return fail(format!(
                "generation mixes dt {} and {} — ranks disagree on the stable step",
                first.dt, s.dt
            ));
        }
        if s.atten_memory.is_some() != first.atten_memory.is_some() {
            return fail("generation mixes anelastic and elastic states".to_string());
        }
        if s.snapshots.len() != first.snapshots.len() {
            return fail(format!(
                "generation mixes snapshot counts {} and {}",
                first.snapshots.len(),
                s.snapshots.len()
            ));
        }
        if s.global_ids.len() != s.nglob || s.displ.len() != s.nglob * 3 {
            return fail(format!(
                "rank {} state is internally inconsistent (nglob {}, {} ids, {} displ)",
                s.rank,
                s.nglob,
                s.global_ids.len(),
                s.displ.len()
            ));
        }
    }
    Ok(())
}

fn encode_records(records: &[(String, Vec<[f32; 3]>)]) -> Vec<u8> {
    let mut out = Vec::new();
    put_u32(&mut out, records.len() as u32);
    for (name, samples) in records {
        out.extend_from_slice(&(name.len() as u16).to_le_bytes());
        out.extend_from_slice(name.as_bytes());
        put_u64(&mut out, samples.len() as u64);
        for s in samples {
            for &c in s {
                out.extend_from_slice(&c.to_le_bytes());
            }
        }
    }
    out
}

fn decode_records(buf: &[u8], file: &str) -> Result<StationRecords, ArtifactError> {
    let mut r = ByteReader::new(buf, file, "records");
    let count = r.u32()? as usize;
    let mut out = Vec::with_capacity(count);
    for _ in 0..count {
        let name_len = u16::from_le_bytes(r.take(2)?.try_into().unwrap()) as usize;
        let name = String::from_utf8(r.take(name_len)?.to_vec())
            .map_err(|e| r.format_err(format!("bad station name: {e}")))?;
        let nsamp = r.u64()? as usize;
        let raw = r.take(
            nsamp
                .checked_mul(12)
                .ok_or_else(|| r.format_err("sample count overflows"))?,
        )?;
        let samples = raw
            .chunks_exact(12)
            .map(|c| {
                [
                    f32::from_le_bytes(c[0..4].try_into().unwrap()),
                    f32::from_le_bytes(c[4..8].try_into().unwrap()),
                    f32::from_le_bytes(c[8..12].try_into().unwrap()),
                ]
            })
            .collect();
        out.push((name, samples));
    }
    r.finished()?;
    Ok(out)
}

fn decode_f32_chunk(
    buf: &[u8],
    file: &str,
    name: &str,
    expect: usize,
) -> Result<Vec<f32>, ArtifactError> {
    if buf.len() != expect * 4 {
        return Err(ArtifactError::Format {
            file: file.to_string(),
            detail: format!(
                "chunk '{name}' holds {} bytes, expected {} ({expect} f32s)",
                buf.len(),
                expect * 4
            ),
        });
    }
    Ok(buf
        .chunks_exact(4)
        .map(|c| f32::from_le_bytes(c.try_into().unwrap()))
        .collect())
}

/// Merge one generation's per-rank states and stream them into a single
/// container at `path`, one global field in memory at a time. Returns the
/// container size in bytes.
fn write_merged(path: &Path, states: &[CheckpointState]) -> Result<u64, CheckpointError> {
    check_states(states)?;
    // Merge in rank order, not collector-arrival order: arrival depends
    // on thread scheduling, and shared halo points differ by ULPs across
    // ranks, so an arrival-order merge makes the container (and any
    // resumed run) nondeterministic between bit-identical runs.
    let mut order: Vec<&CheckpointState> = states.iter().collect();
    order.sort_by_key(|s| s.rank);
    let states = &order[..];
    let first = states[0];
    let nglob = states
        .iter()
        .flat_map(|s| s.global_ids.iter())
        .map(|&g| g as usize + 1)
        .max()
        .unwrap_or(0);
    let nspec = states
        .iter()
        .flat_map(|s| s.element_global.iter())
        .map(|&e| e as usize + 1)
        .max()
        .unwrap_or(0);
    let atten_per_element = match &first.atten_memory {
        Some(_) => {
            // Every element's memory block has the same width; derive it
            // from any rank that owns elements.
            let mut per = 0usize;
            for s in states {
                if let (Some(mem), n) = (&s.atten_memory, s.element_global.len()) {
                    if n > 0 {
                        if !mem.len().is_multiple_of(n) {
                            return Err(CheckpointError(format!(
                                "rank {} attenuation memory ({} floats) not element-divisible ({n} elements)",
                                s.rank,
                                mem.len()
                            )));
                        }
                        per = mem.len() / n;
                        break;
                    }
                }
            }
            per
        }
        None => 0,
    };
    let nsnap = first.snapshots.len();

    let mut meta = Vec::new();
    put_u64(&mut meta, first.next_step as u64);
    put_f64(&mut meta, first.dt);
    put_u64(&mut meta, first.nranks as u64);
    put_u64(&mut meta, nglob as u64);
    put_u64(&mut meta, nspec as u64);
    put_u64(&mut meta, atten_per_element as u64);
    put_u64(&mut meta, nsnap as u64);
    put_u64(&mut meta, states.iter().map(|s| s.flops).sum::<u64>());

    // Station ownership is disjoint across ranks; union in rank order so
    // the container is deterministic.
    let mut records: Vec<(String, Vec<[f32; 3]>)> = Vec::new();
    for s in states {
        for (name, samples) in &s.records {
            if !records.iter().any(|(n, _)| n == name) {
                records.push((name.clone(), samples.clone()));
            }
        }
    }
    let records = encode_records(&records);
    let energy = {
        let mut out = Vec::new();
        put_u64(&mut out, states[0].energy.len() as u64);
        for &(step, ke, pe) in &states[0].energy {
            put_u64(&mut out, step as u64);
            put_f64(&mut out, ke);
            put_f64(&mut out, pe);
        }
        out
    };

    let bytes = write_container_atomic(path, CHECKPOINT_KIND, CHECKPOINT_PAYLOAD_VERSION, |w| {
        w.chunk("meta", &meta)?;
        let fields3: [(&str, FieldAccessor); 3] = [
            ("displ", |s| &s.displ),
            ("veloc", |s| &s.veloc),
            ("accel", |s| &s.accel),
        ];
        for (name, field) in fields3 {
            w.chunk_f32s(name, gather3(states, nglob, field).into_iter())?;
        }
        let fields1: [(&str, FieldAccessor); 3] = [
            ("chi", |s| &s.chi),
            ("chi_dot", |s| &s.chi_dot),
            ("chi_ddot", |s| &s.chi_ddot),
        ];
        for (name, field) in fields1 {
            w.chunk_f32s(name, gather1(states, nglob, field).into_iter())?;
        }
        if atten_per_element > 0 {
            let mut atten = vec![0.0f32; nspec * atten_per_element];
            for s in states {
                let mem = s.atten_memory.as_ref().expect("checked anelastic");
                for (e, &ge) in s.element_global.iter().enumerate() {
                    let src = &mem[e * atten_per_element..(e + 1) * atten_per_element];
                    let dst = ge as usize * atten_per_element;
                    atten[dst..dst + atten_per_element].copy_from_slice(src);
                }
            }
            w.chunk_f32s("atten", atten.into_iter())?;
        }
        w.chunk("records", &records)?;
        w.chunk("energy", &energy)?;
        for k in 0..nsnap {
            let mut snap = vec![0.0f32; nglob * 3];
            for s in states {
                let f = &s.snapshots[k];
                for (p, &g) in s.global_ids.iter().enumerate() {
                    let g = g as usize;
                    snap[g * 3..g * 3 + 3].copy_from_slice(&f[p * 3..p * 3 + 3]);
                }
            }
            w.chunk_f32s(&format!("snapshot{k:03}"), snap.into_iter())?;
        }
        Ok(())
    })
    .map_err(artifact_to_checkpoint)?;
    Ok(bytes)
}

/// Load one merged generation from a container file.
pub fn load_global(path: &Path) -> Result<GlobalCheckpoint, ArtifactError> {
    let mut r = ContainerReader::open(path)?;
    if r.kind() != CHECKPOINT_KIND {
        return Err(ArtifactError::Format {
            file: r.file().to_string(),
            detail: format!("container kind {:?} is not a checkpoint", r.kind()),
        });
    }
    if r.payload_version() != CHECKPOINT_PAYLOAD_VERSION {
        return Err(ArtifactError::Version {
            file: r.file().to_string(),
            found: r.payload_version(),
            supported: CHECKPOINT_PAYLOAD_VERSION,
        });
    }
    let file = r.file().to_string();
    let meta = r.chunk("meta")?;
    let mut m = ByteReader::new(&meta, &file, "meta");
    let next_step = m.u64()? as usize;
    let dt = m.f64()?;
    let world_written = m.u64()? as usize;
    let nglob = m.u64()? as usize;
    let nspec = m.u64()? as usize;
    let atten_per_element = m.u64()? as usize;
    let nsnap = m.u64()? as usize;
    let flops = m.u64()?;
    m.finished()?;

    let displ = decode_f32_chunk(&r.chunk("displ")?, &file, "displ", nglob * 3)?;
    let veloc = decode_f32_chunk(&r.chunk("veloc")?, &file, "veloc", nglob * 3)?;
    let accel = decode_f32_chunk(&r.chunk("accel")?, &file, "accel", nglob * 3)?;
    let chi = decode_f32_chunk(&r.chunk("chi")?, &file, "chi", nglob)?;
    let chi_dot = decode_f32_chunk(&r.chunk("chi_dot")?, &file, "chi_dot", nglob)?;
    let chi_ddot = decode_f32_chunk(&r.chunk("chi_ddot")?, &file, "chi_ddot", nglob)?;
    let atten = if atten_per_element > 0 {
        Some(decode_f32_chunk(
            &r.chunk("atten")?,
            &file,
            "atten",
            nspec * atten_per_element,
        )?)
    } else {
        None
    };
    let records = decode_records(&r.chunk("records")?, &file)?;
    let energy = {
        let buf = r.chunk("energy")?;
        let mut er = ByteReader::new(&buf, &file, "energy");
        let n = er.u64()? as usize;
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            out.push((er.u64()? as usize, er.f64()?, er.f64()?));
        }
        er.finished()?;
        out
    };
    let mut snapshots = Vec::with_capacity(nsnap);
    for k in 0..nsnap {
        let name = format!("snapshot{k:03}");
        snapshots.push(decode_f32_chunk(&r.chunk(&name)?, &file, &name, nglob * 3)?);
    }
    specfem_obs::counter_add(
        "io.bytes_read",
        fs::metadata(path).map(|m| m.len()).unwrap_or(0),
    );
    Ok(GlobalCheckpoint {
        next_step,
        dt,
        world_written,
        nglob,
        nspec,
        atten_per_element,
        displ,
        veloc,
        accel,
        chi,
        chi_dot,
        chi_ddot,
        atten,
        records,
        energy,
        snapshots,
        flops,
    })
}

/// Scatter one merged generation onto a local mesh of an *arbitrary*
/// decomposition — the redecomposition-on-load half of the container
/// design. Seismogram records travel whole (the solver keeps the stations
/// it owns); the summed flop count lands on rank 0.
pub fn scatter_state(
    global: &GlobalCheckpoint,
    rank: usize,
    mesh: &LocalMesh,
) -> Result<CheckpointState, CheckpointError> {
    for &g in &mesh.global_ids {
        if g as usize >= global.nglob {
            return Err(CheckpointError(format!(
                "decomposition mismatch: mesh references global point {g} \
                 but the checkpoint holds {} — different mesh?",
                global.nglob
            )));
        }
    }
    let take3 = |field: &[f32]| -> Vec<f32> {
        let mut out = vec![0.0f32; mesh.nglob * 3];
        for (p, &g) in mesh.global_ids.iter().enumerate() {
            let g = g as usize;
            out[p * 3..p * 3 + 3].copy_from_slice(&field[g * 3..g * 3 + 3]);
        }
        out
    };
    let take1 = |field: &[f32]| -> Vec<f32> {
        mesh.global_ids.iter().map(|&g| field[g as usize]).collect()
    };
    let atten_memory = match &global.atten {
        Some(atten) => {
            let per = global.atten_per_element;
            let mut out = Vec::with_capacity(mesh.element_global.len() * per);
            for &ge in &mesh.element_global {
                let ge = ge as usize;
                if ge >= global.nspec {
                    return Err(CheckpointError(format!(
                        "decomposition mismatch: mesh references global element {ge} \
                         but the checkpoint holds {}",
                        global.nspec
                    )));
                }
                out.extend_from_slice(&atten[ge * per..(ge + 1) * per]);
            }
            Some(out)
        }
        None => None,
    };
    Ok(CheckpointState {
        rank,
        nranks: global.world_written,
        next_step: global.next_step,
        dt: global.dt,
        nglob: mesh.nglob,
        global_ids: mesh.global_ids.clone(),
        element_global: mesh.element_global.clone(),
        displ: take3(&global.displ),
        veloc: take3(&global.veloc),
        accel: take3(&global.accel),
        chi: take1(&global.chi),
        chi_dot: take1(&global.chi_dot),
        chi_ddot: take1(&global.chi_ddot),
        atten_memory,
        records: global.records.clone(),
        energy: global.energy.clone(),
        snapshots: global.snapshots.iter().map(|s| take3(s)).collect(),
        flops: if rank == 0 { global.flops } else { 0 },
    })
}

#[derive(Default)]
struct Pending {
    states: HashMap<usize, CheckpointState>,
}

struct Shared {
    keep: usize,
    fault_plan: Option<FaultPlan>,
    /// Completed artifact writes, the key [`FaultPlan::artifact_fault`]
    /// schedules against.
    writes: usize,
    pending: BTreeMap<usize, Pending>,
    /// Last generation read, so W ranks restoring don't re-read W times.
    cache: Option<(usize, Arc<GlobalCheckpoint>)>,
}

/// A directory of merged checkpoint containers, one file per generation.
#[derive(Clone)]
pub struct CheckpointStore {
    dir: PathBuf,
    shared: Arc<Mutex<Shared>>,
}

impl std::fmt::Debug for CheckpointStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CheckpointStore")
            .field("dir", &self.dir)
            .finish_non_exhaustive()
    }
}

impl CheckpointStore {
    /// Open (creating if needed) a checkpoint directory.
    pub fn new(dir: impl Into<PathBuf>) -> Result<Self, CheckpointError> {
        let dir = dir.into();
        fs::create_dir_all(&dir)
            .map_err(|e| CheckpointError(format!("create checkpoint dir: {e}")))?;
        Ok(Self {
            dir,
            shared: Arc::new(Mutex::new(Shared {
                keep: DEFAULT_KEEP,
                fault_plan: None,
                writes: 0,
                pending: BTreeMap::new(),
                cache: None,
            })),
        })
    }

    /// The directory backing this store.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// How many complete generations survive pruning (clamped to ≥ 1).
    pub fn set_keep(&self, keep: usize) {
        self.shared.lock().unwrap().keep = keep.max(1);
    }

    /// Arm artifact-corruption injection: the plan's
    /// [`FaultPlan::artifact_fault`] schedule damages the n-th completed
    /// container write *after* it lands (simulating on-media corruption).
    pub fn set_fault_plan(&self, plan: FaultPlan) {
        self.shared.lock().unwrap().fault_plan = Some(plan);
    }

    /// A [`CheckpointSink`] one rank writes through. All sinks feed the
    /// shared collector; the rank completing a generation pays the merge
    /// and the single container write.
    pub fn sink(&self, rank: usize) -> Box<dyn CheckpointSink> {
        let _ = rank; // identity travels inside the state itself
        Box::new(CollectorSink {
            store: self.clone(),
        })
    }

    /// Steps with a (fully renamed) container on disk, ascending.
    pub fn steps(&self) -> Result<Vec<usize>, CheckpointError> {
        let mut out = Vec::new();
        let iter = fs::read_dir(&self.dir)
            .map_err(|e| CheckpointError(format!("list checkpoint dir: {e}")))?;
        for entry in iter {
            let entry = entry.map_err(|e| CheckpointError(format!("list checkpoint dir: {e}")))?;
            if let Some(step) = entry.file_name().to_str().and_then(parse_step) {
                out.push(step);
            }
        }
        out.sort_unstable();
        Ok(out)
    }

    /// The newest generation on disk (no validation — see
    /// [`CheckpointStore::restore_latest_for`] for the fallback-aware path).
    pub fn latest_step(&self) -> Result<Option<usize>, CheckpointError> {
        Ok(self.steps()?.into_iter().next_back())
    }

    /// Load one generation, memoizing the newest successful read.
    pub fn load_global(&self, step: usize) -> Result<Arc<GlobalCheckpoint>, ArtifactError> {
        if let Some((s, g)) = &self.shared.lock().unwrap().cache {
            if *s == step {
                return Ok(Arc::clone(g));
            }
        }
        let global = Arc::new(load_global(&self.dir.join(step_file(step)))?);
        self.shared.lock().unwrap().cache = Some((step, Arc::clone(&global)));
        Ok(global)
    }

    /// Restore `rank`'s state on `mesh` — any decomposition — from the
    /// newest *readable* generation. A corrupt or torn container is skipped
    /// (counted in `io.checkpoint_fallbacks`) and the previous generation
    /// is tried; `Ok(None)` means a cold start, and an error means every
    /// generation on disk failed validation.
    pub fn restore_latest_for(
        &self,
        rank: usize,
        mesh: &LocalMesh,
    ) -> Result<Option<CheckpointState>, CheckpointError> {
        let steps = self.steps()?;
        let scan = crate::generation::load_latest_good(
            steps.into_iter().rev(),
            "io.checkpoint_fallbacks",
            |&step| self.load_global(step).map(Some),
            |_, _| {},
        );
        match scan.into_result() {
            Ok(Some(global)) => scatter_state(&global, rank, mesh).map(Some),
            Ok(None) => Ok(None),
            Err(e) => Err(CheckpointError(format!(
                "no readable checkpoint generation: {e}"
            ))),
        }
    }

    /// Merge and persist one complete generation (called by the collector
    /// with the shared lock held; container writes are serialized).
    fn commit(
        &self,
        shared: &mut Shared,
        states: Vec<CheckpointState>,
    ) -> Result<(), CheckpointError> {
        let _span = specfem_obs::span("io.checkpoint.write");
        let step = states[0].next_step;
        let path = self.dir.join(step_file(step));
        let bytes = write_merged(&path, &states)?;
        specfem_obs::counter_add("io.checkpoints_written", 1);
        specfem_obs::counter_add("io.bytes_written", bytes);

        let seq = shared.writes;
        shared.writes += 1;
        if let Some(kind) = shared
            .fault_plan
            .as_ref()
            .and_then(|p| p.artifact_fault(seq))
        {
            apply_artifact_fault(&path, kind);
        }
        shared.cache = None; // never serve pre-damage bytes from memory

        // Prune old generations, newest first.
        let mut steps = self.steps()?;
        steps.sort_unstable_by(|a, b| b.cmp(a));
        for &old in steps.iter().skip(shared.keep) {
            let _ = fs::remove_file(self.dir.join(step_file(old)));
        }
        Ok(())
    }
}

/// Damage a landed container according to the injected fault kind.
pub(crate) fn apply_artifact_fault(path: &Path, kind: ArtifactFaultKind) {
    let Ok(mut bytes) = fs::read(path) else {
        return;
    };
    match kind {
        ArtifactFaultKind::BitFlip => {
            let mid = bytes.len() / 2;
            bytes[mid] ^= 0x20;
        }
        ArtifactFaultKind::Truncate => {
            bytes.truncate(bytes.len() / 3);
        }
        ArtifactFaultKind::TornHeader => {
            for b in bytes.iter_mut().take(8) {
                *b = 0;
            }
        }
    }
    let _ = fs::write(path, &bytes);
}

struct CollectorSink {
    store: CheckpointStore,
}

impl CheckpointSink for CollectorSink {
    fn write(&mut self, state: &CheckpointState) -> Result<(), CheckpointError> {
        let expected = state.nranks.max(1);
        let store = self.store.clone();
        let mut shared = store.shared.lock().unwrap();
        let pending = shared.pending.entry(state.next_step).or_default();
        pending.states.insert(state.rank, state.clone());
        if pending.states.len() < expected {
            return Ok(());
        }
        let done = shared
            .pending
            .remove(&state.next_step)
            .expect("just inserted");
        let states: Vec<CheckpointState> = done.states.into_values().collect();
        self.store.commit(&mut shared, states)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use specfem_comm::FaultPlan;
    use specfem_mesh::{GlobalMesh, MeshParams, Partition};
    use specfem_model::Prem;

    fn gm() -> GlobalMesh {
        GlobalMesh::build(&MeshParams::new(4, 1), &Prem::isotropic_no_ocean())
    }

    /// Deterministic per-global-point values so any decomposition can be
    /// checked against the same formula.
    fn f3(g: u32, c: usize, k: u32) -> f32 {
        g as f32 * 8.0 + c as f32 + k as f32 * 0.5
    }

    fn f1(g: u32, k: u32) -> f32 {
        g as f32 * 1.5 + k as f32
    }

    const ATTEN_PER: usize = 4;

    fn synth(mesh: &LocalMesh, world: usize, step: usize) -> CheckpointState {
        let v3 = |k: u32| -> Vec<f32> {
            let mut out = vec![0.0; mesh.nglob * 3];
            for (p, &g) in mesh.global_ids.iter().enumerate() {
                for c in 0..3 {
                    out[p * 3 + c] = f3(g, c, k);
                }
            }
            out
        };
        let v1 = |k: u32| -> Vec<f32> { mesh.global_ids.iter().map(|&g| f1(g, k)).collect() };
        let atten: Vec<f32> = mesh
            .element_global
            .iter()
            .flat_map(|&ge| (0..ATTEN_PER as u32).map(move |i| (ge * ATTEN_PER as u32 + i) as f32))
            .collect();
        CheckpointState {
            rank: mesh.rank,
            nranks: world,
            next_step: step,
            dt: 0.25,
            nglob: mesh.nglob,
            global_ids: mesh.global_ids.clone(),
            element_global: mesh.element_global.clone(),
            displ: v3(0),
            veloc: v3(1),
            accel: v3(2),
            chi: v1(0),
            chi_dot: v1(1),
            chi_ddot: v1(2),
            atten_memory: Some(atten),
            records: vec![(
                format!("ST{}", mesh.rank),
                vec![[mesh.rank as f32, 0.0, 1.0]; 2],
            )],
            energy: vec![(0, 1.0, 2.0)],
            snapshots: vec![v3(7)],
            flops: 100 + mesh.rank as u64,
        }
    }

    fn tmp_store(tag: &str) -> CheckpointStore {
        let dir = std::env::temp_dir().join(format!("specfem_ckpt_container_{tag}"));
        let _ = fs::remove_dir_all(&dir);
        CheckpointStore::new(dir).unwrap()
    }

    fn write_generation(store: &CheckpointStore, gm: &GlobalMesh, world: usize, step: usize) {
        let part = Partition::balanced(gm, world);
        for rank in 0..world {
            let mesh = part.extract(gm, rank);
            store.sink(rank).write(&synth(&mesh, world, step)).unwrap();
        }
    }

    #[test]
    fn collector_merges_one_container_and_scatters_to_any_world() {
        let gm = gm();
        let store = tmp_store("elastic");
        write_generation(&store, &gm, 2, 10);

        // One file per generation, regardless of the writing world size.
        let files: Vec<_> = fs::read_dir(store.dir())
            .unwrap()
            .map(|e| e.unwrap().file_name().into_string().unwrap())
            .collect();
        assert_eq!(files, vec!["step000000010.sfcc"]);

        // Restore at a *different* world size and check every value.
        for restore_world in [1usize, 3, 8] {
            let part = Partition::balanced(&gm, restore_world);
            let mut total_flops = 0u64;
            for rank in 0..restore_world {
                let mesh = part.extract(&gm, rank);
                let state = store
                    .restore_latest_for(rank, &mesh)
                    .unwrap()
                    .expect("generation present");
                assert_eq!(state.next_step, 10);
                assert_eq!(state.dt.to_bits(), 0.25f64.to_bits());
                assert_eq!(state.nglob, mesh.nglob);
                for (p, &g) in mesh.global_ids.iter().enumerate() {
                    for c in 0..3 {
                        assert_eq!(state.displ[p * 3 + c].to_bits(), f3(g, c, 0).to_bits());
                        assert_eq!(state.veloc[p * 3 + c].to_bits(), f3(g, c, 1).to_bits());
                        assert_eq!(state.accel[p * 3 + c].to_bits(), f3(g, c, 2).to_bits());
                        assert_eq!(
                            state.snapshots[0][p * 3 + c].to_bits(),
                            f3(g, c, 7).to_bits()
                        );
                    }
                    assert_eq!(state.chi[p].to_bits(), f1(g, 0).to_bits());
                }
                let atten = state.atten_memory.as_ref().unwrap();
                for (e, &ge) in mesh.element_global.iter().enumerate() {
                    for i in 0..ATTEN_PER {
                        assert_eq!(
                            atten[e * ATTEN_PER + i],
                            (ge as usize * ATTEN_PER + i) as f32
                        );
                    }
                }
                // Records travel whole; the solver filters ownership.
                let names: Vec<_> = state.records.iter().map(|(n, _)| n.clone()).collect();
                assert_eq!(names, vec!["ST0", "ST1"]);
                assert_eq!(state.energy, vec![(0, 1.0, 2.0)]);
                total_flops += state.flops;
            }
            // Summed flops land once, on rank 0.
            assert_eq!(total_flops, 100 + 101);
        }
        let _ = fs::remove_dir_all(store.dir());
    }

    #[test]
    fn keep_k_prunes_old_generations() {
        let gm = gm();
        let store = tmp_store("prune");
        store.set_keep(2);
        for step in [10, 20, 30] {
            write_generation(&store, &gm, 2, step);
        }
        assert_eq!(store.steps().unwrap(), vec![20, 30]);
        let _ = fs::remove_dir_all(store.dir());
    }

    #[test]
    fn corrupt_latest_falls_back_to_previous_generation() {
        let gm = gm();
        let store = tmp_store("fallback");
        write_generation(&store, &gm, 2, 10);
        write_generation(&store, &gm, 2, 20);

        // Flip a byte mid-file (inside a field chunk) in the newest one.
        let path = store.dir().join(step_file(20));
        let mut bytes = fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x01;
        fs::write(&path, &bytes).unwrap();

        // Direct load is a typed corruption error naming the chunk.
        match load_global(&path).unwrap_err() {
            ArtifactError::Corrupt {
                chunk,
                expected,
                actual,
                ..
            } => {
                assert!(!chunk.is_empty());
                assert_ne!(expected, actual);
            }
            other => panic!("expected Corrupt, got {other}"),
        }

        // The restore path silently falls back to step 10.
        let mesh = Partition::balanced(&gm, 1).extract(&gm, 0);
        let state = store.restore_latest_for(0, &mesh).unwrap().unwrap();
        assert_eq!(state.next_step, 10);
        let _ = fs::remove_dir_all(store.dir());
    }

    #[test]
    fn half_written_container_is_never_selected_as_latest() {
        let gm = gm();
        let store = tmp_store("torn");
        write_generation(&store, &gm, 2, 20);

        // Simulate a kill mid-write: a stray tmp file (never renamed) and a
        // torn container that somehow landed under a real name.
        let good = fs::read(store.dir().join(step_file(20))).unwrap();
        fs::write(store.dir().join("step000000040.sfcc.tmp"), &good).unwrap();
        fs::write(store.dir().join(step_file(30)), &good[..good.len() / 2]).unwrap();

        // The tmp stray is not a generation at all; the torn container is
        // skipped with a fallback to the complete one.
        assert_eq!(store.steps().unwrap(), vec![20, 30]);
        let mesh = Partition::balanced(&gm, 1).extract(&gm, 0);
        let state = store.restore_latest_for(0, &mesh).unwrap().unwrap();
        assert_eq!(state.next_step, 20);
        let _ = fs::remove_dir_all(store.dir());
    }

    #[test]
    fn injected_artifact_faults_damage_the_scheduled_write() {
        let gm = gm();
        for (kind, tag) in [
            (ArtifactFaultKind::BitFlip, "bitflip"),
            (ArtifactFaultKind::Truncate, "trunc"),
            (ArtifactFaultKind::TornHeader, "torn"),
        ] {
            let store = tmp_store(&format!("inject_{tag}"));
            // Write 0 (step 10) lands clean; write 1 (step 20) is damaged.
            store.set_fault_plan(FaultPlan::new(7).corrupt_artifact(1, kind));
            write_generation(&store, &gm, 2, 10);
            write_generation(&store, &gm, 2, 20);

            let err = load_global(&store.dir().join(step_file(20))).unwrap_err();
            match kind {
                ArtifactFaultKind::BitFlip => {
                    assert!(matches!(err, ArtifactError::Corrupt { .. }), "{err}")
                }
                _ => assert!(matches!(err, ArtifactError::Format { .. }), "{err}"),
            }

            let mesh = Partition::balanced(&gm, 1).extract(&gm, 0);
            let state = store.restore_latest_for(0, &mesh).unwrap().unwrap();
            assert_eq!(state.next_step, 10, "fallback after {tag}");
            let _ = fs::remove_dir_all(store.dir());
        }
    }

    #[test]
    fn cold_start_is_none_and_all_corrupt_is_an_error() {
        let gm = gm();
        let store = tmp_store("cold");
        let mesh = Partition::balanced(&gm, 1).extract(&gm, 0);
        assert!(store.restore_latest_for(0, &mesh).unwrap().is_none());

        write_generation(&store, &gm, 1, 10);
        let path = store.dir().join(step_file(10));
        fs::write(&path, b"garbage").unwrap();
        let err = store.restore_latest_for(0, &mesh).unwrap_err();
        assert!(err.0.contains("no readable checkpoint"), "{err}");
        let _ = fs::remove_dir_all(store.dir());
    }
}
