//! Content-addressed seismogram result cache — the serving tier's answer
//! store.
//!
//! A simulation request is fully determined by `(mesh geometry
//! fingerprint, source, station set, solver knobs)`; `specfem-core`
//! hashes exactly those into a [`ResultKey`], and this module files the
//! finished seismograms under it. Two tiers:
//!
//! * **memory** — a byte-budgeted LRU map (`RESULT_CACHE_BYTES`), so a hot
//!   repeat query never touches the filesystem;
//! * **disk** — one `result_<hex>.sfrc` SFCN container (kind `"RSLT"`)
//!   per key, written atomically like every other artifact in this crate,
//!   so results survive a daemon restart.
//!
//! Corrupt disk entries are handled by the shared
//! [`crate::generation::load_latest_good`] walk: evict, count the
//! fallback, report a miss — the caller re-solves, it never crashes or
//! serves damaged samples.

use std::collections::HashMap;
use std::fs;
use std::io::Cursor;
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex};

use specfem_comm::ArtifactFaultKind;
use specfem_solver::Seismogram;

use crate::container::{
    io_err, put_f64, put_u64, write_container_atomic, ArtifactError, ByteReader, ContainerReader,
    ContainerWriter,
};

/// Container kind tag for cached results.
pub const RESULT_KIND: [u8; 4] = *b"RSLT";

/// Version of the result payload layout.
pub const RESULT_FORMAT_VERSION: u32 = 1;

/// Content address of one simulation answer: a 64-bit FNV fingerprint over
/// the request's full identity (mesh geometry, source, stations, solver
/// knobs), computed by `specfem-core`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ResultKey(pub u64);

impl ResultKey {
    /// Lower-case hex form — the artifact file stem.
    pub fn hex(&self) -> String {
        format!("{:016x}", self.0)
    }
}

/// A finished answer: the seismograms plus what the solve cost (element ×
/// step work), kept for serving-side accounting — a cache hit reports the
/// work it *avoided*.
#[derive(Debug, Clone, PartialEq)]
pub struct CachedResult {
    /// One record per requested station.
    pub seismograms: Vec<Seismogram>,
    /// `nspec × nsteps` of the solve that produced the records.
    pub element_steps: u64,
}

impl CachedResult {
    /// Approximate resident bytes (heap arrays only) — the LRU budget unit.
    pub fn approx_bytes(&self) -> usize {
        self.seismograms
            .iter()
            .map(|s| s.station.len() + 16 + s.data.len() * 12)
            .sum::<usize>()
            + 16
    }
}

fn write_chunks<W: std::io::Write>(
    w: &mut ContainerWriter<W>,
    key: ResultKey,
    result: &CachedResult,
) -> Result<(), ArtifactError> {
    let mut meta = Vec::new();
    put_u64(&mut meta, key.0);
    put_u64(&mut meta, result.seismograms.len() as u64);
    put_u64(&mut meta, result.element_steps);
    w.chunk("meta", &meta)?;

    let mut stations = Vec::new();
    for s in &result.seismograms {
        put_u64(&mut stations, s.station.len() as u64);
        stations.extend_from_slice(s.station.as_bytes());
        put_f64(&mut stations, s.dt);
        put_u64(&mut stations, s.data.len() as u64);
    }
    w.chunk("stations", &stations)?;

    w.chunk_f32s(
        "data",
        result
            .seismograms
            .iter()
            .flat_map(|s| s.data.iter())
            .flat_map(|v| v.iter().copied()),
    )?;
    Ok(())
}

fn read_result<R: std::io::Read + std::io::Seek>(
    r: &mut ContainerReader<R>,
    expect_key: ResultKey,
) -> Result<CachedResult, ArtifactError> {
    if r.kind() != RESULT_KIND {
        return Err(ArtifactError::Format {
            file: r.file().to_string(),
            detail: format!("container kind {:?} is not a result artifact", r.kind()),
        });
    }
    if r.payload_version() != RESULT_FORMAT_VERSION {
        return Err(ArtifactError::Version {
            file: r.file().to_string(),
            found: r.payload_version(),
            supported: RESULT_FORMAT_VERSION,
        });
    }
    let file = r.file().to_string();
    let meta = r.chunk("meta")?;
    let mut m = ByteReader::new(&meta, &file, "meta");
    let key = m.u64()?;
    let nrec = m.u64()? as usize;
    let element_steps = m.u64()?;
    m.finished()?;
    if key != expect_key.0 {
        return Err(ArtifactError::KeyMismatch {
            file,
            found: key,
            expected: expect_key.0,
        });
    }

    let stations_buf = r.chunk("stations")?;
    let mut sr = ByteReader::new(&stations_buf, &file, "stations");
    let mut headers = Vec::with_capacity(nrec);
    for _ in 0..nrec {
        let name_len = sr.u64()? as usize;
        let name_bytes = sr.take(name_len)?;
        let station = String::from_utf8(name_bytes.to_vec())
            .map_err(|_| sr.format_err("station name is not UTF-8"))?;
        let dt = sr.f64()?;
        let nsamp = sr.u64()? as usize;
        headers.push((station, dt, nsamp));
    }
    sr.finished()?;

    let data_buf = r.chunk("data")?;
    if !data_buf.len().is_multiple_of(4) {
        return Err(ArtifactError::Format {
            file,
            detail: format!("chunk 'data' length {} is not f32-aligned", data_buf.len()),
        });
    }
    let flat: Vec<f32> = data_buf
        .chunks_exact(4)
        .map(|c| f32::from_le_bytes(c.try_into().unwrap()))
        .collect();
    let total: usize = headers.iter().map(|(_, _, n)| n * 3).sum();
    if flat.len() != total {
        return Err(ArtifactError::Format {
            file,
            detail: format!(
                "chunk 'data' holds {} f32s, headers claim {total}",
                flat.len()
            ),
        });
    }
    let mut seismograms = Vec::with_capacity(nrec);
    let mut off = 0usize;
    for (station, dt, nsamp) in headers {
        let data: Vec<[f32; 3]> = flat[off..off + nsamp * 3]
            .chunks_exact(3)
            .map(|c| [c[0], c[1], c[2]])
            .collect();
        off += nsamp * 3;
        seismograms.push(Seismogram { station, dt, data });
    }
    Ok(CachedResult {
        seismograms,
        element_steps,
    })
}

/// Serialize a result to an in-memory container (kind `"RSLT"`).
pub fn encode_result(key: ResultKey, result: &CachedResult) -> Vec<u8> {
    let mut w = ContainerWriter::new(
        Cursor::new(Vec::new()),
        "<memory>",
        RESULT_KIND,
        RESULT_FORMAT_VERSION,
    )
    .expect("in-memory container");
    write_chunks(&mut w, key, result).expect("in-memory container");
    let (cur, _) = w.finish().expect("in-memory container");
    cur.into_inner()
}

/// Deserialize a result from bytes, rejecting bad magic, versions,
/// truncation, checksum mismatches, and mis-keyed artifacts.
pub fn decode_result(buf: &[u8], expect_key: ResultKey) -> Result<CachedResult, ArtifactError> {
    let mut r = ContainerReader::new(Cursor::new(buf), "<memory>")?;
    read_result(&mut r, expect_key)
}

/// Where a served result came from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ResultCacheOutcome {
    /// Resident in the memory tier.
    MemHit,
    /// Loaded from the disk tier (and promoted to memory).
    DiskHit,
    /// Not cached — the caller must solve.
    Miss,
}

impl ResultCacheOutcome {
    /// Stable lower-case label for reports and metrics.
    pub fn as_str(&self) -> &'static str {
        match self {
            ResultCacheOutcome::MemHit => "mem_hit",
            ResultCacheOutcome::DiskHit => "disk_hit",
            ResultCacheOutcome::Miss => "miss",
        }
    }
}

/// Hit/miss/eviction counters for one cache instance.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ResultCacheStats {
    /// Memory-tier hits.
    pub mem_hits: u64,
    /// Disk-tier hits (promoted to memory).
    pub disk_hits: u64,
    /// Full misses.
    pub misses: u64,
    /// Inserts.
    pub inserts: u64,
    /// Memory-tier evictions forced by the byte budget.
    pub evictions: u64,
}

struct MemEntry {
    value: Arc<CachedResult>,
    bytes: usize,
    tick: u64,
}

struct MemTier {
    map: HashMap<ResultKey, MemEntry>,
    bytes: usize,
    budget: usize,
    tick: u64,
    stats: ResultCacheStats,
}

impl MemTier {
    fn touch(&mut self, key: ResultKey) -> Option<Arc<CachedResult>> {
        self.tick += 1;
        let tick = self.tick;
        self.map.get_mut(&key).map(|e| {
            e.tick = tick;
            Arc::clone(&e.value)
        })
    }

    /// Insert under the byte budget, evicting least-recently-used entries.
    /// The newest entry is always admitted, even alone over budget — a
    /// cache that refuses the answer it just computed is useless.
    fn insert(&mut self, key: ResultKey, value: Arc<CachedResult>) {
        let bytes = value.approx_bytes();
        self.tick += 1;
        if let Some(old) = self.map.insert(
            key,
            MemEntry {
                value,
                bytes,
                tick: self.tick,
            },
        ) {
            self.bytes -= old.bytes;
        }
        self.bytes += bytes;
        self.stats.inserts += 1;
        while self.bytes > self.budget && self.map.len() > 1 {
            let victim = self
                .map
                .iter()
                .min_by_key(|(_, e)| e.tick)
                .map(|(k, _)| *k)
                .expect("non-empty map");
            if victim == key {
                break;
            }
            let gone = self.map.remove(&victim).expect("victim present");
            self.bytes -= gone.bytes;
            self.stats.evictions += 1;
        }
    }
}

/// The two-tier content-addressed result cache.
pub struct ResultCache {
    dir: PathBuf,
    mem: Mutex<MemTier>,
}

impl ResultCache {
    /// Open (creating if needed) a cache over `dir` with a memory-tier
    /// byte budget.
    pub fn new(dir: impl Into<PathBuf>, budget_bytes: usize) -> Result<Self, ArtifactError> {
        let dir = dir.into();
        fs::create_dir_all(&dir)
            .map_err(|e| io_err(&dir.display().to_string(), "create result cache dir", e))?;
        Ok(Self {
            dir,
            mem: Mutex::new(MemTier {
                map: HashMap::new(),
                bytes: 0,
                budget: budget_bytes.max(1),
                tick: 0,
                stats: ResultCacheStats::default(),
            }),
        })
    }

    /// The directory backing the disk tier.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Path the artifact for `key` lives at.
    pub fn path_for(&self, key: ResultKey) -> PathBuf {
        self.dir.join(format!("result_{}.sfrc", key.hex()))
    }

    /// Look up `key`: memory first, then disk (promoting on hit). A
    /// corrupt disk entry is evicted and reported as a miss via the shared
    /// fallback walk.
    pub fn get(&self, key: ResultKey) -> (Option<Arc<CachedResult>>, ResultCacheOutcome) {
        let _span = specfem_obs::span("io.result_cache.get");
        {
            let mut mem = self.mem.lock().unwrap();
            if let Some(v) = mem.touch(key) {
                mem.stats.mem_hits += 1;
                specfem_obs::counter_add("io.result_cache_mem_hits", 1);
                return (Some(v), ResultCacheOutcome::MemHit);
            }
        }
        let scan = crate::generation::load_latest_good(
            [key],
            "io.result_artifact_fallbacks",
            |k| self.load_disk(*k),
            |k, _| self.evict_disk(*k),
        );
        match scan.value {
            Some(result) => {
                let value = Arc::new(result);
                let mut mem = self.mem.lock().unwrap();
                mem.insert(key, Arc::clone(&value));
                mem.stats.disk_hits += 1;
                specfem_obs::counter_add("io.result_cache_disk_hits", 1);
                (Some(value), ResultCacheOutcome::DiskHit)
            }
            None => {
                self.mem.lock().unwrap().stats.misses += 1;
                specfem_obs::counter_add("io.result_cache_misses", 1);
                (None, ResultCacheOutcome::Miss)
            }
        }
    }

    /// File a freshly solved result under `key` in both tiers. Returns the
    /// shared handle the caller responds with.
    pub fn put(
        &self,
        key: ResultKey,
        result: CachedResult,
    ) -> Result<Arc<CachedResult>, ArtifactError> {
        let _span = specfem_obs::span("io.result_cache.put");
        let bytes = write_container_atomic(
            &self.path_for(key),
            RESULT_KIND,
            RESULT_FORMAT_VERSION,
            |w| write_chunks(w, key, &result),
        )?;
        specfem_obs::counter_add("io.result_artifacts_written", 1);
        specfem_obs::counter_add("io.bytes_written", bytes);
        let value = Arc::new(result);
        self.mem.lock().unwrap().insert(key, Arc::clone(&value));
        Ok(value)
    }

    /// Raw disk-tier load: `Ok(None)` when absent, typed error when bad.
    fn load_disk(&self, key: ResultKey) -> Result<Option<CachedResult>, ArtifactError> {
        let path = self.path_for(key);
        if !path.exists() {
            return Ok(None);
        }
        let mut r = ContainerReader::open(&path)?;
        specfem_obs::counter_add(
            "io.bytes_read",
            fs::metadata(&path).map(|m| m.len()).unwrap_or(0),
        );
        read_result(&mut r, key).map(Some)
    }

    /// Remove the disk artifact for `key`, if present.
    pub fn evict_disk(&self, key: ResultKey) {
        let _ = fs::remove_file(self.path_for(key));
    }

    /// Drop the memory tier (the disk tier survives) — the restart-
    /// without-re-solving scenario in tests.
    pub fn clear_memory(&self) {
        let mut mem = self.mem.lock().unwrap();
        mem.map.clear();
        mem.bytes = 0;
    }

    /// Resident bytes in the memory tier.
    pub fn memory_bytes(&self) -> usize {
        self.mem.lock().unwrap().bytes
    }

    /// Counters since construction.
    pub fn stats(&self) -> ResultCacheStats {
        self.mem.lock().unwrap().stats
    }

    /// Apply an [`ArtifactFaultKind`] to the artifact on disk (test hook).
    pub fn damage(&self, key: ResultKey, kind: ArtifactFaultKind) {
        crate::checkpoint::apply_artifact_fault(&self.path_for(key), kind);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(tag: &str, nsamp: usize) -> CachedResult {
        let data: Vec<[f32; 3]> = (0..nsamp)
            .map(|i| {
                let t = i as f32 * 0.01;
                [t.sin(), (2.0 * t).cos(), t * 1.5e-3]
            })
            .collect();
        CachedResult {
            seismograms: vec![
                Seismogram {
                    station: format!("{tag}_A"),
                    dt: 0.05,
                    data: data.clone(),
                },
                Seismogram {
                    station: format!("{tag}_B"),
                    dt: 0.05,
                    data,
                },
            ],
            element_steps: 12_345,
        }
    }

    fn tmp_cache(tag: &str, budget: usize) -> ResultCache {
        let dir = std::env::temp_dir().join(format!("specfem_result_cache_{tag}"));
        let _ = fs::remove_dir_all(&dir);
        ResultCache::new(dir, budget).unwrap()
    }

    #[test]
    fn roundtrip_is_bit_identical() {
        let cache = tmp_cache("roundtrip", 1 << 20);
        let key = ResultKey(0xfeed_beef_dead_cafe);
        let result = sample("RT", 200);
        cache.put(key, result.clone()).unwrap();
        // Memory tier.
        let (hit, outcome) = cache.get(key);
        assert_eq!(outcome, ResultCacheOutcome::MemHit);
        assert_eq!(*hit.unwrap(), result);
        // Disk tier: forget memory, reload, compare bit patterns.
        cache.clear_memory();
        let (hit, outcome) = cache.get(key);
        assert_eq!(outcome, ResultCacheOutcome::DiskHit);
        let back = hit.unwrap();
        for (a, b) in back.seismograms.iter().zip(&result.seismograms) {
            assert_eq!(a.station, b.station);
            assert_eq!(a.dt.to_bits(), b.dt.to_bits());
            assert_eq!(a.data.len(), b.data.len());
            for (x, y) in a.data.iter().zip(&b.data) {
                for c in 0..3 {
                    assert_eq!(x[c].to_bits(), y[c].to_bits());
                }
            }
        }
        assert_eq!(back.element_steps, result.element_steps);
        let _ = fs::remove_dir_all(cache.dir());
    }

    #[test]
    fn miss_then_promote() {
        let cache = tmp_cache("promote", 1 << 20);
        let key = ResultKey(7);
        assert_eq!(cache.get(key).1, ResultCacheOutcome::Miss);
        cache.put(key, sample("P", 10)).unwrap();
        cache.clear_memory();
        assert_eq!(cache.get(key).1, ResultCacheOutcome::DiskHit);
        // Promoted — second read is a memory hit.
        assert_eq!(cache.get(key).1, ResultCacheOutcome::MemHit);
        let stats = cache.stats();
        assert_eq!(stats.misses, 1);
        assert_eq!(stats.disk_hits, 1);
        assert_eq!(stats.mem_hits, 1);
        let _ = fs::remove_dir_all(cache.dir());
    }

    #[test]
    fn lru_byte_budget_evicts_coldest() {
        let one = sample("L", 100).approx_bytes();
        // Room for two entries, not three.
        let cache = tmp_cache("lru", one * 2 + one / 2);
        let (k1, k2, k3) = (ResultKey(1), ResultKey(2), ResultKey(3));
        cache.put(k1, sample("L", 100)).unwrap();
        cache.put(k2, sample("L", 100)).unwrap();
        // Touch k1 so k2 is the LRU victim when k3 arrives.
        assert_eq!(cache.get(k1).1, ResultCacheOutcome::MemHit);
        cache.put(k3, sample("L", 100)).unwrap();
        assert!(cache.memory_bytes() <= one * 2 + one / 2);
        assert_eq!(cache.stats().evictions, 1);
        assert_eq!(cache.get(k1).1, ResultCacheOutcome::MemHit);
        assert_eq!(cache.get(k3).1, ResultCacheOutcome::MemHit);
        // k2 fell out of memory but survives on disk.
        assert_eq!(cache.get(k2).1, ResultCacheOutcome::DiskHit);
        let _ = fs::remove_dir_all(cache.dir());
    }

    #[test]
    fn corrupt_disk_entry_is_evicted_and_missed() {
        let cache = tmp_cache("corrupt", 1 << 20);
        let key = ResultKey(42);
        cache.put(key, sample("C", 50)).unwrap();
        cache.clear_memory();
        for kind in [
            ArtifactFaultKind::BitFlip,
            ArtifactFaultKind::Truncate,
            ArtifactFaultKind::TornHeader,
        ] {
            cache.put(key, sample("C", 50)).unwrap();
            cache.clear_memory();
            cache.damage(key, kind);
            let (value, outcome) = cache.get(key);
            assert!(value.is_none(), "{kind:?}");
            assert_eq!(outcome, ResultCacheOutcome::Miss, "{kind:?}");
            assert!(!cache.path_for(key).exists(), "{kind:?}: must evict");
        }
        let _ = fs::remove_dir_all(cache.dir());
    }

    #[test]
    fn key_mismatch_is_rejected() {
        let cache = tmp_cache("mismatch", 1 << 20);
        let key = ResultKey(1);
        let other = ResultKey(2);
        let bytes = encode_result(key, &sample("M", 10));
        fs::write(cache.path_for(other), &bytes).unwrap();
        let err = decode_result(&bytes, other).unwrap_err();
        assert!(matches!(err, ArtifactError::KeyMismatch { .. }), "{err:?}");
        // Through the cache: evicted, reported as a miss.
        let (value, outcome) = cache.get(other);
        assert!(value.is_none());
        assert_eq!(outcome, ResultCacheOutcome::Miss);
        assert!(!cache.path_for(other).exists());
        let _ = fs::remove_dir_all(cache.dir());
    }
}
