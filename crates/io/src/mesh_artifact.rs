//! On-disk mesh artifacts — the campaign cache's persistent tier.
//!
//! A built [`GlobalMesh`] is the amortizable fixed cost of every run in a
//! campaign; this module makes it a first-class, checksummed artifact (in
//! the spirit of Hapla et al.'s checkpointed DMPlex meshes) so separate
//! campaign processes can share builds through the filesystem.
//!
//! The format follows the checkpoint codec conventions of
//! `specfem_solver::checkpoint`: `"SFMA"` magic, a format version, a
//! little-endian body, and a trailing CRC-32 (IEEE, the same `crc32`) over
//! everything before it. Files are named by the [`MeshKey`]'s fingerprint
//! hex and carry the fingerprint in the header, so a stale or mis-filed
//! artifact can never be silently loaded for the wrong configuration.
//! Writes are atomic (tmp + rename), matching [`super::CheckpointStore`].

use std::fmt;
use std::fs;
use std::io::Write;
use std::path::{Path, PathBuf};

use specfem_gll::GllBasis;
use specfem_mesh::build::ElementHome;
use specfem_mesh::{
    CubeAssignment, ElementOrder, GlobalMesh, LayerPlan, MeshKey, MeshMode, MeshParams, MeshRegion,
    MesherReport, Shell,
};
use specfem_solver::checkpoint::crc32;

/// Current mesh-artifact format version.
pub const MESH_FORMAT_VERSION: u32 = 1;

/// File magic: "SFMA" = SpecFem Mesh Artifact.
pub const MESH_MAGIC: [u8; 4] = *b"SFMA";

/// A mesh-artifact failure (encode, decode, I/O, or key mismatch).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ArtifactError(pub String);

impl fmt::Display for ArtifactError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "mesh artifact error: {}", self.0)
    }
}

impl std::error::Error for ArtifactError {}

fn io_err(context: &str, e: std::io::Error) -> ArtifactError {
    ArtifactError(format!("{context}: {e}"))
}

// ---- scalar / slice encoding helpers (checkpoint codec conventions) ----

fn put_u8(out: &mut Vec<u8>, v: u8) {
    out.push(v);
}

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_f64(out: &mut Vec<u8>, v: f64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_f32_slice(out: &mut Vec<u8>, v: &[f32]) {
    put_u64(out, v.len() as u64);
    for &x in v {
        out.extend_from_slice(&x.to_le_bytes());
    }
}

fn put_u32_slice(out: &mut Vec<u8>, v: &[u32]) {
    put_u64(out, v.len() as u64);
    for &x in v {
        out.extend_from_slice(&x.to_le_bytes());
    }
}

struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], ArtifactError> {
        if self.pos + n > self.buf.len() {
            return Err(ArtifactError(format!(
                "truncated mesh artifact: need {} bytes at offset {}, have {}",
                n,
                self.pos,
                self.buf.len() - self.pos
            )));
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, ArtifactError> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32, ArtifactError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> Result<u64, ArtifactError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn f64(&mut self) -> Result<f64, ArtifactError> {
        Ok(f64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn f32_vec(&mut self) -> Result<Vec<f32>, ArtifactError> {
        let n = self.u64()? as usize;
        let raw = self.take(n * 4)?;
        Ok(raw
            .chunks_exact(4)
            .map(|c| f32::from_le_bytes(c.try_into().unwrap()))
            .collect())
    }

    fn u32_vec(&mut self) -> Result<Vec<u32>, ArtifactError> {
        let n = self.u64()? as usize;
        let raw = self.take(n * 4)?;
        Ok(raw
            .chunks_exact(4)
            .map(|c| u32::from_le_bytes(c.try_into().unwrap()))
            .collect())
    }
}

fn region_tag(r: MeshRegion) -> u8 {
    match r {
        MeshRegion::CrustMantle => 0,
        MeshRegion::OuterCore => 1,
        MeshRegion::InnerCore => 2,
        MeshRegion::CentralCube => 3,
    }
}

fn region_from_tag(t: u8) -> Result<MeshRegion, ArtifactError> {
    Ok(match t {
        0 => MeshRegion::CrustMantle,
        1 => MeshRegion::OuterCore,
        2 => MeshRegion::InnerCore,
        3 => MeshRegion::CentralCube,
        _ => return Err(ArtifactError(format!("bad region tag {t}"))),
    })
}

fn encode_params(out: &mut Vec<u8>, p: &MeshParams) {
    match p.mode {
        MeshMode::Global => {
            put_u8(out, 0);
            put_f64(out, 0.0);
        }
        MeshMode::Regional { r_min } => {
            put_u8(out, 1);
            put_f64(out, r_min);
        }
    }
    put_u64(out, p.nex_xi as u64);
    put_u64(out, p.nproc_xi as u64);
    put_u64(out, p.degree as u64);
    put_f64(out, p.cube_inflation);
    put_f64(out, p.cube_half_width_fraction);
    put_u8(out, p.honor_minor_discontinuities as u8);
    match p.radial_layer_nex {
        Some(n) => {
            put_u8(out, 1);
            put_u64(out, n as u64);
        }
        None => {
            put_u8(out, 0);
            put_u64(out, 0);
        }
    }
    put_u8(
        out,
        match p.cube_assignment {
            CubeAssignment::SingleRank => 0,
            CubeAssignment::TwoRanks => 1,
        },
    );
    match p.element_order {
        ElementOrder::Natural => {
            put_u8(out, 0);
            put_u64(out, 0);
        }
        ElementOrder::Random(seed) => {
            put_u8(out, 1);
            put_u64(out, seed);
        }
        ElementOrder::CuthillMcKee => {
            put_u8(out, 2);
            put_u64(out, 0);
        }
        ElementOrder::MultilevelCuthillMcKee { block } => {
            put_u8(out, 3);
            put_u64(out, block as u64);
        }
    }
    put_u8(out, p.legacy_two_pass_materials as u8);
}

fn decode_params(r: &mut Reader<'_>) -> Result<MeshParams, ArtifactError> {
    let mode_tag = r.u8()?;
    let r_min = r.f64()?;
    let mode = match mode_tag {
        0 => MeshMode::Global,
        1 => MeshMode::Regional { r_min },
        t => return Err(ArtifactError(format!("bad mode tag {t}"))),
    };
    let nex_xi = r.u64()? as usize;
    let nproc_xi = r.u64()? as usize;
    let degree = r.u64()? as usize;
    let cube_inflation = r.f64()?;
    let cube_half_width_fraction = r.f64()?;
    let honor_minor_discontinuities = r.u8()? != 0;
    let has_radial = r.u8()? != 0;
    let radial = r.u64()? as usize;
    let radial_layer_nex = has_radial.then_some(radial);
    let cube_assignment = match r.u8()? {
        0 => CubeAssignment::SingleRank,
        1 => CubeAssignment::TwoRanks,
        t => return Err(ArtifactError(format!("bad cube-assignment tag {t}"))),
    };
    let order_tag = r.u8()?;
    let order_arg = r.u64()?;
    let element_order = match order_tag {
        0 => ElementOrder::Natural,
        1 => ElementOrder::Random(order_arg),
        2 => ElementOrder::CuthillMcKee,
        3 => ElementOrder::MultilevelCuthillMcKee {
            block: order_arg as usize,
        },
        t => return Err(ArtifactError(format!("bad element-order tag {t}"))),
    };
    let legacy_two_pass_materials = r.u8()? != 0;
    Ok(MeshParams {
        mode,
        nex_xi,
        nproc_xi,
        degree,
        cube_inflation,
        cube_half_width_fraction,
        honor_minor_discontinuities,
        radial_layer_nex,
        cube_assignment,
        element_order,
        legacy_two_pass_materials,
    })
}

/// Serialize a built mesh to the versioned, checksummed artifact format.
/// `fingerprint` is the full [`MeshKey`] fingerprint the artifact is filed
/// under; it is stored in the header and re-verified at load.
pub fn encode_mesh(mesh: &GlobalMesh, fingerprint: u64) -> Vec<u8> {
    let mut out = Vec::new();
    out.extend_from_slice(&MESH_MAGIC);
    put_u32(&mut out, MESH_FORMAT_VERSION);
    put_u64(&mut out, fingerprint);
    encode_params(&mut out, &mesh.params);
    put_u64(&mut out, mesh.nspec as u64);
    put_u64(&mut out, mesh.nglob as u64);
    put_u32_slice(&mut out, &mesh.ibool);
    put_u64(&mut out, mesh.coords.len() as u64);
    for p in &mesh.coords {
        for &x in p {
            put_f64(&mut out, x);
        }
    }
    put_u64(&mut out, mesh.region.len() as u64);
    for &reg in &mesh.region {
        put_u8(&mut out, region_tag(reg));
    }
    put_u64(&mut out, mesh.home.len() as u64);
    for &h in &mesh.home {
        match h {
            ElementHome::Shell { chunk, ix, iy } => {
                put_u8(&mut out, 0);
                put_u8(&mut out, chunk);
                out.extend_from_slice(&ix.to_le_bytes());
                out.extend_from_slice(&iy.to_le_bytes());
                out.extend_from_slice(&0u16.to_le_bytes());
            }
            ElementHome::Cube { i, j, k } => {
                put_u8(&mut out, 1);
                put_u8(&mut out, 0);
                out.extend_from_slice(&i.to_le_bytes());
                out.extend_from_slice(&j.to_le_bytes());
                out.extend_from_slice(&k.to_le_bytes());
            }
        }
    }
    put_f32_slice(&mut out, &mesh.rho);
    put_f32_slice(&mut out, &mesh.kappa);
    put_f32_slice(&mut out, &mesh.mu);
    put_f32_slice(&mut out, &mesh.qmu);
    // Layer plan.
    put_u64(&mut out, mesh.layer_plan.shells.len() as u64);
    for s in &mesh.layer_plan.shells {
        put_f64(&mut out, s.r_in);
        put_f64(&mut out, s.r_out);
        put_u8(&mut out, region_tag(s.region));
        put_u64(&mut out, s.n_layers as u64);
    }
    put_f64(&mut out, mesh.layer_plan.cube_half_width);
    // Mesher report (provenance: what the original build cost).
    put_f64(&mut out, mesh.report.geometry_seconds);
    put_f64(&mut out, mesh.report.material_seconds);
    put_f64(&mut out, mesh.report.numbering_seconds);
    put_u8(&mut out, mesh.report.passes);
    for &n in &mesh.report.elements_per_region {
        put_u64(&mut out, n as u64);
    }
    let crc = crc32(&out);
    put_u32(&mut out, crc);
    out
}

/// Deserialize an artifact, rejecting bad magic, unknown versions,
/// truncation, checksum mismatches, and — when `expect_fingerprint` is
/// given — artifacts filed under a different mesh key.
pub fn decode_mesh(
    buf: &[u8],
    expect_fingerprint: Option<u64>,
) -> Result<GlobalMesh, ArtifactError> {
    if buf.len() < MESH_MAGIC.len() + 8 {
        return Err(ArtifactError(format!(
            "file too short ({} bytes) to be a mesh artifact",
            buf.len()
        )));
    }
    let (body, crc_bytes) = buf.split_at(buf.len() - 4);
    let stored = u32::from_le_bytes(crc_bytes.try_into().unwrap());
    let computed = crc32(body);
    if stored != computed {
        return Err(ArtifactError(format!(
            "checksum mismatch: stored {stored:#010x}, computed {computed:#010x}"
        )));
    }
    let mut r = Reader { buf: body, pos: 0 };
    let magic = r.take(4)?;
    if magic != MESH_MAGIC {
        return Err(ArtifactError(format!("bad magic {magic:?}")));
    }
    let version = r.u32()?;
    if version != MESH_FORMAT_VERSION {
        return Err(ArtifactError(format!(
            "unsupported mesh format version {version} (this build reads {MESH_FORMAT_VERSION})"
        )));
    }
    let fingerprint = r.u64()?;
    if let Some(expect) = expect_fingerprint {
        if fingerprint != expect {
            return Err(ArtifactError(format!(
                "mesh key mismatch: artifact {fingerprint:016x}, expected {expect:016x}"
            )));
        }
    }
    let params = decode_params(&mut r)?;
    let nspec = r.u64()? as usize;
    let nglob = r.u64()? as usize;
    let ibool = r.u32_vec()?;
    let ncoords = r.u64()? as usize;
    let raw = r.take(ncoords * 24)?;
    let coords: Vec<[f64; 3]> = raw
        .chunks_exact(24)
        .map(|c| {
            [
                f64::from_le_bytes(c[0..8].try_into().unwrap()),
                f64::from_le_bytes(c[8..16].try_into().unwrap()),
                f64::from_le_bytes(c[16..24].try_into().unwrap()),
            ]
        })
        .collect();
    let nregion = r.u64()? as usize;
    let mut region = Vec::with_capacity(nregion);
    for _ in 0..nregion {
        region.push(region_from_tag(r.u8()?)?);
    }
    let nhome = r.u64()? as usize;
    let mut home = Vec::with_capacity(nhome);
    for _ in 0..nhome {
        let tag = r.u8()?;
        let b = r.u8()?;
        let raw = r.take(6)?;
        let a = u16::from_le_bytes(raw[0..2].try_into().unwrap());
        let c = u16::from_le_bytes(raw[2..4].try_into().unwrap());
        let d = u16::from_le_bytes(raw[4..6].try_into().unwrap());
        home.push(match tag {
            0 => ElementHome::Shell {
                chunk: b,
                ix: a,
                iy: c,
            },
            1 => ElementHome::Cube { i: a, j: c, k: d },
            t => return Err(ArtifactError(format!("bad element-home tag {t}"))),
        });
    }
    let rho = r.f32_vec()?;
    let kappa = r.f32_vec()?;
    let mu = r.f32_vec()?;
    let qmu = r.f32_vec()?;
    let nshells = r.u64()? as usize;
    let mut shells = Vec::with_capacity(nshells);
    for _ in 0..nshells {
        let r_in = r.f64()?;
        let r_out = r.f64()?;
        let reg = region_from_tag(r.u8()?)?;
        let n_layers = r.u64()? as usize;
        shells.push(Shell {
            r_in,
            r_out,
            region: reg,
            n_layers,
        });
    }
    let cube_half_width = r.f64()?;
    let geometry_seconds = r.f64()?;
    let material_seconds = r.f64()?;
    let numbering_seconds = r.f64()?;
    let passes = r.u8()?;
    let mut elements_per_region = [0usize; 4];
    for slot in &mut elements_per_region {
        *slot = r.u64()? as usize;
    }
    if r.pos != body.len() {
        return Err(ArtifactError(format!(
            "{} trailing bytes after mesh artifact body",
            body.len() - r.pos
        )));
    }
    let basis = GllBasis::new(params.degree);
    Ok(GlobalMesh {
        basis,
        params,
        nspec,
        nglob,
        ibool,
        coords,
        region,
        home,
        rho,
        kappa,
        mu,
        qmu,
        layer_plan: LayerPlan {
            shells,
            cube_half_width,
        },
        report: MesherReport {
            geometry_seconds,
            material_seconds,
            numbering_seconds,
            passes,
            elements_per_region,
        },
    })
}

/// A directory of content-addressed mesh artifacts, one file per
/// [`MeshKey`]: `mesh_<fingerprint hex>.sfma`.
#[derive(Debug, Clone)]
pub struct MeshArtifactStore {
    dir: PathBuf,
}

impl MeshArtifactStore {
    /// Open (creating if needed) an artifact directory.
    pub fn new(dir: impl Into<PathBuf>) -> Result<Self, ArtifactError> {
        let dir = dir.into();
        fs::create_dir_all(&dir).map_err(|e| io_err("create mesh artifact dir", e))?;
        Ok(Self { dir })
    }

    /// The directory backing this store.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Path the artifact for `key` lives at.
    pub fn path_for(&self, key: &MeshKey) -> PathBuf {
        self.dir.join(format!("mesh_{}.sfma", key.hex()))
    }

    /// Persist a built mesh under its key (atomic tmp + rename).
    pub fn save(&self, key: &MeshKey, mesh: &GlobalMesh) -> Result<PathBuf, ArtifactError> {
        let _span = specfem_obs::span("io.mesh_artifact.save");
        let bytes = encode_mesh(mesh, key.fingerprint());
        let path = self.path_for(key);
        let tmp = path.with_extension("sfma.tmp");
        {
            let mut f = fs::File::create(&tmp)
                .map_err(|e| io_err(&format!("create {}", tmp.display()), e))?;
            f.write_all(&bytes)
                .map_err(|e| io_err(&format!("write {}", tmp.display()), e))?;
            f.sync_all()
                .map_err(|e| io_err(&format!("sync {}", tmp.display()), e))?;
        }
        fs::rename(&tmp, &path)
            .map_err(|e| io_err(&format!("rename into {}", path.display()), e))?;
        specfem_obs::counter_add("io.mesh_artifacts_written", 1);
        specfem_obs::counter_add("io.bytes_written", bytes.len() as u64);
        Ok(path)
    }

    /// Load the mesh filed under `key`. `Ok(None)` when no artifact exists;
    /// corrupt or mis-keyed artifacts are a typed error (callers usually
    /// [`MeshArtifactStore::evict`] and rebuild).
    pub fn load(&self, key: &MeshKey) -> Result<Option<GlobalMesh>, ArtifactError> {
        let _span = specfem_obs::span("io.mesh_artifact.load");
        let path = self.path_for(key);
        let bytes = match fs::read(&path) {
            Ok(b) => b,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
            Err(e) => return Err(io_err(&format!("read {}", path.display()), e)),
        };
        specfem_obs::counter_add("io.bytes_read", bytes.len() as u64);
        decode_mesh(&bytes, Some(key.fingerprint())).map(Some)
    }

    /// Remove the artifact for `key`, if present.
    pub fn evict(&self, key: &MeshKey) {
        let _ = fs::remove_file(self.path_for(key));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use specfem_model::Prem;

    fn small_mesh() -> GlobalMesh {
        let params = MeshParams::new(4, 2);
        GlobalMesh::build(&params, &Prem::isotropic_no_ocean())
    }

    fn tmp_store(tag: &str) -> MeshArtifactStore {
        let dir = std::env::temp_dir().join(format!("specfem_mesh_artifact_{tag}"));
        let _ = fs::remove_dir_all(&dir);
        MeshArtifactStore::new(dir).unwrap()
    }

    #[test]
    fn roundtrip_is_bit_identical() {
        let mesh = small_mesh();
        let key = MeshKey::new(&mesh.params, "prem_iso");
        let store = tmp_store("roundtrip");
        store.save(&key, &mesh).unwrap();
        let back = store.load(&key).unwrap().expect("artifact present");
        assert_eq!(back.nspec, mesh.nspec);
        assert_eq!(back.nglob, mesh.nglob);
        assert_eq!(back.ibool, mesh.ibool);
        assert_eq!(back.coords, mesh.coords);
        assert_eq!(back.rho, mesh.rho);
        assert_eq!(back.kappa, mesh.kappa);
        assert_eq!(back.mu, mesh.mu);
        assert_eq!(back.qmu, mesh.qmu);
        assert_eq!(back.region, mesh.region);
        assert_eq!(back.home, mesh.home);
        assert_eq!(back.params.nex_xi, mesh.params.nex_xi);
        assert_eq!(back.params.element_order, mesh.params.element_order);
        assert_eq!(back.layer_plan.shells.len(), mesh.layer_plan.shells.len());
        assert_eq!(
            specfem_mesh::content_hash(&back),
            specfem_mesh::content_hash(&mesh)
        );
        let _ = fs::remove_dir_all(store.dir());
    }

    #[test]
    fn missing_artifact_is_none() {
        let store = tmp_store("missing");
        let key = MeshKey::new(&MeshParams::new(4, 1), "prem_iso");
        assert_eq!(store.load(&key).unwrap().map(|m| m.nspec), None);
        let _ = fs::remove_dir_all(store.dir());
    }

    #[test]
    fn corruption_and_key_mismatch_are_rejected() {
        let mesh = small_mesh();
        let key = MeshKey::new(&mesh.params, "prem_iso");
        let store = tmp_store("corrupt");
        let path = store.save(&key, &mesh).unwrap();
        // Bit flip → checksum error.
        let mut bytes = fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x01;
        fs::write(&path, &bytes).unwrap();
        let err = store.load(&key).unwrap_err();
        assert!(err.0.contains("checksum"), "{err}");
        // Valid bytes filed under the wrong key → key mismatch.
        store.evict(&key);
        let other = MeshKey::new(&MeshParams::new(8, 2), "prem_iso");
        let valid = encode_mesh(&mesh, key.fingerprint());
        fs::write(store.path_for(&other), &valid).unwrap();
        let err = store.load(&other).unwrap_err();
        assert!(err.0.contains("key mismatch"), "{err}");
        let _ = fs::remove_dir_all(store.dir());
    }

    #[test]
    fn evict_removes_the_file() {
        let mesh = small_mesh();
        let key = MeshKey::new(&mesh.params, "prem_iso");
        let store = tmp_store("evict");
        let path = store.save(&key, &mesh).unwrap();
        assert!(path.exists());
        store.evict(&key);
        assert!(!path.exists());
        assert!(store.load(&key).unwrap().is_none());
        let _ = fs::remove_dir_all(store.dir());
    }
}
