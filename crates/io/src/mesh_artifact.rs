//! On-disk mesh artifacts — the campaign cache's persistent tier.
//!
//! A built [`GlobalMesh`] is the amortizable fixed cost of every run in a
//! campaign; this module makes it a first-class, checksummed artifact (in
//! the spirit of Hapla et al.'s checkpointed DMPlex meshes) so separate
//! campaign processes can share builds through the filesystem.
//!
//! Since the container unification the payload lives in the shared `"SFCN"`
//! chunk format of [`crate::container`] (kind `"MESH"`): each mesh array is
//! its own CRC-guarded chunk, so a bit flip is pinned to a named chunk with
//! expected-vs-actual checksums. Files are named by the [`MeshKey`]'s
//! fingerprint hex and carry the fingerprint in the `meta` chunk, so a
//! stale or mis-filed artifact can never be silently loaded for the wrong
//! configuration. Writes are atomic (tmp + fsync + rename), matching
//! [`super::CheckpointStore`].

use std::fs;
use std::io::Cursor;
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex};

use specfem_comm::{ArtifactFaultKind, FaultPlan};
use specfem_gll::GllBasis;
use specfem_mesh::build::ElementHome;
use specfem_mesh::{
    CubeAssignment, ElementOrder, GlobalMesh, LayerPlan, MeshKey, MeshMode, MeshParams, MeshRegion,
    MesherReport, Shell,
};

use crate::container::{
    io_err, put_f64, put_u64, put_u8, write_container_atomic, ArtifactError, ByteReader,
    ContainerReader, ContainerWriter,
};

/// Container kind tag for mesh artifacts.
pub const MESH_KIND: [u8; 4] = *b"MESH";

/// Version of the mesh payload layout.
pub const MESH_FORMAT_VERSION: u32 = 2;

fn region_tag(r: MeshRegion) -> u8 {
    match r {
        MeshRegion::CrustMantle => 0,
        MeshRegion::OuterCore => 1,
        MeshRegion::InnerCore => 2,
        MeshRegion::CentralCube => 3,
    }
}

fn region_from_tag(r: &ByteReader<'_>, t: u8) -> Result<MeshRegion, ArtifactError> {
    Ok(match t {
        0 => MeshRegion::CrustMantle,
        1 => MeshRegion::OuterCore,
        2 => MeshRegion::InnerCore,
        3 => MeshRegion::CentralCube,
        _ => return Err(r.format_err(format!("bad region tag {t}"))),
    })
}

fn encode_params(out: &mut Vec<u8>, p: &MeshParams) {
    match p.mode {
        MeshMode::Global => {
            put_u8(out, 0);
            put_f64(out, 0.0);
        }
        MeshMode::Regional { r_min } => {
            put_u8(out, 1);
            put_f64(out, r_min);
        }
    }
    put_u64(out, p.nex_xi as u64);
    put_u64(out, p.nproc_xi as u64);
    put_u64(out, p.degree as u64);
    put_f64(out, p.cube_inflation);
    put_f64(out, p.cube_half_width_fraction);
    put_u8(out, p.honor_minor_discontinuities as u8);
    match p.radial_layer_nex {
        Some(n) => {
            put_u8(out, 1);
            put_u64(out, n as u64);
        }
        None => {
            put_u8(out, 0);
            put_u64(out, 0);
        }
    }
    put_u8(
        out,
        match p.cube_assignment {
            CubeAssignment::SingleRank => 0,
            CubeAssignment::TwoRanks => 1,
        },
    );
    match p.element_order {
        ElementOrder::Natural => {
            put_u8(out, 0);
            put_u64(out, 0);
        }
        ElementOrder::Random(seed) => {
            put_u8(out, 1);
            put_u64(out, seed);
        }
        ElementOrder::CuthillMcKee => {
            put_u8(out, 2);
            put_u64(out, 0);
        }
        ElementOrder::MultilevelCuthillMcKee { block } => {
            put_u8(out, 3);
            put_u64(out, block as u64);
        }
    }
    put_u8(out, p.legacy_two_pass_materials as u8);
}

fn decode_params(r: &mut ByteReader<'_>) -> Result<MeshParams, ArtifactError> {
    let mode_tag = r.u8()?;
    let r_min = r.f64()?;
    let mode = match mode_tag {
        0 => MeshMode::Global,
        1 => MeshMode::Regional { r_min },
        t => return Err(r.format_err(format!("bad mode tag {t}"))),
    };
    let nex_xi = r.u64()? as usize;
    let nproc_xi = r.u64()? as usize;
    let degree = r.u64()? as usize;
    let cube_inflation = r.f64()?;
    let cube_half_width_fraction = r.f64()?;
    let honor_minor_discontinuities = r.u8()? != 0;
    let has_radial = r.u8()? != 0;
    let radial = r.u64()? as usize;
    let radial_layer_nex = has_radial.then_some(radial);
    let cube_assignment = match r.u8()? {
        0 => CubeAssignment::SingleRank,
        1 => CubeAssignment::TwoRanks,
        t => return Err(r.format_err(format!("bad cube-assignment tag {t}"))),
    };
    let order_tag = r.u8()?;
    let order_arg = r.u64()?;
    let element_order = match order_tag {
        0 => ElementOrder::Natural,
        1 => ElementOrder::Random(order_arg),
        2 => ElementOrder::CuthillMcKee,
        3 => ElementOrder::MultilevelCuthillMcKee {
            block: order_arg as usize,
        },
        t => return Err(r.format_err(format!("bad element-order tag {t}"))),
    };
    let legacy_two_pass_materials = r.u8()? != 0;
    Ok(MeshParams {
        mode,
        nex_xi,
        nproc_xi,
        degree,
        cube_inflation,
        cube_half_width_fraction,
        honor_minor_discontinuities,
        radial_layer_nex,
        cube_assignment,
        element_order,
        legacy_two_pass_materials,
    })
}

fn raw_f32s(v: &[f32]) -> Vec<u8> {
    let mut out = Vec::with_capacity(v.len() * 4);
    for &x in v {
        out.extend_from_slice(&x.to_le_bytes());
    }
    out
}

fn raw_u32s(v: &[u32]) -> Vec<u8> {
    let mut out = Vec::with_capacity(v.len() * 4);
    for &x in v {
        out.extend_from_slice(&x.to_le_bytes());
    }
    out
}

fn from_raw_f32s(buf: &[u8], file: &str, name: &str) -> Result<Vec<f32>, ArtifactError> {
    if !buf.len().is_multiple_of(4) {
        return Err(ArtifactError::Format {
            file: file.to_string(),
            detail: format!("chunk '{name}' length {} is not f32-aligned", buf.len()),
        });
    }
    Ok(buf
        .chunks_exact(4)
        .map(|c| f32::from_le_bytes(c.try_into().unwrap()))
        .collect())
}

fn from_raw_u32s(buf: &[u8], file: &str, name: &str) -> Result<Vec<u32>, ArtifactError> {
    if !buf.len().is_multiple_of(4) {
        return Err(ArtifactError::Format {
            file: file.to_string(),
            detail: format!("chunk '{name}' length {} is not u32-aligned", buf.len()),
        });
    }
    Ok(buf
        .chunks_exact(4)
        .map(|c| u32::from_le_bytes(c.try_into().unwrap()))
        .collect())
}

/// Emit every chunk of a mesh payload through `w`.
fn write_chunks<W: std::io::Write>(
    w: &mut ContainerWriter<W>,
    mesh: &GlobalMesh,
    fingerprint: u64,
) -> Result<(), ArtifactError> {
    let mut meta = Vec::new();
    put_u64(&mut meta, fingerprint);
    put_u64(&mut meta, mesh.nspec as u64);
    put_u64(&mut meta, mesh.nglob as u64);
    w.chunk("meta", &meta)?;

    let mut params = Vec::new();
    encode_params(&mut params, &mesh.params);
    w.chunk("params", &params)?;

    w.chunk("ibool", &raw_u32s(&mesh.ibool))?;

    let mut coords = Vec::with_capacity(mesh.coords.len() * 24);
    for p in &mesh.coords {
        for &x in p {
            coords.extend_from_slice(&x.to_le_bytes());
        }
    }
    w.chunk("coords", &coords)?;

    let region: Vec<u8> = mesh.region.iter().map(|&r| region_tag(r)).collect();
    w.chunk("region", &region)?;

    let mut home = Vec::with_capacity(mesh.home.len() * 8);
    for &h in &mesh.home {
        match h {
            ElementHome::Shell { chunk, ix, iy } => {
                home.push(0);
                home.push(chunk);
                home.extend_from_slice(&ix.to_le_bytes());
                home.extend_from_slice(&iy.to_le_bytes());
                home.extend_from_slice(&0u16.to_le_bytes());
            }
            ElementHome::Cube { i, j, k } => {
                home.push(1);
                home.push(0);
                home.extend_from_slice(&i.to_le_bytes());
                home.extend_from_slice(&j.to_le_bytes());
                home.extend_from_slice(&k.to_le_bytes());
            }
        }
    }
    w.chunk("home", &home)?;

    w.chunk("rho", &raw_f32s(&mesh.rho))?;
    w.chunk("kappa", &raw_f32s(&mesh.kappa))?;
    w.chunk("mu", &raw_f32s(&mesh.mu))?;
    w.chunk("qmu", &raw_f32s(&mesh.qmu))?;

    let mut layers = Vec::new();
    put_u64(&mut layers, mesh.layer_plan.shells.len() as u64);
    for s in &mesh.layer_plan.shells {
        put_f64(&mut layers, s.r_in);
        put_f64(&mut layers, s.r_out);
        put_u8(&mut layers, region_tag(s.region));
        put_u64(&mut layers, s.n_layers as u64);
    }
    put_f64(&mut layers, mesh.layer_plan.cube_half_width);
    w.chunk("layers", &layers)?;

    // Mesher report (provenance: what the original build cost).
    let mut report = Vec::new();
    put_f64(&mut report, mesh.report.geometry_seconds);
    put_f64(&mut report, mesh.report.material_seconds);
    put_f64(&mut report, mesh.report.numbering_seconds);
    put_u8(&mut report, mesh.report.passes);
    for &n in &mesh.report.elements_per_region {
        put_u64(&mut report, n as u64);
    }
    w.chunk("report", &report)?;
    Ok(())
}

/// Serialize a built mesh to an in-memory container (kind `"MESH"`).
/// `fingerprint` is the full [`MeshKey`] fingerprint the artifact is filed
/// under; it lives in the `meta` chunk and is re-verified at load.
pub fn encode_mesh(mesh: &GlobalMesh, fingerprint: u64) -> Vec<u8> {
    let mut w = ContainerWriter::new(
        Cursor::new(Vec::new()),
        "<memory>",
        MESH_KIND,
        MESH_FORMAT_VERSION,
    )
    .expect("in-memory container");
    write_chunks(&mut w, mesh, fingerprint).expect("in-memory container");
    let (cur, _) = w.finish().expect("in-memory container");
    cur.into_inner()
}

/// Deserialize a mesh from an already-opened container reader.
fn read_mesh<R: std::io::Read + std::io::Seek>(
    r: &mut ContainerReader<R>,
    expect_fingerprint: Option<u64>,
) -> Result<GlobalMesh, ArtifactError> {
    if r.kind() != MESH_KIND {
        return Err(ArtifactError::Format {
            file: r.file().to_string(),
            detail: format!("container kind {:?} is not a mesh artifact", r.kind()),
        });
    }
    if r.payload_version() != MESH_FORMAT_VERSION {
        return Err(ArtifactError::Version {
            file: r.file().to_string(),
            found: r.payload_version(),
            supported: MESH_FORMAT_VERSION,
        });
    }
    let file = r.file().to_string();
    let meta = r.chunk("meta")?;
    let mut m = ByteReader::new(&meta, &file, "meta");
    let fingerprint = m.u64()?;
    let nspec = m.u64()? as usize;
    let nglob = m.u64()? as usize;
    m.finished()?;
    if let Some(expect) = expect_fingerprint {
        if fingerprint != expect {
            return Err(ArtifactError::KeyMismatch {
                file,
                found: fingerprint,
                expected: expect,
            });
        }
    }

    let params_buf = r.chunk("params")?;
    let mut pr = ByteReader::new(&params_buf, &file, "params");
    let params = decode_params(&mut pr)?;
    pr.finished()?;

    let ibool = from_raw_u32s(&r.chunk("ibool")?, &file, "ibool")?;

    let coords_buf = r.chunk("coords")?;
    if !coords_buf.len().is_multiple_of(24) {
        return Err(ArtifactError::Format {
            file,
            detail: format!(
                "chunk 'coords' length {} is not [f64; 3]-aligned",
                coords_buf.len()
            ),
        });
    }
    let coords: Vec<[f64; 3]> = coords_buf
        .chunks_exact(24)
        .map(|c| {
            [
                f64::from_le_bytes(c[0..8].try_into().unwrap()),
                f64::from_le_bytes(c[8..16].try_into().unwrap()),
                f64::from_le_bytes(c[16..24].try_into().unwrap()),
            ]
        })
        .collect();

    let region_buf = r.chunk("region")?;
    let rr = ByteReader::new(&region_buf, &file, "region");
    let mut region = Vec::with_capacity(region_buf.len());
    for &t in &region_buf {
        region.push(region_from_tag(&rr, t)?);
    }

    let home_buf = r.chunk("home")?;
    let mut hr = ByteReader::new(&home_buf, &file, "home");
    let mut home = Vec::with_capacity(home_buf.len() / 8);
    while hr.finished().is_err() {
        let tag = hr.u8()?;
        let b = hr.u8()?;
        let raw = hr.take(6)?;
        let a = u16::from_le_bytes(raw[0..2].try_into().unwrap());
        let c = u16::from_le_bytes(raw[2..4].try_into().unwrap());
        let d = u16::from_le_bytes(raw[4..6].try_into().unwrap());
        home.push(match tag {
            0 => ElementHome::Shell {
                chunk: b,
                ix: a,
                iy: c,
            },
            1 => ElementHome::Cube { i: a, j: c, k: d },
            t => return Err(hr.format_err(format!("bad element-home tag {t}"))),
        });
    }

    let rho = from_raw_f32s(&r.chunk("rho")?, &file, "rho")?;
    let kappa = from_raw_f32s(&r.chunk("kappa")?, &file, "kappa")?;
    let mu = from_raw_f32s(&r.chunk("mu")?, &file, "mu")?;
    let qmu = from_raw_f32s(&r.chunk("qmu")?, &file, "qmu")?;

    let layers_buf = r.chunk("layers")?;
    let mut lr = ByteReader::new(&layers_buf, &file, "layers");
    let nshells = lr.u64()? as usize;
    let mut shells = Vec::with_capacity(nshells);
    for _ in 0..nshells {
        let r_in = lr.f64()?;
        let r_out = lr.f64()?;
        let reg_tag = lr.u8()?;
        let reg = region_from_tag(&lr, reg_tag)?;
        let n_layers = lr.u64()? as usize;
        shells.push(Shell {
            r_in,
            r_out,
            region: reg,
            n_layers,
        });
    }
    let cube_half_width = lr.f64()?;
    lr.finished()?;

    let report_buf = r.chunk("report")?;
    let mut rp = ByteReader::new(&report_buf, &file, "report");
    let geometry_seconds = rp.f64()?;
    let material_seconds = rp.f64()?;
    let numbering_seconds = rp.f64()?;
    let passes = rp.u8()?;
    let mut elements_per_region = [0usize; 4];
    for slot in &mut elements_per_region {
        *slot = rp.u64()? as usize;
    }
    rp.finished()?;

    let basis = GllBasis::new(params.degree);
    Ok(GlobalMesh {
        basis,
        params,
        nspec,
        nglob,
        ibool,
        coords,
        region,
        home,
        rho,
        kappa,
        mu,
        qmu,
        layer_plan: LayerPlan {
            shells,
            cube_half_width,
        },
        report: MesherReport {
            geometry_seconds,
            material_seconds,
            numbering_seconds,
            passes,
            elements_per_region,
        },
    })
}

/// Deserialize an artifact from bytes, rejecting bad magic, unknown
/// versions, truncation, per-chunk checksum mismatches, and — when
/// `expect_fingerprint` is given — artifacts filed under a different key.
pub fn decode_mesh(
    buf: &[u8],
    expect_fingerprint: Option<u64>,
) -> Result<GlobalMesh, ArtifactError> {
    let mut r = ContainerReader::new(Cursor::new(buf), "<memory>")?;
    read_mesh(&mut r, expect_fingerprint)
}

/// A directory of content-addressed mesh artifacts, one file per
/// [`MeshKey`]: `mesh_<fingerprint hex>.sfma`.
#[derive(Debug, Clone)]
pub struct MeshArtifactStore {
    dir: PathBuf,
    faults: Arc<Mutex<(Option<FaultPlan>, usize)>>,
}

impl MeshArtifactStore {
    /// Open (creating if needed) an artifact directory.
    pub fn new(dir: impl Into<PathBuf>) -> Result<Self, ArtifactError> {
        let dir = dir.into();
        fs::create_dir_all(&dir)
            .map_err(|e| io_err(&dir.display().to_string(), "create mesh artifact dir", e))?;
        Ok(Self {
            dir,
            faults: Arc::new(Mutex::new((None, 0))),
        })
    }

    /// The directory backing this store.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Arm artifact-corruption injection, mirroring
    /// [`super::CheckpointStore::set_fault_plan`]: the n-th completed save
    /// is damaged after it lands.
    pub fn set_fault_plan(&self, plan: FaultPlan) {
        self.faults.lock().unwrap().0 = Some(plan);
    }

    /// Path the artifact for `key` lives at.
    pub fn path_for(&self, key: &MeshKey) -> PathBuf {
        self.dir.join(format!("mesh_{}.sfma", key.hex()))
    }

    /// Persist a built mesh under its key (atomic tmp + fsync + rename).
    pub fn save(&self, key: &MeshKey, mesh: &GlobalMesh) -> Result<PathBuf, ArtifactError> {
        let _span = specfem_obs::span("io.mesh_artifact.save");
        let path = self.path_for(key);
        let bytes = write_container_atomic(&path, MESH_KIND, MESH_FORMAT_VERSION, |w| {
            write_chunks(w, mesh, key.fingerprint())
        })?;
        specfem_obs::counter_add("io.mesh_artifacts_written", 1);
        specfem_obs::counter_add("io.bytes_written", bytes);
        let mut faults = self.faults.lock().unwrap();
        let seq = faults.1;
        faults.1 += 1;
        if let Some(kind) = faults.0.as_ref().and_then(|p| p.artifact_fault(seq)) {
            crate::checkpoint::apply_artifact_fault(&path, kind);
        }
        Ok(path)
    }

    /// Load the mesh filed under `key`. `Ok(None)` when no artifact exists;
    /// corrupt or mis-keyed artifacts are a typed error (callers usually
    /// [`MeshArtifactStore::evict`] and rebuild).
    pub fn load(&self, key: &MeshKey) -> Result<Option<GlobalMesh>, ArtifactError> {
        let _span = specfem_obs::span("io.mesh_artifact.load");
        let path = self.path_for(key);
        if !path.exists() {
            return Ok(None);
        }
        let mut r = ContainerReader::open(&path)?;
        specfem_obs::counter_add(
            "io.bytes_read",
            fs::metadata(&path).map(|m| m.len()).unwrap_or(0),
        );
        read_mesh(&mut r, Some(key.fingerprint())).map(Some)
    }

    /// Fallback-aware load: a corrupt, torn, or mis-keyed artifact is
    /// evicted (so it can't poison the next scan), counted under
    /// `io.mesh_artifact_fallbacks`, and reported as a clean miss — the
    /// caller rebuilds, exactly as it would on a cold cache. Shares the
    /// generation-walk logic with [`super::CheckpointStore`] and the
    /// result cache via [`crate::generation::load_latest_good`].
    pub fn load_or_evict(&self, key: &MeshKey) -> Option<GlobalMesh> {
        crate::generation::load_latest_good(
            [key],
            "io.mesh_artifact_fallbacks",
            |k| self.load(k),
            |k, _| self.evict(k),
        )
        .value
    }

    /// Remove the artifact for `key`, if present.
    pub fn evict(&self, key: &MeshKey) {
        let _ = fs::remove_file(self.path_for(key));
    }

    /// Apply an [`ArtifactFaultKind`] to the artifact on disk (test hook).
    pub fn damage(&self, key: &MeshKey, kind: ArtifactFaultKind) {
        crate::checkpoint::apply_artifact_fault(&self.path_for(key), kind);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use specfem_model::Prem;

    fn small_mesh() -> GlobalMesh {
        let params = MeshParams::new(4, 2);
        GlobalMesh::build(&params, &Prem::isotropic_no_ocean())
    }

    fn tmp_store(tag: &str) -> MeshArtifactStore {
        let dir = std::env::temp_dir().join(format!("specfem_mesh_artifact_{tag}"));
        let _ = fs::remove_dir_all(&dir);
        MeshArtifactStore::new(dir).unwrap()
    }

    #[test]
    fn roundtrip_is_bit_identical() {
        let mesh = small_mesh();
        let key = MeshKey::new(&mesh.params, "prem_iso");
        let store = tmp_store("roundtrip");
        store.save(&key, &mesh).unwrap();
        let back = store.load(&key).unwrap().expect("artifact present");
        assert_eq!(back.nspec, mesh.nspec);
        assert_eq!(back.nglob, mesh.nglob);
        assert_eq!(back.ibool, mesh.ibool);
        assert_eq!(back.coords, mesh.coords);
        assert_eq!(back.rho, mesh.rho);
        assert_eq!(back.kappa, mesh.kappa);
        assert_eq!(back.mu, mesh.mu);
        assert_eq!(back.qmu, mesh.qmu);
        assert_eq!(back.region, mesh.region);
        assert_eq!(back.home, mesh.home);
        assert_eq!(back.params.nex_xi, mesh.params.nex_xi);
        assert_eq!(back.params.element_order, mesh.params.element_order);
        assert_eq!(back.layer_plan.shells.len(), mesh.layer_plan.shells.len());
        assert_eq!(
            specfem_mesh::content_hash(&back),
            specfem_mesh::content_hash(&mesh)
        );
        let _ = fs::remove_dir_all(store.dir());
    }

    #[test]
    fn missing_artifact_is_none() {
        let store = tmp_store("missing");
        let key = MeshKey::new(&MeshParams::new(4, 1), "prem_iso");
        assert_eq!(store.load(&key).unwrap().map(|m| m.nspec), None);
        let _ = fs::remove_dir_all(store.dir());
    }

    #[test]
    fn corruption_and_key_mismatch_are_rejected() {
        let mesh = small_mesh();
        let key = MeshKey::new(&mesh.params, "prem_iso");
        let store = tmp_store("corrupt");
        let path = store.save(&key, &mesh).unwrap();
        // Bit flip → per-chunk checksum error naming the chunk.
        let mut bytes = fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x01;
        fs::write(&path, &bytes).unwrap();
        let err = store.load(&key).unwrap_err();
        match &err {
            ArtifactError::Corrupt {
                chunk,
                expected,
                actual,
                ..
            } => {
                assert!(!chunk.is_empty());
                assert_ne!(expected, actual);
            }
            other => panic!("expected Corrupt, got {other}"),
        }
        assert!(err.to_string().contains("checksum"), "{err}");
        // Valid bytes filed under the wrong key → key mismatch.
        store.evict(&key);
        let other = MeshKey::new(&MeshParams::new(8, 2), "prem_iso");
        let valid = encode_mesh(&mesh, key.fingerprint());
        fs::write(store.path_for(&other), &valid).unwrap();
        let err = store.load(&other).unwrap_err();
        assert!(matches!(err, ArtifactError::KeyMismatch { .. }), "{err:?}");
        assert!(err.to_string().contains("key mismatch"), "{err}");
        let _ = fs::remove_dir_all(store.dir());
    }

    #[test]
    fn injected_faults_are_typed_per_kind() {
        let mesh = small_mesh();
        let key = MeshKey::new(&mesh.params, "prem_iso");
        for (kind, tag) in [
            (ArtifactFaultKind::BitFlip, "bitflip"),
            (ArtifactFaultKind::Truncate, "trunc"),
            (ArtifactFaultKind::TornHeader, "torn"),
        ] {
            let store = tmp_store(&format!("inject_{tag}"));
            store.set_fault_plan(FaultPlan::new(3).corrupt_artifact(0, kind));
            store.save(&key, &mesh).unwrap();
            let err = store.load(&key).unwrap_err();
            match kind {
                ArtifactFaultKind::BitFlip => {
                    assert!(matches!(err, ArtifactError::Corrupt { .. }), "{err}")
                }
                _ => assert!(matches!(err, ArtifactError::Format { .. }), "{err}"),
            }
            // The campaign cache's recovery: evict and rebuild.
            store.evict(&key);
            assert!(store.load(&key).unwrap().is_none());
            let _ = fs::remove_dir_all(store.dir());
        }
    }

    #[test]
    fn torn_header_falls_back_to_rebuild() {
        let mesh = small_mesh();
        let key = MeshKey::new(&mesh.params, "prem_iso");
        let store = tmp_store("torn_fallback");
        let path = store.save(&key, &mesh).unwrap();
        store.damage(&key, ArtifactFaultKind::TornHeader);
        // The fallback-aware path reports a miss (rebuild) and evicts the
        // damaged file so the plain load can't trip over it either.
        assert!(store.load_or_evict(&key).is_none());
        assert!(!path.exists(), "torn artifact must be evicted");
        assert!(store.load(&key).unwrap().is_none());
        // A healthy artifact still round-trips through the same path.
        store.save(&key, &mesh).unwrap();
        let back = store.load_or_evict(&key).expect("good artifact loads");
        assert_eq!(
            specfem_mesh::content_hash(&back),
            specfem_mesh::content_hash(&mesh)
        );
        let _ = fs::remove_dir_all(store.dir());
    }

    #[test]
    fn evict_removes_the_file() {
        let mesh = small_mesh();
        let key = MeshKey::new(&mesh.params, "prem_iso");
        let store = tmp_store("evict");
        let path = store.save(&key, &mesh).unwrap();
        assert!(path.exists());
        store.evict(&key);
        assert!(!path.exists());
        assert!(store.load(&key).unwrap().is_none());
        let _ = fs::remove_dir_all(store.dir());
    }
}
