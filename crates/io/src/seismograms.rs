//! Seismogram output in the SPECFEM ASCII convention: one file per station
//! per component (`<station>.<NET>.<comp>.semv`), two columns
//! `time value`, plus a reader for round-tripping and post-processing.

use std::fs::{self, File};
use std::io::{self, BufRead, BufReader, BufWriter, Write};
use std::path::Path;

/// Component suffixes in SPECFEM order (here Cartesian X/Y/Z rather than
/// rotated N/E/Z — the rotation to geographic components is a
/// post-processing step).
pub const COMPONENTS: [&str; 3] = ["BXX", "BXY", "BXZ"];

/// A minimal view of a seismogram for writing (mirrors
/// `specfem_solver::Seismogram` without the dependency).
pub struct SeismogramRecord<'a> {
    /// Station name.
    pub station: &'a str,
    /// Sample spacing (s).
    pub dt: f64,
    /// Three-component samples.
    pub data: &'a [[f32; 3]],
}

/// Write one station's three component files into `dir`. Returns the file
/// paths written.
pub fn write_station(
    dir: &Path,
    network: &str,
    rec: &SeismogramRecord<'_>,
) -> io::Result<Vec<std::path::PathBuf>> {
    fs::create_dir_all(dir)?;
    let mut paths = Vec::with_capacity(3);
    for (c, comp) in COMPONENTS.iter().enumerate() {
        let path = dir.join(format!("{}.{network}.{comp}.semv", rec.station));
        let mut w = BufWriter::new(File::create(&path)?);
        for (i, v) in rec.data.iter().enumerate() {
            writeln!(w, "{:.6e} {:.6e}", i as f64 * rec.dt, v[c])?;
        }
        w.flush()?;
        paths.push(path);
    }
    Ok(paths)
}

/// Read one component file back as `(times, values)`.
pub fn read_component(path: &Path) -> io::Result<(Vec<f64>, Vec<f32>)> {
    let r = BufReader::new(File::open(path)?);
    let mut times = Vec::new();
    let mut values = Vec::new();
    for line in r.lines() {
        let line = line?;
        let mut it = line.split_whitespace();
        let (Some(t), Some(v)) = (it.next(), it.next()) else {
            continue;
        };
        times.push(t.parse::<f64>().map_err(io::Error::other)?);
        values.push(v.parse::<f32>().map_err(io::Error::other)?);
    }
    Ok((times, values))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_station_files() {
        let dir = std::env::temp_dir().join("specfem_seismo_rt");
        let _ = fs::remove_dir_all(&dir);
        let data: Vec<[f32; 3]> = (0..50)
            .map(|i| [i as f32, -2.0 * i as f32, 0.5 * i as f32])
            .collect();
        let rec = SeismogramRecord {
            station: "ANMO",
            dt: 0.25,
            data: &data,
        };
        let paths = write_station(&dir, "GE", &rec).unwrap();
        assert_eq!(paths.len(), 3);
        assert!(paths[0]
            .file_name()
            .unwrap()
            .to_str()
            .unwrap()
            .contains("ANMO.GE.BXX"));
        let (t, v) = read_component(&paths[1]).unwrap();
        assert_eq!(t.len(), 50);
        assert!((t[4] - 1.0).abs() < 1e-12);
        assert!((v[10] + 20.0).abs() < 1e-3);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn empty_seismogram_writes_empty_files() {
        let dir = std::env::temp_dir().join("specfem_seismo_empty");
        let _ = fs::remove_dir_all(&dir);
        let rec = SeismogramRecord {
            station: "NONE",
            dt: 1.0,
            data: &[],
        };
        let paths = write_station(&dir, "XX", &rec).unwrap();
        let (t, v) = read_component(&paths[0]).unwrap();
        assert!(t.is_empty() && v.is_empty());
        let _ = fs::remove_dir_all(&dir);
    }
}
