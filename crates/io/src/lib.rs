//! The legacy file-based mesher → solver handoff (paper §4.1) and its
//! accounting.
//!
//! "The original (current stable) version of the code (version 4.0) writes
//! and reads up to 51 files per core. At around 62K cores, this corresponds
//! to over 3.2 million files" — and 14 TB of intermediate data at the
//! 2-second resolution, 108 TB at 1 second (Figure 5).
//!
//! This crate reproduces that data path faithfully: every mesh array a rank
//! needs is written to its own little-endian binary file (as the Fortran
//! code did), then read back by the "solver side". The byte and file counts
//! it reports drive the Figure 5 regression in `specfem-perf`. The merged
//! in-memory path (the paper's fix) is simply *not calling this crate* —
//! `specfem-solver` takes the `LocalMesh` directly.

pub mod checkpoint;
pub mod container;
pub mod dossier;
pub mod generation;
pub mod mesh_artifact;
pub mod result_cache;
pub mod seismograms;

pub use checkpoint::{scatter_state, CheckpointStore, GlobalCheckpoint};
pub use container::{ArtifactError, ContainerReader, ContainerWriter};
pub use dossier::{
    read_crash_dossier, write_crash_dossier, CrashDossier, DossierEvent, DossierIncident,
    DossierJournal, DOSSIER_KIND,
};
pub use generation::{load_latest_good, GenerationScan};
pub use mesh_artifact::{decode_mesh, encode_mesh, MeshArtifactStore};
pub use result_cache::{
    CachedResult, ResultCache, ResultCacheOutcome, ResultCacheStats, ResultKey,
};

use std::fs::{self, File};
use std::io::{self, BufReader, BufWriter, Read, Write};
use std::path::Path;
use std::time::Instant;

use specfem_comm::{HaloPlan, Neighbor};
use specfem_gll::GllBasis;
use specfem_mesh::{LocalMesh, MeshRegion};

/// Accounting of one handoff direction.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct IoReport {
    /// Files touched.
    pub files: usize,
    /// Bytes moved.
    pub bytes: u64,
    /// Wall seconds spent.
    pub seconds: f64,
}

impl IoReport {
    /// Combine reports (e.g. across ranks).
    pub fn merge(&self, other: &IoReport) -> IoReport {
        IoReport {
            files: self.files + other.files,
            bytes: self.bytes + other.bytes,
            seconds: self.seconds + other.seconds,
        }
    }
}

struct CountingWriter<W: Write> {
    inner: W,
    bytes: u64,
}

impl<W: Write> Write for CountingWriter<W> {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        let n = self.inner.write(buf)?;
        self.bytes += n as u64;
        Ok(n)
    }
    fn flush(&mut self) -> io::Result<()> {
        self.inner.flush()
    }
}

fn write_file(
    dir: &Path,
    name: &str,
    body: impl FnOnce(&mut dyn Write) -> io::Result<()>,
) -> io::Result<u64> {
    let f = File::create(dir.join(name))?;
    let mut w = CountingWriter {
        inner: BufWriter::new(f),
        bytes: 0,
    };
    body(&mut w)?;
    w.flush()?;
    Ok(w.bytes)
}

fn put_u64(w: &mut dyn Write, v: u64) -> io::Result<()> {
    w.write_all(&v.to_le_bytes())
}

fn put_u32s(w: &mut dyn Write, v: &[u32]) -> io::Result<()> {
    put_u64(w, v.len() as u64)?;
    for x in v {
        w.write_all(&x.to_le_bytes())?;
    }
    Ok(())
}

fn put_f32s(w: &mut dyn Write, v: &[f32]) -> io::Result<()> {
    put_u64(w, v.len() as u64)?;
    for x in v {
        w.write_all(&x.to_le_bytes())?;
    }
    Ok(())
}

fn put_f64s(w: &mut dyn Write, v: &[f64]) -> io::Result<()> {
    put_u64(w, v.len() as u64)?;
    for x in v {
        w.write_all(&x.to_le_bytes())?;
    }
    Ok(())
}

fn get_u64(r: &mut dyn Read) -> io::Result<u64> {
    let mut b = [0u8; 8];
    r.read_exact(&mut b)?;
    Ok(u64::from_le_bytes(b))
}

fn get_u32s(r: &mut dyn Read) -> io::Result<Vec<u32>> {
    let n = get_u64(r)? as usize;
    let mut out = Vec::with_capacity(n);
    let mut b = [0u8; 4];
    for _ in 0..n {
        r.read_exact(&mut b)?;
        out.push(u32::from_le_bytes(b));
    }
    Ok(out)
}

fn get_f32s(r: &mut dyn Read) -> io::Result<Vec<f32>> {
    let n = get_u64(r)? as usize;
    let mut out = Vec::with_capacity(n);
    let mut b = [0u8; 4];
    for _ in 0..n {
        r.read_exact(&mut b)?;
        out.push(f32::from_le_bytes(b));
    }
    Ok(out)
}

fn get_f64s(r: &mut dyn Read) -> io::Result<Vec<f64>> {
    let n = get_u64(r)? as usize;
    let mut out = Vec::with_capacity(n);
    let mut b = [0u8; 8];
    for _ in 0..n {
        r.read_exact(&mut b)?;
        out.push(f64::from_le_bytes(b));
    }
    Ok(out)
}

fn region_tag(r: MeshRegion) -> u32 {
    match r {
        MeshRegion::CrustMantle => 0,
        MeshRegion::OuterCore => 1,
        MeshRegion::InnerCore => 2,
        MeshRegion::CentralCube => 3,
    }
}

fn region_from_tag(t: u32) -> MeshRegion {
    match t {
        0 => MeshRegion::CrustMantle,
        1 => MeshRegion::OuterCore,
        2 => MeshRegion::InnerCore,
        3 => MeshRegion::CentralCube,
        _ => panic!("bad region tag {t}"),
    }
}

/// Write one rank's mesh to `dir` as the legacy per-array file set
/// (`proc<rank>_<array>.bin`). Returns the accounting.
pub fn write_local_mesh(dir: &Path, mesh: &LocalMesh) -> io::Result<IoReport> {
    let _span = specfem_obs::span("io.write_mesh");
    fs::create_dir_all(dir)?;
    let t0 = Instant::now();
    let p = |name: &str| format!("proc{:06}_{name}.bin", mesh.rank);
    let mut bytes = 0u64;
    let mut files = 0usize;
    #[allow(clippy::type_complexity)]
    let mut wf = |name: String,
                  body: Box<dyn FnOnce(&mut dyn Write) -> io::Result<()> + '_>|
     -> io::Result<()> {
        bytes += write_file(dir, &name, body)?;
        files += 1;
        Ok(())
    };

    // Header / sizes.
    wf(
        p("header"),
        Box::new(|w| {
            put_u64(w, mesh.rank as u64)?;
            put_u64(w, mesh.nspec as u64)?;
            put_u64(w, mesh.nglob as u64)?;
            put_u64(w, mesh.basis.degree as u64)
        }),
    )?;
    // Connectivity and numbering.
    wf(p("ibool"), Box::new(|w| put_u32s(w, &mesh.ibool)))?;
    wf(p("global_ids"), Box::new(|w| put_u32s(w, &mesh.global_ids)))?;
    wf(
        p("element_global"),
        Box::new(|w| put_u32s(w, &mesh.element_global)),
    )?;
    // Coordinates, one file per component (as the Fortran code did).
    for (c, name) in ["xstore", "ystore", "zstore"].iter().enumerate() {
        let comp: Vec<f64> = mesh.coords.iter().map(|p| p[c]).collect();
        wf(p(name), Box::new(move |w| put_f64s(w, &comp)))?;
    }
    // Regions.
    let regions: Vec<u32> = mesh.region.iter().map(|&r| region_tag(r)).collect();
    wf(p("idoubling"), Box::new(move |w| put_u32s(w, &regions)))?;
    // Materials.
    wf(p("rhostore"), Box::new(|w| put_f32s(w, &mesh.rho)))?;
    wf(p("kappavstore"), Box::new(|w| put_f32s(w, &mesh.kappa)))?;
    wf(p("muvstore"), Box::new(|w| put_f32s(w, &mesh.mu)))?;
    wf(p("qmustore"), Box::new(|w| put_f32s(w, &mesh.qmu)))?;
    // Metric terms — the mesher precomputes and ships all ten arrays.
    {
        let n3 = mesh.points_per_element();
        let mut metric: Vec<Vec<f32>> = (0..10)
            .map(|_| Vec::with_capacity(mesh.nspec * n3))
            .collect();
        for e in 0..mesh.nspec {
            let g = mesh.element_geometry(e);
            for (slot, arr) in [
                &g.xix,
                &g.xiy,
                &g.xiz,
                &g.etax,
                &g.etay,
                &g.etaz,
                &g.gammax,
                &g.gammay,
                &g.gammaz,
                &g.jacobian,
            ]
            .iter()
            .enumerate()
            {
                metric[slot].extend_from_slice(arr);
            }
        }
        for (slot, name) in [
            "xixstore",
            "xiystore",
            "xizstore",
            "etaxstore",
            "etaystore",
            "etazstore",
            "gammaxstore",
            "gammaystore",
            "gammazstore",
            "jacobianstore",
        ]
        .iter()
        .enumerate()
        {
            let arr = std::mem::take(&mut metric[slot]);
            wf(p(name), Box::new(move |w| put_f32s(w, &arr)))?;
        }
    }
    // Halo (MPI interfaces): one file per neighbour, as the Fortran
    // `list_messages_*` files were.
    wf(
        p("num_interfaces"),
        Box::new(|w| put_u64(w, mesh.halo.neighbors.len() as u64)),
    )?;
    for (i, n) in mesh.halo.neighbors.iter().enumerate() {
        let name = format!("proc{:06}_interface{:03}.bin", mesh.rank, i);
        wf(
            name,
            Box::new(move |w| {
                put_u64(w, n.rank as u64)?;
                put_u32s(w, &n.points)
            }),
        )?;
    }

    specfem_obs::counter_add("io.files_written", files as u64);
    specfem_obs::counter_add("io.bytes_written", bytes);
    Ok(IoReport {
        files,
        bytes,
        seconds: t0.elapsed().as_secs_f64(),
    })
}

/// Read one rank's mesh back (the "solver side" of the legacy path).
pub fn read_local_mesh(dir: &Path, rank: usize) -> io::Result<(LocalMesh, IoReport)> {
    let _span = specfem_obs::span("io.read_mesh");
    let t0 = Instant::now();
    let mut bytes = 0u64;
    let mut files = 0usize;
    let mut open = |name: String| -> io::Result<BufReader<File>> {
        let path = dir.join(&name);
        bytes += fs::metadata(&path)?.len();
        files += 1;
        Ok(BufReader::new(File::open(path)?))
    };
    let p = |name: &str| format!("proc{rank:06}_{name}.bin");

    let mut r = open(p("header"))?;
    let file_rank = get_u64(&mut r)? as usize;
    assert_eq!(file_rank, rank, "rank mismatch in header");
    let nspec = get_u64(&mut r)? as usize;
    let nglob = get_u64(&mut r)? as usize;
    let degree = get_u64(&mut r)? as usize;

    let ibool = get_u32s(&mut open(p("ibool"))?)?;
    let global_ids = get_u32s(&mut open(p("global_ids"))?)?;
    let element_global = get_u32s(&mut open(p("element_global"))?)?;
    let xs = get_f64s(&mut open(p("xstore"))?)?;
    let ys = get_f64s(&mut open(p("ystore"))?)?;
    let zs = get_f64s(&mut open(p("zstore"))?)?;
    let coords: Vec<[f64; 3]> = xs
        .into_iter()
        .zip(ys)
        .zip(zs)
        .map(|((x, y), z)| [x, y, z])
        .collect();
    let region: Vec<MeshRegion> = get_u32s(&mut open(p("idoubling"))?)?
        .into_iter()
        .map(region_from_tag)
        .collect();
    let rho = get_f32s(&mut open(p("rhostore"))?)?;
    let kappa = get_f32s(&mut open(p("kappavstore"))?)?;
    let mu = get_f32s(&mut open(p("muvstore"))?)?;
    let qmu = get_f32s(&mut open(p("qmustore"))?)?;
    // Metric arrays are read (and counted) but recomputed by the solver in
    // this implementation; the legacy code consumed them directly.
    for name in [
        "xixstore",
        "xiystore",
        "xizstore",
        "etaxstore",
        "etaystore",
        "etazstore",
        "gammaxstore",
        "gammaystore",
        "gammazstore",
        "jacobianstore",
    ] {
        let _ = get_f32s(&mut open(p(name))?)?;
    }
    let n_if = get_u64(&mut open(p("num_interfaces"))?)? as usize;
    let mut neighbors = Vec::with_capacity(n_if);
    for i in 0..n_if {
        let mut r = open(format!("proc{rank:06}_interface{i:03}.bin"))?;
        let nrank = get_u64(&mut r)? as usize;
        let points = get_u32s(&mut r)?;
        neighbors.push(Neighbor {
            rank: nrank,
            points,
        });
    }

    // The legacy format predates the outer/inner element split, so
    // reconstruct it from the halo plan: the outer prefix ends at the last
    // element touching a halo point. Any halo-free elements trapped before
    // it are conservatively treated as outer — correct (the solver merely
    // overlaps a little less), and exact for meshes written after the
    // extraction started ordering outer elements first.
    let n3 = {
        let np = degree + 1;
        np * np * np
    };
    let mut is_halo_point = vec![false; nglob];
    for n in &neighbors {
        for &p in &n.points {
            is_halo_point[p as usize] = true;
        }
    }
    let nspec_outer = (0..nspec)
        .rev()
        .find(|&e| {
            ibool[e * n3..(e + 1) * n3]
                .iter()
                .any(|&p| is_halo_point[p as usize])
        })
        .map_or(0, |e| e + 1);

    let mesh = LocalMesh {
        rank,
        basis: GllBasis::new(degree),
        nspec,
        nspec_outer,
        nglob,
        ibool,
        coords,
        global_ids,
        region,
        element_global,
        rho,
        kappa,
        mu,
        qmu,
        halo: HaloPlan { neighbors },
    };
    specfem_obs::counter_add("io.files_read", files as u64);
    specfem_obs::counter_add("io.bytes_read", bytes);
    Ok((
        mesh,
        IoReport {
            files,
            bytes,
            seconds: t0.elapsed().as_secs_f64(),
        },
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use specfem_mesh::{GlobalMesh, MeshParams, Partition};
    use specfem_model::Prem;

    fn small_local(rank: usize, nproc: usize) -> LocalMesh {
        let params = MeshParams::new(4, nproc);
        let prem = Prem::isotropic_no_ocean();
        let gm = GlobalMesh::build(&params, &prem);
        if nproc == 1 && rank == 0 {
            Partition::serial(&gm).extract(&gm, 0)
        } else {
            Partition::compute(&gm).extract(&gm, rank)
        }
    }

    #[test]
    fn roundtrip_preserves_the_mesh() {
        let mesh = small_local(3, 2);
        let dir = std::env::temp_dir().join("specfem_io_roundtrip");
        let _ = fs::remove_dir_all(&dir);
        let wrote = write_local_mesh(&dir, &mesh).unwrap();
        let (back, read) = read_local_mesh(&dir, 3).unwrap();
        assert_eq!(back.nspec, mesh.nspec);
        assert_eq!(back.nglob, mesh.nglob);
        assert_eq!(back.ibool, mesh.ibool);
        assert_eq!(back.coords, mesh.coords);
        assert_eq!(back.rho, mesh.rho);
        assert_eq!(back.mu, mesh.mu);
        assert_eq!(back.region, mesh.region);
        assert_eq!(back.halo, mesh.halo);
        assert_eq!(wrote.bytes, read.bytes, "write/read byte accounting");
        assert!(
            wrote.files >= 25,
            "legacy path writes many files: {}",
            wrote.files
        );
        assert_eq!(wrote.files, read.files);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn file_count_grows_with_neighbor_count() {
        // More interfaces → more files (the per-neighbor list files).
        let lonely = small_local(0, 1);
        let social = small_local(0, 2);
        let d1 = std::env::temp_dir().join("specfem_io_f1");
        let d2 = std::env::temp_dir().join("specfem_io_f2");
        let _ = fs::remove_dir_all(&d1);
        let _ = fs::remove_dir_all(&d2);
        let r1 = write_local_mesh(&d1, &lonely).unwrap();
        let r2 = write_local_mesh(&d2, &social).unwrap();
        assert!(r2.files > r1.files);
        let _ = fs::remove_dir_all(&d1);
        let _ = fs::remove_dir_all(&d2);
    }

    #[test]
    fn bytes_scale_with_mesh_size() {
        let small = small_local(0, 1);
        let dir = std::env::temp_dir().join("specfem_io_scale_small");
        let _ = fs::remove_dir_all(&dir);
        let r_small = write_local_mesh(&dir, &small).unwrap();
        let _ = fs::remove_dir_all(&dir);

        let params = MeshParams::new(8, 1);
        let prem = Prem::isotropic_no_ocean();
        let gm = GlobalMesh::build(&params, &prem);
        let big = Partition::serial(&gm).extract(&gm, 0);
        let dir = std::env::temp_dir().join("specfem_io_scale_big");
        let _ = fs::remove_dir_all(&dir);
        let r_big = write_local_mesh(&dir, &big).unwrap();
        let _ = fs::remove_dir_all(&dir);

        // NEX 4 → 8 grows the element count ~8-10×; bytes must follow.
        assert!(
            r_big.bytes > 5 * r_small.bytes,
            "{} vs {}",
            r_big.bytes,
            r_small.bytes
        );
    }

    #[test]
    fn merge_reports() {
        let a = IoReport {
            files: 2,
            bytes: 10,
            seconds: 0.5,
        };
        let b = IoReport {
            files: 3,
            bytes: 30,
            seconds: 0.25,
        };
        let m = a.merge(&b);
        assert_eq!(m.files, 5);
        assert_eq!(m.bytes, 40);
        assert!((m.seconds - 0.75).abs() < 1e-12);
    }
}
