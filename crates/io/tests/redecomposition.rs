//! Property tests for the rank-count-independent container: a checkpoint
//! generation written by W ranks, scattered onto R ranks, and re-written
//! from the R-rank states must reproduce the original global state
//! bit-for-bit — redecomposition is lossless in both directions. The mesh
//! artifact side rides along: an encode/decode round trip preserves the
//! mesh's geometry fingerprint.

use std::sync::OnceLock;

use proptest::prelude::*;
use specfem_io::{CheckpointStore, GlobalCheckpoint, MeshArtifactStore};
use specfem_mesh::{GlobalMesh, MeshKey, MeshParams, Partition};
use specfem_model::Prem;
use specfem_solver::checkpoint::CheckpointState;

fn gm() -> &'static GlobalMesh {
    static MESH: OnceLock<GlobalMesh> = OnceLock::new();
    MESH.get_or_init(|| GlobalMesh::build(&MeshParams::new(4, 1), &Prem::isotropic_no_ocean()))
}

/// Deterministic pseudo-random f32 keyed by (seed, slot) — the same
/// global point gets the same value on every rank that shares it, which
/// is exactly the invariant real halo-assembled fields satisfy.
fn val(seed: u64, slot: u64) -> f32 {
    let mut x = seed ^ slot.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    x ^= x >> 33;
    x = x.wrapping_mul(0xFF51_AFD7_ED55_8CCD);
    x ^= x >> 29;
    // Keep values finite and spread over a wide magnitude range.
    ((x as i32) as f32) * 1e-3
}

const ATTEN_PER: usize = 3;

fn synth(mesh: &specfem_mesh::LocalMesh, world: usize, seed: u64, atten: bool) -> CheckpointState {
    let v3 = |field: u64| -> Vec<f32> {
        let mut out = vec![0.0; mesh.nglob * 3];
        for (p, &g) in mesh.global_ids.iter().enumerate() {
            for c in 0..3 {
                out[p * 3 + c] = val(seed, field << 40 | (g as u64) << 2 | c as u64);
            }
        }
        out
    };
    let v1 = |field: u64| -> Vec<f32> {
        mesh.global_ids
            .iter()
            .map(|&g| val(seed, field << 40 | (g as u64) << 2))
            .collect()
    };
    let atten_memory = atten.then(|| {
        mesh.element_global
            .iter()
            .flat_map(|&ge| {
                (0..ATTEN_PER as u64).map(move |i| val(seed, (99 << 40) | ((ge as u64) * 8 + i)))
            })
            .collect()
    });
    CheckpointState {
        rank: mesh.rank,
        nranks: world,
        next_step: 42,
        dt: 0.125,
        nglob: mesh.nglob,
        global_ids: mesh.global_ids.clone(),
        element_global: mesh.element_global.clone(),
        displ: v3(1),
        veloc: v3(2),
        accel: v3(3),
        chi: v1(4),
        chi_dot: v1(5),
        chi_ddot: v1(6),
        atten_memory,
        records: vec![
            ("STA".into(), vec![[val(seed, 7), 0.5, -2.0]; 3]),
            ("STB".into(), vec![[1.0, val(seed, 8), 0.0]; 2]),
        ],
        energy: vec![(0, 1.5, 2.5), (10, f64::from(val(seed, 9)), 0.0)],
        snapshots: vec![v3(10), v3(11)],
        flops: 1000 + mesh.rank as u64,
    }
}

fn tmp_store(tag: &str) -> CheckpointStore {
    let dir = std::env::temp_dir().join(format!("specfem_redecomp_{tag}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    CheckpointStore::new(dir).unwrap()
}

/// Write one generation from per-rank states on a `world`-way balanced
/// decomposition and return the merged global container.
fn write_and_load(
    store: &CheckpointStore,
    states: Vec<CheckpointState>,
) -> std::sync::Arc<GlobalCheckpoint> {
    for state in &states {
        store.sink(state.rank).write(state).unwrap();
    }
    store.load_global(42).unwrap()
}

fn assert_bitwise_equal(a: &GlobalCheckpoint, b: &GlobalCheckpoint) {
    let bits = |v: &[f32]| -> Vec<u32> { v.iter().map(|x| x.to_bits()).collect() };
    assert_eq!(a.next_step, b.next_step);
    assert_eq!(a.dt.to_bits(), b.dt.to_bits());
    assert_eq!(a.nglob, b.nglob);
    assert_eq!(a.nspec, b.nspec);
    assert_eq!(bits(&a.displ), bits(&b.displ));
    assert_eq!(bits(&a.veloc), bits(&b.veloc));
    assert_eq!(bits(&a.accel), bits(&b.accel));
    assert_eq!(bits(&a.chi), bits(&b.chi));
    assert_eq!(bits(&a.chi_dot), bits(&b.chi_dot));
    assert_eq!(bits(&a.chi_ddot), bits(&b.chi_ddot));
    match (&a.atten, &b.atten) {
        (Some(x), Some(y)) => assert_eq!(bits(x), bits(y)),
        (None, None) => {}
        other => panic!("attenuation presence diverged: {other:?}"),
    }
    assert_eq!(a.records.len(), b.records.len());
    for ((an, av), (bn, bv)) in a.records.iter().zip(&b.records) {
        assert_eq!(an, bn);
        assert_eq!(av.len(), bv.len());
        for (x, y) in av.iter().zip(bv) {
            for c in 0..3 {
                assert_eq!(x[c].to_bits(), y[c].to_bits());
            }
        }
    }
    assert_eq!(a.energy.len(), b.energy.len());
    for ((s1, k1, p1), (s2, k2, p2)) in a.energy.iter().zip(&b.energy) {
        assert_eq!(s1, s2);
        assert_eq!(k1.to_bits(), k2.to_bits());
        assert_eq!(p1.to_bits(), p2.to_bits());
    }
    assert_eq!(a.snapshots.len(), b.snapshots.len());
    for (x, y) in a.snapshots.iter().zip(&b.snapshots) {
        assert_eq!(bits(x), bits(y));
    }
    assert_eq!(a.flops, b.flops, "flops are conserved across scatter");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// W-rank write -> global -> scatter onto R ranks -> re-write ->
    /// global: the two merged containers agree bit-for-bit, for any
    /// (W, R) pair — including growing past and shrinking below the
    /// writer's world size.
    #[test]
    fn redecomposition_round_trip_is_bit_identical(
        w in 1usize..6,
        r in 1usize..9,
        seed in any::<u64>(),
        with_atten in any::<bool>(),
    ) {
        let gm = gm();
        let store_w = tmp_store("w");
        let part_w = Partition::balanced(gm, w);
        let states_w: Vec<CheckpointState> = (0..w)
            .map(|rank| synth(&part_w.extract(gm, rank), w, seed, with_atten))
            .collect();
        let g1 = write_and_load(&store_w, states_w);
        prop_assert_eq!(g1.world_written, w);

        // Scatter onto R local meshes, as an R-rank resume would, then
        // re-write the generation from those states (the solver stamps
        // the new world size on its next capture; mirror that here).
        let part_r = Partition::balanced(gm, r);
        let store_r = tmp_store("r");
        let states_r: Vec<CheckpointState> = (0..r)
            .map(|rank| {
                let local = part_r.extract(gm, rank);
                let mut s = specfem_io::scatter_state(&g1, rank, &local).unwrap();
                s.nranks = r;
                s
            })
            .collect();
        let g2 = write_and_load(&store_r, states_r);
        prop_assert_eq!(g2.world_written, r);
        assert_bitwise_equal(&g1, &g2);

        let _ = std::fs::remove_dir_all(store_w.dir());
        let _ = std::fs::remove_dir_all(store_r.dir());
    }

    /// Mesh artifact round trip preserves the content-addressed identity:
    /// the reloaded mesh re-derives the same geometry fingerprint (and
    /// full mesh key) it was stored under.
    #[test]
    fn mesh_artifact_round_trip_preserves_geometry_fingerprint(big in any::<bool>()) {
        let nex = if big { 6usize } else { 4 };
        let mesh = GlobalMesh::build(&MeshParams::new(nex, 1), &Prem::isotropic_no_ocean());
        let key = MeshKey::new(&mesh.params, "prem_iso");
        let dir = std::env::temp_dir()
            .join(format!("specfem_redecomp_mesh_{}_{nex}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let store = MeshArtifactStore::new(&dir).unwrap();
        store.save(&key, &mesh).unwrap();
        let loaded = store.load(&key).unwrap().expect("artifact present");
        let rekey = MeshKey::new(&loaded.params, "prem_iso");
        prop_assert_eq!(rekey.geometry_fingerprint(), key.geometry_fingerprint());
        prop_assert_eq!(rekey.fingerprint(), key.fingerprint());
        prop_assert_eq!(
            specfem_mesh::content_hash(&loaded),
            specfem_mesh::content_hash(&mesh)
        );
        let _ = std::fs::remove_dir_all(&dir);
    }
}
