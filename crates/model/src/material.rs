//! Point material properties and derived elastic moduli.

/// Transversely isotropic (radial symmetry axis) velocity description, as in
/// PREM's anisotropic upper mantle. Velocities in m/s, `eta` dimensionless.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TransverseIsotropy {
    /// Vertically polarized P speed.
    pub vpv: f64,
    /// Horizontally polarized P speed.
    pub vph: f64,
    /// Vertically polarized S speed.
    pub vsv: f64,
    /// Horizontally polarized S speed.
    pub vsh: f64,
    /// Anellipticity parameter η = F / (A − 2L).
    pub eta: f64,
}

/// Love-parameter form of a transversely isotropic stiffness (Pa):
/// `A = ρ v_ph²`, `C = ρ v_pv²`, `L = ρ v_sv²`, `N = ρ v_sh²`,
/// `F = η (A − 2L)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ElasticModuli {
    pub a: f64,
    pub c: f64,
    pub l: f64,
    pub n: f64,
    pub f: f64,
}

impl ElasticModuli {
    /// Isotropic special case from bulk and shear moduli.
    pub fn isotropic(kappa: f64, mu: f64) -> Self {
        let lambda = kappa - 2.0 / 3.0 * mu;
        Self {
            a: lambda + 2.0 * mu,
            c: lambda + 2.0 * mu,
            l: mu,
            n: mu,
            f: lambda,
        }
    }
}

/// Material properties of one point of the Earth model, SI units.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Material {
    /// Density, kg/m³.
    pub rho: f64,
    /// Isotropic-equivalent P speed (Voigt average for TI), m/s.
    pub vp: f64,
    /// Isotropic-equivalent S speed, m/s. Zero in fluids.
    pub vs: f64,
    /// Shear quality factor. `f64::INFINITY` in fluids.
    pub q_mu: f64,
    /// Bulk quality factor.
    pub q_kappa: f64,
    /// Optional transverse isotropy (PREM upper mantle); `None` ⇒ isotropic.
    pub ti: Option<TransverseIsotropy>,
}

impl Material {
    /// Isotropic material.
    pub fn isotropic(rho: f64, vp: f64, vs: f64, q_mu: f64, q_kappa: f64) -> Self {
        Self {
            rho,
            vp,
            vs,
            q_mu,
            q_kappa,
            ti: None,
        }
    }

    /// Shear modulus μ = ρ vs² (Pa).
    #[inline]
    pub fn mu(&self) -> f64 {
        self.rho * self.vs * self.vs
    }

    /// Bulk modulus κ = ρ (vp² − 4/3 vs²) (Pa).
    #[inline]
    pub fn kappa(&self) -> f64 {
        self.rho * (self.vp * self.vp - 4.0 / 3.0 * self.vs * self.vs)
    }

    /// Lamé λ = κ − 2μ/3 (Pa).
    #[inline]
    pub fn lambda(&self) -> f64 {
        self.kappa() - 2.0 / 3.0 * self.mu()
    }

    /// True for a fluid (no shear strength).
    #[inline]
    pub fn is_fluid(&self) -> bool {
        self.vs == 0.0
    }

    /// Full stiffness in Love parameters; uses the TI record when present,
    /// otherwise the isotropic reduction.
    pub fn moduli(&self) -> ElasticModuli {
        match self.ti {
            Some(ti) => {
                let a = self.rho * ti.vph * ti.vph;
                let c = self.rho * ti.vpv * ti.vpv;
                let l = self.rho * ti.vsv * ti.vsv;
                let n = self.rho * ti.vsh * ti.vsh;
                let f = ti.eta * (a - 2.0 * l);
                ElasticModuli { a, c, l, n, f }
            }
            None => ElasticModuli::isotropic(self.kappa(), self.mu()),
        }
    }

    /// Voigt-average isotropic (vp, vs) of a TI material — what the mesher
    /// uses for resolution/stability estimates.
    pub fn voigt_velocities(&self) -> (f64, f64) {
        match self.ti {
            Some(ti) => {
                let vp = ((2.0 * ti.vph * ti.vph + ti.vpv * ti.vpv) / 3.0).sqrt();
                let vs = ((2.0 * ti.vsv * ti.vsv + ti.vsh * ti.vsh) / 3.0).sqrt();
                (vp, vs)
            }
            None => (self.vp, self.vs),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn isotropic_moduli_roundtrip() {
        let m = Material::isotropic(3000.0, 8000.0, 4500.0, 600.0, 57823.0);
        assert!((m.mu() - 3000.0 * 4500.0f64.powi(2)).abs() < 1.0);
        let em = m.moduli();
        // For isotropic: A = C = λ + 2μ, L = N = μ, F = λ.
        assert!((em.a - em.c).abs() < 1e-6 * em.a);
        assert!((em.l - em.n).abs() < 1e-6 * em.l);
        assert!((em.f - m.lambda()).abs() < 1e-6 * em.f.abs());
        assert!((em.a - (m.lambda() + 2.0 * m.mu())).abs() < 1e-6 * em.a);
    }

    #[test]
    fn fluid_has_zero_mu() {
        let m = Material::isotropic(11000.0, 9000.0, 0.0, f64::INFINITY, 57823.0);
        assert!(m.is_fluid());
        assert_eq!(m.mu(), 0.0);
        assert!((m.kappa() - 11000.0 * 9000.0f64.powi(2)).abs() < 1.0);
    }

    #[test]
    fn ti_voigt_reduces_to_isotropic_when_degenerate() {
        let mut m = Material::isotropic(3300.0, 8100.0, 4600.0, 143.0, 57823.0);
        m.ti = Some(TransverseIsotropy {
            vpv: 8100.0,
            vph: 8100.0,
            vsv: 4600.0,
            vsh: 4600.0,
            eta: 1.0,
        });
        let (vp, vs) = m.voigt_velocities();
        assert!((vp - 8100.0).abs() < 1e-9);
        assert!((vs - 4600.0).abs() < 1e-9);
        let em = m.moduli();
        let em_iso = Material::isotropic(3300.0, 8100.0, 4600.0, 143.0, 57823.0).moduli();
        assert!((em.a - em_iso.a).abs() < 1e-3 * em.a);
        assert!((em.f - em_iso.f).abs() < 1e-3 * em.f);
    }
}
