//! Constant-Q attenuation fitted with standard linear solids (SLS).
//!
//! Viscoelasticity ("loss of energy due to the fact that the rocks are
//! viscoelastic", paper §6) is modelled, as in SPECFEM3D_GLOBE, by
//! approximating a frequency-independent quality factor `Q` over the seismic
//! absorption band with a small series of standard linear solids. Each SLS
//! contributes `Q⁻¹(ω) ≈ Σ_j y_j ω τ_j / (1 + ω² τ_j²)`; the coefficients
//! `y_j` are fitted by least squares. The solver integrates one memory
//! variable per SLS per strain component, which is exactly why attenuation
//! raises runtime by roughly the observed 1.8× while barely changing the
//! flops *rate* (the extra work is the same streaming kind).

use crate::linalg::least_squares;

/// Number of standard linear solids, as in production SPECFEM3D_GLOBE.
pub const N_SLS: usize = 3;

/// What to fit: a target shear quality factor over a frequency band.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AttenuationSpec {
    /// Target (frequency-independent) shear quality factor.
    pub q_mu: f64,
    /// Lower edge of the absorption band (Hz).
    pub f_min: f64,
    /// Upper edge of the absorption band (Hz).
    pub f_max: f64,
}

impl AttenuationSpec {
    /// The standard global-seismology band for a run resolving periods down
    /// to `t_min` seconds: one decade below `1/t_min`.
    pub fn for_shortest_period(q_mu: f64, t_min_s: f64) -> Self {
        let f_max = 1.0 / t_min_s;
        Self {
            q_mu,
            f_min: f_max / 100.0,
            f_max,
        }
    }
}

/// The fitted SLS series.
#[derive(Debug, Clone)]
pub struct AttenuationFit {
    /// Stress relaxation times `τ_σj` (s), log-spaced over the band.
    pub tau_sigma: [f64; N_SLS],
    /// Modulus-defect coefficients `y_j` (dimensionless).
    pub y: [f64; N_SLS],
    /// `1 − Σ y_j`: the relaxed/unrelaxed modulus ratio the solver applies to
    /// the elastic stress before adding back the memory variables.
    pub one_minus_sum_y: f64,
}

impl AttenuationFit {
    /// Fit `N_SLS` standard linear solids to the spec by least squares on a
    /// log-spaced frequency sampling of the band.
    pub fn fit(spec: AttenuationSpec) -> Self {
        assert!(spec.f_min > 0.0 && spec.f_max > spec.f_min);
        assert!(spec.q_mu > 1.0, "Q must be > 1 (got {})", spec.q_mu);
        let mut tau_sigma = [0.0; N_SLS];
        for (j, t) in tau_sigma.iter_mut().enumerate() {
            // log-spaced relaxation frequencies across the band
            let f = spec.f_min * (spec.f_max / spec.f_min).powf(j as f64 / (N_SLS as f64 - 1.0));
            *t = 1.0 / (2.0 * std::f64::consts::PI * f);
        }
        // Sample the band at M log-spaced frequencies; rows of the design
        // matrix are the per-SLS Debye kernels.
        const M: usize = 40;
        let mut a = vec![0.0; M * N_SLS];
        let mut b = vec![0.0; M];
        for r in 0..M {
            let f = spec.f_min * (spec.f_max / spec.f_min).powf(r as f64 / (M as f64 - 1.0));
            let w = 2.0 * std::f64::consts::PI * f;
            for j in 0..N_SLS {
                let wt = w * tau_sigma[j];
                a[r * N_SLS + j] = wt / (1.0 + wt * wt);
            }
            b[r] = 1.0 / spec.q_mu;
        }
        let yv = least_squares(&a, &b, M, N_SLS).expect("attenuation fit is well-posed");
        let mut y = [0.0; N_SLS];
        y.copy_from_slice(&yv);
        let one_minus_sum_y = 1.0 - y.iter().sum::<f64>();
        Self {
            tau_sigma,
            y,
            one_minus_sum_y,
        }
    }

    /// The model's actual `1/Q` at angular frequency `ω` — used to verify
    /// fit quality.
    pub fn inv_q_at(&self, omega: f64) -> f64 {
        self.tau_sigma
            .iter()
            .zip(&self.y)
            .map(|(&t, &y)| y * omega * t / (1.0 + omega * omega * t * t))
            .sum()
    }

    /// Per-SLS exponential-update factors for a time step `dt`:
    /// `(exp(−dt/τ_j), y_j (1 − exp(−dt/τ_j)))`. The solver uses them as
    /// `R_j ← α_j R_j + β_j μ ε̇`-style recursions.
    pub fn update_factors(&self, dt: f64) -> [(f64, f64); N_SLS] {
        let mut out = [(0.0, 0.0); N_SLS];
        for j in 0..N_SLS {
            let e = (-dt / self.tau_sigma[j]).exp();
            out[j] = (e, self.y[j] * (1.0 - e));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fit_reproduces_target_q_across_band() {
        // Three SLS hold constant Q well over about two decades — the
        // standard absorption-band width for one simulation.
        let spec = AttenuationSpec {
            q_mu: 312.0, // PREM lower mantle
            f_min: 0.005,
            f_max: 0.5,
        };
        let fit = AttenuationFit::fit(spec);
        // Check 1/Q within 15% of target across the central 80% of the band.
        let lo = spec.f_min * (spec.f_max / spec.f_min).powf(0.1);
        let hi = spec.f_min * (spec.f_max / spec.f_min).powf(0.9);
        for i in 0..20 {
            let f = lo * (hi / lo).powf(i as f64 / 19.0);
            let inv_q = fit.inv_q_at(2.0 * std::f64::consts::PI * f);
            let err = (inv_q * spec.q_mu - 1.0).abs();
            assert!(err < 0.15, "f = {f}: 1/Q relative error {err}");
        }
    }

    #[test]
    fn fit_works_for_low_q_inner_core() {
        let fit = AttenuationFit::fit(AttenuationSpec::for_shortest_period(84.6, 2.0));
        assert!(fit.y.iter().all(|&y| y > 0.0), "y = {:?}", fit.y);
        assert!(fit.one_minus_sum_y > 0.0 && fit.one_minus_sum_y < 1.0);
    }

    #[test]
    fn relaxation_times_span_band_descending() {
        let spec = AttenuationSpec {
            q_mu: 143.0,
            f_min: 0.01,
            f_max: 1.0,
        };
        let fit = AttenuationFit::fit(spec);
        // τ for the lowest frequency is the largest.
        assert!(fit.tau_sigma[0] > fit.tau_sigma[1]);
        assert!(fit.tau_sigma[1] > fit.tau_sigma[2]);
        let t_lo = 1.0 / (2.0 * std::f64::consts::PI * spec.f_min);
        let t_hi = 1.0 / (2.0 * std::f64::consts::PI * spec.f_max);
        assert!((fit.tau_sigma[0] - t_lo).abs() < 1e-9 * t_lo);
        assert!((fit.tau_sigma[2] - t_hi).abs() < 1e-9 * t_hi);
    }

    #[test]
    fn update_factors_decay_and_stay_bounded() {
        let fit = AttenuationFit::fit(AttenuationSpec::for_shortest_period(600.0, 10.0));
        for &(alpha, beta) in fit.update_factors(0.1).iter() {
            assert!(alpha > 0.0 && alpha < 1.0);
            assert!(beta.abs() < 1.0);
        }
        // dt → 0 gives alpha → 1, beta → 0.
        for &(alpha, beta) in fit.update_factors(1e-12).iter() {
            assert!((alpha - 1.0).abs() < 1e-9);
            assert!(beta.abs() < 1e-9);
        }
    }

    #[test]
    fn higher_q_means_weaker_sls() {
        let weak = AttenuationFit::fit(AttenuationSpec::for_shortest_period(600.0, 5.0));
        let strong = AttenuationFit::fit(AttenuationSpec::for_shortest_period(80.0, 5.0));
        let sum_weak: f64 = weak.y.iter().sum();
        let sum_strong: f64 = strong.y.iter().sum();
        assert!(sum_strong > sum_weak);
    }
}
