//! Source-time functions S(t) for the point moment-tensor source (paper
//! eq. 3): the moment-rate history that multiplies the moment tensor.

/// Shape of the source-time function.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StfKind {
    /// Gaussian moment-rate (smooth pulse), the SPECFEM default.
    Gaussian,
    /// Ricker wavelet (second derivative of a Gaussian).
    Ricker,
    /// Smoothed Heaviside (error-function step) — step in moment, used when
    /// comparing with normal-mode seismograms.
    SmoothedHeaviside,
}

/// A source-time function with a given half-duration.
#[derive(Debug, Clone, Copy)]
pub struct SourceTimeFunction {
    /// Shape.
    pub kind: StfKind,
    /// Half-duration `hdur` (s); sets the pulse width / corner frequency.
    pub half_duration: f64,
    /// Time shift so the pulse is fully inside `t >= 0` (typically
    /// `1.5 × hdur`, as in SPECFEM).
    pub t_shift: f64,
}

impl SourceTimeFunction {
    /// Standard construction: shift of `1.5 hdur` keeps the onset causal.
    pub fn new(kind: StfKind, half_duration: f64) -> Self {
        Self {
            kind,
            half_duration,
            t_shift: 1.5 * half_duration,
        }
    }

    /// Evaluate S(t).
    pub fn eval(&self, t: f64) -> f64 {
        let hd = self.half_duration.max(1e-9);
        // SPECFEM's Gaussian width convention: α = 1.628 / hdur.
        let alpha = 1.628 / hd;
        let tau = t - self.t_shift;
        match self.kind {
            StfKind::Gaussian => {
                let a = alpha * tau;
                alpha / std::f64::consts::PI.sqrt() * (-a * a).exp()
            }
            StfKind::Ricker => {
                let a = alpha * tau;
                (1.0 - 2.0 * a * a) * (-a * a).exp()
            }
            StfKind::SmoothedHeaviside => 0.5 * (1.0 + erf(alpha * tau)),
        }
    }
}

/// Error function via the Abramowitz & Stegun 7.1.26 rational approximation
/// (|error| < 1.5e-7, ample for a source ramp).
pub fn erf(x: f64) -> f64 {
    let sign = if x < 0.0 { -1.0 } else { 1.0 };
    let x = x.abs();
    let t = 1.0 / (1.0 + 0.3275911 * x);
    let poly = t
        * (0.254829592
            + t * (-0.284496736 + t * (1.421413741 + t * (-1.453152027 + t * 1.061405429))));
    sign * (1.0 - poly * (-x * x).exp())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn erf_reference_values() {
        // Abramowitz & Stegun 7.1.26 is accurate to ~1.5e-7.
        assert!((erf(0.0)).abs() < 1e-7);
        assert!((erf(1.0) - 0.8427007929).abs() < 1e-6);
        assert!((erf(-1.0) + 0.8427007929).abs() < 1e-6);
        assert!((erf(3.0) - 0.9999779095).abs() < 1e-6);
    }

    #[test]
    fn gaussian_integrates_to_one() {
        // ∫ S dt = 1 → the moment tensor magnitude is the total moment.
        let stf = SourceTimeFunction::new(StfKind::Gaussian, 10.0);
        let dt = 0.05;
        let total: f64 = (0..4000).map(|i| stf.eval(i as f64 * dt) * dt).sum();
        // The 1.5·hdur causal shift truncates a ~3e-4 left tail.
        assert!((total - 1.0).abs() < 1e-3, "integral = {total}");
    }

    #[test]
    fn heaviside_ramps_from_zero_to_one() {
        let stf = SourceTimeFunction::new(StfKind::SmoothedHeaviside, 10.0);
        assert!(stf.eval(0.0) < 1e-3);
        assert!((stf.eval(200.0) - 1.0).abs() < 1e-9);
        // monotone non-decreasing
        let mut prev = -1.0;
        for i in 0..100 {
            let v = stf.eval(i as f64);
            assert!(v >= prev - 1e-12);
            prev = v;
        }
    }

    #[test]
    fn ricker_is_zero_mean() {
        let stf = SourceTimeFunction::new(StfKind::Ricker, 8.0);
        let dt = 0.02;
        let total: f64 = (0..8000).map(|i| stf.eval(i as f64 * dt) * dt).sum();
        // Zero-mean up to the truncated left tail at t = 0 (~0.03).
        assert!(total.abs() < 0.05, "ricker mean = {total}");
    }

    #[test]
    fn pulse_is_causal() {
        for kind in [StfKind::Gaussian, StfKind::Ricker] {
            let stf = SourceTimeFunction::new(kind, 5.0);
            // Value before t=0 would be essentially zero — check at t=0.
            assert!(stf.eval(0.0).abs() < 0.05 * stf.eval(stf.t_shift).abs());
        }
    }
}
