//! Tiny dense linear-algebra helpers (no external BLAS/LAPACK — the paper
//! §4.3 found library BLAS counterproductive at these sizes anyway).

/// Solve `A x = b` in place by Gaussian elimination with partial pivoting.
/// `a` is row-major `n×n`. Returns `None` if the matrix is singular to
/// working precision.
pub fn solve(mut a: Vec<f64>, mut b: Vec<f64>) -> Option<Vec<f64>> {
    let n = b.len();
    assert_eq!(a.len(), n * n);
    for col in 0..n {
        // pivot
        let mut piv = col;
        let mut best = a[col * n + col].abs();
        for row in col + 1..n {
            let v = a[row * n + col].abs();
            if v > best {
                best = v;
                piv = row;
            }
        }
        if best < 1e-300 {
            return None;
        }
        if piv != col {
            for k in 0..n {
                a.swap(col * n + k, piv * n + k);
            }
            b.swap(col, piv);
        }
        let d = a[col * n + col];
        for row in col + 1..n {
            let f = a[row * n + col] / d;
            if f == 0.0 {
                continue;
            }
            for k in col..n {
                a[row * n + k] -= f * a[col * n + k];
            }
            b[row] -= f * b[col];
        }
    }
    // back substitution
    let mut x = vec![0.0; n];
    for row in (0..n).rev() {
        let mut acc = b[row];
        for k in row + 1..n {
            acc -= a[row * n + k] * x[k];
        }
        x[row] = acc / a[row * n + row];
    }
    Some(x)
}

/// Least-squares solve of an overdetermined `m×n` system via normal
/// equations `AᵀA x = Aᵀb` (fine for the tiny, well-conditioned attenuation
/// fits this crate needs).
pub fn least_squares(a: &[f64], b: &[f64], m: usize, n: usize) -> Option<Vec<f64>> {
    assert_eq!(a.len(), m * n);
    assert_eq!(b.len(), m);
    let mut ata = vec![0.0; n * n];
    let mut atb = vec![0.0; n];
    for i in 0..n {
        for j in 0..n {
            let mut acc = 0.0;
            for r in 0..m {
                acc += a[r * n + i] * a[r * n + j];
            }
            ata[i * n + j] = acc;
        }
        let mut acc = 0.0;
        for r in 0..m {
            acc += a[r * n + i] * b[r];
        }
        atb[i] = acc;
    }
    solve(ata, atb)
}

/// Fit `y ≈ c0 * x^p` by linear regression in log-log space, returning
/// `(c0, p)`. Used by the perf-model crate's measure-then-extrapolate flows
/// (Figures 5 and 7 of the paper).
pub fn fit_power_law(x: &[f64], y: &[f64]) -> (f64, f64) {
    assert_eq!(x.len(), y.len());
    assert!(x.len() >= 2);
    let n = x.len() as f64;
    let (mut sx, mut sy, mut sxx, mut sxy) = (0.0, 0.0, 0.0, 0.0);
    for (&xi, &yi) in x.iter().zip(y) {
        let lx = xi.ln();
        let ly = yi.ln();
        sx += lx;
        sy += ly;
        sxx += lx * lx;
        sxy += lx * ly;
    }
    let p = (n * sxy - sx * sy) / (n * sxx - sx * sx);
    let c0 = ((sy - p * sx) / n).exp();
    (c0, p)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn solve_3x3() {
        let a = vec![2.0, 1.0, -1.0, -3.0, -1.0, 2.0, -2.0, 1.0, 2.0];
        let b = vec![8.0, -11.0, -3.0];
        let x = solve(a, b).unwrap();
        let expect = [2.0, 3.0, -1.0];
        for i in 0..3 {
            assert!((x[i] - expect[i]).abs() < 1e-12);
        }
    }

    #[test]
    fn solve_detects_singular() {
        let a = vec![1.0, 2.0, 2.0, 4.0];
        assert!(solve(a, vec![1.0, 2.0]).is_none());
    }

    #[test]
    fn least_squares_recovers_exact_solution() {
        // y = 3 + 2t sampled without noise, m=5 rows, n=2 unknowns.
        let ts = [0.0, 1.0, 2.0, 3.0, 4.0];
        let mut a = Vec::new();
        let mut b = Vec::new();
        for &t in &ts {
            a.extend_from_slice(&[1.0, t]);
            b.push(3.0 + 2.0 * t);
        }
        let x = least_squares(&a, &b, 5, 2).unwrap();
        assert!((x[0] - 3.0).abs() < 1e-10);
        assert!((x[1] - 2.0).abs() < 1e-10);
    }

    #[test]
    fn power_law_fit_recovers_exponent() {
        let x: Vec<f64> = (1..=8).map(|i| i as f64 * 10.0).collect();
        let y: Vec<f64> = x.iter().map(|&v| 2.5 * v.powf(1.8)).collect();
        let (c, p) = fit_power_law(&x, &y);
        assert!((c - 2.5).abs() < 1e-9);
        assert!((p - 1.8).abs() < 1e-12);
    }
}
