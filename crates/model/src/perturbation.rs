//! Deterministic smooth 3-D heterogeneity, standing in for tomographic
//! mantle models.
//!
//! The production code loads 3-D tomography (e.g. S20RTS-style models) to
//! perturb PREM. For reproduction purposes what matters is that material
//! assignment touches a laterally varying field with mantle-like spectral
//! content; we synthesize one from a few low-order spherical harmonics plus
//! a radial taper — deterministic, so runs are exactly repeatable.

/// A smooth lateral velocity perturbation field `δln v(r, θ, φ)`.
#[derive(Debug, Clone)]
pub struct Perturbation3D {
    /// Peak relative perturbation (e.g. 0.02 = ±2 %).
    pub amplitude: f64,
    /// Angular orders of the harmonic components `(l, m, weight)`.
    pub components: Vec<(u32, u32, f64)>,
    /// Radius range (m) the perturbation applies to (mantle only by default).
    pub r_min: f64,
    /// Outer radius (m).
    pub r_max: f64,
}

impl Perturbation3D {
    /// A mantle-like default: degree 2 and 8 structure, ±2 %, confined to
    /// the mantle shell.
    pub fn mantle_default() -> Self {
        Self {
            amplitude: 0.02,
            components: vec![(2, 1, 0.6), (5, 3, 0.25), (8, 5, 0.15)],
            r_min: crate::prem::CMB_RADIUS_M,
            r_max: crate::prem::MOHO_RADIUS_M,
        }
    }

    /// Relative perturbation at Cartesian position (m). Zero outside the
    /// configured shell, smoothly tapered at its edges.
    pub fn dln_v(&self, x: f64, y: f64, z: f64) -> f64 {
        let r = (x * x + y * y + z * z).sqrt();
        if r <= self.r_min || r >= self.r_max || r == 0.0 {
            return 0.0;
        }
        let theta = (z / r).clamp(-1.0, 1.0).acos();
        let phi = y.atan2(x);
        // Smooth radial taper: sin² ramp over the shell.
        let s = (r - self.r_min) / (self.r_max - self.r_min);
        let taper = (std::f64::consts::PI * s).sin().powi(2);
        let mut v = 0.0;
        for &(l, m, w) in &self.components {
            // Cheap real-harmonic-like pattern (not normalized Y_lm; the
            // point is smooth banded lateral structure, not spectral purity).
            v += w * (l as f64 * theta).cos() * (m as f64 * phi).cos();
        }
        self.amplitude * taper * v
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::prem::{CMB_RADIUS_M, MOHO_RADIUS_M};

    #[test]
    fn zero_outside_shell() {
        let p = Perturbation3D::mantle_default();
        assert_eq!(p.dln_v(0.0, 0.0, 1.0e6), 0.0); // inside core
        assert_eq!(p.dln_v(0.0, 0.0, 6.37e6), 0.0); // crust/surface
    }

    #[test]
    fn bounded_by_amplitude() {
        let p = Perturbation3D::mantle_default();
        let weight_sum: f64 = p.components.iter().map(|c| c.2).sum();
        let bound = p.amplitude * weight_sum + 1e-12;
        let mid = 0.5 * (CMB_RADIUS_M + MOHO_RADIUS_M);
        for i in 0..200 {
            let th = std::f64::consts::PI * (i as f64 + 0.5) / 200.0;
            let ph = 2.0 * std::f64::consts::PI * (i as f64 * 0.37).fract();
            let (x, y, z) = (
                mid * th.sin() * ph.cos(),
                mid * th.sin() * ph.sin(),
                mid * th.cos(),
            );
            assert!(p.dln_v(x, y, z).abs() <= bound);
        }
    }

    #[test]
    fn deterministic() {
        let p = Perturbation3D::mantle_default();
        let a = p.dln_v(4.0e6, 1.0e6, 2.0e6);
        let b = p.dln_v(4.0e6, 1.0e6, 2.0e6);
        assert_eq!(a, b);
        assert!(a != 0.0);
    }

    #[test]
    fn continuous_at_shell_edges() {
        let p = Perturbation3D::mantle_default();
        // Just inside the CMB edge the taper must make it tiny.
        let r = CMB_RADIUS_M + 1.0;
        let v = p.dln_v(r, 0.0, 0.0);
        assert!(v.abs() < 1e-8);
    }
}
