//! The Preliminary Reference Earth Model (Dziewonski & Anderson, 1981).
//!
//! PREM is the canonical radially symmetric model SPECFEM3D_GLOBE is
//! benchmarked against (paper §3: "extensively benchmarked against
//! semi-analytical normal-mode synthetic seismograms for
//! spherically-symmetric Earth models"). Density and velocities are cubic
//! polynomials in the normalized radius `x = r / 6371 km`, per region.

use crate::material::{Material, TransverseIsotropy};
use crate::EarthModel;

/// Earth surface radius (m).
pub const EARTH_RADIUS_M: f64 = 6_371_000.0;
/// Inner-core boundary radius (m).
pub const ICB_RADIUS_M: f64 = 1_221_500.0;
/// Core-mantle boundary radius (m).
pub const CMB_RADIUS_M: f64 = 3_480_000.0;
/// 670-km discontinuity radius (m).
pub const R670_M: f64 = 5_701_000.0;
/// 400-km discontinuity radius (m).
pub const R400_M: f64 = 5_971_000.0;
/// Moho radius (m) — PREM crust/mantle boundary at 24.4 km depth.
pub const MOHO_RADIUS_M: f64 = 6_346_600.0;
/// Ocean floor radius (m) — PREM has a 3 km ocean.
pub const OCEAN_FLOOR_M: f64 = 6_368_000.0;

/// Cubic polynomial in normalized radius: `c0 + c1 x + c2 x² + c3 x³`,
/// producing g/cm³ (density) or km/s (velocities) — classic PREM units.
#[derive(Debug, Clone, Copy)]
struct Poly([f64; 4]);

impl Poly {
    #[inline]
    fn eval(&self, x: f64) -> f64 {
        let c = &self.0;
        c[0] + x * (c[1] + x * (c[2] + x * c[3]))
    }
    const fn new(c0: f64, c1: f64, c2: f64, c3: f64) -> Self {
        Self([c0, c1, c2, c3])
    }
}

/// One radial region of PREM.
#[derive(Debug, Clone, Copy)]
pub struct Region {
    /// Inner radius (m).
    pub r_in: f64,
    /// Outer radius (m).
    pub r_out: f64,
    /// Human-readable region name.
    pub name: &'static str,
    rho: Poly,
    vp: Poly,
    vs: Poly,
    q_mu: f64,
    q_kappa: f64,
    /// Transversely isotropic coefficients (vpv, vph, vsv, vsh, eta) where
    /// PREM defines them (upper mantle, 24.4–220 km depth).
    ti: Option<[Poly; 5]>,
}

const KM: f64 = 1000.0;

/// The full PREM region table (isotropic coefficients; the 24.4–220 km region
/// additionally carries the anisotropic polynomials).
fn regions() -> &'static [Region] {
    const INF: f64 = f64::INFINITY;
    static REGIONS: &[Region] = &[
        Region {
            r_in: 0.0,
            r_out: ICB_RADIUS_M,
            name: "inner core",
            rho: Poly::new(13.0885, 0.0, -8.8381, 0.0),
            vp: Poly::new(11.2622, 0.0, -6.3640, 0.0),
            vs: Poly::new(3.6678, 0.0, -4.4475, 0.0),
            q_mu: 84.6,
            q_kappa: 1327.7,
            ti: None,
        },
        Region {
            r_in: ICB_RADIUS_M,
            r_out: CMB_RADIUS_M,
            name: "outer core",
            rho: Poly::new(12.5815, -1.2638, -3.6426, -5.5281),
            vp: Poly::new(11.0487, -4.0362, 4.8023, -13.5732),
            vs: Poly::new(0.0, 0.0, 0.0, 0.0),
            q_mu: INF,
            q_kappa: 57823.0,
            ti: None,
        },
        Region {
            r_in: CMB_RADIUS_M,
            r_out: 3_630_000.0,
            name: "D'' layer",
            rho: Poly::new(7.9565, -6.4761, 5.5283, -3.0807),
            vp: Poly::new(15.3891, -5.3181, 5.5242, -2.5514),
            vs: Poly::new(6.9254, 1.4672, -2.0834, 0.9783),
            q_mu: 312.0,
            q_kappa: 57823.0,
            ti: None,
        },
        Region {
            r_in: 3_630_000.0,
            r_out: 5_600_000.0,
            name: "lower mantle",
            rho: Poly::new(7.9565, -6.4761, 5.5283, -3.0807),
            vp: Poly::new(24.9520, -40.4673, 51.4832, -26.6419),
            vs: Poly::new(11.1671, -13.7818, 17.4575, -9.2777),
            q_mu: 312.0,
            q_kappa: 57823.0,
            ti: None,
        },
        Region {
            r_in: 5_600_000.0,
            r_out: R670_M,
            name: "lowermost transition zone",
            rho: Poly::new(7.9565, -6.4761, 5.5283, -3.0807),
            vp: Poly::new(29.2766, -23.6027, 5.5242, -2.5514),
            vs: Poly::new(22.3459, -17.2473, -2.0834, 0.9783),
            q_mu: 312.0,
            q_kappa: 57823.0,
            ti: None,
        },
        Region {
            r_in: R670_M,
            r_out: 5_771_000.0,
            name: "transition zone (600-670 km)",
            rho: Poly::new(5.3197, -1.4836, 0.0, 0.0),
            vp: Poly::new(19.0957, -9.8672, 0.0, 0.0),
            vs: Poly::new(9.9839, -4.9324, 0.0, 0.0),
            q_mu: 143.0,
            q_kappa: 57823.0,
            ti: None,
        },
        Region {
            r_in: 5_771_000.0,
            r_out: R400_M,
            name: "transition zone (400-600 km)",
            rho: Poly::new(11.2494, -8.0298, 0.0, 0.0),
            vp: Poly::new(39.7027, -32.6166, 0.0, 0.0),
            vs: Poly::new(22.3512, -18.5856, 0.0, 0.0),
            q_mu: 143.0,
            q_kappa: 57823.0,
            ti: None,
        },
        Region {
            r_in: R400_M,
            r_out: 6_151_000.0,
            name: "upper mantle (220-400 km)",
            rho: Poly::new(7.1089, -3.8045, 0.0, 0.0),
            vp: Poly::new(20.3926, -12.2569, 0.0, 0.0),
            vs: Poly::new(8.9496, -4.4597, 0.0, 0.0),
            q_mu: 143.0,
            q_kappa: 57823.0,
            ti: None,
        },
        Region {
            r_in: 6_151_000.0,
            r_out: 6_291_000.0,
            name: "low-velocity zone (anisotropic)",
            rho: Poly::new(2.6910, 0.6924, 0.0, 0.0),
            vp: Poly::new(4.1875, 3.9382, 0.0, 0.0),
            vs: Poly::new(2.1519, 2.3481, 0.0, 0.0),
            q_mu: 80.0,
            q_kappa: 57823.0,
            ti: Some([
                Poly::new(0.8317, 7.2180, 0.0, 0.0),  // vpv
                Poly::new(3.5908, 4.6172, 0.0, 0.0),  // vph
                Poly::new(5.8582, -1.4678, 0.0, 0.0), // vsv
                Poly::new(-1.0839, 5.7176, 0.0, 0.0), // vsh
                Poly::new(3.3687, -2.4778, 0.0, 0.0), // eta
            ]),
        },
        Region {
            r_in: 6_291_000.0,
            r_out: MOHO_RADIUS_M,
            name: "LID (anisotropic)",
            rho: Poly::new(2.6910, 0.6924, 0.0, 0.0),
            vp: Poly::new(4.1875, 3.9382, 0.0, 0.0),
            vs: Poly::new(2.1519, 2.3481, 0.0, 0.0),
            q_mu: 600.0,
            q_kappa: 57823.0,
            ti: Some([
                Poly::new(0.8317, 7.2180, 0.0, 0.0),
                Poly::new(3.5908, 4.6172, 0.0, 0.0),
                Poly::new(5.8582, -1.4678, 0.0, 0.0),
                Poly::new(-1.0839, 5.7176, 0.0, 0.0),
                Poly::new(3.3687, -2.4778, 0.0, 0.0),
            ]),
        },
        Region {
            r_in: MOHO_RADIUS_M,
            r_out: 6_356_000.0,
            name: "lower crust",
            rho: Poly::new(2.900, 0.0, 0.0, 0.0),
            vp: Poly::new(6.800, 0.0, 0.0, 0.0),
            vs: Poly::new(3.900, 0.0, 0.0, 0.0),
            q_mu: 600.0,
            q_kappa: 57823.0,
            ti: None,
        },
        Region {
            r_in: 6_356_000.0,
            r_out: OCEAN_FLOOR_M,
            name: "upper crust",
            rho: Poly::new(2.600, 0.0, 0.0, 0.0),
            vp: Poly::new(5.800, 0.0, 0.0, 0.0),
            vs: Poly::new(3.200, 0.0, 0.0, 0.0),
            q_mu: 600.0,
            q_kappa: 57823.0,
            ti: None,
        },
        Region {
            r_in: OCEAN_FLOOR_M,
            r_out: EARTH_RADIUS_M,
            name: "ocean",
            rho: Poly::new(1.020, 0.0, 0.0, 0.0),
            vp: Poly::new(1.450, 0.0, 0.0, 0.0),
            vs: Poly::new(0.0, 0.0, 0.0, 0.0),
            q_mu: INF,
            q_kappa: 57823.0,
            ti: None,
        },
    ];
    REGIONS
}

/// PREM configuration.
#[derive(Debug, Clone)]
pub struct Prem {
    /// Replace the 3 km ocean layer with upper-crust material (what SPECFEM
    /// calls running "without the ocean"; the real code models the ocean load
    /// as an equivalent surface term rather than meshing water).
    pub suppress_ocean: bool,
    /// Use the transversely isotropic upper mantle.
    pub transverse_isotropy: bool,
    regions: Vec<Region>,
}

impl Default for Prem {
    fn default() -> Self {
        Self::new(true, true)
    }
}

impl Prem {
    /// Build PREM. `suppress_ocean` replaces the global ocean by crust (the
    /// standard choice for meshing); `transverse_isotropy` enables the
    /// anisotropic upper-mantle coefficients.
    pub fn new(suppress_ocean: bool, transverse_isotropy: bool) -> Self {
        Self {
            suppress_ocean,
            transverse_isotropy,
            regions: regions().to_vec(),
        }
    }

    /// Isotropic PREM without ocean — the common meshing target.
    pub fn isotropic_no_ocean() -> Self {
        Self::new(true, false)
    }

    /// The region containing radius `r`; `from_below` picks the deeper region
    /// at exact boundaries.
    pub fn region_at(&self, r: f64, from_below: bool) -> &Region {
        let regs = &self.regions;
        for (i, reg) in regs.iter().enumerate() {
            let last = i + 1 == regs.len();
            let hit = if from_below {
                r > reg.r_in && (r <= reg.r_out || last)
            } else {
                r >= reg.r_in && (r < reg.r_out || last)
            };
            if hit || (from_below && i == 0 && r <= reg.r_out) {
                return reg;
            }
        }
        unreachable!("radius {r} outside model");
    }

    /// All regions (ascending radius).
    pub fn regions(&self) -> &[Region] {
        &self.regions
    }
}

impl EarthModel for Prem {
    fn material_at(&self, r: f64, from_below: bool) -> Material {
        let r = r.clamp(0.0, EARTH_RADIUS_M);
        let mut reg = *self.region_at(r, from_below);
        if self.suppress_ocean && reg.name == "ocean" {
            reg = *self.region_at(6_360_000.0, false); // upper crust
        }
        let x = r / EARTH_RADIUS_M;
        // PREM polynomials are in g/cm³ and km/s → convert to SI.
        let rho = reg.rho.eval(x) * 1000.0;
        let vp = reg.vp.eval(x) * KM;
        let vs = reg.vs.eval(x) * KM;
        let ti = if self.transverse_isotropy {
            reg.ti.map(|p| TransverseIsotropy {
                vpv: p[0].eval(x) * KM,
                vph: p[1].eval(x) * KM,
                vsv: p[2].eval(x) * KM,
                vsh: p[3].eval(x) * KM,
                eta: p[4].eval(x),
            })
        } else {
            None
        };
        Material {
            rho,
            vp,
            vs,
            q_mu: reg.q_mu,
            q_kappa: reg.q_kappa,
            ti,
        }
    }

    fn discontinuities(&self) -> Vec<f64> {
        let mut d: Vec<f64> = self.regions.iter().skip(1).map(|r| r.r_in).collect();
        if self.suppress_ocean {
            d.retain(|&r| r != OCEAN_FLOOR_M);
        }
        d
    }

    fn surface_radius(&self) -> f64 {
        EARTH_RADIUS_M
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close_pct(a: f64, b: f64, pct: f64) {
        assert!(
            (a - b).abs() <= pct / 100.0 * b.abs().max(1.0),
            "{a} vs {b}"
        );
    }

    #[test]
    fn surface_values_match_published_prem() {
        let prem = Prem::isotropic_no_ocean();
        let m = prem.material_at(EARTH_RADIUS_M, false);
        close_pct(m.rho, 2600.0, 0.1);
        close_pct(m.vp, 5800.0, 0.1);
        close_pct(m.vs, 3200.0, 0.1);
    }

    #[test]
    fn center_values_match_published_prem() {
        let prem = Prem::default();
        let m = prem.material_at(0.0, false);
        close_pct(m.rho, 13088.5, 0.01);
        close_pct(m.vp, 11262.2, 0.01);
        close_pct(m.vs, 3667.8, 0.01);
    }

    #[test]
    fn cmb_jump_is_sharp_and_correct_side() {
        let prem = Prem::default();
        let below = prem.material_at(CMB_RADIUS_M, true); // outer core side
        let above = prem.material_at(CMB_RADIUS_M, false); // mantle side
        assert!(below.is_fluid());
        assert!(!above.is_fluid());
        // Published PREM: rho jumps ~9903 → ~5566 kg/m³ across the CMB.
        close_pct(below.rho, 9903.0, 0.5);
        close_pct(above.rho, 5566.0, 0.5);
    }

    #[test]
    fn icb_jump_matches_published() {
        let prem = Prem::default();
        let inner = prem.material_at(ICB_RADIUS_M, true);
        let outer = prem.material_at(ICB_RADIUS_M, false);
        assert!(!inner.is_fluid());
        assert!(outer.is_fluid());
        close_pct(inner.vp, 11028.0, 0.5); // PREM vp at ICB- ≈ 11.03 km/s
        close_pct(outer.vp, 10355.7, 0.5); // PREM vp at ICB+ ≈ 10.36 km/s
    }

    #[test]
    fn outer_core_is_fluid_throughout() {
        let prem = Prem::default();
        for i in 0..50 {
            let r = ICB_RADIUS_M + (CMB_RADIUS_M - ICB_RADIUS_M) * (i as f64 + 0.5) / 50.0;
            assert!(prem.material_at(r, false).is_fluid(), "r = {r}");
        }
        assert!(prem.is_fluid_shell(ICB_RADIUS_M, CMB_RADIUS_M));
    }

    #[test]
    fn density_monotonically_decreases_with_radius_between_jumps() {
        // Within each deep region density must decrease outward
        // (hydrostatic). PREM's shallow LVZ/LID region is a documented
        // exception (density rises slightly outward there), so only regions
        // below 6151 km are checked.
        let prem = Prem::default();
        for reg in prem.regions() {
            if reg.r_out > 6_151_000.0 || reg.r_out - reg.r_in < 10.0 * KM {
                continue;
            }
            let n = 20;
            let mut prev = f64::INFINITY;
            for i in 0..n {
                let r = reg.r_in + (reg.r_out - reg.r_in) * (i as f64 + 0.5) / n as f64;
                let rho = prem.material_at(r, false).rho;
                assert!(
                    rho <= prev + 1e-9,
                    "density inversion in {} at r={r}",
                    reg.name
                );
                prev = rho;
            }
        }
    }

    #[test]
    fn discontinuity_list_contains_major_boundaries() {
        let prem = Prem::default();
        let d = prem.discontinuities();
        for &must in &[ICB_RADIUS_M, CMB_RADIUS_M, R670_M, MOHO_RADIUS_M] {
            assert!(d.contains(&must), "missing {must}");
        }
        // ascending
        for w in d.windows(2) {
            assert!(w[0] < w[1]);
        }
    }

    #[test]
    fn anisotropic_region_has_ti_and_it_is_sane() {
        let prem = Prem::new(true, true);
        let m = prem.material_at(6_250_000.0, false);
        let ti = m.ti.expect("LVZ must be TI in anisotropic PREM");
        // PREM at 121 km depth: vsh > vsv (positive radial anisotropy).
        assert!(ti.vsh > ti.vsv);
        assert!(ti.eta < 1.0);
        // Isotropic variant must not carry TI.
        let iso = Prem::isotropic_no_ocean().material_at(6_250_000.0, false);
        assert!(iso.ti.is_none());
    }

    #[test]
    fn suppressed_ocean_is_crustal() {
        let prem = Prem::isotropic_no_ocean();
        let m = prem.material_at(6_370_000.0, false);
        assert!(!m.is_fluid());
        close_pct(m.vs, 3200.0, 0.1);
        let with_ocean = Prem::new(false, false).material_at(6_370_000.0, false);
        assert!(with_ocean.is_fluid());
    }

    #[test]
    fn continuous_inside_regions() {
        let prem = Prem::default();
        for reg in prem.regions() {
            let mid = 0.5 * (reg.r_in + reg.r_out);
            let eps = 1.0; // 1 m
            let a = prem.material_at(mid - eps, false);
            let b = prem.material_at(mid + eps, false);
            assert!(
                (a.vp - b.vp).abs() < 1.0,
                "vp discontinuous inside {}",
                reg.name
            );
        }
    }
}
